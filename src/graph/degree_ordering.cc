#include "graph/degree_ordering.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "core/cascading_protocol.h"
#include "core/protocol.h"
#include "hashing/random.h"
#include "iblt/iblt.h"
#include "setrec/multiset_codec.h"
#include "setrec/set_reconciler.h"
#include "util/serialization.h"

namespace setrec {

namespace {

/// Vertices sorted by (degree desc, id asc).
std::vector<uint32_t> DegreeOrder(const Graph& g) {
  std::vector<uint32_t> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&g](uint32_t a, uint32_t b) {
    return g.Degree(a) > g.Degree(b);
  });
  return order;
}

/// Anchor-adjacency signature of vertex v: sorted indices (into the anchor
/// list) of anchors adjacent to v.
ChildSet Signature(const Graph& g, uint32_t v,
                   const std::vector<int>& anchor_index) {
  ChildSet sig;
  for (uint32_t u : g.Neighbors(v)) {
    if (anchor_index[u] >= 0) {
      sig.push_back(static_cast<uint64_t>(anchor_index[u]));
    }
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

/// Signature collection (per non-anchor vertex) plus per-vertex signatures.
struct SignatureView {
  std::vector<uint32_t> order;       // Degree order.
  std::vector<int> anchor_index;     // Vertex -> anchor rank or -1.
  std::vector<uint32_t> non_anchors; // In degree order.
  std::vector<ChildSet> signatures;  // Parallel to non_anchors.
};

SignatureView BuildSignatures(const Graph& g, size_t h) {
  SignatureView view;
  view.order = DegreeOrder(g);
  view.anchor_index.assign(g.num_vertices(), -1);
  for (size_t i = 0; i < h && i < view.order.size(); ++i) {
    view.anchor_index[view.order[i]] = static_cast<int>(i);
  }
  for (size_t i = h; i < view.order.size(); ++i) {
    view.non_anchors.push_back(view.order[i]);
    view.signatures.push_back(
        Signature(g, view.order[i], view.anchor_index));
  }
  return view;
}

size_t SymDiffSize(const ChildSet& a, const ChildSet& b) {
  size_t i = 0, j = 0, diff = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i] < b[j])) {
      ++diff;
      ++i;
    } else if (i == a.size() || b[j] < a[i]) {
      ++diff;
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return diff;
}

uint64_t EdgeId(uint64_t n, uint32_t a, uint32_t b) {
  if (a > b) std::swap(a, b);
  return static_cast<uint64_t>(a) * n + b;
}

}  // namespace

bool IsSeparated(const Graph& g, size_t h, size_t a, size_t b) {
  SignatureView view = BuildSignatures(g, h);
  for (size_t i = 0; i + 1 < h && i + 1 < view.order.size(); ++i) {
    if (g.Degree(view.order[i]) < g.Degree(view.order[i + 1]) + a) {
      return false;
    }
  }
  for (size_t i = 0; i < view.signatures.size(); ++i) {
    for (size_t j = i + 1; j < view.signatures.size(); ++j) {
      if (SymDiffSize(view.signatures[i], view.signatures[j]) < b) {
        return false;
      }
    }
  }
  return true;
}

double TheoremFiveThreeH(size_t n, double p, size_t d, double delta) {
  double inner = p * (1.0 - p) * static_cast<double>(n) /
                 std::log(static_cast<double>(n));
  return 0.25 * std::cbrt(delta / static_cast<double>(d + 1)) *
         std::pow(inner, 1.0 / 6.0);
}

Result<GraphReconcileOutcome> DegreeOrderingReconcile(const Graph& alice,
                                                      const Graph& bob,
                                                      size_t d, size_t h,
                                                      uint64_t seed,
                                                      Channel* channel) {
  const size_t n = alice.num_vertices();
  if (bob.num_vertices() != n) {
    return InvalidArgument("degree ordering: vertex counts differ");
  }
  if (h == 0 || h >= n) {
    return InvalidArgument("degree ordering: need 0 < h < n");
  }

  SignatureView alice_view = BuildSignatures(alice, h);
  SignatureView bob_view = BuildSignatures(bob, h);

  // --- Signature sets-of-sets reconciliation (Theorem 3.7). Each edge
  // change flips at most one signature bit, so total changes <= d; the
  // duplicate-count markers of NormalizeParentMultiset add O(1) more. ---
  SsrParams ssr_params;
  ssr_params.max_child_size = h + 1;  // Signature (<= h) + dup marker.
  // Each edge change flips at most one signature per side.
  ssr_params.max_differing_children = 2 * d + 2;
  ssr_params.seed = DeriveSeed(seed, /*tag=*/0x64676f72ull);  // "dgor"
  CascadingProtocol cascade(ssr_params);
  SetOfSets alice_parent = NormalizeParentMultiset(alice_view.signatures);
  SetOfSets bob_parent = NormalizeParentMultiset(bob_view.signatures);
  Channel sub;
  Result<SsrOutcome> ssr = cascade.Reconcile(alice_parent, bob_parent,
                                             2 * d + 2, &sub);
  if (!ssr.ok()) return ssr.status();
  Result<SetOfSets> expanded =
      ExpandParentMultiset(std::move(ssr).value().recovered);
  if (!expanded.ok()) return expanded.status();
  std::vector<ChildSet> alice_sigs = std::move(expanded).value();
  std::sort(alice_sigs.begin(), alice_sigs.end());
  if (alice_sigs.size() != n - h) {
    return VerificationFailure("degree ordering: wrong signature count");
  }

  // --- Labeled-edge reconciliation payload (Corollary 2.2), same round. ---
  // Alice's labeling: anchors 0..h-1 by degree rank; the rest h..n-1 by the
  // lexicographic rank of their signature.
  std::vector<uint32_t> alice_label(n, 0);
  for (size_t i = 0; i < h; ++i) {
    alice_label[alice_view.order[i]] = static_cast<uint32_t>(i);
  }
  {
    std::vector<size_t> idx(alice_view.non_anchors.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      return alice_view.signatures[a] < alice_view.signatures[b];
    });
    for (size_t rank = 0; rank < idx.size(); ++rank) {
      alice_label[alice_view.non_anchors[idx[rank]]] =
          static_cast<uint32_t>(h + rank);
    }
  }
  std::vector<uint64_t> alice_edges;
  for (const auto& [u, v] : alice.Edges()) {
    alice_edges.push_back(EdgeId(n, alice_label[u], alice_label[v]));
  }
  std::sort(alice_edges.begin(), alice_edges.end());

  uint64_t edge_seed = DeriveSeed(seed, /*tag=*/0x65646765ull);  // "edge"
  HashFamily edge_fp_family(edge_seed, /*tag=*/0x65667032ull);
  IbltConfig edge_config = IbltConfig::ForDifference(d + 2, edge_seed);
  Iblt edge_table(edge_config);
  edge_table.InsertBatch(alice_edges);

  ByteWriter writer;
  writer.PutBytes(PackTranscript(sub));
  writer.PutU64(SetFingerprint(alice_edges, edge_fp_family));
  edge_table.Serialize(&writer);
  channel->Send(Party::kAlice, writer.Take(), "degree-ordering");

  // --- Bob: conforming labeling from the recovered signatures. ---
  // Exact matches first, then closest-signature for the perturbed ones.
  std::map<ChildSet, std::vector<size_t>> alice_rank_by_sig;
  for (size_t i = 0; i < alice_sigs.size(); ++i) {
    alice_rank_by_sig[alice_sigs[i]].push_back(i);
  }
  std::vector<bool> rank_used(alice_sigs.size(), false);
  std::vector<uint32_t> bob_label(n, 0);
  for (size_t i = 0; i < h; ++i) {
    bob_label[bob_view.order[i]] = static_cast<uint32_t>(i);
  }
  std::vector<size_t> deferred;
  for (size_t k = 0; k < bob_view.non_anchors.size(); ++k) {
    auto it = alice_rank_by_sig.find(bob_view.signatures[k]);
    bool assigned = false;
    if (it != alice_rank_by_sig.end()) {
      for (size_t rank : it->second) {
        if (!rank_used[rank]) {
          rank_used[rank] = true;
          bob_label[bob_view.non_anchors[k]] =
              static_cast<uint32_t>(h + rank);
          assigned = true;
          break;
        }
      }
    }
    if (!assigned) deferred.push_back(k);
  }
  for (size_t k : deferred) {
    size_t best_rank = alice_sigs.size();
    size_t best_diff = ~size_t{0};
    for (size_t rank = 0; rank < alice_sigs.size(); ++rank) {
      if (rank_used[rank]) continue;
      size_t diff = SymDiffSize(bob_view.signatures[k], alice_sigs[rank]);
      if (diff < best_diff) {
        best_diff = diff;
        best_rank = rank;
      }
    }
    if (best_rank == alice_sigs.size() || best_diff > d) {
      return VerificationFailure(
          "degree ordering: no conforming signature match (graph not "
          "separated enough)");
    }
    rank_used[best_rank] = true;
    bob_label[bob_view.non_anchors[k]] = static_cast<uint32_t>(h + best_rank);
  }

  // --- Bob: labeled edge recovery. ---
  std::vector<uint64_t> bob_edges;
  for (const auto& [u, v] : bob.Edges()) {
    bob_edges.push_back(EdgeId(n, bob_label[u], bob_label[v]));
  }
  std::sort(bob_edges.begin(), bob_edges.end());

  const Channel::Message& message = channel->Receive(channel->rounds() - 1);
  ByteReader reader(message.payload);
  // Skip the packed sub-transcript (Bob consumed it via the sub-protocol).
  if (!SkipPackedTranscript(&reader)) return ParseError("dgo: truncated");
  uint64_t edge_fp = 0;
  if (!reader.GetU64(&edge_fp)) return ParseError("dgo: truncated (edge fp)");
  Result<Iblt> received = Iblt::Deserialize(&reader, edge_config);
  if (!received.ok()) return received.status();
  Iblt diff_table = std::move(received).value();
  diff_table.EraseBatch(bob_edges);
  DecodeScratch scratch;
  Result<IbltDecodeResult64> decoded = diff_table.DecodeU64(&scratch);
  if (!decoded.ok()) return decoded.status();
  SetDifference sd;
  sd.remote_only = std::move(decoded.value().positive);
  sd.local_only = std::move(decoded.value().negative);
  std::vector<uint64_t> recovered_edges = ApplyDifference(bob_edges, sd);
  if (SetFingerprint(recovered_edges, edge_fp_family) != edge_fp) {
    return VerificationFailure("degree ordering: edge fingerprint mismatch");
  }

  Graph recovered(n);
  for (uint64_t e : recovered_edges) {
    uint32_t a = static_cast<uint32_t>(e / n);
    uint32_t b = static_cast<uint32_t>(e % n);
    if (a >= n || b >= n || a == b) {
      return VerificationFailure("degree ordering: bad edge id recovered");
    }
    recovered.AddEdge(a, b);
  }
  GraphReconcileOutcome outcome{std::move(recovered), channel->rounds(),
                                channel->total_bytes()};
  return outcome;
}

}  // namespace setrec
