#ifndef SETREC_GRAPH_POLY_SIGNATURE_H_
#define SETREC_GRAPH_POLY_SIGNATURE_H_

#include <cstdint>

#include "graph/graph.h"
#include "transport/channel.h"
#include "util/status.h"

namespace setrec {

/// Section 4: information-theoretically optimal protocols for unlabeled
/// graph isomorphism and reconciliation via polynomial fingerprints of the
/// canonical form. Exact canonicalization is exponential in general (the
/// paper assumes unlimited computation here), so these are restricted to
/// small graphs — they serve as the reference point that the random-graph
/// protocols of Section 5 beat computationally.

/// Theorem 4.1 / Corollary 4.2: one-message isomorphism test. Alice sends
/// (r, p_A(r)) where p_A has the bits of her canonical form as coefficients
/// over GF(2^61-1); Bob compares against his own canonical polynomial.
/// False positives occur with probability O(n^2 / 2^61) (Schwartz–Zippel).
Result<bool> IsomorphismProtocol(const Graph& alice, const Graph& bob,
                                 uint64_t seed, Channel* channel);

/// Theorem 4.3: one-round graph reconciliation with O(d log n) bits. Bob
/// tries every graph within `d` edge toggles of his own and adopts the
/// first whose canonical polynomial matches Alice's evaluation. Exponential
/// in d (O(n^{2d}) canonical forms), so n <= 8 and d <= 3 are enforced.
/// Returns a graph isomorphic to Alice's.
Result<Graph> PolyGraphReconcile(const Graph& alice, const Graph& bob,
                                 size_t d, uint64_t seed, Channel* channel);

}  // namespace setrec

#endif  // SETREC_GRAPH_POLY_SIGNATURE_H_
