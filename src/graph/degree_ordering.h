#ifndef SETREC_GRAPH_DEGREE_ORDERING_H_
#define SETREC_GRAPH_DEGREE_ORDERING_H_

#include <cstdint>

#include "graph/graph.h"
#include "transport/channel.h"
#include "util/status.h"

namespace setrec {

/// Result of a one-way graph reconciliation: Bob's graph, now isomorphic to
/// Alice's (vertex ids follow Alice's protocol labeling).
struct GraphReconcileOutcome {
  Graph recovered;
  size_t rounds = 0;
  size_t bytes = 0;
};

/// Definition 5.1: a graph is (h, a, b)-separated if, after sorting vertices
/// by degree, consecutive degrees among the top h differ by at least `a`,
/// and the anchor-adjacency signatures of all remaining vertices are
/// pairwise at Hamming distance at least `b`.
bool IsSeparated(const Graph& g, size_t h, size_t a, size_t b);

/// The h prescribed by Theorem 5.3:
///   h = (1/4) (delta/(d+1))^{1/3} (p(1-p) n / ln n)^{1/6}.
/// Useful asymptotically; at laptop scales it is below 1, so callers pick h
/// empirically (bench_graph_ordering sweeps it) — exactly the gap between
/// the theorem's constants and practice that EXPERIMENTS.md discusses.
double TheoremFiveThreeH(size_t n, double p, size_t d, double delta);

/// Section 5.1 (Theorem 5.2): one-round random-graph reconciliation via the
/// degree-ordering signature scheme of Babai–Erdős–Selkow [4].
///
///  * The h highest-degree vertices ("anchors") are identified by degree
///    rank on each side (conforming when the graph is (h, d+1, *)-
///    separated).
///  * Every other vertex's signature is the set of anchors it neighbors —
///    a child set over universe [h]; the signature collection undergoes at
///    most d element changes, so it is reconciled with the cascading
///    sets-of-sets protocol (Theorem 3.7).
///  * Bob matches his signatures to Alice's (conforming iff Hamming
///    distance <= d, unique when (h, *, 2d+1)-separated), yielding a
///    conforming labeling; the labeled edge sets are then reconciled with a
///    plain IBLT (Corollary 2.2) shipped in the same round.
///
/// Fails detectably (fingerprints) when the separation assumptions do not
/// hold. Communication O(d(log d log h + log n)) bits, one round.
Result<GraphReconcileOutcome> DegreeOrderingReconcile(const Graph& alice,
                                                      const Graph& bob,
                                                      size_t d, size_t h,
                                                      uint64_t seed,
                                                      Channel* channel);

}  // namespace setrec

#endif  // SETREC_GRAPH_DEGREE_ORDERING_H_
