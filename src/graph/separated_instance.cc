#include "graph/separated_instance.h"

#include <algorithm>
#include <bit>
#include <vector>

namespace setrec {

Result<Graph> MakeSeparatedGraph(const SeparatedInstanceSpec& spec) {
  const size_t n = spec.n;
  const size_t h = spec.h;
  const size_t d = spec.d;
  if (h == 0 || h > 64 || h + 8 > n) {
    return InvalidArgument("separated instance: need 0 < h <= 64, h + 8 <= n");
  }
  const size_t min_hamming = 2 * d + 3;  // 2d+1 plus one fix-up flip each.
  if (min_hamming > h) {
    return InvalidArgument("separated instance: h too small for 2d+3 Hamming");
  }
  Rng rng(DeriveSeed(spec.seed, /*tag=*/0x73657061ull));  // "sepa"

  // Random signatures with pairwise Hamming >= min_hamming.
  const size_t core = n - h;
  std::vector<uint64_t> sigs(core, 0);
  const uint64_t sig_mask = h == 64 ? ~0ull : (1ull << h) - 1;
  for (size_t v = 0; v < core; ++v) {
    bool placed = false;
    for (int attempt = 0; attempt < 256 && !placed; ++attempt) {
      uint64_t candidate = rng.NextU64() & sig_mask;
      placed = true;
      for (size_t u = 0; u < v; ++u) {
        if (static_cast<size_t>(std::popcount(candidate ^ sigs[u])) <
            min_hamming) {
          placed = false;
          break;
        }
      }
      if (placed) sigs[v] = candidate;
    }
    if (!placed) {
      return Exhausted(
          "separated instance: could not sample separated signatures "
          "(increase h or decrease n)");
    }
  }

  Graph g(n);
  // Anchors are vertices 0..h-1; core vertex k is vertex h + k.
  for (size_t k = 0; k < core; ++k) {
    for (size_t i = 0; i < h; ++i) {
      if ((sigs[k] >> i) & 1) {
        g.AddEdge(static_cast<uint32_t>(i), static_cast<uint32_t>(h + k));
      }
    }
  }
  // Core-core edges: G(core, core_p) via skip sampling over core pairs.
  {
    Rng core_rng(DeriveSeed(spec.seed, /*tag=*/0x636f7265ull));  // "core"
    Graph core_graph = Graph::RandomGnp(core, spec.core_p, &core_rng);
    for (const auto& [u, v] : core_graph.Edges()) {
      g.AddEdge(static_cast<uint32_t>(h + u), static_cast<uint32_t>(h + v));
    }
  }

  // Anchor degrees (~core/2 each) already dominate core degrees for any
  // reasonable core_p; what random signatures do not give us is *gaps* of
  // d+1 between consecutive anchor degrees. Sort anchors by realized degree
  // and delete a few anchor-core edges (each deletion flips one distinct
  // vertex's signature bit, which the 2d+3 sampling slack absorbs) so the
  // sorted degrees step down by at least d+1.
  const size_t gap = d + 1;
  std::vector<size_t> anchor_order(h);
  for (size_t i = 0; i < h; ++i) anchor_order[i] = i;
  std::sort(anchor_order.begin(), anchor_order.end(), [&g](size_t a, size_t b) {
    return g.Degree(static_cast<uint32_t>(a)) >
           g.Degree(static_cast<uint32_t>(b));
  });
  std::vector<bool> flipped(core, false);
  size_t prev_degree = g.Degree(static_cast<uint32_t>(anchor_order[0])) + gap;
  for (size_t rank = 0; rank < h; ++rank) {
    const size_t anchor = anchor_order[rank];
    const size_t current = g.Degree(static_cast<uint32_t>(anchor));
    const size_t target = std::min(current, prev_degree - gap);
    size_t to_delete = current - target;
    for (size_t k = 0; k < core && to_delete > 0; ++k) {
      if (flipped[k] || ((sigs[k] >> anchor) & 1) == 0) continue;
      g.RemoveEdge(static_cast<uint32_t>(anchor),
                   static_cast<uint32_t>(h + k));
      sigs[k] &= ~(1ull << anchor);
      flipped[k] = true;
      --to_delete;
    }
    if (to_delete > 0) {
      return Exhausted("separated instance: not enough deletion candidates");
    }
    prev_degree = target;
  }

  // Anchors must stay strictly above every core vertex even after d edge
  // perturbations on each side.
  size_t max_core_degree = 0;
  for (size_t k = 0; k < core; ++k) {
    max_core_degree =
        std::max(max_core_degree, g.Degree(static_cast<uint32_t>(h + k)));
  }
  if (prev_degree <= max_core_degree + 2 * d + 2) {
    return Exhausted(
        "separated instance: anchor/core degree margin too small "
        "(reduce h or core_p, or increase n)");
  }

  // Final certification.
  for (size_t u = 0; u < core; ++u) {
    for (size_t v = u + 1; v < core; ++v) {
      if (static_cast<size_t>(std::popcount(sigs[u] ^ sigs[v])) < 2 * d + 1) {
        return Exhausted("separated instance: fix-up broke Hamming slack");
      }
    }
  }
  return g;
}

}  // namespace setrec
