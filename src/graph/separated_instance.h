#ifndef SETREC_GRAPH_SEPARATED_INSTANCE_H_
#define SETREC_GRAPH_SEPARATED_INSTANCE_H_

#include <cstddef>
#include <cstdint>

#include "graph/graph.h"
#include "util/status.h"

namespace setrec {

/// Generator of graphs that are (h, d+1, 2d+1)-separated *by construction*
/// (Definition 5.1). Theorem 5.3 guarantees G(n,p) is separated only for
/// very large n (its h formula is below 1 at laptop scales — see
/// EXPERIMENTS.md); this planted family realizes the theorem's premise at
/// test scale so the Theorem 5.2 protocol machinery can be exercised and
/// measured, while bench_graph_ordering reports raw G(n,p) separation rates
/// separately.
///
/// Construction: h "anchor" vertices; every other vertex gets a random
/// h-bit anchor-adjacency signature (rejection-sampled to pairwise Hamming
/// distance >= 2d+3, leaving slack for one fix-up flip per vertex); core
/// vertices are wired among themselves as G(core, core_p); anchor degrees
/// are then raised onto an exact ladder with gaps of d+1 above the maximum
/// core degree + margin by flipping signature bits of distinct vertices.
struct SeparatedInstanceSpec {
  size_t n = 2000;
  /// Number of anchors; must be <= 64 (signatures are packed in a word)
  /// and large enough that random h-bit signatures stay 2d+3 apart. The
  /// degree ladder consumes ~h^2 (d+1)/2 one-per-vertex edge deletions, so
  /// n must comfortably exceed that.
  size_t h = 36;
  /// The edge-change budget the instance must tolerate.
  size_t d = 2;
  /// Density of the core (non-anchor) subgraph.
  double core_p = 0.05;
  uint64_t seed = 1;
};

/// Builds the instance; fails (kInvalidArgument / kExhausted) if the spec is
/// infeasible (h too small for the Hamming requirement, etc.).
Result<Graph> MakeSeparatedGraph(const SeparatedInstanceSpec& spec);

}  // namespace setrec

#endif  // SETREC_GRAPH_SEPARATED_INSTANCE_H_
