#include "graph/degree_neighborhood.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "core/cascading_protocol.h"
#include "core/protocol.h"
#include "hashing/random.h"
#include "iblt/iblt.h"
#include "setrec/multiset_codec.h"
#include "setrec/set_reconciler.h"
#include "util/serialization.h"

namespace setrec {

namespace {

size_t MultisetDiff(const std::vector<uint64_t>& a,
                    const std::vector<uint64_t>& b) {
  size_t i = 0, j = 0, diff = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i] < b[j])) {
      ++diff;
      ++i;
    } else if (i == a.size() || b[j] < a[i]) {
      ++diff;
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return diff;
}

uint64_t EdgeId(uint64_t n, uint32_t a, uint32_t b) {
  if (a > b) std::swap(a, b);
  return static_cast<uint64_t>(a) * n + b;
}

}  // namespace

std::vector<uint64_t> DegreeNeighborhood(const Graph& g, uint32_t v,
                                         uint64_t m) {
  std::vector<uint64_t> degrees;
  for (uint32_t u : g.Neighbors(v)) {
    uint64_t deg = g.Degree(u);
    if (deg <= m) degrees.push_back(deg);
  }
  std::sort(degrees.begin(), degrees.end());
  return degrees;
}

bool AreNeighborhoodsDisjoint(const Graph& g, uint64_t m, size_t k) {
  const size_t n = g.num_vertices();
  std::vector<std::vector<uint64_t>> sigs(n);
  for (uint32_t v = 0; v < n; ++v) sigs[v] = DegreeNeighborhood(g, v, m);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (MultisetDiff(sigs[i], sigs[j]) < k) return false;
    }
  }
  return true;
}

Result<GraphReconcileOutcome> DegreeNeighborhoodReconcile(
    const Graph& alice, const Graph& bob, size_t d, uint64_t m, uint64_t seed,
    Channel* channel) {
  const size_t n = alice.num_vertices();
  if (bob.num_vertices() != n) {
    return InvalidArgument("degree neighborhood: vertex counts differ");
  }

  // Per-vertex degree-neighborhood multisets, encoded as sets of
  // (degree, count) pairs (Section 3.4).
  MultisetCodec codec;
  auto encode_all =
      [&](const Graph& g) -> Result<std::vector<ChildSet>> {
    std::vector<ChildSet> out;
    out.reserve(n);
    for (uint32_t v = 0; v < n; ++v) {
      Result<ChildSet> enc = codec.Encode(DegreeNeighborhood(g, v, m));
      if (!enc.ok()) return enc.status();
      out.push_back(std::move(enc).value());
    }
    return out;
  };
  Result<std::vector<ChildSet>> alice_sigs_r = encode_all(alice);
  if (!alice_sigs_r.ok()) return alice_sigs_r.status();
  Result<std::vector<ChildSet>> bob_sigs_r = encode_all(bob);
  if (!bob_sigs_r.ok()) return bob_sigs_r.status();
  std::vector<ChildSet> alice_sig_sets = std::move(alice_sigs_r).value();
  std::vector<ChildSet> bob_sig_sets = std::move(bob_sigs_r).value();

  // Each edge change moves the degree of 2 endpoints, shifting one encoded
  // (degree, count) pair in every neighbor's signature, plus the endpoints
  // gain/lose one entry: O(m) element changes per edge change.
  const size_t ssr_d = 8 * d * static_cast<size_t>(m) + 8;
  SsrParams ssr_params;
  ssr_params.max_child_size = 2 * static_cast<size_t>(m) + 2;
  // An edge change touches the signatures of the two endpoints plus their
  // neighbors: at most 2(m+2) children per side per change.
  ssr_params.max_differing_children = 4 * d * (static_cast<size_t>(m) + 2) + 4;
  ssr_params.seed = DeriveSeed(seed, /*tag=*/0x64676e62ull);  // "dgnb"
  CascadingProtocol cascade(ssr_params);
  SetOfSets alice_parent = NormalizeParentMultiset(alice_sig_sets);
  SetOfSets bob_parent = NormalizeParentMultiset(bob_sig_sets);
  Channel sub;
  Result<SsrOutcome> ssr =
      cascade.Reconcile(alice_parent, bob_parent, ssr_d, &sub);
  if (!ssr.ok()) return ssr.status();
  Result<SetOfSets> expanded =
      ExpandParentMultiset(std::move(ssr).value().recovered);
  if (!expanded.ok()) return expanded.status();
  std::vector<ChildSet> alice_sigs = std::move(expanded).value();
  std::sort(alice_sigs.begin(), alice_sigs.end());
  if (alice_sigs.size() != n) {
    return VerificationFailure("degree neighborhood: wrong signature count");
  }

  // Alice's labeling: lexicographic rank of her (encoded) signature.
  std::vector<uint32_t> alice_label(n, 0);
  {
    std::vector<size_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      return alice_sig_sets[a] < alice_sig_sets[b];
    });
    for (size_t rank = 0; rank < n; ++rank) {
      alice_label[idx[rank]] = static_cast<uint32_t>(rank);
    }
  }
  std::vector<uint64_t> alice_edges;
  for (const auto& [u, v] : alice.Edges()) {
    alice_edges.push_back(EdgeId(n, alice_label[u], alice_label[v]));
  }
  std::sort(alice_edges.begin(), alice_edges.end());

  uint64_t edge_seed = DeriveSeed(seed, /*tag=*/0x65646e62ull);
  HashFamily edge_fp_family(edge_seed, /*tag=*/0x65667033ull);
  IbltConfig edge_config = IbltConfig::ForDifference(d + 2, edge_seed);
  Iblt edge_table(edge_config);
  edge_table.InsertBatch(alice_edges);

  ByteWriter writer;
  writer.PutBytes(PackTranscript(sub));
  writer.PutU64(SetFingerprint(alice_edges, edge_fp_family));
  edge_table.Serialize(&writer);
  channel->Send(Party::kAlice, writer.Take(), "degree-neighborhood");

  // --- Bob: conforming labeling by closest signature. ---
  std::map<ChildSet, std::vector<size_t>> alice_rank_by_sig;
  for (size_t i = 0; i < alice_sigs.size(); ++i) {
    alice_rank_by_sig[alice_sigs[i]].push_back(i);
  }
  std::vector<bool> rank_used(n, false);
  std::vector<uint32_t> bob_label(n, 0);
  std::vector<size_t> deferred;
  for (uint32_t v = 0; v < n; ++v) {
    auto it = alice_rank_by_sig.find(bob_sig_sets[v]);
    bool assigned = false;
    if (it != alice_rank_by_sig.end()) {
      for (size_t rank : it->second) {
        if (!rank_used[rank]) {
          rank_used[rank] = true;
          bob_label[v] = static_cast<uint32_t>(rank);
          assigned = true;
          break;
        }
      }
    }
    if (!assigned) deferred.push_back(v);
  }
  // Match on the decoded degree multisets, not the packed encodings.
  // Counting note: the paper treats an edge change as moving each affected
  // signature by "one or two elements"; a vertex adjacent to BOTH endpoints
  // of a toggled edge moves by up to 4 symmetric-difference elements, so a
  // conforming pair differs by <= 4d and greedy minimum matching is
  // provably unambiguous under (m, 8d+1)-disjointness of the base graph
  // (which holds with big margins wherever (m, 4d+1) does at these
  // densities; bench_graph_neighborhood reports both).
  std::vector<std::vector<uint64_t>> alice_multisets(n);
  std::vector<bool> alice_decoded(n, false);
  std::vector<std::vector<uint64_t>> bob_multisets(n);
  for (size_t v : deferred) {
    bob_multisets[v] = DegreeNeighborhood(bob, static_cast<uint32_t>(v), m);
  }
  for (size_t v : deferred) {
    size_t best_rank = n;
    size_t best_diff = ~size_t{0};
    for (size_t rank = 0; rank < n; ++rank) {
      if (rank_used[rank]) continue;
      if (!alice_decoded[rank]) {
        Result<std::vector<uint64_t>> decoded = codec.Decode(alice_sigs[rank]);
        if (!decoded.ok()) return decoded.status();
        alice_multisets[rank] = std::move(decoded).value();
        alice_decoded[rank] = true;
      }
      size_t diff = MultisetDiff(bob_multisets[v], alice_multisets[rank]);
      if (diff < best_diff) {
        best_diff = diff;
        best_rank = rank;
      }
    }
    if (best_rank == n || best_diff > 4 * d) {
      return VerificationFailure(
          "degree neighborhood: no conforming signature match");
    }
    rank_used[best_rank] = true;
    bob_label[v] = static_cast<uint32_t>(best_rank);
  }

  std::vector<uint64_t> bob_edges;
  for (const auto& [u, v] : bob.Edges()) {
    bob_edges.push_back(EdgeId(n, bob_label[u], bob_label[v]));
  }
  std::sort(bob_edges.begin(), bob_edges.end());

  const Channel::Message& message = channel->Receive(channel->rounds() - 1);
  ByteReader reader(message.payload);
  // Skip the packed sub-transcript (Bob consumed it via the sub-protocol).
  if (!SkipPackedTranscript(&reader)) return ParseError("dgn: truncated");
  uint64_t edge_fp = 0;
  if (!reader.GetU64(&edge_fp)) return ParseError("dgn: truncated (edge fp)");
  Result<Iblt> received = Iblt::Deserialize(&reader, edge_config);
  if (!received.ok()) return received.status();
  Iblt diff_table = std::move(received).value();
  diff_table.EraseBatch(bob_edges);
  DecodeScratch scratch;
  Result<IbltDecodeResult64> decoded = diff_table.DecodeU64(&scratch);
  if (!decoded.ok()) return decoded.status();
  SetDifference sd;
  sd.remote_only = std::move(decoded.value().positive);
  sd.local_only = std::move(decoded.value().negative);
  std::vector<uint64_t> recovered_edges = ApplyDifference(bob_edges, sd);
  if (SetFingerprint(recovered_edges, edge_fp_family) != edge_fp) {
    return VerificationFailure(
        "degree neighborhood: edge fingerprint mismatch");
  }

  Graph recovered(n);
  for (uint64_t e : recovered_edges) {
    uint32_t a = static_cast<uint32_t>(e / n);
    uint32_t b = static_cast<uint32_t>(e % n);
    if (a >= n || b >= n || a == b) {
      return VerificationFailure("degree neighborhood: bad edge id");
    }
    recovered.AddEdge(a, b);
  }
  GraphReconcileOutcome outcome{std::move(recovered), channel->rounds(),
                                channel->total_bytes()};
  return outcome;
}

}  // namespace setrec
