#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace setrec {

Graph::Graph(size_t num_vertices) : adjacency_(num_vertices) {}

bool Graph::HasEdge(uint32_t u, uint32_t v) const {
  const std::vector<uint32_t>& adj = adjacency_[u];
  return std::binary_search(adj.begin(), adj.end(), v);
}

bool Graph::AddEdge(uint32_t u, uint32_t v) {
  if (u == v) return false;
  std::vector<uint32_t>& adj_u = adjacency_[u];
  auto it = std::lower_bound(adj_u.begin(), adj_u.end(), v);
  if (it != adj_u.end() && *it == v) return false;
  adj_u.insert(it, v);
  std::vector<uint32_t>& adj_v = adjacency_[v];
  adj_v.insert(std::lower_bound(adj_v.begin(), adj_v.end(), u), u);
  ++num_edges_;
  return true;
}

bool Graph::RemoveEdge(uint32_t u, uint32_t v) {
  std::vector<uint32_t>& adj_u = adjacency_[u];
  auto it = std::lower_bound(adj_u.begin(), adj_u.end(), v);
  if (it == adj_u.end() || *it != v) return false;
  adj_u.erase(it);
  std::vector<uint32_t>& adj_v = adjacency_[v];
  adj_v.erase(std::lower_bound(adj_v.begin(), adj_v.end(), u));
  --num_edges_;
  return true;
}

void Graph::ToggleEdge(uint32_t u, uint32_t v) {
  if (!AddEdge(u, v)) RemoveEdge(u, v);
}

std::vector<std::pair<uint32_t, uint32_t>> Graph::Edges() const {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(num_edges_);
  for (uint32_t u = 0; u < adjacency_.size(); ++u) {
    for (uint32_t v : adjacency_[u]) {
      if (v > u) edges.emplace_back(u, v);
    }
  }
  return edges;
}

Graph Graph::RandomGnp(size_t n, double p, Rng* rng) {
  Graph g(n);
  if (n < 2 || p <= 0.0) return g;
  if (p >= 1.0) {
    for (uint32_t u = 0; u < n; ++u) {
      for (uint32_t v = u + 1; v < n; ++v) g.AddEdge(u, v);
    }
    return g;
  }
  // Skip-sampling over the linearized slot index.
  const uint64_t slots = n * (n - 1) / 2;
  uint64_t slot = rng->GeometricSkip(p);
  while (slot < slots) {
    // Invert slot -> (u, v): u is the largest row whose prefix fits.
    // Row u (0-based) covers slots [u*n - u(u+1)/2, ...) of width n-1-u.
    uint64_t remaining = slot;
    uint32_t u = 0;
    while (remaining >= n - 1 - u) {
      remaining -= n - 1 - u;
      ++u;
    }
    uint32_t v = u + 1 + static_cast<uint32_t>(remaining);
    g.AddEdge(u, v);
    slot += 1 + rng->GeometricSkip(p);
  }
  return g;
}

std::vector<std::pair<uint32_t, uint32_t>> Graph::Perturb(size_t count,
                                                          Rng* rng) {
  const size_t n = num_vertices();
  std::vector<std::pair<uint32_t, uint32_t>> toggled;
  if (n < 2) return toggled;
  std::set<std::pair<uint32_t, uint32_t>> used;
  size_t guard = count * 64 + 64;
  while (toggled.size() < count && guard-- > 0) {
    uint32_t u = static_cast<uint32_t>(rng->UniformU64(n));
    uint32_t v = static_cast<uint32_t>(rng->UniformU64(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (!used.insert({u, v}).second) continue;
    ToggleEdge(u, v);
    toggled.emplace_back(u, v);
  }
  return toggled;
}

size_t Graph::EdgeDifference(const Graph& a, const Graph& b) {
  assert(a.num_vertices() == b.num_vertices());
  size_t diff = 0;
  for (uint32_t u = 0; u < a.num_vertices(); ++u) {
    const auto& adj_a = a.adjacency_[u];
    const auto& adj_b = b.adjacency_[u];
    size_t i = 0, j = 0;
    while (i < adj_a.size() || j < adj_b.size()) {
      if (j == adj_b.size() || (i < adj_a.size() && adj_a[i] < adj_b[j])) {
        if (adj_a[i] > u) ++diff;
        ++i;
      } else if (i == adj_a.size() || adj_b[j] < adj_a[i]) {
        if (adj_b[j] > u) ++diff;
        ++j;
      } else {
        ++i;
        ++j;
      }
    }
  }
  return diff;
}

}  // namespace setrec
