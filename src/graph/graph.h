#ifndef SETREC_GRAPH_GRAPH_H_
#define SETREC_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "hashing/random.h"

namespace setrec {

/// An undirected simple graph on vertices 0..n-1 with sorted adjacency
/// lists. Vertex ids are an implementation artifact — the reconciliation
/// protocols of Sections 4 and 5 treat graphs as unlabeled and only ever
/// use label-invariant information (degrees, signatures).
class Graph {
 public:
  explicit Graph(size_t num_vertices);

  size_t num_vertices() const { return adjacency_.size(); }
  size_t num_edges() const { return num_edges_; }

  bool HasEdge(uint32_t u, uint32_t v) const;
  /// Adds {u,v}; no-op if present or u == v. Returns true if added.
  bool AddEdge(uint32_t u, uint32_t v);
  /// Removes {u,v}; returns true if it was present.
  bool RemoveEdge(uint32_t u, uint32_t v);
  /// Adds or removes {u,v}.
  void ToggleEdge(uint32_t u, uint32_t v);

  size_t Degree(uint32_t v) const { return adjacency_[v].size(); }
  const std::vector<uint32_t>& Neighbors(uint32_t v) const {
    return adjacency_[v];
  }

  /// All edges as (min, max) pairs, lexicographically sorted.
  std::vector<std::pair<uint32_t, uint32_t>> Edges() const;

  /// Erdős–Rényi G(n, p) sample in O(n + |E|) time via geometric skipping
  /// over the C(n,2) edge slots.
  static Graph RandomGnp(size_t n, double p, Rng* rng);

  /// Toggles `count` distinct random edge slots (the paper's perturbation
  /// model: Alice and Bob each apply <= d/2 edge changes to a base graph).
  /// Returns the toggled slots.
  std::vector<std::pair<uint32_t, uint32_t>> Perturb(size_t count, Rng* rng);

  /// Number of edges in the symmetric difference of the edge sets (i.e.,
  /// labeled-graph distance; used by tests where labelings are conforming).
  static size_t EdgeDifference(const Graph& a, const Graph& b);

  bool operator==(const Graph&) const = default;

 private:
  std::vector<std::vector<uint32_t>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace setrec

#endif  // SETREC_GRAPH_GRAPH_H_
