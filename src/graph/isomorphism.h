#ifndef SETREC_GRAPH_ISOMORPHISM_H_
#define SETREC_GRAPH_ISOMORPHISM_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/status.h"

namespace setrec {

/// Largest vertex count supported by the exact canonical form (C(n,2) bits
/// must fit in 64 and n! permutations must be enumerable).
inline constexpr size_t kMaxExactCanonicalVertices = 10;

/// The adjacency matrix of `g` packed into C(n,2) bits: bit index of pair
/// (i < j) is i*n - i(i+1)/2 + (j - i - 1).
uint64_t AdjacencyBits(const Graph& g);

/// Exact canonical form of a small graph: the minimum of AdjacencyBits over
/// all vertex permutations. Two graphs are isomorphic iff their canonical
/// forms are equal. This realizes the paper's "index of the first graph in
/// increasing lexicographical order which is isomorphic to G" (Section 4) —
/// the protocols only need a canonical representative, and min-over-
/// permutations of the bit encoding is exactly that. O(n! * n^2); requires
/// n <= kMaxExactCanonicalVertices.
Result<uint64_t> CanonicalForm(const Graph& g);

/// Exact isomorphism test via canonical forms (same size bound).
Result<bool> IsIsomorphic(const Graph& a, const Graph& b);

}  // namespace setrec

#endif  // SETREC_GRAPH_ISOMORPHISM_H_
