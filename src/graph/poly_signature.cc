#include "graph/poly_signature.h"

#include <vector>

#include "charpoly/gf.h"
#include "graph/isomorphism.h"
#include "hashing/random.h"
#include "util/serialization.h"

namespace setrec {

namespace {

/// Evaluates the polynomial whose coefficients are the bits of `bits`
/// (coefficient i = bit i) at point r over GF(2^61-1).
uint64_t EvalBitPoly(uint64_t bits, uint64_t r) {
  uint64_t acc = 0;
  // Horner from the top bit down.
  for (int i = 63; i >= 0; --i) {
    acc = gf::Mul(acc, r);
    if ((bits >> i) & 1) acc = gf::Add(acc, 1);
  }
  return acc;
}

uint64_t DrawPoint(uint64_t seed) {
  return DeriveSeed(seed, /*tag=*/0x70736967ull) % gf::kP;  // "psig"
}

}  // namespace

Result<bool> IsomorphismProtocol(const Graph& alice, const Graph& bob,
                                 uint64_t seed, Channel* channel) {
  if (alice.num_vertices() != bob.num_vertices()) {
    return InvalidArgument("isomorphism protocol: vertex counts differ");
  }
  Result<uint64_t> canon_a = CanonicalForm(alice);
  if (!canon_a.ok()) return canon_a.status();

  uint64_t r = DrawPoint(seed);
  ByteWriter writer;
  writer.PutU64(r);
  writer.PutU64(EvalBitPoly(canon_a.value(), r));
  size_t msg = channel->Send(Party::kAlice, writer.Take(), "iso-poly");

  ByteReader reader(channel->Receive(msg).payload);
  uint64_t r_rx = 0, eval_rx = 0;
  if (!reader.GetU64(&r_rx) || !reader.GetU64(&eval_rx)) {
    return ParseError("isomorphism message truncated");
  }
  Result<uint64_t> canon_b = CanonicalForm(bob);
  if (!canon_b.ok()) return canon_b.status();
  return EvalBitPoly(canon_b.value(), r_rx) == eval_rx;
}

Result<Graph> PolyGraphReconcile(const Graph& alice, const Graph& bob,
                                 size_t d, uint64_t seed, Channel* channel) {
  const size_t n = bob.num_vertices();
  if (alice.num_vertices() != n) {
    return InvalidArgument("poly reconcile: vertex counts differ");
  }
  if (n > 8 || d > 3) {
    return InvalidArgument(
        "poly reconcile: exponential search limited to n <= 8, d <= 3");
  }
  Result<uint64_t> canon_a = CanonicalForm(alice);
  if (!canon_a.ok()) return canon_a.status();

  uint64_t r = DrawPoint(seed);
  ByteWriter writer;
  writer.PutU64(r);
  writer.PutU64(EvalBitPoly(canon_a.value(), r));
  size_t msg = channel->Send(Party::kAlice, writer.Take(), "poly-reconcile");

  ByteReader reader(channel->Receive(msg).payload);
  uint64_t r_rx = 0, eval_rx = 0;
  if (!reader.GetU64(&r_rx) || !reader.GetU64(&eval_rx)) {
    return ParseError("poly reconcile message truncated");
  }

  // Enumerate all subsets of <= d edge-slot toggles of Bob's graph.
  std::vector<std::pair<uint32_t, uint32_t>> slots;
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) slots.emplace_back(u, v);
  }
  Graph candidate = bob;
  std::vector<size_t> chosen;
  // Recursive toggles: chosen indices strictly increasing.
  struct Searcher {
    const std::vector<std::pair<uint32_t, uint32_t>>& slots;
    uint64_t r;
    uint64_t target;
    size_t max_d;
    Graph* candidate;
    bool found = false;

    bool Check() {
      Result<uint64_t> canon = CanonicalForm(*candidate);
      if (!canon.ok()) return false;
      return EvalBitPoly(canon.value(), r) == target;
    }
    void Search(size_t start, size_t depth) {
      if (found) return;
      if (Check()) {
        found = true;
        return;
      }
      if (depth == max_d) return;
      for (size_t i = start; i < slots.size() && !found; ++i) {
        candidate->ToggleEdge(slots[i].first, slots[i].second);
        Search(i + 1, depth + 1);
        if (!found) candidate->ToggleEdge(slots[i].first, slots[i].second);
      }
    }
  };
  Searcher searcher{slots, r_rx, eval_rx, d, &candidate};
  searcher.Search(0, 0);
  if (!searcher.found) {
    return DecodeFailure("poly reconcile: no graph within d toggles matched");
  }
  return candidate;
}

}  // namespace setrec
