#ifndef SETREC_GRAPH_DEGREE_NEIGHBORHOOD_H_
#define SETREC_GRAPH_DEGREE_NEIGHBORHOOD_H_

#include <cstdint>

#include "graph/degree_ordering.h"
#include "graph/graph.h"
#include "transport/channel.h"
#include "util/status.h"

namespace setrec {

/// Definition 5.4: the multiset of degrees (at most `m`) of v's neighbors.
std::vector<uint64_t> DegreeNeighborhood(const Graph& g, uint32_t v,
                                         uint64_t m);

/// Checks Definition 5.4 across all vertex pairs: every pair's degree
/// neighborhoods (threshold m) differ in at least k elements. Theorem 5.5
/// shows G(n,p) satisfies this for (pn, 4d+1) w.h.p. in its p, d regime.
bool AreNeighborhoodsDisjoint(const Graph& g, uint64_t m, size_t k);

/// Section 5.2 (Theorem 5.6): random-graph reconciliation via the
/// degree-neighborhood signature scheme of Czajka–Pandurangan [11], which
/// works for much sparser graphs than Theorem 5.2 at a ~O(pn) communication
/// premium. A vertex's signature is the multiset of its neighbors' degrees
/// capped at m (= pn); each edge change perturbs O(pn) signature elements,
/// so the signatures are reconciled as a set of *multisets* (Section 3.4 +
/// Theorem 3.7) with difference bound O(d * m). Bob matches differing
/// signatures to Alice's by smallest multiset difference (conforming iff
/// <= 2d, unique under (pn, 4d+1)-disjointness), then labeled edges are
/// reconciled exactly as in the degree-ordering scheme. One round.
Result<GraphReconcileOutcome> DegreeNeighborhoodReconcile(
    const Graph& alice, const Graph& bob, size_t d, uint64_t m, uint64_t seed,
    Channel* channel);

}  // namespace setrec

#endif  // SETREC_GRAPH_DEGREE_NEIGHBORHOOD_H_
