#include "graph/isomorphism.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace setrec {

namespace {
inline size_t PairBit(size_t n, uint32_t i, uint32_t j) {
  // i < j required.
  return static_cast<size_t>(i) * n - static_cast<size_t>(i) * (i + 1) / 2 +
         (j - i - 1);
}
}  // namespace

uint64_t AdjacencyBits(const Graph& g) {
  const size_t n = g.num_vertices();
  uint64_t bits = 0;
  for (const auto& [u, v] : g.Edges()) {
    bits |= 1ull << PairBit(n, u, v);
  }
  return bits;
}

Result<uint64_t> CanonicalForm(const Graph& g) {
  const size_t n = g.num_vertices();
  if (n > kMaxExactCanonicalVertices) {
    return InvalidArgument("exact canonical form limited to small graphs");
  }
  if (n < 2) return 0ull;
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  const auto edges = g.Edges();
  uint64_t best = ~0ull;
  do {
    uint64_t bits = 0;
    for (const auto& [u, v] : edges) {
      uint32_t pu = perm[u];
      uint32_t pv = perm[v];
      if (pu > pv) std::swap(pu, pv);
      bits |= 1ull << PairBit(n, pu, pv);
    }
    best = std::min(best, bits);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

Result<bool> IsIsomorphic(const Graph& a, const Graph& b) {
  if (a.num_vertices() != b.num_vertices()) return false;
  if (a.num_edges() != b.num_edges()) return false;
  Result<uint64_t> ca = CanonicalForm(a);
  if (!ca.ok()) return ca.status();
  Result<uint64_t> cb = CanonicalForm(b);
  if (!cb.ok()) return cb.status();
  return ca.value() == cb.value();
}

}  // namespace setrec
