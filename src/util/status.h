#ifndef SETREC_UTIL_STATUS_H_
#define SETREC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace setrec {

/// Error categories used across the library. Reconciliation protocols are
/// randomized and have real failure modes (Theorem 2.1's peeling failures,
/// checksum failures, estimator misses); these codes let callers distinguish
/// a *detected* protocol failure (retryable with fresh randomness) from a
/// caller bug.
enum class StatusCode {
  kOk = 0,
  /// A sketch failed to decode (e.g., IBLT peeling left a nonempty 2-core).
  kDecodeFailure,
  /// Decoding "succeeded" but the result failed hash verification, or a
  /// recovered object is internally inconsistent.
  kVerificationFailure,
  /// The caller-supplied bound (d, d-hat, degree) was exceeded by the data.
  kBoundExceeded,
  /// Malformed arguments or configuration.
  kInvalidArgument,
  /// A received message could not be parsed.
  kParseError,
  /// Protocol ran out of retry attempts.
  kExhausted,
  /// The communication peer went away mid-protocol (net layer).
  kUnavailable,
};

/// Highest valid StatusCode — keep in step when appending codes (wire
/// status payloads validate against it; see core/split_party.cc).
inline constexpr StatusCode kMaxStatusCode = StatusCode::kUnavailable;

/// Returns a human-readable name for `code`.
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. The library does not throw across
/// public APIs; fallible operations return Status or Result<T>. The type is
/// [[nodiscard]]: every Status-returning call must be checked (or explicitly
/// voided), so a dropped protocol failure is a compile error under the lint
/// preset's -Werror=unused-result.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs an error status; `code` must not be kOk.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status DecodeFailure(std::string msg) {
  return Status(StatusCode::kDecodeFailure, std::move(msg));
}
inline Status VerificationFailure(std::string msg) {
  return Status(StatusCode::kVerificationFailure, std::move(msg));
}
inline Status BoundExceeded(std::string msg) {
  return Status(StatusCode::kBoundExceeded, std::move(msg));
}
inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status ParseError(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}
inline Status Exhausted(std::string msg) {
  return Status(StatusCode::kExhausted, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}

/// A value or an error. Accessing value() on an error aborts (assert), so
/// callers must check ok() first. [[nodiscard]] like Status: discarding a
/// Result (Deserialize*, parser returns) is a compile error under -Werror.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kDecodeFailure:
      return "DECODE_FAILURE";
    case StatusCode::kVerificationFailure:
      return "VERIFICATION_FAILURE";
    case StatusCode::kBoundExceeded:
      return "BOUND_EXCEEDED";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kExhausted:
      return "EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

inline std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace setrec

#endif  // SETREC_UTIL_STATUS_H_
