#ifndef SETREC_UTIL_TIMER_WHEEL_H_
#define SETREC_UTIL_TIMER_WHEEL_H_

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace setrec {

/// Hashed hierarchical timer wheel: O(1) schedule/cancel, amortized-O(1)
/// advance, built for the net pump's per-connection timeouts (idle,
/// handshake-incomplete) and accept-rate refills — tens of thousands of
/// mostly-cancelled timers, where a heap's O(log n) per op and its
/// tombstone problem both hurt.
///
/// Four levels of 256 slots at a power-of-two tick (~1 ms by default):
/// level 0 resolves single ticks over a 256-tick window (~270 ms), each
/// higher level covers 256x more at 256x coarser grain (level 3 reaches
/// ~52 days). Timers land in the coarsest level that still resolves their
/// deadline; when the wheel's cursor crosses a 256-tick boundary the next
/// coarser slot CASCADES — its timers re-hash into finer levels. A timer
/// therefore fires within one tick of its deadline, never early.
///
/// Semantics:
///  * Schedule() is relative to the last Advance() instant; a zero delay
///    rounds up to one tick (fires on the next Advance that crosses it).
///  * Advance(now, fire) fires every timer whose deadline <= now. The
///    callback may freely Schedule() and Cancel() (re-arm patterns), but
///    must not call Advance() reentrantly.
///  * Cancel() returns false once the timer has fired or was already
///    cancelled (ids are generation-checked, so a recycled slot cannot be
///    cancelled through a stale id). Timers due in the SAME Advance batch
///    cannot cancel each other — by the time callbacks run, the whole
///    batch is committed as fired.
///
/// Not thread-safe: owned by one driver thread, like everything else on
/// the pump's hot path.
class TimerWheel {
 public:
  /// 0 is never a valid id (Schedule always returns nonzero).
  using TimerId = uint64_t;

  static constexpr size_t kSlotBits = 8;
  static constexpr size_t kSlots = size_t{1} << kSlotBits;
  static constexpr size_t kLevels = 4;
  /// ~1.05 ms. Ticks must be a power of two (division by shift).
  static constexpr uint64_t kDefaultTickNs = uint64_t{1} << 20;
  static constexpr uint64_t kNoDeadline =
      std::numeric_limits<uint64_t>::max();

  explicit TimerWheel(uint64_t now_ns = 0,
                      uint64_t tick_ns = kDefaultTickNs)
      : tick_shift_(static_cast<uint32_t>(
            std::countr_zero(std::bit_ceil(tick_ns)))),
        start_ns_(now_ns) {
    for (auto& level : slots_) level.fill(-1);
    for (auto& level : occupancy_) level.fill(0);
  }

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Arms a timer `delay_ns` after the last Advance instant, carrying
  /// `user_data` back to the fire callback. Delays round UP to the next
  /// tick (so zero-delay means "next tick", never "this instant").
  TimerId Schedule(uint64_t delay_ns, uint64_t user_data) {
    uint64_t ticks = (delay_ns >> tick_shift_) +
                     ((delay_ns & (TickNs() - 1)) != 0 ? 1 : 0);
    if (ticks == 0) ticks = 1;
    const int32_t index = AllocNode();
    Node& node = nodes_[static_cast<size_t>(index)];
    node.expiry_tick = current_tick_ + ticks;
    node.user_data = user_data;
    Link(index);
    ++pending_;
    return MakeId(index);
  }

  /// Disarms `id`. True iff the timer was still pending (it will not
  /// fire); false if it already fired, was cancelled, or `id` is stale.
  bool Cancel(TimerId id) {
    if (id == 0) return false;
    const uint64_t slot_part = id & 0xffffffffull;
    if (slot_part == 0 || slot_part > nodes_.size()) return false;
    const size_t index = static_cast<size_t>(slot_part - 1);
    Node& node = nodes_[index];
    if (!node.linked || node.generation != static_cast<uint32_t>(id >> 32)) {
      return false;
    }
    Unlink(static_cast<int32_t>(index));
    FreeNode(static_cast<int32_t>(index));
    --pending_;
    return true;
  }

  /// Fires every timer with deadline <= `now_ns`, invoking
  /// `fire(user_data)` for each; returns the number fired. Time must not
  /// run backwards (an earlier `now_ns` is a no-op).
  template <typename Fire>
  size_t Advance(uint64_t now_ns, Fire&& fire) {
    if (now_ns <= start_ns_) return 0;
    const uint64_t target = (now_ns - start_ns_) >> tick_shift_;
    size_t fired = 0;
    while (current_tick_ < target) {
      const uint64_t window_last = current_tick_ | (kSlots - 1);
      const uint64_t stop = target < window_last ? target : window_last;
      // Jump slot-to-slot inside the 256-tick window: only occupied
      // slots cost anything, so an idle wheel advances over hours of
      // wall time in a handful of bitmap scans.
      for (;;) {
        const int next = NextOccupied(
            0, static_cast<size_t>((current_tick_ & (kSlots - 1)) + 1),
            static_cast<size_t>(stop & (kSlots - 1)));
        if (next < 0) break;
        current_tick_ =
            (current_tick_ & ~uint64_t{kSlots - 1}) +
            static_cast<uint64_t>(next);
        fired += FireSlot(0, static_cast<size_t>(next), fire);
      }
      current_tick_ = stop;
      if (current_tick_ == window_last && current_tick_ < target) {
        ++current_tick_;  // Cross into the next 256-tick window.
        fired += Cascade(fire);
        // Level-0 slot 0 holds exactly the timers due AT this boundary
        // tick (a level-0 link with expiry ≡ 0 mod 256 can only mean the
        // next boundary); the in-window scan below starts at slot 1 and
        // would never reach them.
        fired += FireSlot(0, 0, fire);
      }
    }
    return fired;
  }

  /// Absolute ns deadline of the soonest pending timer, conservatively:
  /// if the soonest timer lives in a coarser level, this returns the next
  /// cascade boundary instead (one spurious wakeup per 256 ticks, never a
  /// late fire). kNoDeadline when nothing is pending.
  uint64_t NextDeadlineNs() const {
    if (pending_ == 0) return kNoDeadline;
    const int next = NextOccupied(
        0, static_cast<size_t>((current_tick_ & (kSlots - 1)) + 1),
        kSlots - 1);
    const uint64_t tick =
        next >= 0 ? (current_tick_ & ~uint64_t{kSlots - 1}) +
                        static_cast<uint64_t>(next)
                  : (current_tick_ | (kSlots - 1)) + 1;
    return start_ns_ + (tick << tick_shift_);
  }

  uint64_t TickNs() const { return uint64_t{1} << tick_shift_; }
  size_t pending() const { return pending_; }
  uint64_t fired() const { return fired_; }
  /// Boundary crossings that re-hashed a coarser slot (the obs layer
  /// exports the delta as setrec_pump_timer_cascades).
  uint64_t cascades() const { return cascades_; }

 private:
  struct Node {
    uint64_t expiry_tick = 0;
    uint64_t user_data = 0;
    uint32_t generation = 0;
    bool linked = false;
    int32_t prev = -1;  ///< Previous node index, or -1 at the list head.
    int32_t next = -1;
    /// Owning slot (level * kSlots + slot) while linked; -1 otherwise.
    int32_t slot = -1;
  };

  TimerId MakeId(int32_t index) const {
    const Node& node = nodes_[static_cast<size_t>(index)];
    return (static_cast<uint64_t>(node.generation) << 32) |
           (static_cast<uint64_t>(index) + 1);
  }

  int32_t AllocNode() {
    if (!free_.empty()) {
      const int32_t index = free_.back();
      free_.pop_back();
      return index;
    }
    nodes_.emplace_back();
    return static_cast<int32_t>(nodes_.size() - 1);
  }

  void FreeNode(int32_t index) {
    Node& node = nodes_[static_cast<size_t>(index)];
    node.linked = false;
    node.slot = -1;
    ++node.generation;  // Invalidate outstanding ids.
    free_.push_back(index);
  }

  void Link(int32_t index) {
    Node& node = nodes_[static_cast<size_t>(index)];
    const uint64_t delta = node.expiry_tick - current_tick_;
    size_t level;
    if (delta < (uint64_t{1} << kSlotBits)) {
      level = 0;
    } else if (delta < (uint64_t{1} << (2 * kSlotBits))) {
      level = 1;
    } else if (delta < (uint64_t{1} << (3 * kSlotBits))) {
      level = 2;
    } else {
      level = 3;
      const uint64_t horizon = uint64_t{1} << (4 * kSlotBits);
      if (delta >= horizon) {
        node.expiry_tick = current_tick_ + horizon - 1;
      }
    }
    const size_t slot = static_cast<size_t>(
        (node.expiry_tick >> (level * kSlotBits)) & (kSlots - 1));
    const int32_t head = slots_[level][slot];
    node.prev = -1;
    node.next = head;
    if (head >= 0) nodes_[static_cast<size_t>(head)].prev = index;
    slots_[level][slot] = index;
    node.slot = static_cast<int32_t>(level * kSlots + slot);
    node.linked = true;
    occupancy_[level][slot >> 6] |= uint64_t{1} << (slot & 63);
  }

  void Unlink(int32_t index) {
    Node& node = nodes_[static_cast<size_t>(index)];
    const size_t level = static_cast<size_t>(node.slot) / kSlots;
    const size_t slot = static_cast<size_t>(node.slot) % kSlots;
    if (node.prev >= 0) {
      nodes_[static_cast<size_t>(node.prev)].next = node.next;
    } else {
      slots_[level][slot] = node.next;
    }
    if (node.next >= 0) {
      nodes_[static_cast<size_t>(node.next)].prev = node.prev;
    }
    if (slots_[level][slot] < 0) {
      occupancy_[level][slot >> 6] &= ~(uint64_t{1} << (slot & 63));
    }
    node.linked = false;
    node.slot = -1;
  }

  /// Detaches `slots_[level][slot]` wholesale. Returns the old head.
  int32_t Detach(size_t level, size_t slot) {
    const int32_t head = slots_[level][slot];
    slots_[level][slot] = -1;
    occupancy_[level][slot >> 6] &= ~(uint64_t{1} << (slot & 63));
    return head;
  }

  /// Fires every node in a level-0 slot. The whole batch is committed
  /// (freed) BEFORE any callback runs, so callbacks may Schedule/Cancel
  /// without corrupting the walk.
  template <typename Fire>
  size_t FireSlot(size_t level, size_t slot, Fire&& fire) {
    fire_scratch_.clear();
    int32_t cursor = Detach(level, slot);
    while (cursor >= 0) {
      Node& node = nodes_[static_cast<size_t>(cursor)];
      const int32_t next = node.next;
      fire_scratch_.push_back(node.user_data);
      node.linked = false;  // Detached; FreeNode re-checks nothing.
      FreeNode(cursor);
      cursor = next;
    }
    pending_ -= fire_scratch_.size();
    fired_ += fire_scratch_.size();
    for (const uint64_t user_data : fire_scratch_) fire(user_data);
    return fire_scratch_.size();
  }

  /// Re-hashes coarser slots after the cursor crossed a 256-tick
  /// boundary; a re-hashed timer already at/past its deadline fires now.
  template <typename Fire>
  size_t Cascade(Fire&& fire) {
    size_t fired = 0;
    for (size_t level = 1; level < kLevels; ++level) {
      const size_t slot = static_cast<size_t>(
          (current_tick_ >> (level * kSlotBits)) & (kSlots - 1));
      if (slots_[level][slot] >= 0) {
        ++cascades_;
        fire_scratch_.clear();
        int32_t cursor = Detach(level, slot);
        std::vector<int32_t>& relink = cascade_scratch_;
        relink.clear();
        while (cursor >= 0) {
          Node& node = nodes_[static_cast<size_t>(cursor)];
          const int32_t next = node.next;
          node.linked = false;
          if (node.expiry_tick <= current_tick_) {
            fire_scratch_.push_back(node.user_data);
            FreeNode(cursor);
          } else {
            relink.push_back(cursor);
          }
          cursor = next;
        }
        for (const int32_t index : relink) Link(index);
        pending_ -= fire_scratch_.size();
        fired_ += fire_scratch_.size();
        fired += fire_scratch_.size();
        for (const uint64_t user_data : fire_scratch_) fire(user_data);
      }
      // A coarser level only turns over when this one wrapped to slot 0.
      if (slot != 0) break;
    }
    return fired;
  }

  /// Smallest occupied slot index in [from, to] of `level`, or -1.
  int NextOccupied(size_t level, size_t from, size_t to) const {
    if (from > to) return -1;
    for (size_t word = from >> 6; word <= (to >> 6); ++word) {
      uint64_t bits = occupancy_[level][word];
      if (word == (from >> 6)) bits &= ~uint64_t{0} << (from & 63);
      if (bits == 0) continue;
      const size_t slot =
          (word << 6) + static_cast<size_t>(std::countr_zero(bits));
      return slot <= to ? static_cast<int>(slot) : -1;
    }
    return -1;
  }

  uint32_t tick_shift_;
  uint64_t start_ns_;
  uint64_t current_tick_ = 0;
  size_t pending_ = 0;
  uint64_t fired_ = 0;
  uint64_t cascades_ = 0;
  std::vector<Node> nodes_;
  std::vector<int32_t> free_;
  std::array<std::array<int32_t, kSlots>, kLevels> slots_;
  std::array<std::array<uint64_t, kSlots / 64>, kLevels> occupancy_;
  /// Reused per FireSlot/Cascade batch (no per-fire allocation once warm).
  std::vector<uint64_t> fire_scratch_;
  std::vector<int32_t> cascade_scratch_;
};

}  // namespace setrec

#endif  // SETREC_UTIL_TIMER_WHEEL_H_
