#ifndef SETREC_UTIL_SERIALIZATION_H_
#define SETREC_UTIL_SERIALIZATION_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace setrec {

/// Appends primitive values to a growable byte buffer. All fixed-width
/// integers are little-endian. Used to build every protocol message, so the
/// exact byte counts reported by Channel reflect what a real implementation
/// would send.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// LEB128 variable-length encoding (1-10 bytes).
  void PutVarint(uint64_t v);
  /// Appends `n` raw bytes.
  void PutBytes(const uint8_t* data, size_t n);
  void PutBytes(const std::vector<uint8_t>& data) {
    PutBytes(data.data(), data.size());
  }
  /// Varint length prefix followed by the raw bytes.
  void PutLengthPrefixed(const std::vector<uint8_t>& data);
  /// Varint count followed by varint-encoded elements.
  void PutU64Vector(const std::vector<uint64_t>& values);

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  /// Moves the accumulated buffer out of the writer.
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked reader over a byte span. Every getter returns false (and
/// leaves the output untouched) on truncated input; protocols surface that as
/// StatusCode::kParseError.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t n) : data_(data), end_(data + n) {}
  explicit ByteReader(const std::vector<uint8_t>& data)
      : ByteReader(data.data(), data.size()) {}

  // Every getter is [[nodiscard]]: a discarded false means a truncated or
  // hostile input was silently treated as parsed — the exact bug class the
  // lint gate exists to exclude (see docs/ANALYSIS.md).
  [[nodiscard]] bool GetU8(uint8_t* v);
  [[nodiscard]] bool GetU16(uint16_t* v);
  [[nodiscard]] bool GetU32(uint32_t* v);
  [[nodiscard]] bool GetU64(uint64_t* v);
  [[nodiscard]] bool GetVarint(uint64_t* v);
  [[nodiscard]] bool GetBytes(size_t n, std::vector<uint8_t>* out);
  /// Copies `n` bytes straight into `dst` (no intermediate allocation);
  /// false on truncation, leaving `dst` untouched.
  [[nodiscard]] bool GetRaw(size_t n, uint8_t* dst);
  [[nodiscard]] bool GetLengthPrefixed(std::vector<uint8_t>* out);
  [[nodiscard]] bool GetU64Vector(std::vector<uint64_t>* out);

  /// Advances past `n` bytes without reading them; false on truncation,
  /// leaving the position untouched.
  [[nodiscard]] bool Skip(size_t n) {
    if (remaining() < n) return false;
    data_ += n;
    return true;
  }

  /// Number of unread bytes.
  size_t remaining() const { return static_cast<size_t>(end_ - data_); }
  bool empty() const { return data_ == end_; }

 private:
  const uint8_t* data_;
  const uint8_t* end_;
};

}  // namespace setrec

#endif  // SETREC_UTIL_SERIALIZATION_H_
