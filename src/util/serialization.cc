#include "util/serialization.h"

#include <cstring>

namespace setrec {

void ByteWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void ByteWriter::PutBytes(const uint8_t* data, size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

void ByteWriter::PutLengthPrefixed(const std::vector<uint8_t>& data) {
  PutVarint(data.size());
  PutBytes(data);
}

void ByteWriter::PutU64Vector(const std::vector<uint64_t>& values) {
  PutVarint(values.size());
  for (uint64_t v : values) PutVarint(v);
}

bool ByteReader::GetU8(uint8_t* v) {
  if (remaining() < 1) return false;
  *v = *data_++;
  return true;
}

bool ByteReader::GetU16(uint16_t* v) {
  if (remaining() < 2) return false;
  uint16_t out = 0;
  for (int i = 0; i < 2; ++i) {
    out = static_cast<uint16_t>(out | (static_cast<uint16_t>(*data_++) << (8 * i)));
  }
  *v = out;
  return true;
}

bool ByteReader::GetU32(uint32_t* v) {
  if (remaining() < 4) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) out |= static_cast<uint32_t>(*data_++) << (8 * i);
  *v = out;
  return true;
}

bool ByteReader::GetU64(uint64_t* v) {
  if (remaining() < 8) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out |= static_cast<uint64_t>(*data_++) << (8 * i);
  *v = out;
  return true;
}

bool ByteReader::GetVarint(uint64_t* v) {
  uint64_t out = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (empty()) return false;
    uint8_t byte = *data_++;
    // The 10th byte (shift 63) contributes exactly one payload bit; any
    // higher payload bit would shift past the 64-bit boundary and silently
    // truncate, so reject it instead of decoding a wrong value.
    if (shift == 63 && (byte & 0x7e) != 0) return false;
    out |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = out;
      return true;
    }
  }
  return false;  // Overlong encoding (11+ bytes).
}

bool ByteReader::GetBytes(size_t n, std::vector<uint8_t>* out) {
  if (remaining() < n) return false;
  out->assign(data_, data_ + n);
  data_ += n;
  return true;
}

bool ByteReader::GetRaw(size_t n, uint8_t* dst) {
  if (remaining() < n) return false;
  std::memcpy(dst, data_, n);
  data_ += n;
  return true;
}

bool ByteReader::GetLengthPrefixed(std::vector<uint8_t>* out) {
  uint64_t n = 0;
  if (!GetVarint(&n)) return false;
  if (n > remaining()) return false;
  return GetBytes(static_cast<size_t>(n), out);
}

bool ByteReader::GetU64Vector(std::vector<uint64_t>* out) {
  uint64_t n = 0;
  if (!GetVarint(&n)) return false;
  if (n > remaining()) return false;  // Each element is >= 1 byte.
  out->clear();
  out->reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t v = 0;
    if (!GetVarint(&v)) return false;
    out->push_back(v);
  }
  return true;
}

}  // namespace setrec
