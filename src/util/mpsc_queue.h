#ifndef SETREC_UTIL_MPSC_QUEUE_H_
#define SETREC_UTIL_MPSC_QUEUE_H_

#include <atomic>
#include <utility>

namespace setrec {

/// Lock-free multi-producer single-consumer queue: the cross-shard handoff
/// primitive of the sharded service/net layers. Producers (any thread) push
/// with one CAS loop onto a Treiber stack; the single consumer detaches the
/// whole stack with one exchange and replays it in FIFO order.
///
/// Contract:
///  * Push is safe from any number of threads concurrently.
///  * DrainInto / Empty must only be called by the one consumer thread
///    (the shard that owns the mailbox).
///  * Everything pushed before the consumer's drain is observed by that
///    drain or a later one (release/acquire on the head pointer).
///
/// This is deliberately unbounded: mailbox traffic is control-plane
/// (session submissions, lease wakes, adopted fds), bounded by the
/// producers' own pacing, never by per-element protocol data.
template <typename T>
class MpscQueue {
 public:
  MpscQueue() = default;
  ~MpscQueue() {
    Node* node = head_.exchange(nullptr, std::memory_order_acquire);
    while (node != nullptr) {
      Node* next = node->next;
      delete node;
      node = next;
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Enqueues `value`. Any thread.
  void Push(T value) {
    Node* node = new Node{std::move(value), head_.load(std::memory_order_relaxed)};
    while (!head_.compare_exchange_weak(node->next, node,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
    }
  }

  /// Detaches every queued element and invokes `sink(T&&)` on each in FIFO
  /// (push) order. Consumer thread only. Returns the number drained.
  template <typename Sink>
  size_t DrainInto(Sink&& sink) {
    Node* node = head_.exchange(nullptr, std::memory_order_acquire);
    // The stack is LIFO; reverse once to replay in arrival order.
    Node* fifo = nullptr;
    while (node != nullptr) {
      Node* next = node->next;
      node->next = fifo;
      fifo = node;
      node = next;
    }
    size_t n = 0;
    while (fifo != nullptr) {
      Node* next = fifo->next;
      sink(std::move(fifo->value));
      delete fifo;
      fifo = next;
      ++n;
    }
    return n;
  }

  /// True when nothing is queued (racy by nature; callers use it only as a
  /// fast-path hint, never for correctness).
  bool Empty() const { return head_.load(std::memory_order_acquire) == nullptr; }

 private:
  struct Node {
    T value;
    Node* next;
  };
  std::atomic<Node*> head_{nullptr};
};

}  // namespace setrec

#endif  // SETREC_UTIL_MPSC_QUEUE_H_
