#ifndef SETREC_UTIL_ALIGNED_H_
#define SETREC_UTIL_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace setrec {

/// Minimal over-aligned allocator for std::vector. The IBLT key-lane arenas
/// use it at 64-byte alignment so the SIMD lane-XOR paths (AVX2 today) can
/// issue aligned 32-byte loads/stores on cell boundaries and whole arenas
/// start on a cache line.
template <typename T, size_t Align>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "Align must be a power of two >= alignof(T)");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  bool operator==(const AlignedAllocator&) const { return true; }
};

/// A uint64 lane vector whose storage starts on a cache line. Element
/// layout is identical to std::vector<uint64_t> (only the allocation is
/// over-aligned), so spans/pointers into it interoperate unchanged.
using AlignedLaneVector = std::vector<uint64_t, AlignedAllocator<uint64_t, 64>>;

}  // namespace setrec

#endif  // SETREC_UTIL_ALIGNED_H_
