#ifndef SETREC_CHARPOLY_RATIONAL_INTERPOLATION_H_
#define SETREC_CHARPOLY_RATIONAL_INTERPOLATION_H_

#include <cstdint>
#include <vector>

#include "charpoly/poly.h"
#include "util/status.h"

namespace setrec {

/// A recovered rational function P/Q in lowest terms (gcd divided out),
/// both monic. In set reconciliation, P = char poly of S_A \ S_B and
/// Q = char poly of S_B \ S_A.
struct RationalFunction {
  Poly numerator;
  Poly denominator;
};

/// Recovers the monic rational function P/Q of numerator degree `deg_num`
/// and denominator degree `deg_den` from evaluations f_i = P(z_i)/Q(z_i).
/// Requires points.size() >= deg_num + deg_den (+1 evaluations determine the
/// monic pair). Solves the homogeneous-free linear system
///   P(z_i) - f_i * Q(z_i) = 0
/// by Gaussian elimination over GF(2^61-1) — the O(d^3) route the paper
/// describes for Theorem 2.3. Degrees may be overestimates as long as
/// deg_num - deg_den equals the true difference; the spurious common factor
/// is removed via polynomial gcd.
Result<RationalFunction> InterpolateRational(
    const std::vector<uint64_t>& points, const std::vector<uint64_t>& values,
    int deg_num, int deg_den);

/// Solves the square linear system A x = b over GF(2^61-1) in place.
/// Returns kDecodeFailure if A is singular. Exposed for tests.
Result<std::vector<uint64_t>> SolveLinearSystem(
    std::vector<std::vector<uint64_t>> a, std::vector<uint64_t> b);

}  // namespace setrec

#endif  // SETREC_CHARPOLY_RATIONAL_INTERPOLATION_H_
