#ifndef SETREC_CHARPOLY_CHARPOLY_RECONCILER_H_
#define SETREC_CHARPOLY_CHARPOLY_RECONCILER_H_

#include <cstdint>
#include <vector>

#include "util/serialization.h"
#include "util/status.h"

namespace setrec {

/// The two sides of a decoded set difference, from the decoder's (Bob's)
/// perspective: `remote_only` are elements Alice has and Bob lacks,
/// `local_only` the reverse.
struct SetDifference {
  std::vector<uint64_t> remote_only;
  std::vector<uint64_t> local_only;
};

/// Characteristic-polynomial set reconciliation (Minsky–Trachtenberg–Zippel;
/// Theorem 2.3). One message of d evaluations of the sender's characteristic
/// polynomial over GF(2^61-1), decoded by rational interpolation (Gaussian
/// elimination, O(d^3)) followed by root extraction. Unlike the IBLT route
/// it cannot silently fail: an underestimated `max_diff` is detected because
/// the recovered polynomials do not split into distinct linear factors.
///
/// Elements must be < 2^60 (gf::kMaxElement); evaluation points live above
/// that range so denominators never vanish.
class CharPolyReconciler {
 public:
  /// `max_diff` bounds |S_A ⊕ S_B|; `seed` is the shared public-coin seed
  /// (selects evaluation points and the root-splitting randomness).
  CharPolyReconciler(size_t max_diff, uint64_t seed);

  /// Alice's message: her set size and max_diff evaluations.
  /// Fails with kInvalidArgument if any element is out of range.
  Result<std::vector<uint8_t>> BuildMessage(
      const std::vector<uint64_t>& set) const;

  /// Bob decodes the difference between Alice's set (behind `message`) and
  /// his `local_set`.
  Result<SetDifference> DecodeDifference(
      const std::vector<uint8_t>& message,
      const std::vector<uint64_t>& local_set) const;

  /// Exact message size: 8 bytes size + 8 bytes per evaluation.
  size_t MessageSize() const { return 8 + 8 * max_diff_; }

  size_t max_diff() const { return max_diff_; }

 private:
  /// The i-th shared evaluation point.
  uint64_t Point(size_t i) const;

  size_t max_diff_;
  uint64_t seed_;
  uint64_t point_base_;
};

}  // namespace setrec

#endif  // SETREC_CHARPOLY_CHARPOLY_RECONCILER_H_
