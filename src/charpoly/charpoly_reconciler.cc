#include "charpoly/charpoly_reconciler.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>

#include "charpoly/gf.h"
#include "charpoly/poly.h"
#include "charpoly/rational_interpolation.h"
#include "charpoly/root_finding.h"
#include "hashing/random.h"

namespace setrec {

CharPolyReconciler::CharPolyReconciler(size_t max_diff, uint64_t seed)
    : max_diff_(std::max<size_t>(max_diff, 1)), seed_(seed) {
  // Points are 2^60 + offset + i: above every legal element, below p.
  uint64_t span = gf::kP - (1ull << 60);
  uint64_t room = span - static_cast<uint64_t>(max_diff_) - 1;
  point_base_ =
      (1ull << 60) + DeriveSeed(seed, /*tag=*/0x70747334ull) % room;  // "pts4"
}

uint64_t CharPolyReconciler::Point(size_t i) const { return point_base_ + i; }

Result<std::vector<uint8_t>> CharPolyReconciler::BuildMessage(
    const std::vector<uint64_t>& set) const {
  for (uint64_t e : set) {
    if (e > gf::kMaxElement) {
      return InvalidArgument("char-poly element exceeds 2^60-1");
    }
  }
  ByteWriter writer;
  writer.PutU64(set.size());
  for (size_t i = 0; i < max_diff_; ++i) {
    writer.PutU64(EvalCharPoly(set, Point(i)));
  }
  return writer.Take();
}

Result<SetDifference> CharPolyReconciler::DecodeDifference(
    const std::vector<uint8_t>& message,
    const std::vector<uint64_t>& local_set) const {
  ByteReader reader(message);
  uint64_t remote_size = 0;
  if (!reader.GetU64(&remote_size)) {
    return ParseError("char-poly message truncated (size)");
  }
  std::vector<uint64_t> remote_evals(max_diff_);
  for (size_t i = 0; i < max_diff_; ++i) {
    if (!reader.GetU64(&remote_evals[i])) {
      return ParseError("char-poly message truncated (evaluations)");
    }
  }

  // Ratio values f_i = chi_A(z_i) / chi_B(z_i).
  std::vector<uint64_t> points(max_diff_);
  std::vector<uint64_t> values(max_diff_);
  for (size_t i = 0; i < max_diff_; ++i) {
    points[i] = Point(i);
    uint64_t local_eval = EvalCharPoly(local_set, points[i]);
    // Points are above every element, so chi_B(z) != 0 always.
    values[i] = gf::Mul(remote_evals[i], gf::Inv(local_eval));
  }

  // Degree split: deg P - deg Q = |S_A| - |S_B|, deg P + deg Q <= max_diff,
  // matched in parity.
  int64_t delta = static_cast<int64_t>(remote_size) -
                  static_cast<int64_t>(local_set.size());
  int64_t m = static_cast<int64_t>(max_diff_);
  if (std::llabs(delta) > m) {
    return BoundExceeded("set size difference exceeds max_diff");
  }
  if (((m - delta) & 1) != 0) m -= 1;
  int deg_num = static_cast<int>((m + delta) / 2);
  int deg_den = static_cast<int>((m - delta) / 2);

  Result<RationalFunction> rf =
      InterpolateRational(points, values, deg_num, deg_den);
  if (!rf.ok()) return rf.status();

  Result<std::vector<uint64_t>> num_roots =
      FindRoots(rf.value().numerator, seed_);
  if (!num_roots.ok()) return num_roots.status();
  Result<std::vector<uint64_t>> den_roots =
      FindRoots(rf.value().denominator, seed_ + 1);
  if (!den_roots.ok()) return den_roots.status();

  SetDifference diff;
  diff.remote_only = std::move(num_roots).value();
  diff.local_only = std::move(den_roots).value();

  // Sanity: recovered elements must be in range, local_only must really be
  // local, and sizes must reconcile. These catch an underestimated bound
  // that slipped past the linear-factor certificate.
  std::unordered_set<uint64_t> local(local_set.begin(), local_set.end());
  for (uint64_t e : diff.remote_only) {
    if (e > gf::kMaxElement || local.count(e) > 0) {
      return VerificationFailure("recovered remote-only element implausible");
    }
  }
  for (uint64_t e : diff.local_only) {
    if (local.count(e) == 0) {
      return VerificationFailure("recovered local-only element not local");
    }
  }
  if (local_set.size() + diff.remote_only.size() - diff.local_only.size() !=
      remote_size) {
    return VerificationFailure("recovered difference inconsistent with size");
  }
  std::sort(diff.remote_only.begin(), diff.remote_only.end());
  std::sort(diff.local_only.begin(), diff.local_only.end());
  return diff;
}

}  // namespace setrec
