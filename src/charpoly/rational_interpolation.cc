#include "charpoly/rational_interpolation.h"

#include <cassert>

#include "charpoly/gf.h"

namespace setrec {

Result<std::vector<uint64_t>> SolveLinearSystem(
    std::vector<std::vector<uint64_t>> a, std::vector<uint64_t> b) {
  // Gauss-Jordan with free variables set to zero, so singular-but-consistent
  // systems (which arise when the degree bound overestimates the true set
  // difference and P, Q share a common factor) still yield a solution.
  const size_t n = a.size();
  assert(b.size() == n);
  const size_t cols = n;
  std::vector<size_t> pivot_col_of_row(n, SIZE_MAX);
  size_t row = 0;
  for (size_t col = 0; col < cols && row < n; ++col) {
    size_t pivot = row;
    while (pivot < n && a[pivot][col] == 0) ++pivot;
    if (pivot == n) continue;  // Free column.
    std::swap(a[pivot], a[row]);
    std::swap(b[pivot], b[row]);
    uint64_t inv = gf::Inv(a[row][col]);
    for (size_t j = col; j < cols; ++j) a[row][j] = gf::Mul(a[row][j], inv);
    b[row] = gf::Mul(b[row], inv);
    for (size_t r = 0; r < n; ++r) {
      if (r == row || a[r][col] == 0) continue;
      uint64_t factor = a[r][col];
      for (size_t j = col; j < cols; ++j) {
        a[r][j] = gf::Sub(a[r][j], gf::Mul(factor, a[row][j]));
      }
      b[r] = gf::Sub(b[r], gf::Mul(factor, b[row]));
    }
    pivot_col_of_row[row] = col;
    ++row;
  }
  // Rows below `row` are all-zero in A; consistency requires b == 0 there.
  for (size_t r = row; r < n; ++r) {
    if (b[r] != 0) return DecodeFailure("inconsistent linear system");
  }
  std::vector<uint64_t> x(cols, 0);  // Free variables take 0.
  for (size_t r = 0; r < row; ++r) x[pivot_col_of_row[r]] = b[r];
  return x;
}

Result<RationalFunction> InterpolateRational(
    const std::vector<uint64_t>& points, const std::vector<uint64_t>& values,
    int deg_num, int deg_den) {
  assert(points.size() == values.size());
  const int unknowns = deg_num + deg_den;
  if (static_cast<int>(points.size()) < unknowns) {
    return InvalidArgument("rational interpolation: not enough evaluations");
  }
  if (unknowns == 0) {
    // Both sides monic constants: P = Q = 1.
    RationalFunction rf{Poly::Constant(1), Poly::Constant(1)};
    return rf;
  }

  // Unknowns: p_0..p_{deg_num-1} (P monic of degree deg_num) then
  // q_0..q_{deg_den-1} (Q monic of degree deg_den). Equation at z_i:
  //   sum_j p_j z^j - f_i sum_j q_j z^j = f_i z^deg_den - z^deg_num.
  const size_t num_unknowns = static_cast<size_t>(unknowns);
  std::vector<std::vector<uint64_t>> a(
      num_unknowns, std::vector<uint64_t>(num_unknowns, 0));
  std::vector<uint64_t> b(num_unknowns, 0);
  for (size_t i = 0; i < num_unknowns; ++i) {
    uint64_t z = points[i] % gf::kP;
    uint64_t f = values[i] % gf::kP;
    uint64_t zp = 1;
    for (size_t j = 0; j < static_cast<size_t>(deg_num); ++j) {
      a[i][j] = zp;
      zp = gf::Mul(zp, z);
    }
    uint64_t z_num = zp;  // z^deg_num.
    zp = 1;
    for (size_t j = 0; j < static_cast<size_t>(deg_den); ++j) {
      a[i][static_cast<size_t>(deg_num) + j] = gf::Neg(gf::Mul(f, zp));
      zp = gf::Mul(zp, z);
    }
    uint64_t z_den = zp;  // z^deg_den.
    b[i] = gf::Sub(gf::Mul(f, z_den), z_num);
  }

  Result<std::vector<uint64_t>> solved = SolveLinearSystem(std::move(a),
                                                           std::move(b));
  if (!solved.ok()) return solved.status();
  const std::vector<uint64_t>& x = solved.value();

  std::vector<uint64_t> pc(x.begin(), x.begin() + deg_num);
  pc.push_back(1);
  std::vector<uint64_t> qc(x.begin() + deg_num, x.end());
  qc.push_back(1);
  Poly p(std::move(pc));
  Poly q(std::move(qc));

  // Overestimated degrees manifest as a common factor; strip it.
  Poly g = PolyGcd(p, q);
  if (g.Degree() > 0) {
    Poly quotient, remainder;
    p.DivMod(g, &quotient, &remainder);
    p = quotient.Monic();
    q.DivMod(g, &quotient, &remainder);
    q = quotient.Monic();
  }
  RationalFunction rf{std::move(p), std::move(q)};
  return rf;
}

}  // namespace setrec
