#include "charpoly/root_finding.h"

#include "charpoly/gf.h"
#include "hashing/random.h"

namespace setrec {

namespace {

/// Recursively splits monic `f`, known to be a product of distinct linear
/// factors, appending its roots to `out`.
void SplitRoots(const Poly& f, Rng* rng, std::vector<uint64_t>* out) {
  int deg = f.Degree();
  if (deg <= 0) return;
  if (deg == 1) {
    // f = x + c -> root = -c.
    out->push_back(gf::Neg(f.Coeff(0)));
    return;
  }
  if (deg == 2) {
    // Quadratic formula: x^2 + bx + c, roots = (-b ± sqrt(b^2-4c)) / 2.
    uint64_t b = f.Coeff(1);
    uint64_t c = f.Coeff(0);
    uint64_t disc = gf::Sub(gf::Mul(b, b), gf::Mul(4, c));
    // sqrt via exponent (p+1)/4 works because p = 2^61-1 ≡ 3 (mod 4).
    uint64_t s = gf::Pow(disc, (gf::kP + 1) / 4);
    if (gf::Mul(s, s) == disc) {
      uint64_t inv2 = gf::Inv(2);
      out->push_back(gf::Mul(gf::Sub(s, b), inv2));
      out->push_back(gf::Mul(gf::Sub(gf::Neg(b), s), inv2));
      return;
    }
    // No square root: fall through to random splitting (which will fail to
    // make progress and the caller's certification catches it), but this
    // should not happen for certified inputs.
  }
  // Random split: g = gcd((x + a)^((p-1)/2) - 1, f) separates the roots r
  // with (r + a) a quadratic residue from the rest; each root lands on
  // either side with probability ~1/2.
  for (int attempt = 0; attempt < 64; ++attempt) {
    uint64_t a = rng->NextU64() % gf::kP;
    Poly shifted({a, 1});  // x + a.
    Poly h = PolyPowMod(shifted, (gf::kP - 1) / 2, f);
    h = h.Sub(Poly::Constant(1));
    Poly g = PolyGcd(h, f);
    if (g.Degree() > 0 && g.Degree() < deg) {
      Poly q, r;
      f.DivMod(g, &q, &r);
      SplitRoots(g, rng, out);
      SplitRoots(q.Monic(), rng, out);
      return;
    }
  }
  // Statistically unreachable for certified inputs (each attempt splits
  // with probability >= 1/2); leave roots unreported so the caller's
  // degree check fails loudly.
}

}  // namespace

Result<std::vector<uint64_t>> FindRoots(const Poly& f, uint64_t seed) {
  if (f.IsZero()) {
    return VerificationFailure("root finding on the zero polynomial");
  }
  Poly monic = f.Monic();
  int deg = monic.Degree();
  std::vector<uint64_t> roots;
  if (deg == 0) return roots;

  // Certify "product of distinct linear factors": f | x^p - x exactly when
  // f is squarefree with all roots in the field. Compute x^p mod f, then
  // gcd(x^p - x, f) must equal f.
  Poly xp = PolyPowMod(Poly::X(), gf::kP, monic);
  Poly xp_minus_x = xp.Sub(Poly::X());
  Poly g = PolyGcd(xp_minus_x, monic);
  if (g.Degree() != deg) {
    return VerificationFailure(
        "polynomial is not a product of distinct linear factors "
        "(difference bound too small?)");
  }

  Rng rng(DeriveSeed(seed, /*tag=*/0x726f6f74ull));  // "root"
  roots.reserve(static_cast<size_t>(deg));
  SplitRoots(monic, &rng, &roots);
  if (static_cast<int>(roots.size()) != deg) {
    return VerificationFailure("root splitting did not converge");
  }
  return roots;
}

}  // namespace setrec
