#ifndef SETREC_CHARPOLY_ROOT_FINDING_H_
#define SETREC_CHARPOLY_ROOT_FINDING_H_

#include <cstdint>
#include <vector>

#include "charpoly/poly.h"
#include "util/status.h"

namespace setrec {

/// Finds all roots of `f` over GF(2^61 - 1), assuming f is (expected to be)
/// a product of distinct linear factors — which is exactly the promise for
/// characteristic polynomials of sets. Uses Cantor–Zassenhaus equal-degree
/// splitting: compute gcd(f, x^p - x) to certify the split-into-distinct-
/// linear-factors property, then split recursively with random
/// (x + a)^((p-1)/2) - 1 gcds. Returns kVerificationFailure if f is not a
/// product of distinct linear factors (this is how an underestimated
/// difference bound d is detected). `seed` drives the randomized splitting.
Result<std::vector<uint64_t>> FindRoots(const Poly& f, uint64_t seed);

}  // namespace setrec

#endif  // SETREC_CHARPOLY_ROOT_FINDING_H_
