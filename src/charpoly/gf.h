#ifndef SETREC_CHARPOLY_GF_H_
#define SETREC_CHARPOLY_GF_H_

#include <cstdint>

#include "hashing/hash.h"

namespace setrec {

/// Arithmetic in GF(p) with p = 2^61 - 1 (Mersenne, so reduction is two
/// shifts and an add). This is the field for characteristic-polynomial set
/// reconciliation (Theorem 2.3) and the polynomial graph signatures of
/// Section 4. Set elements must lie in [0, p); the library reserves the top
/// of the field for evaluation points, so protocol-visible elements are
/// required to be < 2^60.
namespace gf {

inline constexpr uint64_t kP = kMersenne61;

/// Largest value usable as a set element under the char-poly reconciler;
/// evaluation points are drawn from [2^60, p).
inline constexpr uint64_t kMaxElement = (1ull << 60) - 1;

inline uint64_t Add(uint64_t a, uint64_t b) {
  uint64_t r = a + b;
  if (r >= kP) r -= kP;
  return r;
}

inline uint64_t Sub(uint64_t a, uint64_t b) { return a >= b ? a - b : a + kP - b; }

inline uint64_t Neg(uint64_t a) { return a == 0 ? 0 : kP - a; }

inline uint64_t Mul(uint64_t a, uint64_t b) {
  return Mod61(static_cast<__uint128_t>(a) * b);
}

/// a^e by square-and-multiply.
inline uint64_t Pow(uint64_t a, uint64_t e) {
  uint64_t result = 1;
  uint64_t base = a % kP;
  while (e > 0) {
    if (e & 1) result = Mul(result, base);
    base = Mul(base, base);
    e >>= 1;
  }
  return result;
}

/// Multiplicative inverse via Fermat (a != 0).
inline uint64_t Inv(uint64_t a) { return Pow(a, kP - 2); }

}  // namespace gf
}  // namespace setrec

#endif  // SETREC_CHARPOLY_GF_H_
