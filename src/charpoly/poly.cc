#include "charpoly/poly.h"

#include <cassert>

#include "charpoly/gf.h"

namespace setrec {

Poly::Poly(std::vector<uint64_t> coeffs) : coeffs_(std::move(coeffs)) {
  Trim();
}

void Poly::Trim() {
  while (!coeffs_.empty() && coeffs_.back() == 0) coeffs_.pop_back();
}

Poly Poly::Constant(uint64_t c) {
  Poly p;
  if (c % gf::kP != 0) p.coeffs_ = {c % gf::kP};
  return p;
}

Poly Poly::X() {
  Poly p;
  p.coeffs_ = {0, 1};
  return p;
}

Poly Poly::FromRoots(const std::vector<uint64_t>& roots) {
  Poly p = Constant(1);
  for (uint64_t r : roots) {
    Poly factor;
    factor.coeffs_ = {gf::Neg(r % gf::kP), 1};
    p = p.Mul(factor);
  }
  return p;
}

uint64_t Poly::LeadingCoeff() const {
  return coeffs_.empty() ? 0 : coeffs_.back();
}

uint64_t Poly::Eval(uint64_t z) const {
  uint64_t acc = 0;
  for (size_t i = coeffs_.size(); i-- > 0;) {
    acc = gf::Add(gf::Mul(acc, z), coeffs_[i]);
  }
  return acc;
}

Poly Poly::Add(const Poly& other) const {
  std::vector<uint64_t> out(std::max(coeffs_.size(), other.coeffs_.size()), 0);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = gf::Add(Coeff(i), other.Coeff(i));
  }
  return Poly(std::move(out));
}

Poly Poly::Sub(const Poly& other) const {
  std::vector<uint64_t> out(std::max(coeffs_.size(), other.coeffs_.size()), 0);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = gf::Sub(Coeff(i), other.Coeff(i));
  }
  return Poly(std::move(out));
}

Poly Poly::Mul(const Poly& other) const {
  if (IsZero() || other.IsZero()) return Poly();
  std::vector<uint64_t> out(coeffs_.size() + other.coeffs_.size() - 1, 0);
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i] == 0) continue;
    for (size_t j = 0; j < other.coeffs_.size(); ++j) {
      out[i + j] = gf::Add(out[i + j], gf::Mul(coeffs_[i], other.coeffs_[j]));
    }
  }
  return Poly(std::move(out));
}

Poly Poly::MulScalar(uint64_t c) const {
  c %= gf::kP;
  if (c == 0) return Poly();
  std::vector<uint64_t> out(coeffs_.size());
  for (size_t i = 0; i < coeffs_.size(); ++i) out[i] = gf::Mul(coeffs_[i], c);
  return Poly(std::move(out));
}

void Poly::DivMod(const Poly& divisor, Poly* quotient, Poly* remainder) const {
  assert(!divisor.IsZero());
  std::vector<uint64_t> rem = coeffs_;
  int dd = divisor.Degree();
  uint64_t lead_inv = gf::Inv(divisor.LeadingCoeff());
  std::vector<uint64_t> quot;
  if (Degree() >= dd) quot.assign(static_cast<size_t>(Degree() - dd) + 1, 0);
  for (int i = Degree(); i >= dd; --i) {
    uint64_t c = rem[static_cast<size_t>(i)];
    if (c == 0) continue;
    uint64_t q = gf::Mul(c, lead_inv);
    quot[static_cast<size_t>(i - dd)] = q;
    for (int j = 0; j <= dd; ++j) {
      const size_t at = static_cast<size_t>(i - dd + j);
      rem[at] = gf::Sub(rem[at], gf::Mul(q, divisor.coeffs_[static_cast<size_t>(j)]));
    }
  }
  *quotient = Poly(std::move(quot));
  *remainder = Poly(std::move(rem));
}

Poly Poly::Mod(const Poly& divisor) const {
  Poly q, r;
  DivMod(divisor, &q, &r);
  return r;
}

Poly Poly::Monic() const {
  if (IsZero()) return Poly();
  return MulScalar(gf::Inv(LeadingCoeff()));
}

Poly Poly::Derivative() const {
  if (coeffs_.size() <= 1) return Poly();
  std::vector<uint64_t> out(coeffs_.size() - 1);
  for (size_t i = 1; i < coeffs_.size(); ++i) {
    out[i - 1] = gf::Mul(coeffs_[i], i % gf::kP);
  }
  return Poly(std::move(out));
}

Poly PolyGcd(Poly a, Poly b) {
  while (!b.IsZero()) {
    Poly r = a.Mod(b);
    a = std::move(b);
    b = std::move(r);
  }
  return a.Monic();
}

Poly PolyPowMod(const Poly& base, uint64_t e, const Poly& m) {
  Poly result = Poly::Constant(1).Mod(m);
  Poly b = base.Mod(m);
  while (e > 0) {
    if (e & 1) result = result.Mul(b).Mod(m);
    b = b.Mul(b).Mod(m);
    e >>= 1;
  }
  return result;
}

uint64_t EvalCharPoly(const std::vector<uint64_t>& elements, uint64_t point) {
  uint64_t acc = 1;
  for (uint64_t e : elements) {
    acc = gf::Mul(acc, gf::Sub(point % gf::kP, e % gf::kP));
  }
  return acc;
}

}  // namespace setrec
