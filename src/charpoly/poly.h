#ifndef SETREC_CHARPOLY_POLY_H_
#define SETREC_CHARPOLY_POLY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace setrec {

/// Dense polynomials over GF(2^61 - 1), coefficients in ascending degree
/// order with no trailing zeros (the zero polynomial is an empty vector).
/// Degrees in the reconciliation protocols are O(d), so schoolbook
/// multiplication and long division are the right tools (the paper's stated
/// costs come from Gaussian elimination and multipoint evaluation, both of
/// which dominate these).
class Poly {
 public:
  /// The zero polynomial.
  Poly() = default;
  /// From coefficients (ascending); trailing zeros are trimmed.
  explicit Poly(std::vector<uint64_t> coeffs);

  /// The constant polynomial c.
  static Poly Constant(uint64_t c);
  /// The monomial x.
  static Poly X();
  /// prod_i (x - roots[i]), the characteristic polynomial of a set.
  static Poly FromRoots(const std::vector<uint64_t>& roots);

  bool IsZero() const { return coeffs_.empty(); }
  /// Degree; -1 for the zero polynomial.
  int Degree() const { return static_cast<int>(coeffs_.size()) - 1; }
  const std::vector<uint64_t>& coeffs() const { return coeffs_; }
  /// Coefficient of x^i (0 beyond the degree).
  uint64_t Coeff(size_t i) const { return i < coeffs_.size() ? coeffs_[i] : 0; }
  uint64_t LeadingCoeff() const;

  /// Horner evaluation at z.
  uint64_t Eval(uint64_t z) const;

  Poly Add(const Poly& other) const;
  Poly Sub(const Poly& other) const;
  Poly Mul(const Poly& other) const;
  Poly MulScalar(uint64_t c) const;
  /// Quotient and remainder; divisor must be nonzero.
  void DivMod(const Poly& divisor, Poly* quotient, Poly* remainder) const;
  Poly Mod(const Poly& divisor) const;
  /// Scales so the leading coefficient is 1 (zero stays zero).
  Poly Monic() const;
  /// Formal derivative.
  Poly Derivative() const;

  bool operator==(const Poly&) const = default;

 private:
  void Trim();
  std::vector<uint64_t> coeffs_;
};

/// Monic gcd(a, b) by the Euclidean algorithm.
Poly PolyGcd(Poly a, Poly b);

/// base^e mod m by square-and-multiply over polynomials.
Poly PolyPowMod(const Poly& base, uint64_t e, const Poly& m);

/// Evaluates the characteristic polynomial prod (z - e) of `elements`
/// directly at `point` in O(|elements|), without forming coefficients —
/// this is how parties compute their protocol messages.
uint64_t EvalCharPoly(const std::vector<uint64_t>& elements, uint64_t point);

}  // namespace setrec

#endif  // SETREC_CHARPOLY_POLY_H_
