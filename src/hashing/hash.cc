#include "hashing/hash.h"

#include <cstring>

#include "hashing/random.h"

namespace setrec {

PairwiseHash::PairwiseHash(uint64_t seed) {
  uint64_t state = DeriveSeed(seed, /*tag=*/0x70617772ull);  // "pawr"
  do {
    a_ = SplitMix64(&state) & kMersenne61;
  } while (a_ == 0 || a_ >= kMersenne61);
  b_ = SplitMix64(&state) & kMersenne61;
  if (b_ >= kMersenne61) b_ -= kMersenne61;
}

HashFamily::HashFamily(uint64_t seed, uint64_t tag)
    : seed_(DeriveSeed(seed, tag)) {}

uint64_t HashFamily::HashU64(uint64_t x) const { return Mix64(x ^ seed_); }

uint64_t HashFamily::HashU64Indexed(uint64_t x, uint64_t index) const {
  return Mix64(x ^ Mix64(seed_ + 0x9e3779b97f4a7c15ull * (index + 1)));
}

uint64_t HashFamily::HashBytes(const uint8_t* data, size_t n) const {
  // Multiply-rotate over 8-byte lanes with a SplitMix finalizer; seeded.
  const uint64_t kPrime1 = 0x9e3779b185ebca87ull;
  const uint64_t kPrime2 = 0xc2b2ae3d27d4eb4full;
  uint64_t h = seed_ ^ (n * kPrime1);
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t lane;
    std::memcpy(&lane, data + i, 8);
    h ^= Mix64(lane * kPrime2);
    h = (h << 27) | (h >> 37);
    h = h * kPrime1 + kPrime2;
    i += 8;
  }
  uint64_t tail = 0;
  int shift = 0;
  for (; i < n; ++i, shift += 8) tail |= static_cast<uint64_t>(data[i]) << shift;
  h ^= Mix64(tail + kPrime2);
  return Mix64(h);
}

uint64_t SetFingerprint(const std::vector<uint64_t>& elements,
                        const HashFamily& family) {
  uint64_t sum = 0;
  for (uint64_t e : elements) sum += family.HashU64(e);
  return sum + Mix64(family.seed() ^ (elements.size() * 0x51ed2701eb0aa3ddull));
}

}  // namespace setrec
