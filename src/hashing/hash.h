#ifndef SETREC_HASHING_HASH_H_
#define SETREC_HASHING_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hashing/random.h"

namespace setrec {

/// The Mersenne prime 2^61 - 1 used for pairwise-independent hashing and for
/// the characteristic-polynomial field GF(p).
inline constexpr uint64_t kMersenne61 = (1ull << 61) - 1;

/// Reduces a 128-bit product modulo 2^61 - 1.
inline uint64_t Mod61(__uint128_t x) {
  uint64_t lo = static_cast<uint64_t>(x) & kMersenne61;
  uint64_t hi = static_cast<uint64_t>(x >> 61);
  uint64_t r = lo + hi;
  if (r >= kMersenne61) r -= kMersenne61;
  // One more fold covers the largest possible inputs.
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

/// A pairwise-independent hash h(x) = (a*x + b) mod (2^61 - 1), with a != 0.
/// This is the "O(log s)-bit pairwise independent hash" primitive the paper
/// uses for child-set fingerprints and for the l0-estimator's level hash.
class PairwiseHash {
 public:
  /// Draws (a, b) deterministically from `seed`.
  explicit PairwiseHash(uint64_t seed);

  /// Full 61-bit hash value in [0, 2^61 - 1).
  uint64_t Hash(uint64_t x) const {
    __uint128_t ax = static_cast<__uint128_t>(a_) * (x % kMersenne61);
    uint64_t r = Mod61(ax) + b_;
    if (r >= kMersenne61) r -= kMersenne61;
    return r;
  }

  /// Hash reduced to [0, bound).
  uint64_t HashRange(uint64_t x, uint64_t bound) const {
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Hash(x)) * bound) >> 61);
  }

  uint64_t a() const { return a_; }
  uint64_t b() const { return b_; }

 private:
  uint64_t a_;
  uint64_t b_;
};

/// A seeded family of strong (well-mixed) hash functions over 64-bit words
/// and byte strings. Not pairwise independent in the formal sense, but used
/// where the paper needs "a hash function": IBLT bucket choice, checksums,
/// set fingerprints. Both parties construct identical families from the
/// shared public-coin seed.
class HashFamily {
 public:
  /// `seed` selects the family; `tag` selects the member within a protocol.
  HashFamily(uint64_t seed, uint64_t tag);

  /// Hashes a 64-bit key.
  uint64_t HashU64(uint64_t x) const;

  /// Hashes a 64-bit key with an extra index, e.g. one per IBLT partition.
  uint64_t HashU64Indexed(uint64_t x, uint64_t index) const;

  /// Hashes a byte string (xxhash-style multiply-rotate over 8-byte lanes).
  uint64_t HashBytes(const uint8_t* data, size_t n) const;
  uint64_t HashBytes(const std::vector<uint8_t>& data) const {
    return HashBytes(data.data(), data.size());
  }

  /// Hashes one 64-bit word exactly as HashBytes would hash its 8
  /// little-endian bytes (same value, no memory round-trip). This is the
  /// IBLT hot path for 8-byte keys.
  uint64_t HashWord8(uint64_t lane) const {
    return HashWord8Premixed(MixLane8(lane));
  }

  /// The seed-independent first stage of HashWord8. When the same key is
  /// hashed by several families (IBLT bucket + checksum), compute this once
  /// and feed it to each family's HashWord8Premixed.
  static uint64_t MixLane8(uint64_t lane) {
    return Mix64(lane * 0xc2b2ae3d27d4eb4full);  // kPrime2
  }

  /// Completes HashWord8 from a MixLane8 result; HashWord8Premixed(
  /// MixLane8(lane)) == HashBytes(little-endian bytes of lane, 8).
  uint64_t HashWord8Premixed(uint64_t mixed_lane) const {
    const uint64_t kPrime1 = 0x9e3779b185ebca87ull;
    const uint64_t kPrime2 = 0xc2b2ae3d27d4eb4full;
    uint64_t h = seed_ ^ (8 * kPrime1);
    h ^= mixed_lane;
    h = (h << 27) | (h >> 37);
    h = h * kPrime1 + kPrime2;
    h ^= Mix64(kPrime2);  // Empty tail word (compile-time constant).
    return Mix64(h);
  }

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
};

/// Order-invariant 64-bit fingerprint of a multiset of 64-bit elements:
/// sum of per-element mixes plus a mixed size term. Summation (rather than
/// XOR) makes the fingerprint sensitive to element multiplicity, so the same
/// function serves sets and multisets (Section 3.4). This is the "hash of
/// each of the sets" the paper's protocols use to ward against checksum
/// failures and to identify which child set an encoding belongs to.
uint64_t SetFingerprint(const std::vector<uint64_t>& elements,
                        const HashFamily& family);

}  // namespace setrec

#endif  // SETREC_HASHING_HASH_H_
