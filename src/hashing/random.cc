#include "hashing/random.h"

#include <cassert>
#include <cmath>

namespace setrec {

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  assert(bound > 0);
  // Lemire's method: multiply-shift with rejection in the biased band.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  if (span == 0) return static_cast<int64_t>(NextU64());
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

uint64_t Rng::GeometricSkip(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = UniformDouble();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

uint64_t DeriveSeed(uint64_t seed, uint64_t tag) {
  return Mix64(seed ^ Mix64(tag ^ 0xa5a5a5a5deadbeefull));
}

}  // namespace setrec
