#ifndef SETREC_HASHING_RANDOM_H_
#define SETREC_HASHING_RANDOM_H_

#include <cstdint>

namespace setrec {

/// SplitMix64 step: advances `state` and returns the next output. Used both
/// as a standalone mixer/seeder and to derive sub-seeds for hash families.
/// Inline: this sits under every hash in the IBLT hot path, where an
/// out-of-line call per mix dominates the arithmetic.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Mixes a single 64-bit value (stateless SplitMix64 finalizer). This is the
/// library's generic strong mixer.
inline uint64_t Mix64(uint64_t x) {
  uint64_t state = x;
  return SplitMix64(&state);
}

/// xoshiro256** pseudo-random generator. All randomness in the library flows
/// through explicit seeds, so both parties of a protocol can derive identical
/// "public coins" (Section 2 of the paper) from one shared seed, and all
/// tests are deterministic.
class Rng {
 public:
  /// Seeds the four words of state via SplitMix64, per the xoshiro authors'
  /// recommendation.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit output.
  uint64_t NextU64();

  /// Uniform value in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t UniformU64(uint64_t bound);

  /// Uniform value in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli(p) draw.
  bool Bernoulli(double p);

  /// Geometric skip length for sampling a Bernoulli(p) process: returns the
  /// number of failures before the next success (>= 0). Used by the G(n,p)
  /// sampler to generate random graphs in O(edges) time.
  uint64_t GeometricSkip(double p);

  // UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ull; }
  uint64_t operator()() { return NextU64(); }

 private:
  uint64_t s_[4];
};

/// Derives a fresh, independent-looking seed from (seed, tag). Protocols use
/// tags to give each hash family / retry attempt / protocol phase its own
/// randomness while both parties stay in lockstep.
uint64_t DeriveSeed(uint64_t seed, uint64_t tag);

}  // namespace setrec

#endif  // SETREC_HASHING_RANDOM_H_
