#ifndef SETREC_OBS_CLOCK_H_
#define SETREC_OBS_CLOCK_H_

#include <cstdint>
#include <ctime>

namespace setrec::obs {

/// Monotonic nanosecond timestamp for metric/trace recording. Reads
/// CLOCK_MONOTONIC via clock_gettime directly rather than std::chrono so the
/// call is a plain vDSO read: no allocation, no chrono type machinery, safe
/// inside alloc-free lint regions when routed through SETREC_OBS_NOW().
inline uint64_t NowNanos() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace setrec::obs

/// SETREC_OBS_NOW(): the sanctioned timestamp sample for hot paths. The
/// `clock-in-hot-path` lint rule bans direct *_clock::now()/clock_gettime()
/// calls inside alloc-free lint regions; timestamping there must use this
/// macro, which compiles to a constant zero when SETREC_OBS_DISABLE is
/// defined (so a build can prove instrumentation costs nothing).
#ifdef SETREC_OBS_DISABLE
#define SETREC_OBS_NOW() (uint64_t{0})
#else
#define SETREC_OBS_NOW() (::setrec::obs::NowNanos())
#endif

#endif  // SETREC_OBS_CLOCK_H_
