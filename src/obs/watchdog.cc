#include "obs/watchdog.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/clock.h"

namespace setrec::obs {

void StallWatchdog::Watch(Shard shard) {
  shards_.push_back(std::move(shard));
  dumped_at_beat_.push_back(0);
}

size_t StallWatchdog::CheckOnce(uint64_t now_ns, uint64_t stall_ns,
                                std::FILE* out) {
  size_t dumps = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = shards_[i];
    const uint64_t beat =
        shard.heartbeat != nullptr ? shard.heartbeat->last() : 0;
    if (beat == 0) continue;  // Driver never started; nothing to judge.
    if (now_ns < beat + stall_ns) {
      dumped_at_beat_[i] = 0;  // Beating: re-arm the episode dump.
      continue;
    }
    // Stale beat alone is just an idle shard; stale + queued work is a
    // wedged driver.
    if (!shard.queued_work || !shard.queued_work()) continue;
    if (dumped_at_beat_[i] == beat) continue;  // Dumped this episode.
    dumped_at_beat_[i] = beat;
    std::fprintf(out,
                 "[setrec-watchdog] shard %s stalled: no heartbeat for "
                 "%.1f ms with queued work; tracer ring follows\n",
                 shard.name.c_str(),
                 static_cast<double>(now_ns - beat) / 1e6);
    if (shard.away_p99_ns) {
      // A large away-p99 means the driver habitually spends long bursts
      // outside its poller (slow sessions, giant writes) — the stall is
      // likely one such burst. A tiny p99 points at the scheduler/kernel.
      std::fprintf(out, "  away-from-poll p99: %.3f ms\n",
                   static_cast<double>(shard.away_p99_ns()) / 1e6);
    }
    if (shard.tracer != nullptr) {
      if (shard.tracer->DumpRing(out) == 0) {
        std::fprintf(out, "  (tracer ring empty)\n");
      }
    }
    ++dumps;
    stall_dumps_.fetch_add(1, std::memory_order_relaxed);
  }
  return dumps;
}

void StallWatchdog::Start(uint64_t stall_ns, uint64_t poll_ms,
                          std::FILE* out) {
  Stop();
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this, stall_ns, poll_ms, out] {
    while (!stop_.load(std::memory_order_relaxed)) {
      // Chunked sleep so Stop() is prompt even with slow poll intervals.
      uint64_t slept = 0;
      while (slept < poll_ms && !stop_.load(std::memory_order_relaxed)) {
        const uint64_t chunk = std::min<uint64_t>(poll_ms - slept, 20);
        std::this_thread::sleep_for(std::chrono::milliseconds(chunk));
        slept += chunk;
      }
      if (stop_.load(std::memory_order_relaxed)) break;
      CheckOnce(NowNanos(), stall_ns, out);
    }
  });
}

void StallWatchdog::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

}  // namespace setrec::obs
