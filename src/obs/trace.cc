#include "obs/trace.h"

namespace setrec::obs {

const char* TracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kSession: return "session";
    case TracePhase::kRoundWait: return "round-wait";
    case TracePhase::kFlushWait: return "flush-wait";
    case TracePhase::kLeaseWait: return "lease-wait";
    case TracePhase::kRecvWait: return "recv-wait";
  }
  return "?";
}

void SessionTracer::Configure(size_t capacity, uint64_t slow_ns) {
  ring_.assign(capacity, TraceEvent{});
  next_ = 0;
  slow_ns_ = slow_ns;
  dumps_ = 0;
}

void SessionTracer::OnSessionEnd(uint64_t session_id, uint64_t latency_ns,
                                 const char* label, std::FILE* out) {
  if (!enabled() || session_id == 0 || latency_ns < slow_ns_) return;
  // Oldest surviving event is at next_ (the slot the ring writes next).
  const size_t n = ring_.size();
  uint64_t base_ns = 0;
  bool dumped_any = false;
  int depth = 0;
  for (size_t step = 0; step < n; ++step) {
    TraceEvent& ev = ring_[(next_ + step) % n];
    if (ev.session_id != session_id) continue;
    if (!dumped_any) {
      std::fprintf(out,
                   "[setrec-trace] session %llu (%s) took %.3f ms "
                   "(threshold %.3f ms)\n",
                   static_cast<unsigned long long>(session_id), label,
                   static_cast<double>(latency_ns) / 1e6,
                   static_cast<double>(slow_ns_) / 1e6);
      base_ns = ev.ns;
      dumped_any = true;
    }
    if (!ev.enter && depth > 0) --depth;
    std::fprintf(out, "  %*s%c %-10s +%.3f ms\n", depth * 2, "",
                 ev.enter ? '>' : '<', TracePhaseName(ev.phase),
                 static_cast<double>(ev.ns - base_ns) / 1e6);
    if (ev.enter) ++depth;
    ev.session_id = 0;  // Blank: the dump fires once per session.
  }
  // No surviving events: either the ring wrapped past this session (size
  // the ring up — see docs/OBSERVABILITY.md) or this session already
  // dumped. Either way stay silent, so a dump fires at most once per
  // session.
  if (dumped_any) ++dumps_;
}

}  // namespace setrec::obs
