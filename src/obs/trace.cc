#include "obs/trace.h"

#include <utility>

namespace setrec::obs {

const char* TracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kSession: return "session";
    case TracePhase::kRoundWait: return "round-wait";
    case TracePhase::kFlushWait: return "flush-wait";
    case TracePhase::kLeaseWait: return "lease-wait";
    case TracePhase::kRecvWait: return "recv-wait";
    case TracePhase::kConnect: return "connect";
    case TracePhase::kHello: return "hello";
    case TracePhase::kSendWait: return "send-wait";
    case TracePhase::kCompute: return "compute";
  }
  return "?";
}

void SessionTracer::Configure(size_t capacity, uint64_t slow_ns) {
  ring_ = capacity > 0 ? std::make_unique<TraceEvent[]>(capacity) : nullptr;
  capacity_ = capacity;
  next_.store(0, std::memory_order_relaxed);
  slow_ns_ = slow_ns;
  dumps_ = 0;
}

void SessionTracer::EnableCapture(size_t capacity_if_unconfigured) {
  if (capacity_ == 0 && capacity_if_unconfigured > 0) {
    ring_ = std::make_unique<TraceEvent[]>(capacity_if_unconfigured);
    capacity_ = capacity_if_unconfigured;
    next_.store(0, std::memory_order_relaxed);
  }
  capture_ = capacity_ > 0;
}

void SessionTracer::OnSessionEnd(uint64_t session_id, uint64_t trace_id,
                                 uint64_t latency_ns, const char* label,
                                 std::FILE* out) {
  if (session_id == 0 || capacity_ == 0) return;
  const bool slow = slow_ns_ > 0 && latency_ns >= slow_ns_;
  const bool captured = capture_ && (trace_id != 0 || slow);
  if (!slow && !captured) return;

  // Gather the session's surviving events oldest-first (the slot the ring
  // writes next holds the oldest) and blank them, so a duplicate end — or
  // a second consumer — stays silent.
  std::vector<CompletedTraceEvent> events;
  const size_t start = next_.load(std::memory_order_relaxed);
  for (size_t step = 0; step < capacity_; ++step) {
    TraceEvent& ev = ring_[(start + step) % capacity_];
    if (ev.session_id.load(std::memory_order_relaxed) != session_id) continue;
    CompletedTraceEvent e;
    e.ns = ev.ns.load(std::memory_order_relaxed);
    e.phase = static_cast<TracePhase>(ev.phase.load(std::memory_order_relaxed));
    e.enter = ev.enter.load(std::memory_order_relaxed);
    events.push_back(e);
    ev.session_id.store(0, std::memory_order_relaxed);
  }
  // No surviving events: either the ring wrapped past this session (size
  // the ring up — see docs/OBSERVABILITY.md) or this session already
  // dumped. Either way stay silent.
  if (events.empty()) return;

  if (captured) {
    CompletedTrace trace;
    trace.trace_id = trace_id;
    trace.session_id = session_id;
    trace.latency_ns = latency_ns;
    trace.slow = slow;
    trace.label = label;
    trace.events = events;
    std::lock_guard<std::mutex> lock(completed_mu_);
    if (completed_.size() >= kMaxCompletedTraces) {
      completed_.erase(completed_.begin());
    }
    completed_.push_back(std::move(trace));
  }

  if (slow && out != nullptr) {
    if (trace_id != 0) {
      std::fprintf(out,
                   "[setrec-trace] session %llu trace %016llx (%s) took "
                   "%.3f ms (threshold %.3f ms)\n",
                   static_cast<unsigned long long>(session_id),
                   static_cast<unsigned long long>(trace_id), label,
                   static_cast<double>(latency_ns) / 1e6,
                   static_cast<double>(slow_ns_) / 1e6);
    } else {
      std::fprintf(out,
                   "[setrec-trace] session %llu (%s) took %.3f ms "
                   "(threshold %.3f ms)\n",
                   static_cast<unsigned long long>(session_id), label,
                   static_cast<double>(latency_ns) / 1e6,
                   static_cast<double>(slow_ns_) / 1e6);
    }
    const uint64_t base_ns = events.front().ns;
    int depth = 0;
    for (const CompletedTraceEvent& ev : events) {
      if (!ev.enter && depth > 0) --depth;
      std::fprintf(out, "  %*s%c %-10s +%.3f ms\n", depth * 2, "",
                   ev.enter ? '>' : '<', TracePhaseName(ev.phase),
                   static_cast<double>(ev.ns - base_ns) / 1e6);
      if (ev.enter) ++depth;
    }
    ++dumps_;
  }
}

std::vector<CompletedTrace> SessionTracer::SnapshotCompleted() const {
  std::lock_guard<std::mutex> lock(completed_mu_);
  return completed_;
}

size_t SessionTracer::DumpRing(std::FILE* out) const {
  size_t printed = 0;
  uint64_t base_ns = 0;
  const size_t start = next_.load(std::memory_order_relaxed);
  for (size_t step = 0; step < capacity_; ++step) {
    const TraceEvent& ev = ring_[(start + step) % capacity_];
    const uint64_t session_id = ev.session_id.load(std::memory_order_relaxed);
    if (session_id == 0) continue;
    const uint64_t ns = ev.ns.load(std::memory_order_relaxed);
    if (printed == 0) base_ns = ns;
    std::fprintf(out,
                 "  session %llu trace %016llx %c %-10s +%.3f ms\n",
                 static_cast<unsigned long long>(session_id),
                 static_cast<unsigned long long>(
                     ev.trace_id.load(std::memory_order_relaxed)),
                 ev.enter.load(std::memory_order_relaxed) ? '>' : '<',
                 TracePhaseName(static_cast<TracePhase>(
                     ev.phase.load(std::memory_order_relaxed))),
                 static_cast<double>(ns - base_ns) / 1e6);
    ++printed;
  }
  return printed;
}

}  // namespace setrec::obs
