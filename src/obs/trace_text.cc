#include "obs/trace_text.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <utility>

namespace setrec::obs {
namespace {

bool ParseU64(std::string_view s, uint64_t* out, int base = 10) {
  if (s.empty()) return false;
  uint64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const std::from_chars_result r = std::from_chars(first, last, value, base);
  if (r.ec != std::errc() || r.ptr != last) return false;
  *out = value;
  return true;
}

std::string_view NextLine(std::string_view* rest) {
  const size_t nl = rest->find('\n');
  std::string_view line;
  if (nl == std::string_view::npos) {
    line = *rest;
    *rest = {};
  } else {
    line = rest->substr(0, nl);
    *rest = rest->substr(nl + 1);
  }
  return line;
}

}  // namespace

std::string FormatTraceExposition(const std::vector<CompletedTrace>& traces,
                                  std::string_view side) {
  std::string out = kTraceTextVersionLine;
  out += '\n';
  char buf[160];
  for (const CompletedTrace& trace : traces) {
    std::snprintf(buf, sizeof(buf),
                  "trace id=%016llx session=%llu side=%.*s latency_ns=%llu "
                  "slow=%d label=",
                  static_cast<unsigned long long>(trace.trace_id),
                  static_cast<unsigned long long>(trace.session_id),
                  static_cast<int>(side.size()), side.data(),
                  static_cast<unsigned long long>(trace.latency_ns),
                  trace.slow ? 1 : 0);
    out += buf;
    out += trace.label;
    out += '\n';
    for (const CompletedTraceEvent& ev : trace.events) {
      std::snprintf(buf, sizeof(buf), "event %s %s %llu\n",
                    TracePhaseName(ev.phase), ev.enter ? "enter" : "exit",
                    static_cast<unsigned long long>(ev.ns));
      out += buf;
    }
    out += "end\n";
  }
  return out;
}

bool TracePhaseFromName(std::string_view name, TracePhase* out) {
  for (int i = 0; i < kTracePhaseCount; ++i) {
    const TracePhase phase = static_cast<TracePhase>(i);
    if (name == TracePhaseName(phase)) {
      *out = phase;
      return true;
    }
  }
  return false;
}

bool ParseTraceExposition(std::string_view text,
                          std::vector<ParsedTrace>* out) {
  std::string_view rest = text;
  if (NextLine(&rest) != kTraceTextVersionLine) return false;
  ParsedTrace current;
  bool in_trace = false;
  while (!rest.empty()) {
    std::string_view line = NextLine(&rest);
    if (line.empty()) continue;
    if (line.rfind("trace ", 0) == 0) {
      if (in_trace) out->push_back(std::move(current));
      current = ParsedTrace{};
      in_trace = true;
      std::string_view fields = line.substr(6);
      // `label=` consumes the rest of the line (labels may hold spaces);
      // everything before it is space-separated key=value pairs.
      const size_t label_at = fields.find("label=");
      if (label_at != std::string_view::npos) {
        current.label = std::string(fields.substr(label_at + 6));
        fields = fields.substr(0, label_at);
      }
      while (!fields.empty()) {
        const size_t sp = fields.find(' ');
        std::string_view token = sp == std::string_view::npos
                                     ? fields
                                     : fields.substr(0, sp);
        fields = sp == std::string_view::npos ? std::string_view{}
                                              : fields.substr(sp + 1);
        const size_t eq = token.find('=');
        if (eq == std::string_view::npos) continue;
        const std::string_view key = token.substr(0, eq);
        const std::string_view value = token.substr(eq + 1);
        if (key == "id") {
          if (!ParseU64(value, &current.trace_id, 16)) return false;
        } else if (key == "session") {
          if (!ParseU64(value, &current.session_id)) return false;
        } else if (key == "latency_ns") {
          if (!ParseU64(value, &current.latency_ns)) return false;
        } else if (key == "slow") {
          current.slow = value == "1";
        } else if (key == "side") {
          current.side = std::string(value);
        }
        // Unknown keys: skipped, so new fields don't break old readers.
      }
    } else if (line.rfind("event ", 0) == 0) {
      if (!in_trace) return false;
      std::string_view fields = line.substr(6);
      const size_t sp1 = fields.find(' ');
      if (sp1 == std::string_view::npos) return false;
      const size_t sp2 = fields.find(' ', sp1 + 1);
      if (sp2 == std::string_view::npos) return false;
      const std::string_view name = fields.substr(0, sp1);
      const std::string_view dir = fields.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::string_view ns_text = fields.substr(sp2 + 1);
      CompletedTraceEvent ev;
      if (dir == "enter") {
        ev.enter = true;
      } else if (dir == "exit") {
        ev.enter = false;
      } else {
        return false;
      }
      if (!ParseU64(ns_text, &ev.ns)) return false;
      // Unknown phase names are skipped (a newer peer may trace phases
      // this build does not know), but the line shape must still parse.
      if (TracePhaseFromName(name, &ev.phase)) {
        current.events.push_back(ev);
      }
    } else if (line == "end") {
      if (!in_trace) return false;
      out->push_back(std::move(current));
      current = ParsedTrace{};
      in_trace = false;
    }
    // Unknown line types: skipped for forward compatibility.
  }
  if (in_trace) out->push_back(std::move(current));
  return true;
}

MergedTimeline MergeTraceTimelines(const ParsedTrace& client,
                                   const ParsedTrace* server) {
  MergedTimeline out;
  uint64_t s_enter = 0;
  uint64_t s_exit = 0;
  uint64_t hello_exit = 0;
  bool have_enter = false;
  for (const CompletedTraceEvent& ev : client.events) {
    if (ev.phase == TracePhase::kSession) {
      if (ev.enter && !have_enter) {
        s_enter = ev.ns;
        have_enter = true;
      }
      if (!ev.enter) s_exit = ev.ns;
    } else if (ev.phase == TracePhase::kHello && !ev.enter) {
      hello_exit = ev.ns;
    }
  }
  if (!have_enter || s_exit <= s_enter) {
    out.text = "merged trace: client session span missing\n";
    return out;
  }
  const uint64_t wall = s_exit - s_enter;

  // Coverage: union length of the client's non-session spans, clipped to
  // the session window. The client spans tile the wall clock by design
  // (connect/hello/send-wait/recv-wait/compute); what they miss is
  // unaccounted time the trace cannot explain.
  std::vector<std::pair<uint64_t, uint64_t>> spans;
  uint64_t open_ns[kTracePhaseCount] = {};
  bool open[kTracePhaseCount] = {};
  for (const CompletedTraceEvent& ev : client.events) {
    if (ev.phase == TracePhase::kSession) continue;
    const int p = static_cast<int>(ev.phase);
    if (ev.enter) {
      open_ns[p] = ev.ns;
      open[p] = true;
    } else if (open[p]) {
      const uint64_t lo = std::max(open_ns[p], s_enter);
      const uint64_t hi = std::min(ev.ns, s_exit);
      if (hi > lo) spans.emplace_back(lo, hi);
      open[p] = false;
    }
  }
  std::sort(spans.begin(), spans.end());
  uint64_t covered = 0;
  uint64_t cursor = 0;
  for (const auto& [lo, hi] : spans) {
    const uint64_t from = std::max(lo, cursor);
    if (hi > from) covered += hi - from;
    cursor = std::max(cursor, hi);
  }
  out.coverage = static_cast<double>(covered) / static_cast<double>(wall);

  // Interleave both halves on one time axis. Same-host halves share
  // CLOCK_MONOTONIC and line up directly; a server half whose timestamps
  // fall far outside the client window is a foreign clock domain and is
  // re-based onto the client's hello span (the first instant the server
  // could have seen the session).
  struct Line {
    int64_t ns = 0;
    bool server = false;
    bool enter = false;
    TracePhase phase = TracePhase::kSession;
  };
  std::vector<Line> lines;
  for (const CompletedTraceEvent& ev : client.events) {
    lines.push_back({static_cast<int64_t>(ev.ns) -
                         static_cast<int64_t>(s_enter),
                     false, ev.enter, ev.phase});
  }
  if (server != nullptr && !server->events.empty()) {
    out.has_server = true;
    const uint64_t srv_first = server->events.front().ns;
    int64_t shift = -static_cast<int64_t>(s_enter);
    const uint64_t slack = wall + 1'000'000'000;
    const bool foreign_clock =
        srv_first + slack < s_enter || srv_first > s_exit + slack;
    if (foreign_clock) {
      const uint64_t anchor = hello_exit != 0 ? hello_exit : s_enter;
      shift = static_cast<int64_t>(anchor) - static_cast<int64_t>(srv_first) -
              static_cast<int64_t>(s_enter);
    }
    for (const CompletedTraceEvent& ev : server->events) {
      lines.push_back(
          {static_cast<int64_t>(ev.ns) + shift, true, ev.enter, ev.phase});
    }
  }
  std::stable_sort(lines.begin(), lines.end(),
                   [](const Line& a, const Line& b) { return a.ns < b.ns; });

  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "merged trace id=%016llx wall=%.3f ms spans cover %.1f%% "
                "(%s)\n",
                static_cast<unsigned long long>(client.trace_id),
                static_cast<double>(wall) / 1e6, out.coverage * 100.0,
                out.has_server ? "client+server" : "client only");
  out.text = buf;
  for (const Line& line : lines) {
    std::snprintf(buf, sizeof(buf), "  %+10.3f ms  %-6s %c %s\n",
                  static_cast<double>(line.ns) / 1e6,
                  line.server ? "server" : "client", line.enter ? '>' : '<',
                  TracePhaseName(line.phase));
    out.text += buf;
  }
  return out;
}

}  // namespace setrec::obs
