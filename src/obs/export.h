#ifndef SETREC_OBS_EXPORT_H_
#define SETREC_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace setrec::obs {

/// Builds the versioned text exposition served by the `STAT?` admin frame
/// and the --stats-every dump. Line-oriented, machine-greppable:
///
///   # setrec-metrics v1
///   counter <name>{<labels>} <value>
///   gauge <name>{<labels>} <value>
///   histogram <name>{<labels>} count=N sum=S max=M p50=V p90=V p99=V p999=V
///
/// Labels are a comma-separated key="value" list and may be empty ({}).
/// Histogram values are in the unit named by the metric suffix (_ns, _keys,
/// _bytes). The version line is first; parsers must reject other versions.
class ExpositionWriter {
 public:
  ExpositionWriter();

  void Counter(std::string_view name, std::string_view labels,
               uint64_t value);
  void Gauge(std::string_view name, std::string_view labels, uint64_t value);
  void Histogram(std::string_view name, std::string_view labels,
                 const LatencyHistogram& h);

  const std::string& text() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Head(std::string_view type, std::string_view name,
            std::string_view labels);
  std::string out_;
};

/// Appends every histogram/counter of a (merged) service-layer registry.
/// `kind_names`/`codec_names` label the protocol x codec axes — the caller
/// (service layer) owns those names; obs only knows the array shape.
void AppendRegistry(const MetricRegistry& reg,
                    const char* const kind_names[kProtocolKinds],
                    const char* const codec_names[kWireCodecs],
                    ExpositionWriter& w);

/// Appends a (merged) net-layer pump metric block.
void AppendPumpMetrics(const PumpMetrics& pm, ExpositionWriter& w);

}  // namespace setrec::obs

#endif  // SETREC_OBS_EXPORT_H_
