#ifndef SETREC_OBS_EXPORT_H_
#define SETREC_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace setrec::obs {

/// Builds the versioned text exposition served by the `STAT?` admin frame
/// and the --stats-every dump. Line-oriented, machine-greppable:
///
///   # setrec-metrics v2
///   counter <name>{<labels>} <value>
///   gauge <name>{<labels>} <value>
///   histogram <name>{<labels>} count=N sum=S max=M p50=V p90=V p99=V p999=V
///   rate <name>{<labels>} <value>            (v2 and later)
///
/// Labels are a comma-separated key="value" list and may be empty ({}).
/// Histogram values are in the unit named by the metric suffix (_ns, _keys,
/// _bytes). The version line is first; parsers must reject versions they do
/// not know (ValidMetricsExpositionHeader).
///
/// Version rule: a vN+1 exposition only APPENDS line types after the lines
/// a vN parser understands — v2 is the v1 text plus trailing `rate` lines —
/// so a v1 consumer keeps working on the shared prefix. Producers must keep
/// emitting new line types last.
class ExpositionWriter {
 public:
  ExpositionWriter();

  void Counter(std::string_view name, std::string_view labels,
               uint64_t value);
  void Gauge(std::string_view name, std::string_view labels, uint64_t value);
  void Histogram(std::string_view name, std::string_view labels,
                 const LatencyHistogram& h);
  /// v2: a derived per-time rate, rendered with three decimals.
  void Rate(std::string_view name, std::string_view labels, double value);

  const std::string& text() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Head(std::string_view type, std::string_view name,
            std::string_view labels);
  std::string out_;
};

/// True iff `text` starts with a metrics version line this build can parse
/// (v1 or v2). Consumers of STAT? replies fail closed on anything else.
bool ValidMetricsExpositionHeader(std::string_view text);

/// Appends every histogram/counter of a (merged) service-layer registry.
/// `kind_names`/`codec_names` label the protocol x codec axes — the caller
/// (service layer) owns those names; obs only knows the array shape.
void AppendRegistry(const MetricRegistry& reg,
                    const char* const kind_names[kProtocolKinds],
                    const char* const codec_names[kWireCodecs],
                    ExpositionWriter& w);

/// Appends a (merged) net-layer pump metric block.
void AppendPumpMetrics(const PumpMetrics& pm, ExpositionWriter& w);

/// Appends the windowed rates. These are `rate` lines — v2 vocabulary — so
/// per the version rule they must be the LAST block appended.
void AppendRates(const RateRing::Rates& rates, ExpositionWriter& w);

}  // namespace setrec::obs

#endif  // SETREC_OBS_EXPORT_H_
