#include "obs/metrics.h"

namespace setrec::obs {

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
}

void LatencyHistogram::Reset() { *this = LatencyHistogram{}; }

uint64_t LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based: ceil(q * count), clamped into
  // [1, count] so q=0 reads the smallest sample and q=1 the largest.
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (static_cast<double>(target) < q * static_cast<double>(count_)) ++target;
  if (target == 0) target = 1;
  if (target > count_) target = count_;
  uint64_t cum = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cum += buckets_[i];
    if (cum >= target) {
      const uint64_t lo = BucketLowerBound(i);
      const uint64_t hi =
          i + 1 < kBuckets ? BucketLowerBound(i + 1) : max_ + 1;
      uint64_t mid = lo + (hi - lo) / 2;
      if (mid > max_) mid = max_;
      return mid;
    }
  }
  return max_;
}

void MetricRegistry::Merge(const MetricRegistry& other) {
  for (size_t k = 0; k < kProtocolKinds; ++k) {
    for (size_t c = 0; c < kWireCodecs; ++c) {
      session_latency[k][c].Merge(other.session_latency[k][c]);
      round_latency[k][c].Merge(other.round_latency[k][c]);
    }
  }
  opaque_session_latency.Merge(other.opaque_session_latency);
  flush_latency.Merge(other.flush_latency);
  flush_occupancy.Merge(other.flush_occupancy);
  lease_wait.Merge(other.lease_wait);
  lease_hold.Merge(other.lease_hold);
  decode_failures += other.decode_failures;
  retry_rounds += other.retry_rounds;
}

void MetricRegistry::Reset() { *this = MetricRegistry{}; }

void PumpMetrics::Merge(const PumpMetrics& other) {
  poll_wake.Merge(other.poll_wake);
  conn_round_trip.Merge(other.conn_round_trip);
  if (other.outbuf_high_watermark > outbuf_high_watermark) {
    outbuf_high_watermark = other.outbuf_high_watermark;
  }
  frame_decode_failures += other.frame_decode_failures;
  stat_requests += other.stat_requests;
}

void PumpMetrics::Reset() { *this = PumpMetrics{}; }

}  // namespace setrec::obs
