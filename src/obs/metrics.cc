#include "obs/metrics.h"

namespace setrec::obs {

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
}

void LatencyHistogram::Reset() { *this = LatencyHistogram{}; }

uint64_t LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based: ceil(q * count), clamped into
  // [1, count] so q=0 reads the smallest sample and q=1 the largest.
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (static_cast<double>(target) < q * static_cast<double>(count_)) ++target;
  if (target == 0) target = 1;
  if (target > count_) target = count_;
  uint64_t cum = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cum += buckets_[i];
    if (cum >= target) {
      const uint64_t lo = BucketLowerBound(i);
      const uint64_t hi =
          i + 1 < kBuckets ? BucketLowerBound(i + 1) : max_ + 1;
      uint64_t mid = lo + (hi - lo) / 2;
      if (mid > max_) mid = max_;
      return mid;
    }
  }
  return max_;
}

void MetricRegistry::Merge(const MetricRegistry& other) {
  for (size_t k = 0; k < kProtocolKinds; ++k) {
    for (size_t c = 0; c < kWireCodecs; ++c) {
      session_latency[k][c].Merge(other.session_latency[k][c]);
      round_latency[k][c].Merge(other.round_latency[k][c]);
    }
  }
  opaque_session_latency.Merge(other.opaque_session_latency);
  flush_latency.Merge(other.flush_latency);
  flush_occupancy.Merge(other.flush_occupancy);
  lease_wait.Merge(other.lease_wait);
  lease_hold.Merge(other.lease_hold);
  decode_failures += other.decode_failures;
  retry_rounds += other.retry_rounds;
}

void MetricRegistry::Reset() { *this = MetricRegistry{}; }

void PumpMetrics::Merge(const PumpMetrics& other) {
  poll_wake.Merge(other.poll_wake);
  conn_round_trip.Merge(other.conn_round_trip);
  if (other.outbuf_high_watermark > outbuf_high_watermark) {
    outbuf_high_watermark = other.outbuf_high_watermark;
  }
  away_from_poll.Merge(other.away_from_poll);
  ready_per_wakeup.Merge(other.ready_per_wakeup);
  frame_decode_failures += other.frame_decode_failures;
  stat_requests += other.stat_requests;
  trace_requests += other.trace_requests;
  poll_wakeups += other.poll_wakeups;
  timer_cascades += other.timer_cascades;
  timers_fired += other.timers_fired;
  handshake_timeouts += other.handshake_timeouts;
  idle_timeouts += other.idle_timeouts;
  admissions_rejected += other.admissions_rejected;
  poller_backends |= other.poller_backends;
}

void PumpMetrics::Reset() { *this = PumpMetrics{}; }

void RateRing::Advance(uint64_t now_ns, const Sample& cumulative) {
  if (window_start_ns_ == 0) {
    // First observation: start the open window here. (A zero clock is
    // nudged so "unstarted" stays unambiguous.)
    window_start_ns_ = now_ns != 0 ? now_ns : 1;
    last_now_ns_ = window_start_ns_;
    baseline_ = cumulative;
    current_ = cumulative;
    return;
  }
  current_ = cumulative;
  if (now_ns > last_now_ns_) last_now_ns_ = now_ns;
  if (now_ns <= window_start_ns_) return;
  uint64_t pending = (now_ns - window_start_ns_) / kWindowNs;
  if (pending > kWindows) {
    // Idle gap longer than the whole ring: every retained window will be
    // overwritten anyway, so skip ahead instead of looping.
    window_start_ns_ += (pending - kWindows) * kWindowNs;
    pending = kWindows;
  }
  for (uint64_t i = 0; i < pending; ++i) {
    // The first closed window absorbs the full delta since its baseline
    // (coarse attribution when Advance runs less than once per window);
    // the rest close empty. Totals — and therefore rates — stay exact.
    Window w;
    w.sessions = current_.sessions - baseline_.sessions;
    w.bytes = current_.bytes - baseline_.bytes;
    w.decode_failures = current_.decode_failures - baseline_.decode_failures;
    closed_[next_] = w;
    next_ = (next_ + 1) % kWindows;
    if (count_ < kWindows) ++count_;
    baseline_ = current_;
    window_start_ns_ += kWindowNs;
  }
}

RateRing::Rates RateRing::SnapshotAt(uint64_t now_ns) const {
  Rates r;
  if (window_start_ns_ == 0) return r;
  uint64_t sessions = current_.sessions - baseline_.sessions;
  uint64_t bytes = current_.bytes - baseline_.bytes;
  uint64_t failures = current_.decode_failures - baseline_.decode_failures;
  for (size_t i = 0; i < count_; ++i) {
    sessions += closed_[i].sessions;
    bytes += closed_[i].bytes;
    failures += closed_[i].decode_failures;
  }
  uint64_t open_age =
      now_ns > window_start_ns_ ? now_ns - window_start_ns_ : 0;
  if (open_age > kWindows * kWindowNs) open_age = kWindows * kWindowNs;
  const uint64_t span =
      static_cast<uint64_t>(count_) * kWindowNs + open_age;
  r.span_ns = span;
  if (span == 0) return r;
  const double per_sec = 1e9 / static_cast<double>(span);
  r.sessions_per_sec = static_cast<double>(sessions) * per_sec;
  r.bytes_per_sec = static_cast<double>(bytes) * per_sec;
  r.decode_failures_per_min = static_cast<double>(failures) * per_sec * 60.0;
  return r;
}

}  // namespace setrec::obs
