#include "obs/export.h"

namespace setrec::obs {

namespace {

constexpr char kVersionLine[] = "# setrec-metrics v1\n";

void AppendU64(std::string* out, uint64_t v) {
  out->append(std::to_string(v));
}

}  // namespace

ExpositionWriter::ExpositionWriter() : out_(kVersionLine) {}

void ExpositionWriter::Head(std::string_view type, std::string_view name,
                            std::string_view labels) {
  out_.append(type);
  out_.push_back(' ');
  out_.append(name);
  out_.push_back('{');
  out_.append(labels);
  out_.push_back('}');
  out_.push_back(' ');
}

void ExpositionWriter::Counter(std::string_view name, std::string_view labels,
                               uint64_t value) {
  Head("counter", name, labels);
  AppendU64(&out_, value);
  out_.push_back('\n');
}

void ExpositionWriter::Gauge(std::string_view name, std::string_view labels,
                             uint64_t value) {
  Head("gauge", name, labels);
  AppendU64(&out_, value);
  out_.push_back('\n');
}

void ExpositionWriter::Histogram(std::string_view name,
                                 std::string_view labels,
                                 const LatencyHistogram& h) {
  Head("histogram", name, labels);
  out_.append("count=");
  AppendU64(&out_, h.count());
  out_.append(" sum=");
  AppendU64(&out_, h.sum());
  out_.append(" max=");
  AppendU64(&out_, h.max());
  out_.append(" p50=");
  AppendU64(&out_, h.p50());
  out_.append(" p90=");
  AppendU64(&out_, h.p90());
  out_.append(" p99=");
  AppendU64(&out_, h.p99());
  out_.append(" p999=");
  AppendU64(&out_, h.p999());
  out_.push_back('\n');
}

void AppendRegistry(const MetricRegistry& reg,
                    const char* const kind_names[kProtocolKinds],
                    const char* const codec_names[kWireCodecs],
                    ExpositionWriter& w) {
  for (size_t k = 0; k < kProtocolKinds; ++k) {
    for (size_t c = 0; c < kWireCodecs; ++c) {
      std::string labels = "proto=\"";
      labels += kind_names[k];
      labels += "\",codec=\"";
      labels += codec_names[c];
      labels += "\"";
      if (reg.session_latency[k][c].count() > 0) {
        w.Histogram("setrec_session_latency_ns", labels,
                    reg.session_latency[k][c]);
      }
      if (reg.round_latency[k][c].count() > 0) {
        w.Histogram("setrec_round_latency_ns", labels,
                    reg.round_latency[k][c]);
      }
    }
  }
  if (reg.opaque_session_latency.count() > 0) {
    w.Histogram("setrec_session_latency_ns", "proto=\"opaque\"",
                reg.opaque_session_latency);
  }
  w.Histogram("setrec_flush_latency_ns", "", reg.flush_latency);
  w.Histogram("setrec_flush_occupancy_keys", "", reg.flush_occupancy);
  w.Histogram("setrec_lease_wait_ns", "", reg.lease_wait);
  w.Histogram("setrec_lease_hold_ns", "", reg.lease_hold);
  w.Counter("setrec_decode_failures", "", reg.decode_failures);
  w.Counter("setrec_retry_rounds", "", reg.retry_rounds);
}

void AppendPumpMetrics(const PumpMetrics& pm, ExpositionWriter& w) {
  w.Histogram("setrec_pump_poll_wake_ns", "", pm.poll_wake);
  w.Histogram("setrec_pump_conn_round_trip_ns", "", pm.conn_round_trip);
  w.Gauge("setrec_pump_outbuf_high_watermark_bytes", "",
          pm.outbuf_high_watermark);
  w.Counter("setrec_pump_frame_decode_failures", "",
            pm.frame_decode_failures);
  w.Counter("setrec_pump_stat_requests", "", pm.stat_requests);
}

}  // namespace setrec::obs
