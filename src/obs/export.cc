#include "obs/export.h"

#include <cstdio>

namespace setrec::obs {

namespace {

constexpr char kVersionLine[] = "# setrec-metrics v2\n";

void AppendU64(std::string* out, uint64_t v) {
  out->append(std::to_string(v));
}

}  // namespace

bool ValidMetricsExpositionHeader(std::string_view text) {
  // v1 is accepted for old servers; v2 is what this build emits. The
  // version token must end the line — "v21" is not a known version.
  for (std::string_view known : {"# setrec-metrics v1", "# setrec-metrics v2"}) {
    if (text.size() < known.size()) continue;
    if (text.substr(0, known.size()) != known) continue;
    if (text.size() == known.size() || text[known.size()] == '\n') return true;
  }
  return false;
}

ExpositionWriter::ExpositionWriter() : out_(kVersionLine) {}

void ExpositionWriter::Head(std::string_view type, std::string_view name,
                            std::string_view labels) {
  out_.append(type);
  out_.push_back(' ');
  out_.append(name);
  out_.push_back('{');
  out_.append(labels);
  out_.push_back('}');
  out_.push_back(' ');
}

void ExpositionWriter::Counter(std::string_view name, std::string_view labels,
                               uint64_t value) {
  Head("counter", name, labels);
  AppendU64(&out_, value);
  out_.push_back('\n');
}

void ExpositionWriter::Gauge(std::string_view name, std::string_view labels,
                             uint64_t value) {
  Head("gauge", name, labels);
  AppendU64(&out_, value);
  out_.push_back('\n');
}

void ExpositionWriter::Histogram(std::string_view name,
                                 std::string_view labels,
                                 const LatencyHistogram& h) {
  Head("histogram", name, labels);
  out_.append("count=");
  AppendU64(&out_, h.count());
  out_.append(" sum=");
  AppendU64(&out_, h.sum());
  out_.append(" max=");
  AppendU64(&out_, h.max());
  out_.append(" p50=");
  AppendU64(&out_, h.p50());
  out_.append(" p90=");
  AppendU64(&out_, h.p90());
  out_.append(" p99=");
  AppendU64(&out_, h.p99());
  out_.append(" p999=");
  AppendU64(&out_, h.p999());
  out_.push_back('\n');
}

void ExpositionWriter::Rate(std::string_view name, std::string_view labels,
                            double value) {
  Head("rate", name, labels);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  out_.append(buf);
  out_.push_back('\n');
}

void AppendRegistry(const MetricRegistry& reg,
                    const char* const kind_names[kProtocolKinds],
                    const char* const codec_names[kWireCodecs],
                    ExpositionWriter& w) {
  for (size_t k = 0; k < kProtocolKinds; ++k) {
    for (size_t c = 0; c < kWireCodecs; ++c) {
      std::string labels = "proto=\"";
      labels += kind_names[k];
      labels += "\",codec=\"";
      labels += codec_names[c];
      labels += "\"";
      if (reg.session_latency[k][c].count() > 0) {
        w.Histogram("setrec_session_latency_ns", labels,
                    reg.session_latency[k][c]);
      }
      if (reg.round_latency[k][c].count() > 0) {
        w.Histogram("setrec_round_latency_ns", labels,
                    reg.round_latency[k][c]);
      }
    }
  }
  if (reg.opaque_session_latency.count() > 0) {
    w.Histogram("setrec_session_latency_ns", "proto=\"opaque\"",
                reg.opaque_session_latency);
  }
  w.Histogram("setrec_flush_latency_ns", "", reg.flush_latency);
  w.Histogram("setrec_flush_occupancy_keys", "", reg.flush_occupancy);
  w.Histogram("setrec_lease_wait_ns", "", reg.lease_wait);
  w.Histogram("setrec_lease_hold_ns", "", reg.lease_hold);
  w.Counter("setrec_decode_failures", "", reg.decode_failures);
  w.Counter("setrec_retry_rounds", "", reg.retry_rounds);
}

void AppendPumpMetrics(const PumpMetrics& pm, ExpositionWriter& w) {
  w.Histogram("setrec_pump_poll_wake_ns", "", pm.poll_wake);
  w.Histogram("setrec_pump_conn_round_trip_ns", "", pm.conn_round_trip);
  w.Gauge("setrec_pump_outbuf_high_watermark_bytes", "",
          pm.outbuf_high_watermark);
  w.Counter("setrec_pump_frame_decode_failures", "",
            pm.frame_decode_failures);
  w.Counter("setrec_pump_stat_requests", "", pm.stat_requests);
  w.Counter("setrec_pump_trace_requests", "", pm.trace_requests);
  w.Histogram("setrec_pump_away_from_poll_ns", "", pm.away_from_poll);
  w.Histogram("setrec_pump_ready_fds_per_wakeup", "", pm.ready_per_wakeup);
  w.Counter("setrec_pump_poll_wakeups", "", pm.poll_wakeups);
  w.Counter("setrec_pump_timer_cascades", "", pm.timer_cascades);
  w.Counter("setrec_pump_timers_fired", "", pm.timers_fired);
  w.Counter("setrec_pump_handshake_timeouts", "", pm.handshake_timeouts);
  w.Counter("setrec_pump_idle_timeouts", "", pm.idle_timeouts);
  w.Counter("setrec_pump_admissions_rejected", "", pm.admissions_rejected);
  // One labeled gauge per backend the merged pumps ran on ("poll",
  // "epoll", "io_uring") — new NAMES of an existing line type, so this
  // stays within the v2 exposition contract.
  // Bit positions follow PollerKind (net/poller.h); names are duplicated
  // here so obs stays below net in the layering.
  static constexpr const char* kBackendNames[] = {nullptr, "poll", "epoll",
                                                  "io_uring"};
  for (uint32_t kind = 1; kind <= 3; ++kind) {
    if ((pm.poller_backends & (1u << kind)) == 0) continue;
    std::string labels = "backend=\"";
    labels += kBackendNames[kind];
    labels += "\"";
    w.Gauge("setrec_pump_poller_backend", labels, 1);
  }
}

void AppendRates(const RateRing::Rates& rates, ExpositionWriter& w) {
  w.Rate("setrec_sessions_per_sec", "", rates.sessions_per_sec);
  w.Rate("setrec_bytes_per_sec", "", rates.bytes_per_sec);
  w.Rate("setrec_decode_failures_per_min", "", rates.decode_failures_per_min);
  w.Rate("setrec_rate_window_seconds", "",
         static_cast<double>(rates.span_ns) / 1e9);
}

}  // namespace setrec::obs
