#ifndef SETREC_OBS_TRACE_TEXT_H_
#define SETREC_OBS_TRACE_TEXT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace setrec::obs {

/// Text form of a tracer's completed traces — the TRACE? admin frame's
/// payload and the merge tool's interchange format. Line-oriented:
///
///   # setrec-trace v1
///   trace id=00000000075bcd15 session=42 side=server latency_ns=812345
///       slow=0 label=iblt2/dense              (one line on the wire)
///   event session enter 1000
///   event recv-wait enter 1200
///   event recv-wait exit 4200
///   event session exit 5000
///   end
///
/// Unknown `key=value` pairs on a `trace` line are skipped, so fields can
/// be added without breaking old readers; an unknown version line fails
/// closed. (The obs layer has no util/status dependency, hence bool.)
inline constexpr char kTraceTextVersionLine[] = "# setrec-trace v1";

std::string FormatTraceExposition(const std::vector<CompletedTrace>& traces,
                                  std::string_view side);

struct ParsedTrace {
  uint64_t trace_id = 0;
  uint64_t session_id = 0;
  uint64_t latency_ns = 0;
  bool slow = false;
  std::string side;
  std::string label;
  std::vector<CompletedTraceEvent> events;
};

/// Strict version check, forward-compatible field skip. Returns false on
/// an unknown version, a malformed event line, or an event outside a
/// trace block; `out` holds every trace parsed before the failure.
bool ParseTraceExposition(std::string_view text, std::vector<ParsedTrace>* out);

/// Inverse of TracePhaseName. Returns false for unknown names.
bool TracePhaseFromName(std::string_view name, TracePhase* out);

/// One timeline from a traced session's two halves. `coverage` is the
/// fraction of the client's session wall clock accounted for by its
/// non-session spans (connect/hello/send/recv/compute) — the "where did
/// the time go" number the acceptance gate checks.
struct MergedTimeline {
  std::string text;
  double coverage = 0.0;
  bool has_server = false;
};

/// Merges the client half with the server half (nullptr = client-only).
/// Both halves on one host share CLOCK_MONOTONIC and interleave directly;
/// a server whose timestamps fall outside the client's session window
/// (different clock domain) is re-based onto the client's hello span.
MergedTimeline MergeTraceTimelines(const ParsedTrace& client,
                                   const ParsedTrace* server);

}  // namespace setrec::obs

#endif  // SETREC_OBS_TRACE_TEXT_H_
