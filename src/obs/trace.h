#ifndef SETREC_OBS_TRACE_H_
#define SETREC_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <vector>

namespace setrec::obs {

/// Phases a session passes through inside a shard. Enter/exit pairs of the
/// same phase nest to form the session's span tree.
enum class TracePhase : uint8_t {
  kSession = 0,   ///< StartSession -> FinalizeSession.
  kRoundWait,     ///< Parked on a round boundary (Send deferred).
  kFlushWait,     ///< Parked on the planner's build barrier.
  kLeaseWait,     ///< Parked on a SharedServiceCache build lease.
  kRecvWait,      ///< Parked waiting for a remote frame.
};

const char* TracePhaseName(TracePhase phase);

struct TraceEvent {
  uint64_t session_id = 0;  ///< 0 = empty slot.
  uint64_t ns = 0;          ///< NowNanos() at record time.
  TracePhase phase = TracePhase::kSession;
  bool enter = false;
};

/// Per-shard fixed-capacity ring of trace events, owned and written by the
/// shard's single driver thread. Recording is a store into a preallocated
/// slot — zero heap allocations (pinned by tests/obs_trace_test.cc with the
/// operator-new counter). When a session finishes slower than the
/// configured threshold, OnSessionEnd dumps its span tree once and blanks
/// the session's events so a duplicate end cannot dump twice.
class SessionTracer {
 public:
  /// Allocates the ring (the only allocation the tracer ever makes) and
  /// arms the slow-session threshold; capacity 0 or slow_ns 0 disables.
  void Configure(size_t capacity, uint64_t slow_ns);

  bool enabled() const { return slow_ns_ > 0 && !ring_.empty(); }
  uint64_t slow_ns() const { return slow_ns_; }
  size_t capacity() const { return ring_.size(); }
  size_t dumps() const { return dumps_; }

  /// Records one phase-boundary event. Callers gate on enabled().
  void Record(uint64_t session_id, TracePhase phase, bool enter,
              uint64_t ns) {
    TraceEvent& slot = ring_[next_];
    slot.session_id = session_id;
    slot.ns = ns;
    slot.phase = phase;
    slot.enter = enter;
    ++next_;
    if (next_ == ring_.size()) next_ = 0;
  }

  /// Called once per finished session: if `latency_ns` >= the threshold,
  /// prints the session's surviving span events (oldest first, indented by
  /// nesting depth) to `out` and blanks them from the ring. `label` is the
  /// session's human-readable tag (protocol/codec or the spec label).
  void OnSessionEnd(uint64_t session_id, uint64_t latency_ns,
                    const char* label, std::FILE* out);

 private:
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;
  uint64_t slow_ns_ = 0;
  size_t dumps_ = 0;
};

}  // namespace setrec::obs

#endif  // SETREC_OBS_TRACE_H_
