#ifndef SETREC_OBS_TRACE_H_
#define SETREC_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace setrec::obs {

/// Phases a session passes through. Enter/exit pairs of the same phase
/// nest to form the session's span tree. The first five are recorded by a
/// shard's driver; the last four are client-side (stream_party) so a
/// traced session's two halves decompose its wall clock together.
enum class TracePhase : uint8_t {
  kSession = 0,   ///< StartSession -> FinalizeSession (or client wall).
  kRoundWait,     ///< Parked on a round boundary (Send deferred).
  kFlushWait,     ///< Parked on the planner's build barrier.
  kLeaseWait,     ///< Parked on a SharedServiceCache build lease.
  kRecvWait,      ///< Parked waiting for a remote frame / blocking read.
  kConnect,       ///< Client: connect(2) until the socket is up.
  kHello,         ///< Client: writing the session hello frame.
  kSendWait,      ///< Client: blocking write of one outbound frame.
  kCompute,       ///< Client: running protocol code between wire waits.
};

inline constexpr int kTracePhaseCount = 9;

const char* TracePhaseName(TracePhase phase);

/// Ring slots use relaxed atomics on every field so a foreign thread (the
/// stall watchdog) can DumpRing a live shard without a data race; the
/// owning driver is still the only writer, so Record stays a handful of
/// plain stores on x86. A concurrent dump may see a slot mid-update —
/// acceptable for a diagnostic of a stalled shard.
struct TraceEvent {
  std::atomic<uint64_t> session_id{0};  ///< 0 = empty slot.
  std::atomic<uint64_t> trace_id{0};    ///< 0 = untraced session.
  std::atomic<uint64_t> ns{0};          ///< NowNanos() at record time.
  std::atomic<uint8_t> phase{0};
  std::atomic<bool> enter{false};
};

/// One finished session's gathered events, kept for the TRACE? admin frame.
struct CompletedTraceEvent {
  uint64_t ns = 0;
  TracePhase phase = TracePhase::kSession;
  bool enter = false;
};

struct CompletedTrace {
  uint64_t trace_id = 0;    ///< 0 only for slow untraced sessions.
  uint64_t session_id = 0;
  uint64_t latency_ns = 0;
  bool slow = false;        ///< Crossed the slow-session threshold.
  std::string label;
  std::vector<CompletedTraceEvent> events;
};

/// Per-shard fixed-capacity ring of trace events, written by the shard's
/// single driver thread. Recording is a store into a preallocated slot —
/// zero heap allocations (pinned by tests/obs_trace_test.cc with the
/// operator-new counter). When a session finishes, OnSessionEnd gathers
/// its surviving events once (blanking them so a duplicate end is silent):
/// a slow session dumps its span tree to `out`, and a traced or slow one
/// is retained in a small bounded store that TRACE? serves.
class SessionTracer {
 public:
  /// Allocates the ring (the only allocation the tracer's hot path ever
  /// depends on) and arms the slow-session threshold; capacity 0 or
  /// slow_ns 0 leaves the slow dump disabled.
  void Configure(size_t capacity, uint64_t slow_ns);

  /// Arms trace capture for the TRACE? endpoint: sessions carrying a
  /// nonzero trace id (and slow sessions) are retained in the completed
  /// store even when no slow threshold is set. Allocates a ring of
  /// `capacity_if_unconfigured` slots if Configure never ran. Call before
  /// the shard starts driving sessions.
  void EnableCapture(size_t capacity_if_unconfigured);

  /// Slow-session dumping armed (legacy meaning: threshold + ring).
  bool enabled() const { return slow_ns_ > 0 && capacity_ > 0; }
  /// Recording is worthwhile: some consumer (slow dump or capture) exists.
  bool armed() const { return capacity_ > 0 && (slow_ns_ > 0 || capture_); }
  uint64_t slow_ns() const { return slow_ns_; }
  size_t capacity() const { return capacity_; }
  size_t dumps() const { return dumps_; }

  /// Records one phase-boundary event. Callers gate on armed().
  void Record(uint64_t session_id, TracePhase phase, bool enter, uint64_t ns,
              uint64_t trace_id = 0) {
    const size_t at = next_.load(std::memory_order_relaxed);
    TraceEvent& slot = ring_[at];
    slot.session_id.store(session_id, std::memory_order_relaxed);
    slot.trace_id.store(trace_id, std::memory_order_relaxed);
    slot.ns.store(ns, std::memory_order_relaxed);
    slot.phase.store(static_cast<uint8_t>(phase), std::memory_order_relaxed);
    slot.enter.store(enter, std::memory_order_relaxed);
    const size_t next = at + 1;
    next_.store(next == capacity_ ? 0 : next, std::memory_order_relaxed);
  }

  /// Called once per finished session by the driver thread: gathers the
  /// session's surviving ring events (oldest first) and blanks them. If
  /// `latency_ns` crosses the slow threshold, prints the span tree to
  /// `out` (with the trace id when nonzero, so server log lines join with
  /// client traces). If capture is enabled and the session was traced (or
  /// slow), retains a CompletedTrace for TRACE?. `label` is the session's
  /// human-readable tag (protocol/codec or the spec label).
  void OnSessionEnd(uint64_t session_id, uint64_t trace_id,
                    uint64_t latency_ns, const char* label, std::FILE* out);

  /// Thread-safe copy of the recently completed traces, oldest first.
  std::vector<CompletedTrace> SnapshotCompleted() const;

  /// Dumps every surviving ring event (oldest first, nothing blanked) —
  /// the stall watchdog's view of a wedged shard. Safe to call from a
  /// foreign thread while the driver records. Returns events printed.
  size_t DumpRing(std::FILE* out) const;

 private:
  // Completed traces kept for TRACE? before the oldest is dropped.
  static constexpr size_t kMaxCompletedTraces = 32;

  std::unique_ptr<TraceEvent[]> ring_;
  size_t capacity_ = 0;
  std::atomic<size_t> next_{0};
  uint64_t slow_ns_ = 0;
  size_t dumps_ = 0;
  bool capture_ = false;

  mutable std::mutex completed_mu_;
  std::vector<CompletedTrace> completed_;
};

}  // namespace setrec::obs

#endif  // SETREC_OBS_TRACE_H_
