#ifndef SETREC_OBS_WATCHDOG_H_
#define SETREC_OBS_WATCHDOG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace setrec::obs {

/// One relaxed-atomic timestamp a shard's driver stamps at the top of
/// every Step. A foreign watchdog thread reads it; relaxed is enough —
/// the watchdog tolerates any staleness below its threshold.
struct Heartbeat {
  std::atomic<uint64_t> last_beat_ns{0};

  void Beat(uint64_t now_ns) {
    last_beat_ns.store(now_ns, std::memory_order_relaxed);
  }
  uint64_t last() const { return last_beat_ns.load(std::memory_order_relaxed); }
};

/// Detects a driving thread that has stopped beating while work is queued
/// for it — the "shard wedged with a full mailbox" failure the published
/// metrics cannot show (they just go stale). On detection it dumps the
/// shard's tracer ring (the last events the driver recorded before it
/// stalled) once per stall episode; a fresh beat re-arms the dump.
///
/// Checks are driven either by the owner (CheckOnce with an explicit
/// clock — deterministic, what the unit test uses) or by a background
/// thread (Start/Stop).
class StallWatchdog {
 public:
  struct Shard {
    std::string name;
    const Heartbeat* heartbeat = nullptr;
    std::function<bool()> queued_work;     ///< Racy hint is fine.
    const SessionTracer* tracer = nullptr; ///< Optional ring to dump.
    /// Optional: p99 of the driver's time away from its poller, in ns
    /// (PumpMetrics::away_from_poll). Printed in the stall banner so the
    /// dump distinguishes "wedged mid-pass" from "never scheduled".
    std::function<uint64_t()> away_p99_ns;
  };

  ~StallWatchdog() { Stop(); }

  /// Registers a shard. Not thread-safe against a running watchdog —
  /// register everything before Start.
  void Watch(Shard shard);

  /// One pass over every shard: a shard whose last beat is older than
  /// `stall_ns` AND reports queued work gets one dump per stall episode.
  /// Returns the number of dumps this pass. Never-started shards
  /// (beat 0) are skipped.
  size_t CheckOnce(uint64_t now_ns, uint64_t stall_ns, std::FILE* out);

  /// Spawns the polling thread. `poll_ms` bounds detection latency.
  void Start(uint64_t stall_ns, uint64_t poll_ms, std::FILE* out);
  void Stop();

  size_t stall_dumps() const {
    return stall_dumps_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<Shard> shards_;
  std::vector<uint64_t> dumped_at_beat_;  ///< Per-shard episode marker.
  std::atomic<size_t> stall_dumps_{0};
  std::thread thread_;
  std::atomic<bool> stop_{false};
};

}  // namespace setrec::obs

#endif  // SETREC_OBS_WATCHDOG_H_
