#ifndef SETREC_OBS_METRICS_H_
#define SETREC_OBS_METRICS_H_

#include <bit>
#include <cstddef>
#include <cstdint>

namespace setrec::obs {

/// Fixed-bucket log-linear histogram (HDR-style), sized for nanosecond
/// latencies but usable for any uint64 value distribution (the planner also
/// records flush occupancy in keys). Layout: values below 8 get exact unit
/// buckets; above that each power-of-two octave is split into 4 sub-buckets,
/// so consecutive bucket bounds differ by at most 25% — quantiles read back
/// from the histogram land within one bucket of the exact sorted-sample
/// answer (pinned by tests/obs_metrics_test.cc). 256 buckets cover the full
/// uint64 range in 2 KiB, so a registry full of histograms is cheap enough
/// to embed per shard.
///
/// Threading: same single-writer discipline as ServiceStats — plain
/// integers, written only by the owning shard's driver thread; cross-thread
/// readers go through the owner's published snapshot (see
/// SyncService::SnapshotPublished), never this live object.
class LatencyHistogram {
 public:
  static constexpr size_t kSubBuckets = 4;  ///< Sub-buckets per octave.
  static constexpr size_t kBuckets = 256;

  /// Bucket index for `v`: exact below 8, then
  /// 8 + (octave-1)*4 + sub-bucket. Allocation-free; a handful of ALU ops.
  static constexpr size_t BucketIndex(uint64_t v) {
    if (v < 8) return static_cast<size_t>(v);
    const int shift = 61 - std::countl_zero(v);  // msb - 2, >= 1.
    const size_t sub = static_cast<size_t>((v >> shift) - 4);
    return 8 + (static_cast<size_t>(shift) - 1) * kSubBuckets + sub;
  }

  /// Inclusive lower bound of bucket `index` (inverse of BucketIndex).
  static constexpr uint64_t BucketLowerBound(size_t index) {
    if (index < 8) return index;
    const size_t octave = (index - 8) / kSubBuckets + 1;
    const size_t sub = (index - 8) % kSubBuckets;
    return (uint64_t{4} + sub) << octave;
  }

  /// Records one sample. Allocation-free; safe inside alloc-free lint
  /// regions.
  void Record(uint64_t v) {
    ++buckets_[BucketIndex(v)];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
  }

  /// Element-wise accumulation of `other` into this histogram (shard merge).
  void Merge(const LatencyHistogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  uint64_t bucket(size_t index) const { return buckets_[index]; }

  /// Value at quantile `q` in [0, 1]: the midpoint of the bucket holding the
  /// ceil(q * count)-th sample, clamped to the recorded max. Returns 0 on an
  /// empty histogram.
  uint64_t Quantile(double q) const;
  uint64_t p50() const { return Quantile(0.50); }
  uint64_t p90() const { return Quantile(0.90); }
  uint64_t p99() const { return Quantile(0.99); }
  uint64_t p999() const { return Quantile(0.999); }

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

/// Label-space dimensions for the per-protocol histograms. The service layer
/// static_asserts kProtocolKinds == kSsrProtocolKindCount (obs sits below
/// service in the layer graph and cannot include protocol headers).
inline constexpr size_t kProtocolKinds = 4;
inline constexpr size_t kWireCodecs = 2;

/// Per-shard metric block for the service layer: written lock-free by the
/// shard's single driver thread (exactly like ServiceStats), merged across
/// shards from published snapshots. All recording is allocation-free.
struct MetricRegistry {
  /// End-to-end session latency (StartSession -> FinalizeSession), labelled
  /// protocol kind x wire codec. Opaque/mirror halves (no local protocol
  /// run) get their own histogram so they cannot skew per-protocol tails.
  LatencyHistogram session_latency[kProtocolKinds][kWireCodecs];
  LatencyHistogram opaque_session_latency;
  /// Time between consecutive round boundaries (Send parks) of a session.
  LatencyHistogram round_latency[kProtocolKinds][kWireCodecs];
  /// Planner flush: wall time of one FlushPlanner pass, and its occupancy
  /// (total keys across the batched IBLT ops) in keys, not nanoseconds.
  LatencyHistogram flush_latency;
  LatencyHistogram flush_occupancy;
  /// Build-lease contention in SharedServiceCache: how long a parked session
  /// waited for the lease, and how long holders kept it.
  LatencyHistogram lease_wait;
  LatencyHistogram lease_hold;
  /// Protocol-visible failure counters (cheap, always on).
  size_t decode_failures = 0;
  size_t retry_rounds = 0;

  void Merge(const MetricRegistry& other);
  void Reset();
};

/// Per-pump metric block for the net layer: written only by the pump thread
/// that owns the poll loop, merged from published snapshots.
struct PumpMetrics {
  /// Wall time of the post-poll processing burst (reads, service step,
  /// writes) per poll wakeup.
  LatencyHistogram poll_wake;
  /// Per-connection round trip: last outbound frame write -> next inbound
  /// frame on the same connection.
  LatencyHistogram conn_round_trip;
  /// Wall time AWAY from the poller: Wait return -> next Wait entry.
  /// Unlike poll_wake this records every pass, including timer-only
  /// wakeups with zero ready fds, so a pump stalled in processing is
  /// visible even when no peer is talking (StallWatchdog prints its p99).
  LatencyHistogram away_from_poll;
  /// Ready fds reported per poller wakeup (a count, not nanoseconds; the
  /// log-linear buckets are exact in the small-count range that matters).
  LatencyHistogram ready_per_wakeup;
  /// High-watermark of any connection's pending outbuf bytes (max-gauge).
  size_t outbuf_high_watermark = 0;
  size_t frame_decode_failures = 0;
  size_t stat_requests = 0;
  size_t trace_requests = 0;
  /// Poller Wait calls that returned (readiness, timeout, or wake pipe).
  size_t poll_wakeups = 0;
  /// Timer-wheel internals: boundary cascades and timers fired.
  size_t timer_cascades = 0;
  size_t timers_fired = 0;
  /// Connections reaped for never completing a hello in time.
  size_t handshake_timeouts = 0;
  /// Established connections reaped for byte-level silence.
  size_t idle_timeouts = 0;
  /// Connections shed with a busy frame by load-aware admission.
  size_t admissions_rejected = 0;
  /// Bitmask of PollerKind values (1 << kind) the pump(s) ran on; merged
  /// snapshots can span shards on different backends, hence a set.
  uint32_t poller_backends = 0;

  void Merge(const PumpMetrics& other);
  void Reset();
};

/// Windowed time series over a shard's cumulative counters: a small ring of
/// delta-encoded 1-second windows (60 by default ≈ one minute of history),
/// from which derived rates (sessions/sec, bytes/sec, decode-failures/min)
/// fall out without ever storing per-event data. Same single-writer
/// discipline as the registry: the driver Advances it against its live
/// counters; foreign readers get the published copy (plain arrays, so the
/// snapshot is a memcpy) and compute rates at their own read time.
class RateRing {
 public:
  static constexpr size_t kWindows = 60;
  static constexpr uint64_t kWindowNs = 1'000'000'000;

  /// Cumulative counter values at one instant (monotone non-decreasing).
  struct Sample {
    uint64_t sessions = 0;
    uint64_t bytes = 0;
    uint64_t decode_failures = 0;
  };

  /// Derived rates over the ring's retained span. Accumulate sums rates
  /// across shards (each shard's traffic is disjoint).
  struct Rates {
    double sessions_per_sec = 0.0;
    double bytes_per_sec = 0.0;
    double decode_failures_per_min = 0.0;
    uint64_t span_ns = 0;  ///< Time the rates are averaged over.

    void Accumulate(const Rates& other) {
      sessions_per_sec += other.sessions_per_sec;
      bytes_per_sec += other.bytes_per_sec;
      decode_failures_per_min += other.decode_failures_per_min;
      if (other.span_ns > span_ns) span_ns = other.span_ns;
    }
  };

  /// Folds the current counter values in at `now_ns`, closing any windows
  /// the clock has passed. The first call sets the baseline. Owner thread
  /// only; allocation-free.
  void Advance(uint64_t now_ns, const Sample& cumulative);

  /// Rates over everything the ring retains, with the open window's age
  /// measured against `now_ns` (so an idle ring decays toward zero as
  /// time passes without traffic). Zero rates before two distinct
  /// instants have been observed.
  Rates SnapshotAt(uint64_t now_ns) const;
  Rates Snapshot() const { return SnapshotAt(last_now_ns_); }

  uint64_t last_advance_ns() const { return last_now_ns_; }

 private:
  struct Window {
    uint64_t sessions = 0;
    uint64_t bytes = 0;
    uint64_t decode_failures = 0;
  };

  Window closed_[kWindows] = {};  ///< Ring of closed per-window deltas.
  size_t next_ = 0;               ///< Next closed_ slot to overwrite.
  size_t count_ = 0;              ///< Closed windows retained (<= kWindows).
  uint64_t window_start_ns_ = 0;  ///< Open window's start; 0 = unstarted.
  uint64_t last_now_ns_ = 0;
  Sample baseline_ = {};          ///< Counter values at the open window start.
  Sample current_ = {};           ///< Latest counter values seen.
};

}  // namespace setrec::obs

#endif  // SETREC_OBS_METRICS_H_
