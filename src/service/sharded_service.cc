#include "service/sharded_service.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/clock.h"

namespace setrec {

ShardedSyncService::ShardedSyncService(ShardedSyncServiceOptions options)
    : options_(std::move(options)),
      cache_(std::make_shared<SharedServiceCache>(options_.cache)) {
  size_t n = options_.shards;
  if (n == 0) {
    n = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->service = std::make_unique<SyncService>(
        options_.service, cache_, static_cast<int>(i));
    // Shard i owns the id residue class {i+1, i+1+N, ...}: ids allocated
    // by the facade and by pump threads submitting to a shard directly
    // never collide, and ShardOf(id) recovers the owner.
    shard->service->ConfigureIds(static_cast<uint64_t>(i) + 1, n);
    shards_.push_back(std::move(shard));
  }
  // Lease releases whose waiters live on another shard go through that
  // shard's mailbox + wake (the releasing shard's thread never touches a
  // foreign coroutine).
  for (size_t i = 0; i < n; ++i) {
    shards_[i]->service->set_cross_shard_wake(
        [this](int shard, uint64_t key) {
          shards_[static_cast<size_t>(shard)]->service->EnqueueLeaseWake(key);
          NotifyShard(static_cast<size_t>(shard));
        });
  }
  if (options_.spawn_threads) {
    for (size_t i = 0; i < n; ++i) {
      shards_[i]->thread = std::thread([this, i] { ShardLoop(i); });
    }
  }
}

ShardedSyncService::~ShardedSyncService() {
  stop_.store(true, std::memory_order_release);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->thread.joinable()) {
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->wake = true;
      }
      shard->cv.notify_one();
    }
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

uint64_t ShardedSyncService::RegisterSharedSet(
    std::shared_ptr<const SetOfSets> set) {
  return cache_->RegisterSharedSet(std::move(set));
}

std::shared_ptr<const SetOfSets> ShardedSyncService::SharedSetById(
    uint64_t id) const {
  return cache_->SharedSetById(id);
}

uint64_t ShardedSyncService::Submit(SessionSpec spec) {
  // Round-robin over shards; the id comes from the target shard's strided
  // allocator, so ShardOf(id) lands back on it.
  const size_t shard = static_cast<size_t>(
      rr_next_.fetch_add(1, std::memory_order_relaxed) % shards_.size());
  const uint64_t id = shards_[shard]->service->AllocateSessionId();
  submitted_.fetch_add(1, std::memory_order_acq_rel);
  shards_[shard]->service->EnqueueSubmit(id, std::move(spec));
  NotifyShard(shard);
  return id;
}

bool ShardedSyncService::DeliverRemote(uint64_t id, Channel::Message message) {
  if (id == 0) return false;
  const size_t shard = ShardOf(id);
  shards_[shard]->service->EnqueueRemote(id, std::move(message));
  NotifyShard(shard);
  return true;
}

bool ShardedSyncService::CancelSession(uint64_t id, Status reason) {
  if (id == 0) return false;
  const size_t shard = ShardOf(id);
  shards_[shard]->service->EnqueueCancel(id, std::move(reason));
  NotifyShard(shard);
  return true;
}

void ShardedSyncService::NotifyShard(size_t shard) {
  Shard& s = *shards_[shard];
  if (s.thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(s.mu);
      s.wake = true;
    }
    s.cv.notify_one();
    return;
  }
  // Copy under the lock: set_shard_wake_hook (install at pump start, clear
  // at pump teardown) may race with notifiers on other threads.
  std::function<void(size_t)> hook;
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    hook = shard_wake_hook_;
  }
  if (hook) hook(shard);
}

void ShardedSyncService::Harvest(size_t index) {
  std::vector<SessionResult> batch = shards_[index]->service->TakeResults();
  if (batch.empty()) return;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    for (SessionResult& result : batch) {
      results_.push_back(std::move(result));
    }
    finished_.fetch_add(batch.size(), std::memory_order_acq_rel);
  }
  done_cv_.notify_all();
}

void ShardedSyncService::ShardLoop(size_t index) {
  Shard& s = *shards_[index];
  for (;;) {
    // Drain: step until the shard settles — no runnable work left, or only
    // sessions parked on remote input (resumes stop advancing; spinning on
    // those would burn the core the shard owns). A mailbox push between
    // Step's drain and its return re-enters the loop.
    for (;;) {
      const size_t before = s.service->stats().resumes;
      const bool more = s.service->Step();
      Harvest(index);
      if (s.service->HasMailboxWork()) continue;
      if (!more || s.service->stats().resumes == before) break;
    }
    std::unique_lock<std::mutex> lock(s.mu);
    if (!s.wake) {
      if (stop_.load(std::memory_order_acquire)) break;
      s.cv.wait(lock, [&] {
        return s.wake || stop_.load(std::memory_order_acquire);
      });
    }
    if (!s.wake && stop_.load(std::memory_order_acquire)) break;
    s.wake = false;
  }
  // Final sweep so nothing enqueued right at shutdown is lost silently
  // (bounded: sessions still parked on remote input cannot progress and
  // must not spin the shutdown).
  for (;;) {
    const size_t before = s.service->stats().resumes;
    if (!s.service->Step()) break;
    if (s.service->stats().resumes == before &&
        !s.service->HasMailboxWork()) {
      break;
    }
  }
  Harvest(index);
}

void ShardedSyncService::RunToCompletion() {
  if (options_.spawn_threads) {
    std::unique_lock<std::mutex> lock(results_mu_);
    done_cv_.wait(lock, [&] {
      return finished_.load(std::memory_order_acquire) >=
             submitted_.load(std::memory_order_acquire);
    });
    return;
  }
  // External-driver mode fallback: the caller drives every shard inline
  // (useful for deterministic single-threaded tests; never mix with pumps).
  bool more = true;
  while (more) {
    more = false;
    for (size_t i = 0; i < shards_.size(); ++i) {
      SyncService* service = shards_[i]->service.get();
      const size_t before = service->stats().resumes;
      const bool alive = service->Step();
      Harvest(i);
      // Progress = resumed something or has queued commands; sessions
      // parked on remote input that no driver will feed must not spin.
      if (service->HasMailboxWork() ||
          (alive && service->stats().resumes != before)) {
        more = true;
      }
    }
  }
}

std::vector<SessionResult> ShardedSyncService::TakeResults() {
  std::lock_guard<std::mutex> lock(results_mu_);
  return std::move(results_);
}

ServiceStats ShardedSyncService::AggregateStats() const {
  ServiceStats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total.Accumulate(shard->service->stats());
  }
  return total;
}

obs::MetricRegistry ShardedSyncService::SnapshotMetrics() const {
  obs::MetricRegistry total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->service->SnapshotPublished(&total, nullptr);
  }
  return total;
}

ServiceStats ShardedSyncService::SnapshotStats() const {
  ServiceStats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->service->SnapshotPublished(nullptr, &total);
  }
  return total;
}

obs::RateRing::Rates ShardedSyncService::SnapshotRates() const {
  const uint64_t now = obs::NowNanos();
  obs::RateRing::Rates total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total.Accumulate(shard->service->SnapshotRateRing().SnapshotAt(now));
  }
  return total;
}

std::vector<obs::CompletedTrace> ShardedSyncService::SnapshotCompletedTraces()
    const {
  std::vector<obs::CompletedTrace> all;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::vector<obs::CompletedTrace> shard_traces =
        shard->service->tracer().SnapshotCompleted();
    for (obs::CompletedTrace& t : shard_traces) all.push_back(std::move(t));
  }
  return all;
}

}  // namespace setrec
