#ifndef SETREC_SERVICE_SHARDED_SERVICE_H_
#define SETREC_SERVICE_SHARDED_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "service/shared_cache.h"
#include "service/sync_service.h"

namespace setrec {

struct ShardedSyncServiceOptions {
  /// Number of service shards; 0 = std::thread::hardware_concurrency().
  size_t shards = 0;
  /// Per-shard scheduling/planner options (each shard gets a copy).
  SyncServiceOptions service;
  /// Options for the one SharedServiceCache all shards memoize through.
  SharedCacheOptions cache;
  /// true: the sharded service owns one driver thread per shard (Submit +
  /// RunToCompletion just work). false: EXTERNAL drivers own the shards —
  /// one pump thread per shard calls shard(i)->Step() itself (the
  /// src/net/ MultiNetPump shape) and harvests results directly.
  bool spawn_threads = true;
};

/// N independent SyncService shards behind one facade: each shard owns its
/// planner, scheduler queues, decode scratch pool and coroutine frames, and
/// is driven by exactly ONE thread; sessions hash to shards by session id.
/// Cross-shard traffic — shard-routed submissions, remote frames, cancels,
/// and build-lease wakes — travels through each shard's lock-free MPSC
/// mailbox (util/mpsc_queue.h); the only shared mutable state is the
/// striped-mutex SharedServiceCache, whose memo entries are immutable once
/// stored.
///
/// Invariant inherited from PR 3/4 and asserted in
/// tests/sharded_service_test.cc: a session's transcript is a function of
/// (spec, seeds) only — cached Alice messages are byte-identical to built
/// ones — so per-session transcripts and statuses are bit-identical for
/// any shard count.
class ShardedSyncService {
 public:
  explicit ShardedSyncService(ShardedSyncServiceOptions options = {});
  ~ShardedSyncService();

  ShardedSyncService(const ShardedSyncService&) = delete;
  ShardedSyncService& operator=(const ShardedSyncService&) = delete;

  size_t shard_count() const { return shards_.size(); }
  /// The shard a session id routes to (round-robin over dense ids).
  size_t ShardOf(uint64_t session_id) const {
    return static_cast<size_t>((session_id - 1) % shards_.size());
  }
  /// Shard i's service. External drivers (spawn_threads == false) step it
  /// from their own single thread; with owned threads, callers may only
  /// touch its Enqueue* mailbox entry points and (quiescent) stats.
  SyncService* shard(size_t i) { return shards_[i]->service.get(); }
  const SharedServiceCache& cache() const { return *cache_; }

  /// Cheap load signal for shard `i`: in-flight sessions plus undrained
  /// mailbox commands. Any thread; relaxed reads — the admission router
  /// (MultiNetPump) only needs shards ordered roughly right, and a one-
  /// command skew cannot misroute by more than it already costs.
  struct ShardLoad {
    uint64_t live_sessions = 0;
    uint64_t mailbox_depth = 0;
    uint64_t total() const { return live_sessions + mailbox_depth; }
  };
  ShardLoad LoadOf(size_t i) const {
    const SyncService& service = *shards_[i]->service;
    return ShardLoad{service.LiveLoad(), service.MailboxDepth()};
  }

  /// Registers `set` in the shared cache: every shard resolves the same
  /// identity, and Alice-message memoization spans shards.
  uint64_t RegisterSharedSet(std::shared_ptr<const SetOfSets> set);
  std::shared_ptr<const SetOfSets> SharedSetById(uint64_t id) const;

  /// Enqueues a session on its shard (round-robin); returns the
  /// globally-unique id (shard i allocates the residue class i+1 mod N, so
  /// ids depend on shard count — match sessions across shard counts by
  /// label, not id). Any thread. Sessions submitted directly to a shard by
  /// its pump thread use the same per-shard allocator and never collide.
  uint64_t Submit(SessionSpec spec);

  /// Routes a remote frame / cancel to the owning shard's mailbox. Any
  /// thread; asynchronous — validation happens when the shard steps
  /// (rejects are counted in that shard's ServiceStats::remote_rejected).
  /// Returns false only for an id that cannot belong to any shard (0).
  bool DeliverRemote(uint64_t id, Channel::Message message);
  bool CancelSession(uint64_t id, Status reason);

  /// Wakes shard i's driver: owned threads are signalled; external drivers
  /// get the registered wake hook (e.g. a pump's self-pipe).
  void NotifyShard(size_t shard);
  /// External-driver wake hook (MultiNetPump registers its pipes here).
  /// Guarded: install/clear may race with NotifyShard from other threads.
  void set_shard_wake_hook(std::function<void(size_t)> hook) {
    std::lock_guard<std::mutex> lock(hook_mu_);
    shard_wake_hook_ = std::move(hook);
  }

  /// Blocks until every submitted session has a harvested result. Owned
  /// threads: waits on the completion signal. External-driver mode: the
  /// CALLER becomes the driver of every shard (do not mix with pumps).
  void RunToCompletion();

  /// Finished sessions harvested from all shards, in harvest order.
  /// Owned-thread mode only (external drivers harvest from their shard).
  std::vector<SessionResult> TakeResults();

  /// Sum of per-shard stats. Requires quiescent shards (e.g. after
  /// RunToCompletion) — per-shard stats are written lock-free by their
  /// driver threads. Builds the sum into a fresh zeroed struct each call,
  /// so repeated aggregation of an unchanged service is idempotent.
  ServiceStats AggregateStats() const;

  /// Merged metric registry across all shards, read from each shard's
  /// PUBLISHED snapshot (mutex-guarded copy refreshed by the shard's own
  /// driver at step boundaries and forced on idle). Safe to call from any
  /// thread while shards run; at quiescence it equals the live blocks.
  obs::MetricRegistry SnapshotMetrics() const;

  /// Published-snapshot counterpart of AggregateStats: safe while shards
  /// run, converges to AggregateStats at quiescence.
  ServiceStats SnapshotStats() const;

  /// Windowed rates summed across shards, each shard read from its
  /// published rate ring and decayed to the same read instant. Any thread.
  obs::RateRing::Rates SnapshotRates() const;

  /// Recently completed traces (traced or slow sessions) across all
  /// shards, in shard order. Any thread; each shard's completed store is
  /// mutex-guarded.
  std::vector<obs::CompletedTrace> SnapshotCompletedTraces() const;

  size_t submitted() const {
    return submitted_.load(std::memory_order_acquire);
  }
  size_t finished() const { return finished_.load(std::memory_order_acquire); }

 private:
  struct Shard {
    std::unique_ptr<SyncService> service;
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    bool wake = false;
  };

  void ShardLoop(size_t index);
  /// Moves a shard's finished results into the global store and advances
  /// the completion counter. Called by the shard's own driver thread.
  void Harvest(size_t index);

  ShardedSyncServiceOptions options_;
  std::shared_ptr<SharedServiceCache> cache_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex hook_mu_;
  std::function<void(size_t)> shard_wake_hook_;

  std::atomic<uint64_t> rr_next_{0};
  std::atomic<size_t> submitted_{0};
  std::atomic<size_t> finished_{0};
  std::atomic<bool> stop_{false};

  std::mutex results_mu_;
  std::condition_variable done_cv_;
  std::vector<SessionResult> results_;
};

}  // namespace setrec

#endif  // SETREC_SERVICE_SHARDED_SERVICE_H_
