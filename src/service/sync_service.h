#ifndef SETREC_SERVICE_SYNC_SERVICE_H_
#define SETREC_SERVICE_SYNC_SERVICE_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/build_context.h"
#include "core/protocol.h"
#include "core/task.h"
#include "iblt/iblt.h"
#include "transport/channel.h"
#include "transport/endpoint.h"

namespace setrec {

/// The four set-of-sets protocol families a session can run.
enum class SsrProtocolKind { kNaive, kIblt2, kCascade, kMultiRound };
/// Number of SsrProtocolKind values (wire validation, kind sweeps).
inline constexpr int kSsrProtocolKindCount = 4;

const char* SsrProtocolKindName(SsrProtocolKind kind);

/// Factory shared by the service, tests, and benches.
std::unique_ptr<SetsOfSetsProtocol> MakeSsrProtocol(SsrProtocolKind kind,
                                                    const SsrParams& params);

/// Which side(s) of the protocol a session runs locally. kBoth is the
/// loopback shape (both halves composed over one channel). The half roles
/// host exactly one party: the peer's messages arrive from outside through
/// SyncService::DeliverRemote (the src/net/ pump decodes them off a
/// socket), and the local party's sends are observed on the mirror
/// endpoint. kAliceHalf is the server side of a remote session (Alice is
/// the one-way source); kBobHalf hosts the recovering side.
enum class SessionRole { kBoth, kAliceHalf, kBobHalf };

/// One reconciliation job. Three shapes:
///
///  * Steppable set-of-sets session: `alice`/`bob` set, driven through the
///    per-party protocol coroutines round-by-round with sketch builds
///    deferred into the cross-session batch planner.
///  * Half session (role != kBoth): only one party's coroutine runs here,
///    against a remote peer (see SessionRole).
///  * Opaque session: any reconciliation expressible as a blocking run over
///    a Channel (graph, forest, shingle-collection workloads). It executes
///    in a single step; it shares the service's scheduling, stats and
///    transport mirroring but not the batch planner.
struct SessionSpec {
  std::string label;

  // --- steppable set-of-sets session ---
  SsrProtocolKind protocol = SsrProtocolKind::kNaive;
  SsrParams params;
  SessionRole role = SessionRole::kBoth;
  /// Parent sets; alice benefits from RegisterSharedSet when many sessions
  /// reconcile against the same server-side set. Half sessions need only
  /// their own party's set (alice for kAliceHalf, bob for kBobHalf).
  std::shared_ptr<const SetOfSets> alice;
  std::shared_ptr<const SetOfSets> bob;
  std::optional<size_t> known_d;

  // --- opaque session (set when alice/bob are null) ---
  std::function<Status(Channel*)> opaque;

  /// Optional transport mirror: every locally-sent protocol message is
  /// forwarded as a frame on this endpoint (the caller holds the peer
  /// half). kBoth sessions mirror the full transcript; half sessions
  /// mirror only the local party's messages — exactly the bytes a remote
  /// peer must be shown.
  std::shared_ptr<Endpoint> mirror;
};

/// Outcome of a finished session.
struct SessionResult {
  uint64_t id = 0;
  std::string label;
  Status status;
  /// rounds/bytes from the session channel; attempts from the protocol
  /// (0 for opaque sessions).
  SsrStats stats;
  /// Bob's recovery (set sessions, when options.keep_recovered).
  SetOfSets recovered;
};

/// Aggregate service counters. Batch occupancy is the planner's headline:
/// per-session sketch batches rarely cross IbltBatchOptions::
/// sharded_min_keys, coalesced cross-session flushes should.
struct ServiceStats {
  size_t sessions_submitted = 0;
  size_t sessions_completed = 0;
  size_t sessions_failed = 0;
  size_t total_rounds = 0;
  size_t total_bytes = 0;
  /// Scheduler ticks (Step calls that found work).
  size_t steps = 0;
  /// Coroutine resumptions across all sessions.
  size_t resumes = 0;
  /// Batch planner flushes, and the IBLT keys they coalesced.
  size_t flushes = 0;
  size_t flushed_keys = 0;
  size_t max_flush_keys = 0;
  /// Flushes whose occupancy reached the sharded-batch threshold.
  size_t sharded_flushes = 0;
  /// Deferred estimator update jobs executed.
  size_t estimator_jobs = 0;
  /// Alice-message memoization (registered shared sets only): hits =
  /// messages replayed from the cache, misses = messages actually built
  /// (one per acquired build lease).
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Messages dropped by an unconnected session mirror endpoint (a
  /// disconnect the caller can now observe).
  size_t mirror_drops = 0;
  /// Remote-peer messages injected via DeliverRemote, and sessions
  /// cancelled (peer disconnect) via CancelSession.
  size_t remote_messages = 0;
  size_t sessions_cancelled = 0;

  double mean_flush_occupancy() const {
    return flushes == 0 ? 0.0
                        : static_cast<double>(flushed_keys) /
                              static_cast<double>(flushes);
  }
};

struct SyncServiceOptions {
  /// Planner flush tuning (sharding threshold + worker cap).
  IbltBatchOptions batch;
  /// Admission window: sessions resident at once; the rest wait in the
  /// backlog. Large windows maximize planner occupancy, small ones bound
  /// memory (and, on one core, working-set thrash). 0 = unbounded.
  size_t max_inflight = 8192;
  /// Keep recovered sets in SessionResult (benches turn this off).
  bool keep_recovered = true;
  /// Cap on memoized Alice messages.
  size_t alice_cache_max_entries = 4096;
};

/// Drives many concurrent reconciliation sessions as non-blocking state
/// machines stepped round-by-round, instead of one blocking protocol call
/// per client.
///
/// Scheduling model (single-threaded; only planner flushes fan out to
/// worker threads): each Step() tick
///   1. admits backlog sessions up to the in-flight window,
///   2. resumes every runnable session until it parks at a round boundary
///      (SendAwaiter) or a sketch-build barrier (BuildBarrier) or finishes,
///   3. repeatedly FLUSHES the batch planner: all queued sketch-build ops —
///      child-IBLT encodes, outer-table updates, estimator updates, from
///      every parked session — are applied as one coalesced
///      Iblt::ApplyOps / UpdateBatch pass, and the owning sessions are
///      resumed with their sketches built (the scatter-back). The loop
///      runs until every live session is parked at a round boundary.
///
/// Sessions whose `alice` set was registered via RegisterSharedSet share
/// memoized Alice attempt messages, and all sessions share one pooled pair
/// of decode scratches — per-session warm-decode behavior without
/// per-session scratch churn. See src/service/README.md for the state
/// machine, the planner, and the view-lifetime rules across steps.
class SyncService {
 public:
  explicit SyncService(SyncServiceOptions options = {});
  ~SyncService();

  SyncService(const SyncService&) = delete;
  SyncService& operator=(const SyncService&) = delete;

  /// Pins `set` for the service's lifetime and enables Alice-message
  /// memoization for sessions whose spec.alice is this exact object.
  uint64_t RegisterSharedSet(std::shared_ptr<const SetOfSets> set);
  /// The set registered as id `id` (ids are dense from 1), or null. This is
  /// how the net layer resolves a client hello's set id to server state.
  std::shared_ptr<const SetOfSets> SharedSetById(uint64_t id) const;

  /// Enqueues a session; returns its id. Sessions start in Step() order.
  uint64_t Submit(SessionSpec spec);

  /// Injects a message from the remote peer into session `id`'s transcript
  /// (half sessions) and marks its waiting coroutine runnable; the message
  /// is processed by the next Step(). Messages for a submitted-but-not-yet-
  /// admitted session are buffered and delivered at admission. Returns
  /// false for an unknown/finished session. Single-threaded with Step().
  bool DeliverRemote(uint64_t id, Channel::Message message);

  /// Fails a live session (peer disconnect) and reclaims it. Must be
  /// called between Step() calls — sessions are then parked only at round
  /// boundaries or remote receives, never mid-flush. Returns false for an
  /// unknown session.
  bool CancelSession(uint64_t id, Status reason);

  /// One scheduler tick; returns true while sessions remain (in flight or
  /// backlogged).
  bool Step();

  /// Steps until idle.
  void RunToCompletion();

  const ServiceStats& stats() const { return stats_; }
  const SyncServiceOptions& options() const { return options_; }

  /// Finished-session results in completion order; moves them out.
  std::vector<SessionResult> TakeResults();

 private:
  struct Session;
  class SessionContext;

  /// One parked coroutine handle plus its owning session. A split-party
  /// session can have BOTH half coroutines parked at once (Alice at a round
  /// boundary, Bob at a receive), so the scheduler queues carry handles,
  /// not sessions.
  struct ParkedCoro {
    Session* session;
    std::coroutine_handle<> handle;
  };

  struct EstimatorJob {
    L0Estimator* l0 = nullptr;
    StrataEstimator* strata = nullptr;
    const uint64_t* xs = nullptr;
    size_t n = 0;
    int side = 0;
  };

  void Admit();
  void StartSession(Session* session);
  void ResumeParked(ParkedCoro parked);
  void CheckDone(Session* session);
  /// Moves the session's ready receives (peer message arrived) onto the
  /// scheduler queue.
  void CollectReadyReceives(Session* session);
  void FinalizeSession(Session* session, Result<SsrOutcome> outcome);
  void RunOpaqueSession(Session* session);
  std::shared_ptr<const SetsOfSetsProtocol> ProtocolFor(
      SsrProtocolKind kind, const SsrParams& params);
  /// Applies every queued planner op as one coalesced pass and resumes the
  /// sessions that were parked on the barrier.
  void FlushPlanner();
  uint64_t IdentityOf(const void* set) const;

  SyncServiceOptions options_;
  ServiceStats stats_;

  struct PendingSession {
    uint64_t id;
    SessionSpec spec;
  };
  std::deque<PendingSession> backlog_;
  /// Active sessions, swap-removed on completion (slot order is not
  /// meaningful; scheduling order lives in the queues below).
  std::vector<std::unique_ptr<Session>> active_;
  /// Finished Session shells kept for reuse (their channel/transcript
  /// vectors stay warm), bounded by the in-flight window.
  std::vector<std::unique_ptr<Session>> session_pool_;
  /// Shared immutable protocol instances for identical (kind, params).
  std::vector<std::pair<std::pair<SsrProtocolKind, SsrParams>,
                        std::shared_ptr<const SetsOfSetsProtocol>>>
      protocol_cache_;
  /// Sessions admitted but not yet started.
  std::deque<Session*> ready_;
  std::deque<ParkedCoro> round_waiters_;
  std::deque<ParkedCoro> flush_waiters_;
  /// Coroutines whose awaited peer message has arrived (split-party wakes),
  /// drained inside the Step flush loop.
  std::deque<ParkedCoro> recv_ready_;
  /// Anti-stampede build leases: coroutines parked behind an in-flight
  /// Alice message build, and the wake queue drained by the Step flush
  /// loop.
  std::unordered_set<uint64_t> held_leases_;
  std::unordered_map<uint64_t, std::deque<ParkedCoro>> lease_waiters_;
  std::deque<ParkedCoro> lease_ready_;
  /// Live sessions by id (remote delivery / cancellation), plus messages
  /// for sessions still in the backlog.
  std::unordered_map<uint64_t, Session*> active_by_id_;
  std::unordered_map<uint64_t, std::vector<Channel::Message>>
      pending_remote_;

  // Batch planner state: deferred IBLT ops + estimator jobs of the current
  // phase, and the reusable hash staging for ApplyOps.
  std::vector<Iblt::ApplyOp> iblt_ops_;
  std::vector<EstimatorJob> estimator_jobs_;
  Iblt::ApplyScratch apply_scratch_;

  // Shared decode scratch pool (slots 0/1; see ProtocolContext::Scratch).
  DecodeScratch scratch_pool_[2];

  // Alice-message memoization for registered shared sets.
  std::vector<std::shared_ptr<const SetOfSets>> pinned_sets_;
  std::unordered_map<const void*, uint64_t> set_identities_;
  std::unordered_map<uint64_t, std::vector<uint8_t>> alice_cache_;
  /// Positive ValidateSetOfSets verdicts for registered sets, per bounds.
  std::unordered_set<uint64_t> validated_;
  /// Bob-side parsed-table memo (see ProtocolContext::ParseTableMemo):
  /// the table plus the serialized length to skip on replay.
  struct TableMemoEntry {
    Iblt table;
    size_t consumed;
  };
  std::unordered_map<uint64_t, TableMemoEntry> table_memo_;

  std::vector<SessionResult> results_;
  uint64_t next_session_id_ = 1;
  uint64_t next_set_identity_ = 1;
};

}  // namespace setrec

#endif  // SETREC_SERVICE_SYNC_SERVICE_H_
