#ifndef SETREC_SERVICE_SYNC_SERVICE_H_
#define SETREC_SERVICE_SYNC_SERVICE_H_

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/build_context.h"
#include "core/protocol.h"
#include "core/task.h"
#include "iblt/iblt.h"
#include "obs/clock.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "service/shared_cache.h"
#include "transport/channel.h"
#include "transport/endpoint.h"
#include "util/mpsc_queue.h"

namespace setrec {

/// The four set-of-sets protocol families a session can run.
enum class SsrProtocolKind { kNaive, kIblt2, kCascade, kMultiRound };
/// Number of SsrProtocolKind values (wire validation, kind sweeps).
inline constexpr int kSsrProtocolKindCount = 4;

const char* SsrProtocolKindName(SsrProtocolKind kind);

/// Factory shared by the service, tests, and benches.
std::unique_ptr<SetsOfSetsProtocol> MakeSsrProtocol(SsrProtocolKind kind,
                                                    const SsrParams& params);

/// Which side(s) of the protocol a session runs locally. kBoth is the
/// loopback shape (both halves composed over one channel). The half roles
/// host exactly one party: the peer's messages arrive from outside through
/// SyncService::DeliverRemote (the src/net/ pump decodes them off a
/// socket), and the local party's sends are observed on the mirror
/// endpoint. kAliceHalf is the server side of a remote session (Alice is
/// the one-way source); kBobHalf hosts the recovering side.
enum class SessionRole { kBoth, kAliceHalf, kBobHalf };

/// One reconciliation job. Three shapes:
///
///  * Steppable set-of-sets session: `alice`/`bob` set, driven through the
///    per-party protocol coroutines round-by-round with sketch builds
///    deferred into the cross-session batch planner.
///  * Half session (role != kBoth): only one party's coroutine runs here,
///    against a remote peer (see SessionRole).
///  * Opaque session: any reconciliation expressible as a blocking run over
///    a Channel (graph, forest, shingle-collection workloads). It executes
///    in a single step; it shares the service's scheduling, stats and
///    transport mirroring but not the batch planner.
struct SessionSpec {
  std::string label;

  // --- steppable set-of-sets session ---
  SsrProtocolKind protocol = SsrProtocolKind::kNaive;
  SsrParams params;
  SessionRole role = SessionRole::kBoth;
  /// Parent sets; alice benefits from RegisterSharedSet when many sessions
  /// reconcile against the same server-side set. Half sessions need only
  /// their own party's set (alice for kAliceHalf, bob for kBobHalf).
  std::shared_ptr<const SetOfSets> alice;
  std::shared_ptr<const SetOfSets> bob;
  std::optional<size_t> known_d;

  // --- opaque session (set when alice/bob are null) ---
  std::function<Status(Channel*)> opaque;

  /// Optional transport mirror: every locally-sent protocol message is
  /// forwarded as a frame on this endpoint (the caller holds the peer
  /// half). kBoth sessions mirror the full transcript; half sessions
  /// mirror only the local party's messages — exactly the bytes a remote
  /// peer must be shown. A mirror polled by ANOTHER shard's thread must be
  /// an Endpoint::MailboxPair half (transport/endpoint.h).
  std::shared_ptr<Endpoint> mirror;

  /// Client-propagated trace context (hello v3; 0 = untraced). The shard
  /// tags every trace event of this session with it, so the server half
  /// of a traced session is joinable with the client's own spans.
  uint64_t trace_id = 0;
};

/// Outcome of a finished session.
struct SessionResult {
  uint64_t id = 0;
  std::string label;
  Status status;
  /// rounds/bytes from the session channel; attempts from the protocol
  /// (0 for opaque sessions).
  SsrStats stats;
  /// Bob's recovery (set sessions, when options.keep_recovered).
  SetOfSets recovered;
  /// Order-sensitive hash of the full transcript (sender, label, payload
  /// per message) when options.hash_transcripts — the shard-count
  /// invariance witness. 0 when disabled.
  uint64_t transcript_hash = 0;
};

/// Aggregate service counters. Batch occupancy is the planner's headline:
/// per-session sketch batches rarely cross IbltBatchOptions::
/// sharded_min_keys, coalesced cross-session flushes should.
///
/// In a sharded deployment each shard keeps its own ServiceStats (written
/// only by the shard's thread); ShardedSyncService::AggregateStats() sums
/// them once the shards are quiescent.
struct ServiceStats {
  size_t sessions_submitted = 0;
  size_t sessions_completed = 0;
  size_t sessions_failed = 0;
  size_t total_rounds = 0;
  size_t total_bytes = 0;
  /// Scheduler ticks (Step calls that found work).
  size_t steps = 0;
  /// Coroutine resumptions across all sessions.
  size_t resumes = 0;
  /// Batch planner flushes, and the IBLT keys they coalesced.
  size_t flushes = 0;
  size_t flushed_keys = 0;
  size_t max_flush_keys = 0;
  /// Flushes whose occupancy reached the sharded-batch threshold.
  size_t sharded_flushes = 0;
  /// Deferred estimator update jobs executed.
  size_t estimator_jobs = 0;
  /// Alice-message memoization (registered shared sets only): hits =
  /// messages replayed from the cache, misses = messages actually built
  /// (one per acquired build lease).
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Messages dropped by an unconnected session mirror endpoint (a
  /// disconnect the caller can now observe).
  size_t mirror_drops = 0;
  /// Remote-peer messages injected via DeliverRemote, and sessions
  /// cancelled (peer disconnect) via CancelSession.
  size_t remote_messages = 0;
  size_t sessions_cancelled = 0;
  /// Mailbox-delivered remote messages that could not be injected (wrong
  /// turn / unknown session) even after the step settled.
  size_t remote_rejected = 0;
  /// Lease wakes received from OTHER shards through the mailbox.
  size_t cross_shard_lease_wakes = 0;

  double mean_flush_occupancy() const {
    return flushes == 0 ? 0.0
                        : static_cast<double>(flushed_keys) /
                              static_cast<double>(flushes);
  }

  /// Element-wise sum (sharded aggregation; max_flush_keys takes the max).
  void Accumulate(const ServiceStats& other);
};

struct SyncServiceOptions {
  /// Planner flush tuning (sharding threshold + worker cap).
  IbltBatchOptions batch;
  /// Admission window: sessions resident at once; the rest wait in the
  /// backlog. Large windows maximize planner occupancy, small ones bound
  /// memory (and, on one core, working-set thrash). 0 = unbounded.
  size_t max_inflight = 8192;
  /// Keep recovered sets in SessionResult (benches turn this off).
  bool keep_recovered = true;
  /// Cap on memoized Alice messages (applies to the service's PRIVATE
  /// cache; a SharedServiceCache passed in carries its own cap).
  size_t alice_cache_max_entries = 4096;
  /// Record SessionResult::transcript_hash (the shard-invariance witness;
  /// costs one pass over each finished transcript).
  bool hash_transcripts = false;
  /// Latency instrumentation (src/obs/): session/round/flush/lease
  /// histograms recorded along the scheduling paths. Off skips every clock
  /// read (the bench A/B overhead knob); the cheap decode/retry counters
  /// stay on either way.
  bool metrics = true;
  /// Slow-session tracing: a session whose end-to-end latency reaches this
  /// threshold dumps its span tree to stderr, once. 0 disables the slow
  /// dump (the net pump may still arm trace capture for TRACE? — see
  /// SessionTracer::EnableCapture).
  uint64_t trace_slow_ns = 0;
  /// Per-shard trace-event ring capacity (used when trace_slow_ns > 0 or
  /// when the pump arms capture).
  size_t trace_ring_capacity = 4096;
};

/// Appends the service-layer exposition — the metric registry's histograms
/// labelled with protocol/codec names plus every ServiceStats counter — to
/// a `# setrec-metrics` text block (obs/export.h). Callers pass merged
/// or per-shard snapshots; the net layer serves the result for `STAT?`
/// (appending windowed `rate` lines last — the v2 suffix).
void AppendServiceExposition(const obs::MetricRegistry& metrics,
                             const ServiceStats& stats,
                             obs::ExpositionWriter* writer);

/// Order-sensitive 64-bit hash of a transcript (sender byte, label bytes,
/// payload bytes per message) — equal iff the transcripts are bit-identical
/// up to hash collision. Shared by the service and the invariance tests.
uint64_t HashTranscript(const Channel& channel);

/// Drives many concurrent reconciliation sessions as non-blocking state
/// machines stepped round-by-round, instead of one blocking protocol call
/// per client.
///
/// Scheduling model (single-threaded; only planner flushes fan out to
/// worker threads): each Step() tick
///   1. drains the cross-thread mailbox (shard-routed submissions, remote
///      frames, cancels, lease wakes — see ShardedSyncService),
///   2. admits backlog sessions up to the in-flight window,
///   3. resumes every runnable session until it parks at a round boundary
///      (SendAwaiter) or a sketch-build barrier (BuildBarrier) or finishes,
///   4. repeatedly FLUSHES the batch planner: all queued sketch-build ops —
///      child-IBLT encodes, outer-table updates, estimator updates, from
///      every parked session — are applied as one coalesced
///      Iblt::ApplyOps pass, and the owning sessions are resumed with their
///      sketches built (the scatter-back). The loop runs until every live
///      session is parked at a round boundary.
///
/// THREAD MODEL: one SyncService is owned by exactly one driving thread
/// (the thread that calls Step — asserted in debug builds). Everything a
/// foreign thread may do goes through the lock-free mailbox (Enqueue*) or
/// the SharedServiceCache. Coroutine frames never migrate between threads
/// (CoroFramePool freelists are thread-local).
///
/// Sessions whose `alice` set was registered via RegisterSharedSet share
/// memoized Alice attempt messages, and all sessions share one pooled pair
/// of decode scratches — per-session warm-decode behavior without
/// per-session scratch churn. See src/service/README.md for the state
/// machine, the planner, and the view-lifetime rules across steps.
class SyncService {
 public:
  /// `cache` is the cross-session memo state; null constructs a private
  /// one (the standalone single-service shape). `shard_id` names this
  /// service in a ShardedSyncService (0 for standalone).
  explicit SyncService(SyncServiceOptions options = {},
                       std::shared_ptr<SharedServiceCache> cache = nullptr,
                       int shard_id = 0);
  ~SyncService();

  SyncService(const SyncService&) = delete;
  SyncService& operator=(const SyncService&) = delete;

  /// Routes build-lease releases whose waiters live on OTHER shards; the
  /// sharded service points this at the target shard's mailbox + wake.
  void set_cross_shard_wake(std::function<void(int shard, uint64_t key)> fn) {
    cross_shard_wake_ = std::move(fn);
  }

  /// Pins `set` for the service's lifetime and enables Alice-message
  /// memoization for sessions whose spec.alice is this exact object.
  uint64_t RegisterSharedSet(std::shared_ptr<const SetOfSets> set);
  /// The set registered as id `id` (ids are dense from 1), or null. This is
  /// how the net layer resolves a client hello's set id to server state.
  std::shared_ptr<const SetOfSets> SharedSetById(uint64_t id) const;

  /// Configures the session-id sequence this service allocates from:
  /// first, first + stride, ... Standalone services keep the default dense
  /// 1, 2, 3, ...; ShardedSyncService gives shard i the residue class
  /// (first = i + 1, stride = N) so ids allocated by any path — the
  /// facade's Submit or a pump thread's direct shard Submit — are unique
  /// across shards and route back via ShardOf. Call before any Submit.
  void ConfigureIds(uint64_t first, uint64_t stride);
  /// Draws the next id of this service's sequence (any thread).
  uint64_t AllocateSessionId();

  /// Enqueues a session; returns its id. Sessions start in Step() order.
  /// Driving thread only (foreign threads use EnqueueSubmit).
  uint64_t Submit(SessionSpec spec);

  /// Injects a message from the remote peer into session `id`'s transcript
  /// (half sessions) and marks its waiting coroutine runnable; the message
  /// is processed by the next Step(). Messages for a submitted-but-not-yet-
  /// admitted session are buffered and delivered at admission. Returns
  /// false for an unknown/finished session. Driving thread only.
  bool DeliverRemote(uint64_t id, Channel::Message message);

  /// Fails a live session (peer disconnect) and reclaims it. Must be
  /// called between Step() calls — sessions are then parked only at round
  /// boundaries or remote receives, never mid-flush. Returns false for an
  /// unknown session. Driving thread only.
  bool CancelSession(uint64_t id, Status reason);

  // --- Cross-thread mailbox (any thread; drained at the top of Step) ----
  // The lock-free handoff between shards: a foreign thread enqueues, then
  // wakes the owning driver through ShardedSyncService. Ids for
  // EnqueueSubmit come from the sharded service's global allocator so they
  // are unique across shards.

  void EnqueueSubmit(uint64_t id, SessionSpec spec);
  void EnqueueRemote(uint64_t id, Channel::Message message);
  void EnqueueCancel(uint64_t id, Status reason);
  void EnqueueLeaseWake(uint64_t key);
  /// True when the mailbox has queued commands (racy hint for drivers).
  bool HasMailboxWork() const { return !mailbox_.Empty(); }

  // --- Load signal (any thread; relaxed reads of driver-side counters) --
  // The admission router's view of how busy this shard is. Both are cheap
  // approximations, not synchronization points: an argmin router only
  // needs the ordering between shards to be roughly right.

  /// Sessions submitted but not yet finalized (backlog + active).
  uint64_t LiveLoad() const {
    return live_load_.load(std::memory_order_relaxed);
  }
  /// Commands pushed to the cross-thread mailbox and not yet drained.
  uint64_t MailboxDepth() const {
    return mailbox_depth_.load(std::memory_order_relaxed);
  }

  /// One scheduler tick; returns true while sessions remain (in flight or
  /// backlogged).
  bool Step();

  /// Steps until idle.
  void RunToCompletion();

  const ServiceStats& stats() const { return stats_; }
  const SyncServiceOptions& options() const { return options_; }
  const std::shared_ptr<SharedServiceCache>& cache() const { return cache_; }
  int shard_id() const { return shard_id_; }

  /// Live per-shard metric block — same single-writer discipline as
  /// stats(): written only by the driving thread; foreign threads must read
  /// the published snapshot instead.
  const obs::MetricRegistry& metrics() const { return metrics_; }
  /// The shard's session tracer. Recording is driving-thread-only;
  /// SnapshotCompleted/DumpRing are safe from any thread.
  obs::SessionTracer& tracer() { return tracer_; }
  const obs::SessionTracer& tracer() const { return tracer_; }

  /// Stamped at the top of every Step by the driving thread — the stall
  /// watchdog's liveness signal (obs/watchdog.h). Any thread may read.
  const obs::Heartbeat& heartbeat() const { return heartbeat_; }

  /// Advances the windowed-rate ring against the live counters and returns
  /// the current rates. Driving thread only (the pump's STAT? handler runs
  /// on it); foreign threads use SnapshotRateRing.
  obs::RateRing::Rates CurrentRates();
  /// Thread-safe copy of the last published rate ring; callers derive
  /// rates at their own read time with SnapshotAt(NowNanos()).
  obs::RateRing SnapshotRateRing() const;

  /// Copies the live stats+metrics into the published slot (driving thread
  /// only). Step() already calls it on a ~50ms throttle and whenever the
  /// shard settles idle, so the published snapshot is at most ~50ms stale
  /// while busy and exact once quiescent.
  void PublishMetrics();
  /// Thread-safe read of the last published copies (any thread; either out
  /// pointer may be null). This is the only way a foreign thread may
  /// observe a running shard's stats/metrics without a data race.
  void SnapshotPublished(obs::MetricRegistry* metrics,
                         ServiceStats* stats) const;

  /// Finished-session results in completion order; moves them out.
  /// Driving thread only (ShardedSyncService harvests via its own loop).
  std::vector<SessionResult> TakeResults();

 private:
  struct Session;
  class SessionContext;

  /// One parked coroutine handle plus its owning session. A split-party
  /// session can have BOTH half coroutines parked at once (Alice at a round
  /// boundary, Bob at a receive), so the scheduler queues carry handles,
  /// not sessions.
  struct ParkedCoro {
    Session* session;
    std::coroutine_handle<> handle;
  };

  struct EstimatorJob {
    L0Estimator* l0 = nullptr;
    StrataEstimator* strata = nullptr;
    const uint64_t* xs = nullptr;
    size_t n = 0;
    int side = 0;
  };

  /// One mailbox command (see Enqueue*).
  struct Command {
    enum class Kind { kSubmit, kRemote, kCancel, kLeaseWake };
    Kind kind;
    uint64_t id = 0;  // Session id, or the lease key for kLeaseWake.
    SessionSpec spec;
    Channel::Message message;
    Status status;
  };

  void DrainMailbox();
  /// DeliverRemote's core: consumes *message only on success, so callers
  /// that must retain undeliverable frames (the mailbox retry path) avoid
  /// copying payloads.
  bool TryDeliverRemote(uint64_t id, Channel::Message* message);
  void SubmitPreassigned(uint64_t id, SessionSpec spec);
  void Admit();
  void StartSession(Session* session);
  void ResumeParked(ParkedCoro parked);
  void CheckDone(Session* session);
  /// Moves the session's ready receives (peer message arrived) onto the
  /// scheduler queue.
  void CollectReadyReceives(Session* session);
  void FinalizeSession(Session* session, Result<SsrOutcome> outcome);
  void RunOpaqueSession(Session* session);
  /// Moves local lease waiters for `key` onto the scheduler queue.
  void WakeLease(uint64_t key);
  /// Retries mailbox remote messages that raced ahead of the receive park;
  /// returns true when any was delivered (the step loop must settle again).
  bool RetryDeferredRemote();
  std::shared_ptr<const SetsOfSetsProtocol> ProtocolFor(
      SsrProtocolKind kind, const SsrParams& params);
  /// Applies every queued planner op as one coalesced pass and resumes the
  /// sessions that were parked on the barrier.
  void FlushPlanner();
  uint64_t IdentityOf(const void* set) const;
  /// One monotonic timestamp when any observability consumer (metrics or
  /// tracer) is armed; 0 when both are off, so hot paths skip clock reads.
  uint64_t ObsNow() const {
    return options_.metrics || tracer_.armed() ? obs::NowNanos() : 0;
  }
  /// Throttled publish (see PublishMetrics); `idle` forces it so quiescent
  /// published data equals the live block.
  void MaybePublishMetrics(bool idle);
  /// The live cumulative counters the rate ring tracks.
  obs::RateRing::Sample CurrentRateSample() const;

  SyncServiceOptions options_;
  ServiceStats stats_;
  obs::MetricRegistry metrics_;
  obs::SessionTracer tracer_;
  obs::RateRing rate_ring_;
  obs::Heartbeat heartbeat_;
  uint64_t last_publish_ns_ = 0;
  bool publish_dirty_ = false;
  mutable std::mutex published_mu_;
  obs::MetricRegistry published_metrics_;
  ServiceStats published_stats_;
  obs::RateRing published_rate_ring_;
  std::shared_ptr<SharedServiceCache> cache_;
  int shard_id_ = 0;
  std::function<void(int shard, uint64_t key)> cross_shard_wake_;

  /// Cross-thread inbox (see Enqueue*). Single consumer: the driving
  /// thread, at the top of Step.
  MpscQueue<Command> mailbox_;
  /// Mailbox remote messages not yet deliverable (the session has not
  /// parked its receive at that slot yet); retried when the step settles.
  std::vector<std::pair<uint64_t, Channel::Message>> deferred_remote_;
#ifndef NDEBUG
  std::thread::id owner_thread_{};
#endif

  struct PendingSession {
    uint64_t id;
    SessionSpec spec;
  };
  std::deque<PendingSession> backlog_;
  /// Active sessions, swap-removed on completion (slot order is not
  /// meaningful; scheduling order lives in the queues below).
  std::vector<std::unique_ptr<Session>> active_;
  /// Finished Session shells kept for reuse (their channel/transcript
  /// vectors stay warm), bounded by the in-flight window.
  std::vector<std::unique_ptr<Session>> session_pool_;
  /// Shared immutable protocol instances for identical (kind, params).
  std::vector<std::pair<std::pair<SsrProtocolKind, SsrParams>,
                        std::shared_ptr<const SetsOfSetsProtocol>>>
      protocol_cache_;
  /// Sessions admitted but not yet started.
  std::deque<Session*> ready_;
  std::deque<ParkedCoro> round_waiters_;
  std::deque<ParkedCoro> flush_waiters_;
  /// Coroutines whose awaited peer message has arrived (split-party wakes),
  /// drained inside the Step flush loop.
  std::deque<ParkedCoro> recv_ready_;
  /// Coroutines parked behind an in-flight Alice message build (the lease
  /// lives in the SharedServiceCache; the parked handles stay shard-local
  /// because frames never cross threads), and the wake queue drained by
  /// the Step flush loop.
  std::unordered_map<uint64_t, std::deque<ParkedCoro>> lease_waiters_;
  std::deque<ParkedCoro> lease_ready_;
  /// Live sessions by id (remote delivery / cancellation), plus messages
  /// for sessions still in the backlog.
  std::unordered_map<uint64_t, Session*> active_by_id_;
  std::unordered_map<uint64_t, std::vector<Channel::Message>>
      pending_remote_;

  // Batch planner state: deferred IBLT ops + estimator jobs of the current
  // phase, and the reusable hash staging for ApplyOps.
  std::vector<Iblt::ApplyOp> iblt_ops_;
  std::vector<EstimatorJob> estimator_jobs_;
  Iblt::ApplyScratch apply_scratch_;

  // Shared decode scratch pool (slots 0/1; see ProtocolContext::Scratch).
  // Per shard: sessions on one shard share it, threads never do.
  DecodeScratch scratch_pool_[2];

  std::vector<SessionResult> results_;
  /// Strided id sequence (see ConfigureIds); atomic because pump/facade
  /// threads may allocate concurrently.
  std::atomic<uint64_t> next_session_id_{1};
  uint64_t id_stride_ = 1;

  // Load-signal counters (see LiveLoad/MailboxDepth). live_load_ moves
  // only on the driving thread (submit/finalize) but is read cross-thread
  // by the admission router; mailbox_depth_ is bumped by producers and
  // debited by the drain, so it is genuinely multi-writer.
  std::atomic<uint64_t> live_load_{0};
  std::atomic<uint64_t> mailbox_depth_{0};
};

}  // namespace setrec

#endif  // SETREC_SERVICE_SYNC_SERVICE_H_
