#include "service/sync_service.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <limits>
#include <mutex>
#include <utility>

#include "core/cascading_protocol.h"
#include "core/iblt_of_iblts.h"
#include "core/multiround_protocol.h"
#include "core/naive_protocol.h"
#include "hashing/random.h"
#include "obs/clock.h"

namespace setrec {

// The obs layer sits below the service and cannot see the protocol enums;
// its histogram axes must track them by hand.
static_assert(obs::kProtocolKinds ==
              static_cast<size_t>(kSsrProtocolKindCount));
static_assert(obs::kWireCodecs == 2);

const char* SsrProtocolKindName(SsrProtocolKind kind) {
  switch (kind) {
    case SsrProtocolKind::kNaive:
      return "naive";
    case SsrProtocolKind::kIblt2:
      return "iblt2";
    case SsrProtocolKind::kCascade:
      return "cascade";
    case SsrProtocolKind::kMultiRound:
      return "multiround";
  }
  return "?";
}

std::unique_ptr<SetsOfSetsProtocol> MakeSsrProtocol(SsrProtocolKind kind,
                                                    const SsrParams& params) {
  switch (kind) {
    case SsrProtocolKind::kNaive:
      return std::make_unique<NaiveProtocol>(params);
    case SsrProtocolKind::kIblt2:
      return std::make_unique<IbltOfIbltsProtocol>(params);
    case SsrProtocolKind::kCascade:
      return std::make_unique<CascadingProtocol>(params);
    case SsrProtocolKind::kMultiRound:
      return std::make_unique<MultiRoundProtocol>(params);
  }
  return nullptr;
}

void ServiceStats::Accumulate(const ServiceStats& other) {
  sessions_submitted += other.sessions_submitted;
  sessions_completed += other.sessions_completed;
  sessions_failed += other.sessions_failed;
  total_rounds += other.total_rounds;
  total_bytes += other.total_bytes;
  steps += other.steps;
  resumes += other.resumes;
  flushes += other.flushes;
  flushed_keys += other.flushed_keys;
  max_flush_keys = std::max(max_flush_keys, other.max_flush_keys);
  sharded_flushes += other.sharded_flushes;
  estimator_jobs += other.estimator_jobs;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  mirror_drops += other.mirror_drops;
  remote_messages += other.remote_messages;
  sessions_cancelled += other.sessions_cancelled;
  remote_rejected += other.remote_rejected;
  cross_shard_lease_wakes += other.cross_shard_lease_wakes;
}

uint64_t HashTranscript(const Channel& channel) {
  // Order-sensitive chain over (sender, label, payload); nonzero even for
  // the empty transcript so "hashed" is distinguishable from "disabled".
  uint64_t h = Mix64(0x74727363726970ull);  // "trscrip"
  for (const Channel::Message& m : channel.transcript()) {
    h = Mix64(h ^ static_cast<uint64_t>(m.from));
    h = Mix64(h ^ m.label.size());
    for (char c : m.label) h = Mix64(h ^ static_cast<uint8_t>(c));
    h = Mix64(h ^ m.payload.size());
    size_t i = 0;
    for (; i + 8 <= m.payload.size(); i += 8) {
      uint64_t lane;
      std::memcpy(&lane, m.payload.data() + i, 8);
      h = Mix64(h ^ lane);
    }
    for (; i < m.payload.size(); ++i) h = Mix64(h ^ m.payload[i]);
  }
  return h;
}

/// The per-session ProtocolContext: routes build ops into the service's
/// planner queues, parks the session coroutines at barriers, round
/// boundaries and peer receives, and exposes the shared cache/scratch
/// pools.
class SyncService::SessionContext final : public ProtocolContext {
 public:
  SessionContext() = default;
  void Bind(SyncService* service, Session* session) {
    service_ = service;
    session_ = session;
  }

  bool deferred() const override { return true; }

  void QueueInsertU64(Iblt* table, const uint64_t* keys, size_t n) override {
    QueueIbltOp({table, keys, nullptr, n, +1});
  }
  void QueueEraseU64(Iblt* table, const uint64_t* keys, size_t n) override {
    QueueIbltOp({table, keys, nullptr, n, -1});
  }
  void QueueInsertBytes(Iblt* table, const uint8_t* keys, size_t n) override {
    QueueIbltOp({table, nullptr, keys, n, +1});
  }
  void QueueEraseBytes(Iblt* table, const uint8_t* keys, size_t n) override {
    QueueIbltOp({table, nullptr, keys, n, -1});
  }
  void QueueL0Update(L0Estimator* est, const uint64_t* xs, size_t n,
                     int side) override;
  void QueueStrataUpdate(StrataEstimator* est, const uint64_t* xs, size_t n,
                         int side) override;

  uint64_t SetIdentity(const void* parent_set) override {
    return service_->IdentityOf(parent_set);
  }
  uint64_t PeerSetIdentity() override;
  // Stats semantics: one hit per message replayed from the cache, one miss
  // per message actually built (counted when the build lease is acquired).
  // A lease waiter's first, empty lookup is counted by neither — it
  // resolves as a hit (or a takeover miss) after waking.
  const std::vector<uint8_t>* CacheLookup(uint64_t key) override {
    const std::vector<uint8_t>* hit = service_->cache_->Lookup(key);
    if (hit != nullptr) ++service_->stats_.cache_hits;
    return hit;
  }
  void CacheStore(uint64_t key, const std::vector<uint8_t>& bytes) override {
    service_->cache_->Store(key, bytes);
  }

  DecodeScratch* Scratch(int slot) override {
    return &service_->scratch_pool_[slot & 1];
  }

  bool CheckValidated(uint64_t key) override {
    return service_->cache_->CheckValidated(key);
  }
  void MarkValidated(uint64_t key) override {
    service_->cache_->MarkValidated(key);
  }

  Result<Iblt> ParseTableMemo(uint64_t key, ByteReader* reader,
                              const IbltConfig& config, WireCodec codec,
                              const TableLineage& lineage) override {
    if (key == 0) {
      return Iblt::DeserializeWith(codec, reader, config, lineage);
    }
    if (const SharedServiceCache::TableMemoEntry* memo =
            service_->cache_->FindTableMemo(key)) {
      // Replayed message: identical bytes, so skipping the recorded length
      // lands the reader exactly where a re-parse would. The entry is
      // immutable; the bulk copy happens outside the cache's stripe lock.
      // Codec-safe: the cache key encodes the wire codec, and the memoized
      // table is the fully-applied parse result (delta frames included).
      if (!reader->Skip(memo->consumed)) {
        return ParseError("memoized table: skip overran message");
      }
      return memo->table;
    }
    const size_t before = reader->remaining();
    Result<Iblt> parsed =
        Iblt::DeserializeWith(codec, reader, config, lineage);
    if (parsed.ok()) {
      service_->cache_->StoreTableMemo(key, parsed.value(),
                                       before - reader->remaining());
    }
    return parsed;
  }

  bool HasPendingOps() const override;
  void ParkOnFlush(std::coroutine_handle<> handle) override;
  void ParkOnRound(std::coroutine_handle<> handle) override;
  void OnSend(Channel* channel, size_t index) override;
  bool TryAcquireBuildLease(uint64_t key) override;
  void ReleaseBuildLease(uint64_t key) override;
  void ParkOnLease(uint64_t key, std::coroutine_handle<> handle) override;
  // ParkOnRecv keeps the base behavior (store in the context's waiter
  // list) plus a trace event; the service moves ready waiters onto its
  // scheduler queue from OnSend / DeliverRemote instead of resuming them
  // nested.
  void ParkOnRecv(const Channel* channel, size_t index,
                  std::coroutine_handle<> handle) override;
  void OnDecodeFailure() override { ++service_->metrics_.decode_failures; }
  void OnRetryRound() override { ++service_->metrics_.retry_rounds; }

 private:
  void QueueIbltOp(Iblt::ApplyOp op);

  SyncService* service_ = nullptr;
  Session* session_ = nullptr;
};

/// One in-flight session: its spec, channel (the transcript), protocol
/// coroutine(s) and park state. `ctx` is declared before `task` so the
/// coroutine frame is destroyed first.
struct SyncService::Session {
  uint64_t id = 0;
  size_t slot = 0;  // Index in active_ (kept fresh by swap-removal).
  SessionSpec spec;
  Channel channel;
  std::shared_ptr<const SetsOfSetsProtocol> protocol;
  SessionContext ctx;
  Task<Result<SsrOutcome>> task;
  bool started = false;
  /// Planner ops queued by this session since the last flush.
  size_t ops_pending = 0;
  /// Observability state (src/obs/): all timestamps are 0 when metrics and
  /// tracing are off, so recording sites can gate on them.
  uint64_t start_ns = 0;       ///< StartSession timestamp.
  uint64_t last_round_ns = 0;  ///< Previous round boundary.
  uint64_t lease_park_ns = 0;  ///< Set while parked on a build lease.
  uint64_t lease_held_ns = 0;  ///< Set while holding a build lease.
  /// Histogram axes, resolved once at start (protocol kind x wire codec).
  uint8_t kind_idx = 0;
  uint8_t codec_idx = 0;

  bool opaque() const { return spec.alice == nullptr && spec.bob == nullptr; }
};

namespace {

/// Adapts Alice's half to the session task shape: her half has no outcome
/// payload (the recovery happens at the remote Bob), so a completed server
/// half reports stats off the transcript and an empty recovered set.
Task<Result<SsrOutcome>> RunAliceHalfSession(
    std::shared_ptr<const SetsOfSetsProtocol> protocol, const SetOfSets* alice,
    std::optional<size_t> known_d, Channel* channel, ProtocolContext* ctx) {
  Task<Status> half =
      protocol->ReconcileAsyncAlice(*alice, known_d, channel, ctx);
  half.Start();
  co_await TaskJoin<Status>{&half};
  Status status = half.TakeResult();
  if (!status.ok()) co_return status;
  SsrOutcome outcome;
  outcome.stats = {channel->rounds(), channel->total_bytes(), 0};
  co_return outcome;
}

}  // namespace

void SyncService::SessionContext::QueueIbltOp(Iblt::ApplyOp op) {
  if (op.n == 0) return;
  service_->iblt_ops_.push_back(op);
  ++session_->ops_pending;
}

void SyncService::SessionContext::QueueL0Update(L0Estimator* est,
                                                const uint64_t* xs, size_t n,
                                                int side) {
  if (n == 0) return;
  service_->estimator_jobs_.push_back({est, nullptr, xs, n, side});
  ++session_->ops_pending;
}

void SyncService::SessionContext::QueueStrataUpdate(StrataEstimator* est,
                                                    const uint64_t* xs,
                                                    size_t n, int side) {
  if (n == 0) return;
  service_->estimator_jobs_.push_back({nullptr, est, xs, n, side});
  ++session_->ops_pending;
}

uint64_t SyncService::SessionContext::PeerSetIdentity() {
  // The Bob-side cache keys mirror Alice's, which hash her set identity;
  // only sessions that actually hold a registered Alice set resolve it.
  if (session_->spec.alice == nullptr) return 0;
  return service_->IdentityOf(session_->spec.alice.get());
}

bool SyncService::SessionContext::HasPendingOps() const {
  return session_->ops_pending > 0;
}

void SyncService::SessionContext::ParkOnFlush(std::coroutine_handle<> handle) {
  if (service_->tracer_.armed()) {
    service_->tracer_.Record(session_->id, obs::TracePhase::kFlushWait, true,
                             obs::NowNanos(), session_->spec.trace_id);
  }
  service_->flush_waiters_.push_back(ParkedCoro{session_, handle});
}

void SyncService::SessionContext::ParkOnRound(std::coroutine_handle<> handle) {
  if (const uint64_t now = service_->ObsNow(); now != 0) {
    if (service_->options_.metrics && session_->last_round_ns != 0) {
      service_->metrics_
          .round_latency[session_->kind_idx][session_->codec_idx]
          .Record(now - session_->last_round_ns);
    }
    session_->last_round_ns = now;
    if (service_->tracer_.armed()) {
      service_->tracer_.Record(session_->id, obs::TracePhase::kRoundWait,
                               true, now, session_->spec.trace_id);
    }
  }
  service_->round_waiters_.push_back(ParkedCoro{session_, handle});
}

void SyncService::SessionContext::ParkOnRecv(const Channel* channel,
                                             size_t index,
                                             std::coroutine_handle<> handle) {
  if (service_->tracer_.armed()) {
    service_->tracer_.Record(session_->id, obs::TracePhase::kRecvWait, true,
                             obs::NowNanos(), session_->spec.trace_id);
  }
  ProtocolContext::ParkOnRecv(channel, index, handle);
}

void SyncService::SessionContext::OnSend(Channel* channel, size_t index) {
  if (session_->spec.mirror != nullptr) {
    if (!session_->spec.mirror->Send(channel->Receive(index))) {
      ++service_->stats_.mirror_drops;
    }
  }
  // A send may complete the peer half's pending receive (loopback
  // composition); schedule it instead of resuming nested so the Step loop
  // keeps its round-by-round shape.
  service_->CollectReadyReceives(session_);
}

bool SyncService::SessionContext::TryAcquireBuildLease(uint64_t key) {
  const bool acquired = service_->cache_->TryAcquireLease(key);
  if (acquired) {
    ++service_->stats_.cache_misses;
    if (service_->options_.metrics) {
      session_->lease_held_ns = obs::NowNanos();
    }
  }
  return acquired;
}

void SyncService::SessionContext::ReleaseBuildLease(uint64_t key) {
  if (service_->options_.metrics && session_->lease_held_ns != 0) {
    service_->metrics_.lease_hold.Record(obs::NowNanos() -
                                         session_->lease_held_ns);
    session_->lease_held_ns = 0;
  }
  // Wake the waiters through each owning shard's scheduler queue (never
  // inline, never cross-thread): they re-check the cache and either replay
  // the stored message or contend for the freed lease, in park order.
  for (int shard : service_->cache_->ReleaseLease(key)) {
    if (shard == service_->shard_id_) {
      service_->WakeLease(key);
    } else if (service_->cross_shard_wake_) {
      service_->cross_shard_wake_(shard, key);
    }
  }
}

void SyncService::SessionContext::ParkOnLease(uint64_t key,
                                              std::coroutine_handle<> handle) {
  if (const uint64_t now = service_->ObsNow(); now != 0) {
    session_->lease_park_ns = now;
    if (service_->tracer_.armed()) {
      service_->tracer_.Record(session_->id, obs::TracePhase::kLeaseWait,
                               true, now, session_->spec.trace_id);
    }
  }
  service_->lease_waiters_[key].push_back(ParkedCoro{session_, handle});
  if (!service_->cache_->AddLeaseWaiter(key, service_->shard_id_)) {
    // The builder released between the failed acquire and this park; no
    // wake will come. Self-wake so the coroutine re-checks the cache.
    service_->WakeLease(key);
  }
}

SyncService::SyncService(SyncServiceOptions options,
                         std::shared_ptr<SharedServiceCache> cache,
                         int shard_id)
    : options_(std::move(options)),
      cache_(std::move(cache)),
      shard_id_(shard_id) {
  if (cache_ == nullptr) {
    cache_ = std::make_shared<SharedServiceCache>(
        SharedCacheOptions{options_.alice_cache_max_entries});
  }
  if (options_.trace_slow_ns > 0) {
    tracer_.Configure(options_.trace_ring_capacity, options_.trace_slow_ns);
  }
}

SyncService::~SyncService() = default;

uint64_t SyncService::RegisterSharedSet(
    std::shared_ptr<const SetOfSets> set) {
  return cache_->RegisterSharedSet(std::move(set));
}

std::shared_ptr<const SetOfSets> SyncService::SharedSetById(
    uint64_t id) const {
  return cache_->SharedSetById(id);
}

uint64_t SyncService::IdentityOf(const void* set) const {
  return cache_->IdentityOf(set);
}

void SyncService::ConfigureIds(uint64_t first, uint64_t stride) {
  assert(stride > 0);
  next_session_id_.store(first, std::memory_order_relaxed);
  id_stride_ = stride;
}

uint64_t SyncService::AllocateSessionId() {
  return next_session_id_.fetch_add(id_stride_, std::memory_order_relaxed);
}

uint64_t SyncService::Submit(SessionSpec spec) {
  const uint64_t id = AllocateSessionId();
  SubmitPreassigned(id, std::move(spec));
  return id;
}

void SyncService::SubmitPreassigned(uint64_t id, SessionSpec spec) {
  switch (spec.role) {
    case SessionRole::kBoth:
      assert((spec.alice != nullptr && spec.bob != nullptr) ||
             spec.opaque != nullptr);
      break;
    case SessionRole::kAliceHalf:
      assert(spec.alice != nullptr);
      break;
    case SessionRole::kBobHalf:
      assert(spec.bob != nullptr);
      break;
  }
  ++stats_.sessions_submitted;
  live_load_.fetch_add(1, std::memory_order_relaxed);
  backlog_.push_back(PendingSession{id, std::move(spec)});
}

void SyncService::EnqueueSubmit(uint64_t id, SessionSpec spec) {
  Command cmd;
  cmd.kind = Command::Kind::kSubmit;
  cmd.id = id;
  cmd.spec = std::move(spec);
  mailbox_depth_.fetch_add(1, std::memory_order_relaxed);
  mailbox_.Push(std::move(cmd));
}

void SyncService::EnqueueRemote(uint64_t id, Channel::Message message) {
  Command cmd;
  cmd.kind = Command::Kind::kRemote;
  cmd.id = id;
  cmd.message = std::move(message);
  mailbox_depth_.fetch_add(1, std::memory_order_relaxed);
  mailbox_.Push(std::move(cmd));
}

void SyncService::EnqueueCancel(uint64_t id, Status reason) {
  Command cmd;
  cmd.kind = Command::Kind::kCancel;
  cmd.id = id;
  cmd.status = std::move(reason);
  mailbox_depth_.fetch_add(1, std::memory_order_relaxed);
  mailbox_.Push(std::move(cmd));
}

void SyncService::EnqueueLeaseWake(uint64_t key) {
  Command cmd;
  cmd.kind = Command::Kind::kLeaseWake;
  cmd.id = key;
  mailbox_depth_.fetch_add(1, std::memory_order_relaxed);
  mailbox_.Push(std::move(cmd));
}

void SyncService::DrainMailbox() {
  const size_t drained = mailbox_.DrainInto([this](Command&& cmd) {
    switch (cmd.kind) {
      case Command::Kind::kSubmit:
        SubmitPreassigned(cmd.id, std::move(cmd.spec));
        break;
      case Command::Kind::kRemote:
        // A remote frame may race ahead of the receive park (the peer
        // replied before this shard stepped the session to its next
        // receive); keep it and retry once the step settles. TryDeliver
        // consumes the message only on success — no payload copy either
        // way.
        if (!TryDeliverRemote(cmd.id, &cmd.message)) {
          deferred_remote_.emplace_back(cmd.id, std::move(cmd.message));
        }
        break;
      case Command::Kind::kCancel:
        CancelSession(cmd.id, std::move(cmd.status));
        break;
      case Command::Kind::kLeaseWake:
        ++stats_.cross_shard_lease_wakes;
        WakeLease(cmd.id);
        break;
    }
  });
  if (drained > 0) {
    mailbox_depth_.fetch_sub(drained, std::memory_order_relaxed);
  }
}

bool SyncService::RetryDeferredRemote() {
  if (deferred_remote_.empty()) return false;
  bool delivered_any = false;
  std::vector<std::pair<uint64_t, Channel::Message>> keep;
  for (auto& [id, message] : deferred_remote_) {
    // A session that finished or was cancelled while the frame waited is a
    // rejection (the pump-side equivalent is a failed DeliverRemote).
    if (active_by_id_.count(id) == 0 &&
        pending_remote_.count(id) == 0) {
      bool backlogged = false;
      for (const PendingSession& pending : backlog_) {
        if (pending.id == id) {
          backlogged = true;
          break;
        }
      }
      if (!backlogged) {
        ++stats_.remote_rejected;
        continue;
      }
    }
    if (TryDeliverRemote(id, &message)) {
      delivered_any = true;
    } else {
      keep.emplace_back(id, std::move(message));
    }
  }
  deferred_remote_ = std::move(keep);
  return delivered_any;
}

namespace {

/// The wire party a half session's remote peer speaks as.
Party RemotePartyOf(SessionRole role) {
  return role == SessionRole::kAliceHalf ? Party::kBob : Party::kAlice;
}

/// Whether the REMOTE party sends the protocol's opening message (so one
/// frame may legitimately arrive before the local half has run): Bob opens
/// the SSRU estimator exchange of naive/multiround; Alice opens everything
/// else.
bool RemoteOpens(const SessionSpec& spec) {
  const bool bob_opens =
      !spec.known_d.has_value() &&
      (spec.protocol == SsrProtocolKind::kNaive ||
       spec.protocol == SsrProtocolKind::kMultiRound);
  return spec.role == SessionRole::kAliceHalf ? bob_opens : !bob_opens;
}

}  // namespace

bool SyncService::DeliverRemote(uint64_t id, Channel::Message message) {
  return TryDeliverRemote(id, &message);
}

bool SyncService::TryDeliverRemote(uint64_t id, Channel::Message* message) {
  ++stats_.remote_messages;
  auto it = active_by_id_.find(id);
  if (it == active_by_id_.end()) {
    // Not yet admitted: buffer iff the id is still in the backlog. Strict
    // half-duplex means at most ONE remote frame can legitimately precede
    // the session's first resume, and only when the remote party opens
    // the protocol.
    for (const PendingSession& pending : backlog_) {
      if (pending.id != id) continue;
      if (pending.spec.role == SessionRole::kBoth ||
          message->from != RemotePartyOf(pending.spec.role)) {
        return false;
      }
      std::vector<Channel::Message>& buffered = pending_remote_[id];
      if (!buffered.empty() || !RemoteOpens(pending.spec)) return false;
      buffered.push_back(std::move(*message));
      return true;
    }
    return false;
  }
  // Started session: an injected frame in the wrong slot would shift every
  // later transcript index and desync the halves, so accept a remote
  // frame only when it is the remote's turn — i.e., the local half is
  // parked on a receive of exactly the next slot. (Wrong CONTENT in the
  // right slot is the protocols' own problem: it fails parsing and aborts
  // only that session.)
  Session* session = it->second;
  if (session->spec.role == SessionRole::kBoth ||
      message->from != RemotePartyOf(session->spec.role) ||
      !session->ctx.HasRecvWaiterAt(&session->channel,
                                    session->channel.rounds())) {
    return false;
  }
  session->channel.Send(message->from, std::move(message->payload),
                        std::move(message->label));
  CollectReadyReceives(session);
  return true;
}

bool SyncService::CancelSession(uint64_t id, Status reason) {
  assert(!reason.ok());
  auto it = active_by_id_.find(id);
  if (it == active_by_id_.end()) {
    // Possibly still in the backlog: drop it there.
    for (auto pending = backlog_.begin(); pending != backlog_.end();
         ++pending) {
      if (pending->id != id) continue;
      SessionResult result;
      result.id = id;
      result.label = std::move(pending->spec.label);
      result.status = std::move(reason);
      ++stats_.sessions_failed;
      ++stats_.sessions_cancelled;
      live_load_.fetch_sub(1, std::memory_order_relaxed);
      results_.push_back(std::move(result));
      backlog_.erase(pending);
      pending_remote_.erase(id);
      return true;
    }
    return false;
  }
  Session* session = it->second;
  // Between Steps a session's coroutines are parked at round boundaries,
  // receives, or — since cross-shard build leases — a lease wait whose
  // release comes from ANOTHER shard in a later Step. Purge all of them so
  // destroying the frames leaves no dangling handle behind (flush queues
  // are still drained within Step; a lease wake for a purged waiter then
  // finds nothing and is a no-op).
  auto drop = [session](std::deque<ParkedCoro>* queue) {
    queue->erase(std::remove_if(queue->begin(), queue->end(),
                                [session](const ParkedCoro& parked) {
                                  return parked.session == session;
                                }),
                 queue->end());
  };
  drop(&round_waiters_);
  drop(&recv_ready_);
  drop(&lease_ready_);
  for (auto waiters = lease_waiters_.begin();
       waiters != lease_waiters_.end();) {
    drop(&waiters->second);
    waiters = waiters->second.empty() ? lease_waiters_.erase(waiters)
                                      : std::next(waiters);
  }
  session->ctx.CancelReceives();
  ++stats_.sessions_cancelled;
  FinalizeSession(session, std::move(reason));
  return true;
}

std::shared_ptr<const SetsOfSetsProtocol> SyncService::ProtocolFor(
    SsrProtocolKind kind, const SsrParams& params) {
  for (const auto& [key, protocol] : protocol_cache_) {
    if (key.first == kind && key.second == params) return protocol;
  }
  std::shared_ptr<const SetsOfSetsProtocol> protocol =
      MakeSsrProtocol(kind, params);
  if (protocol_cache_.size() < 64) {
    protocol_cache_.emplace_back(std::make_pair(kind, params), protocol);
  }
  return protocol;
}

void SyncService::Admit() {
  const size_t limit = options_.max_inflight == 0
                           ? std::numeric_limits<size_t>::max()
                           : options_.max_inflight;
  while (!backlog_.empty() && active_.size() < limit) {
    std::unique_ptr<Session> session;
    if (!session_pool_.empty()) {
      session = std::move(session_pool_.back());
      session_pool_.pop_back();
    } else {
      session = std::make_unique<Session>();
    }
    session->id = backlog_.front().id;
    session->spec = std::move(backlog_.front().spec);
    backlog_.pop_front();
    session->ctx.Bind(this, session.get());
    if (!session->opaque()) {
      session->protocol =
          ProtocolFor(session->spec.protocol, session->spec.params);
    }
    Session* raw = session.get();
    raw->slot = active_.size();
    active_.push_back(std::move(session));
    active_by_id_.emplace(raw->id, raw);
    // Remote messages that raced ahead of admission land in the transcript
    // before the session's first resume.
    if (auto pending = pending_remote_.find(raw->id);
        pending != pending_remote_.end()) {
      for (Channel::Message& m : pending->second) {
        raw->channel.Send(m.from, std::move(m.payload), std::move(m.label));
      }
      pending_remote_.erase(pending);
    }
    ready_.push_back(raw);
  }
}

void SyncService::RunOpaqueSession(Session* session) {
  Status status = session->spec.opaque(&session->channel);
  SsrOutcome outcome;
  outcome.stats = {session->channel.rounds(), session->channel.total_bytes(),
                   0};
  if (session->spec.mirror != nullptr) {
    for (const Channel::Message& m : session->channel.transcript()) {
      if (!session->spec.mirror->Send(m)) ++stats_.mirror_drops;
    }
  }
  if (status.ok()) {
    FinalizeSession(session, std::move(outcome));
  } else {
    FinalizeSession(session, status);
  }
}

void SyncService::StartSession(Session* session) {
  ++stats_.resumes;
  if (const uint64_t now = ObsNow(); now != 0) {
    session->start_ns = now;
    session->last_round_ns = now;
    if (!session->opaque()) {
      session->kind_idx = static_cast<uint8_t>(session->spec.protocol);
      session->codec_idx =
          session->spec.params.wire_codec == WireCodec::kSparse ? 1 : 0;
    }
    if (tracer_.armed()) {
      tracer_.Record(session->id, obs::TracePhase::kSession, true, now,
                     session->spec.trace_id);
    }
  }
  if (session->opaque()) {
    RunOpaqueSession(session);
    return;
  }
  session->started = true;
  switch (session->spec.role) {
    case SessionRole::kBoth:
      session->task = session->protocol->ReconcileAsync(
          *session->spec.alice, *session->spec.bob, session->spec.known_d,
          &session->channel, &session->ctx);
      break;
    case SessionRole::kAliceHalf:
      session->task = RunAliceHalfSession(
          session->protocol, session->spec.alice.get(),
          session->spec.known_d, &session->channel, &session->ctx);
      break;
    case SessionRole::kBobHalf:
      session->task = session->protocol->ReconcileAsyncBob(
          *session->spec.bob, session->spec.known_d, &session->channel,
          &session->ctx);
      break;
  }
  session->task.Start();
  CheckDone(session);
}

void SyncService::ResumeParked(ParkedCoro parked) {
  ++stats_.resumes;
  parked.handle.resume();
  CheckDone(parked.session);
}

void SyncService::CheckDone(Session* session) {
  if (session->task.Valid() && session->task.Done()) {
    FinalizeSession(session, session->task.TakeResult());
  }
}

void SyncService::CollectReadyReceives(Session* session) {
  while (std::coroutine_handle<> handle = session->ctx.TakeReadyReceive()) {
    recv_ready_.push_back(ParkedCoro{session, handle});
  }
}

void SyncService::WakeLease(uint64_t key) {
  auto it = lease_waiters_.find(key);
  if (it == lease_waiters_.end()) return;
  for (const ParkedCoro& waiter : it->second) {
    lease_ready_.push_back(waiter);
  }
  lease_waiters_.erase(it);
}

void SyncService::FinalizeSession(Session* session,
                                  Result<SsrOutcome> outcome) {
  live_load_.fetch_sub(1, std::memory_order_relaxed);
  SessionResult result;
  result.id = session->id;
  result.label = std::move(session->spec.label);
  if (outcome.ok()) {
    ++stats_.sessions_completed;
    result.status = Status::Ok();
    // For opaque sessions RunOpaqueSession already filled stats from the
    // channel totals; protocol sessions report their own.
    result.stats = outcome.value().stats;
    if (options_.keep_recovered) {
      result.recovered = std::move(outcome.value().recovered);
    }
  } else {
    ++stats_.sessions_failed;
    result.status = outcome.status();
    result.stats = {session->channel.rounds(),
                    session->channel.total_bytes(), 0};
  }
  if (options_.hash_transcripts) {
    result.transcript_hash = HashTranscript(session->channel);
  }
  stats_.total_rounds += session->channel.rounds();
  stats_.total_bytes += session->channel.total_bytes();
  if (const uint64_t now = ObsNow(); now != 0 && session->start_ns != 0) {
    const uint64_t latency = now - session->start_ns;
    if (options_.metrics) {
      if (session->opaque()) {
        metrics_.opaque_session_latency.Record(latency);
      } else {
        metrics_.session_latency[session->kind_idx][session->codec_idx]
            .Record(latency);
      }
    }
    if (tracer_.armed()) {
      tracer_.Record(session->id, obs::TracePhase::kSession, false, now,
                     session->spec.trace_id);
      char label[32];
      if (session->opaque()) {
        std::snprintf(label, sizeof label, "opaque");
      } else {
        std::snprintf(label, sizeof label, "%s/%s",
                      SsrProtocolKindName(session->spec.protocol),
                      session->codec_idx != 0 ? "sparse" : "dense");
      }
      tracer_.OnSessionEnd(session->id, session->spec.trace_id, latency,
                           label, stderr);
    }
  }
  results_.push_back(std::move(result));
  // Swap-remove from the active list; recycle the shell (coroutine frame
  // destroyed by the Task reset, transcript cleared, vector capacity kept).
  active_by_id_.erase(session->id);
  const size_t slot = session->slot;
  std::unique_ptr<Session> finished = std::move(active_[slot]);
  if (slot + 1 != active_.size()) {
    active_[slot] = std::move(active_.back());
    active_[slot]->slot = slot;
  }
  active_.pop_back();
  const size_t pool_cap =
      options_.max_inflight == 0 ? 1024 : options_.max_inflight;
  if (session_pool_.size() < pool_cap) {
    finished->task = Task<Result<SsrOutcome>>();
    finished->protocol = nullptr;
    finished->spec = SessionSpec{};
    finished->channel.Reset();
    finished->started = false;
    finished->ops_pending = 0;
    finished->start_ns = 0;
    finished->last_round_ns = 0;
    finished->lease_park_ns = 0;
    finished->lease_held_ns = 0;
    finished->kind_idx = 0;
    finished->codec_idx = 0;
    session_pool_.push_back(std::move(finished));
  }
}

void SyncService::FlushPlanner() {
  ++stats_.flushes;
  const uint64_t flush_start = options_.metrics ? obs::NowNanos() : 0;
  size_t total_keys = 0;
  for (const Iblt::ApplyOp& op : iblt_ops_) total_keys += op.n;
  stats_.flushed_keys += total_keys;
  if (total_keys > stats_.max_flush_keys) stats_.max_flush_keys = total_keys;
  if (total_keys >= options_.batch.sharded_min_keys) ++stats_.sharded_flushes;

  if (!iblt_ops_.empty()) {
    Iblt::ApplyOps(iblt_ops_.data(), iblt_ops_.size(), options_.batch,
                   &apply_scratch_);
    iblt_ops_.clear();
  }
  for (const EstimatorJob& job : estimator_jobs_) {
    if (job.l0 != nullptr) {
      job.l0->UpdateBatch(job.xs, job.n, job.side);
    } else {
      job.strata->UpdateBatch(job.xs, job.n, job.side);
    }
  }
  stats_.estimator_jobs += estimator_jobs_.size();
  estimator_jobs_.clear();
  if (flush_start != 0) {
    // Latency of the coalesced apply itself; the scatter-back below runs
    // arbitrary protocol code and would swamp the planner signal.
    metrics_.flush_latency.Record(obs::NowNanos() - flush_start);
    metrics_.flush_occupancy.Record(total_keys);
  }

  // Scatter-back: every parked coroutine's sketches are now built; resume
  // them in park order. Resumed coroutines may queue a next build phase
  // (handled by the caller's flush loop) or park at a round boundary.
  std::deque<ParkedCoro> waiters = std::move(flush_waiters_);
  flush_waiters_.clear();
  const bool trace = tracer_.armed();
  for (const ParkedCoro& parked : waiters) {
    parked.session->ops_pending = 0;
    if (trace) {
      tracer_.Record(parked.session->id, obs::TracePhase::kFlushWait, false,
                     obs::NowNanos(), parked.session->spec.trace_id);
    }
    ResumeParked(parked);
  }
}

bool SyncService::Step() {
#ifndef NDEBUG
  // One driving thread per service, forever: coroutine frames recycle
  // through thread-local pools and must never resume on a foreign thread.
  if (owner_thread_ == std::thread::id{}) {
    owner_thread_ = std::this_thread::get_id();
  }
  assert(owner_thread_ == std::this_thread::get_id() &&
         "SyncService stepped from a foreign thread");
#endif
  heartbeat_.Beat(obs::NowNanos());
  DrainMailbox();
  Admit();
  if (active_.empty()) {
    // Idle shard: any still-deferred remote frames can never deliver.
    for (auto& deferred : deferred_remote_) {
      (void)deferred;
      ++stats_.remote_rejected;
    }
    deferred_remote_.clear();
    MaybePublishMetrics(/*idle=*/backlog_.empty());
    return !backlog_.empty();
  }
  ++stats_.steps;
  publish_dirty_ = true;

  // Round waiters first (FIFO fairness), then newly admitted sessions.
  // Drain a snapshot: a coroutine that parks at its next round boundary
  // during the drain must wait for the NEXT tick (the one-round-per-tick
  // contract of SendAwaiter), not be resumed again in this one.
  std::deque<ParkedCoro> round_now = std::move(round_waiters_);
  round_waiters_.clear();
  if (tracer_.armed() && !round_now.empty()) {
    const uint64_t now = obs::NowNanos();
    for (const ParkedCoro& parked : round_now) {
      tracer_.Record(parked.session->id, obs::TracePhase::kRoundWait, false,
                     now, parked.session->spec.trace_id);
    }
  }
  while (!round_now.empty()) {
    ParkedCoro parked = round_now.front();
    round_now.pop_front();
    ResumeParked(parked);
  }

  // Drain build phases: each flush applies every queued op across all
  // sessions as one coalesced pass, then resumes the owners, who may queue
  // the next phase; lease waiters wake as the builds they were parked on
  // get stored, and split-party peers wake as the messages they await are
  // sent. As completions free in-flight capacity, backlog sessions are
  // admitted INTO the running tick, so a departing wave's late phases
  // coalesce with the next wave's early ones (no pipeline bubble). When
  // this loop exits, every live coroutine sits at a round boundary or a
  // not-yet-arrived remote receive.
  for (;;) {
    while (!ready_.empty()) {
      Session* session = ready_.front();
      ready_.pop_front();
      StartSession(session);
    }
    while (!recv_ready_.empty()) {
      ParkedCoro parked = recv_ready_.front();
      recv_ready_.pop_front();
      if (tracer_.armed()) {
        tracer_.Record(parked.session->id, obs::TracePhase::kRecvWait, false,
                       obs::NowNanos(), parked.session->spec.trace_id);
      }
      ResumeParked(parked);
    }
    while (!lease_ready_.empty()) {
      ParkedCoro parked = lease_ready_.front();
      lease_ready_.pop_front();
      if (const uint64_t now = ObsNow();
          now != 0 && parked.session->lease_park_ns != 0) {
        if (options_.metrics) {
          metrics_.lease_wait.Record(now - parked.session->lease_park_ns);
        }
        parked.session->lease_park_ns = 0;
        if (tracer_.armed()) {
          tracer_.Record(parked.session->id, obs::TracePhase::kLeaseWait,
                         false, now, parked.session->spec.trace_id);
        }
      }
      ResumeParked(parked);
    }
    if (!flush_waiters_.empty() || !iblt_ops_.empty() ||
        !estimator_jobs_.empty()) {
      FlushPlanner();
      continue;
    }
    Admit();
    if (ready_.empty() && recv_ready_.empty() && lease_ready_.empty()) {
      // Settled: mailbox remote frames that raced ahead of a receive park
      // may be deliverable now; a successful injection re-opens the loop.
      if (RetryDeferredRemote()) continue;
      break;
    }
  }

  MaybePublishMetrics(/*idle=*/active_.empty() && backlog_.empty());
  return !active_.empty() || !backlog_.empty();
}

void SyncService::MaybePublishMetrics(bool idle) {
  if (!options_.metrics || !publish_dirty_) return;
  const uint64_t now = obs::NowNanos();
  // Throttle mid-burst publishes; an idle shard always flushes so the
  // published snapshot converges to the live block at quiescence.
  constexpr uint64_t kPublishIntervalNs = 50'000'000;
  if (!idle && now - last_publish_ns_ < kPublishIntervalNs) return;
  last_publish_ns_ = now;
  publish_dirty_ = false;
  rate_ring_.Advance(now, CurrentRateSample());
  PublishMetrics();
}

obs::RateRing::Sample SyncService::CurrentRateSample() const {
  return obs::RateRing::Sample{
      static_cast<uint64_t>(stats_.sessions_completed),
      static_cast<uint64_t>(stats_.total_bytes),
      static_cast<uint64_t>(metrics_.decode_failures)};
}

obs::RateRing::Rates SyncService::CurrentRates() {
  const uint64_t now = obs::NowNanos();
  rate_ring_.Advance(now, CurrentRateSample());
  return rate_ring_.SnapshotAt(now);
}

obs::RateRing SyncService::SnapshotRateRing() const {
  std::lock_guard<std::mutex> lock(published_mu_);
  return published_rate_ring_;
}

void SyncService::PublishMetrics() {
  std::lock_guard<std::mutex> lock(published_mu_);
  published_metrics_ = metrics_;
  published_stats_ = stats_;
  published_rate_ring_ = rate_ring_;
}

void SyncService::SnapshotPublished(obs::MetricRegistry* metrics,
                                    ServiceStats* stats) const {
  std::lock_guard<std::mutex> lock(published_mu_);
  if (metrics != nullptr) metrics->Merge(published_metrics_);
  if (stats != nullptr) stats->Accumulate(published_stats_);
}

void AppendServiceExposition(const obs::MetricRegistry& metrics,
                             const ServiceStats& stats,
                             obs::ExpositionWriter* writer) {
  static const char* const kKindNames[obs::kProtocolKinds] = {
      SsrProtocolKindName(SsrProtocolKind::kNaive),
      SsrProtocolKindName(SsrProtocolKind::kIblt2),
      SsrProtocolKindName(SsrProtocolKind::kCascade),
      SsrProtocolKindName(SsrProtocolKind::kMultiRound)};
  static const char* const kCodecNames[obs::kWireCodecs] = {"dense",
                                                            "sparse"};
  obs::AppendRegistry(metrics, kKindNames, kCodecNames, *writer);
  writer->Counter("setrec_sessions_submitted", "", stats.sessions_submitted);
  writer->Counter("setrec_sessions_completed", "", stats.sessions_completed);
  writer->Counter("setrec_sessions_failed", "", stats.sessions_failed);
  writer->Counter("setrec_sessions_cancelled", "",
                  stats.sessions_cancelled);
  writer->Counter("setrec_total_rounds", "", stats.total_rounds);
  writer->Counter("setrec_total_bytes", "", stats.total_bytes);
  writer->Counter("setrec_steps", "", stats.steps);
  writer->Counter("setrec_resumes", "", stats.resumes);
  writer->Counter("setrec_flushes", "", stats.flushes);
  writer->Counter("setrec_flushed_keys", "", stats.flushed_keys);
  writer->Gauge("setrec_max_flush_keys", "", stats.max_flush_keys);
  writer->Counter("setrec_sharded_flushes", "", stats.sharded_flushes);
  writer->Counter("setrec_estimator_jobs", "", stats.estimator_jobs);
  writer->Counter("setrec_cache_hits", "", stats.cache_hits);
  writer->Counter("setrec_cache_misses", "", stats.cache_misses);
  writer->Counter("setrec_mirror_drops", "", stats.mirror_drops);
  writer->Counter("setrec_remote_messages", "", stats.remote_messages);
  writer->Counter("setrec_remote_rejected", "", stats.remote_rejected);
  writer->Counter("setrec_cross_shard_lease_wakes", "",
                  stats.cross_shard_lease_wakes);
}

void SyncService::RunToCompletion() {
  while (Step()) {
  }
}

std::vector<SessionResult> SyncService::TakeResults() {
  return std::move(results_);
}

}  // namespace setrec
