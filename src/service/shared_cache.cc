#include "service/shared_cache.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace setrec {

SharedServiceCache::SharedServiceCache(SharedCacheOptions options)
    : options_(options) {}


uint64_t SharedServiceCache::RegisterSharedSet(
    std::shared_ptr<const SetOfSets> set) {
  assert(set != nullptr);
  std::lock_guard<std::mutex> lock(sets_mu_);
  auto it = set_identities_.find(set.get());
  if (it != set_identities_.end()) return it->second;
  uint64_t id = static_cast<uint64_t>(pinned_sets_.size()) + 1;
  set_identities_.emplace(set.get(), id);
  pinned_sets_.push_back(std::move(set));
  return id;
}

std::shared_ptr<const SetOfSets> SharedServiceCache::SharedSetById(
    uint64_t id) const {
  std::lock_guard<std::mutex> lock(sets_mu_);
  if (id == 0 || id > pinned_sets_.size()) return nullptr;
  return pinned_sets_[id - 1];  // Ids are assigned densely from 1.
}

uint64_t SharedServiceCache::IdentityOf(const void* set) const {
  std::lock_guard<std::mutex> lock(sets_mu_);
  auto it = set_identities_.find(set);
  return it == set_identities_.end() ? 0 : it->second;
}

const std::vector<uint8_t>* SharedServiceCache::Lookup(uint64_t key) const {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.messages.find(key);
  // Entries are immutable and never erased: the pointer stays valid after
  // the stripe lock drops (unordered_map nodes are stable under rehash).
  return it == stripe.messages.end() ? nullptr : &it->second;
}

void SharedServiceCache::Store(uint64_t key,
                               const std::vector<uint8_t>& bytes) {
  // Global cap, counted atomically across stripes (refuse-at-cap, exactly
  // the pre-shard policy; the count may overshoot by at most one in-flight
  // insert per thread, which a back-stop cap tolerates).
  if (message_count_.load(std::memory_order_relaxed) >=
      options_.max_entries) {
    return;
  }
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (stripe.messages.emplace(key, bytes).second) {
    message_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool SharedServiceCache::CheckValidated(uint64_t key) const {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  return stripe.validated.count(key) > 0;
}

void SharedServiceCache::MarkValidated(uint64_t key) {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.validated.insert(key);
}

const SharedServiceCache::TableMemoEntry* SharedServiceCache::FindTableMemo(
    uint64_t key) const {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.tables.find(key);
  return it == stripe.tables.end() ? nullptr : &it->second;
}

void SharedServiceCache::StoreTableMemo(uint64_t key, const Iblt& table,
                                        size_t consumed) {
  if (table_count_.load(std::memory_order_relaxed) >= options_.max_entries) {
    return;
  }
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (stripe.tables.emplace(key, TableMemoEntry{table, consumed}).second) {
    table_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool SharedServiceCache::TryAcquireLease(uint64_t key) {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  return stripe.leases.emplace(key, Stripe::Lease{}).second;
}

bool SharedServiceCache::AddLeaseWaiter(uint64_t key, int shard) {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.leases.find(key);
  if (it == stripe.leases.end()) return false;  // Released already.
  std::vector<int>& waiters = it->second.waiter_shards;
  if (std::find(waiters.begin(), waiters.end(), shard) == waiters.end()) {
    waiters.push_back(shard);
  }
  return true;
}

std::vector<int> SharedServiceCache::ReleaseLease(uint64_t key) {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.leases.find(key);
  if (it == stripe.leases.end()) return {};
  std::vector<int> waiters = std::move(it->second.waiter_shards);
  stripe.leases.erase(it);
  return waiters;
}

}  // namespace setrec
