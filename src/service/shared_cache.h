#ifndef SETREC_SERVICE_SHARED_CACHE_H_
#define SETREC_SERVICE_SHARED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/protocol.h"
#include "hashing/random.h"
#include "iblt/iblt.h"

namespace setrec {

struct SharedCacheOptions {
  /// Cap on memoized Alice messages (and, independently, parsed tables).
  size_t max_entries = 4096;
};

/// The cross-session memo state that PR 3 kept inside one SyncService —
/// registered shared sets, Alice-message bytes, validation verdicts,
/// Bob-side parsed tables, and the anti-stampede build leases — hoisted out
/// so N service shards can share it.
///
/// Locking discipline (see src/service/README.md):
///  * Every mutating/reading path takes a per-stripe mutex chosen by
///    Mix64(key); stripes are independent, so shards contend only on the
///    same key neighborhood, never on one global lock.
///  * Memo entries (message bytes, parsed tables, pinned sets) are
///    IMMUTABLE once inserted and NEVER erased, so the pointers handed back
///    by Lookup/FindTableMemo stay valid for the cache's lifetime and may
///    be read outside the stripe lock. Eviction is by refusing inserts at
///    the cap, exactly as the pre-shard service behaved.
///  * Build leases are the only mutable records. A shard that loses the
///    acquire race registers itself as a lease waiter; ReleaseLease hands
///    the caller the waiting shard ids, and the service layer routes a
///    lease-wake through each shard's lock-free mailbox (the parked
///    coroutines themselves never cross threads).
class SharedServiceCache {
 public:
  explicit SharedServiceCache(SharedCacheOptions options = {});

  SharedServiceCache(const SharedServiceCache&) = delete;
  SharedServiceCache& operator=(const SharedServiceCache&) = delete;

  // --- Registered shared sets -----------------------------------------

  /// Pins `set` for the cache's lifetime; returns its stable identity
  /// (dense from 1). Re-registering the same pointer returns the same id.
  uint64_t RegisterSharedSet(std::shared_ptr<const SetOfSets> set);
  std::shared_ptr<const SetOfSets> SharedSetById(uint64_t id) const;
  /// Identity of a registered set pointer, 0 when unknown.
  uint64_t IdentityOf(const void* set) const;

  // --- Alice-message memo ---------------------------------------------

  /// The memoized message for `key`, or null. The pointee is immutable and
  /// lives as long as the cache (entries are never evicted), so the caller
  /// may use it after dropping into coroutine code.
  const std::vector<uint8_t>* Lookup(uint64_t key) const;
  void Store(uint64_t key, const std::vector<uint8_t>& bytes);

  // --- Validation memo ------------------------------------------------

  bool CheckValidated(uint64_t key) const;
  void MarkValidated(uint64_t key);

  // --- Bob-side parsed-table memo -------------------------------------

  struct TableMemoEntry {
    Iblt table;
    /// Serialized length to skip on replay.
    size_t consumed;
  };
  /// Stable pointer to the memoized parse for `key`, or null.
  const TableMemoEntry* FindTableMemo(uint64_t key) const;
  void StoreTableMemo(uint64_t key, const Iblt& table, size_t consumed);

  // --- Anti-stampede build leases -------------------------------------

  /// True when the caller is now the builder for `key`.
  bool TryAcquireLease(uint64_t key);
  /// Registers `shard` to be woken when `key`'s lease releases. False when
  /// the lease is no longer held (the caller should wake itself and
  /// re-contend instead of waiting for a release that already happened).
  bool AddLeaseWaiter(uint64_t key, int shard);
  /// Releases the lease and returns the shards with registered waiters
  /// (deduped; may include the releasing shard itself).
  std::vector<int> ReleaseLease(uint64_t key);

  const SharedCacheOptions& options() const { return options_; }

 private:
  static constexpr size_t kStripes = 16;

  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::vector<uint8_t>> messages;
    std::unordered_set<uint64_t> validated;
    std::unordered_map<uint64_t, TableMemoEntry> tables;
    struct Lease {
      std::vector<int> waiter_shards;
    };
    std::unordered_map<uint64_t, Lease> leases;
  };

  Stripe& StripeFor(uint64_t key) const {
    return stripes_[Mix64(key) % kStripes];
  }

  SharedCacheOptions options_;
  mutable Stripe stripes_[kStripes];
  /// Global entry counts (the max_entries caps are whole-cache, not
  /// per-stripe); relaxed atomics — a back-stop, not an invariant.
  std::atomic<size_t> message_count_{0};
  std::atomic<size_t> table_count_{0};

  mutable std::mutex sets_mu_;
  std::vector<std::shared_ptr<const SetOfSets>> pinned_sets_;
  std::unordered_map<const void*, uint64_t> set_identities_;
};

}  // namespace setrec

#endif  // SETREC_SERVICE_SHARED_CACHE_H_
