#ifndef SETREC_IBLT_IBLT_H_
#define SETREC_IBLT_IBLT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "hashing/hash.h"
#include "util/aligned.h"
#include "util/serialization.h"
#include "util/status.h"

namespace setrec {

/// Sizing and hashing configuration for an Iblt. Both parties must build
/// tables from identical configs (same cells, hash count, key width, seed)
/// for subtraction to be meaningful; Subtract() enforces this.
struct IbltConfig {
  /// Total number of cells m (rounded up to a multiple of num_hashes so the
  /// table partitions evenly; the paper's "partitioned hash table" variant,
  /// which guarantees the k cells of a key are distinct).
  size_t cells = 16;
  /// Number of hash functions k.
  int num_hashes = 4;
  /// Bytes per key. 8 for 64-bit elements; larger for blob keys such as the
  /// serialized child encodings of Algorithms 1 and 2.
  size_t key_width = 8;
  /// Seed for the bucket and checksum hash families (public coins).
  uint64_t seed = 0;

  /// Config sized to decode a set difference of up to `diff` keys with high
  /// probability (Theorem 2.1's O(d) cells with an explicit constant).
  static IbltConfig ForDifference(size_t diff, uint64_t seed,
                                  size_t key_width = 8, int num_hashes = 4);

  /// cells rounded up to a multiple of num_hashes.
  size_t PaddedCells() const;

  /// Bytes of the fixed-width serialization (count + checksum + key per
  /// cell, plus no header); used to size blob keys that embed a child IBLT.
  size_t FixedSerializedSize() const;

  bool operator==(const IbltConfig&) const = default;
};

/// Compiled-in default for IbltBatchOptions::sharded_min_keys (also
/// exposed as Iblt::kShardedBatchMinKeys).
inline constexpr size_t kShardedBatchMinKeysDefault = 1u << 16;

/// Which wire encoding a protocol uses for the IBLT tables it sends. A
/// WIRE-layer concern only: in-memory tables are identical under every
/// codec, and both parties must agree on the codec before the first table
/// crosses the wire (the src/net hello frame negotiates it; see
/// src/net/README.md for the byte-level formats).
///
///  * kDense  — the legacy cell stream (Iblt::Serialize): every cell,
///    empty or not. Value 0 on the wire so old transcripts and
///    mixed-version peers keep working.
///  * kSparse — Iblt::SerializeSparse: occupancy bitmap, 2-bit packed
///    counts with an escape list, check/key payloads only for occupied
///    cells, zero bytes of key payloads suppressed behind per-group mask
///    bytes. Falls back to the dense cell stream per table (a mode byte)
///    when the sparse form would be larger, so incompressible tables —
///    8-byte checksums are uniformly random — never expand.
enum class WireCodec : uint8_t { kDense = 0, kSparse = 1 };

class Iblt;

/// Lightweight parent pointer for delta retransmission across the doubling
/// protocols' attempts. When a retry re-sends a table whose config is
/// IDENTICAL to the previous attempt's (same cells, key width, seed), the
/// sender can ship only the cells that changed relative to that parent
/// (Iblt::SerializeDelta) instead of the whole table. Non-owning: the
/// caller keeps the parent table alive for the duration of the encode or
/// decode call; nothing retains the pointer afterwards.
struct TableLineage {
  const Iblt* parent = nullptr;

  /// True when a delta against `parent` can represent a table of `config`:
  /// a parent exists and its config matches exactly. Both protocol halves
  /// evaluate this from their own retained previous-attempt table, so the
  /// decision needs no wire flag — but the frame is still self-describing
  /// (delta frames carry their own mode byte), so a sender without lineage
  /// may fall back to a full sparse frame and the receiver still parses it.
  bool CoversConfig(const IbltConfig& config) const;  // defined after Iblt
};

/// Runtime tuning for batched cell updates (InsertBatch/EraseBatch and the
/// multi-table Iblt::ApplyOps pass). A process-wide default is held by
/// Iblt::batch_options()/set_batch_options(); callers that want different
/// behavior per pass (the service batch planner, threshold sweeps in
/// benches) pass their own instance to ApplyOps.
struct IbltBatchOptions {
  /// Total keys in a pass at or above which cell updates are sharded across
  /// std::thread workers (partitions are disjoint cell ranges, so sharding
  /// is synchronization-free and deterministic).
  size_t sharded_min_keys = kShardedBatchMinKeysDefault;
  /// Worker cap for sharded passes; 0 = std::thread::hardware_concurrency().
  int max_workers = 0;
};

/// Result of peeling an IBLT (or a subtracted pair of IBLTs): the keys with
/// positive counts and the keys with negative counts. For Alice's table
/// minus Bob's, positives are S_A \ S_B and negatives are S_B \ S_A.
/// This is the OWNING form (one heap vector per key); the hot decode path
/// returns IbltDecodeView instead and only materializes on request.
struct IbltDecodeResult {
  std::vector<std::vector<uint8_t>> positive;
  std::vector<std::vector<uint8_t>> negative;
};

/// Same, for 64-bit keys.
struct IbltDecodeResult64 {
  std::vector<uint64_t> positive;
  std::vector<uint64_t> negative;
};

/// Non-owning 64-bit decode result: spans into DecodeScratch-owned vectors
/// (the u64 mirror of IbltDecodeView, closing the last capacity-growth
/// allocations of warm u64 decodes). Valid until the scratch's next decode
/// or destruction. The spans are mutable on purpose: the backing storage
/// belongs to the scratch, and callers commonly sort a side in place before
/// consuming it.
struct IbltDecodeView64 {
  std::span<uint64_t> positive;
  std::span<uint64_t> negative;

  /// Deep owning copy, independent of the scratch.
  IbltDecodeResult64 Materialize() const {
    return IbltDecodeResult64{
        std::vector<uint64_t>(positive.begin(), positive.end()),
        std::vector<uint64_t>(negative.begin(), negative.end())};
  }
};

/// A decoded key viewed in place: `size` bytes (the table's key_width) at
/// `data`, pointing into the DecodeScratch output arena that produced it.
///
/// LIFETIME: a view is valid until its scratch is used for another decode
/// (any Decode/DecodePartial/DecodeU64 overload) or destroyed. Callers that
/// must hold keys past that point copy them out with ToVector() or
/// IbltDecodeView::Materialize().
struct IbltKeyView {
  const uint8_t* data = nullptr;
  size_t size = 0;

  std::vector<uint8_t> ToVector() const {
    return std::vector<uint8_t>(data, data + size);
  }
  std::span<const uint8_t> bytes() const { return {data, size}; }
};

inline bool operator==(const IbltKeyView& a, const IbltKeyView& b) {
  return a.size == b.size &&
         (a.size == 0 || std::memcmp(a.data, b.data, a.size) == 0);
}
inline bool operator==(const IbltKeyView& a, const std::vector<uint8_t>& b) {
  return a.size == b.size() &&
         (a.size == 0 || std::memcmp(a.data, b.data(), a.size) == 0);
}

/// Transparent lexicographic comparator over byte-string keys, accepting
/// both owned blobs (std::vector<uint8_t>) and IbltKeyView. Protocol maps
/// keyed by owned encodings can be probed with decode views directly — no
/// per-lookup materialization:
///   std::map<std::vector<uint8_t>, T, KeyBytesLess> m;
///   m.find(view);  // heterogeneous, allocation-free
struct KeyBytesLess {
  using is_transparent = void;

  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return Less(AsSpan(a), AsSpan(b));
  }

 private:
  static std::span<const uint8_t> AsSpan(const IbltKeyView& v) {
    return v.bytes();
  }
  static std::span<const uint8_t> AsSpan(const std::vector<uint8_t>& v) {
    return {v.data(), v.size()};
  }
  static bool Less(std::span<const uint8_t> a, std::span<const uint8_t> b) {
    const size_t n = a.size() < b.size() ? a.size() : b.size();
    const int cmp = n == 0 ? 0 : std::memcmp(a.data(), b.data(), n);
    if (cmp != 0) return cmp < 0;
    return a.size() < b.size();
  }
};

/// Non-owning decode result: spans of key views backed by the DecodeScratch
/// passed to Decode()/DecodePartial(). Subject to the IbltKeyView lifetime
/// rule above — reusing or destroying the scratch invalidates every view
/// (and the spans themselves). With a warm scratch the whole decode is
/// allocation-free; Materialize() is the escape hatch for callers that need
/// owning copies.
struct IbltDecodeView {
  std::span<const IbltKeyView> positive;
  std::span<const IbltKeyView> negative;

  /// Deep owning copy (one vector per key), independent of the scratch.
  IbltDecodeResult Materialize() const;
};

/// Best-effort decode: whatever peeled out, plus whether the table drained
/// completely. The cascading protocol (Algorithm 2) uses partial decodes —
/// children missed at level i are caught at level i+1.
struct IbltPartialDecode {
  IbltDecodeResult entries;
  bool complete = false;
};

/// View-based partial decode; same lifetime rules as IbltDecodeView.
struct IbltPartialDecodeView {
  IbltDecodeView entries;
  bool complete = false;
};

/// One cell's count + checksum, kept adjacent so a random cell touch costs
/// one cache line for the header and one for the key lanes (16-byte record,
/// never straddles a 64-byte line).
struct IbltCellMeta {
  int64_t count = 0;
  uint64_t check = 0;
};

/// Reusable peeling workspace. Decoding copies the table (counts, checksums,
/// key lanes) into this scratch and peels the copy; after the first decode
/// warms the vectors up, subsequent decodes through the same scratch are
/// fully allocation-free (vector::assign and the output arena reuse
/// capacity) — for byte keys as well as u64 keys. One scratch may be shared
/// across tables of *different* configs — each decode resizes it — which is
/// exactly what the cascading protocol's many child-IBLT decodes and the
/// strata estimator's per-stratum decodes need. A scratch carries no table
/// state between decodes; it must not be used by two decodes concurrently.
///
/// The scratch also OWNS the decoded keys of the view-returning overloads:
/// peeled byte keys land lane-aligned in `out_lanes`, and the IbltKeyView
/// entries handed back by Decode(scratch)/DecodePartial(scratch) point into
/// that arena. Starting any new decode on the scratch overwrites the arena
/// and invalidates all views from the previous decode. Holding views from
/// decode A while running decode B therefore requires two scratches (the
/// pattern used by the outer/child decodes of the set-of-sets protocols).
struct DecodeScratch {
  std::vector<IbltCellMeta> meta;
  /// The scratch lane arenas are cache-line aligned (util/aligned.h): a
  /// scratch is allocated once and reused across decodes, so the aligned
  /// allocation is amortized to zero while whole-arena SIMD passes start
  /// on a cache line. (Per-TABLE arenas stay plain vectors — see
  /// Iblt::key_lanes_ for why.)
  AlignedLaneVector key_lanes;
  std::vector<uint32_t> queue;   // Pure-cell FIFO (ring over a vector).
  std::vector<uint8_t> queued;   // Per-cell in-queue flag (dedup).
  AlignedLaneVector out_lanes;        // Decoded-key arena (lane-padded).
  std::vector<size_t> pos_offsets;    // Lane offset of each positive key.
  std::vector<size_t> neg_offsets;    // Lane offset of each negative key.
  std::vector<IbltKeyView> pos_views;  // Built over out_lanes post-peel.
  std::vector<IbltKeyView> neg_views;
  std::vector<uint64_t> pos_u64;  // DecodeU64View outputs (gathered from
  std::vector<uint64_t> neg_u64;  // out_lanes post-peel; capacity reused).
};

/// Invertible Bloom Lookup Table (Goodrich & Mitzenmacher; Section 2 of the
/// paper). Supports insertion, deletion (counts may go negative, representing
/// two disjoint sets), cell-wise subtraction of a peer's table, and the
/// peeling decoder with checksum-guarded pure-cell detection.
///
/// Cell layout: cell i owns `meta_[i]` (a 16-byte {signed count, XOR of
/// 64-bit key checksums} record — one cache line per random header touch)
/// and `lanes_per_key_` consecutive uint64 words of `key_lanes_` (XOR of
/// keys).
/// Keys are fixed-width byte strings of config().key_width bytes, stored in
/// the lane arena 8-byte aligned and zero-padded to a whole number of
/// words, so all key XOR (Update / Subtract / Add / zero tests) runs
/// word-wide instead of byte-wide. Key bytes are read back from the arena
/// by address (little-endian layout assumed, as everywhere in the wire
/// format).
///
/// One-hash cell derivation: each key is hashed ONCE per family —
/// h = bucket_family.HashBytes(key) and c = check_family.HashBytes(key) —
/// and the k cells are derived from the single 64-bit h as
///   cell_i = i * (m/k) + Mix64(h ^ (GOLDEN * (i+1))) % (m/k),
/// i.e. one strong hash plus k cheap mixes, instead of k full key hashes.
/// The derivation is identical to the seed implementation's per-index
/// Bucket(), so tables, wire bytes, and decode results are bit-identical
/// for fixed seeds.
///
/// The *_U64 convenience methods treat 64-bit integers as 8-byte
/// little-endian keys and require key_width == 8.
class Iblt {
 public:
  /// Both per-key hashes, each computed exactly once per key. Public so
  /// multi-table batch passes (ApplyOps) can stage hashes in caller-owned
  /// scratch buffers.
  struct KeyHashes {
    uint64_t bucket;
    uint64_t check;
  };

  explicit Iblt(const IbltConfig& config);

  const IbltConfig& config() const { return config_; }

  /// Adds a key (count +1 in each of its k cells). `key` must point at
  /// key_width bytes.
  void Insert(const uint8_t* key);
  void Insert(const std::vector<uint8_t>& key);
  void InsertU64(uint64_t key);

  /// Deletes a key (count -1); the key need not be present.
  void Erase(const uint8_t* key);
  void Erase(const std::vector<uint8_t>& key);
  void EraseU64(uint64_t key);

  /// Batched insertion/deletion. The whole block of keys is hashed first,
  /// then cell updates are applied grouped by partition (all partition-0
  /// cells, then partition-1, ...), which keeps each pass inside one
  /// contiguous m/k-cell window of the arrays. Blocks of at least
  /// kShardedBatchMinKeys keys on multi-hash tables are applied by
  /// std::thread workers sharded over partitions (partitions are disjoint
  /// cell ranges, so no synchronization is needed and the result is
  /// deterministic). Requires key_width == 8 for the u64 overloads; the
  /// byte overloads take `n` keys packed contiguously at key_width bytes
  /// each. Result is identical to n single-key Insert/Erase calls.
  void InsertBatch(const uint64_t* keys, size_t n);
  void InsertBatch(const std::vector<uint64_t>& keys);
  void InsertBatch(const uint8_t* keys, size_t n);
  void EraseBatch(const uint64_t* keys, size_t n);
  void EraseBatch(const std::vector<uint64_t>& keys);
  void EraseBatch(const uint8_t* keys, size_t n);

  /// Cell-wise subtraction: this -= other. After Alice's table is
  /// subtracted by Bob's, only the symmetric difference remains.
  Status Subtract(const Iblt& other);

  /// Cell-wise addition: this += other. Used to merge sketches built from
  /// disjoint element streams (e.g., strata-estimator merge).
  Status Add(const Iblt& other);

  /// Runs the peeling decoder on a copy of the table. Returns the decoded
  /// difference, or kDecodeFailure if a nonempty 2-core (or checksum
  /// corruption) prevents complete extraction. Failure is detectable: the
  /// table does not drain to all-zero cells.
  ///
  /// The scratch overload returns VIEWS into the scratch's output arena
  /// (see IbltKeyView for the lifetime rule: valid until the scratch's next
  /// decode or destruction); with a warm scratch it performs zero heap
  /// allocations. The scratch-free overload allocates a fresh workspace per
  /// call and returns an owning, materialized result.
  Result<IbltDecodeResult> Decode() const;
  Result<IbltDecodeView> Decode(DecodeScratch* scratch) const;
  Result<IbltDecodeResult64> DecodeU64() const;
  Result<IbltDecodeResult64> DecodeU64(DecodeScratch* scratch) const;
  /// View-returning u64 decode: the result spans the scratch's pos_u64 /
  /// neg_u64 vectors (IbltKeyView lifetime rule: valid until the scratch's
  /// next decode or destruction). With a warm scratch the whole decode
  /// performs zero heap allocations — the u64 counterpart of the byte-key
  /// Decode(scratch) path. Requires key_width == 8.
  Result<IbltDecodeView64> DecodeU64View(DecodeScratch* scratch) const;

  /// Peels as far as possible and reports completeness instead of failing.
  /// Same owning-vs-view split as Decode().
  IbltPartialDecode DecodePartial() const;
  IbltPartialDecodeView DecodePartial(DecodeScratch* scratch) const;

  /// True if every cell is zero (empty table or perfectly cancelled).
  bool IsZero() const;

  /// Compact serialization (varint counts) for direct transmission.
  void Serialize(ByteWriter* writer) const;
  [[nodiscard]] static Result<Iblt> Deserialize(ByteReader* reader, const IbltConfig& config);

  /// Sparse WIRE serialization (WireCodec::kSparse). Emits one mode byte,
  /// then either the sparse body (occupancy bitmap over non-zero cells,
  /// counts packed 2 bits each with an escape list for |count| > 1, 8-byte
  /// checksums and group-masked key bytes only for occupied cells) or — when
  /// the sparse body would not be smaller — the exact dense cell stream of
  /// Serialize(). In-memory representation is unchanged; this is purely an
  /// encoding of the same cells. Byte-level layout: src/net/README.md.
  ///
  /// CODEC LIFETIME: the codec choice is per-CONNECTION, not per-table.
  /// Both halves fix a WireCodec before the first table crosses the wire
  /// (SsrParams::wire_codec, negotiated by the src/net hello frame) and
  /// every table of the session uses it; a decoder never sniffs. Within
  /// kSparse, each frame is self-describing via its mode byte (raw-dense
  /// fallback, sparse body, or delta), so mode varies per table while the
  /// codec does not. Like the decode-view lifetime rule above, nothing here
  /// outlives the call: encode and decode work on complete in-memory tables
  /// and borrow `lineage.parent` only for the duration of the call.
  void SerializeSparse(ByteWriter* writer) const;
  /// Parses a kSparse frame (any mode). Fails closed — kParseError, never a
  /// partially-initialized table — on every malformed prefix: truncated or
  /// over-long occupancy bitmap, occupancy bits past the last cell, corrupt
  /// packed-count crumbs, escape-list index out of range or out of order,
  /// non-canonical escape values, payload lengths past the end of input,
  /// cells marked occupied that decode to all-zero, and delta frames when
  /// `lineage` cannot cover `config`.
  [[nodiscard]] static Result<Iblt> DeserializeSparse(ByteReader* reader,
                                        const IbltConfig& config,
                                        const TableLineage& lineage = {});

  /// Delta retransmission frame: only the cells that differ from
  /// `parent` (same config required — see TableLineage::CoversConfig),
  /// as a changed-cell bitmap plus sparse payloads of the new absolute
  /// cell values. An all-zero bitmap is the unchanged-table marker: four
  /// bytes on the wire for a verbatim retransmission. Only meaningful
  /// under WireCodec::kSparse; DeserializeSparse parses it when given the
  /// same lineage.
  void SerializeDelta(const Iblt& parent, ByteWriter* writer) const;

  /// Dispatch helpers: the codec-generic entry points protocols call.
  /// kDense → Serialize/Deserialize, kSparse → SerializeSparse (with an
  /// optional lineage for delta frames) / DeserializeSparse.
  void SerializeWith(WireCodec codec, ByteWriter* writer,
                     const TableLineage& lineage = {}) const;
  [[nodiscard]] static Result<Iblt> DeserializeWith(WireCodec codec, ByteReader* reader,
                                      const IbltConfig& config,
                                      const TableLineage& lineage = {});

  /// Fixed-width serialization: every table with the same config produces
  /// the same number of bytes, so serialized tables can themselves be used
  /// as (XOR-able) IBLT keys, as in the IBLT-of-IBLTs constructions.
  void SerializeFixed(ByteWriter* writer) const;
  [[nodiscard]] static Result<Iblt> DeserializeFixed(ByteReader* reader,
                                       const IbltConfig& config);

  /// One deferred batch op of a multi-table pass: insert (delta=+1) or
  /// erase (delta=-1) `n` keys into `table`. Exactly one of u64_keys /
  /// byte_keys is set; byte keys are packed at table->config().key_width
  /// bytes each.
  struct ApplyOp {
    Iblt* table = nullptr;
    const uint64_t* u64_keys = nullptr;
    const uint8_t* byte_keys = nullptr;
    size_t n = 0;
    int32_t delta = +1;
  };

  /// Reusable hash staging for ApplyOps; warms up like DecodeScratch.
  struct ApplyScratch {
    std::vector<KeyHashes> hashes;
    std::vector<size_t> offsets;
  };

  /// Applies a block of batch ops — typically gathered from many
  /// reconciliation sessions by the service batch planner — as one
  /// coalesced pass. All keys are hashed first (into `scratch`), then cell
  /// updates run grouped by partition across every op. When the TOTAL key
  /// count across ops reaches options.sharded_min_keys, partitions are
  /// sharded over std::thread workers: worker t applies partition indices
  /// {t, t+W, ...} of every op, so each (table, partition) — a disjoint
  /// cell range — is touched by exactly one worker, in op order. The result
  /// is bit-identical to applying the ops sequentially, for any worker
  /// count. This is how sub-threshold per-session batches cross the
  /// sharding threshold when coalesced (the cross-session balls-into-bins
  /// regime).
  static void ApplyOps(const ApplyOp* ops, size_t count,
                       const IbltBatchOptions& options, ApplyScratch* scratch);

  /// Process-wide defaults consulted by InsertBatch/EraseBatch (and by
  /// ApplyOps callers that do not carry their own options). Runtime-tunable
  /// so benches and the service planner can sweep the sharding threshold
  /// without recompiling. Not synchronized: set before spawning threads.
  static const IbltBatchOptions& batch_options() { return batch_options_; }
  static void set_batch_options(const IbltBatchOptions& options) {
    batch_options_ = options;
  }

  /// Compiled-in default for IbltBatchOptions::sharded_min_keys.
  static constexpr size_t kShardedBatchMinKeys = kShardedBatchMinKeysDefault;

  /// Batches up to this size hash into a stack buffer (16 bytes per key)
  /// instead of a heap vector, keeping small batched updates — the
  /// per-child sketches of the set-of-sets protocols — allocation-free.
  static constexpr size_t kSmallBatchMaxKeys = 128;

  /// Test hook: when > 0, large batches use exactly this many workers
  /// regardless of std::thread::hardware_concurrency(), so the sharded path
  /// can be exercised deterministically on any machine.
  static int sharded_workers_for_test;

  /// The wide-key lane-XOR backend the runtime dispatch selected
  /// ("avx512", "avx2" or "scalar"). Key XOR is bit-identical across
  /// backends; only the instruction width differs.
  static const char* LaneXorBackend();
  /// Test/bench hook: forces the scalar backend (measuring the SIMD delta
  /// on one machine). Not synchronized: flip before spawning threads.
  static void ForceScalarLaneXorForTest(bool force);

 private:
  void Update(const uint8_t* key, int32_t delta);
  KeyHashes HashKey(const uint8_t* key) const;
  KeyHashes HashKeyU64(uint64_t key) const;
  /// The cell index for a key with bucket hash `bucket_hash` under hash
  /// function `index` (the one-hash derivation described above).
  size_t CellForIndex(uint64_t bucket_hash, int index) const;
  bool CellIsZero(size_t cell) const;

  /// Shared sparse-codec sections (counts + checks + masked keys for a
  /// list of cell indices), used by both the full sparse frame and the
  /// delta frame. `allow_zero_cells` is set on the delta path, where a
  /// changed cell may legitimately become all-zero.
  void EncodeCellBlock(const std::vector<uint32_t>& cells,
                       ByteWriter* writer) const;
  Status DecodeCellBlock(ByteReader* reader,
                         const std::vector<uint32_t>& cells,
                         bool allow_zero_cells);
  /// Exact byte count Serialize() would emit (the sparse encoder's
  /// fallback threshold).
  size_t DenseSerializedSize() const;

  uint64_t* CellLanes(size_t cell) {
    return key_lanes_.data() + cell * lanes_per_key_;
  }
  const uint64_t* CellLanes(size_t cell) const {
    return key_lanes_.data() + cell * lanes_per_key_;
  }
  uint8_t* CellKeyBytes(size_t cell) {
    return reinterpret_cast<uint8_t*>(CellLanes(cell));
  }
  const uint8_t* CellKeyBytes(size_t cell) const {
    return reinterpret_cast<const uint8_t*>(CellLanes(cell));
  }

  /// The batch-apply internals take the options explicitly so a coalesced
  /// multi-table pass (ApplyOps) governs its sub-batches with ITS options;
  /// the public InsertBatch/EraseBatch entry points pass batch_options_.
  void ApplyBatchU64(const uint64_t* keys, size_t n, int32_t delta,
                     const IbltBatchOptions& options);
  void ApplyBatchBytes(const uint8_t* keys, size_t n, int32_t delta,
                       const IbltBatchOptions& options);
  void ApplyHashedBatch(const KeyHashes* hashes, const uint64_t* u64_keys,
                        const uint8_t* byte_keys, size_t n, int32_t delta,
                        const IbltBatchOptions& options);
  void ApplyPartitionRange(const KeyHashes* hashes, const uint64_t* u64_keys,
                           const uint8_t* byte_keys, size_t n, int32_t delta,
                           int first_index, int index_step);

  /// Shared peeling core. In u64 mode (out_u64 != nullptr) decoded keys go
  /// to out_u64's vectors; in byte mode they are appended lane-aligned to
  /// scratch->out_lanes with their offsets recorded in pos/neg_offsets.
  bool PeelInto(DecodeScratch* scratch, IbltDecodeResult64* out_u64) const;
  /// Builds the IbltKeyView arrays over scratch->out_lanes after a byte-mode
  /// peel (deferred so arena growth during the peel cannot dangle views).
  IbltDecodeView BuildViews(DecodeScratch* scratch) const;

  static IbltBatchOptions batch_options_;

  IbltConfig config_;
  size_t cells_;           // Padded cell count.
  size_t cells_per_hash_;  // Partition width.
  size_t lanes_per_key_;   // ceil(key_width / 8) uint64 words per cell.
  uint64_t mod_magic_;     // floor(2^64 / cells_per_hash_), for CellForIndex.
  std::vector<IbltCellMeta> meta_;   // Per-cell count + checksum.
  /// cells_ * lanes_per_key_ words. Deliberately a PLAIN vector: tables
  /// are allocated per session in the hot path and over-aligned operator
  /// new bypasses the allocator's fast bins (measured ~25% service-level
  /// regression when this arena was 64-byte aligned). Per-cell starts are
  /// only 8-aligned regardless (lanes_per_key_ is arbitrary), so the SIMD
  /// XOR paths use unaligned loads either way; the cache-line-aligned
  /// arenas live in DecodeScratch, whose vectors are allocated once and
  /// reused.
  std::vector<uint64_t> key_lanes_;
  HashFamily bucket_family_;
  HashFamily check_family_;
};

inline bool TableLineage::CoversConfig(const IbltConfig& config) const {
  return parent != nullptr && parent->config() == config;
}

}  // namespace setrec

#endif  // SETREC_IBLT_IBLT_H_
