#ifndef SETREC_IBLT_IBLT_H_
#define SETREC_IBLT_IBLT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hashing/hash.h"
#include "util/serialization.h"
#include "util/status.h"

namespace setrec {

/// Sizing and hashing configuration for an Iblt. Both parties must build
/// tables from identical configs (same cells, hash count, key width, seed)
/// for subtraction to be meaningful; Subtract() enforces this.
struct IbltConfig {
  /// Total number of cells m (rounded up to a multiple of num_hashes so the
  /// table partitions evenly; the paper's "partitioned hash table" variant,
  /// which guarantees the k cells of a key are distinct).
  size_t cells = 16;
  /// Number of hash functions k.
  int num_hashes = 4;
  /// Bytes per key. 8 for 64-bit elements; larger for blob keys such as the
  /// serialized child encodings of Algorithms 1 and 2.
  size_t key_width = 8;
  /// Seed for the bucket and checksum hash families (public coins).
  uint64_t seed = 0;

  /// Config sized to decode a set difference of up to `diff` keys with high
  /// probability (Theorem 2.1's O(d) cells with an explicit constant).
  static IbltConfig ForDifference(size_t diff, uint64_t seed,
                                  size_t key_width = 8, int num_hashes = 4);

  /// cells rounded up to a multiple of num_hashes.
  size_t PaddedCells() const;

  /// Bytes of the fixed-width serialization (count + checksum + key per
  /// cell, plus no header); used to size blob keys that embed a child IBLT.
  size_t FixedSerializedSize() const;

  bool operator==(const IbltConfig&) const = default;
};

/// Result of peeling an IBLT (or a subtracted pair of IBLTs): the keys with
/// positive counts and the keys with negative counts. For Alice's table
/// minus Bob's, positives are S_A \ S_B and negatives are S_B \ S_A.
struct IbltDecodeResult {
  std::vector<std::vector<uint8_t>> positive;
  std::vector<std::vector<uint8_t>> negative;
};

/// Same, for 64-bit keys.
struct IbltDecodeResult64 {
  std::vector<uint64_t> positive;
  std::vector<uint64_t> negative;
};

/// Best-effort decode: whatever peeled out, plus whether the table drained
/// completely. The cascading protocol (Algorithm 2) uses partial decodes —
/// children missed at level i are caught at level i+1.
struct IbltPartialDecode {
  IbltDecodeResult entries;
  bool complete = false;
};

/// Invertible Bloom Lookup Table (Goodrich & Mitzenmacher; Section 2 of the
/// paper). Each cell holds a signed count, an XOR of keys, and an XOR of key
/// checksums. Supports insertion, deletion (counts may go negative,
/// representing two disjoint sets), cell-wise subtraction of a peer's table,
/// and the peeling decoder with checksum-guarded pure-cell detection.
///
/// Keys are fixed-width byte strings (config().key_width bytes). The *_U64
/// convenience methods treat 64-bit integers as 8-byte little-endian keys
/// and require key_width == 8.
class Iblt {
 public:
  explicit Iblt(const IbltConfig& config);

  const IbltConfig& config() const { return config_; }

  /// Adds a key (count +1 in each of its k cells). `key` must point at
  /// key_width bytes.
  void Insert(const uint8_t* key);
  void Insert(const std::vector<uint8_t>& key);
  void InsertU64(uint64_t key);

  /// Deletes a key (count -1); the key need not be present.
  void Erase(const uint8_t* key);
  void Erase(const std::vector<uint8_t>& key);
  void EraseU64(uint64_t key);

  /// Cell-wise subtraction: this -= other. After Alice's table is
  /// subtracted by Bob's, only the symmetric difference remains.
  Status Subtract(const Iblt& other);

  /// Cell-wise addition: this += other. Used to merge sketches built from
  /// disjoint element streams (e.g., strata-estimator merge).
  Status Add(const Iblt& other);

  /// Runs the peeling decoder on a copy of the table. Returns the decoded
  /// difference, or kDecodeFailure if a nonempty 2-core (or checksum
  /// corruption) prevents complete extraction. Failure is detectable: the
  /// table does not drain to all-zero cells.
  Result<IbltDecodeResult> Decode() const;
  Result<IbltDecodeResult64> DecodeU64() const;

  /// Peels as far as possible and reports completeness instead of failing.
  IbltPartialDecode DecodePartial() const;

  /// True if every cell is zero (empty table or perfectly cancelled).
  bool IsZero() const;

  /// Compact serialization (varint counts) for direct transmission.
  void Serialize(ByteWriter* writer) const;
  static Result<Iblt> Deserialize(ByteReader* reader, const IbltConfig& config);

  /// Fixed-width serialization: every table with the same config produces
  /// the same number of bytes, so serialized tables can themselves be used
  /// as (XOR-able) IBLT keys, as in the IBLT-of-IBLTs constructions.
  void SerializeFixed(ByteWriter* writer) const;
  static Result<Iblt> DeserializeFixed(ByteReader* reader,
                                       const IbltConfig& config);

 private:
  void Update(const uint8_t* key, int32_t delta);
  /// The cell index for `key` under hash function `index`.
  size_t Bucket(const uint8_t* key, int index) const;
  bool CellIsPure(size_t cell) const;
  bool CellIsZero(size_t cell) const;

  IbltConfig config_;
  size_t cells_;           // Padded cell count.
  size_t cells_per_hash_;  // Partition width.
  std::vector<int32_t> counts_;
  std::vector<uint64_t> checks_;
  std::vector<uint8_t> keys_;  // cells_ * key_width bytes.
  HashFamily bucket_family_;
  HashFamily check_family_;
};

}  // namespace setrec

#endif  // SETREC_IBLT_IBLT_H_
