#include "iblt/iblt.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SETREC_X86_SIMD 1
#endif

#include "hashing/random.h"

namespace setrec {

namespace {

// ---------------------------------------------------------------------------
// Runtime-dispatched lane XOR. Two shapes cover every key XOR the table
// does: dst[i] ^= src[i] over n lanes (Subtract/Add, peel removal), and
// dst ^= `width` raw key bytes (cell updates). The AVX2 variants run
// 4-lane (32-byte) steps — the win shows on wide blob keys (cascading
// outer tables, child encodings); 8-byte keys stay on the single-lane
// fast path. Results are bit-identical across backends, so tables, wire
// bytes and decodes do not depend on the host's ISA.
// ---------------------------------------------------------------------------

void XorLanesScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

void XorKeyScalar(uint64_t* dst, const uint8_t* key, size_t width) {
  size_t full = width / 8;
  size_t rem = width % 8;
  for (size_t l = 0; l < full; ++l) {
    uint64_t lane;
    std::memcpy(&lane, key + 8 * l, 8);
    dst[l] ^= lane;
  }
  if (rem != 0) {
    uint64_t lane = 0;
    std::memcpy(&lane, key + 8 * full, rem);
    dst[full] ^= lane;
  }
}

#ifdef SETREC_X86_SIMD
__attribute__((target("avx2"))) void XorLanesAvx2(uint64_t* dst,
                                                  const uint64_t* src,
                                                  size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, b));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

__attribute__((target("avx2"))) void XorKeyAvx2(uint64_t* dst,
                                                const uint8_t* key,
                                                size_t width) {
  const size_t full = width / 8;
  size_t i = 0;
  for (; i + 4 <= full; i += 4) {
    // Key bytes come from packed caller buffers (unaligned); lane arenas
    // are 64-byte aligned but loadu costs nothing when they are.
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(key + 8 * i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, b));
  }
  for (; i < full; ++i) {
    uint64_t lane;
    std::memcpy(&lane, key + 8 * i, 8);
    dst[i] ^= lane;
  }
  if (const size_t rem = width % 8; rem != 0) {
    uint64_t lane = 0;
    std::memcpy(&lane, key + 8 * full, rem);
    dst[full] ^= lane;
  }
}
#endif  // SETREC_X86_SIMD

using XorLanesFn = void (*)(uint64_t*, const uint64_t*, size_t);
using XorKeyFn = void (*)(uint64_t*, const uint8_t*, size_t);

bool HostHasAvx2() {
#ifdef SETREC_X86_SIMD
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

#ifdef SETREC_X86_SIMD
XorLanesFn g_xor_lanes = HostHasAvx2() ? &XorLanesAvx2 : &XorLanesScalar;
XorKeyFn g_xor_key = HostHasAvx2() ? &XorKeyAvx2 : &XorKeyScalar;
#else
XorLanesFn g_xor_lanes = &XorLanesScalar;
XorKeyFn g_xor_key = &XorKeyScalar;
#endif

// Sizing constant: cells per expected difference key. Theorem 2.1 promises
// decode w.h.p. with m = O(d); k=4 peeling succeeds asymptotically above
// ~1.3 cells/key, but small tables need slack, so we use 1.9 plus an
// additive floor. bench_iblt (experiment E3) calibrates this empirically.
constexpr double kCellsPerKey = 2.0;
constexpr size_t kMinCells = 16;

// Zigzag encoding for signed counts in the compact serialization.
uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// XORs `width` key bytes into a lane-aligned destination. Keys of up to
// three lanes inline word-wide (the memcpy loads compile to single
// unaligned moves; the sub-word tail lands in the zero-padded final lane);
// wider blob keys go through the dispatched 32-byte-lane backend.
inline void XorKeyIntoLanes(uint64_t* dst, const uint8_t* key, size_t width) {
  if (width >= 32) {
    g_xor_key(dst, key, width);
    return;
  }
  XorKeyScalar(dst, key, width);
}

}  // namespace

const char* Iblt::LaneXorBackend() {
  return g_xor_lanes == &XorLanesScalar ? "scalar" : "avx2";
}

void Iblt::ForceScalarLaneXorForTest(bool force) {
  if (force) {
    g_xor_lanes = &XorLanesScalar;
    g_xor_key = &XorKeyScalar;
    return;
  }
#ifdef SETREC_X86_SIMD
  if (HostHasAvx2()) {
    g_xor_lanes = &XorLanesAvx2;
    g_xor_key = &XorKeyAvx2;
  }
#endif
}

int Iblt::sharded_workers_for_test = 0;
IbltBatchOptions Iblt::batch_options_;

IbltConfig IbltConfig::ForDifference(size_t diff, uint64_t seed,
                                     size_t key_width, int num_hashes) {
  IbltConfig config;
  config.cells = std::max(
      kMinCells, static_cast<size_t>(kCellsPerKey * static_cast<double>(diff)) +
                     2 * static_cast<size_t>(num_hashes));
  config.num_hashes = num_hashes;
  config.key_width = key_width;
  config.seed = seed;
  return config;
}

size_t IbltConfig::PaddedCells() const {
  size_t k = static_cast<size_t>(num_hashes);
  return (cells + k - 1) / k * k;
}

size_t IbltConfig::FixedSerializedSize() const {
  // Per cell: 4-byte count, 8-byte checksum, key_width key bytes.
  return PaddedCells() * (4 + 8 + key_width);
}

Iblt::Iblt(const IbltConfig& config)
    : config_(config),
      cells_(config.PaddedCells()),
      cells_per_hash_(cells_ / static_cast<size_t>(config.num_hashes)),
      lanes_per_key_((config.key_width + 7) / 8),
      mod_magic_(cells_per_hash_ > 1
                     ? ~0ull / cells_per_hash_ +
                           (~0ull % cells_per_hash_ == cells_per_hash_ - 1)
                     : 0),
      meta_(cells_),
      key_lanes_(cells_ * lanes_per_key_, 0),
      bucket_family_(config.seed, /*tag=*/0x6275636bull),   // "buck"
      check_family_(config.seed, /*tag=*/0x6368656bull) {}  // "chek"

void Iblt::Insert(const uint8_t* key) { Update(key, +1); }
void Iblt::Insert(const std::vector<uint8_t>& key) {
  assert(key.size() == config_.key_width);
  Update(key.data(), +1);
}
void Iblt::InsertU64(uint64_t key) {
  assert(config_.key_width == 8);
  Update(reinterpret_cast<const uint8_t*>(&key), +1);
}

void Iblt::Erase(const uint8_t* key) { Update(key, -1); }
void Iblt::Erase(const std::vector<uint8_t>& key) {
  assert(key.size() == config_.key_width);
  Update(key.data(), -1);
}
void Iblt::EraseU64(uint64_t key) {
  assert(config_.key_width == 8);
  Update(reinterpret_cast<const uint8_t*>(&key), -1);
}

void Iblt::InsertBatch(const uint64_t* keys, size_t n) {
  ApplyBatchU64(keys, n, +1, batch_options_);
}
void Iblt::InsertBatch(const std::vector<uint64_t>& keys) {
  ApplyBatchU64(keys.data(), keys.size(), +1, batch_options_);
}
void Iblt::InsertBatch(const uint8_t* keys, size_t n) {
  ApplyBatchBytes(keys, n, +1, batch_options_);
}
void Iblt::EraseBatch(const uint64_t* keys, size_t n) {
  ApplyBatchU64(keys, n, -1, batch_options_);
}
void Iblt::EraseBatch(const std::vector<uint64_t>& keys) {
  ApplyBatchU64(keys.data(), keys.size(), -1, batch_options_);
}
void Iblt::EraseBatch(const uint8_t* keys, size_t n) {
  ApplyBatchBytes(keys, n, -1, batch_options_);
}

Iblt::KeyHashes Iblt::HashKeyU64(uint64_t key) const {
  // The seed-independent lane mix is shared between the two families.
  uint64_t mixed = HashFamily::MixLane8(key);
  return {bucket_family_.HashWord8Premixed(mixed),
          check_family_.HashWord8Premixed(mixed)};
}

Iblt::KeyHashes Iblt::HashKey(const uint8_t* key) const {
  if (config_.key_width == 8) {
    uint64_t lane;
    std::memcpy(&lane, key, 8);
    return HashKeyU64(lane);
  }
  return {bucket_family_.HashBytes(key, config_.key_width),
          check_family_.HashBytes(key, config_.key_width)};
}

size_t Iblt::CellForIndex(uint64_t bucket_hash, int index) const {
  uint64_t sub = Mix64(bucket_hash ^ (0x9e3779b97f4a7c15ull * (index + 1)));
  // Exact `sub % cells_per_hash_` via the precomputed reciprocal: with
  // M = floor(2^64 / d), q = mulhi(sub, M) is floor(sub/d) or one less, so
  // one conditional subtract fixes the remainder. Replaces a hardware
  // division on the hot path; bit-identical to the plain modulo.
  uint64_t r = 0;
  if (cells_per_hash_ > 1) {
    uint64_t q = static_cast<uint64_t>(
        (static_cast<__uint128_t>(sub) * mod_magic_) >> 64);
    r = sub - q * cells_per_hash_;
    if (r >= cells_per_hash_) r -= cells_per_hash_;
  }
  return static_cast<size_t>(index) * cells_per_hash_ + r;
}

void Iblt::Update(const uint8_t* key, int32_t delta) {
  KeyHashes h = HashKey(key);
  for (int i = 0; i < config_.num_hashes; ++i) {
    size_t cell = CellForIndex(h.bucket, i);
    meta_[cell].count += delta;
    meta_[cell].check ^= h.check;
    XorKeyIntoLanes(CellLanes(cell), key, config_.key_width);
  }
}

void Iblt::ApplyPartitionRange(const KeyHashes* hashes,
                               const uint64_t* u64_keys,
                               const uint8_t* byte_keys, size_t n,
                               int32_t delta, int first_index,
                               int index_step) {
  const size_t w = config_.key_width;
  for (int i = first_index; i < config_.num_hashes; i += index_step) {
    if (u64_keys != nullptr) {
      for (size_t j = 0; j < n; ++j) {
        size_t cell = CellForIndex(hashes[j].bucket, i);
        meta_[cell].count += delta;
        meta_[cell].check ^= hashes[j].check;
        key_lanes_[cell] ^= u64_keys[j];
      }
    } else {
      for (size_t j = 0; j < n; ++j) {
        size_t cell = CellForIndex(hashes[j].bucket, i);
        meta_[cell].count += delta;
        meta_[cell].check ^= hashes[j].check;
        XorKeyIntoLanes(CellLanes(cell), byte_keys + j * w, w);
      }
    }
  }
}

namespace {

/// Resolved worker count for a sharded pass over partitions of up to
/// `max_partitions` per table, honoring the runtime options and the
/// deterministic test hook.
int ShardedWorkerCount(int max_partitions, const IbltBatchOptions& options) {
  int cap = options.max_workers > 0
                ? options.max_workers
                : static_cast<int>(
                      std::max<unsigned>(1, std::thread::hardware_concurrency()));
  if (Iblt::sharded_workers_for_test > 0) {
    cap = Iblt::sharded_workers_for_test;
  }
  return std::min(max_partitions, cap);
}

}  // namespace

void Iblt::ApplyHashedBatch(const KeyHashes* hashes, const uint64_t* u64_keys,
                            const uint8_t* byte_keys, size_t n, int32_t delta,
                            const IbltBatchOptions& options) {
  const int k = config_.num_hashes;
  if (n >= options.sharded_min_keys && k > 1) {
    // Partitions are disjoint cell ranges: shard them across threads with no
    // synchronization. The result is identical to the serial order.
    int workers = ShardedWorkerCount(k, options);
    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (int t = 1; t < workers; ++t) {
      threads.emplace_back([=, this] {
        ApplyPartitionRange(hashes, u64_keys, byte_keys, n, delta, t, workers);
      });
    }
    ApplyPartitionRange(hashes, u64_keys, byte_keys, n, delta, 0, workers);
    for (std::thread& t : threads) t.join();
    return;
  }
  ApplyPartitionRange(hashes, u64_keys, byte_keys, n, delta, 0, 1);
}

void Iblt::ApplyOps(const ApplyOp* ops, size_t count,
                    const IbltBatchOptions& options, ApplyScratch* scratch) {
  size_t total = 0;
  int max_hashes = 1;
  for (size_t i = 0; i < count; ++i) {
    total += ops[i].n;
    max_hashes = std::max(max_hashes, ops[i].table->config_.num_hashes);
  }
  if (total == 0) return;

  const int workers = total >= options.sharded_min_keys
                          ? ShardedWorkerCount(max_hashes, options)
                          : 1;
  if (workers <= 1) {
    // Serial pass: stream op by op through the regular batch path, whose
    // small-batch hashes live in a stack buffer — the same cache-resident
    // footprint as issuing the ops directly. Staging every hash of a large
    // coalesced pass up front would trade that locality for nothing when
    // there is no worker to share the staging with.
    for (size_t i = 0; i < count; ++i) {
      const ApplyOp& op = ops[i];
      if (op.u64_keys != nullptr) {
        op.table->ApplyBatchU64(op.u64_keys, op.n, op.delta, options);
      } else {
        op.table->ApplyBatchBytes(op.byte_keys, op.n, op.delta, options);
      }
    }
    return;
  }

  // Sharded pass: hash every key of every op once into the shared staging
  // area, then let worker t apply partition indices {t, t+W, ...} of every
  // op. Each (table, partition) cell range has exactly one writer and ops
  // on the same table apply in op order — bit-identical to the serial pass
  // regardless of W. Two ops naming the same table are fine for the same
  // reason.
  scratch->offsets.clear();
  size_t offset = 0;
  for (size_t i = 0; i < count; ++i) {
    scratch->offsets.push_back(offset);
    offset += ops[i].n;
  }
  scratch->hashes.resize(total);
  for (size_t i = 0; i < count; ++i) {
    const ApplyOp& op = ops[i];
    KeyHashes* out = scratch->hashes.data() + scratch->offsets[i];
    if (op.u64_keys != nullptr) {
      for (size_t j = 0; j < op.n; ++j) {
        out[j] = op.table->HashKeyU64(op.u64_keys[j]);
      }
    } else {
      const size_t w = op.table->config_.key_width;
      for (size_t j = 0; j < op.n; ++j) {
        out[j] = op.table->HashKey(op.byte_keys + j * w);
      }
    }
  }
  auto run_slice = [&](int first_index) {
    for (size_t i = 0; i < count; ++i) {
      const ApplyOp& op = ops[i];
      op.table->ApplyPartitionRange(scratch->hashes.data() +
                                        scratch->offsets[i],
                                    op.u64_keys, op.byte_keys, op.n, op.delta,
                                    first_index, workers);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (int t = 1; t < workers; ++t) {
    threads.emplace_back(run_slice, t);
  }
  run_slice(0);
  for (std::thread& t : threads) t.join();
}

void Iblt::ApplyBatchU64(const uint64_t* keys, size_t n, int32_t delta,
                         const IbltBatchOptions& options) {
  assert(config_.key_width == 8);
  if (n == 0) return;
  // Small batches (the per-child sketches of the set-of-sets protocols)
  // hash into a stack buffer so batched updates stay allocation-free.
  KeyHashes stack_hashes[kSmallBatchMaxKeys];
  std::vector<KeyHashes> heap_hashes(n <= kSmallBatchMaxKeys ? 0 : n);
  KeyHashes* hashes = n <= kSmallBatchMaxKeys ? stack_hashes
                                              : heap_hashes.data();
  for (size_t j = 0; j < n; ++j) hashes[j] = HashKeyU64(keys[j]);
  ApplyHashedBatch(hashes, keys, nullptr, n, delta, options);
}

void Iblt::ApplyBatchBytes(const uint8_t* keys, size_t n, int32_t delta,
                           const IbltBatchOptions& options) {
  if (n == 0) return;
  KeyHashes stack_hashes[kSmallBatchMaxKeys];
  std::vector<KeyHashes> heap_hashes(n <= kSmallBatchMaxKeys ? 0 : n);
  KeyHashes* hashes = n <= kSmallBatchMaxKeys ? stack_hashes
                                              : heap_hashes.data();
  for (size_t j = 0; j < n; ++j) {
    hashes[j] = HashKey(keys + j * config_.key_width);
  }
  ApplyHashedBatch(hashes, nullptr, keys, n, delta, options);
}

Status Iblt::Subtract(const Iblt& other) {
  if (!(config_ == other.config_)) {
    return InvalidArgument("IBLT subtract: mismatched configs");
  }
  for (size_t i = 0; i < cells_; ++i) {
    meta_[i].count -= other.meta_[i].count;
    meta_[i].check ^= other.meta_[i].check;
  }
  // One contiguous arena XOR — the dispatched backend runs it 32 bytes at
  // a time on AVX2 hosts.
  g_xor_lanes(key_lanes_.data(), other.key_lanes_.data(), key_lanes_.size());
  return Status::Ok();
}

Status Iblt::Add(const Iblt& other) {
  if (!(config_ == other.config_)) {
    return InvalidArgument("IBLT add: mismatched configs");
  }
  for (size_t i = 0; i < cells_; ++i) {
    meta_[i].count += other.meta_[i].count;
    meta_[i].check ^= other.meta_[i].check;
  }
  g_xor_lanes(key_lanes_.data(), other.key_lanes_.data(), key_lanes_.size());
  return Status::Ok();
}

bool Iblt::CellIsZero(size_t cell) const {
  if (meta_[cell].count != 0 || meta_[cell].check != 0) return false;
  const uint64_t* lanes = CellLanes(cell);
  for (size_t l = 0; l < lanes_per_key_; ++l) {
    if (lanes[l] != 0) return false;
  }
  return true;
}

bool Iblt::PeelInto(DecodeScratch* scratch, IbltDecodeResult64* out_u64) const {
  assert(out_u64 == nullptr || config_.key_width == 8);
  const int k = config_.num_hashes;

  // Copy the table into the scratch; assign() reuses capacity (as does the
  // output arena below), so a warm scratch makes the whole decode — byte
  // keys included — allocation-free.
  scratch->meta.assign(meta_.begin(), meta_.end());
  scratch->key_lanes.assign(key_lanes_.begin(), key_lanes_.end());
  scratch->queued.assign(cells_, 0);
  scratch->queue.clear();
  scratch->out_lanes.clear();
  scratch->pos_offsets.clear();
  scratch->neg_offsets.clear();
  IbltCellMeta* meta = scratch->meta.data();
  uint64_t* lanes = scratch->key_lanes.data();

  // Seed the queue with pure-cell *candidates* (count == ±1). Checksum
  // verification is deferred to pop time, where the key must be hashed
  // anyway to derive its cells for removal — so each popped candidate costs
  // exactly one (bucket, check) hash pair, shared between the purity check
  // and the peel, and stale revisits of unchanged cells never rehash.
  for (size_t i = 0; i < cells_; ++i) {
    if (meta[i].count == 1 || meta[i].count == -1) {
      scratch->queue.push_back(static_cast<uint32_t>(i));
      scratch->queued[i] = 1;
    }
  }

  // A correct drain extracts at most one key per (key, cell) incidence;
  // cap iterations so checksum-collision cascades cannot loop forever.
  size_t budget = 4 * cells_ + 64;
  size_t head = 0;
  while (head < scratch->queue.size() && budget-- > 0) {
    const size_t cell = scratch->queue[head++];
    scratch->queued[cell] = 0;
    const int64_t count = meta[cell].count;
    if (count != 1 && count != -1) continue;  // Stale queue entry.
    const uint8_t* cell_key =
        reinterpret_cast<const uint8_t*>(lanes + cell * lanes_per_key_);
    const KeyHashes h = HashKey(cell_key);
    if (meta[cell].check != h.check) continue;  // Count ±1 but not pure.
    const int64_t sign = count;

    if (out_u64 != nullptr) {
      // 8-byte keys: the key is a single lane; no staging copy needed.
      const uint64_t key64 = lanes[cell];
      (sign > 0 ? out_u64->positive : out_u64->negative).push_back(key64);
      for (int i = 0; i < k; ++i) {
        const size_t t = CellForIndex(h.bucket, i);
        meta[t].count -= sign;
        meta[t].check ^= h.check;
        lanes[t] ^= key64;
        if ((meta[t].count == 1 || meta[t].count == -1) &&
            !scratch->queued[t]) {
          scratch->queue.push_back(static_cast<uint32_t>(t));
          scratch->queued[t] = 1;
        }
      }
      continue;
    }

    // Stage the key into the output arena: the copy both IS the decoded
    // entry (the returned views point at it) and serves as the stable
    // source for the removal XOR below (the home cell's own lanes change
    // mid-removal). Appending may grow the arena, so take the pointer
    // afterwards; earlier entries are only re-referenced by offset once the
    // peel is done (BuildViews).
    const size_t off = scratch->out_lanes.size();
    scratch->out_lanes.insert(scratch->out_lanes.end(),
                              lanes + cell * lanes_per_key_,
                              lanes + (cell + 1) * lanes_per_key_);
    (sign > 0 ? scratch->pos_offsets : scratch->neg_offsets).push_back(off);
    const uint64_t* staged = scratch->out_lanes.data() + off;

    // Remove the key from all of its cells (including this one), queueing
    // any cell the removal leaves as a fresh pure candidate.
    for (int i = 0; i < k; ++i) {
      const size_t t = CellForIndex(h.bucket, i);
      meta[t].count -= sign;
      meta[t].check ^= h.check;
      uint64_t* dst = lanes + t * lanes_per_key_;
      if (lanes_per_key_ >= 4) {
        g_xor_lanes(dst, staged, lanes_per_key_);
      } else {
        for (size_t l = 0; l < lanes_per_key_; ++l) {
          dst[l] ^= staged[l];
        }
      }
      if ((meta[t].count == 1 || meta[t].count == -1) && !scratch->queued[t]) {
        scratch->queue.push_back(static_cast<uint32_t>(t));
        scratch->queued[t] = 1;
      }
    }
  }

  // Complete iff the work table drained to all-zero cells.
  for (size_t i = 0; i < cells_; ++i) {
    if (meta[i].count != 0 || meta[i].check != 0) return false;
  }
  for (size_t i = 0; i < key_lanes_.size(); ++i) {
    if (lanes[i] != 0) return false;
  }
  return true;
}

IbltDecodeView Iblt::BuildViews(DecodeScratch* scratch) const {
  const size_t w = config_.key_width;
  const uint8_t* base =
      reinterpret_cast<const uint8_t*>(scratch->out_lanes.data());
  scratch->pos_views.clear();
  scratch->neg_views.clear();
  for (size_t off : scratch->pos_offsets) {
    scratch->pos_views.push_back(IbltKeyView{base + off * 8, w});
  }
  for (size_t off : scratch->neg_offsets) {
    scratch->neg_views.push_back(IbltKeyView{base + off * 8, w});
  }
  IbltDecodeView view;
  view.positive = {scratch->pos_views.data(), scratch->pos_views.size()};
  view.negative = {scratch->neg_views.data(), scratch->neg_views.size()};
  return view;
}

IbltDecodeResult IbltDecodeView::Materialize() const {
  IbltDecodeResult out;
  out.positive.reserve(positive.size());
  for (const IbltKeyView& v : positive) out.positive.push_back(v.ToVector());
  out.negative.reserve(negative.size());
  for (const IbltKeyView& v : negative) out.negative.push_back(v.ToVector());
  return out;
}

IbltPartialDecodeView Iblt::DecodePartial(DecodeScratch* scratch) const {
  IbltPartialDecodeView out;
  out.complete = PeelInto(scratch, nullptr);
  out.entries = BuildViews(scratch);
  return out;
}

IbltPartialDecode Iblt::DecodePartial() const {
  DecodeScratch scratch;
  IbltPartialDecodeView view = DecodePartial(&scratch);
  return IbltPartialDecode{view.entries.Materialize(), view.complete};
}

Result<IbltDecodeView> Iblt::Decode(DecodeScratch* scratch) const {
  if (!PeelInto(scratch, nullptr)) {
    return DecodeFailure("IBLT peeling incomplete (nonempty 2-core)");
  }
  return BuildViews(scratch);
}

Result<IbltDecodeResult> Iblt::Decode() const {
  DecodeScratch scratch;
  Result<IbltDecodeView> view = Decode(&scratch);
  if (!view.ok()) return view.status();
  return view.value().Materialize();
}

Result<IbltDecodeResult64> Iblt::DecodeU64(DecodeScratch* scratch) const {
  assert(config_.key_width == 8);
  IbltDecodeResult64 out;
  if (!PeelInto(scratch, &out)) {
    return DecodeFailure("IBLT peeling incomplete (nonempty 2-core)");
  }
  return out;
}

Result<IbltDecodeResult64> Iblt::DecodeU64() const {
  DecodeScratch scratch;
  return DecodeU64(&scratch);
}

Result<IbltDecodeView64> Iblt::DecodeU64View(DecodeScratch* scratch) const {
  assert(config_.key_width == 8);
  // Byte-mode peel: keys land lane-aligned in the output arena with their
  // offsets recorded — for 8-byte keys each entry is exactly one lane, so
  // gathering by offset into the reusable side vectors costs O(d) moves and
  // no allocations once the scratch is warm.
  if (!PeelInto(scratch, nullptr)) {
    return DecodeFailure("IBLT peeling incomplete (nonempty 2-core)");
  }
  scratch->pos_u64.clear();
  scratch->neg_u64.clear();
  for (size_t off : scratch->pos_offsets) {
    scratch->pos_u64.push_back(scratch->out_lanes[off]);
  }
  for (size_t off : scratch->neg_offsets) {
    scratch->neg_u64.push_back(scratch->out_lanes[off]);
  }
  return IbltDecodeView64{
      std::span<uint64_t>(scratch->pos_u64.data(), scratch->pos_u64.size()),
      std::span<uint64_t>(scratch->neg_u64.data(), scratch->neg_u64.size())};
}

bool Iblt::IsZero() const {
  for (size_t i = 0; i < cells_; ++i) {
    if (!CellIsZero(i)) return false;
  }
  return true;
}

void Iblt::Serialize(ByteWriter* writer) const {
  for (size_t i = 0; i < cells_; ++i) {
    writer->PutVarint(ZigZag(meta_[i].count));
    writer->PutU64(meta_[i].check);
    writer->PutBytes(CellKeyBytes(i), config_.key_width);
  }
}

Result<Iblt> Iblt::Deserialize(ByteReader* reader, const IbltConfig& config) {
  Iblt table(config);
  for (size_t i = 0; i < table.cells_; ++i) {
    uint64_t zz = 0;
    if (!reader->GetVarint(&zz)) return ParseError("IBLT truncated (count)");
    table.meta_[i].count = UnZigZag(zz);  // Lossless: counts are int64 wide.
    if (!reader->GetU64(&table.meta_[i].check)) {
      return ParseError("IBLT truncated (check)");
    }
    // Key bytes land directly in the (zero-padded) lane arena.
    if (!reader->GetRaw(config.key_width, table.CellKeyBytes(i))) {
      return ParseError("IBLT truncated (key)");
    }
  }
  return table;
}

void Iblt::SerializeFixed(ByteWriter* writer) const {
  for (size_t i = 0; i < cells_; ++i) {
    writer->PutU32(static_cast<uint32_t>(meta_[i].count));
    writer->PutU64(meta_[i].check);
    writer->PutBytes(CellKeyBytes(i), config_.key_width);
  }
}

Result<Iblt> Iblt::DeserializeFixed(ByteReader* reader,
                                    const IbltConfig& config) {
  Iblt table(config);
  for (size_t i = 0; i < table.cells_; ++i) {
    uint32_t count = 0;
    if (!reader->GetU32(&count)) return ParseError("IBLT truncated (count)");
    table.meta_[i].count = static_cast<int32_t>(count);
    if (!reader->GetU64(&table.meta_[i].check)) {
      return ParseError("IBLT truncated (check)");
    }
    if (!reader->GetRaw(config.key_width, table.CellKeyBytes(i))) {
      return ParseError("IBLT truncated (key)");
    }
  }
  return table;
}

}  // namespace setrec
