#include "iblt/iblt.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <deque>

#include "hashing/random.h"

namespace setrec {

namespace {

// Sizing constant: cells per expected difference key. Theorem 2.1 promises
// decode w.h.p. with m = O(d); k=4 peeling succeeds asymptotically above
// ~1.3 cells/key, but small tables need slack, so we use 1.9 plus an
// additive floor. bench_iblt (experiment E3) calibrates this empirically.
constexpr double kCellsPerKey = 2.0;
constexpr size_t kMinCells = 16;

// Zigzag encoding for signed counts in the compact serialization.
uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace

IbltConfig IbltConfig::ForDifference(size_t diff, uint64_t seed,
                                     size_t key_width, int num_hashes) {
  IbltConfig config;
  config.cells = std::max(
      kMinCells, static_cast<size_t>(kCellsPerKey * static_cast<double>(diff)) +
                     2 * static_cast<size_t>(num_hashes));
  config.num_hashes = num_hashes;
  config.key_width = key_width;
  config.seed = seed;
  return config;
}

size_t IbltConfig::PaddedCells() const {
  size_t k = static_cast<size_t>(num_hashes);
  return (cells + k - 1) / k * k;
}

size_t IbltConfig::FixedSerializedSize() const {
  // Per cell: 4-byte count, 8-byte checksum, key_width key bytes.
  return PaddedCells() * (4 + 8 + key_width);
}

Iblt::Iblt(const IbltConfig& config)
    : config_(config),
      cells_(config.PaddedCells()),
      cells_per_hash_(cells_ / static_cast<size_t>(config.num_hashes)),
      counts_(cells_, 0),
      checks_(cells_, 0),
      keys_(cells_ * config.key_width, 0),
      bucket_family_(config.seed, /*tag=*/0x6275636bull),   // "buck"
      check_family_(config.seed, /*tag=*/0x6368656bull) {}  // "chek"

void Iblt::Insert(const uint8_t* key) { Update(key, +1); }
void Iblt::Insert(const std::vector<uint8_t>& key) {
  assert(key.size() == config_.key_width);
  Update(key.data(), +1);
}
void Iblt::InsertU64(uint64_t key) {
  assert(config_.key_width == 8);
  uint8_t buf[8];
  std::memcpy(buf, &key, 8);
  Update(buf, +1);
}

void Iblt::Erase(const uint8_t* key) { Update(key, -1); }
void Iblt::Erase(const std::vector<uint8_t>& key) {
  assert(key.size() == config_.key_width);
  Update(key.data(), -1);
}
void Iblt::EraseU64(uint64_t key) {
  assert(config_.key_width == 8);
  uint8_t buf[8];
  std::memcpy(buf, &key, 8);
  Update(buf, -1);
}

size_t Iblt::Bucket(const uint8_t* key, int index) const {
  uint64_t h = bucket_family_.HashBytes(key, config_.key_width);
  // Derive per-index bucket from one strong byte hash; partition `index`
  // guarantees the k cells are distinct.
  uint64_t sub = Mix64(h ^ (0x9e3779b97f4a7c15ull * (index + 1)));
  return static_cast<size_t>(index) * cells_per_hash_ + (sub % cells_per_hash_);
}

void Iblt::Update(const uint8_t* key, int32_t delta) {
  uint64_t check = check_family_.HashBytes(key, config_.key_width);
  for (int i = 0; i < config_.num_hashes; ++i) {
    size_t cell = Bucket(key, i);
    counts_[cell] += delta;
    checks_[cell] ^= check;
    uint8_t* dst = keys_.data() + cell * config_.key_width;
    for (size_t b = 0; b < config_.key_width; ++b) dst[b] ^= key[b];
  }
}

Status Iblt::Subtract(const Iblt& other) {
  if (!(config_ == other.config_)) {
    return InvalidArgument("IBLT subtract: mismatched configs");
  }
  for (size_t i = 0; i < cells_; ++i) {
    counts_[i] -= other.counts_[i];
    checks_[i] ^= other.checks_[i];
  }
  for (size_t i = 0; i < keys_.size(); ++i) keys_[i] ^= other.keys_[i];
  return Status::Ok();
}

Status Iblt::Add(const Iblt& other) {
  if (!(config_ == other.config_)) {
    return InvalidArgument("IBLT add: mismatched configs");
  }
  for (size_t i = 0; i < cells_; ++i) {
    counts_[i] += other.counts_[i];
    checks_[i] ^= other.checks_[i];
  }
  for (size_t i = 0; i < keys_.size(); ++i) keys_[i] ^= other.keys_[i];
  return Status::Ok();
}

bool Iblt::CellIsPure(size_t cell) const {
  if (counts_[cell] != 1 && counts_[cell] != -1) return false;
  const uint8_t* key = keys_.data() + cell * config_.key_width;
  return checks_[cell] == check_family_.HashBytes(key, config_.key_width);
}

bool Iblt::CellIsZero(size_t cell) const {
  if (counts_[cell] != 0 || checks_[cell] != 0) return false;
  const uint8_t* key = keys_.data() + cell * config_.key_width;
  for (size_t b = 0; b < config_.key_width; ++b) {
    if (key[b] != 0) return false;
  }
  return true;
}

IbltPartialDecode Iblt::DecodePartial() const {
  Iblt work = *this;  // Peel a copy; the table remains reusable.
  IbltPartialDecode out;

  std::deque<size_t> queue;
  for (size_t i = 0; i < cells_; ++i) {
    if (work.CellIsPure(i)) queue.push_back(i);
  }

  // A correct drain extracts at most one key per (key, cell) incidence;
  // cap iterations so checksum-collision cascades cannot loop forever.
  size_t budget = 4 * cells_ + 64;
  std::vector<uint8_t> key(config_.key_width);
  while (!queue.empty() && budget-- > 0) {
    size_t cell = queue.front();
    queue.pop_front();
    if (!work.CellIsPure(cell)) continue;  // Stale queue entry.
    int32_t sign = work.counts_[cell] > 0 ? 1 : -1;
    std::memcpy(key.data(), work.keys_.data() + cell * config_.key_width,
                config_.key_width);
    (sign > 0 ? out.entries.positive : out.entries.negative).push_back(key);
    // Remove the key from all of its cells (including this one).
    work.Update(key.data(), -sign);
    for (int i = 0; i < config_.num_hashes; ++i) {
      size_t touched = work.Bucket(key.data(), i);
      if (work.CellIsPure(touched)) queue.push_back(touched);
    }
  }

  out.complete = true;
  for (size_t i = 0; i < cells_; ++i) {
    if (!work.CellIsZero(i)) {
      out.complete = false;
      break;
    }
  }
  return out;
}

Result<IbltDecodeResult> Iblt::Decode() const {
  IbltPartialDecode partial = DecodePartial();
  if (!partial.complete) {
    return DecodeFailure("IBLT peeling incomplete (nonempty 2-core)");
  }
  return std::move(partial.entries);
}

Result<IbltDecodeResult64> Iblt::DecodeU64() const {
  assert(config_.key_width == 8);
  Result<IbltDecodeResult> raw = Decode();
  if (!raw.ok()) return raw.status();
  IbltDecodeResult64 out;
  out.positive.reserve(raw.value().positive.size());
  out.negative.reserve(raw.value().negative.size());
  for (const auto& k : raw.value().positive) {
    uint64_t v;
    std::memcpy(&v, k.data(), 8);
    out.positive.push_back(v);
  }
  for (const auto& k : raw.value().negative) {
    uint64_t v;
    std::memcpy(&v, k.data(), 8);
    out.negative.push_back(v);
  }
  return out;
}

bool Iblt::IsZero() const {
  for (size_t i = 0; i < cells_; ++i) {
    if (!CellIsZero(i)) return false;
  }
  return true;
}

void Iblt::Serialize(ByteWriter* writer) const {
  for (size_t i = 0; i < cells_; ++i) {
    writer->PutVarint(ZigZag(counts_[i]));
    writer->PutU64(checks_[i]);
    writer->PutBytes(keys_.data() + i * config_.key_width, config_.key_width);
  }
}

Result<Iblt> Iblt::Deserialize(ByteReader* reader, const IbltConfig& config) {
  Iblt table(config);
  for (size_t i = 0; i < table.cells_; ++i) {
    uint64_t zz = 0;
    if (!reader->GetVarint(&zz)) return ParseError("IBLT truncated (count)");
    table.counts_[i] = static_cast<int32_t>(UnZigZag(zz));
    if (!reader->GetU64(&table.checks_[i])) {
      return ParseError("IBLT truncated (check)");
    }
    std::vector<uint8_t> key;
    if (!reader->GetBytes(config.key_width, &key)) {
      return ParseError("IBLT truncated (key)");
    }
    std::memcpy(table.keys_.data() + i * config.key_width, key.data(),
                config.key_width);
  }
  return table;
}

void Iblt::SerializeFixed(ByteWriter* writer) const {
  for (size_t i = 0; i < cells_; ++i) {
    writer->PutU32(static_cast<uint32_t>(counts_[i]));
    writer->PutU64(checks_[i]);
    writer->PutBytes(keys_.data() + i * config_.key_width, config_.key_width);
  }
}

Result<Iblt> Iblt::DeserializeFixed(ByteReader* reader,
                                    const IbltConfig& config) {
  Iblt table(config);
  for (size_t i = 0; i < table.cells_; ++i) {
    uint32_t count = 0;
    if (!reader->GetU32(&count)) return ParseError("IBLT truncated (count)");
    table.counts_[i] = static_cast<int32_t>(count);
    if (!reader->GetU64(&table.checks_[i])) {
      return ParseError("IBLT truncated (check)");
    }
    std::vector<uint8_t> key;
    if (!reader->GetBytes(config.key_width, &key)) {
      return ParseError("IBLT truncated (key)");
    }
    std::memcpy(table.keys_.data() + i * config.key_width, key.data(),
                config.key_width);
  }
  return table;
}

}  // namespace setrec
