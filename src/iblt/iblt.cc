#include "iblt/iblt.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SETREC_X86_SIMD 1
#endif

#include "hashing/random.h"

namespace setrec {

namespace {

// ---------------------------------------------------------------------------
// Runtime-dispatched lane XOR. Two shapes cover every key XOR the table
// does: dst[i] ^= src[i] over n lanes (Subtract/Add, peel removal), and
// dst ^= `width` raw key bytes (cell updates). The AVX2 variants run
// 4-lane (32-byte) steps and the AVX-512 variants 8-lane (64-byte) steps
// with masked tails — the win shows on wide blob keys (cascading outer
// tables, child encodings); 8-byte keys stay on the single-lane fast
// path. Results are bit-identical across backends, so tables, wire bytes
// and decodes do not depend on the host's ISA.
// ---------------------------------------------------------------------------

// LINT(alloc-free) — these kernels run per peeled key inside the decode
// loop and back the decode_allocs_warm == 0 benchmark claim; setrec_lint
// rejects any allocating call landing between here and LINT(end).
void XorLanesScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

void XorKeyScalar(uint64_t* dst, const uint8_t* key, size_t width) {
  size_t full = width / 8;
  size_t rem = width % 8;
  for (size_t l = 0; l < full; ++l) {
    uint64_t lane;
    std::memcpy(&lane, key + 8 * l, 8);
    dst[l] ^= lane;
  }
  if (rem != 0) {
    uint64_t lane = 0;
    std::memcpy(&lane, key + 8 * full, rem);
    dst[full] ^= lane;
  }
}

#ifdef SETREC_X86_SIMD
__attribute__((target("avx2"))) void XorLanesAvx2(uint64_t* dst,
                                                  const uint64_t* src,
                                                  size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, b));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

__attribute__((target("avx2"))) void XorKeyAvx2(uint64_t* dst,
                                                const uint8_t* key,
                                                size_t width) {
  const size_t full = width / 8;
  size_t i = 0;
  for (; i + 4 <= full; i += 4) {
    // Key bytes come from packed caller buffers (unaligned); lane arenas
    // are 64-byte aligned but loadu costs nothing when they are.
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(key + 8 * i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, b));
  }
  for (; i < full; ++i) {
    uint64_t lane;
    std::memcpy(&lane, key + 8 * i, 8);
    dst[i] ^= lane;
  }
  if (const size_t rem = width % 8; rem != 0) {
    uint64_t lane = 0;
    std::memcpy(&lane, key + 8 * full, rem);
    dst[full] ^= lane;
  }
}
// AVX-512 variants: 8-lane (64-byte) strides with masked tails, so there
// is no scalar cleanup loop — the final partial block is one maskz load /
// mask store pair (masked-out lanes are architecturally not accessed).
__attribute__((target("avx512f"))) void XorLanesAvx512(uint64_t* dst,
                                                       const uint64_t* src,
                                                       size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i a = _mm512_loadu_si512(dst + i);
    const __m512i b = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(a, b));
  }
  if (const size_t rem = n - i; rem != 0) {
    const __mmask8 m = static_cast<__mmask8>((1u << rem) - 1);
    const __m512i a = _mm512_maskz_loadu_epi64(m, dst + i);
    const __m512i b = _mm512_maskz_loadu_epi64(m, src + i);
    _mm512_mask_storeu_epi64(dst + i, m, _mm512_xor_si512(a, b));
  }
}

__attribute__((target("avx512f"))) void XorKeyAvx512(uint64_t* dst,
                                                     const uint8_t* key,
                                                     size_t width) {
  const size_t full = width / 8;
  size_t i = 0;
  for (; i + 8 <= full; i += 8) {
    const __m512i a = _mm512_loadu_si512(dst + i);
    const __m512i b = _mm512_loadu_si512(key + 8 * i);
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(a, b));
  }
  if (const size_t rem_lanes = full - i; rem_lanes != 0) {
    const __mmask8 m = static_cast<__mmask8>((1u << rem_lanes) - 1);
    const __m512i a = _mm512_maskz_loadu_epi64(m, dst + i);
    const __m512i b = _mm512_maskz_loadu_epi64(m, key + 8 * i);
    _mm512_mask_storeu_epi64(dst + i, m, _mm512_xor_si512(a, b));
  }
  if (const size_t rem = width % 8; rem != 0) {
    // Sub-word tail: the key buffer ends mid-lane, so a masked 64-bit load
    // could touch bytes past the buffer. Stay scalar for the last < 8 bytes.
    uint64_t lane = 0;
    std::memcpy(&lane, key + 8 * full, rem);
    dst[full] ^= lane;
  }
}
#endif  // SETREC_X86_SIMD
// LINT(end)

using XorLanesFn = void (*)(uint64_t*, const uint64_t*, size_t);
using XorKeyFn = void (*)(uint64_t*, const uint8_t*, size_t);

bool HostHasAvx2() {
#ifdef SETREC_X86_SIMD
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool HostHasAvx512() {
#ifdef SETREC_X86_SIMD
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

#ifdef SETREC_X86_SIMD
XorLanesFn g_xor_lanes = HostHasAvx512() ? &XorLanesAvx512
                         : HostHasAvx2() ? &XorLanesAvx2
                                         : &XorLanesScalar;
XorKeyFn g_xor_key = HostHasAvx512() ? &XorKeyAvx512
                     : HostHasAvx2() ? &XorKeyAvx2
                                     : &XorKeyScalar;
#else
XorLanesFn g_xor_lanes = &XorLanesScalar;
XorKeyFn g_xor_key = &XorKeyScalar;
#endif

// Sizing constant: cells per expected difference key. Theorem 2.1 promises
// decode w.h.p. with m = O(d); k=4 peeling succeeds asymptotically above
// ~1.3 cells/key, but small tables need slack, so we use 1.9 plus an
// additive floor. bench_iblt (experiment E3) calibrates this empirically.
constexpr double kCellsPerKey = 2.0;
constexpr size_t kMinCells = 16;

// Zigzag encoding for signed counts in the compact serialization.
uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// XORs `width` key bytes into a lane-aligned destination. Keys of up to
// three lanes inline word-wide (the memcpy loads compile to single
// unaligned moves; the sub-word tail lands in the zero-padded final lane);
// wider blob keys go through the dispatched 32-byte-lane backend.
inline void XorKeyIntoLanes(uint64_t* dst, const uint8_t* key, size_t width) {
  if (width >= 32) {
    g_xor_key(dst, key, width);
    return;
  }
  XorKeyScalar(dst, key, width);
}

}  // namespace

const char* Iblt::LaneXorBackend() {
#ifdef SETREC_X86_SIMD
  if (g_xor_lanes == &XorLanesAvx512) return "avx512";
  if (g_xor_lanes == &XorLanesAvx2) return "avx2";
#endif
  return "scalar";
}

void Iblt::ForceScalarLaneXorForTest(bool force) {
  if (force) {
    g_xor_lanes = &XorLanesScalar;
    g_xor_key = &XorKeyScalar;
    return;
  }
#ifdef SETREC_X86_SIMD
  if (HostHasAvx512()) {
    g_xor_lanes = &XorLanesAvx512;
    g_xor_key = &XorKeyAvx512;
  } else if (HostHasAvx2()) {
    g_xor_lanes = &XorLanesAvx2;
    g_xor_key = &XorKeyAvx2;
  }
#endif
}

int Iblt::sharded_workers_for_test = 0;
IbltBatchOptions Iblt::batch_options_;

IbltConfig IbltConfig::ForDifference(size_t diff, uint64_t seed,
                                     size_t key_width, int num_hashes) {
  IbltConfig config;
  config.cells = std::max(
      kMinCells, static_cast<size_t>(kCellsPerKey * static_cast<double>(diff)) +
                     2 * static_cast<size_t>(num_hashes));
  config.num_hashes = num_hashes;
  config.key_width = key_width;
  config.seed = seed;
  return config;
}

size_t IbltConfig::PaddedCells() const {
  size_t k = static_cast<size_t>(num_hashes);
  return (cells + k - 1) / k * k;
}

size_t IbltConfig::FixedSerializedSize() const {
  // Per cell: 4-byte count, 8-byte checksum, key_width key bytes.
  return PaddedCells() * (4 + 8 + key_width);
}

Iblt::Iblt(const IbltConfig& config)
    : config_(config),
      cells_(config.PaddedCells()),
      cells_per_hash_(cells_ / static_cast<size_t>(config.num_hashes)),
      lanes_per_key_((config.key_width + 7) / 8),
      mod_magic_(cells_per_hash_ > 1
                     ? ~0ull / cells_per_hash_ +
                           (~0ull % cells_per_hash_ == cells_per_hash_ - 1)
                     : 0),
      meta_(cells_),
      key_lanes_(cells_ * lanes_per_key_, 0),
      bucket_family_(config.seed, /*tag=*/0x6275636bull),   // "buck"
      check_family_(config.seed, /*tag=*/0x6368656bull) {}  // "chek"

void Iblt::Insert(const uint8_t* key) { Update(key, +1); }
void Iblt::Insert(const std::vector<uint8_t>& key) {
  assert(key.size() == config_.key_width);
  Update(key.data(), +1);
}
void Iblt::InsertU64(uint64_t key) {
  assert(config_.key_width == 8);
  Update(reinterpret_cast<const uint8_t*>(&key), +1);
}

void Iblt::Erase(const uint8_t* key) { Update(key, -1); }
void Iblt::Erase(const std::vector<uint8_t>& key) {
  assert(key.size() == config_.key_width);
  Update(key.data(), -1);
}
void Iblt::EraseU64(uint64_t key) {
  assert(config_.key_width == 8);
  Update(reinterpret_cast<const uint8_t*>(&key), -1);
}

void Iblt::InsertBatch(const uint64_t* keys, size_t n) {
  ApplyBatchU64(keys, n, +1, batch_options_);
}
void Iblt::InsertBatch(const std::vector<uint64_t>& keys) {
  ApplyBatchU64(keys.data(), keys.size(), +1, batch_options_);
}
void Iblt::InsertBatch(const uint8_t* keys, size_t n) {
  ApplyBatchBytes(keys, n, +1, batch_options_);
}
void Iblt::EraseBatch(const uint64_t* keys, size_t n) {
  ApplyBatchU64(keys, n, -1, batch_options_);
}
void Iblt::EraseBatch(const std::vector<uint64_t>& keys) {
  ApplyBatchU64(keys.data(), keys.size(), -1, batch_options_);
}
void Iblt::EraseBatch(const uint8_t* keys, size_t n) {
  ApplyBatchBytes(keys, n, -1, batch_options_);
}

// LINT(alloc-free) — per-(key, hash) math on the peel path: pure mixing
// and a reciprocal modulo, no heap traffic allowed.
Iblt::KeyHashes Iblt::HashKeyU64(uint64_t key) const {
  // The seed-independent lane mix is shared between the two families.
  uint64_t mixed = HashFamily::MixLane8(key);
  return {bucket_family_.HashWord8Premixed(mixed),
          check_family_.HashWord8Premixed(mixed)};
}

Iblt::KeyHashes Iblt::HashKey(const uint8_t* key) const {
  if (config_.key_width == 8) {
    uint64_t lane;
    std::memcpy(&lane, key, 8);
    return HashKeyU64(lane);
  }
  return {bucket_family_.HashBytes(key, config_.key_width),
          check_family_.HashBytes(key, config_.key_width)};
}

size_t Iblt::CellForIndex(uint64_t bucket_hash, int index) const {
  uint64_t sub = Mix64(bucket_hash ^
                       (uint64_t{0x9e3779b97f4a7c15} * static_cast<uint64_t>(index + 1)));
  // Exact `sub % cells_per_hash_` via the precomputed reciprocal: with
  // M = floor(2^64 / d), q = mulhi(sub, M) is floor(sub/d) or one less, so
  // one conditional subtract fixes the remainder. Replaces a hardware
  // division on the hot path; bit-identical to the plain modulo.
  uint64_t r = 0;
  if (cells_per_hash_ > 1) {
    uint64_t q = static_cast<uint64_t>(
        (static_cast<__uint128_t>(sub) * mod_magic_) >> 64);
    r = sub - q * cells_per_hash_;
    if (r >= cells_per_hash_) r -= cells_per_hash_;
  }
  return static_cast<size_t>(index) * cells_per_hash_ + r;
}
// LINT(end)

void Iblt::Update(const uint8_t* key, int32_t delta) {
  KeyHashes h = HashKey(key);
  for (int i = 0; i < config_.num_hashes; ++i) {
    size_t cell = CellForIndex(h.bucket, i);
    meta_[cell].count += delta;
    meta_[cell].check ^= h.check;
    XorKeyIntoLanes(CellLanes(cell), key, config_.key_width);
  }
}

void Iblt::ApplyPartitionRange(const KeyHashes* hashes,
                               const uint64_t* u64_keys,
                               const uint8_t* byte_keys, size_t n,
                               int32_t delta, int first_index,
                               int index_step) {
  const size_t w = config_.key_width;
  for (int i = first_index; i < config_.num_hashes; i += index_step) {
    if (u64_keys != nullptr) {
      for (size_t j = 0; j < n; ++j) {
        size_t cell = CellForIndex(hashes[j].bucket, i);
        meta_[cell].count += delta;
        meta_[cell].check ^= hashes[j].check;
        key_lanes_[cell] ^= u64_keys[j];
      }
    } else {
      for (size_t j = 0; j < n; ++j) {
        size_t cell = CellForIndex(hashes[j].bucket, i);
        meta_[cell].count += delta;
        meta_[cell].check ^= hashes[j].check;
        XorKeyIntoLanes(CellLanes(cell), byte_keys + j * w, w);
      }
    }
  }
}

namespace {

/// Resolved worker count for a sharded pass over partitions of up to
/// `max_partitions` per table, honoring the runtime options and the
/// deterministic test hook.
int ShardedWorkerCount(int max_partitions, const IbltBatchOptions& options) {
  int cap = options.max_workers > 0
                ? options.max_workers
                : static_cast<int>(
                      std::max<unsigned>(1, std::thread::hardware_concurrency()));
  if (Iblt::sharded_workers_for_test > 0) {
    cap = Iblt::sharded_workers_for_test;
  }
  return std::min(max_partitions, cap);
}

}  // namespace

void Iblt::ApplyHashedBatch(const KeyHashes* hashes, const uint64_t* u64_keys,
                            const uint8_t* byte_keys, size_t n, int32_t delta,
                            const IbltBatchOptions& options) {
  const int k = config_.num_hashes;
  if (n >= options.sharded_min_keys && k > 1) {
    // Partitions are disjoint cell ranges: shard them across threads with no
    // synchronization. The result is identical to the serial order.
    int workers = ShardedWorkerCount(k, options);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers - 1));
    for (int t = 1; t < workers; ++t) {
      threads.emplace_back([=, this] {
        ApplyPartitionRange(hashes, u64_keys, byte_keys, n, delta, t, workers);
      });
    }
    ApplyPartitionRange(hashes, u64_keys, byte_keys, n, delta, 0, workers);
    for (std::thread& t : threads) t.join();
    return;
  }
  ApplyPartitionRange(hashes, u64_keys, byte_keys, n, delta, 0, 1);
}

void Iblt::ApplyOps(const ApplyOp* ops, size_t count,
                    const IbltBatchOptions& options, ApplyScratch* scratch) {
  size_t total = 0;
  int max_hashes = 1;
  for (size_t i = 0; i < count; ++i) {
    total += ops[i].n;
    max_hashes = std::max(max_hashes, ops[i].table->config_.num_hashes);
  }
  if (total == 0) return;

  const int workers = total >= options.sharded_min_keys
                          ? ShardedWorkerCount(max_hashes, options)
                          : 1;
  if (workers <= 1) {
    // Serial pass: stream op by op through the regular batch path, whose
    // small-batch hashes live in a stack buffer — the same cache-resident
    // footprint as issuing the ops directly. Staging every hash of a large
    // coalesced pass up front would trade that locality for nothing when
    // there is no worker to share the staging with.
    for (size_t i = 0; i < count; ++i) {
      const ApplyOp& op = ops[i];
      if (op.u64_keys != nullptr) {
        op.table->ApplyBatchU64(op.u64_keys, op.n, op.delta, options);
      } else {
        op.table->ApplyBatchBytes(op.byte_keys, op.n, op.delta, options);
      }
    }
    return;
  }

  // Sharded pass: hash every key of every op once into the shared staging
  // area, then let worker t apply partition indices {t, t+W, ...} of every
  // op. Each (table, partition) cell range has exactly one writer and ops
  // on the same table apply in op order — bit-identical to the serial pass
  // regardless of W. Two ops naming the same table are fine for the same
  // reason.
  scratch->offsets.clear();
  size_t offset = 0;
  for (size_t i = 0; i < count; ++i) {
    scratch->offsets.push_back(offset);
    offset += ops[i].n;
  }
  scratch->hashes.resize(total);
  for (size_t i = 0; i < count; ++i) {
    const ApplyOp& op = ops[i];
    KeyHashes* out = scratch->hashes.data() + scratch->offsets[i];
    if (op.u64_keys != nullptr) {
      for (size_t j = 0; j < op.n; ++j) {
        out[j] = op.table->HashKeyU64(op.u64_keys[j]);
      }
    } else {
      const size_t w = op.table->config_.key_width;
      for (size_t j = 0; j < op.n; ++j) {
        out[j] = op.table->HashKey(op.byte_keys + j * w);
      }
    }
  }
  auto run_slice = [&](int first_index) {
    for (size_t i = 0; i < count; ++i) {
      const ApplyOp& op = ops[i];
      op.table->ApplyPartitionRange(scratch->hashes.data() +
                                        scratch->offsets[i],
                                    op.u64_keys, op.byte_keys, op.n, op.delta,
                                    first_index, workers);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers - 1));
  for (int t = 1; t < workers; ++t) {
    threads.emplace_back(run_slice, t);
  }
  run_slice(0);
  for (std::thread& t : threads) t.join();
}

void Iblt::ApplyBatchU64(const uint64_t* keys, size_t n, int32_t delta,
                         const IbltBatchOptions& options) {
  assert(config_.key_width == 8);
  if (n == 0) return;
  // Small batches (the per-child sketches of the set-of-sets protocols)
  // hash into a stack buffer so batched updates stay allocation-free.
  KeyHashes stack_hashes[kSmallBatchMaxKeys];
  std::vector<KeyHashes> heap_hashes(n <= kSmallBatchMaxKeys ? 0 : n);
  KeyHashes* hashes = n <= kSmallBatchMaxKeys ? stack_hashes
                                              : heap_hashes.data();
  for (size_t j = 0; j < n; ++j) hashes[j] = HashKeyU64(keys[j]);
  ApplyHashedBatch(hashes, keys, nullptr, n, delta, options);
}

void Iblt::ApplyBatchBytes(const uint8_t* keys, size_t n, int32_t delta,
                           const IbltBatchOptions& options) {
  if (n == 0) return;
  KeyHashes stack_hashes[kSmallBatchMaxKeys];
  std::vector<KeyHashes> heap_hashes(n <= kSmallBatchMaxKeys ? 0 : n);
  KeyHashes* hashes = n <= kSmallBatchMaxKeys ? stack_hashes
                                              : heap_hashes.data();
  for (size_t j = 0; j < n; ++j) {
    hashes[j] = HashKey(keys + j * config_.key_width);
  }
  ApplyHashedBatch(hashes, nullptr, keys, n, delta, options);
}

Status Iblt::Subtract(const Iblt& other) {
  if (!(config_ == other.config_)) {
    return InvalidArgument("IBLT subtract: mismatched configs");
  }
  for (size_t i = 0; i < cells_; ++i) {
    meta_[i].count -= other.meta_[i].count;
    meta_[i].check ^= other.meta_[i].check;
  }
  // One contiguous arena XOR — the dispatched backend runs it 32 bytes at
  // a time on AVX2 hosts.
  g_xor_lanes(key_lanes_.data(), other.key_lanes_.data(), key_lanes_.size());
  return Status::Ok();
}

Status Iblt::Add(const Iblt& other) {
  if (!(config_ == other.config_)) {
    return InvalidArgument("IBLT add: mismatched configs");
  }
  for (size_t i = 0; i < cells_; ++i) {
    meta_[i].count += other.meta_[i].count;
    meta_[i].check ^= other.meta_[i].check;
  }
  g_xor_lanes(key_lanes_.data(), other.key_lanes_.data(), key_lanes_.size());
  return Status::Ok();
}

bool Iblt::CellIsZero(size_t cell) const {
  if (meta_[cell].count != 0 || meta_[cell].check != 0) return false;
  const uint64_t* lanes = CellLanes(cell);
  for (size_t l = 0; l < lanes_per_key_; ++l) {
    if (lanes[l] != 0) return false;
  }
  return true;
}

bool Iblt::PeelInto(DecodeScratch* scratch, IbltDecodeResult64* out_u64) const {
  assert(out_u64 == nullptr || config_.key_width == 8);
  const int k = config_.num_hashes;

  // Copy the table into the scratch; assign() reuses capacity (as does the
  // output arena below), so a warm scratch makes the whole decode — byte
  // keys included — allocation-free.
  scratch->meta.assign(meta_.begin(), meta_.end());
  scratch->key_lanes.assign(key_lanes_.begin(), key_lanes_.end());
  scratch->queued.assign(cells_, 0);
  scratch->queue.clear();
  scratch->out_lanes.clear();
  scratch->pos_offsets.clear();
  scratch->neg_offsets.clear();
  IbltCellMeta* meta = scratch->meta.data();
  uint64_t* lanes = scratch->key_lanes.data();

  // Seed the queue with pure-cell *candidates* (count == ±1). Checksum
  // verification is deferred to pop time, where the key must be hashed
  // anyway to derive its cells for removal — so each popped candidate costs
  // exactly one (bucket, check) hash pair, shared between the purity check
  // and the peel, and stale revisits of unchanged cells never rehash.
  for (size_t i = 0; i < cells_; ++i) {
    if (meta[i].count == 1 || meta[i].count == -1) {
      scratch->queue.push_back(static_cast<uint32_t>(i));
      scratch->queued[i] = 1;
    }
  }

  // A correct drain extracts at most one key per (key, cell) incidence;
  // cap iterations so checksum-collision cascades cannot loop forever.
  size_t budget = 4 * cells_ + 64;
  size_t head = 0;
  while (head < scratch->queue.size() && budget-- > 0) {
    const size_t cell = scratch->queue[head++];
    scratch->queued[cell] = 0;
    const int64_t count = meta[cell].count;
    if (count != 1 && count != -1) continue;  // Stale queue entry.
    const uint8_t* cell_key =
        reinterpret_cast<const uint8_t*>(lanes + cell * lanes_per_key_);
    const KeyHashes h = HashKey(cell_key);
    if (meta[cell].check != h.check) continue;  // Count ±1 but not pure.
    const int64_t sign = count;

    if (out_u64 != nullptr) {
      // 8-byte keys: the key is a single lane; no staging copy needed.
      const uint64_t key64 = lanes[cell];
      (sign > 0 ? out_u64->positive : out_u64->negative).push_back(key64);
      for (int i = 0; i < k; ++i) {
        const size_t t = CellForIndex(h.bucket, i);
        meta[t].count -= sign;
        meta[t].check ^= h.check;
        lanes[t] ^= key64;
        if ((meta[t].count == 1 || meta[t].count == -1) &&
            !scratch->queued[t]) {
          scratch->queue.push_back(static_cast<uint32_t>(t));
          scratch->queued[t] = 1;
        }
      }
      continue;
    }

    // Stage the key into the output arena: the copy both IS the decoded
    // entry (the returned views point at it) and serves as the stable
    // source for the removal XOR below (the home cell's own lanes change
    // mid-removal). Appending may grow the arena, so take the pointer
    // afterwards; earlier entries are only re-referenced by offset once the
    // peel is done (BuildViews).
    const size_t off = scratch->out_lanes.size();
    scratch->out_lanes.insert(scratch->out_lanes.end(),
                              lanes + cell * lanes_per_key_,
                              lanes + (cell + 1) * lanes_per_key_);
    (sign > 0 ? scratch->pos_offsets : scratch->neg_offsets).push_back(off);
    const uint64_t* staged = scratch->out_lanes.data() + off;

    // Remove the key from all of its cells (including this one), queueing
    // any cell the removal leaves as a fresh pure candidate.
    for (int i = 0; i < k; ++i) {
      const size_t t = CellForIndex(h.bucket, i);
      meta[t].count -= sign;
      meta[t].check ^= h.check;
      uint64_t* dst = lanes + t * lanes_per_key_;
      if (lanes_per_key_ >= 4) {
        g_xor_lanes(dst, staged, lanes_per_key_);
      } else {
        for (size_t l = 0; l < lanes_per_key_; ++l) {
          dst[l] ^= staged[l];
        }
      }
      if ((meta[t].count == 1 || meta[t].count == -1) && !scratch->queued[t]) {
        scratch->queue.push_back(static_cast<uint32_t>(t));
        scratch->queued[t] = 1;
      }
    }
  }

  // Complete iff the work table drained to all-zero cells.
  for (size_t i = 0; i < cells_; ++i) {
    if (meta[i].count != 0 || meta[i].check != 0) return false;
  }
  for (size_t i = 0; i < key_lanes_.size(); ++i) {
    if (lanes[i] != 0) return false;
  }
  return true;
}

IbltDecodeView Iblt::BuildViews(DecodeScratch* scratch) const {
  const size_t w = config_.key_width;
  const uint8_t* base =
      reinterpret_cast<const uint8_t*>(scratch->out_lanes.data());
  scratch->pos_views.clear();
  scratch->neg_views.clear();
  for (size_t off : scratch->pos_offsets) {
    scratch->pos_views.push_back(IbltKeyView{base + off * 8, w});
  }
  for (size_t off : scratch->neg_offsets) {
    scratch->neg_views.push_back(IbltKeyView{base + off * 8, w});
  }
  IbltDecodeView view;
  view.positive = {scratch->pos_views.data(), scratch->pos_views.size()};
  view.negative = {scratch->neg_views.data(), scratch->neg_views.size()};
  return view;
}

IbltDecodeResult IbltDecodeView::Materialize() const {
  IbltDecodeResult out;
  out.positive.reserve(positive.size());
  for (const IbltKeyView& v : positive) out.positive.push_back(v.ToVector());
  out.negative.reserve(negative.size());
  for (const IbltKeyView& v : negative) out.negative.push_back(v.ToVector());
  return out;
}

IbltPartialDecodeView Iblt::DecodePartial(DecodeScratch* scratch) const {
  IbltPartialDecodeView out;
  out.complete = PeelInto(scratch, nullptr);
  out.entries = BuildViews(scratch);
  return out;
}

IbltPartialDecode Iblt::DecodePartial() const {
  DecodeScratch scratch;
  IbltPartialDecodeView view = DecodePartial(&scratch);
  return IbltPartialDecode{view.entries.Materialize(), view.complete};
}

Result<IbltDecodeView> Iblt::Decode(DecodeScratch* scratch) const {
  if (!PeelInto(scratch, nullptr)) {
    return DecodeFailure("IBLT peeling incomplete (nonempty 2-core)");
  }
  return BuildViews(scratch);
}

Result<IbltDecodeResult> Iblt::Decode() const {
  DecodeScratch scratch;
  Result<IbltDecodeView> view = Decode(&scratch);
  if (!view.ok()) return view.status();
  return view.value().Materialize();
}

Result<IbltDecodeResult64> Iblt::DecodeU64(DecodeScratch* scratch) const {
  assert(config_.key_width == 8);
  IbltDecodeResult64 out;
  if (!PeelInto(scratch, &out)) {
    return DecodeFailure("IBLT peeling incomplete (nonempty 2-core)");
  }
  return out;
}

Result<IbltDecodeResult64> Iblt::DecodeU64() const {
  DecodeScratch scratch;
  return DecodeU64(&scratch);
}

Result<IbltDecodeView64> Iblt::DecodeU64View(DecodeScratch* scratch) const {
  assert(config_.key_width == 8);
  // Byte-mode peel: keys land lane-aligned in the output arena with their
  // offsets recorded — for 8-byte keys each entry is exactly one lane, so
  // gathering by offset into the reusable side vectors costs O(d) moves and
  // no allocations once the scratch is warm.
  if (!PeelInto(scratch, nullptr)) {
    return DecodeFailure("IBLT peeling incomplete (nonempty 2-core)");
  }
  scratch->pos_u64.clear();
  scratch->neg_u64.clear();
  for (size_t off : scratch->pos_offsets) {
    scratch->pos_u64.push_back(scratch->out_lanes[off]);
  }
  for (size_t off : scratch->neg_offsets) {
    scratch->neg_u64.push_back(scratch->out_lanes[off]);
  }
  return IbltDecodeView64{
      std::span<uint64_t>(scratch->pos_u64.data(), scratch->pos_u64.size()),
      std::span<uint64_t>(scratch->neg_u64.data(), scratch->neg_u64.size())};
}

bool Iblt::IsZero() const {
  for (size_t i = 0; i < cells_; ++i) {
    if (!CellIsZero(i)) return false;
  }
  return true;
}

void Iblt::Serialize(ByteWriter* writer) const {
  for (size_t i = 0; i < cells_; ++i) {
    writer->PutVarint(ZigZag(meta_[i].count));
    writer->PutU64(meta_[i].check);
    writer->PutBytes(CellKeyBytes(i), config_.key_width);
  }
}

Result<Iblt> Iblt::Deserialize(ByteReader* reader, const IbltConfig& config) {
  Iblt table(config);
  for (size_t i = 0; i < table.cells_; ++i) {
    uint64_t zz = 0;
    if (!reader->GetVarint(&zz)) return ParseError("IBLT truncated (count)");
    table.meta_[i].count = UnZigZag(zz);  // Lossless: counts are int64 wide.
    if (!reader->GetU64(&table.meta_[i].check)) {
      return ParseError("IBLT truncated (check)");
    }
    // Key bytes land directly in the (zero-padded) lane arena.
    if (!reader->GetRaw(config.key_width, table.CellKeyBytes(i))) {
      return ParseError("IBLT truncated (key)");
    }
  }
  return table;
}

void Iblt::SerializeFixed(ByteWriter* writer) const {
  for (size_t i = 0; i < cells_; ++i) {
    writer->PutU32(static_cast<uint32_t>(meta_[i].count));
    writer->PutU64(meta_[i].check);
    writer->PutBytes(CellKeyBytes(i), config_.key_width);
  }
}

Result<Iblt> Iblt::DeserializeFixed(ByteReader* reader,
                                    const IbltConfig& config) {
  Iblt table(config);
  for (size_t i = 0; i < table.cells_; ++i) {
    uint32_t count = 0;
    if (!reader->GetU32(&count)) return ParseError("IBLT truncated (count)");
    table.meta_[i].count = static_cast<int32_t>(count);
    if (!reader->GetU64(&table.meta_[i].check)) {
      return ParseError("IBLT truncated (check)");
    }
    if (!reader->GetRaw(config.key_width, table.CellKeyBytes(i))) {
      return ParseError("IBLT truncated (key)");
    }
  }
  return table;
}

// ---------------------------------------------------------------------------
// Sparse wire codec (WireCodec::kSparse). Frame = mode byte + body:
//   mode 0 (raw)    — the exact dense cell stream of Serialize(); emitted
//                     when the sparse body would not be smaller (saturated
//                     tables of incompressible data, e.g. the fingerprint
//                     tables whose cells are pure 64-bit hashes).
//   mode 1 (sparse) — occupancy bitmap over !CellIsZero, packed 2-bit count
//                     codes for occupied cells, escape list for counts
//                     outside {-1, +1}, 8 raw check bytes per occupied
//                     cell, group-masked key bytes per occupied cell.
//   mode 2 (delta)  — changed-cell bitmap vs. a lineage parent of identical
//                     config, then the same count/check/key sections for
//                     the changed cells (new absolute values; zero allowed).
// Every section is strictly validated; any malformed prefix yields
// kParseError and no table. Byte-level layout: src/net/README.md.
// ---------------------------------------------------------------------------

namespace {

constexpr uint8_t kSparseModeRaw = 0;
constexpr uint8_t kSparseModeBitmap = 1;
constexpr uint8_t kSparseModeDelta = 2;

// 2-bit count codes, four per byte, low crumbs first.
constexpr uint8_t kCountPlusOne = 0;
constexpr uint8_t kCountMinusOne = 1;
constexpr uint8_t kCountZero = 2;
constexpr uint8_t kCountEscape = 3;

size_t VarintLen(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

// Group-mask key compression: each 8-byte group of the key is one mask
// byte (bit j = byte j of the group is non-zero) followed by only the
// non-zero bytes. Wire tables subtract away most structure, so key fields
// are dominated by zero bytes; masks reclaim them at one byte per group.
void PutMaskedKey(const uint8_t* key, size_t width, ByteWriter* writer) {
  for (size_t g = 0; g < width; g += 8) {
    const size_t len = std::min<size_t>(8, width - g);
    uint8_t mask = 0;
    for (size_t b = 0; b < len; ++b) {
      mask |= static_cast<uint8_t>((key[g + b] != 0) << b);
    }
    writer->PutU8(mask);
    for (size_t b = 0; b < len; ++b) {
      if (key[g + b] != 0) writer->PutU8(key[g + b]);
    }
  }
}

size_t MaskedKeyLen(const uint8_t* key, size_t width) {
  size_t n = 0;
  for (size_t g = 0; g < width; g += 8) {
    const size_t len = std::min<size_t>(8, width - g);
    ++n;
    for (size_t b = 0; b < len; ++b) n += (key[g + b] != 0);
  }
  return n;
}

// Reads a group-masked key into `out` (writes all `width` bytes, zeros
// included). Fails on truncation or mask bits past a short tail group.
bool GetMaskedKey(ByteReader* reader, size_t width, uint8_t* out) {
  for (size_t g = 0; g < width; g += 8) {
    const size_t len = std::min<size_t>(8, width - g);
    uint8_t mask = 0;
    if (!reader->GetU8(&mask)) return false;
    if (len < 8 && (mask >> len) != 0) return false;
    for (size_t b = 0; b < len; ++b) {
      if (mask & (1u << b)) {
        if (!reader->GetU8(&out[g + b])) return false;
      } else {
        out[g + b] = 0;
      }
    }
  }
  return true;
}

}  // namespace

size_t Iblt::DenseSerializedSize() const {
  size_t n = 0;
  for (size_t i = 0; i < cells_; ++i) {
    n += VarintLen(ZigZag(meta_[i].count)) + 8 + config_.key_width;
  }
  return n;
}

void Iblt::EncodeCellBlock(const std::vector<uint32_t>& cells,
                           ByteWriter* writer) const {
  // Packed 2-bit count codes, four per byte; unused trailing crumbs stay 0.
  uint8_t crumbs = 0;
  int filled = 0;
  std::vector<uint32_t> escapes;
  for (size_t ord = 0; ord < cells.size(); ++ord) {
    const int64_t count = meta_[cells[ord]].count;
    uint8_t code;
    if (count == 1) {
      code = kCountPlusOne;
    } else if (count == -1) {
      code = kCountMinusOne;
    } else if (count == 0) {
      code = kCountZero;
    } else {
      code = kCountEscape;
      escapes.push_back(static_cast<uint32_t>(ord));
    }
    crumbs |= static_cast<uint8_t>(code << (2 * filled));
    if (++filled == 4) {
      writer->PutU8(crumbs);
      crumbs = 0;
      filled = 0;
    }
  }
  if (filled != 0) writer->PutU8(crumbs);
  // Escape list: occupied-ordinal + zigzag count per escaped cell. The
  // ordinals are redundant with the code stream but make each escape entry
  // self-locating, so the decoder can cross-check them.
  writer->PutVarint(escapes.size());
  for (uint32_t ord : escapes) {
    writer->PutVarint(ord);
    writer->PutVarint(ZigZag(meta_[cells[ord]].count));
  }
  // Checksums are XORs of uniform 64-bit hashes — incompressible; raw.
  for (uint32_t cell : cells) writer->PutU64(meta_[cell].check);
  // Key payloads, zero bytes suppressed behind group masks.
  for (uint32_t cell : cells) {
    PutMaskedKey(CellKeyBytes(cell), config_.key_width, writer);
  }
}

Status Iblt::DecodeCellBlock(ByteReader* reader,
                             const std::vector<uint32_t>& cells,
                             bool allow_zero_cells) {
  const size_t n = cells.size();
  // Count codes.
  std::vector<uint8_t> codes(n, kCountZero);
  for (size_t ord = 0; ord < n; ord += 4) {
    uint8_t crumbs = 0;
    if (!reader->GetU8(&crumbs)) {
      return ParseError("sparse IBLT truncated (count codes)");
    }
    const size_t in_byte = std::min<size_t>(4, n - ord);
    if (in_byte < 4 && (crumbs >> (2 * in_byte)) != 0) {
      return ParseError("sparse IBLT: count codes past the last cell");
    }
    for (size_t b = 0; b < in_byte; ++b) {
      codes[ord + b] = (crumbs >> (2 * b)) & 0x3;
    }
  }
  // Escape list, cross-checked against the kCountEscape positions: entries
  // must name exactly those ordinals, in order, with counts that actually
  // need escaping.
  uint64_t num_escapes = 0;
  if (!reader->GetVarint(&num_escapes)) {
    return ParseError("sparse IBLT truncated (escape count)");
  }
  if (num_escapes > n) {
    return ParseError("sparse IBLT: escape count exceeds occupied cells");
  }
  size_t next_escape = 0;  // Scans codes[] for the next kCountEscape.
  std::vector<int64_t> escaped_counts(n, 0);
  for (uint64_t e = 0; e < num_escapes; ++e) {
    uint64_t ord = 0;
    uint64_t zz = 0;
    if (!reader->GetVarint(&ord) || !reader->GetVarint(&zz)) {
      return ParseError("sparse IBLT truncated (escape list)");
    }
    if (ord >= n) {
      return ParseError("sparse IBLT: escape-list index out of range");
    }
    while (next_escape < n && codes[next_escape] != kCountEscape) {
      ++next_escape;
    }
    if (next_escape >= n || ord != next_escape) {
      return ParseError("sparse IBLT: escape-list index mismatch");
    }
    const int64_t count = UnZigZag(zz);
    if (count >= -1 && count <= 1) {
      return ParseError("sparse IBLT: non-canonical escape count");
    }
    escaped_counts[ord] = count;
    ++next_escape;
  }
  for (size_t ord = next_escape; ord < n; ++ord) {
    if (codes[ord] == kCountEscape) {
      return ParseError("sparse IBLT: escape code without escape entry");
    }
  }
  // Apply counts.
  for (size_t ord = 0; ord < n; ++ord) {
    switch (codes[ord]) {
      case kCountPlusOne:
        meta_[cells[ord]].count = 1;
        break;
      case kCountMinusOne:
        meta_[cells[ord]].count = -1;
        break;
      case kCountZero:
        meta_[cells[ord]].count = 0;
        break;
      default:
        meta_[cells[ord]].count = escaped_counts[ord];
        break;
    }
  }
  // Checks.
  for (size_t ord = 0; ord < n; ++ord) {
    if (!reader->GetU64(&meta_[cells[ord]].check)) {
      return ParseError("sparse IBLT truncated (check)");
    }
  }
  // Keys (group-masked; writes every key byte, so parent values from the
  // delta path are fully overwritten).
  for (size_t ord = 0; ord < n; ++ord) {
    if (!GetMaskedKey(reader, config_.key_width, CellKeyBytes(cells[ord]))) {
      return ParseError("sparse IBLT truncated or malformed (key mask)");
    }
  }
  if (!allow_zero_cells) {
    for (size_t ord = 0; ord < n; ++ord) {
      if (CellIsZero(cells[ord])) {
        return ParseError("sparse IBLT: occupied cell decoded to zero");
      }
    }
  }
  return Status::Ok();
}

void Iblt::SerializeSparse(ByteWriter* writer) const {
  std::vector<uint32_t> occupied;
  std::vector<uint8_t> bitmap((cells_ + 7) / 8, 0);
  for (size_t i = 0; i < cells_; ++i) {
    if (!CellIsZero(i)) {
      occupied.push_back(static_cast<uint32_t>(i));
      bitmap[i >> 3] |= static_cast<uint8_t>(1u << (i & 7));
    }
  }
  // Exact sparse-body size, computed before encoding so an oversized body
  // is never built: bitmap + count crumbs + escapes + checks + masked keys.
  size_t sparse_size = bitmap.size() + (occupied.size() + 3) / 4;
  size_t num_escapes = 0;
  for (size_t ord = 0; ord < occupied.size(); ++ord) {
    const int64_t count = meta_[occupied[ord]].count;
    if (count < -1 || count > 1) {
      ++num_escapes;
      sparse_size += VarintLen(ord) + VarintLen(ZigZag(count));
    }
  }
  sparse_size += VarintLen(num_escapes) + 8 * occupied.size();
  for (uint32_t cell : occupied) {
    sparse_size += MaskedKeyLen(CellKeyBytes(cell), config_.key_width);
  }
  if (sparse_size >= DenseSerializedSize()) {
    // Raw fallback: saturated/incompressible table — dense is no larger.
    writer->PutU8(kSparseModeRaw);
    Serialize(writer);
    return;
  }
  writer->PutU8(kSparseModeBitmap);
  writer->PutBytes(bitmap);
  EncodeCellBlock(occupied, writer);
}

void Iblt::SerializeDelta(const Iblt& parent, ByteWriter* writer) const {
  assert(config_ == parent.config_);
  writer->PutU8(kSparseModeDelta);
  std::vector<uint32_t> changed;
  std::vector<uint8_t> bitmap((cells_ + 7) / 8, 0);
  for (size_t i = 0; i < cells_; ++i) {
    const bool same =
        meta_[i].count == parent.meta_[i].count &&
        meta_[i].check == parent.meta_[i].check &&
        std::memcmp(CellLanes(i), parent.CellLanes(i),
                    8 * lanes_per_key_) == 0;
    if (!same) {
      changed.push_back(static_cast<uint32_t>(i));
      bitmap[i >> 3] |= static_cast<uint8_t>(1u << (i & 7));
    }
  }
  // An all-zero bitmap is the whole frame: the unchanged-table marker.
  writer->PutBytes(bitmap);
  if (changed.empty()) return;
  EncodeCellBlock(changed, writer);
}

Result<Iblt> Iblt::DeserializeSparse(ByteReader* reader,
                                     const IbltConfig& config,
                                     const TableLineage& lineage) {
  uint8_t mode = 0;
  if (!reader->GetU8(&mode)) return ParseError("sparse IBLT truncated (mode)");
  if (mode == kSparseModeRaw) return Deserialize(reader, config);
  if (mode != kSparseModeBitmap && mode != kSparseModeDelta) {
    return ParseError("sparse IBLT: unknown frame mode");
  }
  const bool is_delta = mode == kSparseModeDelta;
  if (is_delta && !lineage.CoversConfig(config)) {
    return ParseError("sparse IBLT: delta frame without matching lineage");
  }
  // Delta starts from a copy of the parent; sparse from an all-zero table.
  Iblt table = is_delta ? *lineage.parent : Iblt(config);
  const size_t cells = table.cells_;
  std::vector<uint8_t> bitmap;
  if (!reader->GetBytes((cells + 7) / 8, &bitmap)) {
    return ParseError("sparse IBLT truncated (occupancy bitmap)");
  }
  if (cells % 8 != 0 && (bitmap.back() >> (cells % 8)) != 0) {
    return ParseError("sparse IBLT: occupancy bits past the last cell");
  }
  std::vector<uint32_t> marked;
  for (size_t i = 0; i < cells; ++i) {
    if (bitmap[i >> 3] & (1u << (i & 7))) {
      marked.push_back(static_cast<uint32_t>(i));
    }
  }
  if (is_delta && marked.empty()) return table;  // Unchanged-table marker.
  Status status =
      table.DecodeCellBlock(reader, marked, /*allow_zero_cells=*/is_delta);
  if (!status.ok()) return status;
  return table;
}

void Iblt::SerializeWith(WireCodec codec, ByteWriter* writer,
                         const TableLineage& lineage) const {
  if (codec != WireCodec::kSparse) {
    Serialize(writer);
    return;
  }
  if (lineage.CoversConfig(config_)) {
    SerializeDelta(*lineage.parent, writer);
    return;
  }
  SerializeSparse(writer);
}

Result<Iblt> Iblt::DeserializeWith(WireCodec codec, ByteReader* reader,
                                   const IbltConfig& config,
                                   const TableLineage& lineage) {
  if (codec != WireCodec::kSparse) return Deserialize(reader, config);
  return DeserializeSparse(reader, config, lineage);
}

}  // namespace setrec
