#include "transport/endpoint.h"

#include <utility>

namespace setrec {

void Endpoint::Queue::Push(Channel::Message message) {
  if (mu != nullptr) {
    std::lock_guard<std::mutex> lock(*mu);
    messages.push_back(std::move(message));
    return;
  }
  messages.push_back(std::move(message));
}

bool Endpoint::Queue::Pop(Channel::Message* out) {
  if (mu != nullptr) {
    std::lock_guard<std::mutex> lock(*mu);
    if (messages.empty()) return false;
    *out = std::move(messages.front());
    messages.pop_front();
    return true;
  }
  if (messages.empty()) return false;
  *out = std::move(messages.front());
  messages.pop_front();
  return true;
}

size_t Endpoint::Queue::Pending() const {
  if (mu != nullptr) {
    std::lock_guard<std::mutex> lock(*mu);
    return messages.size();
  }
  return messages.size();
}

std::pair<Endpoint, Endpoint> Endpoint::LoopbackPair() {
  auto a_inbox = std::make_shared<Queue>();
  auto b_inbox = std::make_shared<Queue>();
  Endpoint a;
  a.inbox_ = a_inbox;
  a.peer_inbox_ = b_inbox;
  Endpoint b;
  b.inbox_ = b_inbox;
  b.peer_inbox_ = a_inbox;
  return {std::move(a), std::move(b)};
}

std::pair<Endpoint, Endpoint> Endpoint::MailboxPair() {
  std::pair<Endpoint, Endpoint> pair = LoopbackPair();
  pair.first.inbox_->mu = std::make_unique<std::mutex>();
  pair.second.inbox_->mu = std::make_unique<std::mutex>();
  return pair;
}

bool Endpoint::Send(Channel::Message message) {
  if (peer_inbox_ == nullptr) {
    ++dropped_;  // Unconnected: drop, but observably.
    return false;
  }
  bytes_sent_ += message.payload.size();
  ++messages_sent_;
  peer_inbox_->Push(std::move(message));
  return true;
}

bool Endpoint::Poll(Channel::Message* out) {
  if (!inbox_) return false;
  return inbox_->Pop(out);
}

size_t Endpoint::DrainToStream(ByteWriter* writer) {
  size_t drained = 0;
  Channel::Message message;
  while (Poll(&message)) {
    WriteMessageFrame(message, writer);
    ++drained;
  }
  return drained;
}

namespace {

enum class VarintState { kOk, kNeedMore, kMalformed };

/// Incremental varint read with ByteReader::GetVarint's exact acceptance
/// rules (rejects payload bits past bit 63 and 11+-byte encodings), but
/// able to report "ran out of buffered bytes" separately from "malformed".
VarintState ReadVarintPrefix(const uint8_t* data, size_t n, uint64_t* v,
                             size_t* used) {
  uint64_t out = 0;
  size_t i = 0;
  for (int shift = 0; shift < 64; shift += 7, ++i) {
    if (i >= n) return VarintState::kNeedMore;
    uint8_t byte = data[i];
    if (shift == 63 && (byte & 0x7e) != 0) return VarintState::kMalformed;
    out |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = out;
      *used = i + 1;
      return VarintState::kOk;
    }
  }
  return VarintState::kMalformed;  // Overlong encoding (11+ bytes).
}

}  // namespace

void FrameDecoder::Feed(const uint8_t* data, size_t n) {
  if (failed_) return;
  // Compact lazily: drop consumed prefix once it dominates the buffer so
  // a long-lived stream does not grow without bound.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

bool FrameDecoder::Next(Channel::Message* out) {
  if (failed_) return false;
  const uint8_t* p = buffer_.data() + consumed_;
  const size_t n = buffer_.size() - consumed_;
  size_t pos = 0;

  // Sender byte.
  if (n < 1) return false;
  if (p[0] > 1) {
    failed_ = true;
    return false;
  }
  pos = 1;

  // Label, then payload: varint length + raw bytes each.
  uint64_t lens[2] = {0, 0};
  size_t starts[2] = {0, 0};
  for (int part = 0; part < 2; ++part) {
    uint64_t len = 0;
    size_t used = 0;
    switch (ReadVarintPrefix(p + pos, n - pos, &len, &used)) {
      case VarintState::kNeedMore:
        return false;
      case VarintState::kMalformed:
        failed_ = true;
        return false;
      case VarintState::kOk:
        break;
    }
    pos += used;
    if (len > max_frame_bytes_) {
      // A length beyond the frame bound cannot be satisfied by feeding
      // more bytes we are willing to buffer: latch failure instead of
      // letting a hostile 2^60 "length" grow the buffer forever.
      failed_ = true;
      return false;
    }
    if (len > n - pos) return false;  // Legitimate frame, needs more bytes.
    starts[part] = pos;
    lens[part] = len;
    pos += static_cast<size_t>(len);
  }

  out->from = static_cast<Party>(p[0]);
  out->label.assign(reinterpret_cast<const char*>(p + starts[0]),
                    static_cast<size_t>(lens[0]));
  out->payload.assign(p + starts[1], p + starts[1] + lens[1]);
  consumed_ += pos;
  return true;
}

}  // namespace setrec
