#ifndef SETREC_TRANSPORT_ENDPOINT_H_
#define SETREC_TRANSPORT_ENDPOINT_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "transport/channel.h"
#include "util/serialization.h"

namespace setrec {

/// A duplex in-process message port: one half of a loopback pair. Send()
/// enqueues onto the peer's inbox, Poll() drains this half's inbox —
/// non-blocking on both sides, which is what the SyncService needs to step
/// thousands of sessions without a thread per connection. Messages are
/// Channel::Message (sender + label + payload), so protocol traffic can be
/// mirrored 1:1 onto an endpoint and transcripts keep exact byte/round
/// accounting on both transports.
///
/// THREAD SAFETY: a LoopbackPair is not thread-safe — both halves must be
/// used by one thread (each service shard is a single-threaded step loop,
/// so intra-shard mirrors need no synchronization). When the two halves
/// live on DIFFERENT shard threads (a cross-shard mirror: the session
/// steps on shard A while shard B's pump serializes its frames), use a
/// MailboxPair instead: same interface, each direction's queue guarded by
/// a mutex. Channel and FrameDecoder stay single-thread objects in both
/// cases.
class Endpoint {
 public:
  /// Two connected halves: whatever one sends, the other polls, in order.
  /// Single-thread use only.
  static std::pair<Endpoint, Endpoint> LoopbackPair();

  /// Like LoopbackPair, but safe for the two halves to live on different
  /// threads (each may also have multiple senders): every queue operation
  /// takes that queue's mutex. This is the cross-shard mirror endpoint —
  /// the lock is uncontended in the common case (one sender, one poller)
  /// and each critical section is one deque operation.
  static std::pair<Endpoint, Endpoint> MailboxPair();

  Endpoint() = default;

  /// True when connected to a peer (made by LoopbackPair).
  bool connected() const { return inbox_ != nullptr; }

  /// Enqueues `message` for the peer. Returns true when queued; false when
  /// this endpoint is unconnected — the message is DROPPED, and the drop is
  /// counted in dropped() so a net-layer disconnect is observable instead
  /// of silent (the SyncService surfaces it as ServiceStats::mirror_drops).
  [[nodiscard]] bool Send(Channel::Message message);

  /// Dequeues the oldest pending message into `out`; false when idle.
  [[nodiscard]] bool Poll(Channel::Message* out);

  /// Messages waiting in this half's inbox.
  size_t pending() const { return inbox_ ? inbox_->Pending() : 0; }

  size_t messages_sent() const { return messages_sent_; }
  size_t bytes_sent() const { return bytes_sent_; }
  /// Messages dropped by Send on an unconnected endpoint.
  size_t dropped() const { return dropped_; }

  /// Drains every pending inbox message into `writer` as wire frames (the
  /// PackTranscript per-message format, transport/channel.h's
  /// WriteMessageFrame) — the bridge from the in-process pair to a real
  /// byte stream (socket, file, record log).
  size_t DrainToStream(ByteWriter* writer);

 private:
  struct Queue {
    std::deque<Channel::Message> messages;
    /// Present only on MailboxPair queues; null means single-thread
    /// (loopback) and every operation skips locking.
    std::unique_ptr<std::mutex> mu;

    void Push(Channel::Message message);
    bool Pop(Channel::Message* out);
    size_t Pending() const;
  };

  std::shared_ptr<Queue> inbox_;
  std::shared_ptr<Queue> peer_inbox_;
  size_t messages_sent_ = 0;
  size_t bytes_sent_ = 0;
  size_t dropped_ = 0;
};

/// Incremental decoder for a stream of wire frames (the exact per-message
/// format of PackTranscript, minus the leading count): feed arbitrary byte
/// chunks, pop whole messages as they complete. A packed transcript body
/// therefore parses with this decoder too.
class FrameDecoder {
 public:
  /// Ceiling on a single frame's label or payload length. A hostile length
  /// prefix above it latches failed() instead of parking the decoder in
  /// "need more bytes" while the caller feeds (and buffers) forever.
  static constexpr size_t kDefaultMaxFrameBytes = 64u << 20;

  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends a chunk of stream bytes.
  void Feed(const uint8_t* data, size_t n);
  void Feed(const std::vector<uint8_t>& data) { Feed(data.data(), data.size()); }

  /// Extracts the next complete frame. Returns false when the buffered
  /// bytes do not (yet) contain a whole frame; feed more and retry. Once a
  /// frame prefix proves malformed (bad sender byte, overlong varint, a
  /// length above the frame-size bound) the decoder latches failed() and
  /// returns false forever.
  [[nodiscard]] bool Next(Channel::Message* out);

  /// True after a malformed frame was encountered; the stream cannot be
  /// resynchronized.
  bool failed() const { return failed_; }

  /// Bytes buffered but not yet consumed by complete frames.
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  size_t max_frame_bytes_;
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
  bool failed_ = false;
};

}  // namespace setrec

#endif  // SETREC_TRANSPORT_ENDPOINT_H_
