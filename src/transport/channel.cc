#include "transport/channel.h"

#include <utility>

namespace setrec {

size_t Channel::Send(Party from, std::vector<uint8_t> payload,
                     std::string label) {
  total_bytes_ += payload.size();
  if (from == Party::kAlice) {
    bytes_alice_ += payload.size();
  } else {
    bytes_bob_ += payload.size();
  }
  messages_.push_back(Message{from, std::move(payload), std::move(label)});
  return messages_.size() - 1;
}

void Channel::Reset() {
  messages_.clear();
  total_bytes_ = 0;
  bytes_alice_ = 0;
  bytes_bob_ = 0;
}

void WriteMessageFrame(const Channel::Message& message, ByteWriter* writer) {
  writer->PutU8(static_cast<uint8_t>(message.from));
  writer->PutVarint(message.label.size());
  writer->PutBytes(reinterpret_cast<const uint8_t*>(message.label.data()),
                   message.label.size());
  writer->PutLengthPrefixed(message.payload);
}

bool ReadMessageFrame(ByteReader* reader, Channel::Message* out) {
  uint8_t from = 0;
  uint64_t label_len = 0;
  if (!reader->GetU8(&from) || from > 1) return false;
  if (!reader->GetVarint(&label_len) || label_len > reader->remaining()) {
    return false;
  }
  out->from = static_cast<Party>(from);
  out->label.resize(static_cast<size_t>(label_len));
  if (!reader->GetRaw(static_cast<size_t>(label_len),
                      reinterpret_cast<uint8_t*>(out->label.data()))) {
    return false;
  }
  return reader->GetLengthPrefixed(&out->payload);
}

std::vector<uint8_t> PackTranscript(const Channel& sub) {
  ByteWriter writer;
  writer.PutVarint(sub.transcript().size());
  for (const Channel::Message& m : sub.transcript()) {
    WriteMessageFrame(m, &writer);
  }
  return writer.Take();
}

bool UnpackTranscript(ByteReader* reader,
                      std::vector<Channel::Message>* messages) {
  uint64_t count = 0;
  if (!reader->GetVarint(&count)) return false;
  // Each packed message costs at least 3 bytes (sender + two length
  // prefixes); a tighter bound keeps the reserve below the input size
  // instead of letting a hostile count amplify into a huge allocation.
  if (count > reader->remaining() / 3) return false;
  messages->clear();
  messages->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    Channel::Message m;
    if (!ReadMessageFrame(reader, &m)) return false;
    messages->push_back(std::move(m));
  }
  return true;
}

bool SkipPackedTranscript(ByteReader* reader) {
  uint64_t count = 0;
  if (!reader->GetVarint(&count)) return false;
  if (count > reader->remaining() / 3) return false;
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t from = 0;
    uint64_t len = 0;
    if (!reader->GetU8(&from) || from > 1) return false;
    // Advance past the label and payload without copying them (the payload
    // can be a full serialized IBLT).
    if (!reader->GetVarint(&len) || !reader->Skip(len)) return false;
    if (!reader->GetVarint(&len) || !reader->Skip(len)) return false;
  }
  return true;
}

size_t ForwardAsSingleMessage(const Channel& sub, Party from, Channel* main,
                              std::string label) {
  return main->Send(from, PackTranscript(sub), std::move(label));
}

}  // namespace setrec
