#include "transport/channel.h"

#include <utility>

namespace setrec {

size_t Channel::Send(Party from, std::vector<uint8_t> payload,
                     std::string label) {
  total_bytes_ += payload.size();
  if (from == Party::kAlice) {
    bytes_alice_ += payload.size();
  } else {
    bytes_bob_ += payload.size();
  }
  messages_.push_back(Message{from, std::move(payload), std::move(label)});
  return messages_.size() - 1;
}

void Channel::Reset() {
  messages_.clear();
  total_bytes_ = 0;
  bytes_alice_ = 0;
  bytes_bob_ = 0;
}

std::vector<uint8_t> PackTranscript(const Channel& sub) {
  // Varint count then length-prefixed payloads (hand-rolled to avoid a
  // dependency cycle with util/serialization).
  std::vector<uint8_t> out;
  auto put_varint = [&out](uint64_t v) {
    while (v >= 0x80) {
      out.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
  };
  put_varint(sub.transcript().size());
  for (const Channel::Message& m : sub.transcript()) {
    put_varint(m.payload.size());
    out.insert(out.end(), m.payload.begin(), m.payload.end());
  }
  return out;
}

size_t ForwardAsSingleMessage(const Channel& sub, Party from, Channel* main,
                              std::string label) {
  return main->Send(from, PackTranscript(sub), std::move(label));
}

}  // namespace setrec
