#ifndef SETREC_TRANSPORT_CHANNEL_H_
#define SETREC_TRANSPORT_CHANNEL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/serialization.h"

namespace setrec {

/// The two parties of a reconciliation protocol.
enum class Party : uint8_t { kAlice = 0, kBob = 1 };

inline const char* PartyName(Party p) {
  return p == Party::kAlice ? "Alice" : "Bob";
}

/// An in-memory simulated channel between Alice and Bob with exact
/// accounting of the two costs the paper reports: total bits communicated
/// and the number of rounds. Following Section 2, "the number of rounds of
/// communication ... denotes the number of total messages sent", so
/// rounds() == number of Send calls.
class Channel {
 public:
  struct Message {
    /// Default-initialized so a Message staged inside a mailbox command is
    /// never copied with an indeterminate sender (GCC -Wuninitialized
    /// caught SyncService::Command doing exactly that).
    Party from = Party::kAlice;
    std::vector<uint8_t> payload;
    /// Free-form label ("T1", "estimator", ...) for transcript inspection.
    std::string label;
  };

  Channel() = default;

  /// Records a message from `from`; returns its index in the transcript.
  size_t Send(Party from, std::vector<uint8_t> payload,
              std::string label = "");

  /// Retrieves message `index`; the caller (the other party) parses it.
  const Message& Receive(size_t index) const { return messages_.at(index); }

  /// Number of messages sent so far (== rounds, per the paper's convention).
  size_t rounds() const { return messages_.size(); }

  /// Total payload bytes across all messages.
  size_t total_bytes() const { return total_bytes_; }

  /// Total payload bytes sent by `party`.
  size_t bytes_from(Party party) const {
    return party == Party::kAlice ? bytes_alice_ : bytes_bob_;
  }

  const std::vector<Message>& transcript() const { return messages_; }

  /// Forgets all traffic (used between retry attempts when the caller wants
  /// per-attempt accounting; protocols normally keep cumulative totals since
  /// retries are real communication).
  void Reset();

 private:
  std::vector<Message> messages_;
  size_t total_bytes_ = 0;
  size_t bytes_alice_ = 0;
  size_t bytes_bob_ = 0;
};

/// Bundles every message of `sub` into one length-prefixed message on
/// `main`, attributed to `from`. Composite protocols (graph and forest
/// reconciliation) run a sets-of-sets sub-protocol locally, then ship the
/// full sub-transcript (frames keep per-message sender attribution —
/// split-party verdict frames travel Bob→Alice) plus their own payload as
/// a single round; this helper keeps the byte accounting exact.
size_t ForwardAsSingleMessage(const Channel& sub, Party from, Channel* main,
                              std::string label);

/// Appends one message frame — a sender byte, the length-prefixed label,
/// and the length-prefixed payload. This is the shared wire unit: a packed
/// transcript is a varint count followed by frames, and the endpoint
/// stream codec (transport/endpoint.h) is a plain sequence of frames, so
/// both read/write messages through the same two functions.
void WriteMessageFrame(const Channel::Message& message, ByteWriter* writer);

/// Parses one message frame at the reader's position. Returns false
/// (consuming an unspecified prefix) on truncated or malformed input.
[[nodiscard]] bool ReadMessageFrame(ByteReader* reader,
                                    Channel::Message* out);

/// Serializes a sub-transcript into a byte block: a varint message count,
/// then one WriteMessageFrame per message — the full Channel::Message, so
/// a forwarded sub-transcript round-trips without losing sender
/// attribution. Used by composite protocols that append their own sections
/// after the sub-transcript. Codec-agnostic by construction: payloads are
/// opaque bytes here, so a packed transcript of sparse-codec frames
/// (WireCodec::kSparse table payloads) round-trips through
/// Pack/Unpack/SkipPackedTranscript byte-identically, exactly like dense.
std::vector<uint8_t> PackTranscript(const Channel& sub);

/// Inverse of PackTranscript: parses the packed block at the reader's
/// current position into messages. Returns false (consuming an unspecified
/// prefix) on truncated or malformed input.
[[nodiscard]] bool UnpackTranscript(ByteReader* reader,
                                    std::vector<Channel::Message>* messages);

/// Advances `reader` past a packed sub-transcript without keeping the
/// messages — the shape consumers need when the sub-protocol already ran
/// locally and only the sections after the transcript matter.
[[nodiscard]] bool SkipPackedTranscript(ByteReader* reader);

}  // namespace setrec

#endif  // SETREC_TRANSPORT_CHANNEL_H_
