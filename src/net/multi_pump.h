#ifndef SETREC_NET_MULTI_PUMP_H_
#define SETREC_NET_MULTI_PUMP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/net_pump.h"
#include "service/sharded_service.h"
#include "util/status.h"

namespace setrec {

struct MultiNetPumpOptions {
  /// Per-pump options; reuse_port is forced on for TCP listeners.
  NetPumpOptions pump;
  /// Poll timeout of each pump thread's pass. Wakes (new fds, shard
  /// mailbox pushes) interrupt it through the pump's self-pipe, so this is
  /// only the ceiling on reacting to events with no wake attached.
  int poll_timeout_ms = 50;
};

/// One NetPump per service shard, each on its own thread: pump thread i IS
/// shard i's driving thread (its PumpOnce feeds sockets into shard i and
/// steps it), so the pump↔service pair stays the single-threaded unit it
/// was in PR 4 — N times over. Connection placement:
///
///  * TCP: every pump listens on the same port with SO_REUSEPORT; the
///    kernel spreads accepted connections across the listeners.
///  * Adopted fds (socketpairs, inherited sockets): hashed to a pump by a
///    dense connection id and handed off through the pump's lock-free
///    adopt queue + self-pipe wake.
///
/// The ShardedSyncService must be constructed with spawn_threads == false;
/// the multi-pump registers itself as the shard wake hook so cross-shard
/// lease releases interrupt the target pump's poll.
class MultiNetPump {
 public:
  MultiNetPump(ShardedSyncService* service, MultiNetPumpOptions options = {});
  ~MultiNetPump();

  MultiNetPump(const MultiNetPump&) = delete;
  MultiNetPump& operator=(const MultiNetPump&) = delete;

  size_t pump_count() const { return pumps_.size(); }
  NetPump* pump(size_t i) { return pumps_[i].get(); }

  /// Binds every pump to `port` (0 = ephemeral, resolved by the first
  /// listener) with SO_REUSEPORT; returns the bound port.
  Result<uint16_t> ListenTcp(uint16_t port);

  /// Routes an already-connected fd to the pump whose shard currently
  /// carries the least load (in-flight sessions + undrained mailbox
  /// commands, via ShardedSyncService::LoadOf), ties broken by a rotating
  /// counter so equal-load shards still round-robin. Returns the chosen
  /// pump index (tests assert placement).
  size_t AdoptConnection(int fd);

  /// Spawns one thread per pump. Idempotent.
  void Start();
  /// Stops and joins the pump threads (safe to call twice; the destructor
  /// calls it).
  void Stop();

  /// Finished sessions harvested by the pump threads, in harvest order.
  std::vector<SessionResult> TakeResults();
  /// Sessions harvested so far (monotonic; any thread).
  size_t results_seen() const {
    return results_seen_.load(std::memory_order_acquire);
  }

  /// Sum of per-pump stats. Call with the pumps stopped (or accept a
  /// harmless torn read while they run).
  NetPumpStats AggregateStats() const;

 private:
  void PumpLoop(size_t index);

  ShardedSyncService* service_;
  MultiNetPumpOptions options_;
  std::vector<std::unique_ptr<NetPump>> pumps_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> next_conn_id_{0};

  std::mutex results_mu_;
  std::vector<SessionResult> results_;
  std::atomic<size_t> results_seen_{0};
};

}  // namespace setrec

#endif  // SETREC_NET_MULTI_PUMP_H_
