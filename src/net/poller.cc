#include "net/poller.h"

#include <cstdlib>
#include <string>

namespace setrec {

const char* PollerKindName(PollerKind kind) {
  switch (kind) {
    case PollerKind::kAuto:
      return "auto";
    case PollerKind::kPoll:
      return "poll";
    case PollerKind::kEpoll:
      return "epoll";
    case PollerKind::kUring:
      return "io_uring";
  }
  return "unknown";
}

Result<PollerKind> ParsePollerKind(std::string_view name) {
  if (name == "auto") return PollerKind::kAuto;
  if (name == "poll") return PollerKind::kPoll;
  if (name == "epoll") return PollerKind::kEpoll;
  if (name == "io_uring" || name == "uring") return PollerKind::kUring;
  return InvalidArgument("unknown poller backend: " + std::string(name) +
                         " (want auto|poll|epoll|io_uring)");
}

bool PollerBackendAvailable(PollerKind kind) {
  switch (kind) {
    case PollerKind::kAuto:
    case PollerKind::kPoll:
      return true;
    case PollerKind::kEpoll: {
      // Construction is the probe; cached so tests and MakePoller can ask
      // repeatedly without burning fds.
      static const bool available = internal::MakeEpollPoller() != nullptr;
      return available;
    }
    case PollerKind::kUring: {
      static const bool available = internal::MakeUringPoller() != nullptr;
      return available;
    }
  }
  return false;
}

namespace {

/// SETREC_POLLER steers kAuto only — an explicit --poller= flag wins.
/// Unparseable values are ignored (a typo'd env var must not change which
/// backend a production server boots with).
PollerKind EnvSteer() {
  const char* env = std::getenv("SETREC_POLLER");
  if (env == nullptr || *env == '\0') return PollerKind::kAuto;
  Result<PollerKind> parsed = ParsePollerKind(env);
  return parsed.ok() ? parsed.value() : PollerKind::kAuto;
}

}  // namespace

std::unique_ptr<Poller> MakePoller(PollerKind requested) {
  if (requested == PollerKind::kAuto) requested = EnvSteer();
  // Degradation chain: io_uring (opt-in) -> epoll (Linux default) ->
  // poll (always works). kAuto lands on epoll: io_uring is explicit
  // opt-in via --poller=/SETREC_POLLER until it has equal mileage.
  if (requested == PollerKind::kUring) {
    if (auto poller = internal::MakeUringPoller()) return poller;
  }
  if (requested != PollerKind::kPoll) {
    if (auto poller = internal::MakeEpollPoller()) return poller;
  }
  return internal::MakePollPoller();
}

}  // namespace setrec
