#include "net/stream_party.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <utility>
#include <vector>

#include "core/build_context.h"
#include "core/task.h"
#include "transport/endpoint.h"
#include "util/serialization.h"

namespace setrec {

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Unavailable(std::string("socket: ") + strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgument("not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status err = Unavailable(std::string("connect: ") + strerror(errno));
    ::close(fd);
    return err;
  }
  return fd;
}

Result<int> ConnectUnix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return InvalidArgument("unix socket path too long");
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Unavailable(std::string("socket: ") + strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status err = Unavailable(std::string("connect: ") + strerror(errno));
    ::close(fd);
    return err;
  }
  return fd;
}

namespace {

Status WriteAll(int fd, const uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, data + off, n - off);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return Unavailable(std::string("write: ") + strerror(errno));
  }
  return Status::Ok();
}

/// The client-side context: inline semantics (this thread runs exactly one
/// party), with every local send framed straight onto the stream.
class StreamPartyContext final : public InlineContext {
 public:
  StreamPartyContext(int fd, Party local) : fd_(fd), local_(local) {}

  const Status& write_status() const { return write_status_; }

  void OnSend(Channel* channel, size_t index) override {
    const Channel::Message& message = channel->Receive(index);
    if (message.from == local_ && write_status_.ok()) {
      ByteWriter writer;
      WriteMessageFrame(message, &writer);
      write_status_ = WriteAll(fd_, writer.bytes().data(), writer.size());
    }
    ProtocolContext::OnSend(channel, index);
  }

 private:
  int fd_;
  Party local_;
  Status write_status_;
};

}  // namespace

Status WriteFrameToFd(int fd, const Channel::Message& message) {
  ByteWriter writer;
  WriteMessageFrame(message, &writer);
  return WriteAll(fd, writer.bytes().data(), writer.size());
}

Status SendHello(int fd, const HelloSpec& spec) {
  return WriteFrameToFd(fd, MakeHelloMessage(spec));
}

Result<std::string> QueryStatsOverFd(int fd) {
  if (Status s = WriteFrameToFd(fd, MakeStatQueryMessage()); !s.ok()) {
    return s;
  }
  FrameDecoder decoder;
  std::vector<uint8_t> buf(64u << 10);
  for (;;) {
    ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n == 0) return Unavailable("peer closed before the STAT reply");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Unavailable(std::string("read: ") + strerror(errno));
    }
    decoder.Feed(buf.data(), static_cast<size_t>(n));
    Channel::Message message;
    while (decoder.Next(&message)) {
      if (IsStatReplyMessage(message)) {
        return std::string(message.payload.begin(), message.payload.end());
      }
      // Any other frame on an admin query is a peer bug.
      return ParseError("unexpected frame while awaiting STAT reply");
    }
    if (decoder.failed()) return ParseError("malformed STAT reply frame");
  }
}

Result<SsrOutcome> RunBobHalfOverFd(const SetsOfSetsProtocol& protocol,
                                    const SetOfSets& bob,
                                    std::optional<size_t> known_d, int fd,
                                    Channel* channel) {
  StreamPartyContext ctx(fd, Party::kBob);
  Task<Result<SsrOutcome>> task =
      protocol.ReconcileAsyncBob(bob, known_d, channel, &ctx);
  task.Start();
  // The half runs until it parks on a peer message; we then block on the
  // stream, decode arriving frames into the transcript, and pump the
  // parked receive. Strict ping-pong means exactly one side has the turn,
  // so blocking reads cannot deadlock against a live server.
  FrameDecoder decoder;
  std::vector<uint8_t> buf(64u << 10);
  while (!task.Done()) {
    if (!ctx.write_status().ok()) {
      ctx.CancelReceives();
      return ctx.write_status();
    }
    ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n == 0) {
      ctx.CancelReceives();
      return Unavailable("peer closed the connection mid-protocol");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      ctx.CancelReceives();
      return Unavailable(std::string("read: ") + strerror(errno));
    }
    decoder.Feed(buf.data(), static_cast<size_t>(n));
    Channel::Message message;
    bool delivered = false;
    while (decoder.Next(&message)) {
      channel->Send(message.from, std::move(message.payload),
                    std::move(message.label));
      delivered = true;
    }
    if (decoder.failed()) {
      ctx.CancelReceives();
      return ParseError("malformed frame from peer");
    }
    if (delivered) ctx.PumpReceives();
  }
  // The final send (typically Bob's ok verdict) may have failed after the
  // task completed; success must mean the peer actually got it.
  if (!ctx.write_status().ok()) return ctx.write_status();
  return task.TakeResult();
}

}  // namespace setrec
