#include "net/stream_party.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <optional>
#include <utility>
#include <vector>

#include "core/build_context.h"
#include "core/task.h"
#include "obs/clock.h"
#include "obs/export.h"
#include "obs/trace_text.h"
#include "transport/endpoint.h"
#include "util/serialization.h"

namespace setrec {

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Unavailable(std::string("socket: ") + strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgument("not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status err = Unavailable(std::string("connect: ") + strerror(errno));
    ::close(fd);
    return err;
  }
  return fd;
}

Result<int> ConnectUnix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return InvalidArgument("unix socket path too long");
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Unavailable(std::string("socket: ") + strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status err = Unavailable(std::string("connect: ") + strerror(errno));
    ::close(fd);
    return err;
  }
  return fd;
}

namespace {

Status WriteAll(int fd, const uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    // MSG_NOSIGNAL: a peer that hung up (e.g. a shedding server that closed
    // right after its busy frame) must surface as EPIPE, not kill us.
    ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return Unavailable(std::string("write: ") + strerror(errno));
  }
  return Status::Ok();
}

/// The client-side context: inline semantics (this thread runs exactly one
/// party), with every local send framed straight onto the stream. With a
/// tracer attached, each blocking frame write becomes a send-wait span.
class StreamPartyContext final : public InlineContext {
 public:
  StreamPartyContext(int fd, Party local, obs::SessionTracer* tracer,
                     uint64_t trace_id)
      : fd_(fd), local_(local), tracer_(tracer), trace_id_(trace_id) {}

  const Status& write_status() const { return write_status_; }

  void OnSend(Channel* channel, size_t index) override {
    const Channel::Message& message = channel->Receive(index);
    if (message.from == local_ && write_status_.ok()) {
      ByteWriter writer;
      WriteMessageFrame(message, &writer);
      Record(obs::TracePhase::kSendWait, /*enter=*/true);
      write_status_ = WriteAll(fd_, writer.bytes().data(), writer.size());
      Record(obs::TracePhase::kSendWait, /*enter=*/false);
    }
    ProtocolContext::OnSend(channel, index);
  }

  /// Client spans key on the trace id (the client has no session ids).
  void Record(obs::TracePhase phase, bool enter) {
    if (tracer_ != nullptr && tracer_->armed()) {
      tracer_->Record(trace_id_, phase, enter, obs::NowNanos(), trace_id_);
    }
  }

 private:
  int fd_;
  Party local_;
  obs::SessionTracer* tracer_;
  uint64_t trace_id_;
  Status write_status_;
};

/// Admin replies are operator text, not protocol tables: cap the frame at
/// a size no honest exposition approaches, so a confused or malicious
/// peer cannot make a one-shot CLI buffer gigabytes (FrameDecoder fails
/// the oversized frame and the query returns kParseError).
constexpr size_t kMaxAdminReplyBytes = 4u << 20;

Result<std::string> QueryAdminOverFd(int fd, const Channel::Message& query,
                                     const char* reply_label) {
  if (Status s = WriteFrameToFd(fd, query); !s.ok()) return s;
  FrameDecoder decoder(kMaxAdminReplyBytes);
  std::vector<uint8_t> buf(64u << 10);
  for (;;) {
    ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n == 0) return Unavailable("peer closed before the admin reply");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Unavailable(std::string("read: ") + strerror(errno));
    }
    decoder.Feed(buf.data(), static_cast<size_t>(n));
    Channel::Message message;
    while (decoder.Next(&message)) {
      if (message.label == reply_label) {
        return std::string(message.payload.begin(), message.payload.end());
      }
      if (IsBusyMessage(message)) {
        // Admission shedding: the server refused the connection before it
        // saw the query. Distinct from a peer bug — the caller may retry.
        Result<uint32_t> hint = ParseBusyMessage(message);
        if (!hint.ok()) return hint.status();  // Fail closed: bad busy.
        return Unavailable("server busy (retry-after " +
                           std::to_string(hint.value()) + " ms)");
      }
      // Any other frame on an admin query is a peer bug.
      return ParseError("unexpected frame while awaiting admin reply");
    }
    if (decoder.failed()) {
      return ParseError("oversized or malformed admin reply frame");
    }
  }
}

}  // namespace

Status WriteFrameToFd(int fd, const Channel::Message& message) {
  ByteWriter writer;
  WriteMessageFrame(message, &writer);
  return WriteAll(fd, writer.bytes().data(), writer.size());
}

Status SendHello(int fd, const HelloSpec& spec) {
  return WriteFrameToFd(fd, MakeHelloMessage(spec));
}

std::optional<uint32_t> PendingBusyHintOnFd(int fd) {
  FrameDecoder decoder;
  std::vector<uint8_t> buf(16u << 10);
  // MSG_DONTWAIT: only what already arrived counts — the peer that broke
  // our write is gone, so a blocking read could hang forever.
  for (;;) {
    ssize_t n = ::recv(fd, buf.data(), buf.size(), MSG_DONTWAIT);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;
    decoder.Feed(buf.data(), static_cast<size_t>(n));
    Channel::Message message;
    while (decoder.Next(&message)) {
      if (!IsBusyMessage(message)) continue;
      Result<uint32_t> hint = ParseBusyMessage(message);
      if (!hint.ok()) return std::nullopt;  // Malformed: keep the write error.
      return hint.value();
    }
    if (decoder.failed()) return std::nullopt;
  }
}

Result<std::string> QueryStatsOverFd(int fd) {
  Result<std::string> text =
      QueryAdminOverFd(fd, MakeStatQueryMessage(), kStatReplyLabel);
  if (!text.ok()) return text;
  // Fail closed on a version this client cannot claim to understand: a
  // v3+ server may have changed line semantics anywhere, so "parse the
  // prefix and hope" is not an option (see obs/export.h version rule).
  if (!obs::ValidMetricsExpositionHeader(text.value())) {
    return ParseError("unsupported metrics exposition version");
  }
  return text;
}

Result<std::string> QueryTracesOverFd(int fd) {
  Result<std::string> text =
      QueryAdminOverFd(fd, MakeTraceQueryMessage(), kTraceReplyLabel);
  if (!text.ok()) return text;
  if (text.value().rfind(obs::kTraceTextVersionLine, 0) != 0) {
    return ParseError("unsupported trace exposition version");
  }
  return text;
}

Result<SsrOutcome> RunBobHalfOverFd(const SetsOfSetsProtocol& protocol,
                                    const SetOfSets& bob,
                                    std::optional<size_t> known_d, int fd,
                                    Channel* channel,
                                    obs::SessionTracer* tracer,
                                    uint64_t trace_id,
                                    uint32_t* busy_retry_after_ms) {
  StreamPartyContext ctx(fd, Party::kBob, tracer, trace_id);
  // The compute span opens before the coroutine frame is built: frame
  // allocation is part of the client's local work, not network waiting.
  ctx.Record(obs::TracePhase::kCompute, /*enter=*/true);
  Task<Result<SsrOutcome>> task =
      protocol.ReconcileAsyncBob(bob, known_d, channel, &ctx);
  task.Start();
  ctx.Record(obs::TracePhase::kCompute, /*enter=*/false);
  // The half runs until it parks on a peer message; we then block on the
  // stream, decode arriving frames into the transcript, and pump the
  // parked receive. Strict ping-pong means exactly one side has the turn,
  // so blocking reads cannot deadlock against a live server.
  //
  // Each recv-wait span opens at the instant the preceding compute span
  // closes (one span per server turn, however many reads it takes), so a
  // preemption at the turn boundary lands inside a span instead of in an
  // instrumentation gap — the merged timeline's coverage measures real
  // untraced work, not scheduler luck.
  FrameDecoder decoder;
  std::vector<uint8_t> buf(64u << 10);
  if (!task.Done()) ctx.Record(obs::TracePhase::kRecvWait, /*enter=*/true);
  while (!task.Done()) {
    if (!ctx.write_status().ok()) {
      ctx.CancelReceives();
      if (std::optional<uint32_t> hint = PendingBusyHintOnFd(fd)) {
        if (busy_retry_after_ms != nullptr) *busy_retry_after_ms = *hint;
        return Unavailable("server busy (retry-after " +
                           std::to_string(*hint) + " ms)");
      }
      return ctx.write_status();
    }
    ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n == 0) {
      ctx.CancelReceives();
      return Unavailable("peer closed the connection mid-protocol");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      ctx.CancelReceives();
      return Unavailable(std::string("read: ") + strerror(errno));
    }
    decoder.Feed(buf.data(), static_cast<size_t>(n));
    Channel::Message message;
    bool delivered = false;
    while (decoder.Next(&message)) {
      if (IsBusyMessage(message)) {
        // The server shed this connection instead of starting the session.
        // Surface the retry hint and fail the run as unavailable; a
        // malformed busy frame fails closed as a parse error.
        ctx.CancelReceives();
        Result<uint32_t> hint = ParseBusyMessage(message);
        if (!hint.ok()) return hint.status();
        if (busy_retry_after_ms != nullptr) {
          *busy_retry_after_ms = hint.value();
        }
        return Unavailable("server busy (retry-after " +
                           std::to_string(hint.value()) + " ms)");
      }
      channel->Send(message.from, std::move(message.payload),
                    std::move(message.label));
      delivered = true;
    }
    if (decoder.failed()) {
      ctx.CancelReceives();
      return ParseError("malformed frame from peer");
    }
    if (delivered) {
      ctx.Record(obs::TracePhase::kRecvWait, /*enter=*/false);
      ctx.Record(obs::TracePhase::kCompute, /*enter=*/true);
      ctx.PumpReceives();
      ctx.Record(obs::TracePhase::kCompute, /*enter=*/false);
      if (!task.Done()) ctx.Record(obs::TracePhase::kRecvWait, /*enter=*/true);
    }
  }
  // The final send (typically Bob's ok verdict) may have failed after the
  // task completed; success must mean the peer actually got it.
  if (!ctx.write_status().ok()) return ctx.write_status();
  return task.TakeResult();
}

}  // namespace setrec
