#include "net/multi_pump.h"

#include <utility>

#include "obs/trace_text.h"

namespace setrec {

MultiNetPump::MultiNetPump(ShardedSyncService* service,
                           MultiNetPumpOptions options)
    : service_(service), options_(options) {
  options_.pump.reuse_port = true;
  const size_t n = service_->shard_count();
  pumps_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pumps_.push_back(
        std::make_unique<NetPump>(service_->shard(i), options_.pump));
    // Any pump's STAT? answer covers the WHOLE sharded service, merged
    // from every shard's published snapshot (the handling pump cannot
    // read foreign shards' live blocks), plus every pump's published
    // metric block.
    pumps_.back()->set_stat_exposition([this] {
      obs::ExpositionWriter writer;
      AppendServiceExposition(service_->SnapshotMetrics(),
                              service_->SnapshotStats(), &writer);
      obs::PumpMetrics merged;
      for (const std::unique_ptr<NetPump>& pump : pumps_) {
        merged.Merge(pump->SnapshotPumpMetrics());
      }
      obs::AppendPumpMetrics(merged, writer);
      obs::AppendRates(service_->SnapshotRates(), writer);
      return writer.Take();
    });
    // Likewise TRACE?: one pump's answer carries every shard's recently
    // completed traces (the per-shard stores are mutex-guarded).
    pumps_.back()->set_trace_exposition([this] {
      return obs::FormatTraceExposition(service_->SnapshotCompletedTraces(),
                                        "server");
    });
  }
  // Cross-shard traffic (lease wakes, facade submissions) interrupts the
  // owning pump's poll instead of waiting out its timeout.
  service_->set_shard_wake_hook([this](size_t shard) {
    if (shard < pumps_.size()) pumps_[shard]->Wake();
  });
}

MultiNetPump::~MultiNetPump() {
  Stop();
  service_->set_shard_wake_hook(nullptr);
}

Result<uint16_t> MultiNetPump::ListenTcp(uint16_t port) {
  uint16_t bound = port;
  for (const std::unique_ptr<NetPump>& pump : pumps_) {
    Result<uint16_t> r = pump->ListenTcp(bound);
    if (!r.ok()) return r.status();
    bound = r.value();  // First listener resolves an ephemeral request.
  }
  return bound;
}

size_t MultiNetPump::AdoptConnection(int fd) {
  // Load-aware placement: full scan for the shard with the cheapest load
  // signal (live sessions + undrained mailbox). The scan starts at a
  // rotating offset so equal-load shards round-robin instead of piling
  // onto shard 0; relaxed reads are fine — a one-command skew cannot
  // misroute by more than it already costs. Replaces the old dense-id
  // hash, which kept CONNECTION counts balanced but ignored how expensive
  // each shard's sessions actually are.
  const uint64_t salt = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  const size_t n = pumps_.size();
  size_t best = static_cast<size_t>(salt % n);
  uint64_t best_load = service_->LoadOf(best).total();
  for (size_t step = 1; step < n && best_load > 0; ++step) {
    const size_t i = static_cast<size_t>((salt + step) % n);
    const uint64_t load = service_->LoadOf(i).total();
    if (load < best_load) {
      best = i;
      best_load = load;
    }
  }
  pumps_[best]->AdoptConnectionAsync(fd);
  return best;
}

void MultiNetPump::Start() {
  if (!threads_.empty()) return;
  stop_.store(false, std::memory_order_release);
  threads_.reserve(pumps_.size());
  for (size_t i = 0; i < pumps_.size(); ++i) {
    threads_.emplace_back([this, i] { PumpLoop(i); });
  }
}

void MultiNetPump::Stop() {
  if (threads_.empty()) return;
  stop_.store(true, std::memory_order_release);
  for (const std::unique_ptr<NetPump>& pump : pumps_) pump->Wake();
  for (std::thread& thread : threads_) thread.join();
  threads_.clear();
  // Final harvest: sessions that finished in the last pass before the
  // stop flag was observed must not be lost.
  for (const std::unique_ptr<NetPump>& pump : pumps_) {
    std::vector<SessionResult> batch = pump->TakeResults();
    if (batch.empty()) continue;
    std::lock_guard<std::mutex> lock(results_mu_);
    for (SessionResult& result : batch) {
      results_.push_back(std::move(result));
    }
    results_seen_.fetch_add(batch.size(), std::memory_order_acq_rel);
  }
}

void MultiNetPump::PumpLoop(size_t index) {
  NetPump* pump = pumps_[index].get();
  while (!stop_.load(std::memory_order_acquire)) {
    pump->PumpOnce(options_.poll_timeout_ms);
    std::vector<SessionResult> batch = pump->TakeResults();
    if (batch.empty()) continue;
    {
      std::lock_guard<std::mutex> lock(results_mu_);
      for (SessionResult& result : batch) {
        results_.push_back(std::move(result));
      }
      results_seen_.fetch_add(batch.size(), std::memory_order_acq_rel);
    }
  }
}

std::vector<SessionResult> MultiNetPump::TakeResults() {
  std::lock_guard<std::mutex> lock(results_mu_);
  return std::move(results_);
}

NetPumpStats MultiNetPump::AggregateStats() const {
  NetPumpStats total;
  for (const std::unique_ptr<NetPump>& pump : pumps_) {
    const NetPumpStats& s = pump->stats();
    total.accepted += s.accepted;
    total.closed += s.closed;
    total.protocol_errors += s.protocol_errors;
    total.disconnects += s.disconnects;
    total.frames_in += s.frames_in;
    total.frames_out += s.frames_out;
    total.bytes_in += s.bytes_in;
    total.bytes_out += s.bytes_out;
    total.backpressure_stalls += s.backpressure_stalls;
    total.handshake_timeouts += s.handshake_timeouts;
    total.idle_timeouts += s.idle_timeouts;
    total.admissions_rejected += s.admissions_rejected;
  }
  return total;
}

}  // namespace setrec
