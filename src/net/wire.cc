#include "net/wire.h"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "util/serialization.h"

namespace setrec {

namespace {
// Version 1: fields through estimate_slack, implicitly dense tables.
// Version 2: version 1 fields + one trailing wire-codec byte.
// Version 3: version 2 fields + one trailing u64 trace id (must be
// nonzero — "absent ⇒ untraced" stays unambiguous). Untraced clients
// emit v2, byte-identical to a pre-trace client; traced clients emit v3.
// All three versions are accepted so pre-codec clients (and recorded v1
// transcripts) interoperate — a v1 hello IS the dense negotiation.
constexpr uint8_t kHelloVersionLegacy = 1;
constexpr uint8_t kHelloVersion = 2;
constexpr uint8_t kHelloVersionTraced = 3;
}

Channel::Message MakeHelloMessage(const HelloSpec& spec) {
  ByteWriter writer;
  writer.PutU8(spec.trace_id != 0 ? kHelloVersionTraced : kHelloVersion);
  writer.PutU8(static_cast<uint8_t>(spec.protocol));
  writer.PutVarint(spec.set_id);
  writer.PutU8(spec.known_d.has_value() ? 1 : 0);
  if (spec.known_d.has_value()) writer.PutVarint(*spec.known_d);
  writer.PutVarint(spec.params.max_child_size);
  writer.PutVarint(spec.params.max_children);
  writer.PutVarint(spec.params.max_differing_children);
  writer.PutU64(spec.params.seed);
  writer.PutVarint(static_cast<uint64_t>(spec.params.max_attempts));
  writer.PutU64(std::bit_cast<uint64_t>(spec.params.estimate_slack));
  writer.PutU8(static_cast<uint8_t>(spec.params.wire_codec));
  if (spec.trace_id != 0) writer.PutU64(spec.trace_id);
  return Channel::Message{Party::kBob, writer.Take(), kHelloLabel};
}

Result<HelloSpec> ParseHelloMessage(const Channel::Message& m) {
  if (!IsHelloMessage(m)) return ParseError("not a hello frame");
  ByteReader reader(m.payload);
  uint8_t version = 0, protocol = 0, has_d = 0;
  if (!reader.GetU8(&version) ||
      (version != kHelloVersionLegacy && version != kHelloVersion &&
       version != kHelloVersionTraced)) {
    return ParseError("hello: unsupported version");
  }
  if (!reader.GetU8(&protocol) || protocol >= kSsrProtocolKindCount) {
    return ParseError("hello: unknown protocol kind");
  }
  HelloSpec spec;
  spec.protocol = static_cast<SsrProtocolKind>(protocol);
  uint64_t set_id = 0, known_d = 0;
  uint64_t max_child_size = 0, max_children = 0, max_differing = 0;
  uint64_t max_attempts = 0, slack_bits = 0;
  uint8_t codec = static_cast<uint8_t>(WireCodec::kDense);
  if (!reader.GetVarint(&set_id) || !reader.GetU8(&has_d) || has_d > 1 ||
      (has_d == 1 && !reader.GetVarint(&known_d)) ||
      !reader.GetVarint(&max_child_size) || !reader.GetVarint(&max_children) ||
      !reader.GetVarint(&max_differing) || !reader.GetU64(&spec.params.seed) ||
      !reader.GetVarint(&max_attempts) || !reader.GetU64(&slack_bits) ||
      (version >= kHelloVersion &&
       (!reader.GetU8(&codec) ||
        codec > static_cast<uint8_t>(WireCodec::kSparse))) ||
      (version >= kHelloVersionTraced && !reader.GetU64(&spec.trace_id)) ||
      !reader.empty()) {
    return ParseError("hello: truncated or trailing bytes");
  }
  // A v3 hello exists only to carry a trace id; zero would make "absent ⇒
  // untraced" ambiguous, so it is malformed rather than meaning v2.
  if (version >= kHelloVersionTraced && spec.trace_id == 0) {
    return ParseError("hello: zero trace id on a traced hello");
  }
  spec.params.wire_codec = static_cast<WireCodec>(codec);
  // Bound the client-supplied sizes: they shape server-side IBLT sizes
  // (outer tables are ~O(d_hat) cells of ~O(max_child_size) bytes), and an
  // unchecked hello must not be able to make one connection allocate
  // gigabytes — or throw bad_alloc into a coroutine, which would terminate
  // the whole server. Caps: each bound individually, plus the cells×width
  // product that actually sizes tables.
  constexpr uint64_t kMaxBound = 1ull << 20;
  constexpr uint64_t kMaxTableProduct = 1ull << 22;
  const uint64_t d_bound = std::max(known_d, std::max(max_children,
                                                      max_differing));
  if (max_child_size > kMaxBound || max_children > kMaxBound ||
      max_differing > kMaxBound || known_d > kMaxBound ||
      (max_child_size + 2) * (d_bound + 2) > kMaxTableProduct ||
      max_attempts == 0 || max_attempts > 64) {
    return ParseError("hello: parameter out of range");
  }
  spec.set_id = set_id;
  if (has_d == 1) spec.known_d = static_cast<size_t>(known_d);
  spec.params.max_child_size = static_cast<size_t>(max_child_size);
  spec.params.max_children = static_cast<size_t>(max_children);
  spec.params.max_differing_children = static_cast<size_t>(max_differing);
  spec.params.max_attempts = static_cast<int>(max_attempts);
  spec.params.estimate_slack = std::bit_cast<double>(slack_bits);
  if (!(spec.params.estimate_slack >= 1.0) ||
      spec.params.estimate_slack > 64.0) {
    return ParseError("hello: estimate_slack out of range");
  }
  return spec;
}

Channel::Message MakeStatQueryMessage() {
  return Channel::Message{Party::kBob, {}, kStatQueryLabel};
}

Channel::Message MakeTraceQueryMessage() {
  return Channel::Message{Party::kBob, {}, kTraceQueryLabel};
}

Channel::Message MakeBusyMessage(uint32_t retry_after_ms) {
  ByteWriter writer;
  writer.PutU8(1);  // busy frame version
  writer.PutVarint(retry_after_ms);
  return Channel::Message{Party::kAlice, writer.Take(), kBusyLabel};
}

Result<uint32_t> ParseBusyMessage(const Channel::Message& m) {
  if (!IsBusyMessage(m)) return ParseError("not a busy frame");
  ByteReader reader(m.payload);
  uint8_t version = 0;
  uint64_t retry_after_ms = 0;
  if (!reader.GetU8(&version) || version != 1 ||
      !reader.GetVarint(&retry_after_ms) || !reader.empty()) {
    return ParseError("busy: malformed payload");
  }
  // An absurd hint is a peer bug, not a reason to stall a client forever.
  constexpr uint64_t kMaxRetryAfterMs = 60u * 60u * 1000u;
  if (retry_after_ms > kMaxRetryAfterMs) {
    return ParseError("busy: retry_after_ms out of range");
  }
  return static_cast<uint32_t>(retry_after_ms);
}

}  // namespace setrec
