#include "net/net_pump.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <mutex>
#include <utility>

#include "net/wire.h"
#include "obs/clock.h"
#include "obs/trace_text.h"
#include "util/serialization.h"

namespace setrec {

namespace {

/// See Connection::frames_since_step. 4 leaves generous slack over the
/// honest maximum (one in-flight protocol message).
constexpr size_t kMaxFramesPerStep = 4;

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Unavailable(std::string("fcntl(O_NONBLOCK): ") + strerror(errno));
  }
  return Status::Ok();
}

}  // namespace

/// Per-connection state: the fd, the inbound frame decoder, the session's
/// mirror peer (outbound frames queue here until serialized), and the
/// outgoing byte buffer.
struct NetPump::Connection {
  int fd = -1;
  FrameDecoder decoder;
  /// The pump-held half of the session's mirror pair; null before hello.
  std::shared_ptr<Endpoint> mirror_peer;
  uint64_t session_id = 0;
  bool session_done = false;
  bool closing = false;
  /// Peer sent EOF. Judged only after the service has consumed every frame
  /// that arrived before it: an EOF behind the final verdict is a clean
  /// goodbye, an EOF with the session still live is a disconnect.
  bool eof = false;
  std::vector<uint8_t> outbuf;
  size_t outbuf_off = 0;
  size_t frames_before_session = 0;
  /// Timestamp of the last protocol frame serialized toward the peer;
  /// cleared when the peer's answer arrives (per-conn round-trip metric).
  uint64_t last_send_ns = 0;
  /// Protocol frames delivered since the service last stepped. Strict
  /// half-duplex means an honest client has at most ONE protocol message
  /// in flight (plus the hello); a client streaming frames faster than
  /// the session consumes them is flooding, and gets dropped before its
  /// transcript can grow without bound.
  size_t frames_since_step = 0;

  explicit Connection(size_t max_frame_bytes) : decoder(max_frame_bytes) {}
  size_t outbuf_pending() const { return outbuf.size() - outbuf_off; }
};

NetPump::NetPump(SyncService* service, NetPumpOptions options)
    : service_(service), options_(options) {
  // Eager self-pipe: Wake()/AdoptConnectionAsync may be called from any
  // thread, so the fds must exist before the pump is shared. On the
  // (unlikely) pipe failure the pump still works — cross-thread wakes then
  // ride on the caller's poll timeout.
  (void)EnsureWakePipe();
  // A networked service answers TRACE?, so traced/slow sessions must be
  // retained even when --trace-slow never armed the tracer's stderr dump.
  service_->tracer().EnableCapture(service_->options().trace_ring_capacity);
}

NetPump::~NetPump() {
  for (const std::unique_ptr<Connection>& conn : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  for (int fd : listeners_) ::close(fd);
  for (const std::string& path : unix_paths_) ::unlink(path.c_str());
  adopt_queue_.DrainInto([](int&& fd) { ::close(fd); });
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

Status NetPump::EnsureWakePipe() {
  if (wake_pipe_[0] >= 0) return Status::Ok();  // Constructor-only path.
  int fds[2];
  if (::pipe(fds) != 0) {
    return Unavailable(std::string("pipe: ") + strerror(errno));
  }
  if (!SetNonBlocking(fds[0]).ok() || !SetNonBlocking(fds[1]).ok()) {
    ::close(fds[0]);
    ::close(fds[1]);
    return Unavailable("wake pipe: O_NONBLOCK failed");
  }
  wake_pipe_[0] = fds[0];
  wake_pipe_[1] = fds[1];
  return Status::Ok();
}

void NetPump::Wake() {
  if (wake_pipe_[1] < 0) return;
  const uint8_t token = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  (void)!::write(wake_pipe_[1], &token, 1);
}

void NetPump::AdoptConnectionAsync(int fd) {
  adopt_queue_.Push(fd);
  Wake();
}

Result<uint16_t> NetPump::ListenTcp(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Unavailable(std::string("socket: ") + strerror(errno));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (options_.reuse_port) {
    // Multi-pump listener distribution: every pump binds the same port and
    // the kernel spreads incoming connections across the listeners.
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
      Status err =
          Unavailable(std::string("SO_REUSEPORT: ") + strerror(errno));
      ::close(fd);
      return err;
    }
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, options_.listen_backlog) < 0) {
    Status err = Unavailable(std::string("bind/listen: ") + strerror(errno));
    ::close(fd);
    return err;
  }
  if (Status s = SetNonBlocking(fd); !s.ok()) {
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    Status err = Unavailable(std::string("getsockname: ") + strerror(errno));
    ::close(fd);
    return err;
  }
  listeners_.push_back(fd);
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Status NetPump::ListenUnix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return InvalidArgument("unix socket path too long");
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Unavailable(std::string("socket: ") + strerror(errno));
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, options_.listen_backlog) < 0) {
    Status err = Unavailable(std::string("bind/listen: ") + strerror(errno));
    ::close(fd);
    return err;
  }
  if (Status s = SetNonBlocking(fd); !s.ok()) {
    ::close(fd);
    return s;
  }
  listeners_.push_back(fd);
  unix_paths_.push_back(path);
  return Status::Ok();
}

Status NetPump::AdoptConnection(int fd) {
  if (Status s = SetNonBlocking(fd); !s.ok()) return s;
  auto conn = std::make_unique<Connection>(options_.max_frame_bytes);
  conn->fd = fd;
  connections_.push_back(std::move(conn));
  ++stats_.accepted;
  return Status::Ok();
}

void NetPump::StepService() {
  // Step until the service settles: every live coroutine parked at a round
  // boundary already resumed, remaining parks await remote input.
  for (;;) {
    const size_t before = service_->stats().resumes;
    const bool more = service_->Step();
    if (!more || service_->stats().resumes == before) break;
  }
  CollectResults();
}

void NetPump::CollectResults() {
  for (SessionResult& result : service_->TakeResults()) {
    auto it = by_session_.find(result.id);
    if (it != by_session_.end()) {
      it->second->session_done = true;
      by_session_.erase(it);
    }
    results_.push_back(std::move(result));
  }
}

void NetPump::SendAdminReply(Connection* conn, const char* label,
                             const std::string& text) {
  Channel::Message reply{Party::kAlice,
                         std::vector<uint8_t>(text.begin(), text.end()),
                         label};
  ByteWriter writer;
  WriteMessageFrame(reply, &writer);
  const std::vector<uint8_t>& bytes = writer.bytes();
  conn->outbuf.insert(conn->outbuf.end(), bytes.begin(), bytes.end());
  ++stats_.frames_out;
}

void NetPump::HandleStatQuery(Connection* conn) {
  ++pump_metrics_.stat_requests;
  std::string text;
  if (stat_exposition_) {
    text = stat_exposition_();
  } else {
    // Default: this pump's own shard. The pump thread is the service's
    // driving thread, so the LIVE metric blocks are safe to read here and
    // fresher than any published snapshot. Rate lines ride LAST — the v2
    // suffix a v1 parser never reaches (see obs/export.h version rule).
    obs::ExpositionWriter writer;
    AppendServiceExposition(service_->metrics(), service_->stats(), &writer);
    obs::AppendPumpMetrics(pump_metrics_, writer);
    obs::AppendRates(service_->CurrentRates(), writer);
    text = writer.Take();
  }
  SendAdminReply(conn, kStatReplyLabel, text);
}

void NetPump::HandleTraceQuery(Connection* conn) {
  ++pump_metrics_.trace_requests;
  std::string text;
  if (trace_exposition_) {
    text = trace_exposition_();
  } else {
    text = obs::FormatTraceExposition(service_->tracer().SnapshotCompleted(),
                                      "server");
  }
  SendAdminReply(conn, kTraceReplyLabel, text);
}

void NetPump::HandleFrame(Connection* conn, Channel::Message message) {
  ++stats_.frames_in;
  if (IsStatQueryMessage(message)) {
    // Admin traffic: answered inline, invisible to the session layer (no
    // pre-hello budget, no flood gate, never delivered to a transcript).
    HandleStatQuery(conn);
    return;
  }
  if (IsTraceQueryMessage(message)) {
    HandleTraceQuery(conn);
    return;
  }
  if (conn->session_id == 0) {
    if (++conn->frames_before_session >
        options_.max_frames_before_session ||
        !IsHelloMessage(message)) {
      FailConnection(conn, /*protocol_error=*/true);
      return;
    }
    Result<HelloSpec> hello = ParseHelloMessage(message);
    if (!hello.ok()) {
      FailConnection(conn, /*protocol_error=*/true);
      return;
    }
    std::shared_ptr<const SetOfSets> set =
        service_->SharedSetById(hello.value().set_id);
    if (set == nullptr) {
      FailConnection(conn, /*protocol_error=*/true);
      return;
    }
    auto [server_end, client_end] = Endpoint::LoopbackPair();
    SessionSpec spec;
    spec.label = "net:" + std::to_string(conn->fd);
    spec.role = SessionRole::kAliceHalf;
    spec.protocol = hello.value().protocol;
    spec.params = hello.value().params;
    spec.alice = std::move(set);
    spec.known_d = hello.value().known_d;
    // Trace context from a v3 hello: the service tags its spans with the
    // client's id so both halves of the session merge into one timeline.
    spec.trace_id = hello.value().trace_id;
    spec.mirror = std::make_shared<Endpoint>(std::move(server_end));
    conn->mirror_peer = std::make_shared<Endpoint>(std::move(client_end));
    conn->session_id = service_->Submit(std::move(spec));
    by_session_.emplace(conn->session_id, conn);
    return;
  }
  if (conn->session_done) {
    // Traffic past the session's end is a protocol violation.
    FailConnection(conn, /*protocol_error=*/true);
    return;
  }
  if (++conn->frames_since_step > kMaxFramesPerStep) {
    FailConnection(conn, /*protocol_error=*/true);
    return;
  }
  if (conn->last_send_ns != 0) {
    pump_metrics_.conn_round_trip.Record(obs::NowNanos() -
                                         conn->last_send_ns);
    conn->last_send_ns = 0;
  }
  if (!service_->DeliverRemote(conn->session_id, std::move(message))) {
    FailConnection(conn, /*protocol_error=*/true);
  }
}

void NetPump::HandleReadable(Connection* conn) {
  // One reusable read buffer for the whole (single-threaded) pump — no
  // per-wakeup allocation.
  std::vector<uint8_t>& buf = read_buf_;
  buf.resize(options_.read_chunk_bytes);
  for (;;) {
    ssize_t n = ::read(conn->fd, buf.data(), buf.size());
    if (n > 0) {
      stats_.bytes_in += static_cast<size_t>(n);
      conn->decoder.Feed(buf.data(), static_cast<size_t>(n));
      Channel::Message message;
      while (!conn->closing && conn->decoder.Next(&message)) {
        HandleFrame(conn, std::move(message));
      }
      if (conn->decoder.failed() && !conn->closing) {
        ++pump_metrics_.frame_decode_failures;
        FailConnection(conn, /*protocol_error=*/true);
      }
      if (conn->closing) return;
      if (static_cast<size_t>(n) < buf.size()) return;  // Drained.
      continue;
    }
    if (n == 0) {
      // EOF: decided after the service digests the frames read above (the
      // final verdict may be sitting in this very chunk).
      conn->eof = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    FailConnection(conn, /*protocol_error=*/false);
    return;
  }
}

void NetPump::DrainMirror(Connection* conn) {
  if (conn->mirror_peer == nullptr) return;
  // Respect the backpressure cap: leave frames queued in the endpoint once
  // the write buffer is full (the ping-pong protocols have at most one
  // message in flight, so the queue stays tiny).
  Channel::Message message;
  bool wrote = false;
  while (conn->outbuf_pending() < options_.max_outbuf_bytes &&
         conn->mirror_peer->Poll(&message)) {
    ByteWriter writer;
    WriteMessageFrame(message, &writer);
    const std::vector<uint8_t>& bytes = writer.bytes();
    conn->outbuf.insert(conn->outbuf.end(), bytes.begin(), bytes.end());
    ++stats_.frames_out;
    wrote = true;
  }
  if (wrote) {
    conn->last_send_ns = obs::NowNanos();
    pump_metrics_.outbuf_high_watermark =
        std::max(pump_metrics_.outbuf_high_watermark, conn->outbuf_pending());
  }
}

void NetPump::FlushWrites(Connection* conn) {
  while (conn->outbuf_pending() > 0) {
    ssize_t n = ::write(conn->fd, conn->outbuf.data() + conn->outbuf_off,
                        conn->outbuf_pending());
    if (n > 0) {
      conn->outbuf_off += static_cast<size_t>(n);
      stats_.bytes_out += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    FailConnection(conn, /*protocol_error=*/false);
    return;
  }
  conn->outbuf.clear();
  conn->outbuf_off = 0;
}

void NetPump::FailConnection(Connection* conn, bool protocol_error) {
  if (conn->closing) return;
  conn->closing = true;
  if (protocol_error) ++stats_.protocol_errors;
  if (conn->session_id != 0 && !conn->session_done) {
    ++stats_.disconnects;
    service_->CancelSession(
        conn->session_id,
        Unavailable(protocol_error ? "peer protocol violation"
                                   : "peer disconnected"));
    by_session_.erase(conn->session_id);
    conn->session_done = true;
  }
  CollectResults();
}

void NetPump::CloseConnection(size_t index) {
  Connection* conn = connections_[index].get();
  if (conn->session_id != 0) by_session_.erase(conn->session_id);
  if (conn->fd >= 0) ::close(conn->fd);
  ++stats_.closed;
  connections_.erase(connections_.begin() + static_cast<ptrdiff_t>(index));
}

size_t NetPump::PumpOnce(int timeout_ms) {
  // Adopt fds handed off by other threads (multi-pump distribution) before
  // building the poll set, so they are watched this very pass.
  adopt_queue_.DrainInto([this](int&& fd) {
    if (!AdoptConnection(fd).ok()) ::close(fd);
  });
  std::vector<pollfd> fds;
  fds.reserve(listeners_.size() + connections_.size() + 1);
  for (int fd : listeners_) fds.push_back(pollfd{fd, POLLIN, 0});
  for (const std::unique_ptr<Connection>& conn : connections_) {
    short events = 0;
    if (conn->outbuf_pending() >= options_.max_outbuf_bytes) {
      ++stats_.backpressure_stalls;  // Input-gated until the client reads.
    } else if (!conn->closing && !conn->eof) {
      events |= POLLIN;
    }
    if (conn->outbuf_pending() > 0) events |= POLLOUT;
    fds.push_back(pollfd{conn->fd, events, 0});
  }
  // Connections accepted below are appended to connections_ and must not
  // be matched against this pass's pollfd array.
  const size_t polled_connections = connections_.size();
  // The wake pipe rides last: a foreign thread's Wake() (shard mailbox
  // push, adopted fd, shutdown) interrupts a long poll instead of waiting
  // out the timeout.
  size_t wake_index = fds.size();
  if (wake_pipe_[0] >= 0) fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
  int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) return 0;  // EINTR et al.; the caller just pumps again.
  // Duration of the post-poll processing burst (read + step + write), i.e.
  // how long a wakeup keeps the pump away from poll(2). Timeouts with no
  // events are not recorded — they measure the timeout, not the pump.
  const uint64_t wake_start = ready > 0 ? obs::NowNanos() : 0;

  size_t handled = 0;
  if (wake_pipe_[0] >= 0 && (fds[wake_index].revents & POLLIN) != 0) {
    ++handled;
    uint8_t drain[64];
    while (::read(wake_pipe_[0], drain, sizeof drain) > 0) {
    }
  }
  // Accept new connections.
  for (size_t i = 0; i < listeners_.size(); ++i) {
    if ((fds[i].revents & POLLIN) == 0) continue;
    ++handled;
    for (;;) {
      int fd = ::accept(listeners_[i], nullptr, nullptr);
      if (fd < 0) break;
      if (!AdoptConnection(fd).ok()) ::close(fd);
    }
  }
  // Feed readable connections (index into connections_ is stable here:
  // closes happen at the end of the pass).
  for (size_t i = 0; i < polled_connections; ++i) {
    const pollfd& pfd = fds[listeners_.size() + i];
    Connection* conn = connections_[i].get();
    if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) {
      ++handled;
      // Drain whatever the peer wrote before hanging up; the EOF verdict
      // is passed after the service digests it.
      if (pfd.revents & POLLIN) HandleReadable(conn);
      conn->eof = true;
      continue;
    }
    if (pfd.revents & POLLIN) {
      ++handled;
      HandleReadable(conn);
    }
  }

  // Advance the sessions fed above, then serialize their output.
  StepService();
  for (const std::unique_ptr<Connection>& conn : connections_) {
    conn->frames_since_step = 0;
  }
  // Now judge EOFs: a peer that hung up while its session is still live
  // disconnected mid-protocol.
  for (const std::unique_ptr<Connection>& conn : connections_) {
    if (conn->eof && !conn->closing && conn->session_id != 0 &&
        !conn->session_done) {
      FailConnection(conn.get(), /*protocol_error=*/false);
    } else if (conn->eof && !conn->closing && conn->session_id == 0) {
      // Connected and left without ever completing a hello.
      FailConnection(conn.get(), /*protocol_error=*/false);
    }
  }
  for (size_t i = 0; i < connections_.size(); ++i) {
    Connection* conn = connections_[i].get();
    if (!conn->closing) DrainMirror(conn);
    FlushWrites(conn);
  }
  // Close finished connections whose output is fully flushed (or failed
  // ones immediately).
  for (size_t i = connections_.size(); i-- > 0;) {
    Connection* conn = connections_[i].get();
    const bool drained =
        conn->outbuf_pending() == 0 &&
        (conn->mirror_peer == nullptr || conn->mirror_peer->pending() == 0);
    // An EOF'd-but-done connection still flushes: the peer may have
    // half-closed (shutdown(SHUT_WR)) and be waiting to read the final
    // frames; a dead peer fails the write and closes via `closing`.
    if (conn->closing || (conn->session_done && drained)) {
      CloseConnection(i);
    }
  }
  if (wake_start != 0) {
    pump_metrics_.poll_wake.Record(obs::NowNanos() - wake_start);
    metrics_dirty_ = true;
  }
  MaybePublishPumpMetrics();
  return handled;
}

void NetPump::MaybePublishPumpMetrics() {
  if (!metrics_dirty_) return;
  const uint64_t now = obs::NowNanos();
  constexpr uint64_t kPublishIntervalNs = 50'000'000;
  const bool idle = connections_.empty();
  if (!idle && now - last_metrics_publish_ns_ < kPublishIntervalNs) return;
  last_metrics_publish_ns_ = now;
  metrics_dirty_ = false;
  std::lock_guard<std::mutex> lock(published_mu_);
  published_metrics_ = pump_metrics_;
}

obs::PumpMetrics NetPump::SnapshotPumpMetrics() const {
  std::lock_guard<std::mutex> lock(published_mu_);
  return published_metrics_;
}

void NetPump::DrainConnections(int poll_timeout_ms) {
  while (!connections_.empty()) {
    PumpOnce(poll_timeout_ms);
  }
}

std::vector<SessionResult> NetPump::TakeResults() {
  return std::move(results_);
}

}  // namespace setrec
