#include "net/net_pump.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <mutex>
#include <utility>

#include "net/wire.h"
#include "obs/clock.h"
#include "obs/trace_text.h"
#include "util/serialization.h"

namespace setrec {

namespace {

/// See Connection::frames_since_step. 4 leaves generous slack over the
/// honest maximum (one in-flight protocol message).
constexpr size_t kMaxFramesPerStep = 4;

// Poller token space: 0 is the wake pipe, small integers are listeners,
// and connections draw monotonically from kConnTokenBase up (tokens are
// never reused, so a recycled fd number can't alias a stale registration
// or a stale timer).
constexpr uint64_t kWakeToken = 0;
constexpr uint64_t kListenerTokenBase = 1;
constexpr uint64_t kConnTokenBase = uint64_t{1} << 16;

// Timer-wheel user_data: (connection token << 2) | type. Accept-resume
// carries no token.
constexpr uint64_t kTimerHandshake = 0;
constexpr uint64_t kTimerIdle = 1;
constexpr uint64_t kTimerShedLinger = 2;
constexpr uint64_t kTimerAcceptResume = 3;

/// Accept token bucket window (see NetPumpOptions::accept_rate_per_sec).
constexpr uint64_t kAcceptWindowNs = 100'000'000;

/// How long a shed connection may linger flushing its busy frame before
/// the wheel force-closes it (a peer that never reads must not pin a fd).
constexpr uint64_t kShedLingerNs = 1'000'000'000;

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Unavailable(std::string("fcntl(O_NONBLOCK): ") + strerror(errno));
  }
  return Status::Ok();
}

}  // namespace

/// Per-connection state: the fd, the inbound frame decoder, the session's
/// mirror peer (outbound frames queue here until serialized), and the
/// outgoing byte buffer.
struct NetPump::Connection {
  int fd = -1;
  /// Poller registration token and key into NetPump::connections_.
  uint64_t token = 0;
  /// Interest mask currently registered with the poller.
  uint32_t interest = 0;
  FrameDecoder decoder;
  /// The pump-held half of the session's mirror pair; null before hello.
  std::shared_ptr<Endpoint> mirror_peer;
  uint64_t session_id = 0;
  bool session_done = false;
  bool closing = false;
  /// Admission control refused this connection: it carries only a busy
  /// frame and closes once it flushes (or the linger timer fires).
  bool shedding = false;
  /// In this pass's touched_ work list.
  bool touched = false;
  /// Peer sent EOF. Judged only after the service has consumed every frame
  /// that arrived before it: an EOF behind the final verdict is a clean
  /// goodbye, an EOF with the session still live is a disconnect.
  bool eof = false;
  std::vector<uint8_t> outbuf;
  size_t outbuf_off = 0;
  size_t frames_before_session = 0;
  /// Timestamp of the last protocol frame serialized toward the peer;
  /// cleared when the peer's answer arrives (per-conn round-trip metric).
  uint64_t last_send_ns = 0;
  /// Protocol frames delivered since the service last stepped. Strict
  /// half-duplex means an honest client has at most ONE protocol message
  /// in flight (plus the hello); a client streaming frames faster than
  /// the session consumes them is flooding, and gets dropped before its
  /// transcript can grow without bound.
  size_t frames_since_step = 0;
  // Wheel timers (0 = not armed). Handshake runs hello-less connections
  // out of town; idle reaps byte-silent sessions; shed linger bounds how
  // long a refused connection may hold its fd.
  TimerWheel::TimerId handshake_timer = 0;
  TimerWheel::TimerId idle_timer = 0;
  TimerWheel::TimerId shed_timer = 0;

  explicit Connection(size_t max_frame_bytes) : decoder(max_frame_bytes) {}
  size_t outbuf_pending() const { return outbuf.size() - outbuf_off; }
};

NetPump::NetPump(SyncService* service, NetPumpOptions options)
    : service_(service),
      options_(options),
      poller_(MakePoller(options.poller)),
      wheel_(obs::NowNanos()),
      next_token_(kConnTokenBase) {
  // Eager self-pipe: Wake()/AdoptConnectionAsync may be called from any
  // thread, so the fds must exist before the pump is shared. On the
  // (unlikely) pipe failure the pump still works — cross-thread wakes then
  // ride on the caller's poll timeout.
  (void)EnsureWakePipe();
  if (wake_pipe_[0] >= 0) {
    (void)poller_->Add(wake_pipe_[0], Poller::kRead, kWakeToken);
  }
  pump_metrics_.poller_backends |=
      1u << static_cast<uint32_t>(poller_->kind());
  // A networked service answers TRACE?, so traced/slow sessions must be
  // retained even when --trace-slow never armed the tracer's stderr dump.
  service_->tracer().EnableCapture(service_->options().trace_ring_capacity);
}

NetPump::~NetPump() {
  for (const auto& [token, conn] : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  for (int fd : listeners_) ::close(fd);
  for (const std::string& path : unix_paths_) ::unlink(path.c_str());
  adopt_queue_.DrainInto([](int&& fd) { ::close(fd); });
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

Status NetPump::EnsureWakePipe() {
  if (wake_pipe_[0] >= 0) return Status::Ok();  // Constructor-only path.
  int fds[2];
  if (::pipe(fds) != 0) {
    return Unavailable(std::string("pipe: ") + strerror(errno));
  }
  if (!SetNonBlocking(fds[0]).ok() || !SetNonBlocking(fds[1]).ok()) {
    ::close(fds[0]);
    ::close(fds[1]);
    return Unavailable("wake pipe: O_NONBLOCK failed");
  }
  wake_pipe_[0] = fds[0];
  wake_pipe_[1] = fds[1];
  return Status::Ok();
}

void NetPump::Wake() {
  if (wake_pipe_[1] < 0) return;
  const uint8_t token = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  (void)!::write(wake_pipe_[1], &token, 1);
}

void NetPump::AdoptConnectionAsync(int fd) {
  adopt_queue_.Push(fd);
  Wake();
}

Result<uint16_t> NetPump::ListenTcp(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Unavailable(std::string("socket: ") + strerror(errno));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (options_.reuse_port) {
    // Multi-pump listener distribution: every pump binds the same port and
    // the kernel spreads incoming connections across the listeners.
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
      Status err =
          Unavailable(std::string("SO_REUSEPORT: ") + strerror(errno));
      ::close(fd);
      return err;
    }
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, options_.listen_backlog) < 0) {
    Status err = Unavailable(std::string("bind/listen: ") + strerror(errno));
    ::close(fd);
    return err;
  }
  if (Status s = SetNonBlocking(fd); !s.ok()) {
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    Status err = Unavailable(std::string("getsockname: ") + strerror(errno));
    ::close(fd);
    return err;
  }
  if (Status s = poller_->Add(fd, Poller::kRead,
                              kListenerTokenBase + listeners_.size());
      !s.ok()) {
    ::close(fd);
    return s;
  }
  listeners_.push_back(fd);
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Status NetPump::ListenUnix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return InvalidArgument("unix socket path too long");
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Unavailable(std::string("socket: ") + strerror(errno));
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, options_.listen_backlog) < 0) {
    Status err = Unavailable(std::string("bind/listen: ") + strerror(errno));
    ::close(fd);
    return err;
  }
  if (Status s = SetNonBlocking(fd); !s.ok()) {
    ::close(fd);
    return s;
  }
  if (Status s = poller_->Add(fd, Poller::kRead,
                              kListenerTokenBase + listeners_.size());
      !s.ok()) {
    ::close(fd);
    return s;
  }
  listeners_.push_back(fd);
  unix_paths_.push_back(path);
  return Status::Ok();
}

Status NetPump::AdoptConnection(int fd) {
  if (Status s = SetNonBlocking(fd); !s.ok()) return s;
  auto owned = std::make_unique<Connection>(options_.max_frame_bytes);
  Connection* conn = owned.get();
  conn->fd = fd;
  conn->token = next_token_++;
  // Load-aware admission: over the cap, the connection exists only to
  // carry an explicit "busy, retry-after" frame — cheaper for everyone
  // than an accept-queue stall the client can't distinguish from loss.
  const bool shed =
      options_.admission_max_sessions != 0 &&
      connections_.size() - shed_live_ >= options_.admission_max_sessions;
  const uint32_t interest = shed ? Poller::kWrite : Poller::kRead;
  if (Status s = poller_->Add(fd, interest, conn->token); !s.ok()) {
    return s;  // Caller still owns (and closes) the fd.
  }
  conn->interest = interest;
  connections_.emplace(conn->token, std::move(owned));
  ++stats_.accepted;
  if (shed) {
    StartShed(conn);
  } else {
    ArmHandshakeTimer(conn);
  }
  Touch(conn);
  return Status::Ok();
}

void NetPump::Touch(Connection* conn) {
  if (conn->touched) return;
  conn->touched = true;
  touched_.push_back(conn);
}

void NetPump::StartShed(Connection* conn) {
  conn->shedding = true;
  ++shed_live_;
  ByteWriter writer;
  WriteMessageFrame(MakeBusyMessage(options_.busy_retry_after_ms), &writer);
  const std::vector<uint8_t>& bytes = writer.bytes();
  conn->outbuf.insert(conn->outbuf.end(), bytes.begin(), bytes.end());
  ++stats_.frames_out;
  ++stats_.admissions_rejected;
  ++pump_metrics_.admissions_rejected;
  metrics_dirty_ = true;
  conn->shed_timer =
      wheel_.Schedule(kShedLingerNs, (conn->token << 2) | kTimerShedLinger);
}

void NetPump::ArmHandshakeTimer(Connection* conn) {
  if (options_.handshake_timeout_ms == 0) return;
  if (conn->handshake_timer != 0) wheel_.Cancel(conn->handshake_timer);
  conn->handshake_timer =
      wheel_.Schedule(uint64_t{options_.handshake_timeout_ms} * 1'000'000,
                      (conn->token << 2) | kTimerHandshake);
}

void NetPump::RearmIdleTimer(Connection* conn) {
  if (options_.idle_timeout_ms == 0 || conn->session_id == 0 ||
      conn->closing) {
    return;
  }
  if (conn->idle_timer != 0) wheel_.Cancel(conn->idle_timer);
  conn->idle_timer =
      wheel_.Schedule(uint64_t{options_.idle_timeout_ms} * 1'000'000,
                      (conn->token << 2) | kTimerIdle);
}

void NetPump::OnTimer(uint64_t data) {
  const uint64_t type = data & 3u;
  if (type == kTimerAcceptResume) {
    ResumeListeners();
    return;
  }
  auto it = connections_.find(data >> 2);
  if (it == connections_.end()) return;  // Raced a close; stale fire.
  Connection* conn = it->second.get();
  switch (type) {
    case kTimerHandshake:
      conn->handshake_timer = 0;
      if (!conn->closing && conn->session_id == 0 && !conn->shedding) {
        ++stats_.handshake_timeouts;
        ++pump_metrics_.handshake_timeouts;
        metrics_dirty_ = true;
        FailConnection(conn, /*protocol_error=*/false);
      }
      break;
    case kTimerIdle:
      conn->idle_timer = 0;
      if (!conn->closing) {
        ++stats_.idle_timeouts;
        ++pump_metrics_.idle_timeouts;
        metrics_dirty_ = true;
        FailConnection(conn, /*protocol_error=*/false);
      }
      break;
    case kTimerShedLinger:
      conn->shed_timer = 0;
      if (!conn->closing) {
        conn->closing = true;
        Touch(conn);
      }
      break;
    default:
      break;
  }
}

bool NetPump::AcceptBudgetOk(uint64_t now_ns) {
  if (options_.accept_rate_per_sec == 0) return true;
  if (now_ns - accept_window_start_ns_ >= kAcceptWindowNs) {
    accept_window_start_ns_ = now_ns;
    accept_budget_ =
        std::max<uint64_t>(1, options_.accept_rate_per_sec / 10);
  }
  if (accept_budget_ == 0) return false;
  --accept_budget_;
  return true;
}

void NetPump::PauseListeners() {
  if (listeners_paused_) return;
  listeners_paused_ = true;
  for (size_t i = 0; i < listeners_.size(); ++i) {
    (void)poller_->Modify(listeners_[i], 0, kListenerTokenBase + i);
  }
}

void NetPump::ResumeListeners() {
  if (!listeners_paused_) return;
  listeners_paused_ = false;
  for (size_t i = 0; i < listeners_.size(); ++i) {
    (void)poller_->Modify(listeners_[i], Poller::kRead,
                          kListenerTokenBase + i);
  }
}

void NetPump::AcceptFrom(size_t index) {
  if (index >= listeners_.size()) return;
  for (;;) {
    const uint64_t now = obs::NowNanos();
    if (!AcceptBudgetOk(now)) {
      // Budget exhausted: park the listeners and let the wheel re-enable
      // them at the window boundary. The kernel backlog absorbs the burst.
      PauseListeners();
      const uint64_t elapsed = now - accept_window_start_ns_;
      const uint64_t delay =
          elapsed >= kAcceptWindowNs ? 1 : kAcceptWindowNs - elapsed;
      wheel_.Schedule(delay, kTimerAcceptResume);
      return;
    }
    int fd = ::accept(listeners_[index], nullptr, nullptr);
    if (fd < 0) {
      // Refund the unconsumed budget token.
      if (options_.accept_rate_per_sec != 0) ++accept_budget_;
      return;
    }
    if (!AdoptConnection(fd).ok()) ::close(fd);
  }
}

void NetPump::StepService() {
  // Step until the service settles: every live coroutine parked at a round
  // boundary already resumed, remaining parks await remote input.
  for (;;) {
    const size_t before = service_->stats().resumes;
    const bool more = service_->Step();
    if (!more || service_->stats().resumes == before) break;
  }
  CollectResults();
}

void NetPump::CollectResults() {
  for (SessionResult& result : service_->TakeResults()) {
    auto it = by_session_.find(result.id);
    if (it != by_session_.end()) {
      it->second->session_done = true;
      // The finish phase must see this connection even though no fd event
      // woke it: its final frames sit in the mirror.
      Touch(it->second);
      by_session_.erase(it);
    }
    results_.push_back(std::move(result));
  }
}

void NetPump::SendAdminReply(Connection* conn, const char* label,
                             const std::string& text) {
  Channel::Message reply{Party::kAlice,
                         std::vector<uint8_t>(text.begin(), text.end()),
                         label};
  ByteWriter writer;
  WriteMessageFrame(reply, &writer);
  const std::vector<uint8_t>& bytes = writer.bytes();
  conn->outbuf.insert(conn->outbuf.end(), bytes.begin(), bytes.end());
  ++stats_.frames_out;
}

void NetPump::HandleStatQuery(Connection* conn) {
  ++pump_metrics_.stat_requests;
  std::string text;
  if (stat_exposition_) {
    text = stat_exposition_();
  } else {
    // Default: this pump's own shard. The pump thread is the service's
    // driving thread, so the LIVE metric blocks are safe to read here and
    // fresher than any published snapshot. Rate lines ride LAST — the v2
    // suffix a v1 parser never reaches (see obs/export.h version rule).
    obs::ExpositionWriter writer;
    AppendServiceExposition(service_->metrics(), service_->stats(), &writer);
    obs::AppendPumpMetrics(pump_metrics_, writer);
    obs::AppendRates(service_->CurrentRates(), writer);
    text = writer.Take();
  }
  SendAdminReply(conn, kStatReplyLabel, text);
}

void NetPump::HandleTraceQuery(Connection* conn) {
  ++pump_metrics_.trace_requests;
  std::string text;
  if (trace_exposition_) {
    text = trace_exposition_();
  } else {
    text = obs::FormatTraceExposition(service_->tracer().SnapshotCompleted(),
                                      "server");
  }
  SendAdminReply(conn, kTraceReplyLabel, text);
}

void NetPump::HandleFrame(Connection* conn, Channel::Message message) {
  ++stats_.frames_in;
  if (IsStatQueryMessage(message)) {
    // Admin traffic: answered inline, invisible to the session layer (no
    // pre-hello budget, no flood gate, never delivered to a transcript).
    // It IS liveness though: an operator console holding a hello-less
    // connection open must not be reaped as a handshake straggler.
    HandleStatQuery(conn);
    if (conn->session_id == 0) ArmHandshakeTimer(conn);
    return;
  }
  if (IsTraceQueryMessage(message)) {
    HandleTraceQuery(conn);
    if (conn->session_id == 0) ArmHandshakeTimer(conn);
    return;
  }
  if (conn->session_id == 0) {
    if (++conn->frames_before_session >
        options_.max_frames_before_session ||
        !IsHelloMessage(message)) {
      FailConnection(conn, /*protocol_error=*/true);
      return;
    }
    Result<HelloSpec> hello = ParseHelloMessage(message);
    if (!hello.ok()) {
      FailConnection(conn, /*protocol_error=*/true);
      return;
    }
    std::shared_ptr<const SetOfSets> set =
        service_->SharedSetById(hello.value().set_id);
    if (set == nullptr) {
      FailConnection(conn, /*protocol_error=*/true);
      return;
    }
    auto [server_end, client_end] = Endpoint::LoopbackPair();
    SessionSpec spec;
    spec.label = "net:" + std::to_string(conn->fd);
    spec.role = SessionRole::kAliceHalf;
    spec.protocol = hello.value().protocol;
    spec.params = hello.value().params;
    spec.alice = std::move(set);
    spec.known_d = hello.value().known_d;
    // Trace context from a v3 hello: the service tags its spans with the
    // client's id so both halves of the session merge into one timeline.
    spec.trace_id = hello.value().trace_id;
    spec.mirror = std::make_shared<Endpoint>(std::move(server_end));
    conn->mirror_peer = std::make_shared<Endpoint>(std::move(client_end));
    conn->session_id = service_->Submit(std::move(spec));
    by_session_.emplace(conn->session_id, conn);
    // Hello completed: the handshake clock retires and the idle clock
    // takes over the connection's lifecycle.
    if (conn->handshake_timer != 0) {
      wheel_.Cancel(conn->handshake_timer);
      conn->handshake_timer = 0;
    }
    RearmIdleTimer(conn);
    return;
  }
  if (conn->session_done) {
    // Traffic past the session's end is a protocol violation.
    FailConnection(conn, /*protocol_error=*/true);
    return;
  }
  if (++conn->frames_since_step > kMaxFramesPerStep) {
    FailConnection(conn, /*protocol_error=*/true);
    return;
  }
  if (conn->last_send_ns != 0) {
    pump_metrics_.conn_round_trip.Record(obs::NowNanos() -
                                         conn->last_send_ns);
    conn->last_send_ns = 0;
  }
  if (!service_->DeliverRemote(conn->session_id, std::move(message))) {
    FailConnection(conn, /*protocol_error=*/true);
  }
}

void NetPump::HandleReadable(Connection* conn) {
  if (conn->shedding) return;  // Shed connections only flush and close.
  // One reusable read buffer for the whole (single-threaded) pump — no
  // per-wakeup allocation.
  std::vector<uint8_t>& buf = read_buf_;
  buf.resize(options_.read_chunk_bytes);
  for (;;) {
    ssize_t n = ::read(conn->fd, buf.data(), buf.size());
    if (n > 0) {
      stats_.bytes_in += static_cast<size_t>(n);
      RearmIdleTimer(conn);
      conn->decoder.Feed(buf.data(), static_cast<size_t>(n));
      Channel::Message message;
      while (!conn->closing && conn->decoder.Next(&message)) {
        HandleFrame(conn, std::move(message));
      }
      if (conn->decoder.failed() && !conn->closing) {
        ++pump_metrics_.frame_decode_failures;
        FailConnection(conn, /*protocol_error=*/true);
      }
      if (conn->closing) return;
      if (static_cast<size_t>(n) < buf.size()) return;  // Drained.
      continue;
    }
    if (n == 0) {
      // EOF: decided after the service digests the frames read above (the
      // final verdict may be sitting in this very chunk).
      conn->eof = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    FailConnection(conn, /*protocol_error=*/false);
    return;
  }
}

void NetPump::DrainMirror(Connection* conn) {
  if (conn->mirror_peer == nullptr) return;
  // Respect the backpressure cap: leave frames queued in the endpoint once
  // the write buffer is full (the ping-pong protocols have at most one
  // message in flight, so the queue stays tiny).
  Channel::Message message;
  bool wrote = false;
  while (conn->outbuf_pending() < options_.max_outbuf_bytes &&
         conn->mirror_peer->Poll(&message)) {
    ByteWriter writer;
    WriteMessageFrame(message, &writer);
    const std::vector<uint8_t>& bytes = writer.bytes();
    conn->outbuf.insert(conn->outbuf.end(), bytes.begin(), bytes.end());
    ++stats_.frames_out;
    wrote = true;
  }
  if (wrote) {
    conn->last_send_ns = obs::NowNanos();
    pump_metrics_.outbuf_high_watermark =
        std::max(pump_metrics_.outbuf_high_watermark, conn->outbuf_pending());
  }
}

void NetPump::FlushWrites(Connection* conn) {
  bool wrote = false;
  while (conn->outbuf_pending() > 0) {
    // MSG_NOSIGNAL: a client that vanished mid-flush must surface as
    // EPIPE (handled by FailConnection below), not SIGPIPE the pump.
    ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->outbuf_off,
                       conn->outbuf_pending(), MSG_NOSIGNAL);
    if (n > 0) {
      conn->outbuf_off += static_cast<size_t>(n);
      stats_.bytes_out += static_cast<size_t>(n);
      wrote = true;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    FailConnection(conn, /*protocol_error=*/false);
    return;
  }
  if (conn->outbuf_pending() == 0) {
    conn->outbuf.clear();
    conn->outbuf_off = 0;
  }
  // Outbound progress is liveness too: a client slowly consuming a large
  // table is not idle.
  if (wrote) RearmIdleTimer(conn);
}

void NetPump::FailConnection(Connection* conn, bool protocol_error) {
  if (conn->closing) return;
  conn->closing = true;
  Touch(conn);
  if (protocol_error) ++stats_.protocol_errors;
  if (conn->session_id != 0 && !conn->session_done) {
    ++stats_.disconnects;
    service_->CancelSession(
        conn->session_id,
        Unavailable(protocol_error ? "peer protocol violation"
                                   : "peer disconnected"));
    by_session_.erase(conn->session_id);
    conn->session_done = true;
  }
  CollectResults();
}

void NetPump::CloseConnection(Connection* conn) {
  if (conn->handshake_timer != 0) wheel_.Cancel(conn->handshake_timer);
  if (conn->idle_timer != 0) wheel_.Cancel(conn->idle_timer);
  if (conn->shed_timer != 0) wheel_.Cancel(conn->shed_timer);
  if (conn->session_id != 0) by_session_.erase(conn->session_id);
  if (conn->shedding && shed_live_ > 0) --shed_live_;
  (void)poller_->Remove(conn->fd);
  if (conn->fd >= 0) ::close(conn->fd);
  ++stats_.closed;
  connections_.erase(conn->token);  // Frees conn.
}

void NetPump::UpdateInterest(Connection* conn) {
  uint32_t want = 0;
  if (!conn->closing) {
    if (conn->outbuf_pending() > 0) want |= Poller::kWrite;
    const bool gated = conn->outbuf_pending() >= options_.max_outbuf_bytes;
    if (gated) ++stats_.backpressure_stalls;
    if (!gated && !conn->eof && !conn->shedding) want |= Poller::kRead;
  }
  if (want != conn->interest) {
    if (poller_->Modify(conn->fd, want, conn->token).ok()) {
      conn->interest = want;
    }
  }
}

size_t NetPump::PumpOnce(int timeout_ms) {
  // Adopt fds handed off by other threads (multi-pump distribution) before
  // waiting, so they are watched this very pass.
  adopt_queue_.DrainInto([this](int&& fd) {
    if (!AdoptConnection(fd).ok()) ::close(fd);
  });
  // Clamp the wait to the wheel's next deadline so timeouts fire on time;
  // and don't block at all if work is already queued (a direct
  // AdoptConnection outside the loop leaves its connection touched).
  const uint64_t now = obs::NowNanos();
  int wait_ms = timeout_ms;
  const uint64_t deadline = wheel_.NextDeadlineNs();
  if (deadline != TimerWheel::kNoDeadline) {
    const uint64_t delta_ms =
        deadline > now ? (deadline - now + 999'999) / 1'000'000 : 0;
    const int clamped = delta_ms > (uint64_t{1} << 30)
                            ? (1 << 30)
                            : static_cast<int>(delta_ms);
    if (wait_ms < 0 || clamped < wait_ms) wait_ms = clamped;
  }
  if (!touched_.empty()) wait_ms = 0;
  // Satellite fix (was: "timeouts with no events are not recorded"): the
  // away histogram covers EVERY gap between leaving the poller and
  // re-entering it, so a pump stalled in processing is always visible.
  if (away_mark_ns_ != 0) {
    pump_metrics_.away_from_poll.Record(now - away_mark_ns_);
    metrics_dirty_ = true;
  }
  events_.clear();
  Result<size_t> waited = poller_->Wait(wait_ms, &events_);
  const size_t ready = waited.ok() ? waited.value() : 0;
  const uint64_t wake_ns = obs::NowNanos();
  away_mark_ns_ = wake_ns;
  heartbeat_.Beat(wake_ns);
  ++pump_metrics_.poll_wakeups;
  pump_metrics_.ready_per_wakeup.Record(ready);
  // poll_wake keeps its original meaning: the processing burst after a
  // wakeup WITH events (timeout-only passes measure the timeout).
  const uint64_t wake_start = ready > 0 ? wake_ns : 0;

  size_t handled = 0;
  for (const PollerEvent& event : events_) {
    if (event.token == kWakeToken) {
      ++handled;
      uint8_t drain[64];
      while (::read(wake_pipe_[0], drain, sizeof drain) > 0) {
      }
      continue;
    }
    if (event.token < kConnTokenBase) {
      ++handled;
      AcceptFrom(static_cast<size_t>(event.token - kListenerTokenBase));
      continue;
    }
    auto it = connections_.find(event.token);
    if (it == connections_.end()) continue;  // Closed earlier this pass.
    Connection* conn = it->second.get();
    Touch(conn);
    ++handled;
    if (event.hangup) {
      // Drain whatever the peer wrote before hanging up; the EOF verdict
      // is passed after the service digests it.
      if (event.readable) HandleReadable(conn);
      conn->eof = true;
      continue;
    }
    if (event.readable) HandleReadable(conn);
    // Writable-only events: the finish phase flushes every touched conn.
  }
  // Fire due timers: handshake/idle reaps, shed lingers, accept refills.
  wheel_.Advance(obs::NowNanos(), [this](uint64_t data) { OnTimer(data); });
  pump_metrics_.timers_fired = wheel_.fired();
  pump_metrics_.timer_cascades = wheel_.cascades();

  // Advance the sessions fed above, then serialize their output.
  StepService();
  // Live sessions can produce output regardless of which fds woke us
  // (lease releases, cross-shard mailbox work), so they always join the
  // pass. Pre-hello idlers never do — per-pass cost is O(events + live
  // sessions + fired timers), independent of total connection count.
  for (const auto& [id, conn] : by_session_) Touch(conn);

  // Finish phase. Index loop: FailConnection/CollectResults may append
  // newly-affected connections mid-walk and they must finish too.
  for (size_t i = 0; i < touched_.size(); ++i) {
    Connection* conn = touched_[i];
    conn->frames_since_step = 0;
    // Judge EOFs now that the service digested everything before them: a
    // peer gone with its session live (or never opened) is a disconnect.
    if (conn->eof && !conn->closing &&
        (conn->session_id == 0 || !conn->session_done)) {
      FailConnection(conn, /*protocol_error=*/false);
    }
    if (!conn->closing) DrainMirror(conn);
    FlushWrites(conn);
    const bool drained =
        conn->outbuf_pending() == 0 &&
        (conn->mirror_peer == nullptr || conn->mirror_peer->pending() == 0);
    // An EOF'd-but-done connection still flushes: the peer may have
    // half-closed (shutdown(SHUT_WR)) and be waiting to read the final
    // frames; a dead peer fails the write and closes via `closing`.
    if (conn->closing || ((conn->session_done || conn->shedding) && drained)) {
      CloseConnection(conn);
    } else {
      UpdateInterest(conn);
      conn->touched = false;
    }
  }
  touched_.clear();
  if (wake_start != 0) {
    pump_metrics_.poll_wake.Record(obs::NowNanos() - wake_start);
    metrics_dirty_ = true;
  }
  MaybePublishPumpMetrics();
  return handled;
}

void NetPump::MaybePublishPumpMetrics() {
  if (!metrics_dirty_) return;
  const uint64_t now = obs::NowNanos();
  constexpr uint64_t kPublishIntervalNs = 50'000'000;
  const bool idle = connections_.empty();
  if (!idle && now - last_metrics_publish_ns_ < kPublishIntervalNs) return;
  last_metrics_publish_ns_ = now;
  metrics_dirty_ = false;
  std::lock_guard<std::mutex> lock(published_mu_);
  published_metrics_ = pump_metrics_;
}

obs::PumpMetrics NetPump::SnapshotPumpMetrics() const {
  std::lock_guard<std::mutex> lock(published_mu_);
  return published_metrics_;
}

void NetPump::DrainConnections(int poll_timeout_ms) {
  while (!connections_.empty()) {
    PumpOnce(poll_timeout_ms);
  }
}

std::vector<SessionResult> NetPump::TakeResults() {
  return std::move(results_);
}

}  // namespace setrec
