#ifndef SETREC_NET_STREAM_PARTY_H_
#define SETREC_NET_STREAM_PARTY_H_

#include <cstdint>
#include <optional>
#include <string>

#include "core/protocol.h"
#include "net/wire.h"
#include "transport/channel.h"
#include "util/status.h"

namespace setrec {

/// Blocking connect helpers (client side / tests). The returned fd is
/// owned by the caller.
Result<int> ConnectTcp(const std::string& host, uint16_t port);
Result<int> ConnectUnix(const std::string& path);

/// Writes one message as a wire frame to `fd` (blocking, write-all).
Status WriteFrameToFd(int fd, const Channel::Message& message);

/// Sends the session hello (see net/wire.h) on a fresh connection.
Status SendHello(int fd, const HelloSpec& spec);

/// Admin round-trip: sends a "STAT?" frame and blocks for the server's
/// "STAT" reply, returning its text payload (the versioned exposition —
/// see docs/OBSERVABILITY.md). Works on a fresh connection (no hello
/// needed) or interleaved between protocol turns the caller owns.
Result<std::string> QueryStatsOverFd(int fd);

/// Runs Bob's half of `protocol` over a connected stream: local sends are
/// framed onto `fd` as they happen, peer frames are read (blocking) and
/// appended to `*channel`, which ends up holding the full transcript —
/// byte-identical to a direct Reconcile's for the same inputs and seeds.
/// Call SendHello first when the peer is a NetPump server. Blocks the
/// calling thread until the protocol completes or the stream breaks
/// (kUnavailable on EOF/error, kParseError on a malformed frame).
Result<SsrOutcome> RunBobHalfOverFd(const SetsOfSetsProtocol& protocol,
                                    const SetOfSets& bob,
                                    std::optional<size_t> known_d, int fd,
                                    Channel* channel);

}  // namespace setrec

#endif  // SETREC_NET_STREAM_PARTY_H_
