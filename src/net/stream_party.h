#ifndef SETREC_NET_STREAM_PARTY_H_
#define SETREC_NET_STREAM_PARTY_H_

#include <cstdint>
#include <optional>
#include <string>

#include "core/protocol.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "transport/channel.h"
#include "util/status.h"

namespace setrec {

/// Blocking connect helpers (client side / tests). The returned fd is
/// owned by the caller.
Result<int> ConnectTcp(const std::string& host, uint16_t port);
Result<int> ConnectUnix(const std::string& path);

/// Writes one message as a wire frame to `fd` (blocking, write-all).
Status WriteFrameToFd(int fd, const Channel::Message& message);

/// Sends the session hello (see net/wire.h) on a fresh connection.
Status SendHello(int fd, const HelloSpec& spec);

/// Drains frames the peer already delivered (non-blocking) and returns the
/// retry-after hint if a well-formed busy frame is among them. For client
/// paths whose WRITE just failed: a shedding server sends its busy frame
/// and closes without ever reading, so the client's hello or next protocol
/// write can fail with EPIPE before the client reads the refusal sitting
/// in its receive queue. RunBobHalfOverFd consults this internally;
/// callers of bare SendHello should too before reporting a write error.
std::optional<uint32_t> PendingBusyHintOnFd(int fd);

/// Admin round-trip: sends a "STAT?" frame and blocks for the server's
/// "STAT" reply, returning its text payload (the versioned exposition —
/// see docs/OBSERVABILITY.md). Works on a fresh connection (no hello
/// needed) or interleaved between protocol turns the caller owns.
/// Fails closed — kParseError — on an exposition whose version line is
/// neither v1 nor v2 (a reply this client cannot claim to understand)
/// and on replies larger than the admin frame ceiling.
Result<std::string> QueryStatsOverFd(int fd);

/// Admin round-trip for "TRACE?": returns the server's recent completed
/// traces as `# setrec-trace v1` text (obs/trace_text.h). Same fail-closed
/// rules as QueryStatsOverFd (unknown version line, oversized reply).
Result<std::string> QueryTracesOverFd(int fd);

/// Runs Bob's half of `protocol` over a connected stream: local sends are
/// framed onto `fd` as they happen, peer frames are read (blocking) and
/// appended to `*channel`, which ends up holding the full transcript —
/// byte-identical to a direct Reconcile's for the same inputs and seeds.
/// Call SendHello first when the peer is a NetPump server. Blocks the
/// calling thread until the protocol completes or the stream breaks
/// (kUnavailable on EOF/error, kParseError on a malformed frame).
///
/// A server shedding load answers the hello with a "busy, retry-after"
/// frame (net/wire.h kBusyLabel) instead of protocol traffic; the run then
/// returns kUnavailable and, when `busy_retry_after_ms` is non-null, stores
/// the server's retry hint there (left untouched otherwise — zero it first
/// to tell "busy" apart from other unavailability). A malformed busy frame
/// is kParseError, fail closed.
///
/// With a non-null `tracer` (and nonzero `trace_id`), the client half
/// records its own spans — compute (local protocol work), send-wait
/// (blocking frame writes), recv-wait (blocked on the server's turn) —
/// into the tracer under `trace_id` as the span session id, so the client
/// timeline can be merged with the server half fetched via TRACE?.
Result<SsrOutcome> RunBobHalfOverFd(const SetsOfSetsProtocol& protocol,
                                    const SetOfSets& bob,
                                    std::optional<size_t> known_d, int fd,
                                    Channel* channel,
                                    obs::SessionTracer* tracer = nullptr,
                                    uint64_t trace_id = 0,
                                    uint32_t* busy_retry_after_ms = nullptr);

}  // namespace setrec

#endif  // SETREC_NET_STREAM_PARTY_H_
