#ifndef SETREC_NET_NET_PUMP_H_
#define SETREC_NET_NET_PUMP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "service/sync_service.h"
#include "transport/endpoint.h"
#include "util/mpsc_queue.h"
#include "util/status.h"

namespace setrec {

struct NetPumpOptions {
  /// Per-frame size ceiling fed to each connection's FrameDecoder.
  size_t max_frame_bytes = 64u << 20;
  /// Backpressure: once a connection's outgoing buffer holds this many
  /// unwritten bytes, the pump stops reading from that fd (so the session
  /// stops advancing) and stops draining the session's mirror endpoint
  /// (frames queue there, bounded by the protocol's one-in-flight-message
  /// ping-pong) until the client drains its socket.
  size_t max_outbuf_bytes = 1u << 20;
  /// Read granularity per POLLIN wakeup.
  size_t read_chunk_bytes = 64u << 10;
  int listen_backlog = 64;
  /// Frames a connection may send before its hello completes a session —
  /// anything above 1 pre-hello is a protocol violation.
  size_t max_frames_before_session = 1;
  /// Sets SO_REUSEPORT on TCP listeners, so N pumps (one per service
  /// shard) can bind the same port and let the kernel spread accepted
  /// connections across them (the multi-pump listener distribution).
  bool reuse_port = false;
};

struct NetPumpStats {
  size_t accepted = 0;
  size_t closed = 0;
  /// Connections dropped for malformed traffic (bad frame, bad hello,
  /// unknown set id, frames for a finished session).
  size_t protocol_errors = 0;
  /// Connections that disconnected with a live session (cancelled).
  size_t disconnects = 0;
  size_t frames_in = 0;
  size_t frames_out = 0;
  size_t bytes_in = 0;
  size_t bytes_out = 0;
  /// Poll iterations where a connection was input-gated by outbuf size.
  size_t backpressure_stalls = 0;
};

/// A non-blocking poll(2) event loop that turns remote byte streams into
/// SyncService half-sessions:
///
///   socket bytes → FrameDecoder → hello: Submit(kAliceHalf session)
///                               → frames: DeliverRemote(session, message)
///   session ctx->Send → mirror Endpoint → DrainToStream → socket bytes
///
/// One session per connection; the server side runs Alice's half of the
/// chosen protocol against the registered shared set named by the client's
/// hello. The pump and service are a single-threaded pair: PumpOnce feeds
/// input, steps the service until it settles, then drains output. See
/// src/net/README.md for the loop and backpressure model.
class NetPump {
 public:
  explicit NetPump(SyncService* service, NetPumpOptions options = {});
  ~NetPump();

  NetPump(const NetPump&) = delete;
  NetPump& operator=(const NetPump&) = delete;

  /// Listens on 0.0.0.0:`port` (0 = ephemeral); returns the bound port.
  Result<uint16_t> ListenTcp(uint16_t port);
  /// Listens on a Unix-domain socket at `path` (unlinked first, and again
  /// on destruction).
  Status ListenUnix(const std::string& path);
  /// Takes ownership of an already-connected stream fd (socketpair tests,
  /// inherited sockets). The fd is switched to non-blocking. Pump thread
  /// only.
  Status AdoptConnection(int fd);

  /// Thread-safe adoption hand-off: queues the fd and interrupts the
  /// pump's poll; the pump adopts it at the top of its next pass. This is
  /// how a multi-pump distributes externally-accepted connections to the
  /// pump that owns the target shard. Any thread.
  void AdoptConnectionAsync(int fd);

  /// Interrupts a blocking poll from another thread (mailbox pushed to the
  /// shard, fd queued, shutdown requested). Any thread.
  void Wake();

  /// One poll + process pass; returns the number of fd events handled
  /// (0 on timeout). `timeout_ms` < 0 blocks until an event.
  size_t PumpOnce(int timeout_ms);

  /// Pumps until no connections remain (listeners stay open; returns when
  /// every accepted connection has finished). Meant for tests/examples
  /// serving a known client count.
  void DrainConnections(int poll_timeout_ms = 100);

  size_t connection_count() const { return connections_.size(); }
  size_t listener_count() const { return listeners_.size(); }
  const NetPumpStats& stats() const { return stats_; }

  /// Live pump metric block. Pump thread only (single-writer, unlocked);
  /// cross-thread readers use SnapshotPumpMetrics().
  const obs::PumpMetrics& pump_metrics() const { return pump_metrics_; }

  /// Copy of the published pump-metric snapshot (refreshed by the pump at
  /// the end of each pass, throttled). Any thread.
  obs::PumpMetrics SnapshotPumpMetrics() const;

  /// Overrides the text returned to a "STAT?" admin frame. By default the
  /// pump exposes its own service's metrics plus its own pump block (safe
  /// live reads: the pump thread IS the service's driving thread); a
  /// multi-pump installs a merged-across-shards builder here. The hook
  /// runs on the pump thread.
  void set_stat_exposition(std::function<std::string()> hook) {
    stat_exposition_ = std::move(hook);
  }

  /// Overrides the text returned to a "TRACE?" admin frame. Default: this
  /// pump's own service tracer, formatted as `# setrec-trace v1` text; a
  /// multi-pump installs a merged-across-shards builder. Pump thread.
  void set_trace_exposition(std::function<std::string()> hook) {
    trace_exposition_ = std::move(hook);
  }

  /// Results drained from the service while pumping, in completion order
  /// (includes any non-remote sessions the shared service finished).
  std::vector<SessionResult> TakeResults();

 private:
  struct Connection;

  void StepService();
  void HandleReadable(Connection* conn);
  void HandleFrame(Connection* conn, Channel::Message message);
  void HandleStatQuery(Connection* conn);
  void HandleTraceQuery(Connection* conn);
  /// Serializes an admin reply frame into `conn`'s outbuf.
  void SendAdminReply(Connection* conn, const char* label,
                      const std::string& text);
  void MaybePublishPumpMetrics();
  void DrainMirror(Connection* conn);
  void FlushWrites(Connection* conn);
  void FailConnection(Connection* conn, bool protocol_error);
  void CloseConnection(size_t index);
  void CollectResults();

  /// Creates the self-pipe poll interruptor (called once, from the
  /// constructor — the fds must be immutable before the pump is shared
  /// across threads, so creation is never deferred to a cross-thread
  /// path).
  Status EnsureWakePipe();

  SyncService* service_;
  NetPumpOptions options_;
  NetPumpStats stats_;
  /// Self-pipe: [0] polled by the pump, [1] written by Wake(). Created
  /// eagerly in the constructor; stays {-1, -1} only if pipe(2) failed
  /// (wakes then degrade to the caller's poll timeout).
  int wake_pipe_[2] = {-1, -1};
  /// Fds handed off by other threads, adopted at the top of PumpOnce.
  MpscQueue<int> adopt_queue_;
  std::vector<int> listeners_;
  std::vector<std::string> unix_paths_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::unordered_map<uint64_t, Connection*> by_session_;
  std::vector<SessionResult> results_;
  /// Reusable read buffer (the pump is single-threaded).
  std::vector<uint8_t> read_buf_;
  /// Live metric block, written only by the pump thread (same single-writer
  /// discipline as stats_); published copies serve cross-thread readers.
  obs::PumpMetrics pump_metrics_;
  uint64_t last_metrics_publish_ns_ = 0;
  bool metrics_dirty_ = false;
  mutable std::mutex published_mu_;
  obs::PumpMetrics published_metrics_;
  std::function<std::string()> stat_exposition_;
  std::function<std::string()> trace_exposition_;
};

}  // namespace setrec

#endif  // SETREC_NET_NET_PUMP_H_
