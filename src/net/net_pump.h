#ifndef SETREC_NET_NET_PUMP_H_
#define SETREC_NET_NET_PUMP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/poller.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "service/sync_service.h"
#include "transport/endpoint.h"
#include "util/mpsc_queue.h"
#include "util/status.h"
#include "util/timer_wheel.h"

namespace setrec {

struct NetPumpOptions {
  /// Per-frame size ceiling fed to each connection's FrameDecoder.
  size_t max_frame_bytes = 64u << 20;
  /// Backpressure: once a connection's outgoing buffer holds this many
  /// unwritten bytes, the pump stops reading from that fd (so the session
  /// stops advancing) and stops draining the session's mirror endpoint
  /// (frames queue there, bounded by the protocol's one-in-flight-message
  /// ping-pong) until the client drains its socket.
  size_t max_outbuf_bytes = 1u << 20;
  /// Read granularity per readable wakeup.
  size_t read_chunk_bytes = 64u << 10;
  int listen_backlog = 64;
  /// Frames a connection may send before its hello completes a session —
  /// anything above 1 pre-hello is a protocol violation.
  size_t max_frames_before_session = 1;
  /// Sets SO_REUSEPORT on TCP listeners, so N pumps (one per service
  /// shard) can bind the same port and let the kernel spread accepted
  /// connections across them (the multi-pump listener distribution).
  bool reuse_port = false;
  /// Readiness backend (net/poller.h). kAuto = SETREC_POLLER env var if
  /// set, else epoll on Linux, else poll(2).
  PollerKind poller = PollerKind::kAuto;
  /// A connection must complete its hello within this window or it is
  /// reaped (counted in handshake_timeouts). 0 disables — half-open
  /// connections then live until EOF, the pre-PR-10 lifecycle.
  uint32_t handshake_timeout_ms = 10'000;
  /// An established session's connection is reaped after this much
  /// byte-level silence (no reads, no writes). 0 disables.
  uint32_t idle_timeout_ms = 120'000;
  /// Accept-rate ceiling per pump (token bucket over 100ms windows);
  /// while exhausted the listeners' read interest is paused and the
  /// timer wheel re-enables it at the window boundary, so a connect storm
  /// queues in the kernel backlog instead of monopolizing the pump.
  /// 0 = unlimited.
  uint32_t accept_rate_per_sec = 0;
  /// Load-aware admission cap: at most this many concurrently admitted
  /// (non-shed) connections per pump. Connections beyond the cap are shed
  /// with a protocol-level busy frame carrying `busy_retry_after_ms` and
  /// closed once it flushes — clients see an explicit "busy, retry-after"
  /// instead of an accept-queue stall. 0 = unbounded.
  size_t admission_max_sessions = 0;
  /// Retry hint carried by the busy frame (wire.h kBusyLabel).
  uint32_t busy_retry_after_ms = 1'000;
};

struct NetPumpStats {
  size_t accepted = 0;
  size_t closed = 0;
  /// Connections dropped for malformed traffic (bad frame, bad hello,
  /// unknown set id, frames for a finished session).
  size_t protocol_errors = 0;
  /// Connections that disconnected with a live session (cancelled).
  size_t disconnects = 0;
  size_t frames_in = 0;
  size_t frames_out = 0;
  size_t bytes_in = 0;
  size_t bytes_out = 0;
  /// Passes where a connection was input-gated by outbuf size.
  size_t backpressure_stalls = 0;
  /// Connections reaped for never completing a hello in time.
  size_t handshake_timeouts = 0;
  /// Established connections reaped for byte-level silence.
  size_t idle_timeouts = 0;
  /// Connections shed with a busy frame by the admission cap.
  size_t admissions_rejected = 0;
};

/// A non-blocking event loop that turns remote byte streams into
/// SyncService half-sessions:
///
///   socket bytes → FrameDecoder → hello: Submit(kAliceHalf session)
///                               → frames: DeliverRemote(session, message)
///   session ctx->Send → mirror Endpoint → DrainToStream → socket bytes
///
/// Readiness comes through the Poller interface (epoll by default — cost
/// O(ready fds), so 10k idle connections are free; poll(2) as the portable
/// fallback; io_uring opt-in). Per-pass work is proportional to touched
/// connections (fd events + live sessions + fired timers), never to the
/// total connection count. Connection lifecycle is timer-driven: a hashed
/// timer wheel reaps handshake stragglers and idle sessions and paces
/// accepts, replacing the old "EOF or never" model.
///
/// One session per connection; the server side runs Alice's half of the
/// chosen protocol against the registered shared set named by the client's
/// hello. The pump and service are a single-threaded pair: PumpOnce feeds
/// input, steps the service until it settles, then drains output. See
/// src/net/README.md for the loop, backpressure, and admission model.
class NetPump {
 public:
  explicit NetPump(SyncService* service, NetPumpOptions options = {});
  ~NetPump();

  NetPump(const NetPump&) = delete;
  NetPump& operator=(const NetPump&) = delete;

  /// Listens on 0.0.0.0:`port` (0 = ephemeral); returns the bound port.
  Result<uint16_t> ListenTcp(uint16_t port);
  /// Listens on a Unix-domain socket at `path` (unlinked first, and again
  /// on destruction).
  Status ListenUnix(const std::string& path);
  /// Takes ownership of an already-connected stream fd (socketpair tests,
  /// inherited sockets). The fd is switched to non-blocking. Pump thread
  /// only. Admission control applies: over the cap the fd is adopted only
  /// to carry a busy frame and close.
  Status AdoptConnection(int fd);

  /// Thread-safe adoption hand-off: queues the fd and interrupts the
  /// pump's poller; the pump adopts it at the top of its next pass. This
  /// is how a multi-pump distributes externally-accepted connections to
  /// the pump that owns the target shard. Any thread.
  void AdoptConnectionAsync(int fd);

  /// Interrupts a blocking Wait from another thread (mailbox pushed to the
  /// shard, fd queued, shutdown requested). Any thread.
  void Wake();

  /// One wait + process pass; returns the number of fd events handled
  /// (0 on timeout). `timeout_ms` < 0 blocks until an event or the next
  /// wheel deadline.
  size_t PumpOnce(int timeout_ms);

  /// Pumps until no connections remain (listeners stay open; returns when
  /// every accepted connection has finished). Meant for tests/examples
  /// serving a known client count.
  void DrainConnections(int poll_timeout_ms = 100);

  size_t connection_count() const { return connections_.size(); }
  size_t listener_count() const { return listeners_.size(); }
  const NetPumpStats& stats() const { return stats_; }

  /// The readiness backend actually in use (after kAuto resolution and
  /// availability fallback).
  PollerKind poller_kind() const { return poller_->kind(); }

  /// Stamped every time the poller returns — the stall watchdog's
  /// liveness signal for the pump thread. Any thread may read.
  const obs::Heartbeat& heartbeat() const { return heartbeat_; }

  /// Live pump metric block. Pump thread only (single-writer, unlocked);
  /// cross-thread readers use SnapshotPumpMetrics().
  const obs::PumpMetrics& pump_metrics() const { return pump_metrics_; }

  /// Copy of the published pump-metric snapshot (refreshed by the pump at
  /// the end of each pass, throttled). Any thread.
  obs::PumpMetrics SnapshotPumpMetrics() const;

  /// Overrides the text returned to a "STAT?" admin frame. By default the
  /// pump exposes its own service's metrics plus its own pump block (safe
  /// live reads: the pump thread IS the service's driving thread); a
  /// multi-pump installs a merged-across-shards builder here. The hook
  /// runs on the pump thread.
  void set_stat_exposition(std::function<std::string()> hook) {
    stat_exposition_ = std::move(hook);
  }

  /// Overrides the text returned to a "TRACE?" admin frame. Default: this
  /// pump's own service tracer, formatted as `# setrec-trace v1` text; a
  /// multi-pump installs a merged-across-shards builder. Pump thread.
  void set_trace_exposition(std::function<std::string()> hook) {
    trace_exposition_ = std::move(hook);
  }

  /// Results drained from the service while pumping, in completion order
  /// (includes any non-remote sessions the shared service finished).
  std::vector<SessionResult> TakeResults();

 private:
  struct Connection;

  void StepService();
  void HandleReadable(Connection* conn);
  void HandleFrame(Connection* conn, Channel::Message message);
  void HandleStatQuery(Connection* conn);
  void HandleTraceQuery(Connection* conn);
  /// Serializes an admin reply frame into `conn`'s outbuf.
  void SendAdminReply(Connection* conn, const char* label,
                      const std::string& text);
  void MaybePublishPumpMetrics();
  void DrainMirror(Connection* conn);
  void FlushWrites(Connection* conn);
  void FailConnection(Connection* conn, bool protocol_error);
  void CloseConnection(Connection* conn);
  void CollectResults();

  /// Adds `conn` to this pass's work list (idempotent). Only touched
  /// connections pay per-pass processing.
  void Touch(Connection* conn);
  /// Accept loop for listener `index`, bounded by the accept budget.
  void AcceptFrom(size_t index);
  bool AcceptBudgetOk(uint64_t now_ns);
  void PauseListeners();
  void ResumeListeners();
  /// Re-registers desired poller interest after a pass touched `conn`.
  void UpdateInterest(Connection* conn);
  /// Marks `conn` for shedding: busy frame queued, write-only, closed
  /// once flushed (or when the linger timer fires).
  void StartShed(Connection* conn);
  void ArmHandshakeTimer(Connection* conn);
  void RearmIdleTimer(Connection* conn);
  /// Timer-wheel fire dispatch (user_data = token<<2 | timer type).
  void OnTimer(uint64_t data);

  /// Creates the self-pipe wakeup interruptor (called once, from the
  /// constructor — the fds must be immutable before the pump is shared
  /// across threads, so creation is never deferred to a cross-thread
  /// path).
  Status EnsureWakePipe();

  SyncService* service_;
  NetPumpOptions options_;
  NetPumpStats stats_;
  std::unique_ptr<Poller> poller_;
  TimerWheel wheel_;
  /// Self-pipe: [0] watched by the poller, [1] written by Wake(). Created
  /// eagerly in the constructor; stays {-1, -1} only if pipe(2) failed
  /// (wakes then degrade to the caller's poll timeout).
  int wake_pipe_[2] = {-1, -1};
  /// Fds handed off by other threads, adopted at the top of PumpOnce.
  MpscQueue<int> adopt_queue_;
  std::vector<int> listeners_;
  std::vector<std::string> unix_paths_;
  bool listeners_paused_ = false;
  /// Accept token bucket (see accept_rate_per_sec).
  uint64_t accept_budget_ = 0;
  uint64_t accept_window_start_ns_ = 0;
  /// Connections keyed by poller token (monotonic, never reused — a
  /// recycled fd number can't alias a stale registration or timer).
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_token_;
  /// Connections currently shed (admission): counted so the cap applies
  /// to admitted connections only.
  size_t shed_live_ = 0;
  std::unordered_map<uint64_t, Connection*> by_session_;
  /// This pass's work list (fd events, fired timers, live sessions).
  std::vector<Connection*> touched_;
  std::vector<PollerEvent> events_;
  std::vector<SessionResult> results_;
  /// Reusable read buffer (the pump is single-threaded).
  std::vector<uint8_t> read_buf_;
  /// Live metric block, written only by the pump thread (same single-writer
  /// discipline as stats_); published copies serve cross-thread readers.
  obs::PumpMetrics pump_metrics_;
  obs::Heartbeat heartbeat_;
  /// Instant the poller last returned; the gap to the next Wait entry is
  /// the away_from_poll histogram (recorded for EVERY pass — the stall
  /// accounting fix).
  uint64_t away_mark_ns_ = 0;
  uint64_t last_metrics_publish_ns_ = 0;
  bool metrics_dirty_ = false;
  mutable std::mutex published_mu_;
  obs::PumpMetrics published_metrics_;
  std::function<std::string()> stat_exposition_;
  std::function<std::string()> trace_exposition_;
};

}  // namespace setrec

#endif  // SETREC_NET_NET_PUMP_H_
