// The portable fallback backend: one ::poll(2) call per Wait over the
// whole registration table. O(watched fds) per wakeup — exactly the cost
// model the epoll/io_uring backends exist to beat — but it runs anywhere
// and keeps the Poller contract honest (the ctest `net` label re-runs
// every suite on this backend).

#include <poll.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/poller.h"

namespace setrec {
namespace internal {
namespace {

class PollPoller final : public Poller {
 public:
  PollerKind kind() const override { return PollerKind::kPoll; }

  Status Add(int fd, uint32_t interest, uint64_t token) override {
    if (index_of_.count(fd) != 0) {
      return InvalidArgument("poller: fd already registered");
    }
    index_of_[fd] = fds_.size();
    pollfd entry{};
    entry.fd = fd;
    entry.events = EventsFor(interest);
    fds_.push_back(entry);
    tokens_.push_back(token);
    return Status::Ok();
  }

  Status Modify(int fd, uint32_t interest, uint64_t token) override {
    auto it = index_of_.find(fd);
    if (it == index_of_.end()) {
      return InvalidArgument("poller: fd not registered");
    }
    fds_[it->second].events = EventsFor(interest);
    tokens_[it->second] = token;
    return Status::Ok();
  }

  Status Remove(int fd) override {
    auto it = index_of_.find(fd);
    if (it == index_of_.end()) {
      return InvalidArgument("poller: fd not registered");
    }
    const size_t index = it->second;
    const size_t last = fds_.size() - 1;
    if (index != last) {
      fds_[index] = fds_[last];
      tokens_[index] = tokens_[last];
      index_of_[fds_[index].fd] = index;
    }
    fds_.pop_back();
    tokens_.pop_back();
    index_of_.erase(it);
    return Status::Ok();
  }

  Result<size_t> Wait(int timeout_ms, std::vector<PollerEvent>* out) override {
    const int ready =
        ::poll(fds_.data(), static_cast<nfds_t>(fds_.size()), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) return size_t{0};
      return Unavailable(std::string("poll: ") + strerror(errno));
    }
    size_t appended = 0;
    for (size_t i = 0; i < fds_.size() && appended < static_cast<size_t>(ready);
         ++i) {
      const short revents = fds_[i].revents;
      if (revents == 0) continue;
      PollerEvent event;
      event.token = tokens_[i];
      event.readable = (revents & POLLIN) != 0;
      event.writable = (revents & POLLOUT) != 0;
      event.hangup = (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out->push_back(event);
      ++appended;
    }
    return appended;
  }

 private:
  static short EventsFor(uint32_t interest) {
    int events = 0;
    if ((interest & kRead) != 0) events |= POLLIN;
    if ((interest & kWrite) != 0) events |= POLLOUT;
    return static_cast<short>(events);
  }

  std::vector<pollfd> fds_;
  std::vector<uint64_t> tokens_;  ///< Parallel to fds_.
  std::unordered_map<int, size_t> index_of_;
};

}  // namespace

std::unique_ptr<Poller> MakePollPoller() {
  return std::make_unique<PollPoller>();
}

}  // namespace internal
}  // namespace setrec
