// The io_uring backend, over raw syscalls (the container has no liburing;
// <linux/io_uring.h> plus io_uring_setup/io_uring_enter is all we need).
//
// Design: level-triggered emulation on ONESHOT IORING_OP_POLL_ADD. Each
// arm gets a fresh backend-internal id as its SQE user_data; the backend
// keeps fd -> {caller token, interest, current id} and id -> fd maps. A
// CQE whose id is not the fd's CURRENT id is stale (the registration was
// modified or removed while the completion was in flight) and is dropped
// on the floor — this makes Modify/Remove race-free without tracking
// in-flight cancellations: IORING_OP_POLL_REMOVE is fire-and-forget, and
// re-arming can never double-deliver under an old mask. After a genuine
// completion the fd re-arms with its current interest, restoring
// level-triggered semantics for the pump.
//
// Wait blocks in io_uring_enter(GETEVENTS) with an EXT_ARG timespec
// timeout (-ETIME simply means "nothing completed"). Ring memory is the
// kernel's single-mmap layout; head/tail are synchronized with
// std::atomic_ref acquire/release, matching the kernel's protocol.

#include "net/poller.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define SETREC_HAVE_URING 1
#endif

#ifdef SETREC_HAVE_URING
#include <linux/io_uring.h>
#include <linux/time_types.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>
#endif

namespace setrec {
namespace internal {

#ifdef SETREC_HAVE_URING
namespace {

int SysUringSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int SysUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags, const void* arg, size_t arg_size) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, arg, arg_size));
}

/// SQE user_data for POLL_REMOVE ops; their CQEs carry no event.
constexpr uint64_t kCancelData = ~uint64_t{0};

constexpr unsigned kSqEntries = 1024;

class UringPoller final : public Poller {
 public:
  static std::unique_ptr<Poller> Create() {
    io_uring_params params{};
    // A CQ far larger than the SQ: every armed poll can complete while we
    // are away from the ring, and dropped CQEs would mean lost wakeups.
    params.flags = IORING_SETUP_CQSIZE;
    params.cq_entries = 4 * kSqEntries;
    const int ring_fd = SysUringSetup(kSqEntries, &params);
    if (ring_fd < 0) return nullptr;
    constexpr uint32_t kNeeded =
        IORING_FEAT_SINGLE_MMAP | IORING_FEAT_NODROP | IORING_FEAT_EXT_ARG;
    if ((params.features & kNeeded) != kNeeded) {
      ::close(ring_fd);
      return nullptr;  // Pre-5.11 kernel: MakePoller falls back to epoll.
    }
    auto poller = std::make_unique<UringPoller>(ring_fd, params);
    if (!poller->MapRings()) return nullptr;
    return poller;
  }

  UringPoller(int ring_fd, const io_uring_params& params)
      : ring_fd_(ring_fd), params_(params) {}

  ~UringPoller() override {
    if (ring_ptr_ != nullptr) ::munmap(ring_ptr_, ring_len_);
    if (sqes_ptr_ != nullptr) {
      ::munmap(sqes_ptr_, params_.sq_entries * sizeof(io_uring_sqe));
    }
    ::close(ring_fd_);
  }

  PollerKind kind() const override { return PollerKind::kUring; }

  Status Add(int fd, uint32_t interest, uint64_t token) override {
    if (registrations_.count(fd) != 0) {
      return InvalidArgument("poller: fd already registered");
    }
    Registration reg;
    reg.token = token;
    reg.interest = interest;
    registrations_.emplace(fd, reg);
    return Arm(fd);
  }

  Status Modify(int fd, uint32_t interest, uint64_t token) override {
    auto it = registrations_.find(fd);
    if (it == registrations_.end()) {
      return InvalidArgument("poller: fd not registered");
    }
    Registration& reg = it->second;
    reg.token = token;
    if (reg.interest == interest) return Status::Ok();
    reg.interest = interest;
    Disarm(&reg);
    return Arm(fd);
  }

  Status Remove(int fd) override {
    auto it = registrations_.find(fd);
    if (it == registrations_.end()) {
      return InvalidArgument("poller: fd not registered");
    }
    Disarm(&it->second);
    registrations_.erase(it);
    return Status::Ok();
  }

  Result<size_t> Wait(int timeout_ms, std::vector<PollerEvent>* out) override {
    if (Status s = Flush(); !s.ok()) return s;
    size_t appended = Reap(out);
    if (appended > 0 || timeout_ms == 0) {
      if (Status s = Flush(); !s.ok()) return s;  // Submit re-arms.
      return appended;
    }
    __kernel_timespec ts{};
    io_uring_getevents_arg arg{};
    unsigned flags = IORING_ENTER_GETEVENTS;
    const void* arg_ptr = nullptr;
    size_t arg_size = 0;
    if (timeout_ms > 0) {
      ts.tv_sec = timeout_ms / 1000;
      ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1000000;
      arg.ts = reinterpret_cast<uint64_t>(&ts);
      flags |= IORING_ENTER_EXT_ARG;
      arg_ptr = &arg;
      arg_size = sizeof(arg);
    }
    const int rc = SysUringEnter(ring_fd_, 0, 1, flags, arg_ptr, arg_size);
    if (rc < 0 && errno != ETIME && errno != EINTR) {
      return Unavailable(std::string("io_uring_enter: ") + strerror(errno));
    }
    appended = Reap(out);
    if (Status s = Flush(); !s.ok()) return s;  // Re-arm before returning.
    return appended;
  }

  bool MapRings() {
    const size_t sq_len =
        params_.sq_off.array + params_.sq_entries * sizeof(uint32_t);
    const size_t cq_len =
        params_.cq_off.cqes + params_.cq_entries * sizeof(io_uring_cqe);
    ring_len_ = sq_len > cq_len ? sq_len : cq_len;
    void* const failed =
        reinterpret_cast<void*>(static_cast<intptr_t>(-1));  // MAP_FAILED
    ring_ptr_ = ::mmap(nullptr, ring_len_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (ring_ptr_ == failed) {
      ring_ptr_ = nullptr;
      return false;
    }
    sqes_ptr_ = ::mmap(nullptr, params_.sq_entries * sizeof(io_uring_sqe),
                       PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                       ring_fd_, IORING_OFF_SQES);
    if (sqes_ptr_ == failed) {
      sqes_ptr_ = nullptr;
      return false;
    }
    char* const ring = static_cast<char*>(ring_ptr_);
    sq_head_ = reinterpret_cast<uint32_t*>(ring + params_.sq_off.head);
    sq_tail_ = reinterpret_cast<uint32_t*>(ring + params_.sq_off.tail);
    sq_mask_ = *reinterpret_cast<uint32_t*>(ring + params_.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<uint32_t*>(ring + params_.sq_off.array);
    cq_head_ = reinterpret_cast<uint32_t*>(ring + params_.cq_off.head);
    cq_tail_ = reinterpret_cast<uint32_t*>(ring + params_.cq_off.tail);
    cq_mask_ = *reinterpret_cast<uint32_t*>(ring + params_.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(ring + params_.cq_off.cqes);
    sqes_ = static_cast<io_uring_sqe*>(sqes_ptr_);
    return true;
  }

 private:
  struct Registration {
    uint64_t token = 0;
    uint32_t interest = 0;
    /// user_data of the currently armed POLL_ADD; 0 when disarmed.
    uint64_t armed_id = 0;
  };

  /// Queues a oneshot POLL_ADD for the fd's current interest under a
  /// fresh id. Interest 0 arms nothing (nothing to report).
  Status Arm(int fd) {
    Registration& reg = registrations_[fd];
    if (reg.interest == 0) return Status::Ok();
    reg.armed_id = next_id_++;
    fd_of_id_[reg.armed_id] = fd;
    io_uring_sqe* sqe = NextSqe();
    if (sqe == nullptr) return Unavailable("io_uring: submission ring stuck");
    sqe->opcode = IORING_OP_POLL_ADD;
    sqe->fd = fd;
    int events = 0;
    if ((reg.interest & kRead) != 0) events |= POLLIN;
    if ((reg.interest & kWrite) != 0) events |= POLLOUT;
    sqe->poll_events = static_cast<uint16_t>(events);
    sqe->user_data = reg.armed_id;
    return Status::Ok();
  }

  /// Forgets the current arm (stale CQEs for it will be dropped) and asks
  /// the kernel to cancel it; -ENOENT on the cancel is expected when the
  /// poll already completed.
  void Disarm(Registration* reg) {
    if (reg->armed_id == 0) return;
    fd_of_id_.erase(reg->armed_id);
    io_uring_sqe* sqe = NextSqe();
    if (sqe != nullptr) {
      sqe->opcode = IORING_OP_POLL_REMOVE;
      sqe->fd = -1;
      sqe->addr = reg->armed_id;
      sqe->user_data = kCancelData;
    }
    reg->armed_id = 0;
  }

  /// Claims the next SQE slot, flushing the ring first if it is full.
  io_uring_sqe* NextSqe() {
    std::atomic_ref<uint32_t> head(*sq_head_);
    std::atomic_ref<uint32_t> tail(*sq_tail_);
    if (tail.load(std::memory_order_relaxed) -
            head.load(std::memory_order_acquire) >=
        params_.sq_entries) {
      if (Status s = Flush(); !s.ok()) return nullptr;
    }
    const uint32_t slot = tail.load(std::memory_order_relaxed);
    const uint32_t index = slot & sq_mask_;
    io_uring_sqe* sqe = &sqes_[index];
    std::memset(sqe, 0, sizeof(*sqe));
    sq_array_[index] = index;
    tail.store(slot + 1, std::memory_order_release);
    ++unsubmitted_;
    return sqe;
  }

  Status Flush() {
    while (unsubmitted_ > 0) {
      const int rc = SysUringEnter(ring_fd_, unsubmitted_, 0, 0, nullptr, 0);
      if (rc < 0) {
        if (errno == EINTR) continue;
        return Unavailable(std::string("io_uring_enter(submit): ") +
                           strerror(errno));
      }
      unsubmitted_ -= static_cast<unsigned>(rc);
    }
    return Status::Ok();
  }

  size_t Reap(std::vector<PollerEvent>* out) {
    std::atomic_ref<uint32_t> head_ref(*cq_head_);
    std::atomic_ref<uint32_t> tail_ref(*cq_tail_);
    uint32_t head = head_ref.load(std::memory_order_relaxed);
    const uint32_t tail = tail_ref.load(std::memory_order_acquire);
    size_t appended = 0;
    for (; head != tail; ++head) {
      const io_uring_cqe& cqe = cqes_[head & cq_mask_];
      const uint64_t id = cqe.user_data;
      if (id == kCancelData) continue;
      auto it = fd_of_id_.find(id);
      if (it == fd_of_id_.end()) continue;  // Stale: modified/removed arm.
      const int fd = it->second;
      fd_of_id_.erase(it);
      Registration& reg = registrations_[fd];
      reg.armed_id = 0;
      PollerEvent event;
      event.token = reg.token;
      if (cqe.res >= 0) {
        // The CQE is a snapshot from arm time; the caller may have drained
        // the fd since (oneshot completions queue while we are away from
        // the ring). Re-sample so the emulation stays level-triggered
        // instead of replaying stale readiness.
        pollfd probe{};
        probe.fd = fd;
        if ((reg.interest & kRead) != 0) probe.events |= POLLIN;
        if ((reg.interest & kWrite) != 0) probe.events |= POLLOUT;
        const int live = ::poll(&probe, 1, 0);
        if (live == 0) {  // No longer ready: drop the stale CQE, re-arm.
          if (Status s = Arm(fd); !s.ok()) break;
          continue;
        }
        const uint32_t revents = live > 0 ? static_cast<uint32_t>(probe.revents)
                                          : static_cast<uint32_t>(cqe.res);
        event.readable = (revents & POLLIN) != 0;
        event.writable = (revents & POLLOUT) != 0;
        event.hangup = (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      } else {
        event.hangup = true;  // The poll itself failed: surface as hangup.
      }
      out->push_back(event);
      ++appended;
      if (Status s = Arm(fd); !s.ok()) break;  // Oneshot fired: re-arm.
    }
    head_ref.store(head, std::memory_order_release);
    return appended;
  }

  int ring_fd_;
  io_uring_params params_;
  void* ring_ptr_ = nullptr;
  size_t ring_len_ = 0;
  void* sqes_ptr_ = nullptr;
  uint32_t* sq_head_ = nullptr;
  uint32_t* sq_tail_ = nullptr;
  uint32_t sq_mask_ = 0;
  uint32_t* sq_array_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  uint32_t* cq_head_ = nullptr;
  uint32_t* cq_tail_ = nullptr;
  uint32_t cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  unsigned unsubmitted_ = 0;
  uint64_t next_id_ = 1;
  std::unordered_map<int, Registration> registrations_;
  std::unordered_map<uint64_t, int> fd_of_id_;
};

}  // namespace

std::unique_ptr<Poller> MakeUringPoller() { return UringPoller::Create(); }

#else  // !SETREC_HAVE_URING

std::unique_ptr<Poller> MakeUringPoller() { return nullptr; }

#endif

}  // namespace internal
}  // namespace setrec
