#ifndef SETREC_NET_POLLER_H_
#define SETREC_NET_POLLER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace setrec {

/// Which readiness backend a Poller runs on. kAuto resolves at
/// construction: SETREC_POLLER if set (how the ctest `net` label runs
/// every suite once per backend without recompiling), else epoll on
/// Linux, else poll. io_uring is explicit opt-in via flag or env.
enum class PollerKind : uint8_t {
  kAuto = 0,
  kPoll = 1,   ///< Portable ::poll(2): O(watched fds) per wakeup.
  kEpoll = 2,  ///< Linux epoll, level-triggered: O(ready fds) per wakeup.
  kUring = 3,  ///< Linux io_uring POLL_ADD (raw syscalls, no liburing).
};

/// One readiness report. `token` is the caller's opaque registration tag
/// (the pump keys connections by token, never by fd, so a recycled fd
/// number can't alias a stale registration).
struct PollerEvent {
  uint64_t token = 0;
  bool readable = false;
  bool writable = false;
  /// Peer hangup or fd error. Backends fold POLLERR/POLLHUP here; the
  /// caller reads to EOF to learn which.
  bool hangup = false;
};

/// Readiness-notification interface behind NetPump. One instance per pump
/// thread; not thread-safe (the pump's cross-thread wakeup is an fd
/// registered like any other, so no backend needs cross-thread state).
///
/// Contract shared by all backends:
///  * Add registers `fd` with an interest mask (kRead|kWrite) and a token;
///    registering an already-registered fd is an error (use Modify).
///  * Modify re-arms interest and may retarget the token. Interest 0 is
///    valid: the fd stays registered but reports nothing (the pump parks
///    backpressured connections this way).
///  * Remove unregisters; the caller closes the fd itself, always AFTER
///    Remove (io_uring holds per-fd kernel state keyed on the fd number).
///  * Wait blocks up to timeout_ms (-1 = forever, 0 = poll-and-return) and
///    appends ready events to `out` (which the caller clears); it returns
///    the number appended. Hangup-only events are reported even when the
///    interest mask is 0 on backends that can't mask them (poll); callers
///    must tolerate spurious events — level-triggered semantics.
class Poller {
 public:
  static constexpr uint32_t kRead = 1u << 0;
  static constexpr uint32_t kWrite = 1u << 1;

  virtual ~Poller() = default;

  /// The backend actually running (never kAuto).
  virtual PollerKind kind() const = 0;

  virtual Status Add(int fd, uint32_t interest, uint64_t token) = 0;
  virtual Status Modify(int fd, uint32_t interest, uint64_t token) = 0;
  virtual Status Remove(int fd) = 0;
  virtual Result<size_t> Wait(int timeout_ms,
                              std::vector<PollerEvent>* out) = 0;
};

/// Stable lowercase backend name ("poll", "epoll", "io_uring"); kAuto maps
/// to "auto". Used in flags, STAT? exposition, and BENCH_service.json.
const char* PollerKindName(PollerKind kind);

/// Parses a backend name as accepted by --poller= and SETREC_POLLER
/// ("auto", "poll", "epoll", "io_uring" or "uring").
Result<PollerKind> ParsePollerKind(std::string_view name);

/// True if `kind` can actually run here (epoll: Linux build; io_uring:
/// kernel accepts io_uring_setup — probed once and cached). kAuto and
/// kPoll are always available.
bool PollerBackendAvailable(PollerKind kind);

/// Builds the backend for `requested`. kAuto consults SETREC_POLLER, then
/// defaults to epoll (io_uring stays explicit opt-in via flag/env). An
/// unavailable request degrades io_uring -> epoll -> poll rather than
/// failing: the caller reads the achieved backend from kind(). Never
/// returns null.
std::unique_ptr<Poller> MakePoller(PollerKind requested);

namespace internal {
/// Backend constructors, exposed for MakePoller and the backend-matrix
/// tests. The uring factory returns null when the kernel refuses.
std::unique_ptr<Poller> MakePollPoller();
std::unique_ptr<Poller> MakeEpollPoller();
std::unique_ptr<Poller> MakeUringPoller();
}  // namespace internal

}  // namespace setrec

#endif  // SETREC_NET_POLLER_H_
