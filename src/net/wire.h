#ifndef SETREC_NET_WIRE_H_
#define SETREC_NET_WIRE_H_

#include <optional>

#include "service/sync_service.h"
#include "transport/channel.h"
#include "util/status.h"

namespace setrec {

/// The first frame a remote client sends on a fresh connection: which
/// registered server set to reconcile against and the full shared problem
/// statement (SsrParams are public knowledge — both parties must hold
/// identical values for the split-party halves to derive identical sketch
/// configurations). Everything after the hello is protocol traffic:
/// Channel::Message frames in the FrameDecoder wire format.
struct HelloSpec {
  SsrProtocolKind protocol = SsrProtocolKind::kNaive;
  /// RegisterSharedSet id of the server-side (Alice) set.
  uint64_t set_id = 0;
  SsrParams params;
  std::optional<size_t> known_d;
  /// Client-generated trace context. 0 = untraced, and the hello is
  /// emitted as v2 — identical bytes to a pre-trace client, so trace
  /// support costs untraced peers nothing. Nonzero ids ride a v3 hello;
  /// the server tags its spans with the id so both halves of the session
  /// merge into one timeline (docs/OBSERVABILITY.md).
  uint64_t trace_id = 0;
};

inline constexpr const char kHelloLabel[] = "hello";

/// Encodes `spec` as a hello frame (label "hello", sender Bob — the client
/// is the recovering party).
Channel::Message MakeHelloMessage(const HelloSpec& spec);

inline bool IsHelloMessage(const Channel::Message& m) {
  return m.label == kHelloLabel;
}

/// Parses a hello frame; kParseError on malformed payload.
[[nodiscard]] Result<HelloSpec> ParseHelloMessage(const Channel::Message& m);

/// Admin frames: a client (or operator tool) sends a "STAT?" frame at any
/// point — before a hello, or interleaved with protocol traffic — and the
/// pump answers immediately with a "STAT" frame whose payload is the
/// versioned text exposition (see docs/OBSERVABILITY.md). Admin frames are
/// invisible to the session layer: they never count against the pre-hello
/// frame budget or the per-step flood gate, and never enter a transcript.
inline constexpr const char kStatQueryLabel[] = "STAT?";
inline constexpr const char kStatReplyLabel[] = "STAT";

/// Encodes a stats query frame (label "STAT?", sender Bob, empty payload).
Channel::Message MakeStatQueryMessage();

inline bool IsStatQueryMessage(const Channel::Message& m) {
  return m.label == kStatQueryLabel;
}
inline bool IsStatReplyMessage(const Channel::Message& m) {
  return m.label == kStatReplyLabel;
}

/// Second admin frame: "TRACE?" asks for the server's recently completed
/// session traces (traced sessions and slow ones); the reply is a "TRACE"
/// frame whose payload is the `# setrec-trace v1` text exposition
/// (obs/trace_text.h). Same admin-frame rules as STAT?.
inline constexpr const char kTraceQueryLabel[] = "TRACE?";
inline constexpr const char kTraceReplyLabel[] = "TRACE";

/// Encodes a trace query frame (label "TRACE?", sender Bob, empty payload).
Channel::Message MakeTraceQueryMessage();

inline bool IsTraceQueryMessage(const Channel::Message& m) {
  return m.label == kTraceQueryLabel;
}
inline bool IsTraceReplyMessage(const Channel::Message& m) {
  return m.label == kTraceReplyLabel;
}

/// Load-shed frame: when admission control refuses a connection, the pump
/// sends "BUSY" (pre-hello — it replaces the session, so it is the only
/// frame the client will ever see on that connection) and closes. The
/// payload is a version byte (1) plus a varint retry hint in milliseconds;
/// clients with --retry-busy back off for retry_after_ms plus jitter and
/// redial. Sender is Alice: the frame originates server-side.
inline constexpr const char kBusyLabel[] = "BUSY";

Channel::Message MakeBusyMessage(uint32_t retry_after_ms);

inline bool IsBusyMessage(const Channel::Message& m) {
  return m.label == kBusyLabel;
}

/// Parses a busy frame's retry hint; kParseError on anything but a
/// well-formed v1 payload (unknown version or trailing bytes fail closed,
/// same rule as every other parser in this file).
[[nodiscard]] Result<uint32_t> ParseBusyMessage(const Channel::Message& m);

}  // namespace setrec

#endif  // SETREC_NET_WIRE_H_
