// The Linux default backend: level-triggered epoll. Wait cost is
// O(ready fds), independent of the watched-set size — the property that
// lets one pump hold 10k idle connections for the price of the few that
// are actually talking.

#include "net/poller.h"

#if defined(__linux__) && __has_include(<sys/epoll.h>)
#define SETREC_HAVE_EPOLL 1
#endif

#ifdef SETREC_HAVE_EPOLL
#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>
#endif

namespace setrec {
namespace internal {

#ifdef SETREC_HAVE_EPOLL
namespace {

class EpollPoller final : public Poller {
 public:
  explicit EpollPoller(int epoll_fd) : epoll_fd_(epoll_fd) {}
  ~EpollPoller() override { ::close(epoll_fd_); }

  PollerKind kind() const override { return PollerKind::kEpoll; }

  Status Add(int fd, uint32_t interest, uint64_t token) override {
    epoll_event event = EventFor(interest, token);
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) < 0) {
      return Unavailable(std::string("epoll_ctl add: ") + strerror(errno));
    }
    ++registered_;
    return Status::Ok();
  }

  Status Modify(int fd, uint32_t interest, uint64_t token) override {
    epoll_event event = EventFor(interest, token);
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) < 0) {
      return Unavailable(std::string("epoll_ctl mod: ") + strerror(errno));
    }
    return Status::Ok();
  }

  Status Remove(int fd) override {
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) < 0) {
      return Unavailable(std::string("epoll_ctl del: ") + strerror(errno));
    }
    if (registered_ > 0) --registered_;
    return Status::Ok();
  }

  Result<size_t> Wait(int timeout_ms, std::vector<PollerEvent>* out) override {
    // Size the kernel-fill buffer to the watched set (floor 64) so a
    // burst where everything is ready still drains in one syscall.
    const size_t want = registered_ < 64 ? 64 : registered_;
    if (buffer_.size() < want) buffer_.resize(want);
    const int ready = ::epoll_wait(epoll_fd_, buffer_.data(),
                                   static_cast<int>(buffer_.size()),
                                   timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) return size_t{0};
      return Unavailable(std::string("epoll_wait: ") + strerror(errno));
    }
    for (int i = 0; i < ready; ++i) {
      const epoll_event& raw = buffer_[static_cast<size_t>(i)];
      PollerEvent event;
      event.token = raw.data.u64;
      event.readable = (raw.events & EPOLLIN) != 0;
      event.writable = (raw.events & EPOLLOUT) != 0;
      event.hangup = (raw.events & (EPOLLERR | EPOLLHUP)) != 0;
      out->push_back(event);
    }
    return static_cast<size_t>(ready);
  }

 private:
  static epoll_event EventFor(uint32_t interest, uint64_t token) {
    epoll_event event{};
    if ((interest & kRead) != 0) event.events |= EPOLLIN;
    if ((interest & kWrite) != 0) event.events |= EPOLLOUT;
    event.data.u64 = token;
    return event;
  }

  int epoll_fd_;
  size_t registered_ = 0;
  std::vector<epoll_event> buffer_;
};

}  // namespace

std::unique_ptr<Poller> MakeEpollPoller() {
  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) return nullptr;
  return std::make_unique<EpollPoller>(epoll_fd);
}

#else  // !SETREC_HAVE_EPOLL

std::unique_ptr<Poller> MakeEpollPoller() { return nullptr; }

#endif

}  // namespace internal
}  // namespace setrec
