#include "setrec/set_reconciler.h"

#include <algorithm>
#include <string>

#include "estimator/l0_estimator.h"
#include "hashing/hash.h"
#include "hashing/random.h"
#include "iblt/iblt.h"
#include "setrec/multiset_codec.h"
#include "util/serialization.h"

namespace setrec {

namespace {

constexpr uint64_t kAttemptTag = 0x73657472ull;  // "setr"

/// One IBLT exchange attempt. Alice sends (fingerprint, IBLT of her set);
/// Bob subtracts his set and peels. `scratch` is reused across retry
/// attempts so repeated decodes do not churn the allocator.
Result<SetReconcileOutcome> IbltAttempt(const std::vector<uint64_t>& alice,
                                        const std::vector<uint64_t>& bob,
                                        size_t d, uint64_t seed,
                                        Channel* channel,
                                        DecodeScratch* scratch) {
  IbltConfig config = IbltConfig::ForDifference(d, seed);
  HashFamily fp_family(seed, /*tag=*/0x66707374ull);  // "fpst"

  // --- Alice's side ---
  Iblt alice_table(config);
  alice_table.InsertBatch(alice);
  ByteWriter writer;
  writer.PutU64(SetFingerprint(alice, fp_family));
  alice_table.Serialize(&writer);
  size_t msg = channel->Send(Party::kAlice, writer.Take(), "iblt");

  // --- Bob's side ---
  ByteReader reader(channel->Receive(msg).payload);
  uint64_t alice_fp = 0;
  if (!reader.GetU64(&alice_fp)) return ParseError("set message truncated");
  Result<Iblt> received = Iblt::Deserialize(&reader, config);
  if (!received.ok()) return received.status();
  Iblt table = std::move(received).value();
  table.EraseBatch(bob);

  Result<IbltDecodeResult64> decoded = table.DecodeU64(scratch);
  if (!decoded.ok()) return decoded.status();

  SetReconcileOutcome outcome;
  outcome.diff.remote_only = std::move(decoded.value().positive);
  outcome.diff.local_only = std::move(decoded.value().negative);
  std::sort(outcome.diff.remote_only.begin(), outcome.diff.remote_only.end());
  std::sort(outcome.diff.local_only.begin(), outcome.diff.local_only.end());
  outcome.recovered = ApplyDifference(bob, outcome.diff);
  if (SetFingerprint(outcome.recovered, fp_family) != alice_fp) {
    return VerificationFailure("recovered set fingerprint mismatch");
  }
  return outcome;
}

}  // namespace

std::vector<uint64_t> ApplyDifference(const std::vector<uint64_t>& base,
                                      const SetDifference& diff) {
  return ApplyDifference(
      base, std::span<const uint64_t>(diff.remote_only),
      std::span<const uint64_t>(diff.local_only));
}

std::vector<uint64_t> ApplyDifference(const std::vector<uint64_t>& base,
                                      std::span<const uint64_t> remote_only,
                                      std::span<const uint64_t> local_only) {
  std::vector<uint64_t> removed(local_only.begin(), local_only.end());
  std::sort(removed.begin(), removed.end());
  std::vector<uint64_t> out;
  out.reserve(base.size() + remote_only.size());
  std::vector<uint64_t> sorted_base = base;
  std::sort(sorted_base.begin(), sorted_base.end());
  // Multiset semantics: remove one occurrence per local_only entry.
  size_t r = 0;
  for (uint64_t e : sorted_base) {
    if (r < removed.size() && removed[r] == e) {
      ++r;
      continue;
    }
    out.push_back(e);
  }
  out.insert(out.end(), remote_only.begin(), remote_only.end());
  std::sort(out.begin(), out.end());
  return out;
}

Result<SetReconcileOutcome> IbltReconcileKnown(
    const std::vector<uint64_t>& alice, const std::vector<uint64_t>& bob,
    size_t d, const SetReconcilerOptions& options, Channel* channel) {
  Status last = DecodeFailure("no attempts made");
  DecodeScratch scratch;
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    uint64_t seed =
        DeriveSeed(options.seed, kAttemptTag + static_cast<uint64_t>(attempt));
    Result<SetReconcileOutcome> outcome =
        IbltAttempt(alice, bob, d, seed, channel, &scratch);
    if (outcome.ok()) {
      outcome.value().attempts = attempt + 1;
      return outcome;
    }
    last = outcome.status();
    if (last.code() == StatusCode::kParseError) return last;  // Not retryable.
  }
  return Exhausted("IBLT set reconciliation failed after retries: " +
                   last.ToString());
}

Result<SetReconcileOutcome> IbltReconcileUnknown(
    const std::vector<uint64_t>& alice, const std::vector<uint64_t>& bob,
    const SetReconcilerOptions& options, Channel* channel) {
  // Round 1 (Bob -> Alice): l0 difference estimator over Bob's set.
  L0Estimator::Params est_params;
  est_params.seed = DeriveSeed(options.seed, /*tag=*/0x65737431ull);  // "est1"
  L0Estimator bob_estimator(est_params);
  bob_estimator.UpdateBatch(bob.data(), bob.size(), 2);
  ByteWriter writer;
  bob_estimator.Serialize(&writer);
  size_t msg = channel->Send(Party::kBob, writer.Take(), "estimator");

  // Alice merges her side and estimates d.
  ByteReader reader(channel->Receive(msg).payload);
  Result<L0Estimator> received = L0Estimator::Deserialize(&reader, est_params);
  if (!received.ok()) return received.status();
  L0Estimator merged = std::move(received).value();
  L0Estimator alice_estimator(est_params);
  alice_estimator.UpdateBatch(alice.data(), alice.size(), 1);
  Status s = merged.Merge(alice_estimator);
  if (!s.ok()) return s;
  size_t d = static_cast<size_t>(
      options.estimate_slack * static_cast<double>(merged.Estimate()));
  d = std::max<size_t>(d, 8);

  // Round 2: the known-d protocol; double d if an attempt fails outright.
  Status last = DecodeFailure("no attempts made");
  DecodeScratch scratch;
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    uint64_t seed = DeriveSeed(
        options.seed, kAttemptTag + 100 + static_cast<uint64_t>(attempt));
    Result<SetReconcileOutcome> outcome =
        IbltAttempt(alice, bob, d, seed, channel, &scratch);
    if (outcome.ok()) {
      outcome.value().attempts = attempt + 1;
      return outcome;
    }
    last = outcome.status();
    if (last.code() == StatusCode::kParseError) return last;
    d *= 2;  // The estimate was low (or unlucky hashing); grow the table.
  }
  return Exhausted("unknown-d set reconciliation failed: " + last.ToString());
}

Result<SetReconcileOutcome> CharPolyReconcile(
    const std::vector<uint64_t>& alice, const std::vector<uint64_t>& bob,
    size_t d, const SetReconcilerOptions& options, Channel* channel) {
  CharPolyReconciler reconciler(d, options.seed);
  Result<std::vector<uint8_t>> message = reconciler.BuildMessage(alice);
  if (!message.ok()) return message.status();
  size_t msg = channel->Send(Party::kAlice, std::move(message).value(),
                             "charpoly");
  Result<SetDifference> diff =
      reconciler.DecodeDifference(channel->Receive(msg).payload, bob);
  if (!diff.ok()) return diff.status();
  SetReconcileOutcome outcome;
  outcome.diff = std::move(diff).value();
  outcome.recovered = ApplyDifference(bob, outcome.diff);
  return outcome;
}

Result<SetReconcileOutcome> MultisetReconcileKnown(
    const std::vector<uint64_t>& alice, const std::vector<uint64_t>& bob,
    size_t d, const SetReconcilerOptions& options, Channel* channel) {
  MultisetCodec codec;
  Result<std::vector<uint64_t>> alice_enc = codec.Encode(alice);
  if (!alice_enc.ok()) return alice_enc.status();
  Result<std::vector<uint64_t>> bob_enc = codec.Encode(bob);
  if (!bob_enc.ok()) return bob_enc.status();
  Result<SetReconcileOutcome> outcome = IbltReconcileKnown(
      alice_enc.value(), bob_enc.value(), d, options, channel);
  if (!outcome.ok()) return outcome.status();
  Result<std::vector<uint64_t>> decoded =
      codec.Decode(outcome.value().recovered);
  if (!decoded.ok()) return decoded.status();
  outcome.value().recovered = std::move(decoded).value();
  return outcome;
}

}  // namespace setrec
