#ifndef SETREC_SETREC_SET_RECONCILER_H_
#define SETREC_SETREC_SET_RECONCILER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "charpoly/charpoly_reconciler.h"
#include "transport/channel.h"
#include "util/status.h"

namespace setrec {

/// One-way set reconciliation: at the end Bob holds Alice's set. These
/// wrappers run the full message exchange over a Channel so every byte and
/// round is accounted for, and verify recovery against a fingerprint of
/// Alice's set (the paper's standard guard against checksum failures),
/// retrying with fresh public coins up to `max_attempts` times.
struct SetReconcilerOptions {
  uint64_t seed = 0;
  int max_attempts = 4;
  /// Safety factor applied to estimator outputs in the unknown-d protocol.
  double estimate_slack = 2.0;
};

/// Outcome of a reconciliation run.
struct SetReconcileOutcome {
  /// Bob's recovered copy of Alice's set (sorted).
  std::vector<uint64_t> recovered;
  /// The decoded difference (Alice-only / Bob-only elements).
  SetDifference diff;
  int attempts = 1;
};

/// Corollary 2.2: known difference bound d, one round, O(d log u) bits.
Result<SetReconcileOutcome> IbltReconcileKnown(
    const std::vector<uint64_t>& alice, const std::vector<uint64_t>& bob,
    size_t d, const SetReconcilerOptions& options, Channel* channel);

/// Corollary 3.2: unknown d, two rounds; Bob first sends the Theorem 3.1
/// l0 set-difference estimator, Alice sizes her IBLT from the estimate.
Result<SetReconcileOutcome> IbltReconcileUnknown(
    const std::vector<uint64_t>& alice, const std::vector<uint64_t>& bob,
    const SetReconcilerOptions& options, Channel* channel);

/// Theorem 2.3: characteristic-polynomial reconciliation, one round,
/// deterministic success given a correct bound d (detects a bad bound).
Result<SetReconcileOutcome> CharPolyReconcile(
    const std::vector<uint64_t>& alice, const std::vector<uint64_t>& bob,
    size_t d, const SetReconcilerOptions& options, Channel* channel);

/// Multiset reconciliation (Section 3.4): elements encoded through
/// MultisetCodec, then reconciled with the IBLT route. Inputs/outputs are
/// multisets (sorted, repeats allowed).
Result<SetReconcileOutcome> MultisetReconcileKnown(
    const std::vector<uint64_t>& alice, const std::vector<uint64_t>& bob,
    size_t d, const SetReconcilerOptions& options, Channel* channel);

/// Applies a decoded difference to `base`: adds remote_only, removes
/// local_only. Returns the sorted result.
std::vector<uint64_t> ApplyDifference(const std::vector<uint64_t>& base,
                                      const SetDifference& diff);

/// Span form, the shape IbltDecodeView64 hands back: identical semantics
/// without materializing the difference into owned vectors first.
std::vector<uint64_t> ApplyDifference(const std::vector<uint64_t>& base,
                                      std::span<const uint64_t> remote_only,
                                      std::span<const uint64_t> local_only);

}  // namespace setrec

#endif  // SETREC_SETREC_SET_RECONCILER_H_
