#ifndef SETREC_SETREC_MULTISET_CODEC_H_
#define SETREC_SETREC_MULTISET_CODEC_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace setrec {

/// Element-space layout shared by every protocol in the library. Reconciled
/// elements must fit in 60 bits (so the characteristic-polynomial path over
/// GF(2^61-1) can always be used); the region above 2^56 is reserved for
/// library markers.
///
///   [0, 2^56)        user elements / encoded multiset pairs
///   [2^56, 2^57)     duplicate-child-set count markers (multisets of sets)
///   [2^57, 2^57+2^48) parent-marked vertex signatures (forest protocol)
inline constexpr uint64_t kUserElementLimit = 1ull << 56;
inline constexpr uint64_t kDuplicateCountBase = 1ull << 56;
inline constexpr uint64_t kParentMarkBase = 1ull << 57;

/// Multiset handling (Section 3.4 of the paper): a multiset is represented
/// as the set of pairs (x, k) — "if an element x occurs in the multiset k
/// times, then (x, k) is an element of the set". We pack the pair as
/// (x << count_bits) | (k - 1). The bounds stay the same (d can only
/// decrease) while the universe grows from u to u * n, exactly as Section
/// 3.4 states.
struct MultisetCodec {
  /// Bits reserved for the count; values must be < 2^(56 - count_bits) and
  /// multiplicities <= 2^count_bits.
  int count_bits = 16;

  uint64_t MaxValue() const { return (kUserElementLimit >> count_bits) - 1; }
  uint64_t MaxCount() const { return 1ull << count_bits; }

  /// Encodes a multiset (any order, repeats allowed) as a set of packed
  /// (value, count) elements, sorted ascending.
  Result<std::vector<uint64_t>> Encode(
      const std::vector<uint64_t>& multiset) const;

  /// Inverse of Encode: expands packed pairs to a sorted multiset.
  Result<std::vector<uint64_t>> Decode(
      const std::vector<uint64_t>& encoded) const;
};

/// Normalizes a parent *multiset* of child sets into a parent set: duplicate
/// child sets are collapsed into one copy carrying a duplicate-count marker
/// element (kDuplicateCountBase + count). A single logical update to one
/// copy of a duplicated child set changes O(1) elements of the normalized
/// form, so difference bounds are preserved up to constants. Child sets must
/// be internally sorted; the result's children are sorted sets.
std::vector<std::vector<uint64_t>> NormalizeParentMultiset(
    std::vector<std::vector<uint64_t>> children);

/// Inverse of NormalizeParentMultiset: expands duplicate-count markers back
/// into repeated child sets. Children without a marker are passed through.
Result<std::vector<std::vector<uint64_t>>> ExpandParentMultiset(
    std::vector<std::vector<uint64_t>> children);

}  // namespace setrec

#endif  // SETREC_SETREC_MULTISET_CODEC_H_
