#include "setrec/multiset_codec.h"

#include <algorithm>
#include <map>

namespace setrec {

Result<std::vector<uint64_t>> MultisetCodec::Encode(
    const std::vector<uint64_t>& multiset) const {
  std::vector<uint64_t> sorted = multiset;
  std::sort(sorted.begin(), sorted.end());
  std::vector<uint64_t> out;
  out.reserve(sorted.size());
  for (size_t i = 0; i < sorted.size();) {
    uint64_t value = sorted[i];
    if (value > MaxValue()) {
      return InvalidArgument("multiset value exceeds codec range");
    }
    size_t j = i;
    while (j < sorted.size() && sorted[j] == value) ++j;
    uint64_t count = j - i;
    if (count > MaxCount()) {
      return InvalidArgument("multiset multiplicity exceeds codec range");
    }
    out.push_back((value << count_bits) | (count - 1));
    i = j;
  }
  return out;
}

Result<std::vector<uint64_t>> MultisetCodec::Decode(
    const std::vector<uint64_t>& encoded) const {
  std::vector<uint64_t> out;
  const uint64_t count_mask = (1ull << count_bits) - 1;
  for (uint64_t packed : encoded) {
    if (packed >= kUserElementLimit) {
      return ParseError("packed multiset element out of range");
    }
    uint64_t value = packed >> count_bits;
    uint64_t count = (packed & count_mask) + 1;
    for (uint64_t k = 0; k < count; ++k) out.push_back(value);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<uint64_t>> NormalizeParentMultiset(
    std::vector<std::vector<uint64_t>> children) {
  std::map<std::vector<uint64_t>, uint64_t> counts;
  for (auto& child : children) counts[std::move(child)] += 1;
  std::vector<std::vector<uint64_t>> out;
  out.reserve(counts.size());
  for (auto& [child, count] : counts) {
    std::vector<uint64_t> annotated = child;
    if (count > 1) {
      annotated.push_back(kDuplicateCountBase + count);
      std::sort(annotated.begin(), annotated.end());
    }
    out.push_back(std::move(annotated));
  }
  return out;
}

Result<std::vector<std::vector<uint64_t>>> ExpandParentMultiset(
    std::vector<std::vector<uint64_t>> children) {
  std::vector<std::vector<uint64_t>> out;
  for (auto& child : children) {
    uint64_t count = 1;
    std::vector<uint64_t> stripped;
    stripped.reserve(child.size());
    for (uint64_t e : child) {
      if (e >= kDuplicateCountBase && e < kParentMarkBase) {
        if (count != 1) return ParseError("multiple duplicate-count markers");
        count = e - kDuplicateCountBase;
        if (count < 2) return ParseError("invalid duplicate-count marker");
      } else {
        stripped.push_back(e);
      }
    }
    for (uint64_t k = 1; k < count; ++k) out.push_back(stripped);
    out.push_back(std::move(stripped));
  }
  return out;
}

}  // namespace setrec
