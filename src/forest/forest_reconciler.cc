#include "forest/forest_reconciler.h"

#include <algorithm>
#include <functional>

#include "core/cascading_protocol.h"
#include "core/protocol.h"
#include "forest/ahu.h"
#include "hashing/random.h"
#include "setrec/multiset_codec.h"
#include "util/serialization.h"

namespace setrec {

namespace {

/// Child-signature multiplicities are capped at 2^8 identical subtrees
/// under one parent; values (48-bit signatures) then exactly fit the codec
/// range (48 + 8 = 56).
constexpr int kChildCountBits = 8;

/// The per-vertex child multiset, encoded as a sorted set:
/// (child signature, count) pairs plus the parent-marked own signature.
/// `child_sigs` is caller-owned scratch, reused across the whole forest so
/// the per-vertex hot loop does not allocate.
Result<ChildSet> VertexChildSet(const RootedForest& forest, uint32_t v,
                                const std::vector<uint64_t>& sigs,
                                const MultisetCodec& codec,
                                std::vector<uint64_t>* child_sigs) {
  child_sigs->clear();
  child_sigs->reserve(forest.Children(v).size());
  for (uint32_t c : forest.Children(v)) child_sigs->push_back(sigs[c]);
  Result<ChildSet> encoded = codec.Encode(*child_sigs);
  if (!encoded.ok()) return encoded.status();
  ChildSet out = std::move(encoded).value();
  out.push_back(kParentMarkBase + sigs[v]);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Result<RootedForest> RebuildForest(
    const std::map<uint64_t, size_t>& vertex_sigs,
    const std::map<std::pair<uint64_t, uint64_t>, size_t>& edge_sigs) {
  size_t n = 0;
  for (const auto& [sig, count] : vertex_sigs) n += count;

  // Per-parent-signature child slots: c_{S,C} = e_{S,C} / k_S.
  std::map<uint64_t, std::vector<std::pair<uint64_t, size_t>>> slots;
  std::map<uint64_t, size_t> consumed;  // Child-sig instances used as slots.
  for (const auto& [edge, count] : edge_sigs) {
    const auto& [parent_sig, child_sig] = edge;
    auto it = vertex_sigs.find(parent_sig);
    if (it == vertex_sigs.end()) {
      return VerificationFailure("rebuild: edge from unknown signature");
    }
    size_t k = it->second;
    if (count % k != 0) {
      return VerificationFailure(
          "rebuild: edge multiplicity not divisible by parent count");
    }
    slots[parent_sig].emplace_back(child_sig, count / k);
    consumed[child_sig] += count;
  }

  // Root counts: instances not consumed as children.
  std::map<uint64_t, size_t> roots;
  for (const auto& [sig, count] : vertex_sigs) {
    size_t used = consumed.count(sig) ? consumed[sig] : 0;
    if (used > count) {
      return VerificationFailure("rebuild: child signature over-consumed");
    }
    if (count - used > 0) roots[sig] = count - used;
  }

  RootedForest forest(n);
  uint32_t next_vertex = 0;
  // Recursive instantiation; the signature dependency relation is acyclic
  // for honest inputs (a tree cannot contain a proper isomorphic copy of
  // itself), but we guard with a depth cap anyway.
  std::function<Result<uint32_t>(uint64_t, size_t)> build =
      [&](uint64_t sig, size_t depth) -> Result<uint32_t> {
    if (depth > n) {
      return VerificationFailure("rebuild: cyclic signature dependency");
    }
    if (next_vertex >= n) {
      return VerificationFailure("rebuild: too many vertices implied");
    }
    uint32_t v = next_vertex++;
    auto it = slots.find(sig);
    if (it != slots.end()) {
      for (const auto& [child_sig, per_parent] : it->second) {
        for (size_t k = 0; k < per_parent; ++k) {
          Result<uint32_t> child = build(child_sig, depth + 1);
          if (!child.ok()) return child.status();
          if (Status s = forest.Attach(child.value(), v); !s.ok()) return s;
        }
      }
    }
    return v;
  };
  for (const auto& [sig, count] : roots) {
    for (size_t k = 0; k < count; ++k) {
      Result<uint32_t> root = build(sig, 1);
      if (!root.ok()) return root.status();
    }
  }
  if (next_vertex != n) {
    return VerificationFailure("rebuild: vertex count mismatch");
  }
  return forest;
}

Result<ForestReconcileOutcome> ForestReconcile(const RootedForest& alice,
                                               const RootedForest& bob,
                                               size_t d, size_t sigma,
                                               uint64_t seed,
                                               Channel* channel) {
  HashFamily sig_family(seed, /*tag=*/0x61687530ull);  // "ahu0"
  std::vector<uint64_t> alice_sigs = AhuSignatures(alice, sig_family);
  std::vector<uint64_t> bob_sigs = AhuSignatures(bob, sig_family);

  auto build_parent = [&](const RootedForest& forest,
                          const std::vector<uint64_t>& sigs)
      -> Result<SetOfSets> {
    SetOfSets children;
    children.reserve(forest.num_vertices());
    size_t max_child = 0;
    MultisetCodec codec{kChildCountBits};
    std::vector<uint64_t> child_sigs_scratch;
    for (uint32_t v = 0; v < forest.num_vertices(); ++v) {
      Result<ChildSet> child =
          VertexChildSet(forest, v, sigs, codec, &child_sigs_scratch);
      if (!child.ok()) return child.status();
      max_child = std::max(max_child, child.value().size());
      children.push_back(std::move(child).value());
    }
    return children;
  };
  Result<SetOfSets> alice_children_r = build_parent(alice, alice_sigs);
  if (!alice_children_r.ok()) return alice_children_r.status();
  Result<SetOfSets> bob_children_r = build_parent(bob, bob_sigs);
  if (!bob_children_r.ok()) return bob_children_r.status();

  // h for the SSR: the largest encoded child multiset (distinct child sigs
  // + parent marker + dup marker). Both parties' forests bound it by their
  // max out-degree, a model parameter.
  size_t h = 2;
  for (const ChildSet& c : alice_children_r.value()) {
    h = std::max(h, c.size() + 1);
  }
  for (const ChildSet& c : bob_children_r.value()) {
    h = std::max(h, c.size() + 1);
  }

  // Each edge update changes the signatures of at most sigma ancestors per
  // side; each changed vertex signature perturbs its own child multiset
  // (parent marker) and its parent's (one encoded pair), so O(d * sigma)
  // total element changes.
  const size_t ssr_d = 6 * d * std::max<size_t>(sigma, 1) + 8;
  SsrParams ssr_params;
  ssr_params.max_child_size = h;
  // The changed elements are concentrated: per update at most sigma+2 child
  // multisets change per side.
  ssr_params.max_differing_children = 2 * d * (sigma + 2) + 4;
  ssr_params.seed = DeriveSeed(seed, /*tag=*/0x66726563ull);  // "frec"
  CascadingProtocol cascade(ssr_params);
  SetOfSets alice_parent =
      NormalizeParentMultiset(std::move(alice_children_r).value());
  SetOfSets bob_parent =
      NormalizeParentMultiset(std::move(bob_children_r).value());
  Channel sub;
  Result<SsrOutcome> ssr =
      cascade.Reconcile(alice_parent, bob_parent, ssr_d, &sub);
  if (!ssr.ok()) return ssr.status();

  // One physical round: the SSR transcript plus Alice's forest-class
  // fingerprint.
  ByteWriter writer;
  writer.PutBytes(PackTranscript(sub));
  writer.PutU64(ForestIsomorphismClass(alice, sig_family));
  size_t msg = channel->Send(Party::kAlice, writer.Take(), "forest");

  // --- Bob: derive vertex/edge signature multisets and rebuild. ---
  Result<SetOfSets> expanded =
      ExpandParentMultiset(std::move(ssr).value().recovered);
  if (!expanded.ok()) return expanded.status();

  std::map<uint64_t, size_t> vertex_sigs;
  std::map<std::pair<uint64_t, uint64_t>, size_t> edge_sigs;
  MultisetCodec codec{kChildCountBits};
  for (const ChildSet& child : expanded.value()) {
    uint64_t parent_sig = 0;
    bool have_parent = false;
    std::vector<uint64_t> encoded_children;
    for (uint64_t e : child) {
      if (e >= kParentMarkBase) {
        if (have_parent) {
          return VerificationFailure("forest: two parent markers in a child");
        }
        parent_sig = e - kParentMarkBase;
        have_parent = true;
      } else {
        encoded_children.push_back(e);
      }
    }
    if (!have_parent) {
      return VerificationFailure("forest: child multiset without marker");
    }
    vertex_sigs[parent_sig] += 1;
    Result<std::vector<uint64_t>> child_sigs = codec.Decode(encoded_children);
    if (!child_sigs.ok()) return child_sigs.status();
    for (uint64_t c : child_sigs.value()) {
      edge_sigs[{parent_sig, c}] += 1;
    }
  }

  Result<RootedForest> rebuilt = RebuildForest(vertex_sigs, edge_sigs);
  if (!rebuilt.ok()) return rebuilt.status();

  // Verify against Alice's forest-class fingerprint from the message.
  ByteReader reader(channel->Receive(msg).payload);
  // Skip the packed sub-transcript (Bob consumed it via the sub-protocol).
  if (!SkipPackedTranscript(&reader)) return ParseError("forest: truncated");
  uint64_t alice_class = 0;
  if (!reader.GetU64(&alice_class)) {
    return ParseError("forest: truncated (class)");
  }
  if (ForestIsomorphismClass(rebuilt.value(), sig_family) != alice_class) {
    return VerificationFailure("forest: isomorphism class mismatch");
  }
  ForestReconcileOutcome outcome{std::move(rebuilt).value(),
                                 channel->rounds(), channel->total_bytes()};
  return outcome;
}

}  // namespace setrec
