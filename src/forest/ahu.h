#ifndef SETREC_FOREST_AHU_H_
#define SETREC_FOREST_AHU_H_

#include <cstdint>
#include <vector>

#include "forest/forest.h"
#include "hashing/hash.h"

namespace setrec {

/// Width of a vertex signature: Section 6 uses Theta(log n)-bit hashes of
/// AHU isomorphism-class labels; 48 bits keep collision probability below
/// n^2 / 2^48 while leaving room for the parent marker in the element space.
inline constexpr int kAhuSignatureBits = 48;

/// Computes the hashed AHU label of every vertex: a leaf's signature is the
/// hash of the empty list; an internal vertex's signature is the hash of
/// the sorted signatures of its children (Aho–Hopcroft–Ullman [2]). Equal
/// signatures <=> isomorphic rooted subtrees (up to hash collisions).
/// O(n log n) time with per-vertex sorting of O(1)-word signatures.
std::vector<uint64_t> AhuSignatures(const RootedForest& forest,
                                    const HashFamily& family);

/// A label for the whole forest's isomorphism class: the order-invariant
/// fingerprint of the multiset of root signatures.
uint64_t ForestIsomorphismClass(const RootedForest& forest,
                                const HashFamily& family);

/// Exact (up to hash collisions) rooted-forest isomorphism test.
bool AreForestsIsomorphic(const RootedForest& a, const RootedForest& b,
                          const HashFamily& family);

}  // namespace setrec

#endif  // SETREC_FOREST_AHU_H_
