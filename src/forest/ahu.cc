#include "forest/ahu.h"

#include <algorithm>

#include "util/serialization.h"

namespace setrec {

namespace {
constexpr uint64_t kSigMask = (1ull << kAhuSignatureBits) - 1;
}  // namespace

std::vector<uint64_t> AhuSignatures(const RootedForest& forest,
                                    const HashFamily& family) {
  const size_t n = forest.num_vertices();
  // Process by decreasing depth so every child is finished before its
  // parent.
  std::vector<uint32_t> order(n);
  std::vector<size_t> depth(n);
  for (uint32_t v = 0; v < n; ++v) {
    order[v] = v;
    depth[v] = forest.Depth(v);
  }
  std::sort(order.begin(), order.end(),
            [&depth](uint32_t a, uint32_t b) { return depth[a] > depth[b]; });

  std::vector<uint64_t> sig(n, 0);
  for (uint32_t v : order) {
    std::vector<uint64_t> child_sigs;
    child_sigs.reserve(forest.Children(v).size());
    for (uint32_t c : forest.Children(v)) child_sigs.push_back(sig[c]);
    std::sort(child_sigs.begin(), child_sigs.end());
    ByteWriter writer;
    for (uint64_t s : child_sigs) writer.PutU64(s);
    sig[v] = family.HashBytes(writer.bytes()) & kSigMask;
  }
  return sig;
}

uint64_t ForestIsomorphismClass(const RootedForest& forest,
                                const HashFamily& family) {
  std::vector<uint64_t> sigs = AhuSignatures(forest, family);
  std::vector<uint64_t> root_sigs;
  for (uint32_t r : forest.Roots()) root_sigs.push_back(sigs[r]);
  return SetFingerprint(root_sigs, family);
}

bool AreForestsIsomorphic(const RootedForest& a, const RootedForest& b,
                          const HashFamily& family) {
  if (a.num_vertices() != b.num_vertices()) return false;
  return ForestIsomorphismClass(a, family) ==
         ForestIsomorphismClass(b, family);
}

}  // namespace setrec
