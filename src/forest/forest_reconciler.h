#ifndef SETREC_FOREST_FOREST_RECONCILER_H_
#define SETREC_FOREST_FOREST_RECONCILER_H_

#include <cstdint>
#include <map>
#include <utility>

#include "forest/forest.h"
#include "transport/channel.h"
#include "util/status.h"

namespace setrec {

/// Result of a one-way forest reconciliation: Bob's forest, isomorphic to
/// Alice's (vertex numbering is the rebuild order, not Alice's).
struct ForestReconcileOutcome {
  RootedForest recovered;
  size_t rounds = 0;
  size_t bytes = 0;
};

/// Rebuilds a rooted forest from the multiset of vertex signatures and the
/// multiset of edge signatures (ordered (parent sig, child sig) pairs) —
/// the constructive argument of Section 6: a signature occurring k times
/// must have its edge group exactly divisible into k identical groups;
/// roots are the signatures left over after all child slots are consumed.
/// Fails (kVerificationFailure) on any inconsistency: non-divisible edge
/// multiplicities, over-consumed child signatures, or a cyclic
/// signature-dependency (impossible for honest inputs).
Result<RootedForest> RebuildForest(
    const std::map<uint64_t, size_t>& vertex_sigs,
    const std::map<std::pair<uint64_t, uint64_t>, size_t>& edge_sigs);

/// Section 6 (Theorem 6.1): one-round rooted-forest reconciliation.
/// Each vertex contributes a child multiset {parent-marked own signature}
/// ∪ {signatures of its children} (signatures are hashed AHU labels); a
/// single edge update changes at most sigma vertex signatures, so the
/// collection undergoes O(d * sigma) element changes and is reconciled as a
/// multiset of multisets with the cascading protocol. Bob then rebuilds
/// Alice's forest from the recovered vertex/edge signature multisets and
/// verifies its isomorphism class against Alice's fingerprint.
///
///   d: bound on forest edge updates; sigma: max tree depth on both sides.
///   Communication O(d sigma log(d sigma) log n) bits, one round,
///   probability >= 2/3 per attempt (amplified internally).
Result<ForestReconcileOutcome> ForestReconcile(const RootedForest& alice,
                                               const RootedForest& bob,
                                               size_t d, size_t sigma,
                                               uint64_t seed,
                                               Channel* channel);

}  // namespace setrec

#endif  // SETREC_FOREST_FOREST_RECONCILER_H_
