#include "forest/forest.h"

#include <algorithm>

namespace setrec {

RootedForest::RootedForest(size_t num_vertices)
    : parent_(num_vertices, kNoParent), children_(num_vertices) {}

std::vector<uint32_t> RootedForest::Roots() const {
  std::vector<uint32_t> roots;
  for (uint32_t v = 0; v < parent_.size(); ++v) {
    if (IsRoot(v)) roots.push_back(v);
  }
  return roots;
}

uint32_t RootedForest::RootOf(uint32_t v) const {
  while (!IsRoot(v)) v = parent_[v];
  return v;
}

Status RootedForest::Attach(uint32_t child, uint32_t parent) {
  if (child >= parent_.size() || parent >= parent_.size()) {
    return InvalidArgument("attach: vertex out of range");
  }
  if (!IsRoot(child)) {
    return InvalidArgument("attach: child must be a root (Section 6 model)");
  }
  if (RootOf(parent) == child) {
    return InvalidArgument("attach: would create a cycle");
  }
  parent_[child] = parent;
  children_[parent].push_back(child);
  std::sort(children_[parent].begin(), children_[parent].end());
  ++num_edges_;
  return Status::Ok();
}

Status RootedForest::Detach(uint32_t v) {
  if (v >= parent_.size()) return InvalidArgument("detach: out of range");
  if (IsRoot(v)) return InvalidArgument("detach: v is already a root");
  std::vector<uint32_t>& siblings = children_[parent_[v]];
  siblings.erase(std::find(siblings.begin(), siblings.end(), v));
  parent_[v] = kNoParent;
  --num_edges_;
  return Status::Ok();
}

size_t RootedForest::Depth(uint32_t v) const {
  size_t depth = 1;
  while (!IsRoot(v)) {
    v = parent_[v];
    ++depth;
  }
  return depth;
}

size_t RootedForest::MaxDepth() const {
  size_t sigma = 0;
  for (uint32_t v = 0; v < parent_.size(); ++v) {
    // Only leaves can realize the maximum, but checking all is O(n * depth)
    // and simpler.
    sigma = std::max(sigma, Depth(v));
  }
  return sigma;
}

RootedForest RootedForest::Random(size_t n, size_t max_depth, double root_prob,
                                  Rng* rng) {
  RootedForest forest(n);
  for (uint32_t v = 1; v < n; ++v) {
    if (rng->Bernoulli(root_prob)) continue;  // Stay a root.
    // A bounded number of tries to find a parent within the depth budget.
    for (int attempt = 0; attempt < 8; ++attempt) {
      uint32_t parent = static_cast<uint32_t>(rng->UniformU64(v));
      if (forest.Depth(parent) < max_depth) {
        (void)forest.Attach(v, parent);
        break;
      }
    }
  }
  return forest;
}

size_t RootedForest::Perturb(size_t count, size_t max_depth, Rng* rng) {
  const size_t n = num_vertices();
  if (n < 2) return 0;
  size_t applied = 0;
  size_t guard = count * 64 + 64;
  while (applied < count && guard-- > 0) {
    if (rng->Bernoulli(0.5) && num_edges_ > 0) {
      // Detach a random non-root.
      uint32_t v = static_cast<uint32_t>(rng->UniformU64(n));
      if (IsRoot(v)) continue;
      (void)Detach(v);
      ++applied;
    } else {
      uint32_t child = static_cast<uint32_t>(rng->UniformU64(n));
      uint32_t parent = static_cast<uint32_t>(rng->UniformU64(n));
      if (child == parent || !IsRoot(child)) continue;
      if (RootOf(parent) == child) continue;
      if (Depth(parent) >= max_depth) continue;
      (void)Attach(child, parent);
      ++applied;
    }
  }
  return applied;
}

}  // namespace setrec
