#ifndef SETREC_FOREST_FOREST_H_
#define SETREC_FOREST_FOREST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hashing/random.h"
#include "util/status.h"

namespace setrec {

/// A forest of rooted trees on vertices 0..n-1, stored as a parent array
/// (the paper's directed-forest view: edges point away from roots). The
/// Section 6 update model is enforced: deleting an edge makes the child a
/// new root; an inserted edge's child must currently be a root, and the
/// insertion must not create a cycle.
class RootedForest {
 public:
  static constexpr uint32_t kNoParent = ~0u;

  /// n isolated roots.
  explicit RootedForest(size_t num_vertices);

  size_t num_vertices() const { return parent_.size(); }
  /// Number of (directed) edges = n - #roots.
  size_t num_edges() const { return num_edges_; }

  uint32_t Parent(uint32_t v) const { return parent_[v]; }
  const std::vector<uint32_t>& Children(uint32_t v) const {
    return children_[v];
  }
  bool IsRoot(uint32_t v) const { return parent_[v] == kNoParent; }
  std::vector<uint32_t> Roots() const;
  uint32_t RootOf(uint32_t v) const;

  /// Inserts the edge parent -> child. `child` must be a root and must not
  /// be an ancestor of `parent` (Section 6's legal insertions).
  Status Attach(uint32_t child, uint32_t parent);

  /// Deletes the edge into v; v becomes a root.
  Status Detach(uint32_t v);

  /// Depth of v (root = 1).
  size_t Depth(uint32_t v) const;
  /// sigma: the maximum depth over all vertices.
  size_t MaxDepth() const;

  /// Random forest: vertices are attached to a uniformly random earlier
  /// vertex whose depth is < max_depth, or stay roots with prob root_prob.
  static RootedForest Random(size_t n, size_t max_depth, double root_prob,
                             Rng* rng);

  /// Applies `count` random forest-preserving edge updates (detach a random
  /// non-root / attach a random root under a vertex of another tree, depth
  /// permitting). Returns the number of updates applied.
  size_t Perturb(size_t count, size_t max_depth, Rng* rng);

  bool operator==(const RootedForest&) const = default;

 private:
  std::vector<uint32_t> parent_;
  std::vector<std::vector<uint32_t>> children_;
  size_t num_edges_ = 0;
};

}  // namespace setrec

#endif  // SETREC_FOREST_FOREST_H_
