#include "estimator/strata_estimator.h"

#include <bit>

#include "hashing/random.h"

namespace setrec {

namespace {
IbltConfig StratumConfig(const StrataEstimator::Params& params, int stratum) {
  IbltConfig config;
  config.cells = params.cells_per_stratum;
  config.num_hashes = 3;
  config.key_width = 8;
  config.seed = DeriveSeed(params.seed,
                           uint64_t{0x73747261} + static_cast<uint64_t>(stratum));  // "stra"
  return config;
}
}  // namespace

StrataEstimator::StrataEstimator(const Params& params)
    : params_(params),
      level_seed_(DeriveSeed(params.seed, /*tag=*/0x6c76736dull)) {  // "lvsm"
  strata_.reserve(static_cast<size_t>(params_.num_strata));
  for (int i = 0; i < params_.num_strata; ++i) {
    strata_.emplace_back(StratumConfig(params_, i));
  }
}

int StrataEstimator::StratumOf(uint64_t x) const {
  uint64_t h = Mix64(x ^ level_seed_);
  int level = std::countr_zero(h);
  return level >= params_.num_strata ? params_.num_strata - 1 : level;
}

void StrataEstimator::Update(uint64_t x, int side) {
  Iblt& stratum = strata_[static_cast<size_t>(StratumOf(x))];
  if (side == 1) {
    stratum.InsertU64(x);
  } else {
    stratum.EraseU64(x);
  }
}

void StrataEstimator::UpdateBatch(const uint64_t* xs, size_t n, int side) {
  // Partition the block by stratum, then hit each stratum IBLT once with a
  // batched update (equivalent to n single-element Updates). The partition
  // buckets are members: clear() keeps their capacity, so every batch after
  // the first runs without touching the allocator.
  batch_scratch_.resize(static_cast<size_t>(params_.num_strata));
  for (auto& bucket : batch_scratch_) bucket.clear();
  for (size_t j = 0; j < n; ++j) {
    batch_scratch_[static_cast<size_t>(StratumOf(xs[j]))].push_back(xs[j]);
  }
  for (size_t i = 0; i < batch_scratch_.size(); ++i) {
    if (batch_scratch_[i].empty()) continue;
    if (side == 1) {
      strata_[i].InsertBatch(batch_scratch_[i]);
    } else {
      strata_[i].EraseBatch(batch_scratch_[i]);
    }
  }
}

Status StrataEstimator::Merge(const StrataEstimator& other) {
  if (other.params_.num_strata != params_.num_strata ||
      other.params_.cells_per_stratum != params_.cells_per_stratum ||
      other.params_.seed != params_.seed) {
    return InvalidArgument("strata merge: mismatched params");
  }
  for (size_t i = 0; i < strata_.size(); ++i) {
    Status s = strata_[i].Add(other.strata_[i]);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

uint64_t StrataEstimator::Estimate() const {
  uint64_t count = 0;
  DecodeScratch scratch;  // One warm workspace for all per-stratum decodes.
  for (int i = params_.num_strata - 1; i >= 0; --i) {
    Result<IbltDecodeResult64> decoded =
        strata_[static_cast<size_t>(i)].DecodeU64(&scratch);
    if (!decoded.ok()) {
      // First undecodable stratum: scale what was recovered above it.
      return count << (i + 1);
    }
    count += decoded.value().positive.size() + decoded.value().negative.size();
  }
  return count;  // Every stratum decoded: the count is (nearly) exact.
}

void StrataEstimator::Serialize(ByteWriter* writer) const {
  for (const Iblt& stratum : strata_) stratum.SerializeFixed(writer);
}

Result<StrataEstimator> StrataEstimator::Deserialize(ByteReader* reader,
                                                     const Params& params) {
  StrataEstimator est(params);
  for (int i = 0; i < params.num_strata; ++i) {
    Result<Iblt> table =
        Iblt::DeserializeFixed(reader, StratumConfig(params, i));
    if (!table.ok()) return table.status();
    est.strata_[static_cast<size_t>(i)] = std::move(table).value();
  }
  return est;
}

size_t StrataEstimator::SerializedSize() const {
  size_t total = 0;
  for (const Iblt& stratum : strata_) {
    total += stratum.config().FixedSerializedSize();
  }
  return total;
}

}  // namespace setrec
