#ifndef SETREC_ESTIMATOR_L0_ESTIMATOR_H_
#define SETREC_ESTIMATOR_L0_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "util/serialization.h"
#include "util/status.h"

namespace setrec {

/// The paper's set-difference estimator (Theorem 3.1 / Appendix A), built
/// from streaming l0-norm estimation over {-1,0,1} vectors:
///
///  * Elements are assigned to level i with probability 2^-(i+1) via the
///    least-significant set bit of a pairwise-independent hash.
///  * Each level is a bank of 2-bit counters mod 4; an Update on side 1
///    adds +1 to the element's bucket, side 2 adds -1 (== +3 mod 4).
///  * Counters are stored as 3-bit fields (one always-zero padding bit), so
///    Merge is word-parallel: add the raw words, then mask the padding bits
///    — exactly the word-RAM trick described in Appendix A.
///  * The estimate is derived from the deepest level whose count of nonzero
///    buckets exceeds a threshold (8, as in Appendix A / KNW'10); when no
///    level reaches the threshold, the levels partition the difference, so
///    summing nonzero buckets across levels is (near) exact.
///  * Replicated kReplicas times; Estimate() returns the median.
///
/// Versus the strata estimator this is ~an order of magnitude smaller (no
/// O(log u)-bit keys, just 2-bit counters) with O(words) merge — the
/// improvement Theorem 3.1 claims over [14].
class L0Estimator {
 public:
  struct Params {
    /// Buckets per level. Collisions (two difference elements in one
    /// bucket) bias the estimate low; 64 keeps levels accurate up to the
    /// activation threshold while staying a few words wide.
    size_t buckets_per_level = 64;
    /// Number of levels; level i receives a 2^-(i+1) sample.
    int num_levels = 40;
    /// Independent replicas; the estimate is their median.
    int replicas = 7;
    /// Shared public-coin seed.
    uint64_t seed = 0;
  };

  explicit L0Estimator(const Params& params);

  /// Adds x to side 1 or side 2.
  void Update(uint64_t x, int side);

  /// Adds a block of elements to one side; equivalent to n Update calls but
  /// processed replica-by-replica for cache locality.
  void UpdateBatch(const uint64_t* xs, size_t n, int side);

  /// Merges a peer estimator built with identical Params (word add + mask).
  Status Merge(const L0Estimator& other);

  /// Median-of-replicas constant-factor estimate of |S1 ⊕ S2|.
  uint64_t Estimate() const;

  void Serialize(ByteWriter* writer) const;
  static Result<L0Estimator> Deserialize(ByteReader* reader,
                                         const Params& params);
  size_t SerializedSize() const;

  const Params& params() const { return params_; }

 private:
  /// Raw storage words for (replica, level).
  size_t LevelOffset(int replica, int level) const;
  void UpdateReplica(int replica, uint64_t x, uint64_t add);
  uint64_t EstimateReplica(int replica) const;

  Params params_;
  size_t words_per_level_;
  std::vector<uint64_t> words_;
  std::vector<uint64_t> replica_seeds_;
};

}  // namespace setrec

#endif  // SETREC_ESTIMATOR_L0_ESTIMATOR_H_
