#include "estimator/l0_estimator.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "hashing/random.h"

namespace setrec {

namespace {

/// 3-bit fields per 64-bit word (63 bits used).
constexpr size_t kFieldsPerWord = 21;

/// Mask keeping the low 2 bits of every 3-bit field (clears padding bits).
constexpr uint64_t FieldMask() {
  uint64_t mask = 0;
  for (size_t i = 0; i < kFieldsPerWord; ++i) mask |= 0x3ull << (3 * i);
  return mask;
}
constexpr uint64_t kFieldMask = FieldMask();

/// Activation threshold from Appendix A ("reports that the l0-norm is
/// greater than 8").
constexpr uint64_t kThreshold = 8;

}  // namespace

L0Estimator::L0Estimator(const Params& params)
    : params_(params),
      words_per_level_((params.buckets_per_level + kFieldsPerWord - 1) /
                       kFieldsPerWord),
      words_(static_cast<size_t>(params.replicas) *
                 static_cast<size_t>(params.num_levels) * words_per_level_,
             0) {
  replica_seeds_.reserve(static_cast<size_t>(params_.replicas));
  for (int r = 0; r < params_.replicas; ++r) {
    replica_seeds_.push_back(DeriveSeed(
        params_.seed, uint64_t{0x6c306573} + static_cast<uint64_t>(r)));  // "l0es"
  }
}

size_t L0Estimator::LevelOffset(int replica, int level) const {
  return (static_cast<size_t>(replica) * static_cast<size_t>(params_.num_levels) +
          static_cast<size_t>(level)) *
         words_per_level_;
}

void L0Estimator::Update(uint64_t x, int side) {
  const uint64_t add = side == 1 ? 1 : 3;  // -1 mod 4.
  for (int r = 0; r < params_.replicas; ++r) {
    UpdateReplica(r, x, add);
  }
}

void L0Estimator::UpdateReplica(int r, uint64_t x, uint64_t add) {
  uint64_t h = Mix64(x ^ replica_seeds_[static_cast<size_t>(r)]);
  int level = std::countr_zero(h | (1ull << (params_.num_levels - 1)));
  uint64_t bucket =
      Mix64(x ^ (replica_seeds_[static_cast<size_t>(r)] +
                 0x9e3779b97f4a7c15ull)) %
      params_.buckets_per_level;
  size_t word = LevelOffset(r, level) + bucket / kFieldsPerWord;
  size_t shift = 3 * (bucket % kFieldsPerWord);
  words_[word] += add << shift;
  words_[word] &= kFieldMask;
}

void L0Estimator::UpdateBatch(const uint64_t* xs, size_t n, int side) {
  const uint64_t add = side == 1 ? 1 : 3;  // -1 mod 4.
  // Replica-outer order keeps each pass inside one replica's word block;
  // updates commute (every write re-masks its word), so this matches n
  // single-element Update calls exactly.
  for (int r = 0; r < params_.replicas; ++r) {
    for (size_t j = 0; j < n; ++j) UpdateReplica(r, xs[j], add);
  }
}

Status L0Estimator::Merge(const L0Estimator& other) {
  if (other.params_.buckets_per_level != params_.buckets_per_level ||
      other.params_.num_levels != params_.num_levels ||
      other.params_.replicas != params_.replicas ||
      other.params_.seed != params_.seed) {
    return InvalidArgument("l0 merge: mismatched params");
  }
  // The Appendix A word trick: counters occupy 2 of every 3 bits, so a raw
  // 64-bit add cannot carry across fields; masking restores mod-4 fields.
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] = (words_[i] + other.words_[i]) & kFieldMask;
  }
  return Status::Ok();
}

uint64_t L0Estimator::EstimateReplica(int replica) const {
  uint64_t total_nonzero = 0;
  double best = -1.0;
  const double buckets = static_cast<double>(params_.buckets_per_level);
  for (int level = 0; level < params_.num_levels; ++level) {
    size_t offset = LevelOffset(replica, level);
    uint64_t nonzero = 0;
    for (size_t w = 0; w < words_per_level_; ++w) {
      uint64_t word = words_[offset + w];
      // Count nonzero 2-bit fields: OR the two bits of each field together.
      uint64_t any = (word | (word >> 1)) & 0x2492492492492492ull >> 1;
      nonzero += static_cast<uint64_t>(std::popcount(any));
    }
    total_nonzero += nonzero;
    if (nonzero > kThreshold) {
      // Invert the occupancy curve to correct for bucket collisions.
      double c = static_cast<double>(nonzero);
      if (c >= buckets) c = buckets - 1;
      double corrected = -buckets * std::log1p(-c / buckets);
      best = corrected * std::pow(2.0, level + 1);
    }
  }
  if (best >= 0.0) return static_cast<uint64_t>(std::llround(best));
  // No level activated: levels partition the difference, so the sum of
  // nonzero buckets across all levels is a near-exact count.
  return total_nonzero;
}

uint64_t L0Estimator::Estimate() const {
  std::vector<uint64_t> estimates;
  estimates.reserve(static_cast<size_t>(params_.replicas));
  for (int r = 0; r < params_.replicas; ++r) {
    estimates.push_back(EstimateReplica(r));
  }
  std::nth_element(
      estimates.begin(),
      estimates.begin() + static_cast<std::ptrdiff_t>(estimates.size() / 2),
      estimates.end());
  return estimates[estimates.size() / 2];
}

void L0Estimator::Serialize(ByteWriter* writer) const {
  for (uint64_t w : words_) writer->PutU64(w);
}

Result<L0Estimator> L0Estimator::Deserialize(ByteReader* reader,
                                             const Params& params) {
  L0Estimator est(params);
  for (uint64_t& w : est.words_) {
    if (!reader->GetU64(&w)) return ParseError("l0 estimator truncated");
  }
  return est;
}

size_t L0Estimator::SerializedSize() const { return words_.size() * 8; }

}  // namespace setrec
