#ifndef SETREC_ESTIMATOR_STRATA_ESTIMATOR_H_
#define SETREC_ESTIMATOR_STRATA_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "iblt/iblt.h"
#include "util/serialization.h"
#include "util/status.h"

namespace setrec {

/// The strata estimator of Eppstein, Goodrich, Uyeda and Varghese ("What's
/// the difference?", SIGCOMM 2011) — reference [14], the baseline that the
/// paper's Appendix A estimator improves on. Elements are assigned to
/// stratum i with probability 2^-(i+1) (trailing zeros of a hash); each
/// stratum is a small IBLT. To estimate |S1 ⊕ S2|, decode strata from the
/// top down and scale the count recovered above the first failure.
class StrataEstimator {
 public:
  struct Params {
    /// Number of strata (32 covers sets up to ~2^32 differences).
    int num_strata = 32;
    /// Cells per stratum IBLT.
    size_t cells_per_stratum = 40;
    /// Shared public-coin seed.
    uint64_t seed = 0;
  };

  explicit StrataEstimator(const Params& params);

  /// Adds x to side 1 (insert) or side 2 (delete); the structure then
  /// represents the pair (S1, S2) whose difference is being estimated.
  void Update(uint64_t x, int side);

  /// Adds a block of elements to one side; equivalent to n Update calls but
  /// grouped per stratum so each stratum IBLT sees one batched update. The
  /// partition buffers are estimator members that warm up on first use, so
  /// repeated batch updates are allocation-free.
  void UpdateBatch(const uint64_t* xs, size_t n, int side);

  /// Merges another estimator built with identical Params: afterwards this
  /// represents (S1 ∪ S1', S2 ∪ S2').
  Status Merge(const StrataEstimator& other);

  /// Estimates |S1 ⊕ S2| (within a constant factor w.h.p.).
  uint64_t Estimate() const;

  void Serialize(ByteWriter* writer) const;
  static Result<StrataEstimator> Deserialize(ByteReader* reader,
                                             const Params& params);

  /// Bytes of the fixed serialization (the message size a party pays).
  size_t SerializedSize() const;

  const Params& params() const { return params_; }

 private:
  int StratumOf(uint64_t x) const;

  Params params_;
  std::vector<Iblt> strata_;
  uint64_t level_seed_;
  /// UpdateBatch partition scratch (one bucket per stratum). Cleared, never
  /// shrunk, between calls; excluded from the serialized state.
  std::vector<std::vector<uint64_t>> batch_scratch_;
};

}  // namespace setrec

#endif  // SETREC_ESTIMATOR_STRATA_ESTIMATOR_H_
