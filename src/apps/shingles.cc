#include "apps/shingles.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "core/encoding.h"
#include "estimator/l0_estimator.h"
#include "hashing/random.h"
#include "iblt/iblt.h"
#include "setrec/multiset_codec.h"
#include "setrec/set_reconciler.h"
#include "util/serialization.h"

namespace setrec {

std::vector<uint64_t> ShingleSet(const std::string& text, size_t k,
                                 uint64_t seed) {
  HashFamily family(seed, /*tag=*/0x7368696eull);  // "shin"
  std::vector<std::string> words;
  std::istringstream stream(text);
  std::string word;
  while (stream >> word) words.push_back(word);

  std::vector<uint64_t> shingles;
  if (words.empty() || k == 0) return shingles;
  const size_t windows = words.size() >= k ? words.size() - k + 1 : 1;
  for (size_t i = 0; i < windows; ++i) {
    std::string joined;
    for (size_t j = i; j < std::min(i + k, words.size()); ++j) {
      joined += words[j];
      joined += '\x1f';
    }
    shingles.push_back(
        family.HashBytes(reinterpret_cast<const uint8_t*>(joined.data()),
                         joined.size()) &
        (kUserElementLimit - 1));
  }
  std::sort(shingles.begin(), shingles.end());
  shingles.erase(std::unique(shingles.begin(), shingles.end()),
                 shingles.end());
  return shingles;
}

namespace {

struct AttemptResult {
  SetOfSets collection;
  std::vector<DocumentMatch::Kind> kinds;
  size_t fresh = 0;
  size_t near = 0;
  size_t exact = 0;
};

Result<AttemptResult> CollectionAttempt(const SetOfSets& alice,
                                        const SetOfSets& bob,
                                        size_t per_doc_diff, size_t d_hat,
                                        uint64_t seed, Channel* channel) {
  HashFamily fp_family(seed, /*tag=*/0x66707368ull);
  IbltConfig child_config = IbltConfig::ForDifference(
      per_doc_diff, DeriveSeed(seed, /*tag=*/0x63686c73ull));
  IbltConfig outer_config = IbltConfig::ForDifference(
      2 * d_hat, seed, ChildIbltBlobWidth(child_config));

  // Round A (Alice -> Bob): parent fingerprint + outer table.
  Iblt outer(outer_config);
  std::map<uint64_t, const ChildSet*> alice_by_fp;
  for (const ChildSet& doc : alice) {
    uint64_t fp = ChildFingerprint(doc, fp_family);
    alice_by_fp[fp] = &doc;
    outer.Insert(EncodeChildIbltBlob(doc, child_config, fp));
  }
  ByteWriter wa;
  wa.PutU64(ParentFingerprint(alice, fp_family));
  outer.Serialize(&wa);
  size_t msg_a = channel->Send(Party::kAlice, wa.Take(), "shingles-outer");

  // Bob: decode the outer table, pair child IBLTs.
  ByteReader ra(channel->Receive(msg_a).payload);
  uint64_t alice_parent_fp = 0;
  if (!ra.GetU64(&alice_parent_fp)) return ParseError("shingles truncated");
  Result<Iblt> received = Iblt::Deserialize(&ra, outer_config);
  if (!received.ok()) return received.status();
  Iblt remote = std::move(received).value();
  std::map<std::vector<uint8_t>, size_t, KeyBytesLess> blob_to_doc;
  for (size_t j = 0; j < bob.size(); ++j) {
    std::vector<uint8_t> blob = EncodeChildIbltBlob(
        bob[j], child_config, ChildFingerprint(bob[j], fp_family));
    remote.Erase(blob);
    blob_to_doc.emplace(std::move(blob), j);
  }
  // Outer decode views (held across the pairing loop) and the nested
  // per-document decodes need separate scratches; see DecodeScratch.
  DecodeScratch outer_scratch;
  DecodeScratch child_scratch;
  Result<IbltDecodeView> decoded = remote.Decode(&outer_scratch);
  if (!decoded.ok()) return decoded.status();

  std::vector<std::pair<ChildEncoding, const ChildSet*>> partners;
  std::vector<bool> in_db(bob.size(), false);
  for (const IbltKeyView& blob : decoded.value().negative) {
    auto it = blob_to_doc.find(blob);
    if (it == blob_to_doc.end()) {
      return VerificationFailure("shingles: unknown negative encoding");
    }
    Result<ChildEncoding> enc = ParseChildIbltBlob(blob, child_config);
    if (!enc.ok()) return enc.status();
    in_db[it->second] = true;
    partners.emplace_back(std::move(enc).value(), &bob[it->second]);
  }

  AttemptResult result;
  SetOfSets recovered_children;
  std::vector<DocumentMatch::Kind> recovered_kinds;
  std::vector<uint64_t> fresh_fps;
  for (const IbltKeyView& blob : decoded.value().positive) {
    Result<ChildEncoding> enc_r = ParseChildIbltBlob(blob, child_config);
    if (!enc_r.ok()) return enc_r.status();
    const ChildEncoding& enc = enc_r.value();
    bool paired = false;
    for (const auto& [partner_enc, partner_set] : partners) {
      Iblt diff = enc.sketch;
      if (!diff.Subtract(partner_enc.sketch).ok()) continue;
      Result<IbltDecodeResult64> dd = diff.DecodeU64(&child_scratch);
      if (!dd.ok()) continue;
      SetDifference sd;
      sd.remote_only = std::move(dd.value().positive);
      sd.local_only = std::move(dd.value().negative);
      ChildSet candidate = ApplyDifference(*partner_set, sd);
      if (ChildFingerprint(candidate, fp_family) == enc.fingerprint) {
        recovered_children.push_back(std::move(candidate));
        recovered_kinds.push_back(DocumentMatch::Kind::kNear);
        paired = true;
        break;
      }
    }
    if (!paired) fresh_fps.push_back(enc.fingerprint);
  }

  // Round B (Bob -> Alice): fingerprints of undecodable (fresh) documents.
  ByteWriter wb;
  wb.PutU64Vector(fresh_fps);
  size_t msg_b = channel->Send(Party::kBob, wb.Take(), "shingles-fresh-req");

  // Round C (Alice -> Bob): the fresh documents, raw.
  ByteReader rb(channel->Receive(msg_b).payload);
  std::vector<uint64_t> requested;
  if (!rb.GetU64Vector(&requested)) return ParseError("shingles truncated");
  ByteWriter wc;
  wc.PutVarint(requested.size());
  for (uint64_t fp : requested) {
    auto it = alice_by_fp.find(fp);
    if (it == alice_by_fp.end()) {
      return VerificationFailure("shingles: fresh request for unknown doc");
    }
    wc.PutU64Vector(*it->second);
  }
  size_t msg_c = channel->Send(Party::kAlice, wc.Take(), "shingles-fresh");

  ByteReader rc(channel->Receive(msg_c).payload);
  uint64_t fresh_count = 0;
  if (!rc.GetVarint(&fresh_count)) return ParseError("shingles truncated");
  for (uint64_t i = 0; i < fresh_count; ++i) {
    ChildSet doc;
    if (!rc.GetU64Vector(&doc)) return ParseError("shingles truncated");
    recovered_children.push_back(std::move(doc));
    recovered_kinds.push_back(DocumentMatch::Kind::kFresh);
  }

  // Assemble: Bob's unchanged documents are exact duplicates.
  for (size_t j = 0; j < bob.size(); ++j) {
    if (!in_db[j]) {
      recovered_children.push_back(bob[j]);
      recovered_kinds.push_back(DocumentMatch::Kind::kExact);
    }
  }
  // Canonical order, kinds kept parallel.
  std::vector<size_t> idx(recovered_children.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return recovered_children[a] < recovered_children[b];
  });
  for (size_t i : idx) {
    result.collection.push_back(recovered_children[i]);
    result.kinds.push_back(recovered_kinds[i]);
    switch (recovered_kinds[i]) {
      case DocumentMatch::Kind::kExact: ++result.exact; break;
      case DocumentMatch::Kind::kNear: ++result.near; break;
      case DocumentMatch::Kind::kFresh: ++result.fresh; break;
    }
  }
  if (ParentFingerprint(result.collection, fp_family) != alice_parent_fp) {
    return VerificationFailure("shingles: parent fingerprint mismatch");
  }
  return result;
}

}  // namespace

Result<CollectionReconcileOutcome> ReconcileCollections(
    const SetOfSets& alice, const SetOfSets& bob, size_t per_doc_diff,
    const SsrParams& params, Channel* channel) {
  if (Status s = ValidateSetOfSets(alice, params); !s.ok()) return s;
  if (Status s = ValidateSetOfSets(bob, params); !s.ok()) return s;

  // Round 0 (Bob -> Alice): how many documents differ.
  L0Estimator::Params est_params;
  est_params.seed = DeriveSeed(params.seed, /*tag=*/0x73684553ull);
  HashFamily fp_family(est_params.seed, /*tag=*/0x66707368ull);
  L0Estimator bob_est(est_params);
  std::vector<uint64_t> bob_fps;
  bob_fps.reserve(bob.size());
  for (const ChildSet& doc : bob) {
    bob_fps.push_back(ChildFingerprint(doc, fp_family));
  }
  bob_est.UpdateBatch(bob_fps.data(), bob_fps.size(), 2);
  ByteWriter writer;
  bob_est.Serialize(&writer);
  size_t msg = channel->Send(Party::kBob, writer.Take(), "shingles-est");
  ByteReader reader(channel->Receive(msg).payload);
  Result<L0Estimator> merged_r = L0Estimator::Deserialize(&reader, est_params);
  if (!merged_r.ok()) return merged_r.status();
  L0Estimator merged = std::move(merged_r).value();
  L0Estimator alice_est(est_params);
  std::vector<uint64_t> alice_fps;
  alice_fps.reserve(alice.size());
  for (const ChildSet& doc : alice) {
    alice_fps.push_back(ChildFingerprint(doc, fp_family));
  }
  alice_est.UpdateBatch(alice_fps.data(), alice_fps.size(), 1);
  if (Status s = merged.Merge(alice_est); !s.ok()) return s;
  size_t d_hat = std::max<size_t>(
      static_cast<size_t>(params.estimate_slack *
                          static_cast<double>(merged.Estimate())) /
          2,
      2);

  Status last = DecodeFailure("no attempts made");
  for (int attempt = 0; attempt < params.max_attempts; ++attempt) {
    uint64_t seed =
        DeriveSeed(params.seed, uint64_t{0x73686174} + static_cast<uint64_t>(attempt));
    Result<AttemptResult> result =
        CollectionAttempt(alice, bob, per_doc_diff, d_hat, seed, channel);
    if (result.ok()) {
      CollectionReconcileOutcome outcome;
      outcome.collection = std::move(result.value().collection);
      outcome.kinds = std::move(result.value().kinds);
      outcome.fresh_documents = result.value().fresh;
      outcome.near_duplicates = result.value().near;
      outcome.exact_duplicates = result.value().exact;
      outcome.stats = {channel->rounds(), channel->total_bytes(),
                       attempt + 1};
      return outcome;
    }
    last = result.status();
    if (last.code() == StatusCode::kParseError) return last;
    d_hat *= 2;
  }
  return Exhausted("collection reconciliation failed: " + last.ToString());
}

}  // namespace setrec
