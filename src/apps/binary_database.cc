#include "apps/binary_database.h"

#include <algorithm>
#include <set>

#include "setrec/multiset_codec.h"

namespace setrec {

BinaryDatabase::BinaryDatabase(size_t num_columns)
    : num_columns_(num_columns) {}

Status BinaryDatabase::AddRow(std::vector<uint32_t> one_columns) {
  std::vector<uint64_t> row;
  row.reserve(one_columns.size());
  std::sort(one_columns.begin(), one_columns.end());
  for (size_t i = 0; i < one_columns.size(); ++i) {
    if (one_columns[i] >= num_columns_) {
      return InvalidArgument("row references column out of range");
    }
    if (i > 0 && one_columns[i] == one_columns[i - 1]) {
      return InvalidArgument("duplicate column in row");
    }
    row.push_back(one_columns[i]);
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

bool BinaryDatabase::Get(size_t row, uint32_t column) const {
  const std::vector<uint64_t>& r = rows_[row];
  return std::binary_search(r.begin(), r.end(), column);
}

Status BinaryDatabase::Flip(size_t row, uint32_t column) {
  if (row >= rows_.size() || column >= num_columns_) {
    return InvalidArgument("flip out of range");
  }
  std::vector<uint64_t>& r = rows_[row];
  auto it = std::lower_bound(r.begin(), r.end(), column);
  if (it != r.end() && *it == column) {
    r.erase(it);
  } else {
    r.insert(it, column);
  }
  return Status::Ok();
}

std::vector<std::pair<size_t, uint32_t>> BinaryDatabase::FlipRandom(
    size_t count, Rng* rng) {
  std::vector<std::pair<size_t, uint32_t>> flipped;
  if (rows_.empty() || num_columns_ == 0) return flipped;
  std::set<std::pair<size_t, uint32_t>> used;
  size_t guard = count * 64 + 64;
  while (flipped.size() < count && guard-- > 0) {
    size_t row = rng->UniformU64(rows_.size());
    uint32_t col = static_cast<uint32_t>(rng->UniformU64(num_columns_));
    if (!used.insert({row, col}).second) continue;
    (void)Flip(row, col);
    flipped.emplace_back(row, col);
  }
  return flipped;
}

BinaryDatabase BinaryDatabase::Random(size_t rows, size_t columns,
                                      double density, Rng* rng) {
  BinaryDatabase db(columns);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<uint32_t> ones;
    for (uint32_t c = 0; c < columns; ++c) {
      if (rng->Bernoulli(density)) ones.push_back(c);
    }
    (void)db.AddRow(std::move(ones));
  }
  return db;
}

bool BinaryDatabase::SameRowsAs(const BinaryDatabase& other) const {
  if (num_columns_ != other.num_columns_) return false;
  std::vector<std::vector<uint64_t>> a = rows_;
  std::vector<std::vector<uint64_t>> b = other.rows_;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

Result<DatabaseReconcileOutcome> ReconcileDatabases(
    const BinaryDatabase& alice, const BinaryDatabase& bob,
    const SetsOfSetsProtocol& protocol, std::optional<size_t> d,
    Channel* channel) {
  if (alice.num_columns() != bob.num_columns()) {
    return InvalidArgument("databases have different schemas");
  }
  SetOfSets alice_parent = NormalizeParentMultiset(alice.rows());
  SetOfSets bob_parent = NormalizeParentMultiset(bob.rows());
  // A flipped bit in a duplicated row changes at most 3 elements of the
  // normalized form (the bit, plus count-marker churn).
  std::optional<size_t> ssr_d;
  if (d.has_value()) ssr_d = 3 * *d + 2;
  Result<SsrOutcome> ssr =
      protocol.Reconcile(alice_parent, bob_parent, ssr_d, channel);
  if (!ssr.ok()) return ssr.status();
  Result<SetOfSets> expanded =
      ExpandParentMultiset(std::move(ssr).value().recovered);
  if (!expanded.ok()) return expanded.status();

  BinaryDatabase recovered(alice.num_columns());
  for (const ChildSet& row : expanded.value()) {
    std::vector<uint32_t> ones;
    ones.reserve(row.size());
    for (uint64_t c : row) ones.push_back(static_cast<uint32_t>(c));
    if (Status s = recovered.AddRow(std::move(ones)); !s.ok()) return s;
  }
  DatabaseReconcileOutcome outcome{
      std::move(recovered),
      SsrStats{channel->rounds(), channel->total_bytes(), 1}};
  return outcome;
}

}  // namespace setrec
