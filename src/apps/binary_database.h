#ifndef SETREC_APPS_BINARY_DATABASE_H_
#define SETREC_APPS_BINARY_DATABASE_H_

#include <cstdint>
#include <vector>

#include "core/protocol.h"
#include "hashing/random.h"
#include "transport/channel.h"
#include "util/status.h"

namespace setrec {

/// The paper's introductory database application: a relational database of
/// binary data whose columns are labeled but whose rows are not. A row is
/// equivalently the set of column indices holding a 1, so "reconcile two
/// databases in which a total of d bits have been flipped" is exactly the
/// sets-of-sets problem. Duplicate rows are legal (databases are bags), so
/// the parent collection is a multiset of sets, normalized with
/// duplicate-count markers (Section 3.4).
class BinaryDatabase {
 public:
  /// An empty database with `num_columns` labeled columns.
  explicit BinaryDatabase(size_t num_columns);

  size_t num_columns() const { return num_columns_; }
  size_t num_rows() const { return rows_.size(); }

  /// Appends a row given the set of columns holding a 1 (any order).
  Status AddRow(std::vector<uint32_t> one_columns);

  bool Get(size_t row, uint32_t column) const;
  /// Flips one bit.
  Status Flip(size_t row, uint32_t column);

  /// Flips `count` random bits (distinct positions). Returns positions.
  std::vector<std::pair<size_t, uint32_t>> FlipRandom(size_t count, Rng* rng);

  /// Random database: each bit is 1 with probability `density` (the dense
  /// h = Theta(u) regime of Table 1 uses density around 1/2).
  static BinaryDatabase Random(size_t rows, size_t columns, double density,
                               Rng* rng);

  /// The rows as a (row-order-insensitive) multiset of column sets.
  const std::vector<std::vector<uint64_t>>& rows() const { return rows_; }

  /// Content equality up to row order.
  bool SameRowsAs(const BinaryDatabase& other) const;

 private:
  size_t num_columns_;
  std::vector<std::vector<uint64_t>> rows_;  // Sorted column indices.
};

/// Outcome of a database reconciliation.
struct DatabaseReconcileOutcome {
  BinaryDatabase recovered;
  SsrStats stats;
};

/// One-way database reconciliation: Bob ends with a database whose row
/// multiset equals Alice's. `protocol` is any SetsOfSetsProtocol; d is the
/// total number of flipped bits (pass nullopt for the unknown-d variants).
Result<DatabaseReconcileOutcome> ReconcileDatabases(
    const BinaryDatabase& alice, const BinaryDatabase& bob,
    const SetsOfSetsProtocol& protocol, std::optional<size_t> d,
    Channel* channel);

}  // namespace setrec

#endif  // SETREC_APPS_BINARY_DATABASE_H_
