#ifndef SETREC_APPS_SHINGLES_H_
#define SETREC_APPS_SHINGLES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/protocol.h"
#include "transport/channel.h"
#include "util/status.h"

namespace setrec {

/// The paper's document-collection application: documents are represented
/// by shingle sets (hashes of consecutive k-word blocks, Broder [9]);
/// a collection of documents is then a set of sets. Reconciling two
/// collections classifies each of Alice's documents as an exact duplicate,
/// a near-duplicate (small shingle difference), or fresh (no similar
/// document on Bob's side) — fresh documents fail to pair with any child
/// IBLT, exactly the remark after Theorem 3.5, and are transmitted
/// directly as a fallback.

/// A document's shingle set: hashes of each window of `k` whitespace-
/// separated words, truncated to the library element space. Deterministic
/// given (text, k, seed).
std::vector<uint64_t> ShingleSet(const std::string& text, size_t k,
                                 uint64_t seed);

/// One of Alice's documents as classified by the reconciliation.
struct DocumentMatch {
  enum class Kind { kExact, kNear, kFresh };
  Kind kind;
  /// The recovered shingle set of Alice's document.
  std::vector<uint64_t> shingles;
};

struct CollectionReconcileOutcome {
  /// Bob's recovered copy of Alice's collection (canonical order).
  SetOfSets collection;
  /// Classification parallel to `collection`.
  std::vector<DocumentMatch::Kind> kinds;
  size_t fresh_documents = 0;
  size_t near_duplicates = 0;
  size_t exact_duplicates = 0;
  SsrStats stats;
};

/// Reconciles two shingle-set collections one-way (Bob recovers Alice's)
/// using Algorithm 1 with a per-child difference bound `per_doc_diff`;
/// children that cannot be decoded against any of Bob's documents are
/// transmitted directly and reported as fresh.
Result<CollectionReconcileOutcome> ReconcileCollections(
    const SetOfSets& alice, const SetOfSets& bob, size_t per_doc_diff,
    const SsrParams& params, Channel* channel);

}  // namespace setrec

#endif  // SETREC_APPS_SHINGLES_H_
