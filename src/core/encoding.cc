#include "core/encoding.h"

#include <cstring>

#include "util/serialization.h"

namespace setrec {

size_t ChildBlobWidth(size_t h) { return 4 + 8 * h; }

std::vector<uint8_t> EncodeChildBlob(const ChildSet& child, size_t h) {
  std::vector<uint8_t> blob(ChildBlobWidth(h), 0);
  uint32_t count = static_cast<uint32_t>(child.size());
  std::memcpy(blob.data(), &count, 4);
  for (size_t i = 0; i < child.size(); ++i) {
    std::memcpy(blob.data() + 4 + 8 * i, &child[i], 8);
  }
  return blob;
}

Result<ChildSet> DecodeChildBlob(const uint8_t* data, size_t size, size_t h) {
  if (size != ChildBlobWidth(h)) {
    return ParseError("child blob has unexpected width");
  }
  uint32_t count = 0;
  std::memcpy(&count, data, 4);
  if (count > h) return ParseError("child blob count exceeds h");
  ChildSet child(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::memcpy(&child[i], data + 4 + 8 * i, 8);
    if (i > 0 && child[i] <= child[i - 1]) {
      return ParseError("child blob not sorted/unique");
    }
  }
  for (size_t i = 4 + 8 * static_cast<size_t>(count); i < size; ++i) {
    if (data[i] != 0) return ParseError("child blob has nonzero padding");
  }
  return child;
}

size_t ChildIbltBlobWidth(const IbltConfig& child_config) {
  return child_config.FixedSerializedSize() + 8;
}

std::vector<uint8_t> EncodeChildIbltBlob(const ChildSet& child,
                                         const IbltConfig& child_config,
                                         uint64_t fingerprint) {
  Iblt sketch(child_config);
  sketch.InsertBatch(child);
  ByteWriter writer;
  AppendChildIbltBlob(sketch, fingerprint, &writer);
  return writer.Take();
}

void AppendChildIbltBlob(const Iblt& sketch, uint64_t fingerprint,
                         ByteWriter* out) {
  sketch.SerializeFixed(out);
  out->PutU64(fingerprint);
}

Result<ChildEncoding> ParseChildIbltBlob(const uint8_t* data, size_t size,
                                         const IbltConfig& child_config) {
  if (size != ChildIbltBlobWidth(child_config)) {
    return ParseError("child IBLT blob has unexpected width");
  }
  ByteReader reader(data, size);
  Result<Iblt> sketch = Iblt::DeserializeFixed(&reader, child_config);
  if (!sketch.ok()) return sketch.status();
  uint64_t fingerprint = 0;
  if (!reader.GetU64(&fingerprint)) {
    return ParseError("child IBLT blob truncated (fingerprint)");
  }
  return ChildEncoding{std::move(sketch).value(), fingerprint};
}

}  // namespace setrec
