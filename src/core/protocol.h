#ifndef SETREC_CORE_PROTOCOL_H_
#define SETREC_CORE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/task.h"
#include "hashing/hash.h"
#include "iblt/iblt.h"
#include "transport/channel.h"
#include "util/status.h"

namespace setrec {

class ProtocolContext;

/// A child set: sorted, duplicate-free 64-bit elements. Elements must be
/// below kUserElementLimit (2^56) unless they are library markers (see
/// setrec/multiset_codec.h). Multisets ride on top via MultisetCodec.
using ChildSet = std::vector<uint64_t>;

/// A parent set of child sets. Canonical form: each child sorted, children
/// sorted lexicographically, no duplicate children (duplicates are expressed
/// with NormalizeParentMultiset).
using SetOfSets = std::vector<ChildSet>;

/// Parameters shared by both parties of a set-of-sets reconciliation
/// (Section 3 of the paper). These are model parameters — u, s, h are part
/// of the problem statement, and `seed` realizes the public-coin assumption.
struct SsrParams {
  /// h: upper bound on child-set size, known to both parties.
  size_t max_child_size = 0;
  /// s: upper bound on the number of child sets per party (0 = no bound;
  /// then d-hat defaults to d).
  size_t max_children = 0;
  /// Optional tighter bound on the number of *differing* child sets across
  /// both parties (0 = unknown). Composite protocols often know this is far
  /// below the element-change bound d (e.g., the forest protocol's d * sigma
  /// element changes are concentrated on ~d * sigma child multisets but the
  /// reverse direction also holds structurally); supplying it shrinks the
  /// outer tables.
  size_t max_differing_children = 0;
  /// Public-coin seed shared by Alice and Bob.
  uint64_t seed = 0;
  /// Whole-protocol replication bound (the amplification construction at
  /// the end of Section 3.2): attempts use independent public coins and the
  /// first fingerprint-verified recovery wins.
  int max_attempts = 4;
  /// Safety factor applied to difference-estimator outputs (SSRU paths).
  double estimate_slack = 2.0;
  /// Wire encoding for the IBLT tables the protocols exchange (a transport
  /// concern: tables and decode results are identical under every codec).
  /// Both parties must agree; src/net negotiates it in the hello frame,
  /// defaulting to kDense so old transcripts and peers stay compatible.
  WireCodec wire_codec = WireCodec::kDense;

  bool operator==(const SsrParams&) const = default;
};

/// Statistics of a finished reconciliation, read off the Channel plus the
/// retry counter. Collected by benches for the Table 1 reproduction.
struct SsrStats {
  size_t rounds = 0;
  size_t bytes = 0;
  int attempts = 1;
};

/// Outcome: Bob's recovery of Alice's parent set (canonical form).
struct SsrOutcome {
  SetOfSets recovered;
  SsrStats stats;
};

/// Interface shared by the four protocol families of Section 3. Reconcile
/// is one-way: at the end Bob can reproduce Alice's set of sets. Passing
/// `known_d` runs the SSRK variant; nullopt runs SSRU (the protocol spends
/// extra rounds estimating or doubling d).
///
/// The primitives are the PER-PARTY halves: ReconcileAsyncAlice and
/// ReconcileAsyncBob are lazy coroutines that each run exactly one party.
/// A half sends its own messages through ctx->Send and awaits the peer's
/// through ctx->Receive (core/build_context.h); `channel` is that party's
/// copy of the transcript, which converges to the same byte sequence on
/// both sides because the protocols are strict half-duplex ping-pong. The
/// halves are what let a server host only its own side of a session against
/// a remote client (src/net/); knowledge the old single-coroutine
/// simulation shared implicitly now crosses the wire explicitly — per-
/// attempt verdict frames and estimator-mode d-hat prefixes
/// (core/split_party.h).
///
/// ReconcileAsync is the thin composition of the two halves over one shared
/// channel, and the blocking Reconcile drives it under an InlineContext —
/// so direct calls, loopback service sessions, and split-party socket
/// sessions execute the same per-party code and produce bit-identical
/// transcripts for fixed seeds.
class SetsOfSetsProtocol {
 public:
  virtual ~SetsOfSetsProtocol() = default;

  /// Short identifier ("naive", "iblt2", "cascade", "multiround").
  virtual std::string Name() const = 0;

  /// Alice's half: the one-way source. Completes with OK once Bob's verdict
  /// confirms recovery; Alice never learns Bob's set, so there is no
  /// outcome payload. The caller must keep alice/channel/ctx alive until
  /// the task completes.
  virtual Task<Status> ReconcileAsyncAlice(const SetOfSets& alice,
                                           std::optional<size_t> known_d,
                                           Channel* channel,
                                           ProtocolContext* ctx) const = 0;

  /// Bob's half: the recovering party; produces the outcome.
  virtual Task<Result<SsrOutcome>> ReconcileAsyncBob(
      const SetOfSets& bob, std::optional<size_t> known_d, Channel* channel,
      ProtocolContext* ctx) const = 0;

  /// Both parties composed over one shared channel: starts the two halves
  /// and joins them (each half's sends wake the other's parked receives
  /// through the context). Same signature and semantics as the old
  /// single-coroutine form.
  Task<Result<SsrOutcome>> ReconcileAsync(const SetOfSets& alice,
                                          const SetOfSets& bob,
                                          std::optional<size_t> known_d,
                                          Channel* channel,
                                          ProtocolContext* ctx) const;

  /// Blocking form: runs ReconcileAsync to completion under a fresh
  /// InlineContext.
  Result<SsrOutcome> Reconcile(const SetOfSets& alice, const SetOfSets& bob,
                               std::optional<size_t> known_d,
                               Channel* channel) const;
};

/// Sorts each child and the parent; removes duplicate children. (Duplicate
/// children are not representable as a set of sets; see
/// NormalizeParentMultiset for multiset parents.)
SetOfSets Canonicalize(SetOfSets sets);

/// Order-invariant fingerprint of a parent set (canonicalized internally):
/// the sum-based SetFingerprint of the child fingerprints, so it is also
/// multiplicity-sensitive.
uint64_t ParentFingerprint(const SetOfSets& sets, const HashFamily& family);

/// Per-child fingerprint (the paper's "O(log s)-bit pairwise independent
/// hash of the child set"); we use 64 bits.
uint64_t ChildFingerprint(const ChildSet& child, const HashFamily& family);

/// Total number of elements across all children (the paper's n).
size_t TotalElements(const SetOfSets& sets);

/// Checks elements are within the library's element space and children are
/// sorted/unique and no larger than params.max_child_size (if set).
Status ValidateSetOfSets(const SetOfSets& sets, const SsrParams& params);

/// d-hat: the bound on differing child sets, min(d, s) per Section 3.1.
size_t DHat(size_t d, const SsrParams& params);

}  // namespace setrec

#endif  // SETREC_CORE_PROTOCOL_H_
