#include "core/workload.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "hashing/random.h"
#include "setrec/multiset_codec.h"

namespace setrec {

SsrWorkload MakeSsrWorkload(const SsrWorkloadSpec& spec) {
  Rng rng(DeriveSeed(spec.seed, /*tag=*/0x776b6c64ull));  // "wkld"
  const uint64_t universe = std::min(spec.universe, kUserElementLimit);

  SsrWorkload workload;
  workload.bob.reserve(spec.num_children);
  for (size_t c = 0; c < spec.num_children; ++c) {
    std::set<uint64_t> child;
    while (child.size() < spec.child_size) {
      child.insert(rng.UniformU64(universe));
    }
    workload.bob.emplace_back(child.begin(), child.end());
  }
  workload.bob = Canonicalize(std::move(workload.bob));
  workload.alice = workload.bob;

  // Which children may be touched.
  std::vector<size_t> touchable(workload.alice.size());
  for (size_t i = 0; i < touchable.size(); ++i) touchable[i] = i;
  if (spec.touched_children > 0 &&
      spec.touched_children < touchable.size()) {
    std::shuffle(touchable.begin(), touchable.end(), rng);
    touchable.resize(spec.touched_children);
  }
  if (touchable.empty()) return workload;

  // Track per-child inserted/deleted elements so changes never cancel.
  std::vector<std::unordered_set<uint64_t>> inserted(workload.alice.size());
  std::vector<std::unordered_set<uint64_t>> deleted(workload.alice.size());

  size_t applied = 0;
  size_t guard = spec.changes * 64 + 64;
  while (applied < spec.changes && guard-- > 0) {
    size_t child_idx = touchable[rng.UniformU64(touchable.size())];
    ChildSet& child = workload.alice[child_idx];
    bool do_insert = child.empty() || rng.Bernoulli(0.5);
    if (do_insert) {
      uint64_t e = rng.UniformU64(universe);
      if (deleted[child_idx].count(e) > 0) continue;  // Would cancel.
      auto it = std::lower_bound(child.begin(), child.end(), e);
      if (it != child.end() && *it == e) continue;  // Already present.
      child.insert(it, e);
      inserted[child_idx].insert(e);
    } else {
      size_t pos = rng.UniformU64(child.size());
      uint64_t e = child[pos];
      if (inserted[child_idx].count(e) > 0) continue;  // Would cancel.
      child.erase(child.begin() + static_cast<std::ptrdiff_t>(pos));
      deleted[child_idx].insert(e);
    }
    ++applied;
  }
  workload.applied_changes = applied;
  workload.alice = Canonicalize(std::move(workload.alice));
  return workload;
}

}  // namespace setrec
