#ifndef SETREC_CORE_CASCADING_PROTOCOL_H_
#define SETREC_CORE_CASCADING_PROTOCOL_H_

#include "core/protocol.h"

namespace setrec {

/// Algorithm 2 of the paper ("Cascading IBLTs of IBLTs", Theorem 3.7 /
/// Corollary 3.8). Exploits that the total number of element changes is d —
/// so only O(1) children need Omega(d)-cell sketches, O(sqrt d) need
/// Omega(sqrt d) cells, and so on. Alice sends t = log2 min(d, h) outer
/// tables; table T_i holds (O(2^i)-cell child IBLT, hash) encodings in an
/// O(d / 2^i)-cell outer IBLT, plus a direct-encoding table T* when h <= d.
/// Bob walks the levels, recovering cheap children early and deleting them
/// from later (per-child more expensive, but sparser) tables; children
/// missed at one level are caught at the next.
///
///   SSRK: 1 round, O(d log min(d,h) log u + d log s) bits,
///         O(n log min(d,h) + d-hat d log d-hat) time, success >= 2/3
///         per attempt (amplified by retries).
///   SSRU: O(log d) rounds by repeated doubling (Corollary 3.8).
class CascadingProtocol : public SetsOfSetsProtocol {
 public:
  explicit CascadingProtocol(const SsrParams& params) : params_(params) {}

  std::string Name() const override { return "cascade"; }

  Task<Status> ReconcileAsyncAlice(const SetOfSets& alice,
                                   std::optional<size_t> known_d,
                                   Channel* channel,
                                   ProtocolContext* ctx) const override;
  Task<Result<SsrOutcome>> ReconcileAsyncBob(const SetOfSets& bob,
                                             std::optional<size_t> known_d,
                                             Channel* channel,
                                             ProtocolContext* ctx)
      const override;

 private:
  /// The previous attempt's wire tables, retained across the trial loop
  /// under WireCodec::kSparse so a retry can send delta frames for any
  /// level whose config repeats (TableLineage). Both halves keep their own
  /// copy — Alice the tables she built, Bob the tables he parsed — and the
  /// two agree bit-for-bit whenever a config repeats, because an attempt
  /// table is a deterministic function of (sender set, config). Stays
  /// empty under kDense.
  struct AttemptTables {
    std::vector<Iblt> outers;
    std::optional<Iblt> star;
  };

  /// Builds and sends one attempt's cascade message (all t levels + T*);
  /// the verdict is received by the caller. Level configs derive from the
  /// shared (params, d, d_hat, seed) on both sides.
  Task<Status> AttemptAlice(const SetOfSets& alice, size_t d, size_t d_hat,
                            uint64_t seed, size_t* next,
                            AttemptTables* lineage, Channel* channel,
                            ProtocolContext* ctx) const;
  Task<Result<SetOfSets>> AttemptBob(const SetOfSets& bob, size_t d,
                                     size_t d_hat, uint64_t seed,
                                     size_t* next, AttemptTables* lineage,
                                     bool* peer_aborted, Channel* channel,
                                     ProtocolContext* ctx) const;

  SsrParams params_;
};

}  // namespace setrec

#endif  // SETREC_CORE_CASCADING_PROTOCOL_H_
