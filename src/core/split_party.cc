#include "core/split_party.h"

#include <cassert>
#include <utility>

#include "core/build_context.h"

namespace setrec {

void PutStatusPayload(const Status& status, ByteWriter* writer) {
  writer->PutU8(static_cast<uint8_t>(status.code()));
  writer->PutVarint(status.message().size());
  writer->PutBytes(
      reinterpret_cast<const uint8_t*>(status.message().data()),
      status.message().size());
}

bool GetStatusPayload(ByteReader* reader, Status* out) {
  uint8_t code = 0;
  uint64_t len = 0;
  if (!reader->GetU8(&code) || !reader->GetVarint(&len) ||
      len > reader->remaining()) {
    return false;
  }
  if (code == static_cast<uint8_t>(StatusCode::kOk) ||
      code > static_cast<uint8_t>(kMaxStatusCode)) {
    return false;
  }
  std::string message(static_cast<size_t>(len), '\0');
  if (len > 0 &&
      !reader->GetRaw(static_cast<size_t>(len),
                      reinterpret_cast<uint8_t*>(message.data()))) {
    return false;
  }
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return true;
}

std::optional<Status> PeerAbort(const Channel::Message& m) {
  if (!IsAbortMessage(m)) return std::nullopt;
  ByteReader reader(m.payload);
  Status carried;
  if (!GetStatusPayload(&reader, &carried)) {
    // A mangled abort frame is still terminal; surface it as such.
    return ParseError("malformed abort frame from peer");
  }
  return carried;
}

Task<Status> SendAbort(ProtocolContext* ctx, Channel* channel, Party from,
                       Status status) {
  ByteWriter writer;
  PutStatusPayload(status, &writer);
  co_await ctx->Send(channel, from, writer.Take(), kAbortLabel);
  co_return status;
}

Task<Status> SendVerdict(ProtocolContext* ctx, Channel* channel, Party from,
                         Status attempt_status, size_t* next) {
  ByteWriter writer;
  writer.PutU8(attempt_status.ok() ? 1 : 0);
  if (!attempt_status.ok()) PutStatusPayload(attempt_status, &writer);
  size_t index =
      co_await ctx->Send(channel, from, writer.Take(), kVerdictLabel);
  assert(index == *next && "transcript index drifted (verdict)");
  (void)index;
  ++*next;
  co_return attempt_status;
}

Task<Result<AttemptVerdict>> ReceiveVerdict(ProtocolContext* ctx,
                                            Channel* channel, size_t* next) {
  const Channel::Message& v = co_await ctx->Receive(channel, *next);
  ++*next;
  if (std::optional<Status> abort = PeerAbort(v)) co_return *abort;
  co_return ParseVerdict(v);
}

Result<AttemptVerdict> ParseVerdict(const Channel::Message& m) {
  ByteReader reader(m.payload);
  uint8_t ok = 0;
  if (!reader.GetU8(&ok) || ok > 1) {
    return ParseError("malformed verdict payload");
  }
  if (ok == 1) return AttemptVerdict{true, Status::Ok()};
  Status carried;
  if (!GetStatusPayload(&reader, &carried)) {
    return ParseError("malformed verdict payload");
  }
  return AttemptVerdict{false, std::move(carried)};
}

}  // namespace setrec
