#include "core/cascading_protocol.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

#include "core/encoding.h"
#include "hashing/random.h"
#include "iblt/iblt.h"
#include "setrec/set_reconciler.h"
#include "util/serialization.h"

namespace setrec {

namespace {

constexpr uint64_t kAttemptTag = 0x63736364ull;  // "cscd"

size_t CeilLog2(size_t x) {
  size_t level = 0;
  size_t value = 1;
  while (value < x) {
    value *= 2;
    ++level;
  }
  return level;
}

/// Child-IBLT config for level i: O(2^i) cells sized to decode child
/// differences of up to 2^i elements. A child's difference from its match
/// never exceeds d, so cells are capped at ~2.2(d+1) even at deep levels.
IbltConfig LevelChildConfig(size_t level, size_t d, uint64_t seed) {
  IbltConfig config;
  const double target =
      static_cast<double>(std::min<uint64_t>(1ull << level, d + 1));
  config.cells = std::max<size_t>(6, static_cast<size_t>(2.2 * target));
  config.num_hashes = 4;
  config.key_width = 8;
  config.seed = DeriveSeed(seed, 0x6c63686cull + level);  // "lchl"
  return config;
}

/// Outer table T_i config: sized for the expected number of undecoded child
/// encodings at level i (<= 2 d-hat at level 1, ~(9/4) d / 2^i deeper).
/// Deep levels hold very few (large) encodings, so the floor is kept low —
/// the paper's O(d / 2^i) cells.
IbltConfig LevelOuterConfig(size_t level, size_t d, size_t d_hat,
                            size_t blob_width, uint64_t seed) {
  size_t expected_keys;
  if (level == 1) {
    expected_keys = 2 * d_hat;
  } else {
    double deep = 2.5 * static_cast<double>(d) /
                  static_cast<double>(1ull << (level - 1));
    expected_keys = std::min<size_t>(2 * d_hat,
                                     static_cast<size_t>(std::ceil(deep)));
  }
  IbltConfig config;
  config.cells = std::max<size_t>(
      8, static_cast<size_t>(2.0 * static_cast<double>(expected_keys)) + 4);
  config.num_hashes = 4;
  config.key_width = blob_width;
  config.seed = DeriveSeed(seed, 0x6c6f7472ull + level);
  return config;
}

Iblt BuildChildSketch(const ChildSet& child, const IbltConfig& config) {
  Iblt sketch(config);
  sketch.InsertBatch(child);
  return sketch;
}

}  // namespace

Result<SetOfSets> CascadingProtocol::Attempt(const SetOfSets& alice,
                                             const SetOfSets& bob, size_t d,
                                             size_t d_hat, uint64_t seed,
                                             Channel* channel) const {
  const size_t h = params_.max_child_size;
  HashFamily fp_family(seed, /*tag=*/0x66706373ull);

  const size_t dm = std::min(d, h);
  const size_t t = std::max<size_t>(1, CeilLog2(dm));
  const bool has_star = h <= d;  // t == log2 h: append the direct table T*.

  std::vector<IbltConfig> child_configs;
  std::vector<IbltConfig> outer_configs;
  for (size_t i = 1; i <= t; ++i) {
    child_configs.push_back(LevelChildConfig(i, d, seed));
    outer_configs.push_back(LevelOuterConfig(
        i, d, d_hat, ChildIbltBlobWidth(child_configs.back()), seed));
  }
  IbltConfig star_config;
  if (has_star) {
    size_t star_keys = std::min<size_t>(
        2 * d_hat, static_cast<size_t>(
                       std::ceil(2.5 * static_cast<double>(d) /
                                 static_cast<double>(std::max<size_t>(h, 1)))) +
                       2);
    star_config = IbltConfig::ForDifference(
        std::max<size_t>(star_keys, 2),
        DeriveSeed(seed, /*tag=*/0x73746172ull), ChildBlobWidth(h));  // "star"
  }

  // --- Alice: every child encoded into every level (and T*). ---
  ByteWriter writer;
  writer.PutU64(ParentFingerprint(alice, fp_family));
  for (size_t level = 0; level < t; ++level) {
    Iblt outer(outer_configs[level]);
    for (const ChildSet& child : alice) {
      outer.Insert(EncodeChildIbltBlob(child, child_configs[level],
                                       ChildFingerprint(child, fp_family)));
    }
    outer.Serialize(&writer);
  }
  if (has_star) {
    Iblt star(star_config);
    for (const ChildSet& child : alice) {
      star.Insert(EncodeChildBlob(child, h));
    }
    star.Serialize(&writer);
  }
  size_t msg = channel->Send(Party::kAlice, writer.Take(), "cascade");

  // --- Bob ---
  ByteReader reader(channel->Receive(msg).payload);
  uint64_t alice_parent_fp = 0;
  if (!reader.GetU64(&alice_parent_fp)) {
    return ParseError("cascade message truncated");
  }
  std::vector<Iblt> outer_tables;
  for (size_t level = 0; level < t; ++level) {
    Result<Iblt> table = Iblt::Deserialize(&reader, outer_configs[level]);
    if (!table.ok()) return table.status();
    outer_tables.push_back(std::move(table).value());
  }
  Result<Iblt> star_table = has_star
                                ? Iblt::Deserialize(&reader, star_config)
                                : InvalidArgument("unused");
  if (has_star && !star_table.ok()) return star_table.status();

  std::vector<bool> in_db(bob.size(), false);   // Bob's differing children.
  SetOfSets da;                                  // Alice's recovered children.
  std::unordered_set<uint64_t> recovered_fps;    // Their fingerprints.
  // Outer/star decode views live in `outer_scratch` and are iterated while
  // the nested per-child decodes churn `child_scratch`; the split keeps the
  // views valid (one scratch would be invalidated by the first child
  // decode). Both warm up across levels and attempts.
  DecodeScratch outer_scratch;
  DecodeScratch child_scratch;

  for (size_t level = 0; level < t; ++level) {
    const IbltConfig& child_config = child_configs[level];
    Iblt& outer = outer_tables[level];

    // Delete Bob's children not yet known to differ (level 1: all of them),
    // and every already-recovered child of Alice's.
    std::map<std::vector<uint8_t>, size_t, KeyBytesLess> blob_to_child;
    for (size_t j = 0; j < bob.size(); ++j) {
      std::vector<uint8_t> blob = EncodeChildIbltBlob(
          bob[j], child_config, ChildFingerprint(bob[j], fp_family));
      if (!in_db[j]) outer.Erase(blob);
      blob_to_child.emplace(std::move(blob), j);
    }
    for (const ChildSet& child : da) {
      outer.Erase(EncodeChildIbltBlob(child, child_config,
                                      ChildFingerprint(child, fp_family)));
    }

    IbltPartialDecodeView decoded = outer.DecodePartial(&outer_scratch);

    // Negative encodings expose Bob children that differ from Alice's.
    for (const IbltKeyView& blob : decoded.entries.negative) {
      auto it = blob_to_child.find(blob);
      if (it != blob_to_child.end()) in_db[it->second] = true;
      // Unknown negatives are decode noise; later verification catches it.
    }

    // Partner sketches for this level: Bob's differing children (+ empty).
    std::vector<std::pair<Iblt, const ChildSet*>> partners;
    for (size_t j = 0; j < bob.size(); ++j) {
      if (in_db[j]) {
        partners.emplace_back(BuildChildSketch(bob[j], child_config),
                              &bob[j]);
      }
    }
    const ChildSet empty_set;
    partners.emplace_back(Iblt(child_config), &empty_set);

    for (const IbltKeyView& blob : decoded.entries.positive) {
      Result<ChildEncoding> enc_r = ParseChildIbltBlob(blob, child_config);
      if (!enc_r.ok()) continue;  // Noise; later levels retry.
      const ChildEncoding& enc = enc_r.value();
      if (recovered_fps.count(enc.fingerprint) > 0) continue;
      for (const auto& [partner_sketch, partner_set] : partners) {
        Iblt diff = enc.sketch;
        if (!diff.Subtract(partner_sketch).ok()) continue;
        Result<IbltDecodeResult64> dd = diff.DecodeU64(&child_scratch);
        if (!dd.ok()) continue;
        SetDifference sd;
        sd.remote_only = std::move(dd.value().positive);
        sd.local_only = std::move(dd.value().negative);
        ChildSet candidate = ApplyDifference(*partner_set, sd);
        if (ChildFingerprint(candidate, fp_family) == enc.fingerprint) {
          recovered_fps.insert(enc.fingerprint);
          da.push_back(std::move(candidate));
          break;
        }
      }
      // A miss here is fine: the child resurfaces at the next level with a
      // larger sketch (that is the cascade's whole point).
    }
  }

  if (has_star) {
    Iblt star = std::move(star_table).value();
    std::map<std::vector<uint8_t>, size_t, KeyBytesLess> blob_to_child;
    for (size_t j = 0; j < bob.size(); ++j) {
      std::vector<uint8_t> blob = EncodeChildBlob(bob[j], h);
      star.Erase(blob);
      blob_to_child.emplace(std::move(blob), j);
    }
    for (const ChildSet& child : da) star.Erase(EncodeChildBlob(child, h));
    IbltPartialDecodeView decoded = star.DecodePartial(&outer_scratch);
    for (const IbltKeyView& blob : decoded.entries.negative) {
      auto it = blob_to_child.find(blob);
      if (it != blob_to_child.end()) in_db[it->second] = true;
    }
    for (const IbltKeyView& blob : decoded.entries.positive) {
      Result<ChildSet> child = DecodeChildBlob(blob, h);
      if (!child.ok()) continue;
      uint64_t fp = ChildFingerprint(child.value(), fp_family);
      if (recovered_fps.count(fp) > 0) continue;
      recovered_fps.insert(fp);
      da.push_back(std::move(child).value());
    }
  }

  SetOfSets recovered;
  recovered.reserve(bob.size() + da.size());
  for (size_t j = 0; j < bob.size(); ++j) {
    if (!in_db[j]) recovered.push_back(bob[j]);
  }
  for (ChildSet& child : da) recovered.push_back(std::move(child));
  recovered = Canonicalize(std::move(recovered));
  if (ParentFingerprint(recovered, fp_family) != alice_parent_fp) {
    return VerificationFailure("cascade: parent fingerprint mismatch");
  }
  return recovered;
}

Result<SsrOutcome> CascadingProtocol::Reconcile(const SetOfSets& alice,
                                                const SetOfSets& bob,
                                                std::optional<size_t> known_d,
                                                Channel* channel) const {
  if (params_.max_child_size == 0) {
    return InvalidArgument("cascading protocol requires max_child_size (h)");
  }
  if (Status s = ValidateSetOfSets(alice, params_); !s.ok()) return s;
  if (Status s = ValidateSetOfSets(bob, params_); !s.ok()) return s;

  Status last = DecodeFailure("no attempts made");
  if (known_d.has_value()) {
    size_t d = std::max<size_t>(*known_d, 1);
    size_t d_hat = std::max<size_t>(DHat(d, params_), 1);
    for (int attempt = 0; attempt < params_.max_attempts; ++attempt) {
      uint64_t seed = DeriveSeed(params_.seed, kAttemptTag + attempt);
      Result<SetOfSets> recovered =
          Attempt(alice, bob, d, d_hat, seed, channel);
      if (recovered.ok()) {
        SsrOutcome outcome;
        outcome.recovered = std::move(recovered).value();
        outcome.stats = {channel->rounds(), channel->total_bytes(),
                         attempt + 1};
        return outcome;
      }
      last = recovered.status();
      if (last.code() == StatusCode::kParseError) return last;
    }
    return Exhausted("cascade (SSRK) failed: " + last.ToString());
  }

  // SSRU (Corollary 3.8): repeated doubling.
  constexpr int kMaxDoublings = 40;
  size_t d = 2;
  for (int round = 0; round < kMaxDoublings; ++round, d *= 2) {
    uint64_t seed = DeriveSeed(params_.seed, kAttemptTag + 1000 + round);
    size_t d_hat = std::max<size_t>(DHat(d, params_), 1);
    Result<SetOfSets> recovered = Attempt(alice, bob, d, d_hat, seed,
                                          channel);
    if (recovered.ok()) {
      SsrOutcome outcome;
      outcome.recovered = std::move(recovered).value();
      outcome.stats = {channel->rounds(), channel->total_bytes(), round + 1};
      return outcome;
    }
    last = recovered.status();
    if (last.code() == StatusCode::kParseError) return last;
  }
  return Exhausted("cascade (SSRU) failed: " + last.ToString());
}

}  // namespace setrec
