#include "core/cascading_protocol.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <unordered_set>

#include "core/build_context.h"
#include "core/encoding.h"
#include "core/split_party.h"
#include "hashing/random.h"
#include "iblt/iblt.h"
#include "setrec/set_reconciler.h"
#include "util/serialization.h"

namespace setrec {

namespace {

constexpr uint64_t kAttemptTag = 0x63736364ull;  // "cscd"
constexpr int kMaxDoublings = 40;  // SSRU: d = 2, 4, 8, ... (Corollary 3.8).

size_t CeilLog2(size_t x) {
  size_t level = 0;
  size_t value = 1;
  while (value < x) {
    value *= 2;
    ++level;
  }
  return level;
}

/// Child-IBLT config for level i: O(2^i) cells sized to decode child
/// differences of up to 2^i elements. A child's difference from its match
/// never exceeds d, so cells are capped at ~2.2(d+1) even at deep levels.
IbltConfig LevelChildConfig(size_t level, size_t d, uint64_t seed) {
  IbltConfig config;
  const double target =
      static_cast<double>(std::min<uint64_t>(1ull << level, d + 1));
  config.cells = std::max<size_t>(6, static_cast<size_t>(2.2 * target));
  config.num_hashes = 4;
  config.key_width = 8;
  config.seed = DeriveSeed(seed, 0x6c63686cull + level);  // "lchl"
  return config;
}

/// Outer table T_i config: sized for the expected number of undecoded child
/// encodings at level i (<= 2 d-hat at level 1, ~(9/4) d / 2^i deeper).
/// Deep levels hold very few (large) encodings, so the floor is kept low —
/// the paper's O(d / 2^i) cells.
IbltConfig LevelOuterConfig(size_t level, size_t d, size_t d_hat,
                            size_t blob_width, uint64_t seed) {
  size_t expected_keys;
  if (level == 1) {
    expected_keys = 2 * d_hat;
  } else {
    double deep = 2.5 * static_cast<double>(d) /
                  static_cast<double>(1ull << (level - 1));
    expected_keys = std::min<size_t>(2 * d_hat,
                                     static_cast<size_t>(std::ceil(deep)));
  }
  IbltConfig config;
  config.cells = std::max<size_t>(
      8, static_cast<size_t>(2.0 * static_cast<double>(expected_keys)) + 4);
  config.num_hashes = 4;
  config.key_width = blob_width;
  config.seed = DeriveSeed(seed, 0x6c6f7472ull + level);
  return config;
}

/// The full per-attempt table plan — levels 1..t plus the optional direct
/// table T*. Derived identically by both parties from shared knowledge.
struct CascadePlan {
  size_t t = 0;
  bool has_star = false;
  std::vector<IbltConfig> child_configs;
  std::vector<IbltConfig> outer_configs;
  IbltConfig star_config;
};

CascadePlan MakePlan(size_t h, size_t d, size_t d_hat, uint64_t seed) {
  CascadePlan plan;
  const size_t dm = std::min(d, h);
  plan.t = std::max<size_t>(1, CeilLog2(dm));
  plan.has_star = h <= d;  // t == log2 h: append the direct table T*.
  for (size_t i = 1; i <= plan.t; ++i) {
    plan.child_configs.push_back(LevelChildConfig(i, d, seed));
    plan.outer_configs.push_back(LevelOuterConfig(
        i, d, d_hat, ChildIbltBlobWidth(plan.child_configs.back()), seed));
  }
  if (plan.has_star) {
    size_t star_keys = std::min<size_t>(
        2 * d_hat, static_cast<size_t>(
                       std::ceil(2.5 * static_cast<double>(d) /
                                 static_cast<double>(std::max<size_t>(h, 1)))) +
                       2);
    plan.star_config = IbltConfig::ForDifference(
        std::max<size_t>(star_keys, 2),
        DeriveSeed(seed, /*tag=*/0x73746172ull), ChildBlobWidth(h));  // "star"
  }
  return plan;
}

/// Builds one side's child sketches for a level through the deferred
/// planner pass: one tiny batch per child, coalesced across children (and,
/// under the service, across sessions). `sketches` is emptied and refilled.
Task<Status> BuildLevelSketches(const SetOfSets& children,
                                const IbltConfig& child_config,
                                ProtocolContext* ctx,
                                std::vector<Iblt>* sketches) {
  sketches->clear();
  sketches->reserve(children.size());
  for (const ChildSet& child : children) {
    sketches->emplace_back(child_config);
    ctx->QueueInsertU64(&sketches->back(), child.data(), child.size());
  }
  co_await ctx->FlushBuilds();
  co_return Status::Ok();
}

}  // namespace

Task<Status> CascadingProtocol::AttemptAlice(const SetOfSets& alice, size_t d,
                                             size_t d_hat, uint64_t seed,
                                             size_t* next,
                                             AttemptTables* lineage,
                                             Channel* channel,
                                             ProtocolContext* ctx) const {
  const size_t h = params_.max_child_size;
  const bool sparse = params_.wire_codec == WireCodec::kSparse;
  HashFamily fp_family(seed, /*tag=*/0x66706373ull);
  const CascadePlan plan = MakePlan(h, d, d_hat, seed);

  // Every child encoded into every level (and T*). One message, memoized
  // across sessions sharing Alice's set; per-level child sketches and
  // outer-table updates run through the deferred planner passes. The wire
  // codec is part of the key (dense/sparse sessions must not replay each
  // other's bytes).
  uint64_t cache_key = ProtocolCacheKey(
      ctx->SetIdentity(&alice),
      {kAttemptTag, d, d_hat, seed, h,
       static_cast<uint64_t>(params_.wire_codec)});
  auto build = [&](ByteWriter* writer) -> Task<Status> {
    writer->PutU64(ParentFingerprint(alice, fp_family));
    std::vector<uint64_t> fps(alice.size());
    for (size_t i = 0; i < alice.size(); ++i) {
      fps[i] = ChildFingerprint(alice[i], fp_family);
    }
    AttemptTables built;  // This attempt's tables, kept only when sparse.
    std::vector<Iblt> sketches;
    for (size_t level = 0; level < plan.t; ++level) {
      Status s = co_await BuildLevelSketches(alice, plan.child_configs[level],
                                             ctx, &sketches);
      if (!s.ok()) co_return s;
      ByteWriter packed;
      for (size_t i = 0; i < alice.size(); ++i) {
        AppendChildIbltBlob(sketches[i], fps[i], &packed);
      }
      Iblt outer(plan.outer_configs[level]);
      ctx->QueueInsertBytes(&outer, packed.bytes().data(), alice.size());
      co_await ctx->FlushBuilds();
      // Delta vs. the previous attempt's table at this level when the
      // config repeats (a doubling retry changes the seed today, so this
      // mostly degrades to a full sparse frame — the lineage hook is what
      // makes any future same-config retransmission nearly free).
      TableLineage parent{level < lineage->outers.size()
                              ? &lineage->outers[level]
                              : nullptr};
      outer.SerializeWith(params_.wire_codec, writer, parent);
      if (sparse) built.outers.push_back(std::move(outer));
    }
    if (plan.has_star) {
      ByteWriter packed;
      for (const ChildSet& child : alice) {
        packed.PutBytes(EncodeChildBlob(child, h));
      }
      Iblt star(plan.star_config);
      ctx->QueueInsertBytes(&star, packed.bytes().data(), alice.size());
      co_await ctx->FlushBuilds();
      star.SerializeWith(
          params_.wire_codec, writer,
          TableLineage{lineage->star ? &*lineage->star : nullptr});
      if (sparse) built.star = std::move(star);
    }
    if (sparse) *lineage = std::move(built);
    co_return Status::Ok();
  };
  Result<size_t> sent =
      co_await CachedAliceSend(ctx, channel, cache_key, "cascade", build);
  if (!sent.ok()) co_return sent.status();
  assert(sent.value() == *next && "transcript index drifted (Alice)");
  ++*next;
  co_return Status::Ok();
}

Task<Result<SetOfSets>> CascadingProtocol::AttemptBob(
    const SetOfSets& bob, size_t d, size_t d_hat, uint64_t seed, size_t* next,
    AttemptTables* lineage, bool* peer_aborted, Channel* channel,
    ProtocolContext* ctx) const {
  const size_t h = params_.max_child_size;
  const bool sparse = params_.wire_codec == WireCodec::kSparse;
  HashFamily fp_family(seed, /*tag=*/0x66706373ull);
  const CascadePlan plan = MakePlan(h, d, d_hat, seed);
  uint64_t cache_key = ProtocolCacheKey(
      ctx->PeerSetIdentity(),
      {kAttemptTag, d, d_hat, seed, h,
       static_cast<uint64_t>(params_.wire_codec)});

  const Channel::Message& m = co_await ctx->Receive(channel, *next);
  ++*next;
  if (std::optional<Status> abort = PeerAbort(m)) {
    *peer_aborted = true;
    co_return *abort;
  }
  ByteReader reader(m.payload);
  uint64_t alice_parent_fp = 0;
  if (!reader.GetU64(&alice_parent_fp)) {
    co_return ParseError("cascade message truncated");
  }
  std::vector<Iblt> outer_tables;
  for (size_t level = 0; level < plan.t; ++level) {
    TableLineage parent{level < lineage->outers.size()
                            ? &lineage->outers[level]
                            : nullptr};
    Result<Iblt> table = ctx->ParseTableMemo(TableMemoKey(cache_key, level),
                                             &reader,
                                             plan.outer_configs[level],
                                             params_.wire_codec, parent);
    if (!table.ok()) co_return table.status();
    outer_tables.push_back(std::move(table).value());
  }
  Result<Iblt> star_table =
      plan.has_star
          ? ctx->ParseTableMemo(
                TableMemoKey(cache_key, plan.t), &reader, plan.star_config,
                params_.wire_codec,
                TableLineage{lineage->star ? &*lineage->star : nullptr})
          : InvalidArgument("unused");
  if (plan.has_star && !star_table.ok()) co_return star_table.status();
  if (sparse) {
    // Retain pristine copies for the next attempt's delta frames before the
    // decode below erases Bob's encodings out of the tables in place.
    lineage->outers = outer_tables;
    lineage->star.reset();
    if (plan.has_star) lineage->star = star_table.value();
  }

  std::vector<bool> in_db(bob.size(), false);   // Bob's differing children.
  SetOfSets da;                                  // Alice's recovered children.
  std::unordered_set<uint64_t> recovered_fps;    // Their fingerprints.
  std::vector<uint64_t> bob_fps(bob.size());
  for (size_t j = 0; j < bob.size(); ++j) {
    bob_fps[j] = ChildFingerprint(bob[j], fp_family);
  }
  // Outer/star decode views live in the pooled slot-0 scratch and are
  // iterated while the nested per-child decodes churn slot 1; the split
  // keeps the views valid (one scratch would be invalidated by the first
  // child decode). Within a level there is no suspension between the outer
  // decode and the last view use; across levels the table is re-decoded.
  DecodeScratch* outer_scratch = ctx->Scratch(0);
  DecodeScratch* child_scratch = ctx->Scratch(1);
  std::vector<Iblt> bob_sketches;
  std::vector<Iblt> da_sketches;

  for (size_t level = 0; level < plan.t; ++level) {
    const IbltConfig& child_config = plan.child_configs[level];
    const size_t blob_width = plan.outer_configs[level].key_width;
    Iblt& outer = outer_tables[level];

    // Bob's level-i encodings (all children, for the blob map) and the
    // recovered-children encodings, built through deferred sketch passes.
    if (Status s = co_await BuildLevelSketches(bob, child_config, ctx,
                                               &bob_sketches);
        !s.ok()) {
      co_return s;
    }
    if (Status s = co_await BuildLevelSketches(da, child_config, ctx,
                                               &da_sketches);
        !s.ok()) {
      co_return s;
    }
    ByteWriter bob_packed;
    for (size_t j = 0; j < bob.size(); ++j) {
      AppendChildIbltBlob(bob_sketches[j], bob_fps[j], &bob_packed);
    }
    // Delete Bob's children not yet known to differ (level 1: all of them),
    // and every already-recovered child of Alice's.
    ByteWriter erase_packed;
    size_t erase_count = 0;
    for (size_t j = 0; j < bob.size(); ++j) {
      if (!in_db[j]) {
        erase_packed.PutBytes(bob_packed.bytes().data() + j * blob_width,
                              blob_width);
        ++erase_count;
      }
    }
    for (size_t i = 0; i < da.size(); ++i) {
      AppendChildIbltBlob(da_sketches[i],
                          ChildFingerprint(da[i], fp_family), &erase_packed);
      ++erase_count;
    }
    ctx->QueueEraseBytes(&outer, erase_packed.bytes().data(), erase_count);
    co_await ctx->FlushBuilds();

    std::map<IbltKeyView, size_t, KeyBytesLess> blob_to_child;
    for (size_t j = 0; j < bob.size(); ++j) {
      blob_to_child.emplace(
          IbltKeyView{bob_packed.bytes().data() + j * blob_width, blob_width},
          j);
    }

    IbltPartialDecodeView decoded = outer.DecodePartial(outer_scratch);

    // Negative encodings expose Bob children that differ from Alice's.
    for (const IbltKeyView& blob : decoded.entries.negative) {
      auto it = blob_to_child.find(blob);
      if (it != blob_to_child.end()) in_db[it->second] = true;
      // Unknown negatives are decode noise; later verification catches it.
    }

    // Partner sketches for this level: Bob's differing children (+ empty).
    std::vector<std::pair<const Iblt*, const ChildSet*>> partners;
    for (size_t j = 0; j < bob.size(); ++j) {
      if (in_db[j]) partners.emplace_back(&bob_sketches[j], &bob[j]);
    }
    const ChildSet empty_set;
    const Iblt empty_sketch(child_config);
    partners.emplace_back(&empty_sketch, &empty_set);

    for (const IbltKeyView& blob : decoded.entries.positive) {
      Result<ChildEncoding> enc_r = ParseChildIbltBlob(blob, child_config);
      if (!enc_r.ok()) continue;  // Noise; later levels retry.
      const ChildEncoding& enc = enc_r.value();
      if (recovered_fps.count(enc.fingerprint) > 0) continue;
      for (const auto& [partner_sketch, partner_set] : partners) {
        Iblt diff = enc.sketch;
        if (!diff.Subtract(*partner_sketch).ok()) continue;
        Result<IbltDecodeView64> dd = diff.DecodeU64View(child_scratch);
        if (!dd.ok()) continue;
        ChildSet candidate = ApplyDifference(*partner_set,
                                             dd.value().positive,
                                             dd.value().negative);
        if (ChildFingerprint(candidate, fp_family) == enc.fingerprint) {
          recovered_fps.insert(enc.fingerprint);
          da.push_back(std::move(candidate));
          break;
        }
      }
      // A miss here is fine: the child resurfaces at the next level with a
      // larger sketch (that is the cascade's whole point).
    }
  }

  if (plan.has_star) {
    Iblt star = std::move(star_table).value();
    const size_t blob_width = plan.star_config.key_width;
    ByteWriter star_packed;
    for (const ChildSet& child : bob) {
      star_packed.PutBytes(EncodeChildBlob(child, h));
    }
    for (const ChildSet& child : da) {
      star_packed.PutBytes(EncodeChildBlob(child, h));
    }
    ctx->QueueEraseBytes(&star, star_packed.bytes().data(),
                         bob.size() + da.size());
    co_await ctx->FlushBuilds();
    std::map<IbltKeyView, size_t, KeyBytesLess> blob_to_child;
    for (size_t j = 0; j < bob.size(); ++j) {
      blob_to_child.emplace(
          IbltKeyView{star_packed.bytes().data() + j * blob_width, blob_width},
          j);
    }
    IbltPartialDecodeView decoded = star.DecodePartial(outer_scratch);
    for (const IbltKeyView& blob : decoded.entries.negative) {
      auto it = blob_to_child.find(blob);
      if (it != blob_to_child.end()) in_db[it->second] = true;
    }
    for (const IbltKeyView& blob : decoded.entries.positive) {
      Result<ChildSet> child = DecodeChildBlob(blob, h);
      if (!child.ok()) continue;
      uint64_t fp = ChildFingerprint(child.value(), fp_family);
      if (recovered_fps.count(fp) > 0) continue;
      recovered_fps.insert(fp);
      da.push_back(std::move(child).value());
    }
  }

  SetOfSets recovered;
  recovered.reserve(bob.size() + da.size());
  for (size_t j = 0; j < bob.size(); ++j) {
    if (!in_db[j]) recovered.push_back(bob[j]);
  }
  for (ChildSet& child : da) recovered.push_back(std::move(child));
  recovered = Canonicalize(std::move(recovered));
  if (ParentFingerprint(recovered, fp_family) != alice_parent_fp) {
    co_return VerificationFailure("cascade: parent fingerprint mismatch");
  }
  co_return recovered;
}

Task<Status> CascadingProtocol::ReconcileAsyncAlice(
    const SetOfSets& alice, std::optional<size_t> known_d, Channel* channel,
    ProtocolContext* ctx) const {
  if (params_.max_child_size == 0) {
    co_return InvalidArgument("cascading protocol requires max_child_size (h)");
  }
  Status valid = ValidateSetOfSetsMemo(alice, params_, ctx);
  if (!valid.ok()) {
    co_return co_await SendAbort(ctx, channel, Party::kAlice, valid);
  }
  size_t next = 0;

  const int trials = known_d.has_value() ? params_.max_attempts
                                         : kMaxDoublings;
  size_t d = known_d.has_value() ? std::max<size_t>(*known_d, 1) : 2;
  AttemptTables lineage;  // Previous attempt's tables (sparse delta frames).
  co_return co_await RunAliceTrials(
      ctx, channel, &next, trials,
      [&](int trial) {
        return DeriveSeed(
            params_.seed,
            kAttemptTag +
                static_cast<uint64_t>(known_d.has_value() ? trial : 1000 + trial));
      },
      [&](int, uint64_t seed) {
        size_t d_hat = std::max<size_t>(DHat(d, params_), 1);
        return AttemptAlice(alice, d, d_hat, seed, &next, &lineage, channel,
                            ctx);
      },
      [&] {
        // Clamped identically in both halves: a remote peer's fail
        // verdicts must not drive level counts / sketch sizes without
        // bound.
        if (!known_d.has_value()) {
          d = std::min<size_t>(d * 2, MaxWireDHat(/*key_width=*/8));
        }
      },
      std::string("cascade (") + (known_d.has_value() ? "SSRK" : "SSRU") +
          ") failed: ");
}

Task<Result<SsrOutcome>> CascadingProtocol::ReconcileAsyncBob(
    const SetOfSets& bob, std::optional<size_t> known_d, Channel* channel,
    ProtocolContext* ctx) const {
  if (params_.max_child_size == 0) {
    co_return InvalidArgument("cascading protocol requires max_child_size (h)");
  }
  Status valid = ValidateSetOfSets(bob, params_);
  size_t next = 0;
  if (!valid.ok()) {
    const Channel::Message& m = co_await ctx->Receive(channel, next);
    ++next;
    if (std::optional<Status> abort = PeerAbort(m)) co_return *abort;
    co_return co_await SendAbort(ctx, channel, Party::kBob, valid);
  }

  const int trials = known_d.has_value() ? params_.max_attempts
                                         : kMaxDoublings;
  size_t d = known_d.has_value() ? std::max<size_t>(*known_d, 1) : 2;
  AttemptTables lineage;  // Previous attempt's tables (sparse delta frames).
  co_return co_await RunBobTrials(
      ctx, channel, &next, trials,
      [&](int trial) {
        return DeriveSeed(
            params_.seed,
            kAttemptTag +
                static_cast<uint64_t>(known_d.has_value() ? trial : 1000 + trial));
      },
      [&](int, uint64_t seed, bool* peer_aborted) {
        size_t d_hat = std::max<size_t>(DHat(d, params_), 1);
        return AttemptBob(bob, d, d_hat, seed, &next, &lineage, peer_aborted,
                          channel, ctx);
      },
      [&] {
        if (!known_d.has_value()) {
          d = std::min<size_t>(d * 2, MaxWireDHat(/*key_width=*/8));
        }
      },
      std::string("cascade (") + (known_d.has_value() ? "SSRK" : "SSRU") +
          ") failed: ");
}

}  // namespace setrec
