#include "core/build_context.h"

namespace setrec {

namespace {
constexpr uint64_t kValidateTag = 0x76616c69ull;  // "vali"
}  // namespace

Status ValidateSetOfSetsMemo(const SetOfSets& set, const SsrParams& params,
                             ProtocolContext* ctx) {
  const uint64_t key = ProtocolCacheKey(
      ctx->SetIdentity(&set),
      {kValidateTag, params.max_child_size, params.max_children});
  if (key != 0 && ctx->CheckValidated(key)) return Status::Ok();
  Status status = ValidateSetOfSets(set, params);
  if (status.ok() && key != 0) ctx->MarkValidated(key);
  return status;
}

}  // namespace setrec
