#ifndef SETREC_CORE_IBLT_OF_IBLTS_H_
#define SETREC_CORE_IBLT_OF_IBLTS_H_

#include "core/protocol.h"

namespace setrec {

/// Algorithm 1 of the paper ("IBLTs of IBLTs", Theorem 3.5 / Corollary
/// 3.6). Each child set is encoded as an O(d)-cell child IBLT plus a child
/// fingerprint; the encodings are reconciled through an O(d-hat)-cell outer
/// IBLT. Bob decodes the outer table, then recovers each of Alice's
/// differing children by pairing her child IBLT with each of his own
/// differing children's IBLTs until one decodes and fingerprint-verifies
/// (O(d-hat^2) pairings of O(d) work each).
///
///   SSRK: 1 round,       O(d-hat * d log u + d-hat log s) bits,
///                        O(n + d-hat^2 d) time.
///   SSRU: O(log d) rounds by repeated doubling of d (Corollary 3.6).
class IbltOfIbltsProtocol : public SetsOfSetsProtocol {
 public:
  explicit IbltOfIbltsProtocol(const SsrParams& params) : params_(params) {}

  std::string Name() const override { return "iblt2"; }

  Task<Status> ReconcileAsyncAlice(const SetOfSets& alice,
                                   std::optional<size_t> known_d,
                                   Channel* channel,
                                   ProtocolContext* ctx) const override;
  Task<Result<SsrOutcome>> ReconcileAsyncBob(const SetOfSets& bob,
                                             std::optional<size_t> known_d,
                                             Channel* channel,
                                             ProtocolContext* ctx)
      const override;

 private:
  /// Builds and sends one attempt's outer-table message; the verdict is
  /// received by the caller. Both sides derive (d, d_hat, seed) from the
  /// shared params and the lockstep attempt/doubling schedule, so nothing
  /// extra crosses the wire.
  Task<Status> AttemptAlice(const SetOfSets& alice, size_t d, size_t d_hat,
                            uint64_t seed, size_t* next, Channel* channel,
                            ProtocolContext* ctx) const;
  Task<Result<SetOfSets>> AttemptBob(const SetOfSets& bob, size_t d,
                                     size_t d_hat, uint64_t seed,
                                     size_t* next, bool* peer_aborted,
                                     Channel* channel,
                                     ProtocolContext* ctx) const;

  SsrParams params_;
};

}  // namespace setrec

#endif  // SETREC_CORE_IBLT_OF_IBLTS_H_
