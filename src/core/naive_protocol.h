#ifndef SETREC_CORE_NAIVE_PROTOCOL_H_
#define SETREC_CORE_NAIVE_PROTOCOL_H_

#include "core/protocol.h"

namespace setrec {

/// The naive protocol of Section 3.1 (Theorems 3.3 and 3.4): ignore that
/// items are sets and treat each child set as an atomic element of a huge
/// universe. Each child is serialized into a fixed-width blob of
/// O(h log u) bits and the blobs are reconciled with a single blob-keyed
/// IBLT of O(d-hat) cells.
///
///   SSRK: 1 round,  O(d-hat * h log u) bits, O(n) time.
///   SSRU: 2 rounds (an l0 difference estimator over child fingerprints
///         first), same bits, O(n log d-hat) time.
class NaiveProtocol : public SetsOfSetsProtocol {
 public:
  explicit NaiveProtocol(const SsrParams& params) : params_(params) {}

  std::string Name() const override { return "naive"; }

  Task<Status> ReconcileAsyncAlice(const SetOfSets& alice,
                                   std::optional<size_t> known_d,
                                   Channel* channel,
                                   ProtocolContext* ctx) const override;
  Task<Result<SsrOutcome>> ReconcileAsyncBob(const SetOfSets& bob,
                                             std::optional<size_t> known_d,
                                             Channel* channel,
                                             ProtocolContext* ctx)
      const override;

 private:
  /// Builds and sends one attempt message (d-hat prefix in estimator mode,
  /// parent fingerprint, blob IBLT); the verdict is received by the caller.
  Task<Status> AttemptAlice(const SetOfSets& alice, size_t d_hat,
                            bool carry_d_hat, uint64_t seed, size_t* next,
                            Channel* channel, ProtocolContext* ctx) const;
  /// Receives one attempt message and tries to recover Alice's set.
  /// `*d_hat` is updated from the message prefix in estimator mode. A peer
  /// abort sets `*peer_aborted` and returns the carried status.
  Task<Result<SetOfSets>> AttemptBob(const SetOfSets& bob, size_t* d_hat,
                                     bool carry_d_hat, uint64_t seed,
                                     size_t* next, bool* peer_aborted,
                                     Channel* channel,
                                     ProtocolContext* ctx) const;

  SsrParams params_;
};

}  // namespace setrec

#endif  // SETREC_CORE_NAIVE_PROTOCOL_H_
