#ifndef SETREC_CORE_NAIVE_PROTOCOL_H_
#define SETREC_CORE_NAIVE_PROTOCOL_H_

#include "core/protocol.h"

namespace setrec {

/// The naive protocol of Section 3.1 (Theorems 3.3 and 3.4): ignore that
/// items are sets and treat each child set as an atomic element of a huge
/// universe. Each child is serialized into a fixed-width blob of
/// O(h log u) bits and the blobs are reconciled with a single blob-keyed
/// IBLT of O(d-hat) cells.
///
///   SSRK: 1 round,  O(d-hat * h log u) bits, O(n) time.
///   SSRU: 2 rounds (an l0 difference estimator over child fingerprints
///         first), same bits, O(n log d-hat) time.
class NaiveProtocol : public SetsOfSetsProtocol {
 public:
  explicit NaiveProtocol(const SsrParams& params) : params_(params) {}

  std::string Name() const override { return "naive"; }

  Task<Result<SsrOutcome>> ReconcileAsync(const SetOfSets& alice,
                                          const SetOfSets& bob,
                                          std::optional<size_t> known_d,
                                          Channel* channel,
                                          ProtocolContext* ctx) const override;

 private:
  Task<Result<SetOfSets>> Attempt(const SetOfSets& alice, const SetOfSets& bob,
                                  size_t d_hat, uint64_t seed, Channel* channel,
                                  ProtocolContext* ctx) const;

  SsrParams params_;
};

}  // namespace setrec

#endif  // SETREC_CORE_NAIVE_PROTOCOL_H_
