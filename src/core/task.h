#ifndef SETREC_CORE_TASK_H_
#define SETREC_CORE_TASK_H_

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <new>
#include <optional>
#include <utility>
#include <vector>

namespace setrec {

/// Freelist allocator for coroutine frames. Protocol coroutines are created
/// and destroyed once per session (plus one per CachedAliceSend builder and
/// per split-party half), and their frames were the service's main remaining
/// per-session heap traffic. Frames recycle through per-thread size-class
/// freelists: a warm service steps sessions without touching the global
/// allocator for frames at all (asserted with the operator-new counter in
/// tests/coro_pool_test.cc).
///
/// Thread model: freelists are thread_local, so concurrent session threads
/// (benches, the future multi-core scheduler) each recycle their own frames
/// with no synchronization. A frame allocated on one thread must be freed on
/// the same thread — true today because protocol coroutines never migrate
/// (planner workers only run batched cell updates, never coroutines).
class CoroFramePool {
 public:
  /// Size classes are 64-byte steps up to 16 KiB; larger frames fall through
  /// to the global allocator (none of the protocol coroutines get close).
  static constexpr size_t kAlign = 64;
  static constexpr size_t kMaxPooledBytes = 16u << 10;
  /// Frames kept per size class; beyond this, frees go to the allocator.
  static constexpr size_t kMaxPerClass = 128;

  static void* Allocate(size_t n) {
    if (n == 0) n = 1;
    if (n > kMaxPooledBytes) {
      ++tls().oversize;
      return ::operator new(n);
    }
    Tls& t = tls();
    std::vector<void*>& bucket = t.classes[ClassOf(n)];
    if (!bucket.empty()) {
      void* p = bucket.back();
      bucket.pop_back();
      ++t.reuses;
      return p;
    }
    ++t.fresh;
    return ::operator new(ClassBytes(n));
  }

  static void Deallocate(void* p, size_t n) noexcept {
    if (p == nullptr) return;
    if (n == 0) n = 1;
    if (n > kMaxPooledBytes) {
      ::operator delete(p);
      return;
    }
    std::vector<void*>& bucket = tls().classes[ClassOf(n)];
    if (bucket.size() < kMaxPerClass) {
      // push_back may itself allocate bucket capacity; that is one-time
      // warmup cost, not per-frame traffic.
      bucket.push_back(p);
      return;
    }
    ::operator delete(p);
  }

  struct Stats {
    /// Frames served from the freelist / from the allocator / too large.
    size_t reuses = 0;
    size_t fresh = 0;
    size_t oversize = 0;
  };
  static Stats ThreadStats() {
    const Tls& t = tls();
    return Stats{t.reuses, t.fresh, t.oversize};
  }
  /// Returns every pooled frame on this thread to the allocator (tests).
  static void TrimThreadCache() {
    for (std::vector<void*>& bucket : tls().classes) {
      for (void* p : bucket) ::operator delete(p);
      bucket.clear();
    }
  }

 private:
  static constexpr size_t kClasses = kMaxPooledBytes / kAlign;
  static size_t ClassOf(size_t n) { return (n - 1) / kAlign; }
  static size_t ClassBytes(size_t n) { return (ClassOf(n) + 1) * kAlign; }

  struct Tls {
    std::vector<void*> classes[kClasses];
    size_t reuses = 0;
    size_t fresh = 0;
    size_t oversize = 0;
    ~Tls() {
      for (std::vector<void*>& bucket : classes) {
        for (void* p : bucket) ::operator delete(p);
      }
    }
  };
  static Tls& tls() {
    thread_local Tls t;
    return t;
  }
};

/// A minimal lazy coroutine task, the resumable form of the protocol entry
/// points (SetsOfSetsProtocol::ReconcileAsync and its internal steps).
///
/// Semantics:
///  * Lazy: the coroutine body does not run until the task is awaited (or
///    Start()ed by a root driver such as RunSync or the SyncService).
///  * `co_await task` starts the child and transfers control to it
///    symmetrically; when the child finishes, its final suspend transfers
///    straight back to the awaiting parent (no scheduler in between).
///  * Ownership: the Task owns the coroutine frame and destroys it on
///    destruction. A task must not be awaited twice.
///
/// Protocol coroutines only ever suspend inside ProtocolContext awaitables
/// (round yields and build barriers). Under the InlineContext those
/// awaitables are always ready, so a Start() runs the whole pipeline to
/// completion synchronously — that is how the blocking Reconcile wrappers
/// drive the exact same code path the SyncService steps incrementally.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    std::optional<T> value;
    std::coroutine_handle<> continuation;

    /// Coroutine frames recycle through the per-thread freelist; a warm
    /// session creates and destroys its coroutines allocation-free.
    static void* operator new(size_t n) { return CoroFramePool::Allocate(n); }
    static void operator delete(void* p, size_t n) noexcept {
      CoroFramePool::Deallocate(p, n);
    }

    Task get_return_object() { return Task(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        std::coroutine_handle<> cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_value(T v) { value.emplace(std::move(v)); }
    /// The library is exception-free (Status/Result everywhere); an escape
    /// here is a bug, and unwinding a half-run protocol would corrupt the
    /// session, so fail fast.
    void unhandled_exception() noexcept { std::terminate(); }
  };

  Task() = default;
  explicit Task(Handle handle) : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  /// Awaiting a task starts it; the awaiter is resumed when it completes.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  T await_resume() { return std::move(*handle_.promise().value); }

  /// Root-driver interface (RunSync, SyncService): kick the coroutine off.
  /// It runs until its first genuine suspension (a parked awaitable) or to
  /// completion. Parked coroutines are resumed via the handle the awaitable
  /// captured, not through the Task.
  void Start() {
    assert(handle_ && !handle_.done());
    handle_.resume();
  }
  bool Done() const { return !handle_ || handle_.done(); }
  bool Valid() const { return static_cast<bool>(handle_); }
  /// The result; only valid once Done().
  T TakeResult() {
    assert(Done() && handle_.promise().value.has_value());
    return std::move(*handle_.promise().value);
  }

  /// Subscribes `parent` to be resumed (symmetric transfer from this task's
  /// final suspend) when the task completes, WITHOUT resuming the task now.
  /// Pairs with Start(): a root driver starts the task, external events
  /// resume it through parked awaitable handles, and the subscriber wakes at
  /// the end. Used by TaskJoin; at most one subscriber.
  void SetContinuation(std::coroutine_handle<> parent) {
    assert(handle_ && !handle_.promise().continuation);
    handle_.promise().continuation = parent;
  }

 private:
  Handle handle_;
};

/// Awaitable that completes when an already-started task finishes, leaving
/// the task's result in place (read it with TakeResult afterwards). Unlike
/// `co_await task`, joining never resumes the joined task — it only
/// subscribes — so it is safe on a task parked inside awaitables owned by
/// someone else. This is how a split-party composition waits for both of
/// its independently-driven halves.
template <typename T>
struct TaskJoin {
  Task<T>* task;

  bool await_ready() const noexcept { return task->Done(); }
  void await_suspend(std::coroutine_handle<> parent) const {
    task->SetContinuation(parent);
  }
  void await_resume() const noexcept {}
};

/// Runs a task that never genuinely suspends (all its awaitables are ready,
/// the InlineContext case) to completion and returns its result.
template <typename T>
T RunSync(Task<T> task) {
  task.Start();
  assert(task.Done() &&
         "RunSync task suspended; it was built against a deferring context");
  return task.TakeResult();
}

}  // namespace setrec

#endif  // SETREC_CORE_TASK_H_
