#ifndef SETREC_CORE_TASK_H_
#define SETREC_CORE_TASK_H_

#include <cassert>
#include <coroutine>
#include <optional>
#include <utility>

namespace setrec {

/// A minimal lazy coroutine task, the resumable form of the protocol entry
/// points (SetsOfSetsProtocol::ReconcileAsync and its internal steps).
///
/// Semantics:
///  * Lazy: the coroutine body does not run until the task is awaited (or
///    Start()ed by a root driver such as RunSync or the SyncService).
///  * `co_await task` starts the child and transfers control to it
///    symmetrically; when the child finishes, its final suspend transfers
///    straight back to the awaiting parent (no scheduler in between).
///  * Ownership: the Task owns the coroutine frame and destroys it on
///    destruction. A task must not be awaited twice.
///
/// Protocol coroutines only ever suspend inside ProtocolContext awaitables
/// (round yields and build barriers). Under the InlineContext those
/// awaitables are always ready, so a Start() runs the whole pipeline to
/// completion synchronously — that is how the blocking Reconcile wrappers
/// drive the exact same code path the SyncService steps incrementally.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    std::optional<T> value;
    std::coroutine_handle<> continuation;

    Task get_return_object() { return Task(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        std::coroutine_handle<> cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_value(T v) { value.emplace(std::move(v)); }
    /// The library is exception-free (Status/Result everywhere); an escape
    /// here is a bug, and unwinding a half-run protocol would corrupt the
    /// session, so fail fast.
    void unhandled_exception() noexcept { std::terminate(); }
  };

  Task() = default;
  explicit Task(Handle handle) : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  /// Awaiting a task starts it; the awaiter is resumed when it completes.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  T await_resume() { return std::move(*handle_.promise().value); }

  /// Root-driver interface (RunSync, SyncService): kick the coroutine off.
  /// It runs until its first genuine suspension (a parked awaitable) or to
  /// completion. Parked coroutines are resumed via the handle the awaitable
  /// captured, not through the Task.
  void Start() {
    assert(handle_ && !handle_.done());
    handle_.resume();
  }
  bool Done() const { return !handle_ || handle_.done(); }
  bool Valid() const { return static_cast<bool>(handle_); }
  /// The result; only valid once Done().
  T TakeResult() {
    assert(Done() && handle_.promise().value.has_value());
    return std::move(*handle_.promise().value);
  }

 private:
  Handle handle_;
};

/// Runs a task that never genuinely suspends (all its awaitables are ready,
/// the InlineContext case) to completion and returns its result.
template <typename T>
T RunSync(Task<T> task) {
  task.Start();
  assert(task.Done() &&
         "RunSync task suspended; it was built against a deferring context");
  return task.TakeResult();
}

}  // namespace setrec

#endif  // SETREC_CORE_TASK_H_
