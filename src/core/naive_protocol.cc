#include "core/naive_protocol.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "core/build_context.h"
#include "core/encoding.h"
#include "core/split_party.h"
#include "estimator/l0_estimator.h"
#include "hashing/random.h"
#include "iblt/iblt.h"
#include "util/serialization.h"

namespace setrec {

namespace {
constexpr uint64_t kAttemptTag = 0x6e616976ull;  // "naiv"
constexpr uint64_t kEstimatorTag = 0x6e764553ull;

/// Packs every child's fixed-width blob encoding into one contiguous
/// buffer, the shape Iblt::InsertBatch/EraseBatch consume.
std::vector<uint8_t> PackChildBlobs(const SetOfSets& children, size_t h) {
  const size_t width = ChildBlobWidth(h);
  std::vector<uint8_t> packed;
  packed.reserve(children.size() * width);
  for (const ChildSet& child : children) {
    std::vector<uint8_t> blob = EncodeChildBlob(child, h);
    packed.insert(packed.end(), blob.begin(), blob.end());
  }
  return packed;
}

L0Estimator::Params NaiveEstimatorParams(uint64_t protocol_seed) {
  L0Estimator::Params est_params;
  est_params.seed = DeriveSeed(protocol_seed, kEstimatorTag);
  return est_params;
}

}  // namespace

Task<Status> NaiveProtocol::AttemptAlice(const SetOfSets& alice, size_t d_hat,
                                         bool carry_d_hat, uint64_t seed,
                                         size_t* next, Channel* channel,
                                         ProtocolContext* ctx) const {
  const size_t h = params_.max_child_size;
  // The outer table must decode |E_A ⊕ E_B| <= 2 * d_hat blobs.
  IbltConfig config =
      IbltConfig::ForDifference(2 * d_hat, seed, ChildBlobWidth(h));
  HashFamily fp_family(seed, /*tag=*/0x70666e76ull);

  // Message memoized across sessions sharing Alice's set; the d-hat prefix
  // (estimator mode) is part of the cached bytes, so the mode flag is part
  // of the key — an SSRK session landing on the same (d_hat, seed) must
  // not replay prefixed SSRU bytes. The wire codec shapes the bytes too,
  // so it is part of the key: dense and sparse sessions coexist in one
  // service without replaying each other's encodings.
  uint64_t cache_key =
      ProtocolCacheKey(ctx->SetIdentity(&alice),
                       {kAttemptTag, d_hat, seed, h, carry_d_hat ? 1u : 0u,
                        static_cast<uint64_t>(params_.wire_codec)});
  auto build = [&](ByteWriter* writer) -> Task<Status> {
    if (carry_d_hat) writer->PutVarint(d_hat);
    Iblt table(config);
    std::vector<uint8_t> packed = PackChildBlobs(alice, h);
    ctx->QueueInsertBytes(&table, packed.data(), alice.size());
    co_await ctx->FlushBuilds();
    writer->PutU64(ParentFingerprint(alice, fp_family));
    table.SerializeWith(params_.wire_codec, writer);
    co_return Status::Ok();
  };
  Result<size_t> sent =
      co_await CachedAliceSend(ctx, channel, cache_key, "naive-iblt", build);
  if (!sent.ok()) co_return sent.status();
  assert(sent.value() == *next && "transcript index drifted (Alice)");
  ++*next;
  co_return Status::Ok();
}

Task<Result<SetOfSets>> NaiveProtocol::AttemptBob(
    const SetOfSets& bob, size_t* d_hat, bool carry_d_hat, uint64_t seed,
    size_t* next, bool* peer_aborted, Channel* channel,
    ProtocolContext* ctx) const {
  const size_t h = params_.max_child_size;
  const size_t width = ChildBlobWidth(h);

  const Channel::Message& m = co_await ctx->Receive(channel, *next);
  ++*next;
  if (std::optional<Status> abort = PeerAbort(m)) {
    *peer_aborted = true;
    co_return *abort;
  }
  ByteReader reader(m.payload);
  if (carry_d_hat) {
    uint64_t wire = 0;
    if (!reader.GetVarint(&wire) || !WireDHatPlausible(wire, width)) {
      co_return ParseError("naive message carries an invalid d-hat");
    }
    *d_hat = static_cast<size_t>(wire);
  }
  IbltConfig config = IbltConfig::ForDifference(2 * *d_hat, seed, width);
  HashFamily fp_family(seed, /*tag=*/0x70666e76ull);
  uint64_t cache_key = ProtocolCacheKey(
      ctx->PeerSetIdentity(),
      {kAttemptTag, *d_hat, seed, h, carry_d_hat ? 1u : 0u,
       static_cast<uint64_t>(params_.wire_codec)});

  uint64_t alice_fp = 0;
  if (!reader.GetU64(&alice_fp)) co_return ParseError("naive message truncated");
  Result<Iblt> received = ctx->ParseTableMemo(TableMemoKey(cache_key, 0),
                                              &reader, config,
                                              params_.wire_codec);
  if (!received.ok()) co_return received.status();
  Iblt remote = std::move(received).value();
  std::vector<uint8_t> bob_packed = PackChildBlobs(bob, h);
  ctx->QueueEraseBytes(&remote, bob_packed.data(), bob.size());
  co_await ctx->FlushBuilds();

  // The decoded entries are views into the pooled scratch arena; they stay
  // valid for the rest of this attempt (no suspension or further decode
  // through this scratch before the last view use).
  DecodeScratch* scratch = ctx->Scratch(0);
  Result<IbltDecodeView> decoded = remote.Decode(scratch);
  if (!decoded.ok()) co_return decoded.status();

  // Positive blobs are Alice-only children; negatives are Bob-only. The
  // multimap is keyed by views (no materialization) and probed with Bob's
  // owned encodings via the transparent comparator.
  std::map<IbltKeyView, int, KeyBytesLess> to_remove;
  for (const IbltKeyView& blob : decoded.value().negative) to_remove[blob] += 1;

  SetOfSets recovered;
  recovered.reserve(bob.size() + decoded.value().positive.size());
  for (size_t i = 0; i < bob.size(); ++i) {
    IbltKeyView blob{bob_packed.data() + i * width, width};
    auto it = to_remove.find(blob);
    if (it != to_remove.end() && it->second > 0) {
      it->second -= 1;
      continue;
    }
    recovered.push_back(bob[i]);
  }
  for (const IbltKeyView& blob : decoded.value().positive) {
    Result<ChildSet> child = DecodeChildBlob(blob, h);
    if (!child.ok()) co_return child.status();
    recovered.push_back(std::move(child).value());
  }
  recovered = Canonicalize(std::move(recovered));
  if (ParentFingerprint(recovered, fp_family) != alice_fp) {
    co_return VerificationFailure("naive: recovered parent fingerprint mismatch");
  }
  co_return recovered;
}

Task<Status> NaiveProtocol::ReconcileAsyncAlice(const SetOfSets& alice,
                                                std::optional<size_t> known_d,
                                                Channel* channel,
                                                ProtocolContext* ctx) const {
  if (params_.max_child_size == 0) {
    co_return InvalidArgument("naive protocol requires max_child_size (h)");
  }
  Status valid = ValidateSetOfSetsMemo(alice, params_, ctx);
  const bool estimated = !known_d.has_value();
  size_t next = 0;  // Index of the next transcript message.

  size_t d_hat = 0;
  if (!estimated) {
    // Alice opens; an invalid set aborts in her slot.
    if (!valid.ok()) {
      co_return co_await SendAbort(ctx, channel, Party::kAlice, valid);
    }
    d_hat = std::max<size_t>(DHat(*known_d, params_), 1);
  } else {
    // SSRU (Theorem 3.4): Bob opens with an l0 estimator over his child
    // fingerprints; Alice merges her own and derives d-hat, which rides to
    // Bob as the attempt-message prefix.
    const Channel::Message& m = co_await ctx->Receive(channel, next);
    ++next;
    if (std::optional<Status> abort = PeerAbort(m)) co_return *abort;
    if (!valid.ok()) {
      co_return co_await SendAbort(ctx, channel, Party::kAlice, valid);
    }
    const L0Estimator::Params est_params = NaiveEstimatorParams(params_.seed);
    HashFamily child_fp_family(est_params.seed, /*tag=*/0x63667076ull);
    ByteReader reader(m.payload);
    Result<L0Estimator> merged_r = L0Estimator::Deserialize(&reader,
                                                            est_params);
    if (!merged_r.ok()) {
      co_return co_await SendAbort(ctx, channel, Party::kAlice,
                                   merged_r.status());
    }
    L0Estimator merged = std::move(merged_r).value();
    L0Estimator alice_est(est_params);
    std::vector<uint64_t> alice_fps;
    alice_fps.reserve(alice.size());
    for (const ChildSet& child : alice) {
      alice_fps.push_back(ChildFingerprint(child, child_fp_family));
    }
    ctx->QueueL0Update(&alice_est, alice_fps.data(), alice_fps.size(), 1);
    co_await ctx->FlushBuilds();
    if (Status s = merged.Merge(alice_est); !s.ok()) {
      co_return co_await SendAbort(ctx, channel, Party::kAlice, s);
    }
    // The estimate covers both sides' differing children (~2 d-hat).
    // Clamped to the wire bound Bob's side enforces (WireDHatPlausible).
    d_hat = std::min<size_t>(
        std::max<size_t>(
            static_cast<size_t>(params_.estimate_slack *
                                static_cast<double>(merged.Estimate())) /
                2,
            2),
        MaxWireDHat(ChildBlobWidth(params_.max_child_size)));
  }

  // Shared trial driver: the verdict exchange, abort slots and retry
  // schedule are the same instantiation Bob's half runs (wire lockstep by
  // construction).
  co_return co_await RunAliceTrials(
      ctx, channel, &next, params_.max_attempts,
      [&](int trial) {
        return DeriveSeed(params_.seed,
                          kAttemptTag + static_cast<uint64_t>(trial));
      },
      [&](int, uint64_t seed) {
        return AttemptAlice(alice, d_hat, estimated, seed, &next, channel,
                            ctx);
      },
      [&] {
        if (estimated) {
          // Estimator may have been low; doubling stays under the wire
          // bound.
          d_hat = std::min<size_t>(
              d_hat * 2, MaxWireDHat(ChildBlobWidth(params_.max_child_size)));
        }
      },
      "naive protocol failed: ");
}

Task<Result<SsrOutcome>> NaiveProtocol::ReconcileAsyncBob(
    const SetOfSets& bob, std::optional<size_t> known_d, Channel* channel,
    ProtocolContext* ctx) const {
  if (params_.max_child_size == 0) {
    co_return InvalidArgument("naive protocol requires max_child_size (h)");
  }
  Status valid = ValidateSetOfSets(bob, params_);
  const bool estimated = !known_d.has_value();
  size_t next = 0;

  size_t d_hat = 0;
  if (!estimated) {
    d_hat = std::max<size_t>(DHat(*known_d, params_), 1);
    if (!valid.ok()) {
      // Bob's first slot is the verdict after Alice's opener; abort there
      // (her abort, if any, wins — matching the combined-path order of
      // validation errors).
      const Channel::Message& m = co_await ctx->Receive(channel, next);
      ++next;
      if (std::optional<Status> abort = PeerAbort(m)) co_return *abort;
      co_return co_await SendAbort(ctx, channel, Party::kBob, valid);
    }
  } else {
    // Bob opens with the estimator (or aborts in that slot).
    if (!valid.ok()) {
      co_return co_await SendAbort(ctx, channel, Party::kBob, valid);
    }
    const L0Estimator::Params est_params = NaiveEstimatorParams(params_.seed);
    HashFamily child_fp_family(est_params.seed, /*tag=*/0x63667076ull);
    L0Estimator bob_est(est_params);
    std::vector<uint64_t> bob_fps;
    bob_fps.reserve(bob.size());
    for (const ChildSet& child : bob) {
      bob_fps.push_back(ChildFingerprint(child, child_fp_family));
    }
    ctx->QueueL0Update(&bob_est, bob_fps.data(), bob_fps.size(), 2);
    co_await ctx->FlushBuilds();
    ByteWriter writer;
    bob_est.Serialize(&writer);
    size_t index = co_await ctx->Send(channel, Party::kBob, writer.Take(),
                                      "naive-estimator");
    assert(index == next && "transcript index drifted (Bob)");
    (void)index;
    ++next;
  }

  // Bob's retry state (d_hat) rides on the wire (AttemptBob parses the
  // prefix), so his on_retry hook is empty.
  co_return co_await RunBobTrials(
      ctx, channel, &next, params_.max_attempts,
      [&](int trial) {
        return DeriveSeed(params_.seed,
                          kAttemptTag + static_cast<uint64_t>(trial));
      },
      [&](int, uint64_t seed, bool* peer_aborted) {
        return AttemptBob(bob, &d_hat, estimated, seed, &next, peer_aborted,
                          channel, ctx);
      },
      [] {}, "naive protocol failed: ");
}

}  // namespace setrec
