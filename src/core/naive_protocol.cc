#include "core/naive_protocol.h"

#include <algorithm>
#include <map>

#include "core/build_context.h"
#include "core/encoding.h"
#include "estimator/l0_estimator.h"
#include "hashing/random.h"
#include "iblt/iblt.h"
#include "util/serialization.h"

namespace setrec {

namespace {
constexpr uint64_t kAttemptTag = 0x6e616976ull;  // "naiv"
constexpr uint64_t kEstimatorTag = 0x6e764553ull;

/// Packs every child's fixed-width blob encoding into one contiguous
/// buffer, the shape Iblt::InsertBatch/EraseBatch consume.
std::vector<uint8_t> PackChildBlobs(const SetOfSets& children, size_t h) {
  const size_t width = ChildBlobWidth(h);
  std::vector<uint8_t> packed;
  packed.reserve(children.size() * width);
  for (const ChildSet& child : children) {
    std::vector<uint8_t> blob = EncodeChildBlob(child, h);
    packed.insert(packed.end(), blob.begin(), blob.end());
  }
  return packed;
}

}  // namespace

Task<Result<SetOfSets>> NaiveProtocol::Attempt(const SetOfSets& alice,
                                               const SetOfSets& bob,
                                               size_t d_hat, uint64_t seed,
                                               Channel* channel,
                                               ProtocolContext* ctx) const {
  const size_t h = params_.max_child_size;
  const size_t width = ChildBlobWidth(h);
  // The outer table must decode |E_A ⊕ E_B| <= 2 * d_hat blobs.
  IbltConfig config = IbltConfig::ForDifference(2 * d_hat, seed, width);
  HashFamily fp_family(seed, /*tag=*/0x70666e76ull);

  // --- Alice --- (message memoized across sessions sharing her set)
  uint64_t cache_key = ProtocolCacheKey(
      ctx->SetIdentity(&alice), {kAttemptTag, d_hat, seed, h});
  auto build = [&](ByteWriter* writer) -> Task<Status> {
    Iblt table(config);
    std::vector<uint8_t> packed = PackChildBlobs(alice, h);
    ctx->QueueInsertBytes(&table, packed.data(), alice.size());
    co_await ctx->FlushBuilds();
    writer->PutU64(ParentFingerprint(alice, fp_family));
    table.Serialize(writer);
    co_return Status::Ok();
  };
  Result<size_t> sent =
      co_await CachedAliceSend(ctx, channel, cache_key, "naive-iblt", build);
  if (!sent.ok()) co_return sent.status();
  size_t msg = sent.value();

  // --- Bob ---
  ByteReader reader(channel->Receive(msg).payload);
  uint64_t alice_fp = 0;
  if (!reader.GetU64(&alice_fp)) co_return ParseError("naive message truncated");
  Result<Iblt> received =
      ctx->ParseTableMemo(TableMemoKey(cache_key, 0), &reader, config);
  if (!received.ok()) co_return received.status();
  Iblt remote = std::move(received).value();
  std::vector<uint8_t> bob_packed = PackChildBlobs(bob, h);
  ctx->QueueEraseBytes(&remote, bob_packed.data(), bob.size());
  co_await ctx->FlushBuilds();

  // The decoded entries are views into the pooled scratch arena; they stay
  // valid for the rest of this attempt (no suspension or further decode
  // through this scratch before the last view use).
  DecodeScratch* scratch = ctx->Scratch(0);
  Result<IbltDecodeView> decoded = remote.Decode(scratch);
  if (!decoded.ok()) co_return decoded.status();

  // Positive blobs are Alice-only children; negatives are Bob-only. The
  // multimap is keyed by views (no materialization) and probed with Bob's
  // owned encodings via the transparent comparator.
  std::map<IbltKeyView, int, KeyBytesLess> to_remove;
  for (const IbltKeyView& blob : decoded.value().negative) to_remove[blob] += 1;

  SetOfSets recovered;
  recovered.reserve(bob.size() + decoded.value().positive.size());
  for (size_t i = 0; i < bob.size(); ++i) {
    IbltKeyView blob{bob_packed.data() + i * width, width};
    auto it = to_remove.find(blob);
    if (it != to_remove.end() && it->second > 0) {
      it->second -= 1;
      continue;
    }
    recovered.push_back(bob[i]);
  }
  for (const IbltKeyView& blob : decoded.value().positive) {
    Result<ChildSet> child = DecodeChildBlob(blob, h);
    if (!child.ok()) co_return child.status();
    recovered.push_back(std::move(child).value());
  }
  recovered = Canonicalize(std::move(recovered));
  if (ParentFingerprint(recovered, fp_family) != alice_fp) {
    co_return VerificationFailure("naive: recovered parent fingerprint mismatch");
  }
  co_return recovered;
}

Task<Result<SsrOutcome>> NaiveProtocol::ReconcileAsync(
    const SetOfSets& alice, const SetOfSets& bob,
    std::optional<size_t> known_d, Channel* channel,
    ProtocolContext* ctx) const {
  if (params_.max_child_size == 0) {
    co_return InvalidArgument("naive protocol requires max_child_size (h)");
  }
  if (Status s = ValidateSetOfSetsMemo(alice, params_, ctx); !s.ok()) {
    co_return s;
  }
  if (Status s = ValidateSetOfSets(bob, params_); !s.ok()) co_return s;

  size_t d_hat;
  if (known_d.has_value()) {
    d_hat = std::max<size_t>(DHat(*known_d, params_), 1);
  } else {
    // SSRU (Theorem 3.4): Bob sends an l0 estimator over his child
    // fingerprints; the number of differing children is the fingerprint
    // set difference (up to fingerprint collisions).
    L0Estimator::Params est_params;
    est_params.seed = DeriveSeed(params_.seed, kEstimatorTag);
    HashFamily child_fp_family(est_params.seed, /*tag=*/0x63667076ull);
    L0Estimator bob_est(est_params);
    std::vector<uint64_t> bob_fps;
    bob_fps.reserve(bob.size());
    for (const ChildSet& child : bob) {
      bob_fps.push_back(ChildFingerprint(child, child_fp_family));
    }
    ctx->QueueL0Update(&bob_est, bob_fps.data(), bob_fps.size(), 2);
    co_await ctx->FlushBuilds();
    ByteWriter writer;
    bob_est.Serialize(&writer);
    size_t msg = co_await ctx->Send(channel, Party::kBob, writer.Take(),
                                    "naive-estimator");

    ByteReader reader(channel->Receive(msg).payload);
    Result<L0Estimator> merged_r = L0Estimator::Deserialize(&reader,
                                                            est_params);
    if (!merged_r.ok()) co_return merged_r.status();
    L0Estimator merged = std::move(merged_r).value();
    L0Estimator alice_est(est_params);
    std::vector<uint64_t> alice_fps;
    alice_fps.reserve(alice.size());
    for (const ChildSet& child : alice) {
      alice_fps.push_back(ChildFingerprint(child, child_fp_family));
    }
    ctx->QueueL0Update(&alice_est, alice_fps.data(), alice_fps.size(), 1);
    co_await ctx->FlushBuilds();
    if (Status s = merged.Merge(alice_est); !s.ok()) co_return s;
    // The estimate covers both sides' differing children (~2 d-hat).
    d_hat = std::max<size_t>(
        static_cast<size_t>(params_.estimate_slack *
                            static_cast<double>(merged.Estimate())) /
            2,
        2);
  }

  Status last = DecodeFailure("no attempts made");
  for (int attempt = 0; attempt < params_.max_attempts; ++attempt) {
    uint64_t seed = DeriveSeed(params_.seed, kAttemptTag + attempt);
    Result<SetOfSets> recovered =
        co_await Attempt(alice, bob, d_hat, seed, channel, ctx);
    if (recovered.ok()) {
      SsrOutcome outcome;
      outcome.recovered = std::move(recovered).value();
      outcome.stats = {channel->rounds(), channel->total_bytes(),
                       attempt + 1};
      co_return outcome;
    }
    last = recovered.status();
    if (last.code() == StatusCode::kParseError) co_return last;
    if (!known_d.has_value()) d_hat *= 2;  // Estimator may have been low.
  }
  co_return Exhausted("naive protocol failed: " + last.ToString());
}

}  // namespace setrec
