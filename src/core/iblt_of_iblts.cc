#include "core/iblt_of_iblts.h"

#include <algorithm>
#include <map>

#include "core/build_context.h"
#include "core/encoding.h"
#include "hashing/random.h"
#include "iblt/iblt.h"
#include "setrec/set_reconciler.h"
#include "util/serialization.h"

namespace setrec {

namespace {
constexpr uint64_t kAttemptTag = 0x69626c32ull;  // "ibl2"

/// Tries to recover Alice's child set behind `alice_enc` by decoding her
/// child IBLT against `partner_sketch` (one of Bob's differing children, or
/// an empty sketch) and applying the difference to `partner_set`. The
/// decode goes through the zero-allocation u64 view path; ApplyDifference
/// sorts its own working copies, so the views are consumed as decoded.
Result<ChildSet> TryRecoverChild(const ChildEncoding& alice_enc,
                                 const Iblt& partner_sketch,
                                 const ChildSet& partner_set,
                                 const HashFamily& fp_family,
                                 DecodeScratch* scratch) {
  Iblt diff = alice_enc.sketch;
  if (Status s = diff.Subtract(partner_sketch); !s.ok()) return s;
  Result<IbltDecodeView64> decoded = diff.DecodeU64View(scratch);
  if (!decoded.ok()) return decoded.status();
  ChildSet candidate = ApplyDifference(partner_set, decoded.value().positive,
                                       decoded.value().negative);
  if (ChildFingerprint(candidate, fp_family) != alice_enc.fingerprint) {
    return VerificationFailure("child fingerprint mismatch");
  }
  return candidate;
}

}  // namespace

Task<Result<SetOfSets>> IbltOfIbltsProtocol::Attempt(
    const SetOfSets& alice, const SetOfSets& bob, size_t d, size_t d_hat,
    uint64_t seed, Channel* channel, ProtocolContext* ctx) const {
  HashFamily fp_family(seed, /*tag=*/0x66703262ull);
  IbltConfig child_config = IbltConfig::ForDifference(
      d, DeriveSeed(seed, /*tag=*/0x63686c64ull), /*key_width=*/8);
  IbltConfig outer_config = IbltConfig::ForDifference(
      2 * d_hat, seed, ChildIbltBlobWidth(child_config));

  // --- Alice: encode every child, insert encodings into the outer table.
  // Child sketches are built through the deferred planner pass (one tiny
  // batch per child, coalesced across children and sessions), then the
  // packed blobs land in the outer table as one batch. The whole message is
  // memoized across sessions sharing Alice's set.
  uint64_t cache_key = ProtocolCacheKey(ctx->SetIdentity(&alice),
                                        {kAttemptTag, d, d_hat, seed});
  auto build = [&](ByteWriter* writer) -> Task<Status> {
    std::vector<Iblt> sketches;
    sketches.reserve(alice.size());
    for (const ChildSet& child : alice) {
      sketches.emplace_back(child_config);
      ctx->QueueInsertU64(&sketches.back(), child.data(), child.size());
    }
    co_await ctx->FlushBuilds();
    ByteWriter packed;
    for (size_t i = 0; i < alice.size(); ++i) {
      AppendChildIbltBlob(sketches[i],
                          ChildFingerprint(alice[i], fp_family), &packed);
    }
    Iblt outer(outer_config);
    ctx->QueueInsertBytes(&outer, packed.bytes().data(), alice.size());
    co_await ctx->FlushBuilds();
    writer->PutU64(ParentFingerprint(alice, fp_family));
    outer.Serialize(writer);
    co_return Status::Ok();
  };
  Result<size_t> sent =
      co_await CachedAliceSend(ctx, channel, cache_key, "iblt2-outer", build);
  if (!sent.ok()) co_return sent.status();
  size_t msg = sent.value();

  // --- Bob ---
  ByteReader reader(channel->Receive(msg).payload);
  uint64_t alice_parent_fp = 0;
  if (!reader.GetU64(&alice_parent_fp)) {
    co_return ParseError("iblt2 message truncated");
  }
  Result<Iblt> received =
      ctx->ParseTableMemo(TableMemoKey(cache_key, 0), &reader, outer_config);
  if (!received.ok()) co_return received.status();
  Iblt remote = std::move(received).value();

  // Bob's own encodings, built the same deferred way as Alice's, erased
  // from the outer table as one batch.
  const size_t blob_width = outer_config.key_width;
  std::vector<Iblt> bob_sketches;
  bob_sketches.reserve(bob.size());
  for (const ChildSet& child : bob) {
    bob_sketches.emplace_back(child_config);
    ctx->QueueInsertU64(&bob_sketches.back(), child.data(), child.size());
  }
  co_await ctx->FlushBuilds();
  ByteWriter bob_packed;
  for (size_t i = 0; i < bob.size(); ++i) {
    AppendChildIbltBlob(bob_sketches[i],
                        ChildFingerprint(bob[i], fp_family), &bob_packed);
  }
  ctx->QueueEraseBytes(&remote, bob_packed.bytes().data(), bob.size());
  co_await ctx->FlushBuilds();

  // Bob's encodings keyed by blob so decoded negatives map back to his
  // concrete child sets; probed with decode views via the transparent
  // comparator.
  std::map<IbltKeyView, size_t, KeyBytesLess> blob_to_child;
  for (size_t i = 0; i < bob.size(); ++i) {
    blob_to_child.emplace(
        IbltKeyView{bob_packed.bytes().data() + i * blob_width, blob_width},
        i);
  }

  // Two pooled scratches: slot 0 owns the outer-table decode views, which
  // must stay valid while the child decodes below churn slot 1 (one scratch
  // would be invalidated by the first child decode). No suspension happens
  // between this decode and the last view use.
  DecodeScratch* outer_scratch = ctx->Scratch(0);
  DecodeScratch* child_scratch = ctx->Scratch(1);
  Result<IbltDecodeView> decoded = remote.Decode(outer_scratch);
  if (!decoded.ok()) co_return decoded.status();

  // D_B: Bob's children whose encodings differ from all of Alice's.
  struct Partner {
    ChildEncoding encoding;
    const ChildSet* set;
  };
  std::vector<Partner> partners;
  std::vector<bool> in_db(bob.size(), false);
  for (const IbltKeyView& blob : decoded.value().negative) {
    auto it = blob_to_child.find(blob);
    if (it == blob_to_child.end()) {
      co_return VerificationFailure("iblt2: unknown negative encoding");
    }
    Result<ChildEncoding> enc = ParseChildIbltBlob(blob, child_config);
    if (!enc.ok()) co_return enc.status();
    in_db[it->second] = true;
    partners.push_back(Partner{std::move(enc).value(), &bob[it->second]});
  }
  // A fresh child of Alice's may have no close partner; pairing against the
  // empty set recovers it when it has at most ~d elements.
  const ChildSet empty_set;
  const Iblt empty_sketch(child_config);

  // D_A: recover each of Alice's differing children.
  SetOfSets recovered_children;
  for (const IbltKeyView& blob : decoded.value().positive) {
    Result<ChildEncoding> enc_r = ParseChildIbltBlob(blob, child_config);
    if (!enc_r.ok()) co_return enc_r.status();
    const ChildEncoding& enc = enc_r.value();
    bool ok = false;
    for (const Partner& partner : partners) {
      Result<ChildSet> child =
          TryRecoverChild(enc, partner.encoding.sketch, *partner.set,
                          fp_family, child_scratch);
      if (child.ok()) {
        recovered_children.push_back(std::move(child).value());
        ok = true;
        break;
      }
    }
    if (!ok) {
      Result<ChildSet> child = TryRecoverChild(enc, empty_sketch, empty_set,
                                               fp_family, child_scratch);
      if (child.ok()) {
        recovered_children.push_back(std::move(child).value());
        ok = true;
      }
    }
    if (!ok) {
      co_return DecodeFailure("iblt2: a child IBLT decoded with no partner");
    }
  }

  SetOfSets recovered;
  recovered.reserve(bob.size() + recovered_children.size());
  for (size_t i = 0; i < bob.size(); ++i) {
    if (!in_db[i]) recovered.push_back(bob[i]);
  }
  for (ChildSet& child : recovered_children) {
    recovered.push_back(std::move(child));
  }
  recovered = Canonicalize(std::move(recovered));
  if (ParentFingerprint(recovered, fp_family) != alice_parent_fp) {
    co_return VerificationFailure("iblt2: parent fingerprint mismatch");
  }
  co_return recovered;
}

Task<Result<SsrOutcome>> IbltOfIbltsProtocol::ReconcileAsync(
    const SetOfSets& alice, const SetOfSets& bob,
    std::optional<size_t> known_d, Channel* channel,
    ProtocolContext* ctx) const {
  if (Status s = ValidateSetOfSetsMemo(alice, params_, ctx); !s.ok()) {
    co_return s;
  }
  if (Status s = ValidateSetOfSets(bob, params_); !s.ok()) co_return s;

  Status last = DecodeFailure("no attempts made");
  if (known_d.has_value()) {
    size_t d = std::max<size_t>(*known_d, 1);
    size_t d_hat = std::max<size_t>(DHat(d, params_), 1);
    for (int attempt = 0; attempt < params_.max_attempts; ++attempt) {
      uint64_t seed = DeriveSeed(params_.seed, kAttemptTag + attempt);
      Result<SetOfSets> recovered =
          co_await Attempt(alice, bob, d, d_hat, seed, channel, ctx);
      if (recovered.ok()) {
        SsrOutcome outcome;
        outcome.recovered = std::move(recovered).value();
        outcome.stats = {channel->rounds(), channel->total_bytes(),
                         attempt + 1};
        co_return outcome;
      }
      last = recovered.status();
      if (last.code() == StatusCode::kParseError) co_return last;
    }
    co_return Exhausted("iblt2 (SSRK) failed: " + last.ToString());
  }

  // SSRU (Corollary 3.6): repeated doubling d = 1, 2, 4, ... Each trial is
  // one one-round attempt; success is certified by the fingerprints.
  constexpr int kMaxDoublings = 40;
  size_t d = 1;
  for (int round = 0; round < kMaxDoublings; ++round, d *= 2) {
    uint64_t seed = DeriveSeed(params_.seed, kAttemptTag + 1000 + round);
    size_t d_hat = std::max<size_t>(DHat(d, params_), 1);
    Result<SetOfSets> recovered =
        co_await Attempt(alice, bob, d, d_hat, seed, channel, ctx);
    if (recovered.ok()) {
      SsrOutcome outcome;
      outcome.recovered = std::move(recovered).value();
      outcome.stats = {channel->rounds(), channel->total_bytes(), round + 1};
      co_return outcome;
    }
    last = recovered.status();
    if (last.code() == StatusCode::kParseError) co_return last;
  }
  co_return Exhausted("iblt2 (SSRU) failed: " + last.ToString());
}

}  // namespace setrec
