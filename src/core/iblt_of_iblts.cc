#include "core/iblt_of_iblts.h"

#include <algorithm>
#include <map>

#include "core/encoding.h"
#include "hashing/random.h"
#include "iblt/iblt.h"
#include "setrec/set_reconciler.h"
#include "util/serialization.h"

namespace setrec {

namespace {
constexpr uint64_t kAttemptTag = 0x69626c32ull;  // "ibl2"

/// Tries to recover Alice's child set behind `alice_enc` by decoding her
/// child IBLT against `partner_sketch` (one of Bob's differing children, or
/// an empty sketch) and applying the difference to `partner_set`.
Result<ChildSet> TryRecoverChild(const ChildEncoding& alice_enc,
                                 const Iblt& partner_sketch,
                                 const ChildSet& partner_set,
                                 const HashFamily& fp_family,
                                 DecodeScratch* scratch) {
  Iblt diff = alice_enc.sketch;
  if (Status s = diff.Subtract(partner_sketch); !s.ok()) return s;
  Result<IbltDecodeResult64> decoded = diff.DecodeU64(scratch);
  if (!decoded.ok()) return decoded.status();
  SetDifference sd;
  sd.remote_only = std::move(decoded.value().positive);
  sd.local_only = std::move(decoded.value().negative);
  std::sort(sd.local_only.begin(), sd.local_only.end());
  ChildSet candidate = ApplyDifference(partner_set, sd);
  if (ChildFingerprint(candidate, fp_family) != alice_enc.fingerprint) {
    return VerificationFailure("child fingerprint mismatch");
  }
  return candidate;
}

}  // namespace

Result<SetOfSets> IbltOfIbltsProtocol::Attempt(const SetOfSets& alice,
                                               const SetOfSets& bob, size_t d,
                                               size_t d_hat, uint64_t seed,
                                               Channel* channel) const {
  HashFamily fp_family(seed, /*tag=*/0x66703262ull);
  IbltConfig child_config = IbltConfig::ForDifference(
      d, DeriveSeed(seed, /*tag=*/0x63686c64ull), /*key_width=*/8);
  IbltConfig outer_config = IbltConfig::ForDifference(
      2 * d_hat, seed, ChildIbltBlobWidth(child_config));

  // --- Alice: encode every child, insert encodings into the outer table ---
  Iblt outer(outer_config);
  for (const ChildSet& child : alice) {
    outer.Insert(EncodeChildIbltBlob(child, child_config,
                                     ChildFingerprint(child, fp_family)));
  }
  ByteWriter writer;
  writer.PutU64(ParentFingerprint(alice, fp_family));
  outer.Serialize(&writer);
  size_t msg = channel->Send(Party::kAlice, writer.Take(), "iblt2-outer");

  // --- Bob ---
  ByteReader reader(channel->Receive(msg).payload);
  uint64_t alice_parent_fp = 0;
  if (!reader.GetU64(&alice_parent_fp)) {
    return ParseError("iblt2 message truncated");
  }
  Result<Iblt> received = Iblt::Deserialize(&reader, outer_config);
  if (!received.ok()) return received.status();
  Iblt remote = std::move(received).value();
  // Two scratches: `outer_scratch` owns the outer-table decode views, which
  // must stay valid while the child decodes below reuse `child_scratch`
  // (reusing one scratch would invalidate the views mid-iteration).
  DecodeScratch outer_scratch;
  DecodeScratch child_scratch;

  // Bob's own encodings, keyed by blob so decoded negatives map back to his
  // concrete child sets; probed with decode views via the transparent
  // comparator.
  std::map<std::vector<uint8_t>, size_t, KeyBytesLess> blob_to_child;
  for (size_t i = 0; i < bob.size(); ++i) {
    std::vector<uint8_t> blob = EncodeChildIbltBlob(
        bob[i], child_config, ChildFingerprint(bob[i], fp_family));
    remote.Erase(blob);
    blob_to_child.emplace(std::move(blob), i);
  }

  Result<IbltDecodeView> decoded = remote.Decode(&outer_scratch);
  if (!decoded.ok()) return decoded.status();

  // D_B: Bob's children whose encodings differ from all of Alice's.
  struct Partner {
    ChildEncoding encoding;
    const ChildSet* set;
  };
  std::vector<Partner> partners;
  std::vector<bool> in_db(bob.size(), false);
  for (const IbltKeyView& blob : decoded.value().negative) {
    auto it = blob_to_child.find(blob);
    if (it == blob_to_child.end()) {
      return VerificationFailure("iblt2: unknown negative encoding");
    }
    Result<ChildEncoding> enc = ParseChildIbltBlob(blob, child_config);
    if (!enc.ok()) return enc.status();
    in_db[it->second] = true;
    partners.push_back(Partner{std::move(enc).value(), &bob[it->second]});
  }
  // A fresh child of Alice's may have no close partner; pairing against the
  // empty set recovers it when it has at most ~d elements.
  const ChildSet empty_set;
  const Iblt empty_sketch(child_config);

  // D_A: recover each of Alice's differing children.
  SetOfSets recovered_children;
  for (const IbltKeyView& blob : decoded.value().positive) {
    Result<ChildEncoding> enc_r = ParseChildIbltBlob(blob, child_config);
    if (!enc_r.ok()) return enc_r.status();
    const ChildEncoding& enc = enc_r.value();
    bool ok = false;
    for (const Partner& partner : partners) {
      Result<ChildSet> child =
          TryRecoverChild(enc, partner.encoding.sketch, *partner.set,
                          fp_family, &child_scratch);
      if (child.ok()) {
        recovered_children.push_back(std::move(child).value());
        ok = true;
        break;
      }
    }
    if (!ok) {
      Result<ChildSet> child = TryRecoverChild(enc, empty_sketch, empty_set,
                                               fp_family, &child_scratch);
      if (child.ok()) {
        recovered_children.push_back(std::move(child).value());
        ok = true;
      }
    }
    if (!ok) {
      return DecodeFailure("iblt2: a child IBLT decoded with no partner");
    }
  }

  SetOfSets recovered;
  recovered.reserve(bob.size() + recovered_children.size());
  for (size_t i = 0; i < bob.size(); ++i) {
    if (!in_db[i]) recovered.push_back(bob[i]);
  }
  for (ChildSet& child : recovered_children) {
    recovered.push_back(std::move(child));
  }
  recovered = Canonicalize(std::move(recovered));
  if (ParentFingerprint(recovered, fp_family) != alice_parent_fp) {
    return VerificationFailure("iblt2: parent fingerprint mismatch");
  }
  return recovered;
}

Result<SsrOutcome> IbltOfIbltsProtocol::Reconcile(
    const SetOfSets& alice, const SetOfSets& bob,
    std::optional<size_t> known_d, Channel* channel) const {
  if (Status s = ValidateSetOfSets(alice, params_); !s.ok()) return s;
  if (Status s = ValidateSetOfSets(bob, params_); !s.ok()) return s;

  Status last = DecodeFailure("no attempts made");
  if (known_d.has_value()) {
    size_t d = std::max<size_t>(*known_d, 1);
    size_t d_hat = std::max<size_t>(DHat(d, params_), 1);
    for (int attempt = 0; attempt < params_.max_attempts; ++attempt) {
      uint64_t seed = DeriveSeed(params_.seed, kAttemptTag + attempt);
      Result<SetOfSets> recovered =
          Attempt(alice, bob, d, d_hat, seed, channel);
      if (recovered.ok()) {
        SsrOutcome outcome;
        outcome.recovered = std::move(recovered).value();
        outcome.stats = {channel->rounds(), channel->total_bytes(),
                         attempt + 1};
        return outcome;
      }
      last = recovered.status();
      if (last.code() == StatusCode::kParseError) return last;
    }
    return Exhausted("iblt2 (SSRK) failed: " + last.ToString());
  }

  // SSRU (Corollary 3.6): repeated doubling d = 1, 2, 4, ... Each trial is
  // one one-round attempt; success is certified by the fingerprints.
  constexpr int kMaxDoublings = 40;
  size_t d = 1;
  for (int round = 0; round < kMaxDoublings; ++round, d *= 2) {
    uint64_t seed = DeriveSeed(params_.seed, kAttemptTag + 1000 + round);
    size_t d_hat = std::max<size_t>(DHat(d, params_), 1);
    Result<SetOfSets> recovered = Attempt(alice, bob, d, d_hat, seed,
                                          channel);
    if (recovered.ok()) {
      SsrOutcome outcome;
      outcome.recovered = std::move(recovered).value();
      outcome.stats = {channel->rounds(), channel->total_bytes(), round + 1};
      return outcome;
    }
    last = recovered.status();
    if (last.code() == StatusCode::kParseError) return last;
  }
  return Exhausted("iblt2 (SSRU) failed: " + last.ToString());
}

}  // namespace setrec
