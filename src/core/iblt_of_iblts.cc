#include "core/iblt_of_iblts.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "core/build_context.h"
#include "core/encoding.h"
#include "core/split_party.h"
#include "hashing/random.h"
#include "iblt/iblt.h"
#include "setrec/set_reconciler.h"
#include "util/serialization.h"

namespace setrec {

namespace {
constexpr uint64_t kAttemptTag = 0x69626c32ull;  // "ibl2"
constexpr int kMaxDoublings = 40;  // SSRU: d = 1, 2, 4, ... (Corollary 3.6).

/// Child/outer table configs for one attempt, derived identically by both
/// parties from shared knowledge (params, d, d_hat, seed).
struct AttemptConfigs {
  IbltConfig child;
  IbltConfig outer;
};

AttemptConfigs MakeConfigs(size_t d, size_t d_hat, uint64_t seed) {
  AttemptConfigs configs;
  configs.child = IbltConfig::ForDifference(
      d, DeriveSeed(seed, /*tag=*/0x63686c64ull), /*key_width=*/8);
  configs.outer = IbltConfig::ForDifference(
      2 * d_hat, seed, ChildIbltBlobWidth(configs.child));
  return configs;
}

/// Tries to recover Alice's child set behind `alice_enc` by decoding her
/// child IBLT against `partner_sketch` (one of Bob's differing children, or
/// an empty sketch) and applying the difference to `partner_set`. The
/// decode goes through the zero-allocation u64 view path; ApplyDifference
/// sorts its own working copies, so the views are consumed as decoded.
Result<ChildSet> TryRecoverChild(const ChildEncoding& alice_enc,
                                 const Iblt& partner_sketch,
                                 const ChildSet& partner_set,
                                 const HashFamily& fp_family,
                                 DecodeScratch* scratch) {
  Iblt diff = alice_enc.sketch;
  if (Status s = diff.Subtract(partner_sketch); !s.ok()) return s;
  Result<IbltDecodeView64> decoded = diff.DecodeU64View(scratch);
  if (!decoded.ok()) return decoded.status();
  ChildSet candidate = ApplyDifference(partner_set, decoded.value().positive,
                                       decoded.value().negative);
  if (ChildFingerprint(candidate, fp_family) != alice_enc.fingerprint) {
    return VerificationFailure("child fingerprint mismatch");
  }
  return candidate;
}

}  // namespace

Task<Status> IbltOfIbltsProtocol::AttemptAlice(const SetOfSets& alice,
                                               size_t d, size_t d_hat,
                                               uint64_t seed, size_t* next,
                                               Channel* channel,
                                               ProtocolContext* ctx) const {
  HashFamily fp_family(seed, /*tag=*/0x66703262ull);
  const AttemptConfigs configs = MakeConfigs(d, d_hat, seed);

  // Encode every child, insert encodings into the outer table. Child
  // sketches are built through the deferred planner pass (one tiny batch
  // per child, coalesced across children and sessions), then the packed
  // blobs land in the outer table as one batch. The whole message is
  // memoized across sessions sharing Alice's set.
  uint64_t cache_key = ProtocolCacheKey(
      ctx->SetIdentity(&alice),
      {kAttemptTag, d, d_hat, seed,
       static_cast<uint64_t>(params_.wire_codec)});
  auto build = [&](ByteWriter* writer) -> Task<Status> {
    std::vector<Iblt> sketches;
    sketches.reserve(alice.size());
    for (const ChildSet& child : alice) {
      sketches.emplace_back(configs.child);
      ctx->QueueInsertU64(&sketches.back(), child.data(), child.size());
    }
    co_await ctx->FlushBuilds();
    ByteWriter packed;
    for (size_t i = 0; i < alice.size(); ++i) {
      AppendChildIbltBlob(sketches[i],
                          ChildFingerprint(alice[i], fp_family), &packed);
    }
    Iblt outer(configs.outer);
    ctx->QueueInsertBytes(&outer, packed.bytes().data(), alice.size());
    co_await ctx->FlushBuilds();
    writer->PutU64(ParentFingerprint(alice, fp_family));
    outer.SerializeWith(params_.wire_codec, writer);
    co_return Status::Ok();
  };
  Result<size_t> sent =
      co_await CachedAliceSend(ctx, channel, cache_key, "iblt2-outer", build);
  if (!sent.ok()) co_return sent.status();
  assert(sent.value() == *next && "transcript index drifted (Alice)");
  ++*next;
  co_return Status::Ok();
}

Task<Result<SetOfSets>> IbltOfIbltsProtocol::AttemptBob(
    const SetOfSets& bob, size_t d, size_t d_hat, uint64_t seed, size_t* next,
    bool* peer_aborted, Channel* channel, ProtocolContext* ctx) const {
  HashFamily fp_family(seed, /*tag=*/0x66703262ull);
  const AttemptConfigs configs = MakeConfigs(d, d_hat, seed);
  const IbltConfig& child_config = configs.child;
  const IbltConfig& outer_config = configs.outer;
  uint64_t cache_key = ProtocolCacheKey(
      ctx->PeerSetIdentity(),
      {kAttemptTag, d, d_hat, seed,
       static_cast<uint64_t>(params_.wire_codec)});

  const Channel::Message& m = co_await ctx->Receive(channel, *next);
  ++*next;
  if (std::optional<Status> abort = PeerAbort(m)) {
    *peer_aborted = true;
    co_return *abort;
  }
  ByteReader reader(m.payload);
  uint64_t alice_parent_fp = 0;
  if (!reader.GetU64(&alice_parent_fp)) {
    co_return ParseError("iblt2 message truncated");
  }
  Result<Iblt> received = ctx->ParseTableMemo(TableMemoKey(cache_key, 0),
                                              &reader, outer_config,
                                              params_.wire_codec);
  if (!received.ok()) co_return received.status();
  Iblt remote = std::move(received).value();

  // Bob's own encodings, built the same deferred way as Alice's, erased
  // from the outer table as one batch.
  const size_t blob_width = outer_config.key_width;
  std::vector<Iblt> bob_sketches;
  bob_sketches.reserve(bob.size());
  for (const ChildSet& child : bob) {
    bob_sketches.emplace_back(child_config);
    ctx->QueueInsertU64(&bob_sketches.back(), child.data(), child.size());
  }
  co_await ctx->FlushBuilds();
  ByteWriter bob_packed;
  for (size_t i = 0; i < bob.size(); ++i) {
    AppendChildIbltBlob(bob_sketches[i],
                        ChildFingerprint(bob[i], fp_family), &bob_packed);
  }
  ctx->QueueEraseBytes(&remote, bob_packed.bytes().data(), bob.size());
  co_await ctx->FlushBuilds();

  // Bob's encodings keyed by blob so decoded negatives map back to his
  // concrete child sets; probed with decode views via the transparent
  // comparator.
  std::map<IbltKeyView, size_t, KeyBytesLess> blob_to_child;
  for (size_t i = 0; i < bob.size(); ++i) {
    blob_to_child.emplace(
        IbltKeyView{bob_packed.bytes().data() + i * blob_width, blob_width},
        i);
  }

  // Two pooled scratches: slot 0 owns the outer-table decode views, which
  // must stay valid while the child decodes below churn slot 1 (one scratch
  // would be invalidated by the first child decode). No suspension happens
  // between this decode and the last view use.
  DecodeScratch* outer_scratch = ctx->Scratch(0);
  DecodeScratch* child_scratch = ctx->Scratch(1);
  Result<IbltDecodeView> decoded = remote.Decode(outer_scratch);
  if (!decoded.ok()) co_return decoded.status();

  // D_B: Bob's children whose encodings differ from all of Alice's.
  struct Partner {
    ChildEncoding encoding;
    const ChildSet* set;
  };
  std::vector<Partner> partners;
  std::vector<bool> in_db(bob.size(), false);
  for (const IbltKeyView& blob : decoded.value().negative) {
    auto it = blob_to_child.find(blob);
    if (it == blob_to_child.end()) {
      co_return VerificationFailure("iblt2: unknown negative encoding");
    }
    Result<ChildEncoding> enc = ParseChildIbltBlob(blob, child_config);
    if (!enc.ok()) co_return enc.status();
    in_db[it->second] = true;
    partners.push_back(Partner{std::move(enc).value(), &bob[it->second]});
  }
  // A fresh child of Alice's may have no close partner; pairing against the
  // empty set recovers it when it has at most ~d elements.
  const ChildSet empty_set;
  const Iblt empty_sketch(child_config);

  // D_A: recover each of Alice's differing children.
  SetOfSets recovered_children;
  for (const IbltKeyView& blob : decoded.value().positive) {
    Result<ChildEncoding> enc_r = ParseChildIbltBlob(blob, child_config);
    if (!enc_r.ok()) co_return enc_r.status();
    const ChildEncoding& enc = enc_r.value();
    bool ok = false;
    for (const Partner& partner : partners) {
      Result<ChildSet> child =
          TryRecoverChild(enc, partner.encoding.sketch, *partner.set,
                          fp_family, child_scratch);
      if (child.ok()) {
        recovered_children.push_back(std::move(child).value());
        ok = true;
        break;
      }
    }
    if (!ok) {
      Result<ChildSet> child = TryRecoverChild(enc, empty_sketch, empty_set,
                                               fp_family, child_scratch);
      if (child.ok()) {
        recovered_children.push_back(std::move(child).value());
        ok = true;
      }
    }
    if (!ok) {
      co_return DecodeFailure("iblt2: a child IBLT decoded with no partner");
    }
  }

  SetOfSets recovered;
  recovered.reserve(bob.size() + recovered_children.size());
  for (size_t i = 0; i < bob.size(); ++i) {
    if (!in_db[i]) recovered.push_back(bob[i]);
  }
  for (ChildSet& child : recovered_children) {
    recovered.push_back(std::move(child));
  }
  recovered = Canonicalize(std::move(recovered));
  if (ParentFingerprint(recovered, fp_family) != alice_parent_fp) {
    co_return VerificationFailure("iblt2: parent fingerprint mismatch");
  }
  co_return recovered;
}

Task<Status> IbltOfIbltsProtocol::ReconcileAsyncAlice(
    const SetOfSets& alice, std::optional<size_t> known_d, Channel* channel,
    ProtocolContext* ctx) const {
  Status valid = ValidateSetOfSetsMemo(alice, params_, ctx);
  if (!valid.ok()) {
    // Alice opens in both modes; abort in her first slot.
    co_return co_await SendAbort(ctx, channel, Party::kAlice, valid);
  }
  size_t next = 0;

  const int trials = known_d.has_value() ? params_.max_attempts
                                         : kMaxDoublings;
  size_t d = known_d.has_value() ? std::max<size_t>(*known_d, 1) : 1;
  co_return co_await RunAliceTrials(
      ctx, channel, &next, trials,
      [&](int trial) {
        return DeriveSeed(
            params_.seed,
            kAttemptTag +
                static_cast<uint64_t>(known_d.has_value() ? trial : 1000 + trial));
      },
      [&](int, uint64_t seed) {
        size_t d_hat = std::max<size_t>(DHat(d, params_), 1);
        return AttemptAlice(alice, d, d_hat, seed, &next, channel, ctx);
      },
      [&] {
        // Doubling stays clamped (both halves identically, so configs keep
        // matching): a remote peer's fail verdicts must not be able to
        // drive sketch allocations without bound.
        if (!known_d.has_value()) {
          d = std::min<size_t>(d * 2, MaxWireDHat(/*key_width=*/8));
        }
      },
      std::string("iblt2 (") + (known_d.has_value() ? "SSRK" : "SSRU") +
          ") failed: ");
}

Task<Result<SsrOutcome>> IbltOfIbltsProtocol::ReconcileAsyncBob(
    const SetOfSets& bob, std::optional<size_t> known_d, Channel* channel,
    ProtocolContext* ctx) const {
  Status valid = ValidateSetOfSets(bob, params_);
  size_t next = 0;
  if (!valid.ok()) {
    // Bob's first slot is the verdict after Alice's opener.
    const Channel::Message& m = co_await ctx->Receive(channel, next);
    ++next;
    if (std::optional<Status> abort = PeerAbort(m)) co_return *abort;
    co_return co_await SendAbort(ctx, channel, Party::kBob, valid);
  }

  const int trials = known_d.has_value() ? params_.max_attempts
                                         : kMaxDoublings;
  size_t d = known_d.has_value() ? std::max<size_t>(*known_d, 1) : 1;
  co_return co_await RunBobTrials(
      ctx, channel, &next, trials,
      [&](int trial) {
        return DeriveSeed(
            params_.seed,
            kAttemptTag +
                static_cast<uint64_t>(known_d.has_value() ? trial : 1000 + trial));
      },
      [&](int, uint64_t seed, bool* peer_aborted) {
        size_t d_hat = std::max<size_t>(DHat(d, params_), 1);
        return AttemptBob(bob, d, d_hat, seed, &next, peer_aborted, channel,
                          ctx);
      },
      [&] {
        if (!known_d.has_value()) {
          d = std::min<size_t>(d * 2, MaxWireDHat(/*key_width=*/8));
        }
      },
      std::string("iblt2 (") + (known_d.has_value() ? "SSRK" : "SSRU") +
          ") failed: ");
}

}  // namespace setrec
