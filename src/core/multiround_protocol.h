#ifndef SETREC_CORE_MULTIROUND_PROTOCOL_H_
#define SETREC_CORE_MULTIROUND_PROTOCOL_H_

#include "core/protocol.h"
#include "core/split_party.h"

namespace setrec {

/// The multi-round protocol of Section 3.3 (Theorems 3.9 and 3.10). Trades
/// rounds for communication:
///
///  1. Alice sends an IBLT of her child-set fingerprints; Bob decodes it
///     against his own to learn which children differ on each side.
///  2. Bob sends, for each of his differing children, a compact l0
///     set-difference estimator of its elements (Theorem 3.1).
///  3. Alice matches each of her differing children to the most similar of
///     Bob's (smallest estimated difference d_i) and sends a per-child
///     payload: a characteristic-polynomial transcript when d_i < sqrt(d)
///     (Theorem 2.3), an O(d_i)-cell IBLT for larger differences
///     (Corollary 2.2), or the raw child when it is small enough that
///     sketching would cost more.
///  4. Bob applies each payload to the matched child and verifies per-child
///     and whole-parent fingerprints.
///
///   SSRK: 3 rounds. SSRU: 4 rounds (Bob first sends an l0 estimator over
///   child fingerprints so Alice can size the fingerprint IBLT).
class MultiRoundProtocol : public SetsOfSetsProtocol {
 public:
  explicit MultiRoundProtocol(const SsrParams& params) : params_(params) {}

  std::string Name() const override { return "multiround"; }

  Task<Status> ReconcileAsyncAlice(const SetOfSets& alice,
                                   std::optional<size_t> known_d,
                                   Channel* channel,
                                   ProtocolContext* ctx) const override;
  Task<Result<SsrOutcome>> ReconcileAsyncBob(const SetOfSets& bob,
                                             std::optional<size_t> known_d,
                                             Channel* channel,
                                             ProtocolContext* ctx)
      const override;

 private:
  /// One full attempt of Alice's side (msg1 hashes, msg2 in, msg3 payloads,
  /// msg4 verdict in). Mid-attempt retriable failures on either side travel
  /// as verdict frames in the failing party's next slot, so both parties
  /// fall through to the next attempt in lockstep; `*end` reports how the
  /// attempt concluded (see split_party.h).
  /// `fp_lineage` is the previous attempt's fingerprint table, retained by
  /// the trial loop under WireCodec::kSparse so a doubling retry whose
  /// fingerprint config repeats sends a delta frame (TableLineage) instead
  /// of re-sending unchanged estimator state. Alice stores the table she
  /// built, Bob the table he parsed; the two agree whenever a config
  /// repeats because the table is a deterministic function of (Alice's
  /// set, config). Stays empty under kDense.
  Task<Status> AttemptAlice(const SetOfSets& alice,
                            std::optional<size_t> known_d, size_t d_hat,
                            bool carry_d_hat, uint64_t seed, size_t* next,
                            std::optional<Iblt>* fp_lineage, AttemptEnd* end,
                            Channel* channel, ProtocolContext* ctx) const;
  /// Bob's side of one attempt; `*d_hat` is updated from the msg1 prefix in
  /// estimator mode. Sends the msg4 verdict itself (ok or fail).
  Task<Result<SetOfSets>> AttemptBob(const SetOfSets& bob, size_t* d_hat,
                                     bool carry_d_hat, uint64_t seed,
                                     size_t* next,
                                     std::optional<Iblt>* fp_lineage,
                                     AttemptEnd* end, Channel* channel,
                                     ProtocolContext* ctx) const;

  SsrParams params_;
};

}  // namespace setrec

#endif  // SETREC_CORE_MULTIROUND_PROTOCOL_H_
