#include "core/protocol.h"

#include <algorithm>

#include "core/build_context.h"
#include "setrec/multiset_codec.h"

namespace setrec {

Task<Result<SsrOutcome>> SetsOfSetsProtocol::ReconcileAsync(
    const SetOfSets& alice, const SetOfSets& bob,
    std::optional<size_t> known_d, Channel* channel,
    ProtocolContext* ctx) const {
  Task<Status> alice_half = ReconcileAsyncAlice(alice, known_d, channel, ctx);
  Task<Result<SsrOutcome>> bob_half =
      ReconcileAsyncBob(bob, known_d, channel, ctx);
  // Start both; turn-taking drives them from here. Under the inline context
  // every send pumps the peer's parked receive synchronously, so these two
  // calls run the whole ping-pong to completion; under the service context
  // the halves park at round/build boundaries and the scheduler resumes
  // them, so the joins below subscribe and wait. The abort/verdict
  // discipline of split_party.h guarantees both halves terminate, on error
  // paths included.
  alice_half.Start();
  bob_half.Start();
  co_await TaskJoin<Status>{&alice_half};
  co_await TaskJoin<Result<SsrOutcome>>{&bob_half};
  Status alice_status = alice_half.TakeResult();
  Result<SsrOutcome> outcome = bob_half.TakeResult();
  if (!outcome.ok()) co_return outcome.status();
  if (!alice_status.ok()) co_return alice_status;
  co_return outcome;
}

Result<SsrOutcome> SetsOfSetsProtocol::Reconcile(const SetOfSets& alice,
                                                 const SetOfSets& bob,
                                                 std::optional<size_t> known_d,
                                                 Channel* channel) const {
  InlineContext ctx;
  return RunSync(ReconcileAsync(alice, bob, known_d, channel, &ctx));
}

SetOfSets Canonicalize(SetOfSets sets) {
  for (ChildSet& child : sets) {
    std::sort(child.begin(), child.end());
    child.erase(std::unique(child.begin(), child.end()), child.end());
  }
  std::sort(sets.begin(), sets.end());
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  return sets;
}

uint64_t ChildFingerprint(const ChildSet& child, const HashFamily& family) {
  return SetFingerprint(child, family);
}

uint64_t ParentFingerprint(const SetOfSets& sets, const HashFamily& family) {
  std::vector<uint64_t> child_fps;
  child_fps.reserve(sets.size());
  for (const ChildSet& child : sets) {
    child_fps.push_back(ChildFingerprint(child, family));
  }
  return SetFingerprint(child_fps, family);
}

size_t TotalElements(const SetOfSets& sets) {
  size_t n = 0;
  for (const ChildSet& child : sets) n += child.size();
  return n;
}

Status ValidateSetOfSets(const SetOfSets& sets, const SsrParams& params) {
  for (const ChildSet& child : sets) {
    if (params.max_child_size > 0 && child.size() > params.max_child_size) {
      return InvalidArgument("child set larger than max_child_size (h)");
    }
    for (size_t i = 0; i < child.size(); ++i) {
      if (child[i] >= kParentMarkBase + (1ull << 48)) {
        return InvalidArgument("element outside the library element space");
      }
      if (i > 0 && child[i] <= child[i - 1]) {
        return InvalidArgument("child set not sorted/unique");
      }
    }
  }
  if (params.max_children > 0 && sets.size() > params.max_children) {
    return InvalidArgument("more children than max_children (s)");
  }
  return Status::Ok();
}

size_t DHat(size_t d, const SsrParams& params) {
  size_t d_hat = d;
  if (params.max_children > 0) d_hat = std::min(d_hat, params.max_children);
  if (params.max_differing_children > 0) {
    d_hat = std::min(d_hat, params.max_differing_children);
  }
  return d_hat;
}

}  // namespace setrec
