#ifndef SETREC_CORE_SPLIT_PARTY_H_
#define SETREC_CORE_SPLIT_PARTY_H_

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "core/build_context.h"
#include "core/protocol.h"
#include "core/task.h"
#include "transport/channel.h"
#include "util/serialization.h"
#include "util/status.h"

namespace setrec {

// Control frames shared by the split-party halves of every set-of-sets
// protocol. The one-coroutine simulation could share knowledge for free —
// whether Bob's recovery verified, what d-hat Alice estimated — but two real
// parties must put it on the wire. Two frame kinds cover all of it:
//
//  * Verdict ("ack"): ends an attempt. Bob reports ok (protocol done) or a
//    retriable failure (both parties move to the next attempt in lockstep).
//    Alice sends one in place of a data message when SHE hits a retriable
//    failure mid-attempt (multiround payload matching), steering both sides
//    to the next attempt without breaking turn-taking.
//  * Abort ("!abort"): terminal. Carries the sender's exact Status; the
//    receiver returns it verbatim, so both halves (and therefore the
//    composed both-parties call) report identical errors.
//
// Turn-taking is strict half-duplex: a party sends only on its own turn,
// and error exits happen only as a frame in the sender's own slot. That
// keeps the transcript a deterministic function of (inputs, seeds) on every
// execution path — direct call, loopback service session, or socket — which
// is what the bit-identical-transcript guarantee rests on.

inline constexpr const char kAbortLabel[] = "!abort";
inline constexpr const char kVerdictLabel[] = "ack";

/// Ceiling on a wire-carried d-hat (SSRU estimator modes prefix Alice's
/// estimate to her attempt message so Bob can derive the same IBLT
/// configs). A value above it is a parse error, not a huge table.
inline constexpr uint64_t kMaxWireDHat = 1ull << 22;

/// Largest d-hat a receiver accepts on the wire for tables of
/// `key_width`-byte keys: the implied table must stay under a sane memory
/// ceiling (ForDifference builds ~2.2 * (2 * d_hat) cells of
/// (key_width + header) bytes). SENDERS must clamp what they put on the
/// wire to this same bound (estimator-derived d-hats double on retry and
/// would otherwise outgrow the gate on honest runs).
inline uint64_t MaxWireDHat(size_t key_width) {
  constexpr uint64_t kMaxTableBytes = 1ull << 30;
  const uint64_t per_cell = static_cast<uint64_t>(key_width) + 16;
  return std::min(kMaxWireDHat, kMaxTableBytes / (5 * per_cell));
}

/// Receiver-side gate: a corrupted or hostile size prefix must surface as
/// kParseError, not as a bad_alloc thrown into a coroutine (whose
/// unhandled_exception is std::terminate).
inline bool WireDHatPlausible(uint64_t d_hat, size_t key_width) {
  return d_hat != 0 && d_hat <= MaxWireDHat(key_width);
}

/// Serializes a Status (code byte + length-prefixed message text).
void PutStatusPayload(const Status& status, ByteWriter* writer);
/// Inverse; false on malformed input. Control frames only carry errors, so
/// a payload encoding OK is also malformed.
bool GetStatusPayload(ByteReader* reader, Status* out);

inline bool IsAbortMessage(const Channel::Message& m) {
  return m.label == kAbortLabel;
}
inline bool IsVerdictMessage(const Channel::Message& m) {
  return m.label == kVerdictLabel;
}

/// The peer's carried status when `m` is an abort frame; nullopt otherwise.
std::optional<Status> PeerAbort(const Channel::Message& m);

/// Sends an abort frame in the caller's turn slot and returns `status` (so
/// error exits read `co_return co_await SendAbort(...)`).
Task<Status> SendAbort(ProtocolContext* ctx, Channel* channel, Party from,
                       Status status);

struct AttemptVerdict {
  bool ok = false;
  /// The retriable failure when !ok.
  Status status;
};

/// Sends an attempt verdict in the caller's turn slot and advances the
/// transcript cursor (asserting the index discipline); `attempt_status`
/// OK means the attempt succeeded. Returns `attempt_status` unchanged.
Task<Status> SendVerdict(ProtocolContext* ctx, Channel* channel, Party from,
                         Status attempt_status, size_t* next);

/// Receives the peer's verdict at `*next` and advances the cursor. Any
/// terminal outcome — a peer abort (surfacing its carried status) or a
/// malformed frame — is the error case; an OK result is the parsed
/// verdict (ok, or a retriable failure both parties move past).
Task<Result<AttemptVerdict>> ReceiveVerdict(ProtocolContext* ctx,
                                            Channel* channel, size_t* next);

/// Parses a verdict frame's payload; kParseError on malformed input.
Result<AttemptVerdict> ParseVerdict(const Channel::Message& m);

/// How one attempt of a multi-message protocol half ended. kRetry means the
/// failure has already been communicated (a fail verdict was sent or
/// received) and both parties proceed to the next attempt in lockstep;
/// kTerminal means the protocol is over (an abort was sent or received, or
/// the peer is broken) and the status should surface unchanged.
enum class AttemptEnd { kOk, kRetry, kTerminal };

// --- Shared trial drivers -------------------------------------------------
//
// The per-protocol trial loops — seed formula, verdict exchange, doubling
// schedule, "... failed:" Exhausted text — used to be duplicated between
// each protocol's Alice and Bob halves, and the two copies had to stay in
// wire lockstep by hand. The drivers below hoist that loop once; a protocol
// half supplies only its per-attempt callable plus three small hooks:
//
//   seed_for(trial)  -> uint64_t   the protocol's historical seed formula,
//                                  bit-exact (wire compatibility);
//   attempt(...)     -> Task<...>  one attempt's data phase;
//   on_retry()                     the doubling/clamping schedule applied
//                                  after a retriable failure (no-op when
//                                  retry state rides on the wire instead).
//
// Because Alice's and Bob's loops instantiate the SAME driver, the halves
// cannot drift out of lockstep: the verdict slots, abort slots and retry
// transitions are structurally shared. Two driver shapes exist:
//
//  * RunAliceTrials / RunBobTrials — the single-data-message protocols
//    (naive, iblt2, cascade). The DRIVER owns the verdict exchange: Alice
//    sends her attempt message then receives Bob's verdict; Bob runs his
//    attempt then sends the verdict (aborting on parse errors, which a
//    replay cannot fix).
//  * RunAliceEndTrials / RunBobEndTrials — multi-message attempts
//    (multiround) whose verdict exchange is interleaved with the attempt's
//    own rounds; the attempt reports how it ended via AttemptEnd.
//
// The hook callables are copied into the driver's coroutine frame; their
// reference captures point into the protocol half's own frame, which stays
// alive (suspended, not destroyed) while it awaits the driver.

/// Alice's trial loop for single-data-message protocols. `attempt(trial,
/// seed)` sends Alice's attempt message (returning a failed Status only
/// for local errors, which the driver converts into an abort in her slot).
template <typename SeedFn, typename AttemptFn, typename RetryFn>
Task<Status> RunAliceTrials(ProtocolContext* ctx, Channel* channel,
                            size_t* next, int trials, SeedFn seed_for,
                            AttemptFn attempt, RetryFn on_retry,
                            std::string exhausted_prefix) {
  Status last = DecodeFailure("no attempts made");
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = seed_for(trial);
    Status sent = co_await attempt(trial, seed);
    if (!sent.ok()) {
      co_return co_await SendAbort(ctx, channel, Party::kAlice, sent);
    }
    Result<AttemptVerdict> verdict =
        co_await ReceiveVerdict(ctx, channel, next);
    if (!verdict.ok()) co_return verdict.status();
    if (verdict.value().ok) co_return Status::Ok();
    last = verdict.value().status;
    ctx->OnRetryRound();
    on_retry();
  }
  co_return Exhausted(exhausted_prefix + last.ToString());
}

/// Bob's trial loop for single-data-message protocols. `attempt(trial,
/// seed, peer_aborted)` receives Alice's message and tries the recovery;
/// the driver sends the verdict (ok / retriable failure), aborts on parse
/// errors, and reports the outcome with per-trial attempt accounting.
template <typename SeedFn, typename AttemptFn, typename RetryFn>
Task<Result<SsrOutcome>> RunBobTrials(ProtocolContext* ctx, Channel* channel,
                                      size_t* next, int trials,
                                      SeedFn seed_for, AttemptFn attempt,
                                      RetryFn on_retry,
                                      std::string exhausted_prefix) {
  Status last = DecodeFailure("no attempts made");
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = seed_for(trial);
    bool peer_aborted = false;
    Result<SetOfSets> recovered = co_await attempt(trial, seed,
                                                   &peer_aborted);
    if (peer_aborted) co_return recovered.status();
    if (recovered.ok()) {
      co_await SendVerdict(ctx, channel, Party::kBob, Status::Ok(), next);
      SsrOutcome outcome;
      outcome.recovered = std::move(recovered).value();
      outcome.stats = {channel->rounds(), channel->total_bytes(), trial + 1};
      co_return outcome;
    }
    last = recovered.status();
    ctx->OnDecodeFailure();
    if (last.code() == StatusCode::kParseError) {
      co_return co_await SendAbort(ctx, channel, Party::kBob, last);
    }
    co_await SendVerdict(ctx, channel, Party::kBob, last, next);
    ctx->OnRetryRound();
    on_retry();
  }
  co_return Exhausted(exhausted_prefix + last.ToString());
}

/// Alice's trial loop for protocols whose attempts exchange verdicts
/// inside the attempt (multiround): `attempt(trial, seed, end)` reports
/// how it ended; retriable failures have already crossed the wire.
template <typename SeedFn, typename AttemptFn, typename RetryFn>
Task<Status> RunAliceEndTrials(ProtocolContext* ctx, int trials,
                               SeedFn seed_for, AttemptFn attempt,
                               RetryFn on_retry,
                               std::string exhausted_prefix) {
  Status last = DecodeFailure("no attempts made");
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = seed_for(trial);
    AttemptEnd end = AttemptEnd::kRetry;
    Status s = co_await attempt(trial, seed, &end);
    if (end == AttemptEnd::kOk) co_return Status::Ok();
    if (end == AttemptEnd::kTerminal) co_return s;
    last = std::move(s);
    ctx->OnRetryRound();
    on_retry();
  }
  co_return Exhausted(exhausted_prefix + last.ToString());
}

/// Bob-side counterpart of RunAliceEndTrials.
template <typename SeedFn, typename AttemptFn, typename RetryFn>
Task<Result<SsrOutcome>> RunBobEndTrials(ProtocolContext* ctx,
                                         Channel* channel, int trials,
                                         SeedFn seed_for, AttemptFn attempt,
                                         RetryFn on_retry,
                                         std::string exhausted_prefix) {
  Status last = DecodeFailure("no attempts made");
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = seed_for(trial);
    AttemptEnd end = AttemptEnd::kRetry;
    Result<SetOfSets> recovered = co_await attempt(trial, seed, &end);
    if (end == AttemptEnd::kTerminal) co_return recovered.status();
    if (end == AttemptEnd::kOk) {
      SsrOutcome outcome;
      outcome.recovered = std::move(recovered).value();
      outcome.stats = {channel->rounds(), channel->total_bytes(), trial + 1};
      co_return outcome;
    }
    last = recovered.status();
    ctx->OnDecodeFailure();
    ctx->OnRetryRound();
    on_retry();
  }
  co_return Exhausted(exhausted_prefix + last.ToString());
}

}  // namespace setrec

#endif  // SETREC_CORE_SPLIT_PARTY_H_
