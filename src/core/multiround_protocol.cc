#include "core/multiround_protocol.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "charpoly/charpoly_reconciler.h"
#include "core/build_context.h"
#include "estimator/l0_estimator.h"
#include "hashing/random.h"
#include "iblt/iblt.h"
#include "setrec/set_reconciler.h"
#include "util/serialization.h"

namespace setrec {

namespace {

constexpr uint64_t kAttemptTag = 0x6d726e64ull;  // "mrnd"
constexpr uint64_t kNoPartner = ~0ull;

enum class PayloadMode : uint8_t { kDirect = 0, kIblt = 1, kCharPoly = 2 };

/// Per-child element-difference estimator: one word per level keeps the
/// message at O(log h) words per differing child, as Theorem 3.9 budgets.
L0Estimator::Params ChildEstimatorParams(uint64_t seed) {
  L0Estimator::Params params;
  params.buckets_per_level = 21;  // Exactly one 64-bit word per level.
  params.num_levels = 12;  // Child differences are at most 2h ~ 2^13.
  params.replicas = 5;
  params.seed = DeriveSeed(seed, /*tag=*/0x63686573ull);  // "ches"
  return params;
}

IbltConfig ChildPayloadConfig(size_t d_i, uint64_t seed, uint64_t child_fp) {
  return IbltConfig::ForDifference(d_i, DeriveSeed(seed, Mix64(child_fp)));
}

}  // namespace

Task<Result<SetOfSets>> MultiRoundProtocol::Attempt(
    const SetOfSets& alice, const SetOfSets& bob,
    std::optional<size_t> known_d, size_t d_hat, uint64_t seed,
    Channel* channel, ProtocolContext* ctx) const {
  HashFamily fp_family(seed, /*tag=*/0x66706d72ull);
  const L0Estimator::Params est_params = ChildEstimatorParams(seed);

  // ---- Round 1: Alice sends the fingerprint IBLT (memoized across
  // sessions sharing her set). ----
  IbltConfig fp_config =
      IbltConfig::ForDifference(2 * d_hat, DeriveSeed(seed, 0x66706962ull));
  uint64_t cache_key = ProtocolCacheKey(ctx->SetIdentity(&alice),
                                        {kAttemptTag, d_hat, seed});
  // Alice's child fingerprints are needed unconditionally (the msg2
  // matching map below), so compute them once and share with the builder.
  std::vector<uint64_t> alice_fps(alice.size());
  for (size_t i = 0; i < alice.size(); ++i) {
    alice_fps[i] = ChildFingerprint(alice[i], fp_family);
  }
  auto build = [&](ByteWriter* writer) -> Task<Status> {
    Iblt ta(fp_config);
    ctx->QueueInsertU64(&ta, alice_fps.data(), alice_fps.size());
    co_await ctx->FlushBuilds();
    writer->PutU64(ParentFingerprint(alice, fp_family));
    ta.Serialize(writer);
    co_return Status::Ok();
  };
  Result<size_t> sent =
      co_await CachedAliceSend(ctx, channel, cache_key, "mr-hashes", build);
  if (!sent.ok()) co_return sent.status();
  size_t msg1 = sent.value();

  // ---- Bob decodes the differing fingerprints. ----
  ByteReader r1(channel->Receive(msg1).payload);
  uint64_t alice_parent_fp = 0;
  if (!r1.GetU64(&alice_parent_fp)) co_return ParseError("mr msg1 truncated");
  Result<Iblt> ta_received =
      ctx->ParseTableMemo(TableMemoKey(cache_key, 0), &r1, fp_config);
  if (!ta_received.ok()) co_return ta_received.status();
  Iblt fp_diff = std::move(ta_received).value();

  // Pooled scratch, reused for the fingerprint and child decodes (all u64
  // decodes here return owning vectors, so holding it across round yields
  // is safe — a scratch carries no state between decodes).
  DecodeScratch* scratch = ctx->Scratch(0);
  std::unordered_map<uint64_t, size_t> bob_fp_to_child;
  std::vector<uint64_t> bob_fps;
  bob_fps.reserve(bob.size());
  for (size_t j = 0; j < bob.size(); ++j) {
    uint64_t fp = ChildFingerprint(bob[j], fp_family);
    bob_fps.push_back(fp);
    if (!bob_fp_to_child.emplace(fp, j).second) {
      co_return VerificationFailure("mr: duplicate child fingerprint (Bob)");
    }
  }
  ctx->QueueEraseU64(&fp_diff, bob_fps.data(), bob_fps.size());
  co_await ctx->FlushBuilds();
  Result<IbltDecodeResult64> fp_decoded = fp_diff.DecodeU64(scratch);
  if (!fp_decoded.ok()) co_return fp_decoded.status();
  std::vector<uint64_t> alice_diff_fps = fp_decoded.value().positive;
  std::vector<uint64_t> bob_diff_fps = fp_decoded.value().negative;
  std::sort(alice_diff_fps.begin(), alice_diff_fps.end());
  std::sort(bob_diff_fps.begin(), bob_diff_fps.end());

  // ---- Round 2: Bob sends both difference lists plus per-child element
  // estimators for his differing children. The per-child updates run
  // inline: they are O(d) tiny jobs, below any useful coalescing grain
  // (unlike the O(s)-key table builds above). ----
  std::vector<size_t> bob_diff_children;
  std::vector<L0Estimator> bob_diff_ests;
  bob_diff_ests.reserve(bob_diff_fps.size());
  for (uint64_t fp : bob_diff_fps) {
    auto it = bob_fp_to_child.find(fp);
    if (it == bob_fp_to_child.end()) {
      co_return VerificationFailure("mr: unknown Bob-side fingerprint");
    }
    bob_diff_children.push_back(it->second);
    bob_diff_ests.emplace_back(est_params);
    const ChildSet& bob_child = bob[it->second];
    bob_diff_ests.back().UpdateBatch(bob_child.data(), bob_child.size(), 2);
  }
  ByteWriter w2;
  w2.PutU64Vector(alice_diff_fps);
  w2.PutU64Vector(bob_diff_fps);
  for (const L0Estimator& est : bob_diff_ests) est.Serialize(&w2);
  size_t msg2 =
      co_await ctx->Send(channel, Party::kBob, w2.Take(), "mr-estimators");

  // ---- Alice matches children and builds payloads. ----
  ByteReader r2(channel->Receive(msg2).payload);
  std::vector<uint64_t> alice_diff_fps_rx, bob_diff_fps_rx;
  if (!r2.GetU64Vector(&alice_diff_fps_rx) ||
      !r2.GetU64Vector(&bob_diff_fps_rx)) {
    co_return ParseError("mr msg2 truncated (fp lists)");
  }
  std::vector<L0Estimator> bob_estimators;
  bob_estimators.reserve(bob_diff_fps_rx.size());
  for (size_t j = 0; j < bob_diff_fps_rx.size(); ++j) {
    Result<L0Estimator> est = L0Estimator::Deserialize(&r2, est_params);
    if (!est.ok()) co_return est.status();
    bob_estimators.push_back(std::move(est).value());
  }

  std::unordered_map<uint64_t, size_t> alice_fp_to_child;
  for (size_t i = 0; i < alice.size(); ++i) {
    if (!alice_fp_to_child.emplace(alice_fps[i], i).second) {
      co_return VerificationFailure("mr: duplicate child fingerprint (Alice)");
    }
  }

  struct Plan {
    uint64_t fp;
    size_t alice_child;
    uint64_t partner;  // Index into bob_diff lists, or kNoPartner.
    size_t d_i;
    PayloadMode mode = PayloadMode::kDirect;
    size_t sketch_index = 0;  // Into iblt_payloads when mode == kIblt.
  };
  // Resolve Alice's differing children and their element estimators (O(d)
  // tiny jobs; run inline) before the matching loop.
  std::vector<size_t> alice_diff_children;
  std::vector<L0Estimator> mine_ests;
  alice_diff_children.reserve(alice_diff_fps_rx.size());
  mine_ests.reserve(alice_diff_fps_rx.size());
  for (uint64_t fp : alice_diff_fps_rx) {
    auto it = alice_fp_to_child.find(fp);
    if (it == alice_fp_to_child.end()) {
      co_return VerificationFailure("mr: unknown Alice-side fingerprint");
    }
    alice_diff_children.push_back(it->second);
    mine_ests.emplace_back(est_params);
    const ChildSet& child = alice[it->second];
    mine_ests.back().UpdateBatch(child.data(), child.size(), 1);
  }

  std::vector<Plan> plans;
  size_t total_estimated = 0;
  for (size_t a = 0; a < alice_diff_fps_rx.size(); ++a) {
    const uint64_t fp = alice_diff_fps_rx[a];
    const ChildSet& child = alice[alice_diff_children[a]];
    uint64_t best_partner = kNoPartner;
    uint64_t best_estimate = ~0ull;
    for (size_t j = 0; j < bob_estimators.size(); ++j) {
      L0Estimator merged = bob_estimators[j];
      if (!merged.Merge(mine_ests[a]).ok()) continue;
      uint64_t estimate = merged.Estimate();
      if (estimate < best_estimate) {
        best_estimate = estimate;
        best_partner = j;
      }
    }
    size_t d_i =
        best_partner == kNoPartner
            ? child.size() + 1
            : std::max<size_t>(
                  4, static_cast<size_t>(params_.estimate_slack *
                                         static_cast<double>(best_estimate)));
    plans.push_back(Plan{fp, alice_diff_children[a], best_partner, d_i});
    total_estimated += d_i;
  }
  // Char-poly below sqrt(d) (Theorem 3.9's split); IBLT above; raw child
  // when the set itself is smaller than the sketch would be.
  const double sqrt_d = std::sqrt(static_cast<double>(
      known_d.has_value() ? std::max<size_t>(*known_d, 1)
                          : std::max<size_t>(total_estimated, 1)));

  // Phase 1: pick modes, build the O(d) IBLT payload sketches (inline —
  // below the coalescing grain).
  std::vector<Iblt> iblt_payloads;
  iblt_payloads.reserve(plans.size());
  for (Plan& plan : plans) {
    const ChildSet& child = alice[plan.alice_child];
    if (child.size() <= plan.d_i) {
      plan.mode = PayloadMode::kDirect;
    } else if (static_cast<double>(plan.d_i) < sqrt_d) {
      plan.mode = PayloadMode::kCharPoly;
    } else {
      plan.mode = PayloadMode::kIblt;
      plan.sketch_index = iblt_payloads.size();
      iblt_payloads.emplace_back(ChildPayloadConfig(plan.d_i, seed, plan.fp));
      iblt_payloads.back().InsertBatch(child);
    }
  }

  // Phase 2: serialize every payload in plan order.
  ByteWriter w3;
  w3.PutVarint(plans.size());
  for (const Plan& plan : plans) {
    const ChildSet& child = alice[plan.alice_child];
    w3.PutU64(plan.fp);
    w3.PutU64(plan.partner);
    w3.PutU8(static_cast<uint8_t>(plan.mode));
    w3.PutVarint(plan.d_i);
    switch (plan.mode) {
      case PayloadMode::kDirect:
        w3.PutU64Vector(child);
        break;
      case PayloadMode::kIblt:
        iblt_payloads[plan.sketch_index].Serialize(&w3);
        break;
      case PayloadMode::kCharPoly: {
        CharPolyReconciler reconciler(plan.d_i,
                                      DeriveSeed(seed, Mix64(plan.fp)));
        Result<std::vector<uint8_t>> payload = reconciler.BuildMessage(child);
        if (!payload.ok()) co_return payload.status();
        w3.PutBytes(payload.value());
        break;
      }
    }
  }
  size_t msg3 =
      co_await ctx->Send(channel, Party::kAlice, w3.Take(), "mr-payloads");

  // ---- Bob recovers each differing child. ----
  ByteReader r3(channel->Receive(msg3).payload);
  uint64_t num_entries = 0;
  if (!r3.GetVarint(&num_entries)) co_return ParseError("mr msg3 truncated");
  SetOfSets da;
  const ChildSet empty_set;
  for (uint64_t k = 0; k < num_entries; ++k) {
    uint64_t fp = 0, partner = 0, d_i = 0;
    uint8_t mode_raw = 0;
    if (!r3.GetU64(&fp) || !r3.GetU64(&partner) || !r3.GetU8(&mode_raw) ||
        !r3.GetVarint(&d_i)) {
      co_return ParseError("mr msg3 truncated (entry header)");
    }
    const ChildSet* base = &empty_set;
    if (partner != kNoPartner) {
      if (partner >= bob_diff_children.size()) {
        co_return ParseError("mr msg3: partner index out of range");
      }
      base = &bob[bob_diff_children[partner]];
    }
    ChildSet candidate;
    switch (static_cast<PayloadMode>(mode_raw)) {
      case PayloadMode::kDirect: {
        if (!r3.GetU64Vector(&candidate)) {
          co_return ParseError("mr msg3 truncated (direct)");
        }
        break;
      }
      case PayloadMode::kIblt: {
        IbltConfig config = ChildPayloadConfig(d_i, seed, fp);
        Result<Iblt> sketch = Iblt::Deserialize(&r3, config);
        if (!sketch.ok()) co_return sketch.status();
        Iblt diff = std::move(sketch).value();
        diff.EraseBatch(*base);
        Result<IbltDecodeResult64> dd = diff.DecodeU64(scratch);
        if (!dd.ok()) co_return dd.status();
        SetDifference sd;
        sd.remote_only = std::move(dd.value().positive);
        sd.local_only = std::move(dd.value().negative);
        candidate = ApplyDifference(*base, sd);
        break;
      }
      case PayloadMode::kCharPoly: {
        CharPolyReconciler reconciler(d_i, DeriveSeed(seed, Mix64(fp)));
        std::vector<uint8_t> payload;
        if (!r3.GetBytes(reconciler.MessageSize(), &payload)) {
          co_return ParseError("mr msg3 truncated (charpoly)");
        }
        Result<SetDifference> sd = reconciler.DecodeDifference(payload, *base);
        if (!sd.ok()) co_return sd.status();
        candidate = ApplyDifference(*base, sd.value());
        break;
      }
      default:
        co_return ParseError("mr msg3: unknown payload mode");
    }
    if (ChildFingerprint(candidate, fp_family) != fp) {
      co_return VerificationFailure("mr: child fingerprint mismatch");
    }
    da.push_back(std::move(candidate));
  }

  std::vector<bool> in_db(bob.size(), false);
  for (size_t j : bob_diff_children) in_db[j] = true;
  SetOfSets recovered;
  recovered.reserve(bob.size() + da.size());
  for (size_t j = 0; j < bob.size(); ++j) {
    if (!in_db[j]) recovered.push_back(bob[j]);
  }
  for (ChildSet& child : da) recovered.push_back(std::move(child));
  recovered = Canonicalize(std::move(recovered));
  if (ParentFingerprint(recovered, fp_family) != alice_parent_fp) {
    co_return VerificationFailure("mr: parent fingerprint mismatch");
  }
  co_return recovered;
}

Task<Result<SsrOutcome>> MultiRoundProtocol::ReconcileAsync(
    const SetOfSets& alice, const SetOfSets& bob,
    std::optional<size_t> known_d, Channel* channel,
    ProtocolContext* ctx) const {
  if (Status s = ValidateSetOfSetsMemo(alice, params_, ctx); !s.ok()) {
    co_return s;
  }
  if (Status s = ValidateSetOfSets(bob, params_); !s.ok()) co_return s;

  size_t d_hat;
  if (known_d.has_value()) {
    d_hat = std::max<size_t>(DHat(std::max<size_t>(*known_d, 1), params_), 1);
  } else {
    // SSRU (Theorem 3.10): round 0, Bob sends an l0 estimator over his
    // child fingerprints so Alice can size the fingerprint IBLT.
    L0Estimator::Params est_params;
    est_params.seed = DeriveSeed(params_.seed, /*tag=*/0x6d724553ull);
    HashFamily fp_family(est_params.seed, /*tag=*/0x66706d32ull);
    L0Estimator bob_est(est_params);
    std::vector<uint64_t> bob_fps0;
    bob_fps0.reserve(bob.size());
    for (const ChildSet& child : bob) {
      bob_fps0.push_back(ChildFingerprint(child, fp_family));
    }
    ctx->QueueL0Update(&bob_est, bob_fps0.data(), bob_fps0.size(), 2);
    co_await ctx->FlushBuilds();
    ByteWriter writer;
    bob_est.Serialize(&writer);
    size_t msg = co_await ctx->Send(channel, Party::kBob, writer.Take(),
                                    "mr-d-estimator");

    ByteReader reader(channel->Receive(msg).payload);
    Result<L0Estimator> merged_r =
        L0Estimator::Deserialize(&reader, est_params);
    if (!merged_r.ok()) co_return merged_r.status();
    L0Estimator merged = std::move(merged_r).value();
    L0Estimator alice_est(est_params);
    std::vector<uint64_t> alice_fps0;
    alice_fps0.reserve(alice.size());
    for (const ChildSet& child : alice) {
      alice_fps0.push_back(ChildFingerprint(child, fp_family));
    }
    ctx->QueueL0Update(&alice_est, alice_fps0.data(), alice_fps0.size(), 1);
    co_await ctx->FlushBuilds();
    if (Status s = merged.Merge(alice_est); !s.ok()) co_return s;
    d_hat = std::max<size_t>(
        static_cast<size_t>(params_.estimate_slack *
                            static_cast<double>(merged.Estimate())) /
            2,
        2);
  }

  Status last = DecodeFailure("no attempts made");
  for (int attempt = 0; attempt < params_.max_attempts; ++attempt) {
    uint64_t seed = DeriveSeed(params_.seed, kAttemptTag + attempt);
    Result<SetOfSets> recovered =
        co_await Attempt(alice, bob, known_d, d_hat, seed, channel, ctx);
    if (recovered.ok()) {
      SsrOutcome outcome;
      outcome.recovered = std::move(recovered).value();
      outcome.stats = {channel->rounds(), channel->total_bytes(),
                       attempt + 1};
      co_return outcome;
    }
    last = recovered.status();
    if (last.code() == StatusCode::kParseError) co_return last;
    if (!known_d.has_value()) d_hat *= 2;
  }
  co_return Exhausted("multiround failed: " + last.ToString());
}

}  // namespace setrec
