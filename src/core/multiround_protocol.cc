#include "core/multiround_protocol.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "charpoly/charpoly_reconciler.h"
#include "core/build_context.h"
#include "estimator/l0_estimator.h"
#include "hashing/random.h"
#include "iblt/iblt.h"
#include "setrec/set_reconciler.h"
#include "util/serialization.h"

namespace setrec {

namespace {

constexpr uint64_t kAttemptTag = 0x6d726e64ull;  // "mrnd"
constexpr uint64_t kNoPartner = ~0ull;

enum class PayloadMode : uint8_t { kDirect = 0, kIblt = 1, kCharPoly = 2 };

/// Per-child element-difference estimator: one word per level keeps the
/// message at O(log h) words per differing child, as Theorem 3.9 budgets.
L0Estimator::Params ChildEstimatorParams(uint64_t seed) {
  L0Estimator::Params params;
  params.buckets_per_level = 21;  // Exactly one 64-bit word per level.
  params.num_levels = 12;  // Child differences are at most 2h ~ 2^13.
  params.replicas = 5;
  params.seed = DeriveSeed(seed, /*tag=*/0x63686573ull);  // "ches"
  return params;
}

L0Estimator::Params RoundZeroEstimatorParams(uint64_t protocol_seed) {
  L0Estimator::Params params;
  params.seed = DeriveSeed(protocol_seed, /*tag=*/0x6d724553ull);
  return params;
}

IbltConfig ChildPayloadConfig(size_t d_i, uint64_t seed, uint64_t child_fp) {
  return IbltConfig::ForDifference(d_i, DeriveSeed(seed, Mix64(child_fp)));
}

IbltConfig FingerprintConfig(size_t d_hat, uint64_t seed) {
  return IbltConfig::ForDifference(2 * d_hat,
                                   DeriveSeed(seed, 0x66706962ull));
}

}  // namespace

Task<Status> MultiRoundProtocol::AttemptAlice(
    const SetOfSets& alice, std::optional<size_t> known_d, size_t d_hat,
    bool carry_d_hat, uint64_t seed, size_t* next,
    std::optional<Iblt>* fp_lineage, AttemptEnd* end, Channel* channel,
    ProtocolContext* ctx) const {
  *end = AttemptEnd::kRetry;
  const bool sparse = params_.wire_codec == WireCodec::kSparse;
  HashFamily fp_family(seed, /*tag=*/0x66706d72ull);
  const L0Estimator::Params est_params = ChildEstimatorParams(seed);

  // ---- Round 1: the fingerprint IBLT (memoized across sessions sharing
  // Alice's set; the d-hat prefix of estimator mode is part of the cached
  // bytes, keyed by d_hat). ----
  IbltConfig fp_config = FingerprintConfig(d_hat, seed);
  // The mode flag is part of the key: estimator-mode messages carry a
  // d-hat prefix, and an SSRK session landing on the same (d_hat, seed)
  // must not replay them. The wire codec is part of the key too.
  uint64_t cache_key =
      ProtocolCacheKey(ctx->SetIdentity(&alice),
                       {kAttemptTag, d_hat, seed, carry_d_hat ? 1u : 0u,
                        static_cast<uint64_t>(params_.wire_codec)});
  // Alice's child fingerprints are needed unconditionally (the msg2
  // matching map below), so compute them once and share with the builder.
  std::vector<uint64_t> alice_fps(alice.size());
  for (size_t i = 0; i < alice.size(); ++i) {
    alice_fps[i] = ChildFingerprint(alice[i], fp_family);
  }
  auto build = [&](ByteWriter* writer) -> Task<Status> {
    if (carry_d_hat) writer->PutVarint(d_hat);
    Iblt ta(fp_config);
    ctx->QueueInsertU64(&ta, alice_fps.data(), alice_fps.size());
    co_await ctx->FlushBuilds();
    writer->PutU64(ParentFingerprint(alice, fp_family));
    // A retry whose fingerprint config repeats resends only changed cells
    // (today each attempt folds the trial into the seed, so this mostly
    // degrades to a full frame; the lineage hook makes any same-config
    // retransmission a four-byte unchanged marker).
    ta.SerializeWith(
        params_.wire_codec, writer,
        TableLineage{*fp_lineage ? &**fp_lineage : nullptr});
    if (sparse) *fp_lineage = std::move(ta);
    co_return Status::Ok();
  };
  Result<size_t> sent =
      co_await CachedAliceSend(ctx, channel, cache_key, "mr-hashes", build);
  if (!sent.ok()) {
    *end = AttemptEnd::kTerminal;
    co_return co_await SendAbort(ctx, channel, Party::kAlice, sent.status());
  }
  assert(sent.value() == *next && "transcript index drifted (Alice)");
  ++*next;

  // ---- msg2: Bob's difference lists + per-child element estimators (or
  // his mid-attempt failure verdict). ----
  const Channel::Message& m2 = co_await ctx->Receive(channel, *next);
  ++*next;
  if (std::optional<Status> abort = PeerAbort(m2)) {
    *end = AttemptEnd::kTerminal;
    co_return *abort;
  }
  if (IsVerdictMessage(m2)) {
    Result<AttemptVerdict> verdict = ParseVerdict(m2);
    if (!verdict.ok() || verdict.value().ok) {
      *end = AttemptEnd::kTerminal;
      co_return verdict.ok()
          ? ParseError("mr: unexpected ok verdict before payloads")
          : verdict.status();
    }
    co_return verdict.value().status;  // Bob-side retriable failure.
  }
  ByteReader r2(m2.payload);
  std::vector<uint64_t> alice_diff_fps_rx, bob_diff_fps_rx;
  if (!r2.GetU64Vector(&alice_diff_fps_rx) ||
      !r2.GetU64Vector(&bob_diff_fps_rx)) {
    *end = AttemptEnd::kTerminal;
    co_return co_await SendAbort(ctx, channel, Party::kAlice,
                                 ParseError("mr msg2 truncated (fp lists)"));
  }
  std::vector<L0Estimator> bob_estimators;
  bob_estimators.reserve(bob_diff_fps_rx.size());
  for (size_t j = 0; j < bob_diff_fps_rx.size(); ++j) {
    Result<L0Estimator> est = L0Estimator::Deserialize(&r2, est_params);
    if (!est.ok()) {
      *end = AttemptEnd::kTerminal;
      co_return co_await SendAbort(ctx, channel, Party::kAlice, est.status());
    }
    bob_estimators.push_back(std::move(est).value());
  }

  std::unordered_map<uint64_t, size_t> alice_fp_to_child;
  for (size_t i = 0; i < alice.size(); ++i) {
    if (!alice_fp_to_child.emplace(alice_fps[i], i).second) {
      // Retriable with fresh coins: tell Bob in the msg3 slot.
      co_return co_await SendVerdict(
          ctx, channel, Party::kAlice,
          VerificationFailure("mr: duplicate child fingerprint (Alice)"),
          next);
    }
  }

  struct Plan {
    uint64_t fp;
    size_t alice_child;
    uint64_t partner;  // Index into bob_diff lists, or kNoPartner.
    size_t d_i;
    PayloadMode mode = PayloadMode::kDirect;
    size_t sketch_index = 0;  // Into iblt_payloads when mode == kIblt.
  };
  // Resolve Alice's differing children and their element estimators (O(d)
  // tiny jobs; run inline) before the matching loop.
  std::vector<size_t> alice_diff_children;
  std::vector<L0Estimator> mine_ests;
  alice_diff_children.reserve(alice_diff_fps_rx.size());
  mine_ests.reserve(alice_diff_fps_rx.size());
  for (uint64_t fp : alice_diff_fps_rx) {
    auto it = alice_fp_to_child.find(fp);
    if (it == alice_fp_to_child.end()) {
      co_return co_await SendVerdict(
          ctx, channel, Party::kAlice,
          VerificationFailure("mr: unknown Alice-side fingerprint"), next);
    }
    alice_diff_children.push_back(it->second);
    mine_ests.emplace_back(est_params);
    const ChildSet& child = alice[it->second];
    mine_ests.back().UpdateBatch(child.data(), child.size(), 1);
  }

  std::vector<Plan> plans;
  size_t total_estimated = 0;
  for (size_t a = 0; a < alice_diff_fps_rx.size(); ++a) {
    const uint64_t fp = alice_diff_fps_rx[a];
    const ChildSet& child = alice[alice_diff_children[a]];
    uint64_t best_partner = kNoPartner;
    uint64_t best_estimate = ~0ull;
    for (size_t j = 0; j < bob_estimators.size(); ++j) {
      L0Estimator merged = bob_estimators[j];
      if (!merged.Merge(mine_ests[a]).ok()) continue;
      uint64_t estimate = merged.Estimate();
      if (estimate < best_estimate) {
        best_estimate = estimate;
        best_partner = j;
      }
    }
    size_t d_i =
        best_partner == kNoPartner
            ? child.size() + 1
            : std::max<size_t>(
                  4, static_cast<size_t>(params_.estimate_slack *
                                         static_cast<double>(best_estimate)));
    plans.push_back(Plan{fp, alice_diff_children[a], best_partner, d_i});
    total_estimated += d_i;
  }
  // Char-poly below sqrt(d) (Theorem 3.9's split); IBLT above; raw child
  // when the set itself is smaller than the sketch would be.
  const double sqrt_d = std::sqrt(static_cast<double>(
      known_d.has_value() ? std::max<size_t>(*known_d, 1)
                          : std::max<size_t>(total_estimated, 1)));

  // Phase 1: pick modes, build the O(d) IBLT payload sketches (inline —
  // below the coalescing grain).
  std::vector<Iblt> iblt_payloads;
  iblt_payloads.reserve(plans.size());
  for (Plan& plan : plans) {
    const ChildSet& child = alice[plan.alice_child];
    if (child.size() <= plan.d_i) {
      plan.mode = PayloadMode::kDirect;
    } else if (static_cast<double>(plan.d_i) < sqrt_d) {
      plan.mode = PayloadMode::kCharPoly;
    } else {
      plan.mode = PayloadMode::kIblt;
      plan.sketch_index = iblt_payloads.size();
      iblt_payloads.emplace_back(ChildPayloadConfig(plan.d_i, seed, plan.fp));
      iblt_payloads.back().InsertBatch(child);
    }
  }

  // Phase 2: serialize every payload in plan order.
  ByteWriter w3;
  w3.PutVarint(plans.size());
  for (const Plan& plan : plans) {
    const ChildSet& child = alice[plan.alice_child];
    w3.PutU64(plan.fp);
    w3.PutU64(plan.partner);
    w3.PutU8(static_cast<uint8_t>(plan.mode));
    w3.PutVarint(plan.d_i);
    switch (plan.mode) {
      case PayloadMode::kDirect:
        w3.PutU64Vector(child);
        break;
      case PayloadMode::kIblt:
        iblt_payloads[plan.sketch_index].SerializeWith(params_.wire_codec,
                                                       &w3);
        break;
      case PayloadMode::kCharPoly: {
        CharPolyReconciler reconciler(plan.d_i,
                                      DeriveSeed(seed, Mix64(plan.fp)));
        Result<std::vector<uint8_t>> payload = reconciler.BuildMessage(child);
        if (!payload.ok()) {
          // Retriable (fresh coins change the plan); tell Bob in this slot.
          co_return co_await SendVerdict(ctx, channel, Party::kAlice,
                                         payload.status(), next);
        }
        w3.PutBytes(payload.value());
        break;
      }
    }
  }
  size_t msg3 =
      co_await ctx->Send(channel, Party::kAlice, w3.Take(), "mr-payloads");
  assert(msg3 == *next && "transcript index drifted (Alice)");
  (void)msg3;
  ++*next;

  // ---- msg4: Bob's verdict. ----
  Result<AttemptVerdict> verdict = co_await ReceiveVerdict(ctx, channel,
                                                           next);
  if (!verdict.ok()) {
    *end = AttemptEnd::kTerminal;
    co_return verdict.status();
  }
  if (verdict.value().ok) {
    *end = AttemptEnd::kOk;
    co_return Status::Ok();
  }
  co_return verdict.value().status;
}

Task<Result<SetOfSets>> MultiRoundProtocol::AttemptBob(
    const SetOfSets& bob, size_t* d_hat, bool carry_d_hat, uint64_t seed,
    size_t* next, std::optional<Iblt>* fp_lineage, AttemptEnd* end,
    Channel* channel, ProtocolContext* ctx) const {
  *end = AttemptEnd::kRetry;
  const bool sparse = params_.wire_codec == WireCodec::kSparse;
  HashFamily fp_family(seed, /*tag=*/0x66706d72ull);
  const L0Estimator::Params est_params = ChildEstimatorParams(seed);

  // ---- msg1: Alice's fingerprint IBLT. ----
  const Channel::Message& m1 = co_await ctx->Receive(channel, *next);
  ++*next;
  if (std::optional<Status> abort = PeerAbort(m1)) {
    *end = AttemptEnd::kTerminal;
    co_return *abort;
  }
  ByteReader r1(m1.payload);
  if (carry_d_hat) {
    uint64_t wire = 0;
    if (!r1.GetVarint(&wire) ||
        !WireDHatPlausible(wire, /*key_width=*/8)) {
      *end = AttemptEnd::kTerminal;
      Status fail = ParseError("mr msg1 carries an invalid d-hat");
      co_return co_await SendAbort(ctx, channel, Party::kBob, fail);
    }
    *d_hat = static_cast<size_t>(wire);
  }
  IbltConfig fp_config = FingerprintConfig(*d_hat, seed);
  uint64_t cache_key =
      ProtocolCacheKey(ctx->PeerSetIdentity(),
                       {kAttemptTag, *d_hat, seed, carry_d_hat ? 1u : 0u,
                        static_cast<uint64_t>(params_.wire_codec)});
  uint64_t alice_parent_fp = 0;
  if (!r1.GetU64(&alice_parent_fp)) {
    *end = AttemptEnd::kTerminal;
    co_return co_await SendAbort(ctx, channel, Party::kBob,
                                 ParseError("mr msg1 truncated"));
  }
  Result<Iblt> ta_received = ctx->ParseTableMemo(
      TableMemoKey(cache_key, 0), &r1, fp_config, params_.wire_codec,
      TableLineage{*fp_lineage ? &**fp_lineage : nullptr});
  if (!ta_received.ok()) {
    *end = AttemptEnd::kTerminal;
    co_return co_await SendAbort(ctx, channel, Party::kBob,
                                 ta_received.status());
  }
  Iblt fp_diff = std::move(ta_received).value();
  // Retain the pristine parse for the next attempt's delta frame before the
  // erase below mutates the table in place.
  if (sparse) *fp_lineage = fp_diff;

  // Pooled scratch, reused for the fingerprint and child decodes (all u64
  // decodes here return owning vectors, so holding it across round yields
  // is safe — a scratch carries no state between decodes).
  DecodeScratch* scratch = ctx->Scratch(0);
  std::unordered_map<uint64_t, size_t> bob_fp_to_child;
  std::vector<uint64_t> bob_fps;
  bob_fps.reserve(bob.size());
  bool duplicate_bob_fp = false;
  for (size_t j = 0; j < bob.size(); ++j) {
    uint64_t fp = ChildFingerprint(bob[j], fp_family);
    bob_fps.push_back(fp);
    if (!bob_fp_to_child.emplace(fp, j).second) duplicate_bob_fp = true;
  }
  if (duplicate_bob_fp) {
    // Retriable with fresh coins: tell Alice in the msg2 slot.
    co_return co_await SendVerdict(
        ctx, channel, Party::kBob,
        VerificationFailure("mr: duplicate child fingerprint (Bob)"), next);
  }
  ctx->QueueEraseU64(&fp_diff, bob_fps.data(), bob_fps.size());
  co_await ctx->FlushBuilds();
  Result<IbltDecodeResult64> fp_decoded = fp_diff.DecodeU64(scratch);
  if (!fp_decoded.ok()) {
    co_return co_await SendVerdict(ctx, channel, Party::kBob,
                                   fp_decoded.status(), next);
  }
  std::vector<uint64_t> alice_diff_fps = fp_decoded.value().positive;
  std::vector<uint64_t> bob_diff_fps = fp_decoded.value().negative;
  std::sort(alice_diff_fps.begin(), alice_diff_fps.end());
  std::sort(bob_diff_fps.begin(), bob_diff_fps.end());

  // ---- Round 2: both difference lists plus per-child element estimators
  // for Bob's differing children. The per-child updates run inline: they
  // are O(d) tiny jobs, below any useful coalescing grain (unlike the
  // O(s)-key table builds above). ----
  std::vector<size_t> bob_diff_children;
  std::vector<L0Estimator> bob_diff_ests;
  bob_diff_ests.reserve(bob_diff_fps.size());
  bool unknown_bob_fp = false;
  for (uint64_t fp : bob_diff_fps) {
    auto it = bob_fp_to_child.find(fp);
    if (it == bob_fp_to_child.end()) {
      unknown_bob_fp = true;
      break;
    }
    bob_diff_children.push_back(it->second);
    bob_diff_ests.emplace_back(est_params);
    const ChildSet& bob_child = bob[it->second];
    bob_diff_ests.back().UpdateBatch(bob_child.data(), bob_child.size(), 2);
  }
  if (unknown_bob_fp) {
    co_return co_await SendVerdict(
        ctx, channel, Party::kBob,
        VerificationFailure("mr: unknown Bob-side fingerprint"), next);
  }
  ByteWriter w2;
  w2.PutU64Vector(alice_diff_fps);
  w2.PutU64Vector(bob_diff_fps);
  for (const L0Estimator& est : bob_diff_ests) est.Serialize(&w2);
  size_t msg2 =
      co_await ctx->Send(channel, Party::kBob, w2.Take(), "mr-estimators");
  assert(msg2 == *next && "transcript index drifted (Bob)");
  (void)msg2;
  ++*next;

  // ---- msg3: Alice's per-child payloads (or her mid-attempt verdict). ----
  const Channel::Message& m3 = co_await ctx->Receive(channel, *next);
  ++*next;
  if (std::optional<Status> abort = PeerAbort(m3)) {
    *end = AttemptEnd::kTerminal;
    co_return *abort;
  }
  if (IsVerdictMessage(m3)) {
    Result<AttemptVerdict> verdict = ParseVerdict(m3);
    if (!verdict.ok() || verdict.value().ok) {
      *end = AttemptEnd::kTerminal;
      co_return verdict.ok()
          ? ParseError("mr: unexpected ok verdict in payload slot")
          : verdict.status();
    }
    co_return verdict.value().status;  // Alice-side retriable failure.
  }

  // Recovery; failures settle in the msg4 verdict slot (parse errors as
  // aborts — replaying the attempt cannot fix a malformed message).
  Status fail = Status::Ok();
  SetOfSets da;
  {
    ByteReader r3(m3.payload);
    uint64_t num_entries = 0;
    if (!r3.GetVarint(&num_entries)) fail = ParseError("mr msg3 truncated");
    const ChildSet empty_set;
    for (uint64_t k = 0; fail.ok() && k < num_entries; ++k) {
      uint64_t fp = 0, partner = 0, d_i = 0;
      uint8_t mode_raw = 0;
      if (!r3.GetU64(&fp) || !r3.GetU64(&partner) || !r3.GetU8(&mode_raw) ||
          !r3.GetVarint(&d_i)) {
        fail = ParseError("mr msg3 truncated (entry header)");
        break;
      }
      const ChildSet* base = &empty_set;
      if (partner != kNoPartner) {
        if (partner >= bob_diff_children.size()) {
          fail = ParseError("mr msg3: partner index out of range");
          break;
        }
        base = &bob[bob_diff_children[partner]];
      }
      ChildSet candidate;
      switch (static_cast<PayloadMode>(mode_raw)) {
        case PayloadMode::kDirect: {
          if (!r3.GetU64Vector(&candidate)) {
            fail = ParseError("mr msg3 truncated (direct)");
          }
          break;
        }
        case PayloadMode::kIblt: {
          // d_i sizes the sketch Bob is about to allocate; it is peer
          // input and gets the same plausibility gate as the msg1 d-hat
          // prefix (a corrupt value must be a parse error, not a
          // bad_alloc thrown into the coroutine). kDirect payloads skip
          // the gate — they allocate nothing proportional to d_i, and an
          // honest direct d_i (child size + 1) may legitimately exceed
          // it.
          if (!WireDHatPlausible(d_i, /*key_width=*/8)) {
            fail = ParseError("mr msg3: implausible d_i");
            break;
          }
          IbltConfig config = ChildPayloadConfig(d_i, seed, fp);
          Result<Iblt> sketch =
              Iblt::DeserializeWith(params_.wire_codec, &r3, config);
          if (!sketch.ok()) {
            fail = sketch.status();
            break;
          }
          Iblt diff = std::move(sketch).value();
          diff.EraseBatch(*base);
          Result<IbltDecodeResult64> dd = diff.DecodeU64(scratch);
          if (!dd.ok()) {
            fail = dd.status();
            break;
          }
          SetDifference sd;
          sd.remote_only = std::move(dd.value().positive);
          sd.local_only = std::move(dd.value().negative);
          candidate = ApplyDifference(*base, sd);
          break;
        }
        case PayloadMode::kCharPoly: {
          if (!WireDHatPlausible(d_i, /*key_width=*/8)) {
            fail = ParseError("mr msg3: implausible d_i");
            break;
          }
          CharPolyReconciler reconciler(d_i, DeriveSeed(seed, Mix64(fp)));
          std::vector<uint8_t> payload;
          if (!r3.GetBytes(reconciler.MessageSize(), &payload)) {
            fail = ParseError("mr msg3 truncated (charpoly)");
            break;
          }
          Result<SetDifference> sd = reconciler.DecodeDifference(payload,
                                                                 *base);
          if (!sd.ok()) {
            fail = sd.status();
            break;
          }
          candidate = ApplyDifference(*base, sd.value());
          break;
        }
        default:
          fail = ParseError("mr msg3: unknown payload mode");
          break;
      }
      if (!fail.ok()) break;
      if (ChildFingerprint(candidate, fp_family) != fp) {
        fail = VerificationFailure("mr: child fingerprint mismatch");
        break;
      }
      da.push_back(std::move(candidate));
    }
  }

  SetOfSets recovered;
  if (fail.ok()) {
    std::vector<bool> in_db(bob.size(), false);
    for (size_t j : bob_diff_children) in_db[j] = true;
    recovered.reserve(bob.size() + da.size());
    for (size_t j = 0; j < bob.size(); ++j) {
      if (!in_db[j]) recovered.push_back(bob[j]);
    }
    for (ChildSet& child : da) recovered.push_back(std::move(child));
    recovered = Canonicalize(std::move(recovered));
    if (ParentFingerprint(recovered, fp_family) != alice_parent_fp) {
      fail = VerificationFailure("mr: parent fingerprint mismatch");
    }
  }

  if (!fail.ok() && fail.code() == StatusCode::kParseError) {
    *end = AttemptEnd::kTerminal;
    co_return co_await SendAbort(ctx, channel, Party::kBob, fail);
  }
  co_await SendVerdict(ctx, channel, Party::kBob, fail, next);
  if (!fail.ok()) co_return fail;
  *end = AttemptEnd::kOk;
  co_return recovered;
}

Task<Status> MultiRoundProtocol::ReconcileAsyncAlice(
    const SetOfSets& alice, std::optional<size_t> known_d, Channel* channel,
    ProtocolContext* ctx) const {
  Status valid = ValidateSetOfSetsMemo(alice, params_, ctx);
  const bool estimated = !known_d.has_value();
  size_t next = 0;

  size_t d_hat = 0;
  if (!estimated) {
    if (!valid.ok()) {
      co_return co_await SendAbort(ctx, channel, Party::kAlice, valid);
    }
    d_hat = std::max<size_t>(DHat(std::max<size_t>(*known_d, 1), params_), 1);
  } else {
    // SSRU (Theorem 3.10): round 0, Bob opens with an l0 estimator over his
    // child fingerprints so Alice can size the fingerprint IBLT.
    const Channel::Message& m = co_await ctx->Receive(channel, next);
    ++next;
    if (std::optional<Status> abort = PeerAbort(m)) co_return *abort;
    if (!valid.ok()) {
      co_return co_await SendAbort(ctx, channel, Party::kAlice, valid);
    }
    const L0Estimator::Params est_params =
        RoundZeroEstimatorParams(params_.seed);
    HashFamily fp_family(est_params.seed, /*tag=*/0x66706d32ull);
    ByteReader reader(m.payload);
    Result<L0Estimator> merged_r =
        L0Estimator::Deserialize(&reader, est_params);
    if (!merged_r.ok()) {
      co_return co_await SendAbort(ctx, channel, Party::kAlice,
                                   merged_r.status());
    }
    L0Estimator merged = std::move(merged_r).value();
    L0Estimator alice_est(est_params);
    std::vector<uint64_t> alice_fps0;
    alice_fps0.reserve(alice.size());
    for (const ChildSet& child : alice) {
      alice_fps0.push_back(ChildFingerprint(child, fp_family));
    }
    ctx->QueueL0Update(&alice_est, alice_fps0.data(), alice_fps0.size(), 1);
    co_await ctx->FlushBuilds();
    if (Status s = merged.Merge(alice_est); !s.ok()) {
      co_return co_await SendAbort(ctx, channel, Party::kAlice, s);
    }
    // Clamped to the wire bound Bob's side enforces (WireDHatPlausible;
    // the fingerprint table has 8-byte keys).
    d_hat = std::min<size_t>(
        std::max<size_t>(
            static_cast<size_t>(params_.estimate_slack *
                                static_cast<double>(merged.Estimate())) /
                2,
            2),
        MaxWireDHat(/*key_width=*/8));
  }

  // Shared trial driver (AttemptEnd flavor: the verdict exchange is
  // interleaved with the attempt's own four messages).
  std::optional<Iblt> fp_lineage;  // Previous attempt's fingerprint table.
  co_return co_await RunAliceEndTrials(
      ctx, params_.max_attempts,
      [&](int trial) {
        return DeriveSeed(params_.seed,
                          kAttemptTag + static_cast<uint64_t>(trial));
      },
      [&](int, uint64_t seed, AttemptEnd* end) {
        return AttemptAlice(alice, known_d, d_hat, estimated, seed, &next,
                            &fp_lineage, end, channel, ctx);
      },
      [&] {
        if (estimated) {
          d_hat = std::min<size_t>(d_hat * 2, MaxWireDHat(/*key_width=*/8));
        }
      },
      "multiround failed: ");
}

Task<Result<SsrOutcome>> MultiRoundProtocol::ReconcileAsyncBob(
    const SetOfSets& bob, std::optional<size_t> known_d, Channel* channel,
    ProtocolContext* ctx) const {
  Status valid = ValidateSetOfSets(bob, params_);
  const bool estimated = !known_d.has_value();
  size_t next = 0;

  size_t d_hat = 0;
  if (!estimated) {
    d_hat = std::max<size_t>(DHat(std::max<size_t>(*known_d, 1), params_), 1);
    if (!valid.ok()) {
      // Bob's first slot is msg2 of attempt 0; abort there.
      const Channel::Message& m = co_await ctx->Receive(channel, next);
      ++next;
      if (std::optional<Status> abort = PeerAbort(m)) co_return *abort;
      co_return co_await SendAbort(ctx, channel, Party::kBob, valid);
    }
  } else {
    if (!valid.ok()) {
      co_return co_await SendAbort(ctx, channel, Party::kBob, valid);
    }
    const L0Estimator::Params est_params =
        RoundZeroEstimatorParams(params_.seed);
    HashFamily fp_family(est_params.seed, /*tag=*/0x66706d32ull);
    L0Estimator bob_est(est_params);
    std::vector<uint64_t> bob_fps0;
    bob_fps0.reserve(bob.size());
    for (const ChildSet& child : bob) {
      bob_fps0.push_back(ChildFingerprint(child, fp_family));
    }
    ctx->QueueL0Update(&bob_est, bob_fps0.data(), bob_fps0.size(), 2);
    co_await ctx->FlushBuilds();
    ByteWriter writer;
    bob_est.Serialize(&writer);
    size_t index = co_await ctx->Send(channel, Party::kBob, writer.Take(),
                                      "mr-d-estimator");
    assert(index == next && "transcript index drifted (Bob)");
    (void)index;
    ++next;
  }

  // Bob's retry state (d_hat) rides on the wire; empty on_retry.
  std::optional<Iblt> fp_lineage;  // Previous attempt's fingerprint table.
  co_return co_await RunBobEndTrials(
      ctx, channel, params_.max_attempts,
      [&](int trial) {
        return DeriveSeed(params_.seed,
                          kAttemptTag + static_cast<uint64_t>(trial));
      },
      [&](int, uint64_t seed, AttemptEnd* end) {
        return AttemptBob(bob, &d_hat, estimated, seed, &next, &fp_lineage,
                          end, channel, ctx);
      },
      [] {}, "multiround failed: ");
}

}  // namespace setrec
