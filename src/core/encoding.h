#ifndef SETREC_CORE_ENCODING_H_
#define SETREC_CORE_ENCODING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/protocol.h"
#include "iblt/iblt.h"
#include "util/status.h"

namespace setrec {

/// Fixed-width byte encodings of child sets and of (child IBLT, hash)
/// pairs. Outer IBLTs treat these blobs as keys, so every child encoding
/// under the same protocol parameters must have identical width.

/// Width of a direct child-set blob for child sets of up to `h` elements:
/// a u32 count, h little-endian u64 elements (zero padded).
size_t ChildBlobWidth(size_t h);

/// Encodes `child` (sorted, size <= h) into a ChildBlobWidth(h) blob.
std::vector<uint8_t> EncodeChildBlob(const ChildSet& child, size_t h);

/// Inverse of EncodeChildBlob; validates count, ordering and padding. The
/// (data, size) form parses straight out of a decode-view arena without an
/// owning copy; the convenience overloads delegate to it.
Result<ChildSet> DecodeChildBlob(const uint8_t* data, size_t size, size_t h);
inline Result<ChildSet> DecodeChildBlob(const std::vector<uint8_t>& blob,
                                        size_t h) {
  return DecodeChildBlob(blob.data(), blob.size(), h);
}
inline Result<ChildSet> DecodeChildBlob(const IbltKeyView& blob, size_t h) {
  return DecodeChildBlob(blob.data, blob.size, h);
}

/// Width of an (IBLT, fingerprint) encoding blob for the given child IBLT
/// config: the fixed IBLT serialization plus 8 fingerprint bytes.
size_t ChildIbltBlobWidth(const IbltConfig& child_config);

/// A parsed child encoding: the child's IBLT sketch plus its fingerprint.
struct ChildEncoding {
  Iblt sketch;
  uint64_t fingerprint;
};

/// Builds the (child IBLT, hash) encoding of Algorithms 1 and 2: the child's
/// elements inserted into an IBLT with `child_config`, serialized fixed-
/// width, followed by the child fingerprint.
std::vector<uint8_t> EncodeChildIbltBlob(const ChildSet& child,
                                         const IbltConfig& child_config,
                                         uint64_t fingerprint);

/// The split form: serializes an already-built child sketch plus its
/// fingerprint, appending ChildIbltBlobWidth bytes to `out`. Protocols that
/// defer child-sketch builds into coalesced planner passes build all
/// sketches first, then pack the blobs contiguously for one outer-table
/// batch update. Byte-identical to EncodeChildIbltBlob of the same child.
void AppendChildIbltBlob(const Iblt& sketch, uint64_t fingerprint,
                         ByteWriter* out);

/// Parses a blob produced by EncodeChildIbltBlob. The (data, size) form
/// reads straight out of a decode-view arena.
Result<ChildEncoding> ParseChildIbltBlob(const uint8_t* data, size_t size,
                                         const IbltConfig& child_config);
inline Result<ChildEncoding> ParseChildIbltBlob(
    const std::vector<uint8_t>& blob, const IbltConfig& child_config) {
  return ParseChildIbltBlob(blob.data(), blob.size(), child_config);
}
inline Result<ChildEncoding> ParseChildIbltBlob(
    const IbltKeyView& blob, const IbltConfig& child_config) {
  return ParseChildIbltBlob(blob.data, blob.size, child_config);
}

}  // namespace setrec

#endif  // SETREC_CORE_ENCODING_H_
