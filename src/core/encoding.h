#ifndef SETREC_CORE_ENCODING_H_
#define SETREC_CORE_ENCODING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/protocol.h"
#include "iblt/iblt.h"
#include "util/status.h"

namespace setrec {

/// Fixed-width byte encodings of child sets and of (child IBLT, hash)
/// pairs. Outer IBLTs treat these blobs as keys, so every child encoding
/// under the same protocol parameters must have identical width.

/// Width of a direct child-set blob for child sets of up to `h` elements:
/// a u32 count, h little-endian u64 elements (zero padded).
size_t ChildBlobWidth(size_t h);

/// Encodes `child` (sorted, size <= h) into a ChildBlobWidth(h) blob.
std::vector<uint8_t> EncodeChildBlob(const ChildSet& child, size_t h);

/// Inverse of EncodeChildBlob; validates count, ordering and padding.
Result<ChildSet> DecodeChildBlob(const std::vector<uint8_t>& blob, size_t h);

/// Width of an (IBLT, fingerprint) encoding blob for the given child IBLT
/// config: the fixed IBLT serialization plus 8 fingerprint bytes.
size_t ChildIbltBlobWidth(const IbltConfig& child_config);

/// A parsed child encoding: the child's IBLT sketch plus its fingerprint.
struct ChildEncoding {
  Iblt sketch;
  uint64_t fingerprint;
};

/// Builds the (child IBLT, hash) encoding of Algorithms 1 and 2: the child's
/// elements inserted into an IBLT with `child_config`, serialized fixed-
/// width, followed by the child fingerprint.
std::vector<uint8_t> EncodeChildIbltBlob(const ChildSet& child,
                                         const IbltConfig& child_config,
                                         uint64_t fingerprint);

/// Parses a blob produced by EncodeChildIbltBlob.
Result<ChildEncoding> ParseChildIbltBlob(const std::vector<uint8_t>& blob,
                                         const IbltConfig& child_config);

}  // namespace setrec

#endif  // SETREC_CORE_ENCODING_H_
