#ifndef SETREC_CORE_WORKLOAD_H_
#define SETREC_CORE_WORKLOAD_H_

#include <cstdint>

#include "core/protocol.h"

namespace setrec {

/// A synthetic sets-of-sets reconciliation instance with a known difference
/// bound, used by tests and by the benchmark harness (all of the paper's
/// workloads are synthetic; Section 3.5 fixes s, u, h, d regimes).
struct SsrWorkload {
  SetOfSets alice;
  SetOfSets bob;
  /// The number of element insertions/deletions applied to derive Alice's
  /// parent set from Bob's — an upper bound on the minimum-difference
  /// matching cost d.
  size_t applied_changes = 0;
};

struct SsrWorkloadSpec {
  /// Number of child sets s.
  size_t num_children = 16;
  /// Elements per child set h (children are generated full).
  size_t child_size = 32;
  /// Elements are drawn from [0, universe).
  uint64_t universe = 1ull << 32;
  /// Total element changes to apply (the paper's d).
  size_t changes = 4;
  /// If > 0, changes are concentrated on at most this many child sets;
  /// 0 spreads them uniformly at random.
  size_t touched_children = 0;
  uint64_t seed = 1;
};

/// Generates Bob's parent set, copies it to Alice, and applies
/// spec.changes random single-element insertions/deletions to Alice's
/// children (never cancelling each other, so applied_changes is tight).
SsrWorkload MakeSsrWorkload(const SsrWorkloadSpec& spec);

}  // namespace setrec

#endif  // SETREC_CORE_WORKLOAD_H_
