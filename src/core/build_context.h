#ifndef SETREC_CORE_BUILD_CONTEXT_H_
#define SETREC_CORE_BUILD_CONTEXT_H_

#include <coroutine>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/protocol.h"
#include "core/task.h"
#include "estimator/l0_estimator.h"
#include "estimator/strata_estimator.h"
#include "hashing/random.h"
#include "iblt/iblt.h"
#include "transport/channel.h"
#include "util/status.h"

namespace setrec {

class ProtocolContext;

/// Awaitable returned by ProtocolContext::FlushBuilds(). Under the inline
/// context (blocking Reconcile) every queued op has already executed, so the
/// barrier never suspends; under the service context it parks the session
/// until the cross-session batch planner has applied the queued ops.
struct BuildBarrier {
  ProtocolContext* ctx;

  bool await_ready() const noexcept;
  void await_suspend(std::coroutine_handle<> handle) const;
  void await_resume() const noexcept {}
};

/// Awaitable used by CachedAliceSend to serialize concurrent builders of
/// the same memoized Alice message (anti-stampede request coalescing).
/// await_resume is true when this coroutine acquired the build lease and
/// must build + store + release; false when it parked behind the current
/// builder and was woken — it should re-check the cache and loop.
struct BuildLeaseAwaiter {
  ProtocolContext* ctx;
  uint64_t key;
  bool acquired = false;

  bool await_ready() noexcept;
  void await_suspend(std::coroutine_handle<> handle) const;
  bool await_resume() const noexcept { return acquired; }
};

/// Awaitable returned by ProtocolContext::Send(). The message is already on
/// the channel (the index is fixed at construction); the await is the
/// round boundary: the service steps sessions round-by-round by regaining
/// control here, the inline context continues straight through.
struct SendAwaiter {
  ProtocolContext* ctx;
  size_t index;

  bool await_ready() const noexcept;
  void await_suspend(std::coroutine_handle<> handle) const;
  size_t await_resume() const noexcept { return index; }
};

/// Awaitable returned by ProtocolContext::Receive(): completes once the
/// transcript holds message `index`. A party coroutine awaiting its peer's
/// next message parks here; the message arrives either from the peer half's
/// Send (loopback composition — the context pumps parked receives on every
/// send) or from a remote connection (the driver appends the decoded frame
/// to the channel and pumps). Ready immediately when the message is already
/// in the transcript, so the composed both-parties path never parks under
/// the inline context beyond genuine turn-taking.
struct RecvAwaiter {
  ProtocolContext* ctx;
  const Channel* channel;
  size_t index;

  bool await_ready() const noexcept;
  void await_suspend(std::coroutine_handle<> handle) const;
  const Channel::Message& await_resume() const noexcept {
    return channel->Receive(index);
  }
};

/// The step/resume hook the protocol coroutines run against. One context
/// serves exactly one reconciliation (it may be reused sequentially).
///
/// The base class IS the inline implementation: queued sketch-build ops
/// execute immediately, barriers and round yields never suspend, and the
/// Alice-message cache is disabled — which makes the blocking Reconcile
/// wrappers behave exactly like the pre-coroutine code. The SyncService
/// session context overrides the virtuals to defer build ops into the
/// cross-session batch planner, park the coroutine at barriers and round
/// boundaries, and memoize Alice-side attempt messages across sessions that
/// reconcile the same parent set under the same public coins.
class ProtocolContext {
 public:
  virtual ~ProtocolContext() = default;

  /// True when build ops are deferred to a planner (service mode).
  virtual bool deferred() const { return false; }

  // --- Deferred sketch-build work -------------------------------------
  // Each Queue* op is semantically identical to the direct library call;
  // deferring only changes WHEN it runs (before the next FlushBuilds
  // barrier completes) and lets the planner coalesce ops from many
  // sessions into one Iblt::ApplyOps pass. The key buffers must stay alive
  // until the barrier completes — protocol coroutine locals are, because
  // the frame is suspended, not destroyed.

  virtual void QueueInsertU64(Iblt* table, const uint64_t* keys, size_t n) {
    table->InsertBatch(keys, n);
  }
  virtual void QueueEraseU64(Iblt* table, const uint64_t* keys, size_t n) {
    table->EraseBatch(keys, n);
  }
  virtual void QueueInsertBytes(Iblt* table, const uint8_t* keys, size_t n) {
    table->InsertBatch(keys, n);
  }
  virtual void QueueEraseBytes(Iblt* table, const uint8_t* keys, size_t n) {
    table->EraseBatch(keys, n);
  }
  virtual void QueueL0Update(L0Estimator* est, const uint64_t* xs, size_t n,
                             int side) {
    est->UpdateBatch(xs, n, side);
  }
  virtual void QueueStrataUpdate(StrataEstimator* est, const uint64_t* xs,
                                 size_t n, int side) {
    est->UpdateBatch(xs, n, side);
  }

  /// Barrier: completes once every op queued above has been applied.
  BuildBarrier FlushBuilds() { return BuildBarrier{this}; }

  /// Sends on the channel immediately and yields the round boundary; the
  /// awaited value is the message index (Channel::Send's return).
  SendAwaiter Send(Channel* channel, Party from, std::vector<uint8_t> payload,
                   std::string label) {
    size_t index = channel->Send(from, std::move(payload), std::move(label));
    OnSend(channel, index);
    return SendAwaiter{this, index};
  }

  /// Awaits message `index` of the transcript (see RecvAwaiter). The
  /// returned reference is valid only until the NEXT message is appended
  /// to the channel (the transcript vector may reallocate) — in practice,
  /// until the receiving party's own next send. Copy out anything needed
  /// longer; do not hold the reference across a Send.
  RecvAwaiter Receive(const Channel* channel, size_t index) {
    return RecvAwaiter{this, channel, index};
  }

  // --- Parked receives ------------------------------------------------
  // The base class owns the waiter list for every context flavor; what
  // differs is WHO resumes the handles. The inline context pumps them
  // synchronously from OnSend (the loopback composition's ping-pong), the
  // service moves ready handles onto its scheduler queues, and stream
  // drivers pump after appending decoded frames to the transcript.

  virtual void ParkOnRecv(const Channel* channel, size_t index,
                          std::coroutine_handle<> handle) {
    recv_waiters_.push_back(RecvWaiter{channel, index, handle});
  }
  /// Pops one parked receive whose message has arrived (null when none).
  std::coroutine_handle<> TakeReadyReceive() {
    for (size_t i = 0; i < recv_waiters_.size(); ++i) {
      if (recv_waiters_[i].channel->rounds() > recv_waiters_[i].index) {
        std::coroutine_handle<> handle = recv_waiters_[i].handle;
        recv_waiters_.erase(recv_waiters_.begin() +
                            static_cast<ptrdiff_t>(i));
        return handle;
      }
    }
    return {};
  }
  bool HasRecvWaiters() const { return !recv_waiters_.empty(); }
  /// True when a receive is parked on `channel` exactly at `index` — the
  /// local party is waiting for that transcript slot. The service gates
  /// remote-frame injection with this: it is the remote's turn iff the
  /// local half awaits the next slot (strict half-duplex).
  bool HasRecvWaiterAt(const Channel* channel, size_t index) const {
    for (const RecvWaiter& waiter : recv_waiters_) {
      if (waiter.channel == channel && waiter.index == index) return true;
    }
    return false;
  }
  /// Resumes ready receives until none remain ready. Re-entrant: a resumed
  /// party may Send, which calls OnSend, which may pump again — the waiter
  /// is removed from the list before its resume, so each handle runs once.
  void PumpReceives() {
    while (std::coroutine_handle<> handle = TakeReadyReceive()) {
      handle.resume();
    }
  }
  /// Drops every parked receive without resuming. Call before destroying a
  /// still-parked coroutine (peer disconnect, early error) so no dangling
  /// handle survives in the waiter list.
  void CancelReceives() { recv_waiters_.clear(); }

  // --- Alice-message memoization --------------------------------------
  // A server reconciling one parent set against many clients rebuilds the
  // identical sketch message per session; the service context caches the
  // serialized message keyed by (set identity, attempt parameters).

  /// Stable nonzero identity for a parent set registered with the service;
  /// 0 (the default) means "unknown set — do not cache".
  virtual uint64_t SetIdentity(const void* parent_set) {
    (void)parent_set;
    return 0;
  }
  /// Identity of the PEER's parent set, for the Bob half: Bob derives the
  /// same cache keys Alice used (ProtocolCacheKey feeds TableMemoKey) but
  /// holds no pointer to her set. The service context returns the session's
  /// registered Alice-set identity; remote clients get 0 (no memoization).
  virtual uint64_t PeerSetIdentity() { return 0; }
  virtual const std::vector<uint8_t>* CacheLookup(uint64_t key) {
    (void)key;
    return nullptr;
  }
  virtual void CacheStore(uint64_t key, const std::vector<uint8_t>& bytes) {
    (void)key;
    (void)bytes;
  }
  /// Validation memo for pinned sets: a parent set registered with the
  /// service is scanned by ValidateSetOfSets once per (bounds) key instead
  /// of once per session. Inline mode never memoizes.
  virtual bool CheckValidated(uint64_t key) {
    (void)key;
    return false;
  }
  virtual void MarkValidated(uint64_t key) { (void)key; }

  /// Bob-side counterpart of the Alice-message cache: parses an IBLT from
  /// `reader`, memoizing the parsed table by `key` (0 = plain parse). A
  /// session receiving a replayed cached message gets a bulk copy of the
  /// memoized table instead of a per-cell re-parse of identical bytes; the
  /// reader advances identically either way. `codec` selects the wire
  /// decoding (SsrParams::wire_codec — the cache key must already encode
  /// it) and `lineage` lets the doubling protocols parse delta frames
  /// against their previous attempt's table.
  virtual Result<Iblt> ParseTableMemo(uint64_t key, ByteReader* reader,
                                      const IbltConfig& config,
                                      WireCodec codec = WireCodec::kDense,
                                      const TableLineage& lineage = {}) {
    (void)key;
    return Iblt::DeserializeWith(codec, reader, config, lineage);
  }

  /// Anti-stampede lease around a cache miss: true = caller is now the
  /// builder for `key` (must ReleaseBuildLease when done, success or not);
  /// false = another session is building — the caller will be parked (via
  /// ParkOnLease) and must re-check the cache once resumed. Inline mode has
  /// no concurrency, so it always grants.
  virtual bool TryAcquireBuildLease(uint64_t key) {
    (void)key;
    return true;
  }
  virtual void ReleaseBuildLease(uint64_t key) { (void)key; }
  virtual void ParkOnLease(uint64_t key, std::coroutine_handle<> handle) {
    (void)key;
    (void)handle;
  }

  // --- Pooled decode scratches ----------------------------------------
  // Slot 0 is the "outer" scratch (decode views may be held while slot 1
  // churns through nested child decodes), slot 1 the "child" scratch — the
  // split the set-of-sets protocols already rely on. The service hands all
  // sessions the same pool, which is safe because sessions never suspend
  // between a view-returning decode and the views' last use (the view
  // lifetime rule of iblt.h, restated for steps in src/service/README.md).

  virtual DecodeScratch* Scratch(int slot) = 0;

  // --- Service hooks (public so the awaitables can reach them) ---------

  /// Any queued-but-unapplied ops? (Inline mode: never.)
  virtual bool HasPendingOps() const { return false; }
  /// Parks the coroutine until the planner flushes / the next round step.
  /// Only called when deferred(); the inline context never suspends.
  virtual void ParkOnFlush(std::coroutine_handle<> handle) { (void)handle; }
  virtual void ParkOnRound(std::coroutine_handle<> handle) { (void)handle; }
  /// Hook on every ctx->Send: transports mirror the message (the service
  /// forwards it as an endpoint frame) and parked receives are woken. The
  /// base behavior pumps synchronously — under the inline context that IS
  /// the loopback scheduler: Alice's send resumes Bob's parked receive
  /// nested (depth ≤ one party switch), Bob runs to his next park or send,
  /// and control unwinds back through the sender. Overrides that defer
  /// resumption (the service) must still collect ready receives.
  virtual void OnSend(Channel* channel, size_t index) {
    (void)channel;
    (void)index;
    PumpReceives();
  }
  /// Observability hooks, fired by the shared trial drivers
  /// (core/split_party.h): a sketch attempt that failed to decode/verify,
  /// and a protocol round restarted with fresh randomness as a result. The
  /// inline context ignores them; the service context counts them into its
  /// per-shard metric block.
  virtual void OnDecodeFailure() {}
  virtual void OnRetryRound() {}

 protected:
  struct RecvWaiter {
    const Channel* channel;
    size_t index;
    std::coroutine_handle<> handle;
  };
  std::vector<RecvWaiter> recv_waiters_;
};

inline bool BuildLeaseAwaiter::await_ready() noexcept {
  acquired = ctx->TryAcquireBuildLease(key);
  return acquired;
}
inline void BuildLeaseAwaiter::await_suspend(
    std::coroutine_handle<> handle) const {
  ctx->ParkOnLease(key, handle);
}
inline bool BuildBarrier::await_ready() const noexcept {
  return !ctx->deferred() || !ctx->HasPendingOps();
}
inline void BuildBarrier::await_suspend(std::coroutine_handle<> handle) const {
  ctx->ParkOnFlush(handle);
}
inline bool SendAwaiter::await_ready() const noexcept {
  return !ctx->deferred();
}
inline void SendAwaiter::await_suspend(std::coroutine_handle<> handle) const {
  ctx->ParkOnRound(handle);
}
inline bool RecvAwaiter::await_ready() const noexcept {
  return channel->rounds() > index;
}
inline void RecvAwaiter::await_suspend(std::coroutine_handle<> handle) const {
  ctx->ParkOnRecv(channel, index, handle);
}

/// The default context for blocking Reconcile calls: the base-class inline
/// behavior plus two locally-owned decode scratches.
class InlineContext : public ProtocolContext {
 public:
  DecodeScratch* Scratch(int slot) override { return &scratches_[slot & 1]; }

 private:
  DecodeScratch scratches_[2];
};

/// Cache key for an Alice attempt message: 0 (uncacheable) when the set has
/// no service identity, otherwise a nonzero mix of the identity and every
/// parameter that shapes the message (protocol tag, bounds, attempt seed).
inline uint64_t ProtocolCacheKey(uint64_t set_id,
                                 std::initializer_list<uint64_t> parts) {
  if (set_id == 0) return 0;
  uint64_t key = Mix64(set_id ^ 0x616c696365736b63ull);  // "alicskc"
  for (uint64_t part : parts) key = Mix64(key ^ part);
  return key | 1;
}

/// Validates `set` against params, memoizing the verdict for sets with a
/// service identity (the scan of a registered server set is paid once per
/// bounds, not once per session). Only positive verdicts are memoized.
Status ValidateSetOfSetsMemo(const SetOfSets& set, const SsrParams& params,
                             ProtocolContext* ctx);

/// Key for ParseTableMemo: the Alice-message cache key of the message the
/// table arrived in, plus the table's index within it (cascade messages
/// carry several). Preserves 0 = uncacheable.
inline uint64_t TableMemoKey(uint64_t message_cache_key, uint64_t index) {
  if (message_cache_key == 0) return 0;
  return Mix64(message_cache_key ^ (0x7461626cull + index)) | 1;  // "tabl"
}

/// Builds (or replays from cache) one Alice attempt message and sends it.
/// `build` is a coroutine lambda `(ByteWriter*) -> Task<Status>` that
/// serializes the full message; it runs only on cache miss. The awaited
/// value is the message index on the channel. Transcripts are identical
/// with and without cache hits: the cached bytes are exactly the bytes the
/// builder produced for the same (set, parameters) pair.
template <typename Builder>
Task<Result<size_t>> CachedAliceSend(ProtocolContext* ctx, Channel* channel,
                                     uint64_t cache_key, std::string label,
                                     Builder& build) {
  bool hold_lease = false;
  if (cache_key != 0) {
    // Hit fast path, with anti-stampede coalescing on miss: the first
    // session to miss becomes the builder; concurrent sessions park until
    // the message is stored, then replay it. If a builder fails before
    // storing, the next waiter takes over the lease.
    for (;;) {
      if (const std::vector<uint8_t>* hit = ctx->CacheLookup(cache_key)) {
        size_t index =
            co_await ctx->Send(channel, Party::kAlice, *hit, std::move(label));
        co_return index;
      }
      if (co_await BuildLeaseAwaiter{ctx, cache_key}) {
        hold_lease = true;
        break;
      }
    }
  }
  ByteWriter writer;
  Status built = co_await build(&writer);
  if (!built.ok()) {
    if (hold_lease) ctx->ReleaseBuildLease(cache_key);
    co_return built;
  }
  std::vector<uint8_t> bytes = writer.Take();
  if (hold_lease) {
    ctx->CacheStore(cache_key, bytes);
    ctx->ReleaseBuildLease(cache_key);
  }
  size_t index = co_await ctx->Send(channel, Party::kAlice, std::move(bytes),
                                    std::move(label));
  co_return index;
}

}  // namespace setrec

#endif  // SETREC_CORE_BUILD_CONTEXT_H_
