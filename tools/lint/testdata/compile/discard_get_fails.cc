// LINT-TEST-PATH: tools/lint/testdata/compile/discard_get_fails.cc
// LINT-TEST: expect-clean
//
// Negative-compile fixture: discarding a ByteReader getter MUST NOT
// compile under -Werror=unused-result. ctest runs the compiler on this
// file with WILL_FAIL so a regression (someone dropping [[nodiscard]])
// turns the test red. The lint directives above only keep the fixture
// runner quiet; the teeth are in the compiler invocation.

#include <cstdint>

#include "util/serialization.h"

namespace setrec {

uint32_t ParseSloppily(const uint8_t* data, size_t n) {
  ByteReader reader(data, n);
  uint32_t v = 0;
  reader.GetU32(&v);  // Discarded result: must be a compile error.
  return v;
}

}  // namespace setrec
