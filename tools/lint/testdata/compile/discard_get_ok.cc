// LINT-TEST-PATH: tools/lint/testdata/compile/discard_get_ok.cc
// LINT-TEST: expect-clean
//
// Positive control for the negative-compile fixture: identical include
// path and flags, but the result is checked — this file must compile. If
// it stops compiling, the WILL_FAIL test above is failing for the wrong
// reason (bad include path, broken header), not because [[nodiscard]]
// worked.

#include <cstdint>

#include "util/serialization.h"

namespace setrec {

bool ParseProperly(const uint8_t* data, size_t n, uint32_t* out) {
  ByteReader reader(data, n);
  return reader.GetU32(out);
}

}  // namespace setrec
