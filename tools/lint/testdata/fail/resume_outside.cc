// LINT-TEST-PATH: src/apps/rogue_driver.cc
// LINT-TEST: expect resume-outside-driver
//
// resume() from outside the whitelisted shard drivers: bypasses the
// service's parked-wake bookkeeping and risks a double resume (UB).

#include <coroutine>

namespace setrec {

void WakeDirectly(std::coroutine_handle<> h) {
  if (h && !h.done()) h.resume();  // BAD: route through the service.
}

}  // namespace setrec
