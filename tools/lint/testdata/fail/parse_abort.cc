// LINT-TEST-PATH: src/util/serialization_extra.cc
// LINT-TEST: expect parse-assert

#include <cstdint>
#include <cstdlib>

namespace setrec {

uint32_t MustParseU32(const uint8_t* data, unsigned long n) {
  if (n < 4) abort();  // BAD: truncated input is a Status, not a SIGABRT.
  uint32_t v = 0;
  for (unsigned long i = 0; i < 4; ++i) {
    v = static_cast<uint32_t>(v | (static_cast<uint32_t>(data[i]) << (8 * i)));
  }
  return v;
}

}  // namespace setrec
