// LINT-TEST-PATH: src/iblt/fake_kernel.cc
// LINT-TEST: expect alloc-in-hot-path

#include <cstdint>
#include <vector>

namespace setrec {

// LINT(alloc-free)
void XorAndRecord(uint64_t* dst, const uint64_t* src, unsigned long n,
                  std::vector<uint64_t>* log) {
  for (unsigned long i = 0; i < n; ++i) {
    dst[i] ^= src[i];
    log->push_back(dst[i]);  // BAD: allocates inside the hot region.
  }
}
// LINT(end)

}  // namespace setrec
