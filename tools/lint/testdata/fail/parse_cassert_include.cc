// LINT-TEST-PATH: src/net/fake_pump.cc
// LINT-TEST: expect parse-assert
//
// Even an unused <cassert> include is banned in wire-parse paths: it is
// the on-ramp for the next assert() to slip in unnoticed.

#include <cassert>
#include <cstdint>

namespace setrec {

int PumpOnce(uint32_t budget) { return budget != 0 ? 1 : 0; }

}  // namespace setrec
