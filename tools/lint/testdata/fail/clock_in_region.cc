// LINT-TEST-PATH: src/iblt/fake_timed_kernel.cc
// LINT-TEST: expect clock-in-hot-path

#include <chrono>
#include <cstdint>

namespace setrec {

// LINT(alloc-free)
uint64_t TimedMix(uint64_t x) {
  auto t0 = std::chrono::steady_clock::now();  // BAD: clock read in region.
  x ^= x >> 33;
  x *= uint64_t{0xff51afd7ed558ccd};
  return x ^ static_cast<uint64_t>(t0.time_since_epoch().count());
}
// LINT(end)

}  // namespace setrec
