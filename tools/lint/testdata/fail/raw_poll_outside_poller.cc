// LINT-TEST-PATH: src/net/net_pump.cc
// LINT-TEST: expect raw-poll
//
// The pump must go through the Poller interface; a direct epoll_wait here
// would bypass SETREC_POLLER steering and the backend matrix tests.

int Pump() {
  int n = epoll_wait(3, nullptr, 16, 10);
  return n;
}
