// LINT-TEST-PATH: src/service/rogue_cache.h
// LINT-TEST: expect view-member
//
// Storing a borrowed view in a class member: the view dies at the
// scratch's next decode, the member does not.

#include <cstdint>
#include <vector>

namespace setrec {

struct IbltKeyView {
  const uint8_t* data = nullptr;
  unsigned long size = 0;
};

class DecodeCache {
 public:
  void Remember(const IbltKeyView& v) { last_ = v; }

 private:
  IbltKeyView last_;  // BAD: outlives the DecodeScratch borrow.
};

}  // namespace setrec
