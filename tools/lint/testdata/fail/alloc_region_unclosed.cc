// LINT-TEST-PATH: src/iblt/fake_kernel2.cc
// LINT-TEST: expect alloc-in-hot-path
//
// A LINT(alloc-free) region with no LINT(end): the region silently grows
// to EOF, so the marker pair itself is enforced.

#include <cstdint>

namespace setrec {

// LINT(alloc-free)
void XorLanes(uint64_t* dst, const uint64_t* src, unsigned long n) {
  for (unsigned long i = 0; i < n; ++i) dst[i] ^= src[i];
}

}  // namespace setrec
