// LINT-TEST-PATH: src/iblt/fake_formatting_kernel.cc
// LINT-TEST: expect format-in-hot-path

#include <cstdint>
#include <cstdio>
#include <string>

namespace setrec {

// LINT(alloc-free)
uint64_t LoggedMix(uint64_t x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",  // BAD: format call in region.
                static_cast<unsigned long long>(x));
  x ^= x >> 33;
  x *= uint64_t{0xff51afd7ed558ccd};
  return x ^ static_cast<uint64_t>(buf[0]);
}
// LINT(end)

}  // namespace setrec
