// LINT-TEST-PATH: src/net/fake_parser.cc
// LINT-TEST: expect parse-assert
//
// A parser in a wire-parse path that asserts on malformed input: the
// classic remote-crash (or NDEBUG silent-accept) bug this rule exists for.

#include <cstdint>

namespace setrec {

bool ParseHeader(const uint8_t* data, unsigned long n) {
  assert(n >= 4);  // BAD: hostile input must fail closed, not trap.
  return data[0] == 1;
}

}  // namespace setrec
