// LINT-TEST-PATH: src/iblt/fake_timed_kernel2.cc
// LINT-TEST: expect-clean
//
// Sampling time through the obs macro is the sanctioned idiom inside a
// hot region: it compiles to nothing under SETREC_OBS_DISABLE. Mentioning
// steady_clock in a comment must not fire, and direct clock reads outside
// the region are fine.

#include <chrono>
#include <cstdint>

#define SETREC_OBS_NOW() uint64_t{0}

namespace setrec {

// LINT(alloc-free)
// Callers wanting wall time use steady_clock outside the region.
uint64_t SampledMix(uint64_t x) {
  const uint64_t t0 = SETREC_OBS_NOW();
  x ^= x >> 33;
  x *= uint64_t{0xff51afd7ed558ccd};
  return x ^ t0;
}
// LINT(end)

uint64_t OutsideRegionMayReadClock() {
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace setrec
