// LINT-TEST-PATH: src/net/clean_parser.cc
// LINT-TEST: expect-clean
//
// The sanctioned shape for wire-parse code: bounds-checked reads, Status
// on truncation. Mentions of assert/abort in comments and strings must not
// trip the token scanner: assert(false); abort();

#include <cstdint>

namespace setrec {

struct FakeStatus {
  int code = 0;
  const char* message = "assert( in a string literal is fine";
};

FakeStatus ParseFrame(const uint8_t* data, unsigned long n) {
  if (n < 4) return FakeStatus{5, "truncated frame"};  // kParseError.
  if (data[0] != 1) return FakeStatus{5, "bad version; abort( mention ok"};
  return FakeStatus{};
}

}  // namespace setrec
