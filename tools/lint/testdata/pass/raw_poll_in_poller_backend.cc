// LINT-TEST-PATH: src/net/poller_epoll.cc
// LINT-TEST: expect-clean
//
// Backend files under src/net/poller* ARE the sanctioned home for raw
// readiness syscalls; every form the rule knows must pass here.

int Backend() {
  int ep = epoll_create1(0);
  epoll_ctl(ep, 1, 3, nullptr);
  int n = epoll_wait(ep, nullptr, 16, -1);
  struct pollfd* fds = nullptr;
  n += ::poll(fds, 1, 0);
  n += static_cast<int>(::syscall(__NR_io_uring_setup, 8, nullptr));
  return n;
}
