// LINT-TEST-PATH: src/core/task.h
// LINT-TEST: expect-clean
//
// Identical resume() call, but in a whitelisted driver file: this is where
// resumption is *supposed* to live.

#include <coroutine>

namespace setrec {

void DriverStep(std::coroutine_handle<> h) {
  if (h && !h.done()) h.resume();
}

}  // namespace setrec
