// LINT-TEST-PATH: src/core/fake_encoding.h
// LINT-TEST: expect-clean
//
// The sanctioned uses: views as parameters, locals, and return types —
// borrows that end with the call. Method declarations mentioning view
// types are not members.

#include <cstdint>
#include <vector>

namespace setrec {

struct IbltKeyView {
  const uint8_t* data = nullptr;
  unsigned long size = 0;
};

struct IbltDecodeView;  // Declaration only; defined in the real iblt.h.

class Decoder {
 public:
  IbltDecodeView Decode(const std::vector<uint8_t>& bytes);
  bool Verify(const IbltKeyView& key) const;

 private:
  std::vector<uint8_t> owned_;  // Owned storage is fine.
};

inline uint64_t FirstByte(const IbltKeyView& v) {
  IbltKeyView local = v;  // Local copy inside a function body: fine.
  return local.size > 0 ? local.data[0] : 0;
}

}  // namespace setrec
