// LINT-TEST-PATH: src/iblt/fake_formatting_kernel2.cc
// LINT-TEST: expect-clean
//
// The sanctioned shape: the hot region records raw integers; formatting
// (snprintf, to_string) happens after LINT(end), off the hot path — the
// tracer's Record/OnSessionEnd split. Mentioning snprintf in a comment
// inside the region must not fire.

#include <cstdint>
#include <cstdio>
#include <string>

namespace setrec {

// LINT(alloc-free)
// Callers wanting text output snprintf the recorded value outside.
uint64_t RecordedMix(uint64_t x, uint64_t* recorded) {
  x ^= x >> 33;
  x *= uint64_t{0xff51afd7ed558ccd};
  *recorded = x;
  return x;
}
// LINT(end)

std::string FormatRecorded(uint64_t recorded) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(recorded));
  return std::string(buf) + "/" + std::to_string(recorded);
}

}  // namespace setrec
