// LINT-TEST-PATH: src/core/fake_arena.h
// LINT-TEST: expect-clean
//
// The escape hatch: an audited owner of view storage marks the member with
// LINT(allow:view-member). The annotation is the review trail.

#include <cstdint>
#include <vector>

namespace setrec {

struct IbltKeyView {
  const uint8_t* data = nullptr;
  unsigned long size = 0;
};

class FakeArena {
 public:
  const std::vector<IbltKeyView>& views() const { return views_; }

 private:
  std::vector<uint8_t> storage_;  // The views below borrow from here, so
                                  // member lifetime equals borrow lifetime.
  std::vector<IbltKeyView> views_;  // LINT(allow:view-member)
};

}  // namespace setrec
