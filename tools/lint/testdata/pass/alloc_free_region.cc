// LINT-TEST-PATH: src/iblt/fake_kernel3.cc
// LINT-TEST: expect-clean
//
// A genuinely allocation-free kernel; the words "new" and "push_back" in
// comments must not fire, and code outside the region may allocate freely.

#include <cstdint>
#include <vector>

namespace setrec {

// LINT(alloc-free)
// Computes the new checksum lane; nothing here may push_back.
uint64_t MixLane(uint64_t x) {
  x ^= x >> 33;
  x *= uint64_t{0xff51afd7ed558ccd};
  x ^= x >> 33;
  return x;
}
// LINT(end)

void OutsideRegionMayAllocate(std::vector<uint64_t>* out) {
  out->push_back(MixLane(42));
}

}  // namespace setrec
