// setrec_lint: repo-specific invariant checker for setrec.
//
// Compilers enforce the language; this tool enforces the project's own
// contracts — the ones a correct-looking diff can silently break:
//
//   parse-assert     Wire-parse code (src/net/, src/util/serialization.*)
//                    must fail closed with Status/kParseError, never
//                    assert()/abort(): those paths see hostile bytes, and
//                    an assert is a remote crash (or a silent accept under
//                    NDEBUG). The <cassert> include is banned there too so
//                    the habit cannot creep back in.
//   resume-outside-driver
//                    coroutine_handle<>::resume() may only be called from
//                    the whitelisted shard drivers. Anywhere else it
//                    bypasses the service's parked-wake bookkeeping and
//                    can double-resume a handle (UB).
//   alloc-in-hot-path
//                    Regions marked `// LINT(alloc-free)` ... `// LINT(end)`
//                    (the XOR kernels and hash/index math behind the
//                    decode_allocs_warm == 0 benchmark claim) must not
//                    contain textually allocating calls.
//   view-member      IbltDecodeView / IbltDecodeView64 / IbltKeyView are
//                    borrows into a DecodeScratch arena, invalidated by the
//                    scratch's next decode. Storing one in a class member
//                    outlives the borrow; only src/iblt/iblt.h (the
//                    defining header and the arena itself) may do so.
//
// Annotation vocabulary (see docs/ANALYSIS.md):
//   // LINT(alloc-free)        begin an allocation-free region
//   // LINT(end)               end the innermost region
//   // LINT(allow:<rule>)      suppress <rule> on this line (use sparingly;
//                              the annotation is the audit trail)
//
// The scanner is token-level on comment- and string-stripped source: no
// libclang dependency, so it runs everywhere the build runs. That trades
// precision for availability — rules are written so the cheap
// approximation is exact on this codebase, and tools/lint/testdata pins
// the behavior either way.
//
// Usage:
//   setrec_lint --root <repo-root> --scan <dir> [--scan <dir> ...]
//   setrec_lint --fixtures <testdata-dir>
//   setrec_lint --root <repo-root> <file> [<file> ...]
// Exit: 0 clean, 1 violations (or fixture mismatch), 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string path;
  size_t line = 0;  // 1-based.
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Rule configuration (checked in, reviewed like code).
// ---------------------------------------------------------------------------

// Path prefixes whose files parse attacker-controlled bytes.
const char* const kWireParsePrefixes[] = {
    "src/net/",
    "src/util/serialization",
};

// The only files allowed to call coroutine_handle<>::resume(): the service
// shard driver, the planner build context, and the Task awaiter machinery.
const char* const kResumeWhitelist[] = {
    "src/service/sync_service.cc",
    "src/core/build_context.h",
    "src/core/task.h",
};

// The defining header for the view types; its member declarations ARE the
// view vocabulary (and the DecodeScratch arena the views borrow from).
const char* const kViewDefiningHeader = "src/iblt/iblt.h";

bool HasWireParsePrefix(const std::string& rel) {
  for (const char* prefix : kWireParsePrefixes) {
    if (rel.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

bool IsResumeWhitelisted(const std::string& rel) {
  for (const char* path : kResumeWhitelist) {
    if (rel == path) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Source model: raw lines plus a comment/string-stripped mirror.
// ---------------------------------------------------------------------------

struct SourceFile {
  std::string rel_path;
  std::vector<std::string> raw;
  std::vector<std::string> code;  // Comments and literal contents blanked.
};

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

// Blanks comments and the contents of string/char literals with spaces,
// preserving line structure, so token rules cannot fire on prose. Handles
// //, /* */, "...", '...', and R"delim(...)delim".
std::string StripCommentsAndStrings(const std::string& text) {
  std::string out(text.size(), ' ');
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_terminator;  // For kRawString: ")delim\"".
  const size_t n = text.size();
  for (size_t i = 0; i < n; ++i) {
    const char c = text[i];
    if (c == '\n') {
      out[i] = '\n';
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          state = State::kLineComment;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
          // Raw string literal: R"delim( ... )delim".
          size_t open = text.find('(', i + 2);
          if (open != std::string::npos) {
            raw_terminator =
                ")" + text.substr(i + 2, open - (i + 2)) + "\"";
            state = State::kRawString;
            out[i] = 'R';
            i = open;  // Skip the prefix; contents get blanked.
          } else {
            out[i] = c;
          }
        } else if (c == '"') {
          out[i] = '"';
          state = State::kString;
        } else if (c == '\'') {
          out[i] = '\'';
          state = State::kChar;
        } else {
          out[i] = c;
        }
        break;
      case State::kLineComment:
        break;  // Blanked.
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          ++i;
          state = State::kCode;
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n) {
          ++i;
          if (text[i] == '\n') out[i] = '\n';
        } else if (c == '"') {
          out[i] = '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          ++i;
        } else if (c == '\'') {
          out[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == ')' && text.compare(i, raw_terminator.size(),
                                     raw_terminator) == 0) {
          i += raw_terminator.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

bool LineAllows(const std::string& raw_line, const std::string& rule) {
  return raw_line.find("LINT(allow:" + rule + ")") != std::string::npos;
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

void CheckParseAssert(const SourceFile& f, std::vector<Violation>* out) {
  if (!HasWireParsePrefix(f.rel_path)) return;
  static const std::regex kAssertCall(R"(\b(assert|abort)\s*\()");
  static const std::regex kAssertInclude(
      R"(^\s*#\s*include\s*<(cassert|assert\.h)>)");
  for (size_t i = 0; i < f.code.size(); ++i) {
    if (LineAllows(f.raw[i], "parse-assert")) continue;
    if (std::regex_search(f.code[i], kAssertCall)) {
      out->push_back({f.rel_path, i + 1, "parse-assert",
                      "assert/abort in a wire-parse path; return "
                      "Status(kParseError) instead — these bytes are "
                      "attacker-controlled"});
    } else if (std::regex_search(f.code[i], kAssertInclude)) {
      out->push_back({f.rel_path, i + 1, "parse-assert",
                      "<cassert> include in a wire-parse path; parse code "
                      "fails closed via Status, not asserts"});
    }
  }
}

void CheckResumeWhitelist(const SourceFile& f, std::vector<Violation>* out) {
  if (IsResumeWhitelisted(f.rel_path)) return;
  static const std::regex kResume(R"(\.\s*resume\s*\()");
  for (size_t i = 0; i < f.code.size(); ++i) {
    if (LineAllows(f.raw[i], "resume-outside-driver")) continue;
    if (std::regex_search(f.code[i], kResume)) {
      out->push_back({f.rel_path, i + 1, "resume-outside-driver",
                      "coroutine resume() outside the whitelisted shard "
                      "drivers; route wakes through the service so a "
                      "handle cannot be double-resumed"});
    }
  }
}

void CheckAllocFreeRegions(const SourceFile& f, std::vector<Violation>* out) {
  static const std::regex kAlloc(
      R"(\bnew\b|\b(malloc|calloc|realloc)\s*\()"
      R"(|make_unique|make_shared|\bto_string\s*\()"
      R"(|\.\s*(push_back|emplace_back|emplace|resize|reserve|insert|assign)\s*\()"
      R"(|std::(string|vector|deque|map|set|unordered_map|unordered_set)\b)");
  bool in_region = false;
  size_t region_start = 0;
  for (size_t i = 0; i < f.raw.size(); ++i) {
    if (f.raw[i].find("LINT(alloc-free)") != std::string::npos) {
      if (in_region) {
        out->push_back({f.rel_path, i + 1, "alloc-in-hot-path",
                        "nested LINT(alloc-free) region (missing "
                        "LINT(end)?)"});
      }
      in_region = true;
      region_start = i + 1;
      continue;
    }
    if (f.raw[i].find("LINT(end)") != std::string::npos) {
      in_region = false;
      continue;
    }
    if (!in_region) continue;
    if (LineAllows(f.raw[i], "alloc-in-hot-path")) continue;
    if (std::regex_search(f.code[i], kAlloc)) {
      out->push_back({f.rel_path, i + 1, "alloc-in-hot-path",
                      "allocating call inside a LINT(alloc-free) region; "
                      "this code backs the decode_allocs_warm == 0 claim"});
    }
  }
  if (in_region) {
    out->push_back({f.rel_path, region_start, "alloc-in-hot-path",
                    "LINT(alloc-free) region never closed with LINT(end)"});
  }
}

// Hot paths must not read the clock through std::chrono (type machinery,
// and a second sanctioned timing idiom to audit) or raw clock_gettime: the
// obs sampling macro (SETREC_OBS_NOW in src/obs/clock.h) is the one
// timestamp source inside alloc-free regions — it compiles out under
// SETREC_OBS_DISABLE, which is what makes "instrumentation costs nothing
// when off" checkable.
void CheckClockInRegions(const SourceFile& f, std::vector<Violation>* out) {
  static const std::regex kClock(
      R"(\b[A-Za-z_]\w*_clock\s*::\s*now\s*\(|\bclock_gettime\s*\()");
  bool in_region = false;
  for (size_t i = 0; i < f.raw.size(); ++i) {
    if (f.raw[i].find("LINT(alloc-free)") != std::string::npos) {
      in_region = true;  // Region shape violations are alloc rule's job.
      continue;
    }
    if (f.raw[i].find("LINT(end)") != std::string::npos) {
      in_region = false;
      continue;
    }
    if (!in_region) continue;
    if (LineAllows(f.raw[i], "clock-in-hot-path")) continue;
    if (std::regex_search(f.code[i], kClock)) {
      out->push_back({f.rel_path, i + 1, "clock-in-hot-path",
                      "direct clock read inside a LINT(alloc-free) region; "
                      "sample time through SETREC_OBS_NOW() so disabled "
                      "builds compile the read out"});
    }
  }
}

// Formatting calls allocate (to_string) or burn hundreds of cycles on
// format parsing (snprintf family) — neither belongs in a region that
// claims to be allocation-free hot-path code. Observability output paths
// format AFTER leaving the region (the tracer records raw integers inside
// it and formats in OnSessionEnd/DumpRing, which run off the hot path).
void CheckFormatInRegions(const SourceFile& f, std::vector<Violation>* out) {
  static const std::regex kFormat(
      R"(\b(snprintf|sprintf|vsnprintf)\s*\(|\bto_string\s*\()");
  bool in_region = false;
  for (size_t i = 0; i < f.raw.size(); ++i) {
    if (f.raw[i].find("LINT(alloc-free)") != std::string::npos) {
      in_region = true;  // Region shape violations are alloc rule's job.
      continue;
    }
    if (f.raw[i].find("LINT(end)") != std::string::npos) {
      in_region = false;
      continue;
    }
    if (!in_region) continue;
    if (LineAllows(f.raw[i], "format-in-hot-path")) continue;
    if (std::regex_search(f.code[i], kFormat)) {
      out->push_back({f.rel_path, i + 1, "format-in-hot-path",
                      "string formatting inside a LINT(alloc-free) region; "
                      "record raw integers here and format off the hot "
                      "path (see obs/trace.h)"});
    }
  }
}

// Readiness syscalls live behind the Poller interface (net/poller.h):
// exactly the files under src/net/poller* may touch ::poll, epoll, or
// io_uring. Anything else polling raw fds bypasses the backend matrix —
// it would work on the developer's box and break under SETREC_POLLER
// steering (how the ctest `net` label runs every suite per backend).
const char* const kPollerBackendPrefix = "src/net/poller";

void CheckRawPoll(const SourceFile& f, std::vector<Violation>* out) {
  if (f.rel_path.rfind(kPollerBackendPrefix, 0) == 0) return;
  static const std::regex kRawPoll(
      R"(::\s*poll\s*\(|\bepoll_(create1?|ctl|wait|pwait2?)\s*\()"
      R"(|\bio_uring_(setup|enter|register)\b|__NR_io_uring)");
  for (size_t i = 0; i < f.code.size(); ++i) {
    if (LineAllows(f.raw[i], "raw-poll")) continue;
    if (std::regex_search(f.code[i], kRawPoll)) {
      out->push_back({f.rel_path, i + 1, "raw-poll",
                      "raw readiness syscall outside src/net/poller_*; go "
                      "through the Poller interface (net/poller.h) so the "
                      "backend matrix stays the only readiness layer"});
    }
  }
}

// Tracks whether each `{` opens a class/struct body, so member declarations
// can be told apart from locals and parameters.
void CheckViewMembers(const SourceFile& f, std::vector<Violation>* out) {
  if (f.rel_path == kViewDefiningHeader) return;
  static const std::regex kViewType(
      R"(\b(IbltDecodeView64|IbltDecodeView|IbltKeyView)\b)");
  static const std::regex kClassHead(R"(\b(class|struct)\b[^;()]*$)");

  std::vector<bool> scope_is_class;
  std::string pending;  // Code since the last ; { or }, feeds kClassHead.
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    const bool at_class_scope =
        !scope_is_class.empty() && scope_is_class.back();

    // A member declaration is a statement at class scope mentioning a view
    // type with no parentheses (those are method declarations/parameters).
    if (at_class_scope && !LineAllows(f.raw[i], "view-member")) {
      std::string trimmed = line;
      while (!trimmed.empty() &&
             std::isspace(static_cast<unsigned char>(trimmed.back()))) {
        trimmed.pop_back();
      }
      if (!trimmed.empty() && trimmed.back() == ';' &&
          trimmed.find('(') == std::string::npos &&
          trimmed.find("using") == std::string::npos &&
          trimmed.find("friend") == std::string::npos &&
          std::regex_search(trimmed, kViewType)) {
        out->push_back({f.rel_path, i + 1, "view-member",
                        "IBLT view type stored as a class member; views "
                        "borrow from a DecodeScratch and die at its next "
                        "decode — store owned keys or the scratch itself"});
      }
    }

    for (char c : line) {
      if (c == '{') {
        scope_is_class.push_back(std::regex_search(pending, kClassHead));
        pending.clear();
      } else if (c == '}') {
        if (!scope_is_class.empty()) scope_is_class.pop_back();
        pending.clear();
      } else if (c == ';') {
        pending.clear();
      } else {
        pending.push_back(c);
      }
    }
    pending.push_back(' ');
  }
}

void LintFile(const SourceFile& f, std::vector<Violation>* out) {
  CheckParseAssert(f, out);
  CheckResumeWhitelist(f, out);
  CheckAllocFreeRegions(f, out);
  CheckClockInRegions(f, out);
  CheckFormatInRegions(f, out);
  CheckRawPoll(f, out);
  CheckViewMembers(f, out);
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

SourceFile LoadSource(const std::string& rel_path, const std::string& text) {
  SourceFile f;
  f.rel_path = rel_path;
  f.raw = SplitLines(text);
  const std::string stripped = StripCommentsAndStrings(text);
  f.code = SplitLines(stripped);
  f.code.resize(f.raw.size());
  return f;
}

bool IsLintableFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

int ScanAndReport(const std::vector<fs::path>& files, const fs::path& root) {
  std::vector<Violation> violations;
  size_t files_scanned = 0;
  for (const fs::path& p : files) {
    std::string text;
    if (!ReadFile(p, &text)) {
      std::cerr << "setrec_lint: cannot read " << p << "\n";
      return 2;
    }
    const std::string rel =
        fs::relative(p, root).lexically_normal().generic_string();
    const SourceFile f = LoadSource(rel, text);
    LintFile(f, &violations);
    ++files_scanned;
  }
  for (const Violation& v : violations) {
    std::cout << v.path << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  std::cout << "setrec_lint: " << files_scanned << " files, "
            << violations.size() << " violation(s)\n";
  return violations.empty() ? 0 : 1;
}

// Fixture mode: each testdata file declares its expectation in header
// comments —
//   // LINT-TEST-PATH: src/net/fake.cc     (path the rules should see)
//   // LINT-TEST: expect-clean             (no violations)
//   // LINT-TEST: expect <rule>            (at least one <rule> violation)
int RunFixtures(const fs::path& dir) {
  size_t checked = 0;
  size_t failed = 0;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && IsLintableFile(entry.path())) {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    std::string text;
    if (!ReadFile(p, &text)) {
      std::cerr << "setrec_lint: cannot read " << p << "\n";
      return 2;
    }
    std::string pretend_path = p.filename().generic_string();
    std::string expectation;
    for (const std::string& line : SplitLines(text)) {
      const size_t path_at = line.find("LINT-TEST-PATH:");
      const size_t expect_at = line.find("LINT-TEST:");
      if (path_at != std::string::npos) {
        pretend_path = line.substr(path_at + 15);
      } else if (expect_at != std::string::npos) {
        expectation = line.substr(expect_at + 10);
      }
    }
    auto trim = [](std::string* s) {
      while (!s->empty() &&
             std::isspace(static_cast<unsigned char>(s->front()))) {
        s->erase(s->begin());
      }
      while (!s->empty() &&
             std::isspace(static_cast<unsigned char>(s->back()))) {
        s->pop_back();
      }
    };
    trim(&pretend_path);
    trim(&expectation);
    if (expectation.empty()) {
      std::cerr << p << ": missing '// LINT-TEST:' directive\n";
      ++failed;
      continue;
    }

    std::vector<Violation> violations;
    LintFile(LoadSource(pretend_path, text), &violations);
    ++checked;

    bool ok;
    if (expectation == "expect-clean") {
      ok = violations.empty();
    } else if (expectation.rfind("expect ", 0) == 0) {
      const std::string rule = expectation.substr(7);
      ok = std::any_of(violations.begin(), violations.end(),
                       [&rule](const Violation& v) { return v.rule == rule; });
    } else {
      std::cerr << p << ": unknown expectation '" << expectation << "'\n";
      ++failed;
      continue;
    }
    if (!ok) {
      ++failed;
      std::cerr << "FIXTURE FAIL " << p << " (" << expectation << "), got "
                << violations.size() << " violation(s):\n";
      for (const Violation& v : violations) {
        std::cerr << "  " << v.path << ":" << v.line << ": [" << v.rule
                  << "] " << v.message << "\n";
      }
    }
  }
  std::cout << "setrec_lint fixtures: " << checked << " checked, " << failed
            << " failed\n";
  if (checked == 0) {
    std::cerr << "setrec_lint: no fixtures found under " << dir << "\n";
    return 2;
  }
  return failed == 0 ? 0 : 1;
}

int Usage() {
  std::cerr
      << "usage: setrec_lint --root <repo-root> --scan <dir> [--scan ...]\n"
      << "       setrec_lint --root <repo-root> <file> [<file> ...]\n"
      << "       setrec_lint --fixtures <testdata-dir>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<fs::path> scan_dirs;
  std::vector<fs::path> files;
  fs::path fixtures;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--scan" && i + 1 < argc) {
      scan_dirs.emplace_back(argv[++i]);
    } else if (arg == "--fixtures" && i + 1 < argc) {
      fixtures = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      files.emplace_back(arg);
    }
  }

  if (!fixtures.empty()) return RunFixtures(fixtures);

  for (const fs::path& dir : scan_dirs) {
    const fs::path abs = dir.is_absolute() ? dir : root / dir;
    if (!fs::is_directory(abs)) {
      std::cerr << "setrec_lint: not a directory: " << abs << "\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(abs)) {
      if (entry.is_regular_file() && IsLintableFile(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  if (files.empty()) return Usage();
  std::sort(files.begin(), files.end());
  return ScanAndReport(files, root);
}
