// setrec_stat: the live operator console for a running setrec server.
//
//   setrec_stat --connect=tcp:HOST:PORT --once
//       One STAT? round trip; prints the raw `# setrec-metrics v2` text.
//   setrec_stat --connect=tcp:HOST:PORT --interval=MS
//       Top-like loop: windowed rates, session-latency quantiles, and the
//       server's recent traces, refreshed every MS milliseconds.
//   setrec_stat --connect=tcp:HOST:PORT --probe [--protocol=NAME]
//       Drives ONE traced demo session (v3 hello carrying a fresh trace
//       id), fetches the server's half via TRACE?, merges both halves into
//       a single timeline and prints it. Exits nonzero unless the server
//       half was found AND the client's spans cover >= 90% of the session
//       wall clock — the distributed-obs smoke lane's gate.
//
// Every query opens a fresh connection: admin frames need no hello, and a
// short-lived connection per poll keeps the tool stateless against server
// restarts.

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/protocol.h"
#include "examples/net_demo.h"
#include "net/stream_party.h"
#include "obs/clock.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "obs/trace_text.h"

namespace setrec {
namespace {

bool ParseProtocol(const std::string& name, SsrProtocolKind* kind) {
  for (int i = 0; i < kSsrProtocolKindCount; ++i) {
    if (name == SsrProtocolKindName(static_cast<SsrProtocolKind>(i))) {
      *kind = static_cast<SsrProtocolKind>(i);
      return true;
    }
  }
  return false;
}

struct ConnectSpec {
  bool tcp = false;
  std::string host;
  uint16_t port = 0;
  std::string unix_path;
};

bool ParseConnectSpec(const std::string& arg, ConnectSpec* out) {
  if (arg.rfind("tcp:", 0) == 0) {
    const std::string rest = arg.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos) return false;
    out->tcp = true;
    out->host = rest.substr(0, colon);
    const long port = std::strtol(rest.c_str() + colon + 1, nullptr, 10);
    if (port <= 0 || port > 65535) return false;
    out->port = static_cast<uint16_t>(port);
    return true;
  }
  if (arg.rfind("unix:", 0) == 0) {
    out->tcp = false;
    out->unix_path = arg.substr(5);
    return !out->unix_path.empty();
  }
  return false;
}

Result<int> Connect(const ConnectSpec& spec) {
  return spec.tcp ? ConnectTcp(spec.host, spec.port)
                  : ConnectUnix(spec.unix_path);
}

Result<std::string> QueryOnce(const ConnectSpec& spec,
                              Result<std::string> (*query)(int)) {
  Result<int> fd = Connect(spec);
  if (!fd.ok()) return fd.status();
  Result<std::string> text = query(fd.value());
  ::close(fd.value());
  return text;
}

/// Pulls one line matching `metric line prefix` out of the exposition.
std::string FindLine(const std::string& text, const std::string& prefix) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    if (line.rfind(prefix, 0) == 0) return std::string(line);
    pos = eol + 1;
  }
  return {};
}

void PrintSection(const std::string& text, const char* type_prefix) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    if (line.rfind(type_prefix, 0) == 0) {
      std::printf("  %.*s\n", static_cast<int>(line.size()), line.data());
    }
    pos = eol + 1;
  }
}

int RunOnce(const ConnectSpec& spec) {
  Result<std::string> text = QueryOnce(spec, QueryStatsOverFd);
  if (!text.ok()) {
    std::fprintf(stderr, "STAT? failed: %s\n",
                 text.status().message().c_str());
    return 1;
  }
  std::fputs(text.value().c_str(), stdout);
  return 0;
}

int RunInterval(const ConnectSpec& spec, long interval_ms) {
  for (;;) {
    Result<std::string> stats = QueryOnce(spec, QueryStatsOverFd);
    Result<std::string> traces = QueryOnce(spec, QueryTracesOverFd);
    // ANSI home+clear: redraw in place like top(1).
    std::printf("\033[H\033[2J");
    if (!stats.ok()) {
      std::printf("STAT? failed: %s\n", stats.status().message().c_str());
    } else {
      std::printf("== rates (windowed) ==\n");
      PrintSection(stats.value(), "rate ");
      std::printf("== sessions ==\n");
      const std::string done =
          FindLine(stats.value(), "counter setrec_sessions_completed");
      const std::string failed =
          FindLine(stats.value(), "counter setrec_sessions_failed");
      if (!done.empty()) std::printf("  %s\n", done.c_str());
      if (!failed.empty()) std::printf("  %s\n", failed.c_str());
      std::printf("== latency quantiles ==\n");
      PrintSection(stats.value(), "histogram setrec_session_latency_ns");
      PrintSection(stats.value(), "histogram setrec_pump_conn_round_trip_ns");
    }
    if (traces.ok()) {
      std::vector<obs::ParsedTrace> parsed;
      (void)obs::ParseTraceExposition(traces.value(), &parsed);
      std::printf("== recent traces (%zu) ==\n", parsed.size());
      const size_t show = parsed.size() < 5 ? parsed.size() : 5;
      for (size_t i = parsed.size() - show; i < parsed.size(); ++i) {
        const obs::ParsedTrace& t = parsed[i];
        std::printf("  trace %016llx session %llu %s%s %s %.3f ms\n",
                    static_cast<unsigned long long>(t.trace_id),
                    static_cast<unsigned long long>(t.session_id),
                    t.side.c_str(), t.slow ? " SLOW" : "", t.label.c_str(),
                    static_cast<double>(t.latency_ns) / 1e6);
      }
    }
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

/// One traced session + TRACE? fetch + merge. Hard errors (session or
/// trace round-trip failures) come back as a status; a merged timeline
/// below the coverage gate is the caller's cue to retry.
Result<obs::MergedTimeline> ProbeOnce(const ConnectSpec& spec,
                                      SsrProtocolKind kind, uint64_t trace_id,
                                      size_t* server_trace_count) {
  obs::SessionTracer tracer;
  tracer.EnableCapture(4096);
  Result<SsrOutcome> outcome = net_demo::RunDemoClientSessionTraced(
      spec.host, spec.port, kind, /*index=*/1, trace_id, &tracer);
  if (!outcome.ok()) return outcome.status();
  // Round-trip the client half through the wire text format — the same
  // codec the server half travels in — rather than peeking at the structs.
  const std::string client_text =
      obs::FormatTraceExposition(tracer.SnapshotCompleted(), "client");
  std::vector<obs::ParsedTrace> client_traces;
  if (!obs::ParseTraceExposition(client_text, &client_traces) ||
      client_traces.empty()) {
    return ParseError("client trace round-trip failed");
  }
  const obs::ParsedTrace* client = nullptr;
  for (const obs::ParsedTrace& t : client_traces) {
    if (t.trace_id == trace_id) client = &t;
  }
  if (client == nullptr) return ParseError("client trace not captured");

  Result<std::string> server_text = QueryOnce(spec, QueryTracesOverFd);
  const obs::ParsedTrace* server = nullptr;
  std::vector<obs::ParsedTrace> server_traces;
  if (server_text.ok() &&
      obs::ParseTraceExposition(server_text.value(), &server_traces)) {
    for (const obs::ParsedTrace& t : server_traces) {
      if (t.trace_id == trace_id) server = &t;
    }
  }
  *server_trace_count = server_traces.size();
  return obs::MergeTraceTimelines(*client, server);
}

int RunProbe(const ConnectSpec& spec, SsrProtocolKind kind) {
  if (!spec.tcp) {
    std::fprintf(stderr, "--probe needs --connect=tcp:HOST:PORT\n");
    return 2;
  }
  // A demo session runs well under a millisecond, so one preemption on a
  // busy host can shave its span coverage below the gate; any attempt
  // passing proves the whole pipeline, so take a few swings.
  constexpr int kAttempts = 3;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    // A fresh nonzero id per attempt; collisions with another operator's
    // probe are harmless (the merge matches OUR id against the store).
    const uint64_t trace_id =
        (obs::NowNanos() ^ (static_cast<uint64_t>(::getpid()) << 32) ^
         static_cast<uint64_t>(attempt)) |
        1;
    size_t server_trace_count = 0;
    Result<obs::MergedTimeline> merged =
        ProbeOnce(spec, kind, trace_id, &server_trace_count);
    if (!merged.ok()) {
      std::fprintf(stderr, "probe FAILED: %s\n",
                   merged.status().message().c_str());
      return 1;
    }
    const bool pass = merged.value().has_server && merged.value().coverage >= 0.9;
    if (!pass && attempt + 1 < kAttempts) continue;
    std::fputs(merged.value().text.c_str(), stdout);
    if (!merged.value().has_server) {
      std::fprintf(stderr,
                   "probe FAILED: no server half for trace %016llx "
                   "(TRACE? returned %zu traces)\n",
                   static_cast<unsigned long long>(trace_id),
                   server_trace_count);
      return 1;
    }
    if (!pass) {
      std::fprintf(stderr,
                   "probe FAILED: spans cover %.1f%% of session wall clock "
                   "(gate: 90%%)\n",
                   merged.value().coverage * 100.0);
      return 1;
    }
    std::printf("probe OK: merged client+server timeline, %.1f%% coverage\n",
                merged.value().coverage * 100.0);
    return 0;
  }
  return 1;
}

int Run(int argc, char** argv) {
  ConnectSpec spec;
  bool have_connect = false, once = false, probe = false;
  long interval_ms = 0;
  SsrProtocolKind kind = SsrProtocolKind::kIblt2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--connect=", 0) == 0) {
      if (!ParseConnectSpec(arg.substr(10), &spec)) {
        std::fprintf(stderr, "bad --connect spec: %s\n", arg.c_str());
        return 2;
      }
      have_connect = true;
    } else if (arg == "--once") {
      once = true;
    } else if (arg.rfind("--interval=", 0) == 0) {
      interval_ms = std::strtol(arg.c_str() + 11, nullptr, 10);
      if (interval_ms <= 0) {
        std::fprintf(stderr, "bad --interval: %s\n", arg.c_str());
        return 2;
      }
    } else if (arg == "--probe") {
      probe = true;
    } else if (arg.rfind("--protocol=", 0) == 0) {
      if (!ParseProtocol(arg.substr(11), &kind)) {
        std::fprintf(stderr, "unknown --protocol: %s\n", arg.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: setrec_stat --connect=tcp:HOST:PORT|unix:PATH "
                   "(--once | --interval=MS | --probe [--protocol=NAME])\n");
      return arg == "--help" ? 0 : 2;
    }
  }
  if (!have_connect) {
    std::fprintf(stderr, "missing --connect=tcp:HOST:PORT|unix:PATH\n");
    return 2;
  }
  if (probe) return RunProbe(spec, kind);
  if (interval_ms > 0) return RunInterval(spec, interval_ms);
  if (once) return RunOnce(spec);
  return RunOnce(spec);
}

}  // namespace
}  // namespace setrec

int main(int argc, char** argv) { return setrec::Run(argc, argv); }
