#ifndef SETREC_EXAMPLES_NET_DEMO_H_
#define SETREC_EXAMPLES_NET_DEMO_H_

// Shared fixture for the networked demo pair (sync_server --listen and
// sync_client): both ends derive the demo state from the same fixed seeds,
// so the client can verify its recovery against what the server is known
// to hold. A real deployment replaces this with application state; the
// wire protocol (net/wire.h hello + frame stream) is unchanged.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unistd.h>

#include "core/protocol.h"
#include "core/workload.h"
#include "hashing/random.h"
#include "net/stream_party.h"
#include "net/wire.h"
#include "obs/clock.h"
#include "obs/trace.h"
#include "service/sync_service.h"

namespace setrec {
namespace net_demo {

inline SsrWorkloadSpec DemoSpec() {
  SsrWorkloadSpec spec;
  spec.num_children = 48;
  spec.child_size = 10;
  spec.changes = 0;  // The server set is the base; clients drift from it.
  spec.seed = 20260730;
  return spec;
}

inline SsrParams DemoParams() {
  SsrParams params;
  params.max_child_size = DemoSpec().child_size + 8;
  params.max_children = DemoSpec().num_children + 8;
  params.seed = 4242;
  return params;
}

/// The parent set the server registers (RegisterSharedSet id 1).
inline SetOfSets MakeServerSet() { return MakeSsrWorkload(DemoSpec()).alice; }

/// Difference bound the demo clients advertise in their hello.
inline constexpr size_t kDemoKnownD = 6;

/// Client `index`'s drifted copy of the server set: one element dropped,
/// one added — within kDemoKnownD changes.
inline SetOfSets MakeClientSet(uint64_t index) {
  SetOfSets bob = MakeServerSet();
  Rng rng(1000 + index);
  ChildSet& victim = bob[rng.NextU64() % bob.size()];
  if (victim.size() > 1) victim.pop_back();
  bob[rng.NextU64() % bob.size()].push_back((1ull << 42) +
                                            (rng.NextU64() & 0xffff));
  return Canonicalize(std::move(bob));
}

/// One complete remote client session against a `--listen` demo server:
/// hello (set id 1, demo params) followed by Bob's half over the connected
/// fd. THE client code path — example_sync_client and the server's
/// --selftest-net both call this, so the selftest exercises exactly what
/// the real client runs.
/// `busy_retry_after_ms` (optional) receives the server's retry hint when
/// the session was refused with a busy frame (see RunBobHalfOverFd).
inline Result<SsrOutcome> RunDemoClientSession(
    int fd, SsrProtocolKind kind, uint64_t index,
    uint32_t* busy_retry_after_ms = nullptr) {
  HelloSpec hello;
  hello.protocol = kind;
  hello.set_id = 1;  // The demo server registers exactly one shared set.
  hello.params = DemoParams();
  hello.known_d = kDemoKnownD;
  if (Status s = SendHello(fd, hello); !s.ok()) {
    // A shed server may close before our hello write lands; its busy
    // frame is still in the receive queue and carries the retry hint.
    if (std::optional<uint32_t> hint = PendingBusyHintOnFd(fd)) {
      if (busy_retry_after_ms != nullptr) *busy_retry_after_ms = *hint;
      return Unavailable("server busy (retry-after " +
                         std::to_string(*hint) + " ms)");
    }
    return s;
  }
  SetOfSets bob = MakeClientSet(index);
  std::unique_ptr<SetsOfSetsProtocol> protocol =
      MakeSsrProtocol(kind, hello.params);
  Channel channel;
  return RunBobHalfOverFd(*protocol, bob, hello.known_d, fd, &channel,
                          /*tracer=*/nullptr, /*trace_id=*/0,
                          busy_retry_after_ms);
}

/// Traced variant for the operator console's --probe: owns the whole
/// connect→hello→protocol arc so the client timeline has spans for every
/// leg. The hello carries `trace_id` (a v3 hello), so the server tags its
/// half of the session with the same id; the caller fetches that half via
/// QueryTracesOverFd and merges the two (obs/trace_text.h). `tracer` must
/// have capture armed (SessionTracer::EnableCapture) and `trace_id` must
/// be nonzero. The demo state is built before the session span opens, so
/// the span decomposes the session's network wall clock, not the fixture.
inline Result<SsrOutcome> RunDemoClientSessionTraced(
    const std::string& host, uint16_t port, SsrProtocolKind kind,
    uint64_t index, uint64_t trace_id, obs::SessionTracer* tracer) {
  SetOfSets bob = MakeClientSet(index);
  HelloSpec hello;
  hello.protocol = kind;
  hello.set_id = 1;
  hello.params = DemoParams();
  hello.known_d = kDemoKnownD;
  hello.trace_id = trace_id;
  std::unique_ptr<SetsOfSetsProtocol> protocol =
      MakeSsrProtocol(kind, hello.params);

  const uint64_t start = obs::NowNanos();
  tracer->Record(trace_id, obs::TracePhase::kSession, true, start, trace_id);
  tracer->Record(trace_id, obs::TracePhase::kConnect, true, obs::NowNanos(),
                 trace_id);
  Result<int> fd = ConnectTcp(host, port);
  tracer->Record(trace_id, obs::TracePhase::kConnect, false, obs::NowNanos(),
                 trace_id);
  if (!fd.ok()) return fd.status();
  tracer->Record(trace_id, obs::TracePhase::kHello, true, obs::NowNanos(),
                 trace_id);
  Status hello_sent = SendHello(fd.value(), hello);
  tracer->Record(trace_id, obs::TracePhase::kHello, false, obs::NowNanos(),
                 trace_id);
  if (!hello_sent.ok()) {
    ::close(fd.value());
    return hello_sent;
  }
  Channel channel;
  Result<SsrOutcome> outcome = RunBobHalfOverFd(
      *protocol, bob, hello.known_d, fd.value(), &channel, tracer, trace_id);
  const uint64_t end = obs::NowNanos();
  tracer->Record(trace_id, obs::TracePhase::kSession, false, end, trace_id);
  tracer->OnSessionEnd(trace_id, trace_id, end - start, "client", stderr);
  ::close(fd.value());
  return outcome;
}

}  // namespace net_demo
}  // namespace setrec

#endif  // SETREC_EXAMPLES_NET_DEMO_H_
