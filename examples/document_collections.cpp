// Document collections: mirror two shingled document stores and classify
// each of Alice's documents as an exact duplicate, a near-duplicate, or
// fresh — the Broder-shingles application from the paper's introduction,
// including the direct-transfer fallback for fresh documents (the remark
// after Theorem 3.5).
//
// Build & run:  ./build/examples/document_collections

#include <cstdio>
#include <string>
#include <vector>

#include "apps/shingles.h"
#include "core/protocol.h"

int main() {
  using namespace setrec;
  const uint64_t kShingleSeed = 99;
  const size_t kWindow = 3;  // 3-word shingles.

  std::vector<std::string> bob_texts = {
      "the quick brown fox jumps over the lazy dog on a sunny day",
      "reconciliation protocols move only the difference between replicas",
      "invertible bloom lookup tables support insertion deletion and "
      "listing of entries with linear time peeling",
      "characteristic polynomials give deterministic set reconciliation "
      "at higher computational cost",
  };
  SetOfSets bob;
  for (const auto& text : bob_texts) {
    bob.push_back(ShingleSet(text, kWindow, kShingleSeed));
  }

  // Alice's store: doc 0 lightly edited (near-duplicate), doc 3 deleted,
  // and one brand-new document (fresh).
  SetOfSets alice = bob;
  alice[0] = ShingleSet(
      "the quick brown fox jumps over the lazy cat on a sunny day", kWindow,
      kShingleSeed);
  alice.pop_back();
  alice.push_back(ShingleSet(
      "a completely new report about the performance of set of sets "
      "reconciliation on document stores with many duplicate entries and "
      "a few fresh arrivals every day in production settings worldwide",
      kWindow, kShingleSeed));
  alice = Canonicalize(alice);
  bob = Canonicalize(bob);

  SsrParams params;
  params.seed = 31337;
  params.max_child_size = 64;
  Channel channel;
  Result<CollectionReconcileOutcome> outcome = ReconcileCollections(
      alice, bob, /*per_doc_diff=*/8, params, &channel);
  if (!outcome.ok()) {
    std::printf("failed: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("Bob mirrored Alice's %zu documents in %zu bytes:\n",
              outcome.value().collection.size(), channel.total_bytes());
  std::printf("  exact duplicates: %zu\n", outcome.value().exact_duplicates);
  std::printf("  near duplicates:  %zu (patched via child IBLT pairing)\n",
              outcome.value().near_duplicates);
  std::printf("  fresh documents:  %zu (direct transfer fallback)\n",
              outcome.value().fresh_documents);
  std::printf("collection matches Alice: %s\n",
              outcome.value().collection == alice ? "yes" : "NO");
  return 0;
}
