// Database sync: the paper's introductory application. Two replicas of a
// binary relational database (labeled columns, unlabeled rows) have drifted
// by d flipped bits; reconciling the row multiset is exactly sets-of-sets
// reconciliation. We sync a 1024x256 database that drifted by 24 bits and
// compare the bytes moved against shipping the table.
//
// Build & run:  ./build/examples/database_sync

#include <cstdio>

#include "apps/binary_database.h"
#include "core/multiround_protocol.h"
#include "hashing/random.h"

int main() {
  using namespace setrec;

  Rng rng(2024);
  const size_t kRows = 1024, kCols = 256, kFlips = 24;
  BinaryDatabase bob = BinaryDatabase::Random(kRows, kCols, 0.5, &rng);
  BinaryDatabase alice = bob;  // Replicate...
  auto flips = alice.FlipRandom(kFlips, &rng);  // ...then drift.
  std::printf("replicas drifted by %zu bit flips across %zu x %zu bits\n",
              flips.size(), kRows, kCols);

  SsrParams params;
  params.max_child_size = kCols + 2;  // Rows can hold up to kCols ones.
  params.seed = 7;

  // The multi-round protocol (Section 3.3) is the most communication-
  // efficient choice when a few extra round trips are acceptable.
  MultiRoundProtocol protocol(params);
  Channel channel;
  Result<DatabaseReconcileOutcome> outcome =
      ReconcileDatabases(alice, bob, protocol, kFlips, &channel);
  if (!outcome.ok()) {
    std::printf("sync failed: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  const size_t raw = kRows * kCols / 8;
  std::printf("synced in %zu rounds, %zu bytes (raw table: %zu bytes, "
              "%.1fx saving)\n",
              channel.rounds(), channel.total_bytes(), raw,
              static_cast<double>(raw) /
                  static_cast<double>(channel.total_bytes()));
  std::printf("row multisets equal: %s\n",
              outcome.value().recovered.SameRowsAs(alice) ? "yes" : "NO");
  return 0;
}
