// Quickstart: reconcile two sets of sets with one message.
//
// Alice and Bob each hold a parent set of child sets that differ by a
// handful of element changes. At the end of the protocol Bob holds an exact
// copy of Alice's data, having exchanged communication proportional to the
// difference — not to the data size.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/cascading_protocol.h"
#include "core/protocol.h"
#include "transport/channel.h"

int main() {
  using namespace setrec;

  // Alice's collection: three child sets over a 64-bit universe.
  SetOfSets alice = {
      {10, 20, 30, 40},
      {7, 77, 777},
      {1000, 2000, 3000, 4000, 5000},
  };
  // Bob's copy has drifted: one element changed in the first child, one
  // deleted from the third (total difference d = 3).
  SetOfSets bob = {
      {10, 20, 31, 40},
      {7, 77, 777},
      {1000, 2000, 4000, 5000},
  };

  // Shared, public-coin parameters (Section 2 of the paper): both parties
  // agree on h (max child size) and a random seed out of band.
  SsrParams params;
  params.max_child_size = 8;
  params.seed = 0xC0FFEE;

  // Algorithm 2 of the paper: one round, O(d log min(d,h) log u) bits.
  CascadingProtocol protocol(params);
  Channel channel;  // In-memory channel with exact byte/round accounting.
  Result<SsrOutcome> outcome =
      protocol.Reconcile(alice, bob, /*known_d=*/3, &channel);
  if (!outcome.ok()) {
    std::printf("reconciliation failed: %s\n",
                outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("Bob recovered Alice's collection (%zu child sets):\n",
              outcome.value().recovered.size());
  for (const ChildSet& child : outcome.value().recovered) {
    std::printf("  {");
    for (size_t i = 0; i < child.size(); ++i) {
      std::printf("%s%llu", i ? ", " : "",
                  static_cast<unsigned long long>(child[i]));
    }
    std::printf("}\n");
  }
  std::printf("cost: %zu bytes in %zu round(s)\n", channel.total_bytes(),
              channel.rounds());
  std::printf("match: %s\n",
              outcome.value().recovered == Canonicalize(alice) ? "exact"
                                                               : "NO");
  return 0;
}
