// Sync server: one SyncService instance driving 10,000 mixed-workload
// reconciliation sessions the way a server facing a client fleet would —
// set-of-sets sessions (all four protocol families) against one registered
// server set, stepped round-by-round with sketch builds coalesced in the
// cross-session batch planner, plus opaque graph / forest / shingle
// sessions sharing the same scheduler. A sample of sessions is mirrored
// onto loopback Endpoints and drained through the framed stream codec, the
// wire a real deployment would speak.
//
// Build & run:  ./build/example_sync_server

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "apps/shingles.h"
#include "core/workload.h"
#include "forest/forest_reconciler.h"
#include "graph/degree_ordering.h"
#include "graph/separated_instance.h"
#include "hashing/random.h"
#include "service/sync_service.h"
#include "transport/endpoint.h"

int main() {
  using namespace setrec;

  // --- Server state: one parent set all set-sessions sync against. ---
  SsrWorkloadSpec spec;
  spec.num_children = 64;
  spec.child_size = 8;
  spec.changes = 2;
  spec.seed = 20260730;
  SsrWorkload base = MakeSsrWorkload(spec);
  auto server_set = std::make_shared<SetOfSets>(base.alice);

  SsrParams params;
  params.max_child_size = spec.child_size + 6;
  params.max_children = spec.num_children + 6;
  params.seed = 99;

  SyncServiceOptions options;
  options.max_inflight = 512;
  options.keep_recovered = false;
  SyncService service(options);
  service.RegisterSharedSet(server_set);

  // --- 10k set-of-sets client sessions (mixed protocol families). ---
  const size_t kSetSessions = 10'000;
  Rng rng(7);
  auto mirror_client = std::make_shared<Endpoint>();
  for (size_t i = 0; i < kSetSessions; ++i) {
    SetOfSets bob = *server_set;
    size_t victim = rng.NextU64() % bob.size();
    if (bob[victim].size() > 1) bob[victim].pop_back();
    bob[rng.NextU64() % bob.size()].push_back((1ull << 42) +
                                              (rng.NextU64() & 0xffff));
    SessionSpec session;
    session.protocol = static_cast<SsrProtocolKind>(rng.NextU64() % 4);
    session.params = params;
    session.alice = server_set;
    session.bob = std::make_shared<SetOfSets>(Canonicalize(std::move(bob)));
    session.known_d = 6;
    if (i == 0) {
      // Mirror the first session onto a loopback endpoint pair: its
      // protocol messages become wire frames a remote client would read.
      auto [server_end, client_end] = Endpoint::LoopbackPair();
      session.mirror = std::make_shared<Endpoint>(std::move(server_end));
      *mirror_client = std::move(client_end);
    }
    service.Submit(std::move(session));
  }

  // --- Opaque sessions: graph, forest and shingle workloads share the
  // scheduler (single-step sessions; no planner coalescing). ---
  SeparatedInstanceSpec graph_spec;
  graph_spec.seed = 5;
  Result<Graph> graph_base = MakeSeparatedGraph(graph_spec);
  if (graph_base.ok()) {
    Rng grng(77);
    auto alice = std::make_shared<Graph>(graph_base.value());
    auto bob = std::make_shared<Graph>(graph_base.value());
    alice->Perturb(1, &grng);
    bob->Perturb(1, &grng);
    SessionSpec session;
    session.label = "graph";
    session.opaque = [alice, bob, graph_spec](Channel* channel) {
      Result<GraphReconcileOutcome> outcome = DegreeOrderingReconcile(
          *alice, *bob, graph_spec.d, graph_spec.h, 9, channel);
      return outcome.ok() ? Status::Ok() : outcome.status();
    };
    service.Submit(std::move(session));
  }
  {
    Rng frng(4242);
    auto alice = std::make_shared<RootedForest>(
        RootedForest::Random(3000, 5, 0.12, &frng));
    auto bob = std::make_shared<RootedForest>(*alice);
    size_t d = bob->Perturb(2, 5, &frng);
    size_t sigma = std::max(alice->MaxDepth(), bob->MaxDepth());
    SessionSpec session;
    session.label = "forest";
    session.opaque = [alice, bob, d, sigma](Channel* channel) {
      Result<ForestReconcileOutcome> outcome =
          ForestReconcile(*alice, *bob, std::max<size_t>(d, 1), sigma, 11,
                          channel);
      return outcome.ok() ? Status::Ok() : outcome.status();
    };
    service.Submit(std::move(session));
  }
  {
    auto alice = std::make_shared<SetOfSets>(base.alice);
    auto bob = std::make_shared<SetOfSets>(base.bob);
    auto shingle_params = std::make_shared<SsrParams>(params);
    SessionSpec session;
    session.label = "shingles";
    session.opaque = [alice, bob, shingle_params](Channel* channel) {
      Result<CollectionReconcileOutcome> outcome = ReconcileCollections(
          *alice, *bob, /*per_doc_diff=*/8, *shingle_params, channel);
      return outcome.ok() ? Status::Ok() : outcome.status();
    };
    service.Submit(std::move(session));
  }

  // --- Run everything and report. ---
  const double seconds = [&] {
    const auto start = std::chrono::steady_clock::now();
    service.RunToCompletion();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  }();

  const ServiceStats& stats = service.stats();
  std::printf("sessions: %zu submitted, %zu completed, %zu failed\n",
              stats.sessions_submitted, stats.sessions_completed,
              stats.sessions_failed);
  std::printf("throughput: %.0f sessions/sec (%.2fs total)\n",
              static_cast<double>(stats.sessions_completed) / seconds,
              seconds);
  std::printf("traffic: %zu bytes over %zu rounds\n", stats.total_bytes,
              stats.total_rounds);
  std::printf("planner: %zu flushes, mean occupancy %.0f keys, max %zu "
              "(sharded threshold %zu crossed %zu times)\n",
              stats.flushes, stats.mean_flush_occupancy(),
              stats.max_flush_keys, Iblt::batch_options().sharded_min_keys,
              stats.sharded_flushes);
  std::printf("alice-message cache: %zu hits / %zu lookups\n",
              stats.cache_hits, stats.cache_hits + stats.cache_misses);

  // Drain the mirrored session through the framed stream codec.
  ByteWriter stream;
  size_t frames = mirror_client->DrainToStream(&stream);
  FrameDecoder decoder;
  decoder.Feed(stream.bytes());
  size_t decoded = 0;
  Channel::Message m;
  while (decoder.Next(&m)) ++decoded;
  std::printf("mirrored session: %zu frames, %zu bytes on the wire, "
              "%zu decoded back\n",
              frames, stream.bytes().size(), decoded);

  return stats.sessions_failed == 0 ? 0 : 1;
}
