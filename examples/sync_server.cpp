// Sync server, three modes:
//
//  (default)        One SyncService instance driving 10,000 mixed-workload
//                   loopback sessions the way a server facing a client
//                   fleet would — set-of-sets sessions (all four protocol
//                   families) against one registered server set, stepped
//                   round-by-round with sketch builds coalesced in the
//                   cross-session batch planner, plus opaque graph /
//                   forest / shingle sessions sharing the same scheduler.
//
//  --listen=tcp:PORT | --listen=unix:PATH  [--serve=N] [--shards=K]
//                   [--stats-every=N] [--trace-slow=MS] [--poller=KIND]
//                   REAL remote clients: a src/net/ NetPump accepts
//                   connections, decodes wire frames, and the service
//                   hosts only the Alice half of each session against the
//                   remote Bob half (see examples/sync_client.cpp).
//                   Serves N sessions then exits (0 = forever).
//                   --shards=K (TCP only) runs the multi-core shape: K
//                   service shards, one pump thread each, all listening on
//                   the same port with SO_REUSEPORT.
//                   --stats-every=N prints an interval-delta stats line
//                   (what changed since the last report, plus the windowed
//                   rates a "STAT?" frame exposes) every N served
//                   sessions; --trace-slow=MS arms the session tracer and
//                   dumps a span tree for any session slower than MS (the
//                   dump header carries the client's trace id when the
//                   session was traced, so server log lines join with
//                   client-side traces). A stall watchdog dumps a shard's
//                   tracer ring if its driving thread stops stepping for
//                   2s with mailbox work queued.
//                   --poller=auto|poll|epoll|io_uring selects the pump's
//                   readiness backend (auto = SETREC_POLLER env, else
//                   epoll on Linux, else poll).
//
//  --selftest-net   End-to-end loop-device check: listens on an ephemeral
//                   TCP port, drives a real client (the sync_client code
//                   path) through every protocol family over 127.0.0.1,
//                   and verifies recoveries. Registered as ctest
//                   `net_e2e_loopdevice`.
//
// Build & run:  ./build/example_sync_server

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "apps/shingles.h"
#include "core/workload.h"
#include "examples/net_demo.h"
#include "forest/forest_reconciler.h"
#include "graph/degree_ordering.h"
#include "graph/separated_instance.h"
#include "hashing/random.h"
#include "net/multi_pump.h"
#include "net/net_pump.h"
#include "net/stream_party.h"
#include "net/wire.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "service/sharded_service.h"
#include "service/sync_service.h"
#include "transport/endpoint.h"

namespace {

using namespace setrec;

/// The multi-core server: K shards, one pump thread per shard, one
/// SO_REUSEPORT TCP listener per pump.
int RunListenSharded(uint16_t want_port, size_t serve_count, size_t shards,
                     size_t stats_every, uint64_t trace_slow_ns,
                     PollerKind poller) {
  ShardedSyncServiceOptions service_options;
  service_options.shards = shards;
  service_options.spawn_threads = false;  // Pump threads drive the shards.
  service_options.service.trace_slow_ns = trace_slow_ns;
  ShardedSyncService service(service_options);
  auto server_set = std::make_shared<SetOfSets>(net_demo::MakeServerSet());
  uint64_t set_id = service.RegisterSharedSet(server_set);

  MultiNetPumpOptions pump_options;
  pump_options.pump.poller = poller;
  MultiNetPump pump(&service, pump_options);
  Result<uint16_t> port = pump.ListenTcp(want_port);
  if (!port.ok()) {
    std::fprintf(stderr, "listen failed: %s\n",
                 port.status().ToString().c_str());
    return 1;
  }
  // Stall watchdog: a pump thread that stops stepping its shard while the
  // shard's mailbox holds work is wedged, not idle — dump that shard's
  // tracer ring so the last recorded events point at where it stuck.
  obs::StallWatchdog watchdog;
  for (size_t i = 0; i < service.shard_count(); ++i) {
    SyncService* shard = service.shard(i);
    // The pump's heartbeat (stamped every poller return) is the liveness
    // signal — it keeps beating through idle stretches where the shard
    // never steps; its away-from-poll p99 is printed in the stall banner.
    NetPump* shard_pump = pump.pump(i);
    watchdog.Watch({"shard-" + std::to_string(i), &shard_pump->heartbeat(),
                    [shard] { return shard->HasMailboxWork(); },
                    &shard->tracer(),
                    [shard_pump] {
                      return shard_pump->SnapshotPumpMetrics()
                          .away_from_poll.p99();
                    }});
  }
  watchdog.Start(/*stall_ns=*/2'000'000'000, /*poll_ms=*/500, stderr);
  std::printf("listening on tcp port %u with %zu shard pumps "
              "(SO_REUSEPORT; poller %s; shared set id %llu, %zu "
              "children)\n",
              port.value(), pump.pump_count(),
              PollerKindName(pump.pump(0)->poller_kind()),
              static_cast<unsigned long long>(set_id), server_set->size());
  std::fflush(stdout);
  pump.Start();

  size_t served = 0, failed = 0, last_stats_at = 0;
  ServiceStats last_stats;
  while (serve_count == 0 || served < serve_count) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    for (const SessionResult& r : pump.TakeResults()) {
      ++served;
      if (!r.status.ok()) {
        ++failed;
        std::printf("session %llu (%s): %s\n",
                    static_cast<unsigned long long>(r.id), r.label.c_str(),
                    r.status.ToString().c_str());
      } else {
        std::printf("session %llu (%s): ok, %zu rounds, %zu bytes\n",
                    static_cast<unsigned long long>(r.id), r.label.c_str(),
                    r.stats.rounds, r.stats.bytes);
      }
      std::fflush(stdout);
    }
    if (stats_every > 0 && served - last_stats_at >= stats_every) {
      last_stats_at = served;
      // Interval deltas since the last report (published snapshots: this
      // thread is no shard's driver), plus the windowed rates every STAT?
      // answer carries.
      const ServiceStats now_stats = service.SnapshotStats();
      const obs::RateRing::Rates rates = service.SnapshotRates();
      std::printf(
          "stats: +%zu sessions (+%zu failed) +%zu bytes +%zu rounds | "
          "windowed %.1f sessions/s %.0f B/s %.2f decode-fails/min\n",
          now_stats.sessions_completed - last_stats.sessions_completed,
          now_stats.sessions_failed - last_stats.sessions_failed,
          now_stats.total_bytes - last_stats.total_bytes,
          now_stats.total_rounds - last_stats.total_rounds,
          rates.sessions_per_sec, rates.bytes_per_sec,
          rates.decode_failures_per_min);
      last_stats = now_stats;
      std::fflush(stdout);
    }
  }
  pump.Stop();
  const ServiceStats stats = service.AggregateStats();
  std::printf("served %zu sessions (%zu failed) across %zu shards; cache "
              "%zu hits / %zu lookups; %zu remote frames in\n",
              served, failed, shards, stats.cache_hits,
              stats.cache_hits + stats.cache_misses, stats.remote_messages);
  return failed == 0 ? 0 : 1;
}

int RunListen(const std::string& target, size_t serve_count,
              size_t stats_every, uint64_t trace_slow_ns,
              PollerKind poller) {
  SyncServiceOptions options;
  options.trace_slow_ns = trace_slow_ns;
  SyncService service(options);
  auto server_set = std::make_shared<SetOfSets>(net_demo::MakeServerSet());
  uint64_t set_id = service.RegisterSharedSet(server_set);
  NetPumpOptions pump_options;
  pump_options.poller = poller;
  NetPump pump(&service, pump_options);
  std::printf("poller backend: %s\n", PollerKindName(pump.poller_kind()));
  // Same stall watchdog as the sharded mode, over the one shard this
  // thread drives; the pump heartbeat beats on every poller return and
  // the away-from-poll p99 lands in the stall banner.
  obs::StallWatchdog watchdog;
  watchdog.Watch({"shard-0", &pump.heartbeat(),
                  [&service] { return service.HasMailboxWork(); },
                  &service.tracer(),
                  [&pump] {
                    return pump.SnapshotPumpMetrics().away_from_poll.p99();
                  }});
  watchdog.Start(/*stall_ns=*/2'000'000'000, /*poll_ms=*/500, stderr);

  if (target.rfind("tcp:", 0) == 0) {
    uint16_t want =
        static_cast<uint16_t>(std::strtoul(target.c_str() + 4, nullptr, 10));
    Result<uint16_t> port = pump.ListenTcp(want);
    if (!port.ok()) {
      std::fprintf(stderr, "listen failed: %s\n",
                   port.status().ToString().c_str());
      return 1;
    }
    std::printf("listening on tcp port %u (shared set id %llu, %zu "
                "children)\n",
                port.value(), static_cast<unsigned long long>(set_id),
                server_set->size());
  } else if (target.rfind("unix:", 0) == 0) {
    Status s = pump.ListenUnix(target.substr(5));
    if (!s.ok()) {
      std::fprintf(stderr, "listen failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("listening on unix socket %s (shared set id %llu)\n",
                target.c_str() + 5, static_cast<unsigned long long>(set_id));
  } else {
    std::fprintf(stderr, "--listen needs tcp:PORT or unix:PATH\n");
    return 2;
  }
  std::fflush(stdout);

  size_t served = 0, failed = 0, last_stats_at = 0;
  ServiceStats last_stats;
  while (serve_count == 0 || served < serve_count) {
    pump.PumpOnce(/*timeout_ms=*/200);
    for (const SessionResult& r : pump.TakeResults()) {
      ++served;
      if (!r.status.ok()) {
        ++failed;
        std::printf("session %llu (%s): %s\n",
                    static_cast<unsigned long long>(r.id), r.label.c_str(),
                    r.status.ToString().c_str());
      } else {
        std::printf("session %llu (%s): ok, %zu rounds, %zu bytes\n",
                    static_cast<unsigned long long>(r.id), r.label.c_str(),
                    r.stats.rounds, r.stats.bytes);
      }
      std::fflush(stdout);
    }
    if (stats_every > 0 && served - last_stats_at >= stats_every) {
      last_stats_at = served;
      // Interval deltas, not cumulative counters. This thread drives the
      // pump AND the service, so the live blocks (and the live rate ring)
      // are safe to read directly — same path a STAT? frame takes.
      const ServiceStats now_stats = service.stats();
      const obs::RateRing::Rates rates = service.CurrentRates();
      std::printf(
          "stats: +%zu sessions (+%zu failed) +%zu bytes +%zu rounds | "
          "windowed %.1f sessions/s %.0f B/s %.2f decode-fails/min\n",
          now_stats.sessions_completed - last_stats.sessions_completed,
          now_stats.sessions_failed - last_stats.sessions_failed,
          now_stats.total_bytes - last_stats.total_bytes,
          now_stats.total_rounds - last_stats.total_rounds,
          rates.sessions_per_sec, rates.bytes_per_sec,
          rates.decode_failures_per_min);
      last_stats = now_stats;
      std::fflush(stdout);
    }
  }
  const ServiceStats& stats = service.stats();
  std::printf("served %zu sessions (%zu failed); cache %zu hits / %zu "
              "lookups; %zu remote frames in\n",
              served, failed, stats.cache_hits,
              stats.cache_hits + stats.cache_misses, stats.remote_messages);
  return failed == 0 ? 0 : 1;
}

int RunNetSelftest(PollerKind poller) {
  SyncService service;
  auto server_set = std::make_shared<SetOfSets>(net_demo::MakeServerSet());
  service.RegisterSharedSet(server_set);
  NetPumpOptions pump_options;
  pump_options.poller = poller;
  NetPump pump(&service, pump_options);
  std::printf("poller backend: %s\n", PollerKindName(pump.poller_kind()));
  Result<uint16_t> port = pump.ListenTcp(0);
  if (!port.ok()) {
    std::fprintf(stderr, "listen failed: %s\n",
                 port.status().ToString().c_str());
    return 1;
  }

  constexpr int kSessions = 4;  // One per protocol family.
  std::vector<Status> client_status(kSessions, Status::Ok());
  Status stat_status = Status::Ok();
  std::atomic<bool> stat_done{false};
  std::thread client([&] {
    for (int i = 0; i < kSessions; ++i) {
      const size_t slot = static_cast<size_t>(i);
      Result<int> fd = ConnectTcp("127.0.0.1", port.value());
      if (!fd.ok()) {
        client_status[slot] = fd.status();
        continue;
      }
      // Receive timeout: a wedged server must fail the selftest, not hang
      // the client thread (and the join) forever.
      timeval timeout{30, 0};
      ::setsockopt(fd.value(), SOL_SOCKET, SO_RCVTIMEO, &timeout,
                   sizeof(timeout));
      Result<SsrOutcome> outcome = net_demo::RunDemoClientSession(
          fd.value(), static_cast<SsrProtocolKind>(i),
          static_cast<uint64_t>(i) + 1);
      ::close(fd.value());
      if (!outcome.ok()) {
        client_status[slot] = outcome.status();
      } else if (outcome.value().recovered !=
                 Canonicalize(*server_set)) {
        client_status[slot] =
            VerificationFailure("client recovery does not match server set");
      }
    }
    // Admin probe: a fresh connection asking STAT? must get the merged
    // exposition back, and — after the real traffic above — it must carry
    // non-empty session-latency histograms.
    Result<int> fd = ConnectTcp("127.0.0.1", port.value());
    if (fd.ok()) {
      timeval timeout{30, 0};
      ::setsockopt(fd.value(), SOL_SOCKET, SO_RCVTIMEO, &timeout,
                   sizeof(timeout));
      Result<std::string> stats = QueryStatsOverFd(fd.value());
      ::close(fd.value());
      if (!stats.ok()) {
        stat_status = stats.status();
      } else if (stats.value().rfind("# setrec-metrics v2", 0) != 0) {
        stat_status = VerificationFailure("STAT reply missing version line");
      } else if (stats.value().find("setrec_session_latency_ns") ==
                 std::string::npos) {
        stat_status = VerificationFailure(
            "STAT reply has no session-latency histograms after traffic");
      } else if (stats.value().find("rate setrec_sessions_per_sec") ==
                 std::string::npos) {
        stat_status = VerificationFailure(
            "STAT reply has no windowed rate lines (v2 suffix)");
      }
    } else {
      stat_status = fd.status();
    }
    stat_done.store(true, std::memory_order_release);
  });

  size_t done = 0, server_failed = 0;
  for (int spins = 0;
       spins < 30000 &&
       (done < kSessions || !stat_done.load(std::memory_order_acquire));
       ++spins) {
    pump.PumpOnce(10);
    for (const SessionResult& r : pump.TakeResults()) {
      ++done;
      if (!r.status.ok()) {
        ++server_failed;
        std::fprintf(stderr, "server session failed: %s\n",
                     r.status.ToString().c_str());
      }
    }
  }
  client.join();

  bool ok = done == kSessions && server_failed == 0;
  if (!stat_status.ok()) {
    ok = false;
    std::fprintf(stderr, "STAT? probe failed: %s\n",
                 stat_status.ToString().c_str());
  }
  for (int i = 0; i < kSessions; ++i) {
    const size_t slot = static_cast<size_t>(i);
    if (!client_status[slot].ok()) {
      ok = false;
      std::fprintf(stderr, "client %s failed: %s\n",
                   SsrProtocolKindName(static_cast<SsrProtocolKind>(i)),
                   client_status[slot].ToString().c_str());
    }
  }
  std::printf("net selftest over 127.0.0.1: %zu/%d sessions ok — %s\n",
              done - server_failed, kSessions, ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int RunLoopbackDemo();

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--selftest-net") {
      PollerKind poller = PollerKind::kAuto;
      for (int j = 1; j < argc; ++j) {
        if (std::strncmp(argv[j], "--poller=", 9) == 0) {
          Result<PollerKind> kind = ParsePollerKind(argv[j] + 9);
          if (!kind.ok()) {
            std::fprintf(stderr, "--poller needs auto|poll|epoll|io_uring\n");
            return 2;
          }
          poller = kind.value();
        }
      }
      return RunNetSelftest(poller);
    }
    if (arg.rfind("--listen=", 0) == 0) {
      size_t serve = 0;
      size_t shards = 1;
      size_t stats_every = 0;
      uint64_t trace_slow_ns = 0;
      PollerKind poller = PollerKind::kAuto;
      for (int j = 1; j < argc; ++j) {
        if (std::strncmp(argv[j], "--serve=", 8) == 0) {
          serve = std::strtoull(argv[j] + 8, nullptr, 10);
        }
        if (std::strncmp(argv[j], "--shards=", 9) == 0) {
          shards = std::strtoull(argv[j] + 9, nullptr, 10);
        }
        if (std::strncmp(argv[j], "--stats-every=", 14) == 0) {
          stats_every = std::strtoull(argv[j] + 14, nullptr, 10);
        }
        if (std::strncmp(argv[j], "--trace-slow=", 13) == 0) {
          trace_slow_ns =
              std::strtoull(argv[j] + 13, nullptr, 10) * 1'000'000ull;
        }
        if (std::strncmp(argv[j], "--poller=", 9) == 0) {
          Result<PollerKind> kind = ParsePollerKind(argv[j] + 9);
          if (!kind.ok()) {
            std::fprintf(stderr,
                         "--poller needs auto|poll|epoll|io_uring\n");
            return 2;
          }
          poller = kind.value();
        }
      }
      const std::string target = arg.substr(9);
      if (shards > 1) {
        if (target.rfind("tcp:", 0) != 0) {
          std::fprintf(stderr,
                       "--shards needs --listen=tcp:PORT (SO_REUSEPORT)\n");
          return 2;
        }
        return RunListenSharded(
            static_cast<uint16_t>(
                std::strtoul(target.c_str() + 4, nullptr, 10)),
            serve, shards, stats_every, trace_slow_ns, poller);
      }
      return RunListen(target, serve, stats_every, trace_slow_ns, poller);
    }
  }
  return RunLoopbackDemo();
}

namespace {

int RunLoopbackDemo() {

  // --- Server state: one parent set all set-sessions sync against. ---
  SsrWorkloadSpec spec;
  spec.num_children = 64;
  spec.child_size = 8;
  spec.changes = 2;
  spec.seed = 20260730;
  SsrWorkload base = MakeSsrWorkload(spec);
  auto server_set = std::make_shared<SetOfSets>(base.alice);

  SsrParams params;
  params.max_child_size = spec.child_size + 6;
  params.max_children = spec.num_children + 6;
  params.seed = 99;

  SyncServiceOptions options;
  options.max_inflight = 512;
  options.keep_recovered = false;
  SyncService service(options);
  service.RegisterSharedSet(server_set);

  // --- 10k set-of-sets client sessions (mixed protocol families). ---
  const size_t kSetSessions = 10'000;
  Rng rng(7);
  auto mirror_client = std::make_shared<Endpoint>();
  for (size_t i = 0; i < kSetSessions; ++i) {
    SetOfSets bob = *server_set;
    size_t victim = rng.NextU64() % bob.size();
    if (bob[victim].size() > 1) bob[victim].pop_back();
    bob[rng.NextU64() % bob.size()].push_back((1ull << 42) +
                                              (rng.NextU64() & 0xffff));
    SessionSpec session;
    session.protocol = static_cast<SsrProtocolKind>(rng.NextU64() % 4);
    session.params = params;
    session.alice = server_set;
    session.bob = std::make_shared<SetOfSets>(Canonicalize(std::move(bob)));
    session.known_d = 6;
    if (i == 0) {
      // Mirror the first session onto a loopback endpoint pair: its
      // protocol messages become wire frames a remote client would read.
      auto [server_end, client_end] = Endpoint::LoopbackPair();
      session.mirror = std::make_shared<Endpoint>(std::move(server_end));
      *mirror_client = std::move(client_end);
    }
    service.Submit(std::move(session));
  }

  // --- Opaque sessions: graph, forest and shingle workloads share the
  // scheduler (single-step sessions; no planner coalescing). ---
  SeparatedInstanceSpec graph_spec;
  graph_spec.seed = 5;
  Result<Graph> graph_base = MakeSeparatedGraph(graph_spec);
  if (graph_base.ok()) {
    Rng grng(77);
    auto alice = std::make_shared<Graph>(graph_base.value());
    auto bob = std::make_shared<Graph>(graph_base.value());
    alice->Perturb(1, &grng);
    bob->Perturb(1, &grng);
    SessionSpec session;
    session.label = "graph";
    session.opaque = [alice, bob, graph_spec](Channel* channel) {
      Result<GraphReconcileOutcome> outcome = DegreeOrderingReconcile(
          *alice, *bob, graph_spec.d, graph_spec.h, 9, channel);
      return outcome.ok() ? Status::Ok() : outcome.status();
    };
    service.Submit(std::move(session));
  }
  {
    Rng frng(4242);
    auto alice = std::make_shared<RootedForest>(
        RootedForest::Random(3000, 5, 0.12, &frng));
    auto bob = std::make_shared<RootedForest>(*alice);
    size_t d = bob->Perturb(2, 5, &frng);
    size_t sigma = std::max(alice->MaxDepth(), bob->MaxDepth());
    SessionSpec session;
    session.label = "forest";
    session.opaque = [alice, bob, d, sigma](Channel* channel) {
      Result<ForestReconcileOutcome> outcome =
          ForestReconcile(*alice, *bob, std::max<size_t>(d, 1), sigma, 11,
                          channel);
      return outcome.ok() ? Status::Ok() : outcome.status();
    };
    service.Submit(std::move(session));
  }
  {
    auto alice = std::make_shared<SetOfSets>(base.alice);
    auto bob = std::make_shared<SetOfSets>(base.bob);
    auto shingle_params = std::make_shared<SsrParams>(params);
    SessionSpec session;
    session.label = "shingles";
    session.opaque = [alice, bob, shingle_params](Channel* channel) {
      Result<CollectionReconcileOutcome> outcome = ReconcileCollections(
          *alice, *bob, /*per_doc_diff=*/8, *shingle_params, channel);
      return outcome.ok() ? Status::Ok() : outcome.status();
    };
    service.Submit(std::move(session));
  }

  // --- Run everything and report. ---
  const double seconds = [&] {
    const auto start = std::chrono::steady_clock::now();
    service.RunToCompletion();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  }();

  const ServiceStats& stats = service.stats();
  std::printf("sessions: %zu submitted, %zu completed, %zu failed\n",
              stats.sessions_submitted, stats.sessions_completed,
              stats.sessions_failed);
  std::printf("throughput: %.0f sessions/sec (%.2fs total)\n",
              static_cast<double>(stats.sessions_completed) / seconds,
              seconds);
  std::printf("traffic: %zu bytes over %zu rounds\n", stats.total_bytes,
              stats.total_rounds);
  std::printf("planner: %zu flushes, mean occupancy %.0f keys, max %zu "
              "(sharded threshold %zu crossed %zu times)\n",
              stats.flushes, stats.mean_flush_occupancy(),
              stats.max_flush_keys, Iblt::batch_options().sharded_min_keys,
              stats.sharded_flushes);
  std::printf("alice-message cache: %zu hits / %zu lookups\n",
              stats.cache_hits, stats.cache_hits + stats.cache_misses);

  // Drain the mirrored session through the framed stream codec.
  ByteWriter stream;
  size_t frames = mirror_client->DrainToStream(&stream);
  FrameDecoder decoder;
  decoder.Feed(stream.bytes());
  size_t decoded = 0;
  Channel::Message m;
  while (decoder.Next(&m)) ++decoded;
  std::printf("mirrored session: %zu frames, %zu bytes on the wire, "
              "%zu decoded back\n",
              frames, stream.bytes().size(), decoded);

  return stats.sessions_failed == 0 ? 0 : 1;
}

}  // namespace
