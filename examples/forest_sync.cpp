// Forest sync: one-way reconciliation of rooted forests (Section 6 /
// Theorem 6.1). A 3000-vertex forest of depth <= 6 drifts by a few legal
// edge updates (detach a subtree / re-attach a root); Bob rebuilds a forest
// isomorphic to Alice's from reconciled vertex- and edge-signature
// multisets, at a cost driven by d * sigma rather than n.
//
// Build & run:  ./build/examples/forest_sync

#include <algorithm>
#include <cstdio>

#include "forest/ahu.h"
#include "forest/forest_reconciler.h"
#include "hashing/random.h"

int main() {
  using namespace setrec;

  Rng rng(4242);
  // The O(d * sigma) cost is independent of n, so the saving over raw
  // transfer shows once n dwarfs d * sigma (times the library's constants).
  const size_t kN = 50000, kDepth = 5;
  RootedForest base = RootedForest::Random(kN, kDepth, 0.12, &rng);
  RootedForest alice = base, bob = base;
  size_t d = alice.Perturb(1, kDepth, &rng) + bob.Perturb(1, kDepth, &rng);
  size_t sigma = std::max(alice.MaxDepth(), bob.MaxDepth());
  std::printf("forest: n=%zu, sigma=%zu, drifted by %zu edge updates\n", kN,
              sigma, d);

  const uint64_t kSeed = 11;
  Channel channel;
  Result<ForestReconcileOutcome> outcome =
      ForestReconcile(alice, bob, d, sigma, kSeed, &channel);
  if (!outcome.ok()) {
    std::printf("reconciliation failed: %s\n",
                outcome.status().ToString().c_str());
    return 1;
  }
  HashFamily family(kSeed, /*tag=*/0x61687530ull);
  std::printf("reconciled in %zu round, %zu bytes (raw parent array: %zu "
              "bytes)\n",
              channel.rounds(), channel.total_bytes(), kN * 4);
  std::printf("recovered forest isomorphic to Alice's: %s\n",
              AreForestsIsomorphic(outcome.value().recovered, alice, family)
                  ? "yes"
                  : "NO");
  return 0;
}
