// Sync client: the remote half of a split-party reconciliation session.
// Connects to a sync_server --listen endpoint, sends the session hello,
// then drives Bob's half of the chosen protocol over the socket — the
// server hosts only Alice's half. On success the client holds the server's
// parent set, verified against the shared demo fixture.
//
//   ./build/example_sync_server --listen=tcp:7450 &
//   ./build/example_sync_client --connect=tcp:127.0.0.1:7450 --protocol=cascade --index=3
//
// Also speaks unix sockets: --connect=unix:/tmp/setrec.sock
//
// --retry-busy[=N] honors the server's admission shedding: when the hello
// is answered with a "busy, retry-after" frame, the client sleeps the
// server's hint (plus jitter, so a shed thundering herd doesn't reconnect
// in lockstep) and retries up to N times (default 5).

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>

#include "examples/net_demo.h"
#include "net/stream_party.h"
#include "net/wire.h"
#include "service/sync_service.h"

using namespace setrec;

namespace {

bool ParseProtocol(const std::string& name, SsrProtocolKind* kind) {
  for (int i = 0; i < kSsrProtocolKindCount; ++i) {
    if (name == SsrProtocolKindName(static_cast<SsrProtocolKind>(i))) {
      *kind = static_cast<SsrProtocolKind>(i);
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect;
  std::string protocol_name = "iblt2";
  uint64_t index = 1;
  int busy_retries = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--connect=", 0) == 0) {
      connect = arg.substr(10);
    } else if (arg.rfind("--protocol=", 0) == 0) {
      protocol_name = arg.substr(11);
    } else if (arg.rfind("--index=", 0) == 0) {
      index = std::strtoull(arg.c_str() + 8, nullptr, 10);
    } else if (arg == "--retry-busy") {
      busy_retries = 5;
    } else if (arg.rfind("--retry-busy=", 0) == 0) {
      busy_retries = std::atoi(arg.c_str() + 13);
    } else {
      std::fprintf(stderr,
                   "usage: %s --connect=tcp:HOST:PORT|unix:PATH "
                   "[--protocol=naive|iblt2|cascade|multiround] [--index=N] "
                   "[--retry-busy[=N]]\n",
                   argv[0]);
      return 2;
    }
  }
  SsrProtocolKind kind;
  if (connect.empty() || !ParseProtocol(protocol_name, &kind)) {
    std::fprintf(stderr, "missing --connect or unknown --protocol\n");
    return 2;
  }

  const auto connect_once = [&]() -> Result<int> {
    if (connect.rfind("tcp:", 0) == 0) {
      const std::string hostport = connect.substr(4);
      const size_t colon = hostport.rfind(':');
      if (colon == std::string::npos) {
        return InvalidArgument("--connect=tcp: needs HOST:PORT");
      }
      return ConnectTcp(hostport.substr(0, colon),
                        static_cast<uint16_t>(
                            std::strtoul(hostport.c_str() + colon + 1,
                                         nullptr, 10)));
    }
    if (connect.rfind("unix:", 0) == 0) return ConnectUnix(connect.substr(5));
    return InvalidArgument("unparsed --connect");
  };

  // One attempt, plus up to busy_retries reconnects honoring the server's
  // retry-after hint. The sleep is jittered to 50–150% of the hint so a
  // whole shed cohort doesn't reconnect in lockstep and get shed again.
  std::mt19937_64 jitter_rng(std::random_device{}());
  Result<SsrOutcome> outcome = InvalidArgument("no attempt ran");
  for (int attempt = 0;; ++attempt) {
    Result<int> fd = connect_once();
    if (!fd.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   fd.status().ToString().c_str());
      return 1;
    }
    uint32_t busy_hint_ms = 0;
    outcome =
        net_demo::RunDemoClientSession(fd.value(), kind, index, &busy_hint_ms);
    ::close(fd.value());
    if (outcome.ok() || busy_hint_ms == 0 || attempt >= busy_retries) break;
    std::uniform_real_distribution<double> jitter(0.5, 1.5);
    const double sleep_ms =
        static_cast<double>(busy_hint_ms) * jitter(jitter_rng);
    std::fprintf(stderr,
                 "server busy (retry-after %u ms); retry %d/%d in %.0f ms\n",
                 busy_hint_ms, attempt + 1, busy_retries, sleep_ms);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long>(sleep_ms)));
  }
  if (!outcome.ok()) {
    std::fprintf(stderr, "session failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  const bool match =
      outcome.value().recovered == Canonicalize(net_demo::MakeServerSet());
  std::printf(
      "protocol=%s rounds=%zu bytes=%zu attempts=%d recovered=%zu children "
      "server-match=%s\n",
      SsrProtocolKindName(kind), outcome.value().stats.rounds,
      outcome.value().stats.bytes, outcome.value().stats.attempts,
      outcome.value().recovered.size(), match ? "yes" : "NO");
  return match ? 0 : 1;
}
