// Sync client: the remote half of a split-party reconciliation session.
// Connects to a sync_server --listen endpoint, sends the session hello,
// then drives Bob's half of the chosen protocol over the socket — the
// server hosts only Alice's half. On success the client holds the server's
// parent set, verified against the shared demo fixture.
//
//   ./build/example_sync_server --listen=tcp:7450 &
//   ./build/example_sync_client --connect=tcp:127.0.0.1:7450 --protocol=cascade --index=3
//
// Also speaks unix sockets: --connect=unix:/tmp/setrec.sock

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "examples/net_demo.h"
#include "net/stream_party.h"
#include "net/wire.h"
#include "service/sync_service.h"

using namespace setrec;

namespace {

bool ParseProtocol(const std::string& name, SsrProtocolKind* kind) {
  for (int i = 0; i < kSsrProtocolKindCount; ++i) {
    if (name == SsrProtocolKindName(static_cast<SsrProtocolKind>(i))) {
      *kind = static_cast<SsrProtocolKind>(i);
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect;
  std::string protocol_name = "iblt2";
  uint64_t index = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--connect=", 0) == 0) {
      connect = arg.substr(10);
    } else if (arg.rfind("--protocol=", 0) == 0) {
      protocol_name = arg.substr(11);
    } else if (arg.rfind("--index=", 0) == 0) {
      index = std::strtoull(arg.c_str() + 8, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s --connect=tcp:HOST:PORT|unix:PATH "
                   "[--protocol=naive|iblt2|cascade|multiround] [--index=N]\n",
                   argv[0]);
      return 2;
    }
  }
  SsrProtocolKind kind;
  if (connect.empty() || !ParseProtocol(protocol_name, &kind)) {
    std::fprintf(stderr, "missing --connect or unknown --protocol\n");
    return 2;
  }

  Result<int> fd = InvalidArgument("unparsed --connect");
  if (connect.rfind("tcp:", 0) == 0) {
    const std::string hostport = connect.substr(4);
    const size_t colon = hostport.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--connect=tcp: needs HOST:PORT\n");
      return 2;
    }
    fd = ConnectTcp(hostport.substr(0, colon),
                    static_cast<uint16_t>(
                        std::strtoul(hostport.c_str() + colon + 1, nullptr,
                                     10)));
  } else if (connect.rfind("unix:", 0) == 0) {
    fd = ConnectUnix(connect.substr(5));
  }
  if (!fd.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 fd.status().ToString().c_str());
    return 1;
  }

  Result<SsrOutcome> outcome =
      net_demo::RunDemoClientSession(fd.value(), kind, index);
  ::close(fd.value());
  if (!outcome.ok()) {
    std::fprintf(stderr, "session failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  const bool match =
      outcome.value().recovered == Canonicalize(net_demo::MakeServerSet());
  std::printf(
      "protocol=%s rounds=%zu bytes=%zu attempts=%d recovered=%zu children "
      "server-match=%s\n",
      SsrProtocolKindName(kind), outcome.value().stats.rounds,
      outcome.value().stats.bytes, outcome.value().stats.attempts,
      outcome.value().recovered.size(), match ? "yes" : "NO");
  return match ? 0 : 1;
}
