// Graph sync: one-way reconciliation of unlabeled random graphs via the
// degree-ordering signature scheme (Section 5.1). A 2000-vertex base graph
// satisfying the (h, d+1, 2d+1)-separation premise of Theorem 5.2 drifts by
// d = 2 edges on each side's copy; Bob ends with a graph isomorphic to
// Alice's for a few kilobytes — against megabytes for the raw edge list.
//
// Build & run:  ./build/examples/graph_sync

#include <cstdio>

#include "graph/degree_ordering.h"
#include "graph/separated_instance.h"
#include "hashing/random.h"

int main() {
  using namespace setrec;

  SeparatedInstanceSpec spec;  // Defaults: n=2000, h=36, d=2.
  spec.seed = 5;
  Result<Graph> base = MakeSeparatedGraph(spec);
  if (!base.ok()) {
    std::printf("instance generation failed: %s\n",
                base.status().ToString().c_str());
    return 1;
  }
  std::printf("base graph: n=%zu, %zu edges, (h=%zu, d+1, 2d+1)-separated\n",
              base.value().num_vertices(), base.value().num_edges(), spec.h);

  Rng rng(77);
  Graph alice = base.value(), bob = base.value();
  alice.Perturb(1, &rng);  // One edge change on each side: d = 2 total.
  bob.Perturb(1, &rng);

  Channel channel;
  Result<GraphReconcileOutcome> outcome =
      DegreeOrderingReconcile(alice, bob, spec.d, spec.h, /*seed=*/9,
                              &channel);
  if (!outcome.ok()) {
    std::printf("reconciliation failed: %s\n",
                outcome.status().ToString().c_str());
    return 1;
  }
  const size_t raw_edges_bytes = alice.num_edges() * 8;
  std::printf("reconciled in %zu round, %zu bytes "
              "(raw edge list: %zu bytes, %.0fx saving)\n",
              channel.rounds(), channel.total_bytes(), raw_edges_bytes,
              static_cast<double>(raw_edges_bytes) /
                  static_cast<double>(channel.total_bytes()));
  std::printf("recovered graph: %zu edges (Alice has %zu)\n",
              outcome.value().recovered.num_edges(), alice.num_edges());
  return 0;
}
