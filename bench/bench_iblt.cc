// Experiment E3 (DESIGN.md): Theorem 2.1 — IBLT decode threshold and
// linear-time peeling. Part 1 measures decode success rate as a function of
// cells-per-key (the 2-core threshold for k=3,4 sits near 1.22/1.30
// cells per key asymptotically; small tables need more). Part 2 uses
// google-benchmark to confirm insert+decode throughput is linear in keys.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "hashing/random.h"
#include "iblt/iblt.h"

namespace setrec {
namespace {

double SuccessRate(size_t keys, double cells_per_key, int num_hashes,
                   int trials) {
  int success = 0;
  for (int t = 0; t < trials; ++t) {
    IbltConfig config;
    config.cells = static_cast<size_t>(cells_per_key * keys);
    config.num_hashes = num_hashes;
    config.key_width = 8;
    config.seed = 7000 + t;
    Iblt table(config);
    Rng rng(t * 37 + keys);
    for (size_t k = 0; k < keys; ++k) table.InsertU64(rng.NextU64());
    Result<IbltDecodeResult64> decoded = table.DecodeU64();
    if (decoded.ok() && decoded.value().positive.size() == keys) ++success;
  }
  return static_cast<double>(success) / trials;
}

void DecodeThresholdTable() {
  bench::Header("E3 / Theorem 2.1", "IBLT decode success vs cells/key");
  std::printf("%8s %6s", "keys", "k");
  const double ratios[] = {1.1, 1.2, 1.3, 1.4, 1.6, 2.0, 2.5};
  for (double r : ratios) std::printf(" %7.1f", r);
  std::printf("\n");
  for (size_t keys : {16, 64, 256, 1024}) {
    for (int k : {3, 4}) {
      std::printf("%8zu %6d", keys, k);
      for (double r : ratios) {
        std::printf(" %6.0f%%", 100 * SuccessRate(keys, r, k, 40));
      }
      std::printf("\n");
    }
  }
  std::printf(
      "Expected shape: success jumps to ~100%% above the peeling threshold\n"
      "(~1.2-1.4 cells/key), sharper for larger tables; the library default\n"
      "of 2.0 cells/key + floor sits safely above it.\n");
}

void BM_InsertAndDecode(benchmark::State& state) {
  const size_t keys = state.range(0);
  IbltConfig config = IbltConfig::ForDifference(keys, 99);
  Rng rng(keys);
  std::vector<uint64_t> elements(keys);
  for (auto& e : elements) e = rng.NextU64();
  for (auto _ : state) {
    Iblt table(config);
    for (uint64_t e : elements) table.InsertU64(e);
    auto decoded = table.DecodeU64();
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * keys);
}
BENCHMARK(BM_InsertAndDecode)->RangeMultiplier(4)->Range(64, 16384);

void BM_Subtract(benchmark::State& state) {
  const size_t keys = state.range(0);
  IbltConfig config = IbltConfig::ForDifference(keys, 100);
  Iblt a(config), b(config);
  Rng rng(keys + 1);
  for (size_t i = 0; i < keys; ++i) {
    uint64_t e = rng.NextU64();
    a.InsertU64(e);
    b.InsertU64(e);
  }
  for (auto _ : state) {
    Iblt work = a;
    benchmark::DoNotOptimize(work.Subtract(b));
  }
  state.SetItemsProcessed(state.iterations() * keys);
}
BENCHMARK(BM_Subtract)->RangeMultiplier(4)->Range(64, 16384);

}  // namespace
}  // namespace setrec

int main(int argc, char** argv) {
  setrec::DecodeThresholdTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
