// Experiment E3 (DESIGN.md): Theorem 2.1 — IBLT decode threshold and
// linear-time peeling. Part 1 measures decode success rate as a function of
// cells-per-key (the 2-core threshold for k=3,4 sits near 1.22/1.30
// cells per key asymptotically; small tables need more). Part 2 uses
// google-benchmark to confirm insert+decode throughput is linear in keys.
//
// `bench_iblt --json` instead runs the fixed throughput suite (insert
// keys/sec, subtract cells/sec, decode keys/sec at d in {1e2, 1e4, 1e6})
// and writes BENCH_iblt.json with both the recorded seed-implementation
// baseline and the current numbers, so the perf trajectory is tracked
// across PRs.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "hashing/random.h"
#include "iblt/iblt.h"

namespace setrec {
namespace {

double SuccessRate(size_t keys, double cells_per_key, int num_hashes,
                   int trials) {
  int success = 0;
  for (int t = 0; t < trials; ++t) {
    IbltConfig config;
    config.cells = static_cast<size_t>(cells_per_key * keys);
    config.num_hashes = num_hashes;
    config.key_width = 8;
    config.seed = 7000 + t;
    Iblt table(config);
    Rng rng(t * 37 + keys);
    std::vector<uint64_t> elements(keys);
    for (auto& e : elements) e = rng.NextU64();
    table.InsertBatch(elements);
    Result<IbltDecodeResult64> decoded = table.DecodeU64();
    if (decoded.ok() && decoded.value().positive.size() == keys) ++success;
  }
  return static_cast<double>(success) / trials;
}

void DecodeThresholdTable() {
  bench::Header("E3 / Theorem 2.1", "IBLT decode success vs cells/key");
  std::printf("%8s %6s", "keys", "k");
  const double ratios[] = {1.1, 1.2, 1.3, 1.4, 1.6, 2.0, 2.5};
  for (double r : ratios) std::printf(" %7.1f", r);
  std::printf("\n");
  for (size_t keys : {16, 64, 256, 1024}) {
    for (int k : {3, 4}) {
      std::printf("%8zu %6d", keys, k);
      for (double r : ratios) {
        std::printf(" %6.0f%%", 100 * SuccessRate(keys, r, k, 40));
      }
      std::printf("\n");
    }
  }
  std::printf(
      "Expected shape: success jumps to ~100%% above the peeling threshold\n"
      "(~1.2-1.4 cells/key), sharper for larger tables; the library default\n"
      "of 2.0 cells/key + floor sits safely above it.\n");
}

void BM_InsertAndDecode(benchmark::State& state) {
  const size_t keys = state.range(0);
  IbltConfig config = IbltConfig::ForDifference(keys, 99);
  Rng rng(keys);
  std::vector<uint64_t> elements(keys);
  for (auto& e : elements) e = rng.NextU64();
  DecodeScratch scratch;
  for (auto _ : state) {
    Iblt table(config);
    table.InsertBatch(elements);
    auto decoded = table.DecodeU64(&scratch);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * keys);
}
BENCHMARK(BM_InsertAndDecode)->RangeMultiplier(4)->Range(64, 16384);

void BM_Subtract(benchmark::State& state) {
  const size_t keys = state.range(0);
  IbltConfig config = IbltConfig::ForDifference(keys, 100);
  Iblt a(config), b(config);
  Rng rng(keys + 1);
  std::vector<uint64_t> shared(keys);
  for (auto& e : shared) e = rng.NextU64();
  a.InsertBatch(shared);
  b.InsertBatch(shared);
  for (auto _ : state) {
    Iblt work = a;
    benchmark::DoNotOptimize(work.Subtract(b));
  }
  state.SetItemsProcessed(state.iterations() * keys);
}
BENCHMARK(BM_Subtract)->RangeMultiplier(4)->Range(64, 16384);

// ---------------------------------------------------------------------------
// --json throughput suite
// ---------------------------------------------------------------------------

struct ThroughputRow {
  size_t d = 0;
  double insert_keys_per_sec = 0;
  double subtract_cells_per_sec = 0;
  double decode_keys_per_sec = 0;
};

// Seed-implementation baseline, measured on this machine (1-core Xeon
// @2.1GHz) with the identical steady-state methodology below (best of 5
// repetitions, per-key InsertU64/EraseU64 + scratch-free DecodeU64 — the
// only APIs the seed had) immediately before the cell-engine rewrite.
// Kept here so regenerated BENCH_iblt.json files preserve the comparison
// point.
constexpr ThroughputRow kSeedBaseline[] = {
    {100, 1.682e7, 1.857e8, 5.779e6},
    {10000, 1.376e7, 8.602e7, 3.215e6},
    {1000000, 3.205e6, 7.243e7, 2.068e6},
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ThroughputRow MeasureThroughput(size_t d) {
  const int kRepeats = 5;
  ThroughputRow row;
  row.d = d;
  IbltConfig config = IbltConfig::ForDifference(d, 42);
  Rng rng(d);
  std::vector<uint64_t> keys(d);
  for (auto& k : keys) k = rng.NextU64();
  const int reps = d >= 1000000 ? 3 : static_cast<int>(3000000 / d);

  // Insert: steady-state batched application into a persistent table.
  Iblt table(config);
  for (int rep = 0; rep < kRepeats; ++rep) {
    double t0 = NowSeconds();
    for (int r = 0; r < reps; ++r) table.InsertBatch(keys);
    double rate = static_cast<double>(d) * reps / (NowSeconds() - t0);
    row.insert_keys_per_sec = std::max(row.insert_keys_per_sec, rate);
  }

  Iblt a(config), b(config);
  a.InsertBatch(keys.data(), d / 2);
  b.InsertBatch(keys.data() + d / 2, d - d / 2);
  for (int rep = 0; rep < kRepeats; ++rep) {
    double t0 = NowSeconds();
    for (int r = 0; r < reps; ++r) {
      Iblt work = a;
      benchmark::DoNotOptimize(work.Subtract(b));
    }
    double rate =
        static_cast<double>(config.PaddedCells()) * reps / (NowSeconds() - t0);
    row.subtract_cells_per_sec = std::max(row.subtract_cells_per_sec, rate);
  }

  Iblt diff = a;
  (void)diff.Subtract(b);
  const int dreps = d >= 1000000 ? 2 : static_cast<int>(1000000 / d);
  DecodeScratch scratch;
  for (int rep = 0; rep < kRepeats; ++rep) {
    size_t decoded = 0;
    double t0 = NowSeconds();
    for (int r = 0; r < dreps; ++r) {
      auto out = diff.DecodeU64(&scratch);
      if (!out.ok()) {
        std::fprintf(stderr, "bench_iblt: decode failed at d=%zu\n", d);
        return row;
      }
      decoded = out.value().positive.size() + out.value().negative.size();
    }
    double rate = static_cast<double>(decoded) * dreps / (NowSeconds() - t0);
    row.decode_keys_per_sec = std::max(row.decode_keys_per_sec, rate);
  }
  return row;
}

void AppendRow(std::string* out, const ThroughputRow& row, bool last) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "    \"d_%zu\": {\"insert_keys_per_sec\": %.4g, "
                "\"subtract_cells_per_sec\": %.4g, "
                "\"decode_keys_per_sec\": %.4g}%s\n",
                row.d, row.insert_keys_per_sec, row.subtract_cells_per_sec,
                row.decode_keys_per_sec, last ? "" : ",");
  *out += buf;
}

int RunJsonSuite() {
  bench::Header("IBLT throughput", "insert/subtract/decode vs seed baseline");
  std::string json = "{\n  \"bench\": \"iblt\",\n";
  json +=
      "  \"units\": {\"insert\": \"keys/sec\", \"subtract\": \"cells/sec\", "
      "\"decode\": \"keys/sec\"},\n";
  json += "  \"seed\": {\n";
  for (size_t i = 0; i < 3; ++i) {
    AppendRow(&json, kSeedBaseline[i], i == 2);
  }
  json += "  },\n  \"current\": {\n";
  ThroughputRow current[3];
  for (size_t i = 0; i < 3; ++i) {
    current[i] = MeasureThroughput(kSeedBaseline[i].d);
    std::printf(
        "d=%-8zu insert %.3g keys/s (seed %.3g, %.2fx)  decode %.3g keys/s "
        "(seed %.3g, %.2fx)\n",
        current[i].d, current[i].insert_keys_per_sec,
        kSeedBaseline[i].insert_keys_per_sec,
        current[i].insert_keys_per_sec / kSeedBaseline[i].insert_keys_per_sec,
        current[i].decode_keys_per_sec, kSeedBaseline[i].decode_keys_per_sec,
        current[i].decode_keys_per_sec / kSeedBaseline[i].decode_keys_per_sec);
    AppendRow(&json, current[i], i == 2);
  }
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                "  },\n  \"speedup_at_d_10000\": {\"insert\": %.2f, "
                "\"decode\": %.2f}\n}\n",
                current[1].insert_keys_per_sec /
                    kSeedBaseline[1].insert_keys_per_sec,
                current[1].decode_keys_per_sec /
                    kSeedBaseline[1].decode_keys_per_sec);
  json += tail;
  std::FILE* f = std::fopen("BENCH_iblt.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_iblt: cannot write BENCH_iblt.json\n");
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote BENCH_iblt.json\n");
  return 0;
}

}  // namespace
}  // namespace setrec

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return setrec::RunJsonSuite();
    }
  }
  setrec::DecodeThresholdTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
