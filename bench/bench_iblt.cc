// Experiment E3 (DESIGN.md): Theorem 2.1 — IBLT decode threshold and
// linear-time peeling. Part 1 measures decode success rate as a function of
// cells-per-key (the 2-core threshold for k=3,4 sits near 1.22/1.30
// cells per key asymptotically; small tables need more). Part 2 uses
// google-benchmark to confirm insert+decode throughput is linear in keys.
//
// `bench_iblt --json` instead runs the fixed throughput suite (insert
// keys/sec, subtract cells/sec, decode keys/sec at d in {1e2, 1e4, 1e6})
// and writes BENCH_iblt.json with both the recorded seed-implementation
// baseline and the current numbers, so the perf trajectory is tracked
// across PRs. The suite also measures byte-key (36-byte blob) decode
// throughput through the view API vs a materializing decode, and counts
// heap allocations of a warm-scratch decode via a global operator new
// hook — BENCH_iblt.json carries the proof that warm blob decodes are
// allocation-free.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "bench/alloc_counter.h"
#include "bench/bench_util.h"
#include "hashing/random.h"
#include "iblt/iblt.h"

namespace setrec {
namespace {

double SuccessRate(size_t keys, double cells_per_key, int num_hashes,
                   int trials) {
  int success = 0;
  for (int t = 0; t < trials; ++t) {
    IbltConfig config;
    config.cells = static_cast<size_t>(cells_per_key * static_cast<double>(keys));
    config.num_hashes = num_hashes;
    config.key_width = 8;
    config.seed = static_cast<uint64_t>(7000 + t);
    Iblt table(config);
    Rng rng(static_cast<uint64_t>(t * 37) + keys);
    std::vector<uint64_t> elements(keys);
    for (auto& e : elements) e = rng.NextU64();
    table.InsertBatch(elements);
    Result<IbltDecodeResult64> decoded = table.DecodeU64();
    if (decoded.ok() && decoded.value().positive.size() == keys) ++success;
  }
  return static_cast<double>(success) / trials;
}

void DecodeThresholdTable() {
  bench::Header("E3 / Theorem 2.1", "IBLT decode success vs cells/key");
  std::printf("%8s %6s", "keys", "k");
  const double ratios[] = {1.1, 1.2, 1.3, 1.4, 1.6, 2.0, 2.5};
  for (double r : ratios) std::printf(" %7.1f", r);
  std::printf("\n");
  for (size_t keys : {16u, 64u, 256u, 1024u}) {
    for (int k : {3, 4}) {
      std::printf("%8zu %6d", keys, k);
      for (double r : ratios) {
        std::printf(" %6.0f%%", 100 * SuccessRate(keys, r, k, 40));
      }
      std::printf("\n");
    }
  }
  std::printf(
      "Expected shape: success jumps to ~100%% above the peeling threshold\n"
      "(~1.2-1.4 cells/key), sharper for larger tables; the library default\n"
      "of 2.0 cells/key + floor sits safely above it.\n");
}

void BM_InsertAndDecode(benchmark::State& state) {
  const size_t keys = static_cast<size_t>(state.range(0));
  IbltConfig config = IbltConfig::ForDifference(keys, 99);
  Rng rng(keys);
  std::vector<uint64_t> elements(keys);
  for (auto& e : elements) e = rng.NextU64();
  DecodeScratch scratch;
  for (auto _ : state) {
    Iblt table(config);
    table.InsertBatch(elements);
    auto decoded = table.DecodeU64(&scratch);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(keys));
}
BENCHMARK(BM_InsertAndDecode)->RangeMultiplier(4)->Range(64, 16384);

void BM_Subtract(benchmark::State& state) {
  const size_t keys = static_cast<size_t>(state.range(0));
  IbltConfig config = IbltConfig::ForDifference(keys, 100);
  Iblt a(config), b(config);
  Rng rng(keys + 1);
  std::vector<uint64_t> shared(keys);
  for (auto& e : shared) e = rng.NextU64();
  a.InsertBatch(shared);
  b.InsertBatch(shared);
  for (auto _ : state) {
    Iblt work = a;
    benchmark::DoNotOptimize(work.Subtract(b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(keys));
}
BENCHMARK(BM_Subtract)->RangeMultiplier(4)->Range(64, 16384);

// ---------------------------------------------------------------------------
// --json throughput suite
// ---------------------------------------------------------------------------

struct ThroughputRow {
  size_t d = 0;
  double insert_keys_per_sec = 0;
  double subtract_cells_per_sec = 0;
  double decode_keys_per_sec = 0;
  // Byte-key (36-byte blob) decode through the view API, vs. the same
  // decode followed by Materialize() — the owning shape every decode paid
  // for before the arena-backed result. Zero for seed rows (no blob bench
  // existed) and for d=1e6 (blob tables that large exceed the suite's
  // time budget).
  double blob_decode_keys_per_sec = 0;
  double blob_materialize_keys_per_sec = 0;
  // Heap allocations of one warm-scratch decode (global operator new
  // count). The view API's contract is blob == 0.
  size_t decode_allocs_warm_u64 = 0;
  size_t decode_allocs_warm_blob = 0;
};

// Seed-implementation baseline, measured on this machine (1-core Xeon
// @2.1GHz) with the identical steady-state methodology below (best of 5
// repetitions, per-key InsertU64/EraseU64 + scratch-free DecodeU64 — the
// only APIs the seed had) immediately before the cell-engine rewrite.
// Kept here so regenerated BENCH_iblt.json files preserve the comparison
// point.
constexpr ThroughputRow kSeedBaseline[] = {
    {100, 1.682e7, 1.857e8, 5.779e6},
    {10000, 1.376e7, 8.602e7, 3.215e6},
    {1000000, 3.205e6, 7.243e7, 2.068e6},
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ThroughputRow MeasureThroughput(size_t d) {
  const int kRepeats = 5;
  ThroughputRow row;
  row.d = d;
  IbltConfig config = IbltConfig::ForDifference(d, 42);
  Rng rng(d);
  std::vector<uint64_t> keys(d);
  for (auto& k : keys) k = rng.NextU64();
  const int reps = d >= 1000000 ? 3 : static_cast<int>(3000000 / d);

  // Insert: steady-state batched application into a persistent table.
  Iblt table(config);
  for (int rep = 0; rep < kRepeats; ++rep) {
    double t0 = NowSeconds();
    for (int r = 0; r < reps; ++r) table.InsertBatch(keys);
    double rate = static_cast<double>(d) * reps / (NowSeconds() - t0);
    row.insert_keys_per_sec = std::max(row.insert_keys_per_sec, rate);
  }

  Iblt a(config), b(config);
  a.InsertBatch(keys.data(), d / 2);
  b.InsertBatch(keys.data() + d / 2, d - d / 2);
  for (int rep = 0; rep < kRepeats; ++rep) {
    double t0 = NowSeconds();
    for (int r = 0; r < reps; ++r) {
      Iblt work = a;
      benchmark::DoNotOptimize(work.Subtract(b));
    }
    double rate =
        static_cast<double>(config.PaddedCells()) * reps / (NowSeconds() - t0);
    row.subtract_cells_per_sec = std::max(row.subtract_cells_per_sec, rate);
  }

  Iblt diff = a;
  (void)diff.Subtract(b);
  const int dreps = d >= 1000000 ? 2 : static_cast<int>(1000000 / d);
  DecodeScratch scratch;
  for (int rep = 0; rep < kRepeats; ++rep) {
    size_t decoded = 0;
    double t0 = NowSeconds();
    for (int r = 0; r < dreps; ++r) {
      auto out = diff.DecodeU64(&scratch);
      if (!out.ok()) {
        std::fprintf(stderr, "bench_iblt: decode failed at d=%zu\n", d);
        return row;
      }
      decoded = out.value().positive.size() + out.value().negative.size();
    }
    double rate = static_cast<double>(decoded) * dreps / (NowSeconds() - t0);
    row.decode_keys_per_sec = std::max(row.decode_keys_per_sec, rate);
  }
  row.decode_allocs_warm_u64 =
      CountAllocs([&] { benchmark::DoNotOptimize(diff.DecodeU64(&scratch)); });

  // Byte-key decode: 36-byte blobs (a child-encoding-ish width) through the
  // view API, plus the materializing equivalent of the pre-arena result.
  if (d <= 10000) {
    const size_t width = 36;
    IbltConfig blob_config = IbltConfig::ForDifference(d, 43, width);
    Iblt blob_table(blob_config);
    std::vector<uint8_t> packed(d * width);
    for (auto& byte : packed) byte = static_cast<uint8_t>(rng.NextU64());
    blob_table.InsertBatch(packed.data(), d);
    DecodeScratch blob_scratch;
    if (!blob_table.Decode(&blob_scratch).ok()) {  // Also the warm-up.
      std::fprintf(stderr, "bench_iblt: blob decode failed at d=%zu\n", d);
      return row;
    }
    const int breps = static_cast<int>(1000000 / d);
    for (int rep = 0; rep < kRepeats; ++rep) {
      size_t decoded = 0;
      double t0 = NowSeconds();
      for (int r = 0; r < breps; ++r) {
        auto out = blob_table.Decode(&blob_scratch);
        decoded = out.value().positive.size() + out.value().negative.size();
      }
      double rate =
          static_cast<double>(decoded) * breps / (NowSeconds() - t0);
      row.blob_decode_keys_per_sec =
          std::max(row.blob_decode_keys_per_sec, rate);
    }
    for (int rep = 0; rep < kRepeats; ++rep) {
      size_t decoded = 0;
      double t0 = NowSeconds();
      for (int r = 0; r < breps; ++r) {
        auto out = blob_table.Decode(&blob_scratch);
        IbltDecodeResult owned = out.value().Materialize();
        benchmark::DoNotOptimize(owned);
        decoded = owned.positive.size() + owned.negative.size();
      }
      double rate =
          static_cast<double>(decoded) * breps / (NowSeconds() - t0);
      row.blob_materialize_keys_per_sec =
          std::max(row.blob_materialize_keys_per_sec, rate);
    }
    row.decode_allocs_warm_blob = CountAllocs(
        [&] { benchmark::DoNotOptimize(blob_table.Decode(&blob_scratch)); });
  }
  return row;
}

void AppendRow(std::string* out, const ThroughputRow& row, bool last,
               bool extended) {
  char buf[512];
  if (extended && row.blob_decode_keys_per_sec > 0) {
    std::snprintf(buf, sizeof(buf),
                  "    \"d_%zu\": {\"insert_keys_per_sec\": %.4g, "
                  "\"subtract_cells_per_sec\": %.4g, "
                  "\"decode_keys_per_sec\": %.4g, "
                  "\"blob36_decode_keys_per_sec\": %.4g, "
                  "\"blob36_materialize_keys_per_sec\": %.4g, "
                  "\"decode_allocs_warm_u64\": %zu, "
                  "\"decode_allocs_warm_blob36\": %zu}%s\n",
                  row.d, row.insert_keys_per_sec, row.subtract_cells_per_sec,
                  row.decode_keys_per_sec, row.blob_decode_keys_per_sec,
                  row.blob_materialize_keys_per_sec,
                  row.decode_allocs_warm_u64, row.decode_allocs_warm_blob,
                  last ? "" : ",");
  } else if (extended) {
    // Blob columns are measured for d <= 1e4 only.
    std::snprintf(buf, sizeof(buf),
                  "    \"d_%zu\": {\"insert_keys_per_sec\": %.4g, "
                  "\"subtract_cells_per_sec\": %.4g, "
                  "\"decode_keys_per_sec\": %.4g, "
                  "\"decode_allocs_warm_u64\": %zu}%s\n",
                  row.d, row.insert_keys_per_sec, row.subtract_cells_per_sec,
                  row.decode_keys_per_sec, row.decode_allocs_warm_u64,
                  last ? "" : ",");
  } else {
    // Seed rows: the baseline predates the blob/allocation columns.
    std::snprintf(buf, sizeof(buf),
                  "    \"d_%zu\": {\"insert_keys_per_sec\": %.4g, "
                  "\"subtract_cells_per_sec\": %.4g, "
                  "\"decode_keys_per_sec\": %.4g}%s\n",
                  row.d, row.insert_keys_per_sec, row.subtract_cells_per_sec,
                  row.decode_keys_per_sec, last ? "" : ",");
  }
  *out += buf;
}

// Wide-blob lane-XOR delta: the same 72-byte-key workload (a cascading
// outer-table-ish width, 9 lanes/cell) through the dispatched SIMD backend
// and through the forced-scalar path. Only the XOR instruction width
// differs — tables are bit-identical — so the ratio isolates the SIMD win.
struct SimdDeltaRow {
  const char* backend = "scalar";
  double insert_keys_per_sec = 0;
  double insert_keys_per_sec_scalar = 0;
  double subtract_cells_per_sec = 0;
  double subtract_cells_per_sec_scalar = 0;
};

SimdDeltaRow MeasureSimdDelta() {
  constexpr size_t kD = 4096;
  constexpr size_t kWidth = 72;
  constexpr int kRepeats = 5;
  SimdDeltaRow row;
  row.backend = Iblt::LaneXorBackend();
  IbltConfig config = IbltConfig::ForDifference(kD, 47, kWidth);
  Rng rng(47);
  std::vector<uint8_t> packed(kD * kWidth);
  for (auto& byte : packed) byte = static_cast<uint8_t>(rng.NextU64());

  for (int pass = 0; pass < 2; ++pass) {
    const bool scalar = pass == 1;
    Iblt::ForceScalarLaneXorForTest(scalar);
    Iblt table(config);
    double insert_rate = 0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      const int reps = 64;
      double t0 = NowSeconds();
      for (int r = 0; r < reps; ++r) table.InsertBatch(packed.data(), kD);
      insert_rate = std::max(
          insert_rate, static_cast<double>(kD) * reps / (NowSeconds() - t0));
    }
    Iblt a(config), b(config);
    a.InsertBatch(packed.data(), kD / 2);
    b.InsertBatch(packed.data() + (kD / 2) * kWidth, kD - kD / 2);
    double subtract_rate = 0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      const int reps = 64;
      double t0 = NowSeconds();
      for (int r = 0; r < reps; ++r) {
        Iblt work = a;
        benchmark::DoNotOptimize(work.Subtract(b));
      }
      subtract_rate = std::max(
          subtract_rate, static_cast<double>(config.PaddedCells()) * reps /
                             (NowSeconds() - t0));
    }
    if (scalar) {
      row.insert_keys_per_sec_scalar = insert_rate;
      row.subtract_cells_per_sec_scalar = subtract_rate;
    } else {
      row.insert_keys_per_sec = insert_rate;
      row.subtract_cells_per_sec = subtract_rate;
    }
  }
  Iblt::ForceScalarLaneXorForTest(false);  // Restore the dispatch.
  return row;
}

int RunJsonSuite() {
  bench::Header("IBLT throughput", "insert/subtract/decode vs seed baseline");
  std::string json = "{\n  \"bench\": \"iblt\",\n";
  json +=
      "  \"units\": {\"insert\": \"keys/sec\", \"subtract\": \"cells/sec\", "
      "\"decode\": \"keys/sec\", \"decode_allocs_warm\": "
      "\"heap allocations per warm-scratch decode\"},\n";
  json += "  \"seed\": {\n";
  for (size_t i = 0; i < 3; ++i) {
    AppendRow(&json, kSeedBaseline[i], i == 2, /*extended=*/false);
  }
  json += "  },\n  \"current\": {\n";
  ThroughputRow current[3];
  for (size_t i = 0; i < 3; ++i) {
    current[i] = MeasureThroughput(kSeedBaseline[i].d);
    std::printf(
        "d=%-8zu insert %.3g keys/s (seed %.3g, %.2fx)  decode %.3g keys/s "
        "(seed %.3g, %.2fx)\n",
        current[i].d, current[i].insert_keys_per_sec,
        kSeedBaseline[i].insert_keys_per_sec,
        current[i].insert_keys_per_sec / kSeedBaseline[i].insert_keys_per_sec,
        current[i].decode_keys_per_sec, kSeedBaseline[i].decode_keys_per_sec,
        current[i].decode_keys_per_sec / kSeedBaseline[i].decode_keys_per_sec);
    if (current[i].blob_decode_keys_per_sec > 0) {
      std::printf(
          "           blob36 decode %.3g keys/s (materializing %.3g, %.2fx)  "
          "warm allocs: u64 %zu, blob %zu\n",
          current[i].blob_decode_keys_per_sec,
          current[i].blob_materialize_keys_per_sec,
          current[i].blob_decode_keys_per_sec /
              current[i].blob_materialize_keys_per_sec,
          current[i].decode_allocs_warm_u64,
          current[i].decode_allocs_warm_blob);
    }
    AppendRow(&json, current[i], i == 2, /*extended=*/true);
  }
  char tail[320];
  std::snprintf(tail, sizeof(tail),
                "  },\n  \"speedup_at_d_10000\": {\"insert\": %.2f, "
                "\"decode\": %.2f}",
                current[1].insert_keys_per_sec /
                    kSeedBaseline[1].insert_keys_per_sec,
                current[1].decode_keys_per_sec /
                    kSeedBaseline[1].decode_keys_per_sec);
  json += tail;
  if (current[1].blob_materialize_keys_per_sec > 0) {
    // Only claim blob numbers actually measured: a failed blob decode must
    // not read as "0 allocations" (or divide into NaN).
    std::snprintf(tail, sizeof(tail),
                  ",\n  \"blob36_view_over_materialize_at_d_10000\": %.2f,\n"
                  "  \"warm_blob_decode_allocs\": %zu",
                  current[1].blob_decode_keys_per_sec /
                      current[1].blob_materialize_keys_per_sec,
                  current[1].decode_allocs_warm_blob);
    json += tail;
  }
  SimdDeltaRow simd = MeasureSimdDelta();
  std::printf(
      "simd (%s) blob72 insert %.3g keys/s (scalar %.3g, %.2fx)  "
      "subtract %.3g cells/s (scalar %.3g, %.2fx)\n",
      simd.backend, simd.insert_keys_per_sec,
      simd.insert_keys_per_sec_scalar,
      simd.insert_keys_per_sec / simd.insert_keys_per_sec_scalar,
      simd.subtract_cells_per_sec, simd.subtract_cells_per_sec_scalar,
      simd.subtract_cells_per_sec / simd.subtract_cells_per_sec_scalar);
  char simd_buf[512];
  std::snprintf(
      simd_buf, sizeof simd_buf,
      ",\n  \"simd_lane_xor\": {\"backend\": \"%s\", \"key_width\": 72,\n"
      "    \"blob72_insert_keys_per_sec\": %.4g, "
      "\"blob72_insert_keys_per_sec_scalar\": %.4g, "
      "\"insert_speedup\": %.2f,\n"
      "    \"subtract_cells_per_sec\": %.4g, "
      "\"subtract_cells_per_sec_scalar\": %.4g, "
      "\"subtract_speedup\": %.2f}",
      simd.backend, simd.insert_keys_per_sec,
      simd.insert_keys_per_sec_scalar,
      simd.insert_keys_per_sec / simd.insert_keys_per_sec_scalar,
      simd.subtract_cells_per_sec, simd.subtract_cells_per_sec_scalar,
      simd.subtract_cells_per_sec / simd.subtract_cells_per_sec_scalar);
  json += simd_buf;
  json += "\n}\n";
  std::FILE* f = std::fopen("BENCH_iblt.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_iblt: cannot write BENCH_iblt.json\n");
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote BENCH_iblt.json\n");
  return 0;
}

}  // namespace
}  // namespace setrec

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return setrec::RunJsonSuite();
    }
  }
  setrec::DecodeThresholdTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
