// Experiment E11 (DESIGN.md): the paper's Section 1 applications, end to
// end. Part A: unlabeled-row binary database reconciliation (d flipped
// bits) through each SSR protocol. Part B: shingled document collections
// with a mix of exact duplicates, near-duplicates and fresh documents —
// the classification workload sketched after Theorem 3.5.

#include <cstdio>
#include <memory>
#include <string>

#include "apps/binary_database.h"
#include "apps/shingles.h"
#include "bench/bench_util.h"
#include "core/cascading_protocol.h"
#include "core/iblt_of_iblts.h"
#include "core/multiround_protocol.h"
#include "core/naive_protocol.h"

namespace setrec {
namespace {

void PartA() {
  std::printf("\nPart A: binary database (rows x cols, d flipped bits)\n");
  std::printf("%-12s %6s %6s %4s %10s %10s %6s\n", "protocol", "rows",
              "cols", "d", "bytes", "ms", "ok");
  struct Case {
    size_t rows, cols, d;
  };
  const Case cases[] = {{128, 128, 8}, {512, 128, 16}, {512, 128, 64}};
  for (const Case& c : cases) {
    Rng rng(c.rows + c.d);
    BinaryDatabase bob = BinaryDatabase::Random(c.rows, c.cols, 0.5, &rng);
    BinaryDatabase alice = bob;
    alice.FlipRandom(c.d, &rng);
    SsrParams params;
    params.max_child_size = c.cols + 2;
    params.seed = c.rows * 3 + c.d;
    std::unique_ptr<SetsOfSetsProtocol> protocols[4] = {
        std::make_unique<NaiveProtocol>(params),
        std::make_unique<IbltOfIbltsProtocol>(params),
        std::make_unique<CascadingProtocol>(params),
        std::make_unique<MultiRoundProtocol>(params)};
    for (auto& protocol : protocols) {
      Channel ch;
      Result<DatabaseReconcileOutcome> out(
          Status(StatusCode::kExhausted, "x"));
      double ms = 1e3 * bench::TimeSeconds([&] {
        out = ReconcileDatabases(alice, bob, *protocol, c.d, &ch);
      });
      bool ok = out.ok() && out.value().recovered.SameRowsAs(alice);
      std::printf("%-12s %6zu %6zu %4zu %10zu %10.1f %6s\n",
                  protocol->Name().c_str(), c.rows, c.cols, c.d,
                  ch.total_bytes(), ms, ok ? "yes" : "NO");
    }
  }
}

std::string SyntheticDoc(uint64_t id, int words, Rng* rng) {
  std::string text;
  for (int w = 0; w < words; ++w) {
    text += "word" + std::to_string(rng->NextU64() % 5000 + id * 0) + " ";
  }
  return text;
}

void PartB() {
  std::printf(
      "\nPart B: shingled document collections "
      "(exact / near / fresh mix)\n");
  std::printf("%6s %6s %6s %8s %10s %24s\n", "docs", "near", "fresh",
              "ok", "bytes", "classified e/n/f");
  for (size_t docs : {50u, 200u}) {
    Rng rng(docs);
    SetOfSets bob_docs, alice_docs;
    for (size_t i = 0; i < docs; ++i) {
      std::string text = SyntheticDoc(i, 40, &rng);
      bob_docs.push_back(ShingleSet(text, 3, 77));
      alice_docs.push_back(bob_docs.back());
    }
    // 5% near-duplicates: drop two shingles, add two new.
    size_t near = docs / 20;
    for (size_t i = 0; i < near; ++i) {
      auto& doc = alice_docs[i];
      doc.erase(doc.begin(), doc.begin() + 2);
      doc.push_back(0x1234560 + i);
      doc.push_back(0x7654320 + i);
      std::sort(doc.begin(), doc.end());
    }
    // 2 fresh documents on Alice's side.
    size_t fresh = 2;
    for (size_t i = 0; i < fresh; ++i) {
      alice_docs.push_back(
          ShingleSet(SyntheticDoc(900 + i, 60, &rng), 3, 78 + i));
    }
    SetOfSets alice = Canonicalize(alice_docs);
    SetOfSets bob = Canonicalize(bob_docs);
    SsrParams params;
    params.seed = docs;
    params.max_child_size = 64;
    Channel ch;
    Result<CollectionReconcileOutcome> out =
        ReconcileCollections(alice, bob, /*per_doc_diff=*/8, params, &ch);
    if (!out.ok()) {
      std::printf("%6zu %6zu %6zu %8s\n", docs, near, fresh, "NO");
      continue;
    }
    bool ok = out.value().collection == alice;
    std::printf("%6zu %6zu %6zu %8s %10zu %10zu/%zu/%zu\n", docs, near,
                fresh, ok ? "yes" : "NO", ch.total_bytes(),
                out.value().exact_duplicates, out.value().near_duplicates,
                out.value().fresh_documents);
  }
}

}  // namespace
}  // namespace setrec

int main() {
  setrec::bench::Header("E11 / Section 1 applications",
                        "databases and document collections");
  setrec::PartA();
  setrec::PartB();
  std::printf(
      "\nExpected shapes: database bytes track d, not rows*cols; document\n"
      "classification finds exactly the planted near/fresh mix with bytes\n"
      "proportional to changed documents.\n");
  return 0;
}
