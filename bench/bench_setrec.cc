// Experiment E4 (DESIGN.md): Corollary 2.2 (IBLT) vs Theorem 2.3
// (characteristic polynomial) set reconciliation. Communication is nearly
// identical (O(d log u)); decode time separates them: IBLT decoding is
// O(n), char-poly pays O(n d) evaluation + O(d^3) interpolation, so a
// crossover appears as d grows — "this approach is fairly inefficient
// computationally" (Section 1) made concrete.

#include <cstdio>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "hashing/random.h"
#include "setrec/set_reconciler.h"

namespace setrec {
namespace {

struct Instance {
  std::vector<uint64_t> alice, bob;
};

Instance MakeInstance(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  std::set<uint64_t> pool;
  while (pool.size() < n + d) pool.insert(rng.NextU64() % (1ull << 55));
  Instance inst;
  size_t i = 0;
  for (uint64_t e : pool) {
    if (i < n) {
      inst.alice.push_back(e);
      inst.bob.push_back(e);
    } else if (i < n + d / 2) {
      inst.alice.push_back(e);
    } else {
      inst.bob.push_back(e);
    }
    ++i;
  }
  return inst;
}

void Run(size_t n, size_t d) {
  Instance inst = MakeInstance(n, d, n * 31 + d);
  SetReconcilerOptions opt;
  opt.seed = n + d;

  Channel ch_iblt, ch_poly;
  Result<SetReconcileOutcome> iblt_out(Status(StatusCode::kExhausted, "x"));
  Result<SetReconcileOutcome> poly_out(Status(StatusCode::kExhausted, "x"));
  double iblt_s = bench::TimeSeconds([&] {
    iblt_out = IbltReconcileKnown(inst.alice, inst.bob, d, opt, &ch_iblt);
  });
  double poly_s = bench::TimeSeconds([&] {
    poly_out = CharPolyReconcile(inst.alice, inst.bob, d, opt, &ch_poly);
  });
  bool ok = iblt_out.ok() && poly_out.ok() &&
            iblt_out.value().recovered == poly_out.value().recovered;
  std::printf("%8zu %6zu %12zu %12zu %12.2f %12.2f %6s\n", n, d,
              ch_iblt.total_bytes(), ch_poly.total_bytes(), iblt_s * 1e3,
              poly_s * 1e3, ok ? "yes" : "NO");
}

}  // namespace
}  // namespace setrec

int main() {
  setrec::bench::Header("E4 / Cor 2.2 vs Thm 2.3",
                        "IBLT vs characteristic polynomial");
  std::printf("%8s %6s %12s %12s %12s %12s %6s\n", "n", "d", "iblt_B",
              "poly_B", "iblt_ms", "poly_ms", "agree");
  for (size_t d : {2u, 8u, 32u, 128u, 256u}) {
    setrec::Run(20000, d);
  }
  for (size_t n : {1000u, 10000u, 100000u}) {
    setrec::Run(n, 32);
  }
  std::printf(
      "\nExpected shape: poly uses slightly fewer bytes (exactly d+1\n"
      "words); poly time grows superlinearly in d (O(nd + d^3)) while IBLT\n"
      "stays near-linear -> IBLT wins computationally for moderate d.\n");
  return 0;
}
