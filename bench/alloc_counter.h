#ifndef SETREC_BENCH_ALLOC_COUNTER_H_
#define SETREC_BENCH_ALLOC_COUNTER_H_

// Global-allocator replacement that counts heap allocations inside gated
// windows. Backs both the `decode_allocs_warm` columns of bench_iblt --json
// and the zero-allocation assertions in tests/iblt_view_test.cc, so the two
// claims are always measured the same way.
//
// Replacement allocation functions are defined at most once per program:
// include this header from exactly ONE translation unit of a binary.
// Counting is single-threaded — gate flips and the measured region must not
// race with allocating threads.

#include <atomic>
#include <cstdlib>
#include <new>

namespace setrec {
namespace alloc_counter {
inline std::atomic<size_t> count{0};
inline bool counting = false;
}  // namespace alloc_counter
}  // namespace setrec

// GCC pairs the malloc() inside this replacement operator new with the
// free() in the replacement operator delete once both inline into a caller
// and reports -Wmismatched-new-delete; the pairing is exactly the intended
// design for a replaced global allocator, so the diagnostic is suppressed
// for these definitions only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  if (setrec::alloc_counter::counting) {
    setrec::alloc_counter::count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace setrec {

/// RAII window: zeroes the counter on entry, stops counting on exit.
class AllocationWindow {
 public:
  AllocationWindow() {
    alloc_counter::count.store(0, std::memory_order_relaxed);
    alloc_counter::counting = true;
  }
  ~AllocationWindow() { alloc_counter::counting = false; }
  size_t count() const {
    return alloc_counter::count.load(std::memory_order_relaxed);
  }
};

/// Heap allocations performed by `fn()`.
template <typename Fn>
size_t CountAllocs(Fn&& fn) {
  AllocationWindow window;
  fn();
  return window.count();
}

}  // namespace setrec

#endif  // SETREC_BENCH_ALLOC_COUNTER_H_
