// Experiment E10 (DESIGN.md): Theorem 6.1 — rooted-forest reconciliation.
// Sweeps d and the depth bound sigma: communication should track d * sigma
// (each update dirties at most sigma ancestor signatures) and stay nearly
// flat in n, decisively beating whole-forest transfer (~8B/vertex).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "forest/ahu.h"
#include "forest/forest_reconciler.h"

namespace setrec {
namespace {

void Run(size_t n, size_t depth, size_t d) {
  int success = 0;
  size_t bytes = 0;
  double ms = 0;
  size_t sigma_seen = 0;
  const int trials = 3;
  for (int t = 0; t < trials; ++t) {
    Rng rng(n + depth * 7 + d * 3 + static_cast<size_t>(t));
    RootedForest base = RootedForest::Random(n, depth, 0.15, &rng);
    RootedForest alice = base, bob = base;
    size_t applied = alice.Perturb(d - d / 2, depth, &rng) +
                     bob.Perturb(d / 2, depth, &rng);
    size_t sigma = std::max(alice.MaxDepth(), bob.MaxDepth());
    sigma_seen = std::max(sigma_seen, sigma);
    Channel ch;
    Result<ForestReconcileOutcome> rec(Status(StatusCode::kExhausted, "x"));
    ms += 1e3 * bench::TimeSeconds([&] {
      rec = ForestReconcile(alice, bob, std::max<size_t>(applied, 1), sigma,
                            static_cast<uint64_t>(5000 + t), &ch);
    });
    HashFamily fam(static_cast<uint64_t>(5000 + t), 0x61687530ull);
    if (rec.ok() &&
        AreForestsIsomorphic(rec.value().recovered, alice, fam)) {
      ++success;
      bytes += ch.total_bytes();
    }
  }
  std::printf("%7zu %6zu %4zu %8d%% %10zu %10.1f %12zu\n", n, sigma_seen, d,
              success * 100 / trials,
              success ? bytes / static_cast<size_t>(success) : 0,
              ms / trials, n * 8);
}

}  // namespace
}  // namespace setrec

int main() {
  setrec::bench::Header("E10 / Theorem 6.1", "rooted-forest reconciliation");
  std::printf("%7s %6s %4s %9s %10s %10s %12s\n", "n", "sigma", "d",
              "success", "bytes", "ms", "raw_B");
  // Sweep d at fixed n, depth.
  for (size_t d : {1u, 2u, 4u, 8u, 16u}) {
    setrec::Run(2000, 5, d);
  }
  // Sweep sigma at fixed n, d.
  for (size_t depth : {3u, 6u, 10u, 16u}) {
    setrec::Run(2000, depth, 4);
  }
  // Sweep n at fixed depth, d.
  for (size_t n : {500u, 2000u, 8000u}) {
    setrec::Run(n, 5, 4);
  }
  std::printf(
      "\nExpected shapes (Thm 6.1: O(d sigma log(d sigma) log n) bits):\n"
      "bytes grow with d and with sigma, stay nearly flat in n, and sit\n"
      "well below the raw whole-forest transfer column for d*sigma << n.\n");
  return 0;
}
